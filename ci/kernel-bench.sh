#!/usr/bin/env bash
# Kernel microbenchmark suite for the perf-regression gate. The bench job
# (baseline recording) and the perf-gate job (current measurement) both run
# this script, so the two sides of cmd/benchdiff always come from the same
# invocation: same benchmark set, same -benchtime, same repeat count (the
# diff takes the per-benchmark minimum over the repeats). Add a benchmark
# here — it must b.ReportMetric(..., "ns/row") — and it is gated on both
# sides automatically.
set -euo pipefail

go test -bench '^(BenchmarkScanPositions|BenchmarkCountRange|BenchmarkMaterialize|BenchmarkSharedPred)$' \
  -benchtime=0.2s -count=3 -run '^$' ./internal/colstore

# The planner rides the same gate: Submit plans every statement, so a
# Build->Optimize->Lower slowdown is a hot-path regression like any kernel.
go test -bench '^BenchmarkPlanLower$' -benchtime=0.2s -count=3 -run '^$' ./internal/plan
