package numacs_test

import (
	"math"
	"testing"

	"numacs"
	"numacs/internal/colstore"
	"numacs/internal/harness"
	"numacs/internal/workload"
)

// TestAnalyticMatchCountsAgreeWithRealScans cross-validates the simulation
// harness's analytic match model (selectivity x rows with small jitter)
// against real scans over real generated data: for uniform data, a predicate
// covering fraction s of the value domain must qualify ~s of the rows.
func TestAnalyticMatchCountsAgreeWithRealScans(t *testing.T) {
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 100_000, Columns: 6, BitcaseMin: 12, BitcaseMax: 17, Seed: 42,
	})
	for _, sel := range []float64{0.001, 0.01, 0.1} {
		for _, c := range tbl.Parts[0].Columns {
			domain := float64(c.Domain)
			width := int64(sel * domain)
			if width < 1 {
				width = 1
			}
			lo := int64(domain * 0.3)
			loVid, hiVid, ok := c.EncodePredicate(lo, lo+width-1)
			if !ok {
				continue
			}
			got := len(c.ScanPositions(loVid, hiVid, 0, c.Rows, nil))
			want := sel * float64(c.Rows)
			// Allow generous sampling noise at low selectivities.
			tol := 0.25*want + 15
			if math.Abs(float64(got)-want) > tol {
				t.Errorf("col %s (bitcase %d) sel %v: real scan found %d, analytic %f",
					c.Name, c.Bitcase, sel, got, want)
			}
		}
	}
}

// TestFunctionalPipelineMatchesSimulatedStructure runs the complete
// functional pipeline (encode -> scan -> materialize) on real data placed on
// a simulated machine, verifying the library works end-to-end without the
// analytic shortcut.
func TestFunctionalPipelineMatchesSimulatedStructure(t *testing.T) {
	machine := numacs.FourSocketIvyBridge()
	engine := numacs.NewEngine(machine, 1)
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 50_000, Columns: 4, BitcaseMin: 12, BitcaseMax: 15, Seed: 7,
	})
	engine.Placer.PlaceRR(tbl)

	col := tbl.Parts[0].Columns[1]
	loVid, hiVid, ok := col.EncodePredicate(100, 900)
	if !ok {
		t.Fatal("predicate empty")
	}
	positions := col.ScanPositions(loVid, hiVid, 0, col.Rows, nil)
	out := make([]int64, len(positions))
	col.Materialize(positions, out)
	for i, v := range out {
		if v < 100 || v > 900 {
			t.Fatalf("materialized value %d at %d violates predicate", v, i)
		}
	}
	// The same column also answers through the simulation path.
	done := false
	engine.Submit(&numacs.Query{
		Table: tbl, Column: col.Name, Selectivity: 0.01,
		Parallel: true, Strategy: numacs.Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	engine.Sim.Run(0.2)
	if !done {
		t.Fatal("simulated query did not complete")
	}
}

// TestPPScanEquivalenceThroughFacade verifies that physical partitioning
// preserves query answers on real data end to end.
func TestPPScanEquivalenceThroughFacade(t *testing.T) {
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 30_000, Columns: 2, BitcaseMin: 10, BitcaseMax: 11, Seed: 9,
	})
	whole := tbl.Parts[0].Columns[0]
	loVid, hiVid, ok := whole.EncodePredicate(50, 500)
	if !ok {
		t.Fatal("predicate empty")
	}
	want := len(whole.ScanPositions(loVid, hiVid, 0, whole.Rows, nil))

	pp := tbl.PhysicallyPartition(4)
	got := 0
	for _, part := range pp.Parts {
		c := part.Columns[0]
		lo, hi, ok := c.EncodePredicate(50, 500)
		if !ok {
			continue
		}
		got += len(c.ScanPositions(lo, hi, 0, c.Rows, nil))
	}
	if got != want {
		t.Fatalf("PP scan found %d rows, whole-table scan %d", got, want)
	}
}

// TestExperimentDeterminism: the same experiment spec must produce identical
// results run-to-run — the property that makes EXPERIMENTS.md reproducible.
func TestExperimentDeterminism(t *testing.T) {
	spec := harness.Spec{
		Machine:     harness.FourSocket,
		Dataset:     workload.DatasetConfig{Rows: 50_000, Columns: 8, BitcaseMin: 12, BitcaseMax: 16, Seed: 1},
		Placement:   harness.PlacementSpec{Kind: harness.IVP, Partitions: 4},
		Strategy:    numacs.Target,
		Clients:     64,
		Selectivity: 0.001,
		Parallel:    true,
		Warmup:      0.02, Measure: 0.08,
	}
	a := harness.Run(spec)
	b := harness.Run(spec)
	if a.QPM != b.QPM || a.Tasks != b.Tasks || a.Stolen != b.Stolen ||
		a.MemTPTotal != b.MemTPTotal || a.LLCLocal != b.LLCLocal {
		t.Fatalf("experiment not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestSyntheticAndRealDatasetsProduceSameSimulation confirms the synthetic
// dataset shortcut does not change simulated outcomes (sizes drive the
// model, not values).
func TestSyntheticAndRealDatasetsProduceSameSimulation(t *testing.T) {
	run := func(synthetic bool) float64 {
		machine := numacs.FourSocketIvyBridge()
		engine := numacs.NewEngine(machine, 1)
		tbl := workload.Generate(workload.DatasetConfig{
			Rows: 40_000, Columns: 8, BitcaseMin: 12, BitcaseMax: 15, Seed: 3,
			Synthetic: synthetic,
		})
		engine.Placer.PlaceRR(tbl)
		clients := workload.NewClients(engine, tbl, workload.ClientsConfig{
			N: 32, Selectivity: 0.001, Parallel: true, Strategy: numacs.Bound, Seed: 5,
		})
		clients.Start()
		engine.Sim.Run(0.1)
		return engine.Counters.ThroughputQPM(0.1)
	}
	real, synth := run(false), run(true)
	// Sizes differ only by the realized-vs-expected distinct count, so
	// throughput should agree within a few percent.
	if math.Abs(real-synth) > real*0.05 {
		t.Fatalf("synthetic simulation diverges: real %.0f vs synthetic %.0f", real, synth)
	}
}

// Keep colstore referenced for the equivalence helper types.
var _ = colstore.ValueSize
