// Package sim implements a deterministic, time-stepped fluid simulator used
// as the hardware substrate for the NUMA experiments.
//
// The simulator models shared hardware resources (memory-controller
// bandwidth, interconnect-link bandwidth, per-core compute) as capacities in
// units per second. Work in flight is modelled as flows: a flow has a number
// of remaining units (bytes, accesses, or cycles), an optional per-flow rate
// cap (e.g. the latency-bound streaming rate of a single hardware thread),
// and a set of weighted demands on resources. At every step the engine
// computes a weighted max-min fair ("water-filling") rate allocation across
// all active flows, advances them, and fires completion callbacks.
//
// The fluid abstraction reproduces the contention phenomena the paper's
// findings rest on — memory-controller saturation, QPI-link saturation,
// latency-bound remote access, and cache-coherence broadcast overhead —
// without requiring real NUMA hardware, which the Go runtime could not pin
// threads to anyway. See DESIGN.md ("Simulation model") for the calibration
// story.
package sim
