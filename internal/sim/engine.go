package sim

import (
	"fmt"
	"math"
	"sort"
)

// Time is virtual time in seconds.
type Time = float64

// ResourceID identifies a resource registered with an Engine.
type ResourceID int32

// Invalid is a sentinel for "no resource".
const Invalid ResourceID = -1

// Demand expresses how much capacity of a resource a flow consumes per unit
// of flow progress. A scan flow measured in bytes typically has Weight 1 on
// its memory controller, a coherence-inflated weight on each link of its
// route, and a cycles-per-byte weight on its core.
type Demand struct {
	Resource ResourceID
	Weight   float64
}

// Flow is a unit of in-flight work. Flows are created by tasks (scan phases,
// materialization phases, compute phases) and progress at the rate assigned
// by the max-min allocation each step.
type Flow struct {
	// Remaining is the number of units (bytes, accesses, cycles) left.
	Remaining float64
	// RateCap bounds the flow's own progress rate (units/s), independent of
	// resource contention. Zero or negative means "uncapped".
	RateCap float64
	// Demands lists weighted resource consumption per unit of progress.
	Demands []Demand
	// OnDone fires when Remaining reaches zero. It runs during the engine
	// step, after all flows have advanced; it may start new flows.
	OnDone func()
	// OnAdvance, if set, is called each step with the progress made. Used by
	// the metrics layer to attribute traffic.
	OnAdvance func(progress float64)

	rate   float64
	seq    uint64
	active bool
	frozen bool    // scratch for the allocator
	effCap float64 // scratch: rate cap bounded by Remaining/step
}

// Rate reports the most recently allocated rate (units/s).
func (f *Flow) Rate() float64 { return f.rate }

// Actor is ticked once per engine step, before rate allocation. The
// scheduler, clients, the watchdog, and the adaptive data placer are actors.
type Actor interface {
	Tick(now Time)
}

// ActorFunc adapts a function to the Actor interface.
type ActorFunc func(now Time)

// Tick implements Actor.
func (fn ActorFunc) Tick(now Time) { fn(now) }

// Engine is the time-stepped fluid simulator.
type Engine struct {
	step Time
	now  Time

	names     []string
	caps      []float64
	usage     []float64 // cumulative units consumed per resource
	residual  []float64 // scratch for the allocator
	load      []float64 // scratch for the allocator
	cappedBuf []*Flow   // scratch for the allocator

	flows   []*Flow
	nextSeq uint64

	actors []Actor

	// Stats.
	steps     uint64
	completed uint64
}

// New creates an engine with the given step length in seconds.
func New(step Time) *Engine {
	if step <= 0 {
		panic("sim: step must be positive")
	}
	return &Engine{step: step}
}

// Step returns the configured step length.
func (e *Engine) StepLen() Time { return e.step }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of steps executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// CompletedFlows returns the number of flows that have completed.
func (e *Engine) CompletedFlows() uint64 { return e.completed }

// AddResource registers a resource with the given capacity in units/s and
// returns its id.
func (e *Engine) AddResource(name string, capacity float64) ResourceID {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q must have positive capacity", name))
	}
	id := ResourceID(len(e.caps))
	e.names = append(e.names, name)
	e.caps = append(e.caps, capacity)
	e.usage = append(e.usage, 0)
	e.residual = append(e.residual, 0)
	e.load = append(e.load, 0)
	return id
}

// ResourceName returns the registered name of a resource.
func (e *Engine) ResourceName(id ResourceID) string { return e.names[id] }

// SetResourceCapacity changes a resource's capacity in units/s, taking effect
// at the next allocation (the allocator re-reads capacities every step, so a
// capacity write costs nothing when unused). This is the fault-injection hook
// the chaos layer's bandwidth throttles scale live capacities through.
func (e *Engine) SetResourceCapacity(id ResourceID, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q must have positive capacity", e.names[id]))
	}
	e.caps[id] = capacity
}

// ResourceCapacity returns the capacity of a resource in units/s.
func (e *Engine) ResourceCapacity(id ResourceID) float64 { return e.caps[id] }

// ResourceUsage returns the cumulative units consumed on a resource.
func (e *Engine) ResourceUsage(id ResourceID) float64 { return e.usage[id] }

// NumResources returns the number of registered resources.
func (e *Engine) NumResources() int { return len(e.caps) }

// ActiveDemand sums the demand weight currently-active flows place on each of
// the given resources, returning one total per id in order. It is an
// instantaneous utilization probe — unlike ResourceUsage, which is
// cumulative — and is what replica-aware scheduling weighs sockets by.
func (e *Engine) ActiveDemand(ids []ResourceID) []float64 {
	out := make([]float64, len(ids))
	if len(ids) == 0 {
		return out
	}
	lo, hi := ids[0], ids[0]
	for _, id := range ids {
		if id < lo {
			lo = id
		}
		if id > hi {
			hi = id
		}
	}
	idx := make([]int, hi-lo+1)
	for i := range idx {
		idx[i] = -1
	}
	for i, id := range ids {
		idx[id-lo] = i
	}
	for _, f := range e.flows {
		for _, d := range f.Demands {
			if d.Resource >= lo && d.Resource <= hi {
				if i := idx[d.Resource-lo]; i >= 0 {
					out[i] += d.Weight
				}
			}
		}
	}
	return out
}

// AddActor registers an actor ticked each step, in registration order.
func (e *Engine) AddActor(a Actor) { e.actors = append(e.actors, a) }

// StartFlow activates a flow. A zero-Remaining flow completes on the next
// step. The same Flow value must not be started twice concurrently.
func (e *Engine) StartFlow(f *Flow) {
	if f.active {
		panic("sim: flow already active")
	}
	f.active = true
	f.seq = e.nextSeq
	e.nextSeq++
	e.flows = append(e.flows, f)
}

// AbortFlow deactivates a flow without firing OnDone.
func (e *Engine) AbortFlow(f *Flow) {
	if !f.active {
		return
	}
	f.active = false
	for i, g := range e.flows {
		if g == f {
			e.flows = append(e.flows[:i], e.flows[i+1:]...)
			return
		}
	}
}

// ActiveFlows returns the number of currently active flows.
func (e *Engine) ActiveFlows() int { return len(e.flows) }

// Step advances virtual time by one step: tick actors, allocate rates,
// advance flows, fire completions.
func (e *Engine) Step() {
	for _, a := range e.actors {
		a.Tick(e.now)
	}
	e.allocate()

	// Advance all flows and collect completions in deterministic (seq) order.
	var done []*Flow
	kept := e.flows[:0]
	for _, f := range e.flows {
		progress := f.rate * e.step
		if progress > f.Remaining {
			progress = f.Remaining
		}
		if progress > 0 {
			f.Remaining -= progress
			for _, d := range f.Demands {
				e.usage[d.Resource] += progress * d.Weight
			}
			if f.OnAdvance != nil {
				f.OnAdvance(progress)
			}
		}
		if f.Remaining <= 1e-9 {
			f.Remaining = 0
			f.active = false
			done = append(done, f)
		} else {
			kept = append(kept, f)
		}
	}
	// Zero the tail so aborted/done flows do not linger in the backing array.
	for i := len(kept); i < len(e.flows); i++ {
		e.flows[i] = nil
	}
	e.flows = kept

	// Derive now from the step count to avoid floating-point drift.
	e.steps++
	e.now = float64(e.steps) * e.step

	for _, f := range done {
		e.completed++
		if f.OnDone != nil {
			f.OnDone()
		}
	}
}

// Run steps the engine until virtual time reaches the given deadline.
func (e *Engine) Run(until Time) {
	for e.now < until {
		e.Step()
	}
}

// allocate computes a weighted max-min fair rate for every active flow via
// progressive filling: repeatedly find the resource (or per-flow cap) that
// saturates first if all unfrozen flows' rates rise uniformly, freeze the
// affected flows at that level, and continue.
func (e *Engine) allocate() {
	flows := e.flows
	if len(flows) == 0 {
		return
	}
	copy(e.residual, e.caps)
	unfrozen := 0
	for _, f := range flows {
		f.frozen = false
		f.rate = 0
		// A flow can consume at most Remaining/step this step; allocating
		// more would reserve capacity it cannot use and starve other flows
		// (near-complete flows would otherwise hog resources for a whole
		// step).
		f.effCap = f.Remaining / e.step
		if f.RateCap > 0 && f.RateCap < f.effCap {
			f.effCap = f.RateCap
		}
		unfrozen++
	}

	// load[r] = sum of weights of unfrozen flows on resource r.
	load := e.load
	for r := range load {
		load[r] = 0
	}
	for _, f := range flows {
		for _, d := range f.Demands {
			load[d.Resource] += d.Weight
		}
	}

	// Flows sorted by effective cap, ascending. Stable by seq.
	capped := e.cappedBuf[:0]
	capped = append(capped, flows...)
	sort.SliceStable(capped, func(i, j int) bool { return capped[i].effCap < capped[j].effCap })
	e.cappedBuf = capped[:0]
	nextCap := 0

	level := 0.0 // current uniform rate level of all unfrozen flows
	for unfrozen > 0 {
		// Headroom until the tightest resource saturates.
		limit := math.Inf(1)
		bottleneck := ResourceID(-1)
		for r := range e.residual {
			if load[r] <= 1e-12 {
				continue
			}
			l := level + e.residual[r]/load[r]
			if l < limit {
				limit = l
				bottleneck = ResourceID(r)
			}
		}
		// Headroom until the next per-flow cap binds.
		for nextCap < len(capped) && capped[nextCap].frozen {
			nextCap++
		}
		capLimit := math.Inf(1)
		if nextCap < len(capped) {
			capLimit = capped[nextCap].effCap
		}

		if capLimit <= limit {
			// Freeze every unfrozen flow whose cap is at this level.
			target := capLimit
			delta := target - level
			if delta < 0 {
				delta = 0
				target = level
			}
			e.drain(flows, load, delta)
			level = target
			for nextCap < len(capped) && capped[nextCap].effCap <= target+1e-12 {
				f := capped[nextCap]
				if !f.frozen {
					e.freeze(f, target, load)
					unfrozen--
				}
				nextCap++
			}
			continue
		}
		// A resource saturates: freeze all unfrozen flows that use it.
		delta := limit - level
		e.drain(flows, load, delta)
		level = limit
		for _, f := range flows {
			if f.frozen {
				continue
			}
			uses := false
			for _, d := range f.Demands {
				if d.Resource == bottleneck && d.Weight > 0 {
					uses = true
					break
				}
			}
			if uses {
				e.freeze(f, level, load)
				unfrozen--
			}
		}
		// Guard against numerical stalls: if nothing froze, freeze everything.
		if delta <= 1e-15 {
			stuck := true
			for _, f := range flows {
				if !f.frozen {
					for _, d := range f.Demands {
						if d.Resource == bottleneck && d.Weight > 0 {
							stuck = false
						}
					}
				}
			}
			if stuck {
				for _, f := range flows {
					if !f.frozen {
						e.freeze(f, level, load)
						unfrozen--
					}
				}
			}
		}
	}
}

// drain consumes residual capacity as all unfrozen flows rise by delta.
func (e *Engine) drain(flows []*Flow, load []float64, delta float64) {
	if delta <= 0 {
		return
	}
	for r := range e.residual {
		if load[r] > 0 {
			e.residual[r] -= delta * load[r]
			if e.residual[r] < 0 {
				e.residual[r] = 0
			}
		}
	}
}

// freeze fixes a flow's rate and removes its weights from the load vector.
func (e *Engine) freeze(f *Flow, rate float64, load []float64) {
	f.frozen = true
	f.rate = rate
	for _, d := range f.Demands {
		load[d.Resource] -= d.Weight
		if load[d.Resource] < 0 {
			load[d.Resource] = 0
		}
	}
}
