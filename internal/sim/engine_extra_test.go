package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThreeTierMaxMin(t *testing.T) {
	// Classic progressive-filling example: capacity 60, three flows, one
	// capped at 10, one at 25, one uncapped -> rates 10, 25, 25.
	e := New(0.001)
	r := e.AddResource("r", 60)
	f1 := &Flow{Remaining: 1e9, RateCap: 10, Demands: []Demand{{r, 1}}}
	f2 := &Flow{Remaining: 1e9, RateCap: 25, Demands: []Demand{{r, 1}}}
	f3 := &Flow{Remaining: 1e9, Demands: []Demand{{r, 1}}}
	e.StartFlow(f1)
	e.StartFlow(f2)
	e.StartFlow(f3)
	e.Step()
	almost(t, f1.Rate(), 10, 1e-9, "f1")
	almost(t, f2.Rate(), 25, 1e-9, "f2")
	almost(t, f3.Rate(), 25, 1e-9, "f3")
}

func TestChainedBottlenecks(t *testing.T) {
	// Flow A crosses r1(30) and r2(100); flow B crosses only r2. A is bound
	// by r1 at 30; B takes the rest of r2: 70.
	e := New(0.001)
	r1 := e.AddResource("r1", 30)
	r2 := e.AddResource("r2", 100)
	a := &Flow{Remaining: 1e9, Demands: []Demand{{r1, 1}, {r2, 1}}}
	b := &Flow{Remaining: 1e9, Demands: []Demand{{r2, 1}}}
	e.StartFlow(a)
	e.StartFlow(b)
	e.Step()
	almost(t, a.Rate(), 30, 1e-9, "a")
	almost(t, b.Rate(), 70, 1e-9, "b")
}

func TestFlowJoinMidway(t *testing.T) {
	// A flow running alone at full capacity halves when a second flow joins.
	e := New(0.001)
	r := e.AddResource("r", 100)
	a := &Flow{Remaining: 1e9, Demands: []Demand{{r, 1}}}
	e.StartFlow(a)
	e.Step()
	almost(t, a.Rate(), 100, 1e-9, "alone")
	b := &Flow{Remaining: 1e9, Demands: []Demand{{r, 1}}}
	e.StartFlow(b)
	e.Step()
	almost(t, a.Rate(), 50, 1e-9, "shared")
	almost(t, b.Rate(), 50, 1e-9, "joiner")
}

func TestCapacityFreedOnCompletion(t *testing.T) {
	e := New(0.01)
	r := e.AddResource("r", 100)
	short := &Flow{Remaining: 1, Demands: []Demand{{r, 1}}}
	long := &Flow{Remaining: 1e9, Demands: []Demand{{r, 1}}}
	e.StartFlow(short)
	e.StartFlow(long)
	e.Step() // short completes (rate 50 x 0.01 = 0.5 < 1? no: 0.5 < 1 remaining)
	e.Step() // short completes here
	e.Step()
	almost(t, long.Rate(), 100, 1e-9, "capacity reclaimed")
}

func TestZeroRemainingFlowCompletes(t *testing.T) {
	e := New(0.001)
	r := e.AddResource("r", 10)
	done := false
	e.StartFlow(&Flow{Remaining: 0, Demands: []Demand{{r, 1}}, OnDone: func() { done = true }})
	e.Step()
	if !done {
		t.Fatal("zero-length flow should complete immediately")
	}
}

func TestStartFlowTwicePanics(t *testing.T) {
	e := New(0.001)
	r := e.AddResource("r", 10)
	f := &Flow{Remaining: 100, Demands: []Demand{{r, 1}}}
	e.StartFlow(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.StartFlow(f)
}

func TestAddResourceRejectsNonPositive(t *testing.T) {
	e := New(0.001)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	e.AddResource("bad", 0)
}

func TestNewRejectsNonPositiveStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero step")
		}
	}()
	New(0)
}

func TestOnAdvanceReportsProgress(t *testing.T) {
	e := New(0.01)
	r := e.AddResource("r", 100)
	total := 0.0
	e.StartFlow(&Flow{
		Remaining: 5,
		Demands:   []Demand{{r, 1}},
		OnAdvance: func(p float64) { total += p },
	})
	e.Run(0.1)
	almost(t, total, 5, 1e-9, "progress sum equals work")
}

func TestUsageMatchesWeightedProgress(t *testing.T) {
	e := New(0.01)
	r1 := e.AddResource("r1", 1000)
	r2 := e.AddResource("r2", 1000)
	e.StartFlow(&Flow{Remaining: 10, Demands: []Demand{{r1, 1}, {r2, 2.5}}})
	e.Run(0.2)
	almost(t, e.ResourceUsage(r1), 10, 1e-9, "r1 usage")
	almost(t, e.ResourceUsage(r2), 25, 1e-9, "r2 usage")
}

func TestNowDoesNotDrift(t *testing.T) {
	e := New(1e-5)
	e.Run(1.0)
	if e.Now() != 1.0 {
		t.Fatalf("now = %v after 1s of 10us steps", e.Now())
	}
	if e.Steps() != 100000 {
		t.Fatalf("steps = %d", e.Steps())
	}
}

// Property: total weighted throughput on a single shared resource never
// exceeds capacity and is work-conserving when enough demand exists.
func TestSingleResourceSaturationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		e := New(0.001)
		cap := 10 + rng.f64()*1000
		r := e.AddResource("r", cap)
		n := 2 + rng.intn(20)
		sumCaps := 0.0
		for i := 0; i < n; i++ {
			fl := &Flow{Remaining: 1e12, Demands: []Demand{{r, 1}}}
			if rng.intn(2) == 0 {
				fl.RateCap = 1 + rng.f64()*cap
			}
			if fl.RateCap > 0 {
				sumCaps += fl.RateCap
			} else {
				sumCaps += math.Inf(1)
			}
			e.StartFlow(fl)
		}
		e.Step()
		// Recompute from usage after one step.
		used := e.ResourceUsage(r) / 0.001
		if used > cap*(1+1e-9) {
			return false
		}
		want := math.Min(cap, sumCaps)
		return math.Abs(used-want) <= want*1e-9+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
