package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestSingleFlowUncontended(t *testing.T) {
	e := New(0.001)
	r := e.AddResource("mc", 100)
	done := false
	f := &Flow{Remaining: 50, Demands: []Demand{{r, 1}}, OnDone: func() { done = true }}
	e.StartFlow(f)
	e.Step()
	almost(t, f.Rate(), 100, 1e-9, "rate")
	// 50 units at 100/s takes 0.5s.
	e.Run(0.5)
	if !done {
		t.Fatal("flow should be done after 0.5s")
	}
	almost(t, e.ResourceUsage(r), 50, 1e-6, "usage")
}

func TestRateCapBinds(t *testing.T) {
	e := New(0.001)
	r := e.AddResource("mc", 100)
	f := &Flow{Remaining: 1000, RateCap: 10, Demands: []Demand{{r, 1}}}
	e.StartFlow(f)
	e.Step()
	almost(t, f.Rate(), 10, 1e-9, "capped rate")
}

func TestFairShareTwoFlows(t *testing.T) {
	e := New(0.001)
	r := e.AddResource("mc", 100)
	f1 := &Flow{Remaining: 1e9, Demands: []Demand{{r, 1}}}
	f2 := &Flow{Remaining: 1e9, Demands: []Demand{{r, 1}}}
	e.StartFlow(f1)
	e.StartFlow(f2)
	e.Step()
	almost(t, f1.Rate(), 50, 1e-9, "f1 rate")
	almost(t, f2.Rate(), 50, 1e-9, "f2 rate")
}

func TestWeightedDemand(t *testing.T) {
	// A flow with weight 2 consumes twice the capacity per unit of progress,
	// so two such flows fairly share 100 capacity at rate 100/(2+2)=25 each.
	e := New(0.001)
	r := e.AddResource("mc", 100)
	f1 := &Flow{Remaining: 1e9, Demands: []Demand{{r, 2}}}
	f2 := &Flow{Remaining: 1e9, Demands: []Demand{{r, 2}}}
	e.StartFlow(f1)
	e.StartFlow(f2)
	e.Step()
	almost(t, f1.Rate(), 25, 1e-9, "weighted rate")
}

func TestMaxMinWithCapAndSpareRedistribution(t *testing.T) {
	// One capped flow at 10 and one uncapped flow share 100: the uncapped
	// flow should get the leftover 90.
	e := New(0.001)
	r := e.AddResource("mc", 100)
	f1 := &Flow{Remaining: 1e9, RateCap: 10, Demands: []Demand{{r, 1}}}
	f2 := &Flow{Remaining: 1e9, Demands: []Demand{{r, 1}}}
	e.StartFlow(f1)
	e.StartFlow(f2)
	e.Step()
	almost(t, f1.Rate(), 10, 1e-9, "capped flow")
	almost(t, f2.Rate(), 90, 1e-9, "uncapped flow gets spare")
}

func TestTwoResourceBottleneck(t *testing.T) {
	// Flow A uses only MC (cap 100). Flow B uses MC and a link (cap 20).
	// B is link-bound at 20; A gets the remaining 80 of the MC.
	e := New(0.001)
	mc := e.AddResource("mc", 100)
	link := e.AddResource("link", 20)
	a := &Flow{Remaining: 1e9, Demands: []Demand{{mc, 1}}}
	b := &Flow{Remaining: 1e9, Demands: []Demand{{mc, 1}, {link, 1}}}
	e.StartFlow(a)
	e.StartFlow(b)
	e.Step()
	almost(t, b.Rate(), 20, 1e-9, "link-bound flow")
	almost(t, a.Rate(), 80, 1e-9, "local flow gets residual MC")
}

func TestCoherenceWeightInflatesLinkUsage(t *testing.T) {
	// A remote flow whose link weight is 1.5 (coherence tax) is limited to
	// linkCap/1.5 even with MC headroom.
	e := New(0.001)
	mc := e.AddResource("mc", 100)
	link := e.AddResource("link", 30)
	f := &Flow{Remaining: 1e9, Demands: []Demand{{mc, 1}, {link, 1.5}}}
	e.StartFlow(f)
	e.Step()
	almost(t, f.Rate(), 20, 1e-9, "coherence-taxed rate")
	e.Step()
	// Usage on the link accrues at weight 1.5 per unit.
	almost(t, e.ResourceUsage(link), 2*20*0.001*1.5, 1e-9, "link usage")
	almost(t, e.ResourceUsage(mc), 2*20*0.001, 1e-9, "mc usage")
}

func TestNoDemandFlowCompletesNextStep(t *testing.T) {
	e := New(0.001)
	done := false
	e.StartFlow(&Flow{Remaining: 12345, OnDone: func() { done = true }})
	e.Step()
	if !done {
		t.Fatal("demandless flow should complete in one step")
	}
}

func TestOnDoneMayStartNewFlow(t *testing.T) {
	e := New(0.001)
	r := e.AddResource("mc", 1000)
	var order []int
	var second *Flow
	second = &Flow{Remaining: 1, Demands: []Demand{{r, 1}}, OnDone: func() { order = append(order, 2) }}
	first := &Flow{Remaining: 1, Demands: []Demand{{r, 1}}, OnDone: func() {
		order = append(order, 1)
		e.StartFlow(second)
	}}
	e.StartFlow(first)
	e.Run(0.01)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("completion order = %v, want [1 2]", order)
	}
}

func TestAbortFlow(t *testing.T) {
	e := New(0.001)
	r := e.AddResource("mc", 100)
	done := false
	f := &Flow{Remaining: 1e9, Demands: []Demand{{r, 1}}, OnDone: func() { done = true }}
	e.StartFlow(f)
	e.Step()
	e.AbortFlow(f)
	e.Run(0.1)
	if done {
		t.Fatal("aborted flow must not complete")
	}
	if e.ActiveFlows() != 0 {
		t.Fatal("aborted flow still active")
	}
}

func TestActorsTickEveryStep(t *testing.T) {
	e := New(0.01)
	n := 0
	e.AddActor(ActorFunc(func(now Time) { n++ }))
	e.Run(0.1)
	if n != 10 {
		t.Fatalf("actor ticked %d times, want 10", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := New(0.001)
		mc := e.AddResource("mc", 100)
		link := e.AddResource("link", 25)
		var rates []float64
		for i := 0; i < 8; i++ {
			f := &Flow{Remaining: float64(10 + i), Demands: []Demand{{mc, 1}}}
			if i%2 == 0 {
				f.Demands = append(f.Demands, Demand{link, 1.2})
			}
			if i%3 == 0 {
				f.RateCap = float64(5 + i)
			}
			ff := f
			f.OnDone = func() { rates = append(rates, ff.rate) }
			e.StartFlow(f)
		}
		e.Run(10)
		return rates
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 8 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: the max-min allocation never oversubscribes any resource and
// never gives a flow more than its cap.
func TestAllocationFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		e := New(0.001)
		nres := 1 + rng.intn(6)
		ids := make([]ResourceID, nres)
		for i := range ids {
			ids[i] = e.AddResource("r", 1+rng.f64()*100)
		}
		nflows := 1 + rng.intn(24)
		flows := make([]*Flow, nflows)
		for i := range flows {
			fl := &Flow{Remaining: 1e12}
			if rng.intn(2) == 0 {
				fl.RateCap = 0.5 + rng.f64()*50
			}
			nd := 1 + rng.intn(nres)
			seen := map[int]bool{}
			for j := 0; j < nd; j++ {
				r := rng.intn(nres)
				if seen[r] {
					continue
				}
				seen[r] = true
				fl.Demands = append(fl.Demands, Demand{ids[r], 0.1 + rng.f64()*3})
			}
			flows[i] = fl
			e.StartFlow(fl)
		}
		e.Step()
		use := make([]float64, nres)
		for _, fl := range flows {
			if fl.RateCap > 0 && fl.rate > fl.RateCap+1e-6 {
				return false
			}
			if fl.rate < -1e-9 {
				return false
			}
			for _, d := range fl.Demands {
				use[d.Resource] += fl.rate * d.Weight
			}
		}
		for i, u := range use {
			if u > e.caps[ids[i]]+1e-6*(1+e.caps[ids[i]]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocation is work-conserving — every flow is bound either by its
// cap or by at least one saturated resource it uses.
func TestAllocationWorkConservingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		e := New(0.001)
		nres := 1 + rng.intn(4)
		ids := make([]ResourceID, nres)
		for i := range ids {
			ids[i] = e.AddResource("r", 1+rng.f64()*100)
		}
		nflows := 1 + rng.intn(12)
		flows := make([]*Flow, nflows)
		for i := range flows {
			fl := &Flow{Remaining: 1e12}
			if rng.intn(3) == 0 {
				fl.RateCap = 0.5 + rng.f64()*50
			}
			r := rng.intn(nres)
			fl.Demands = []Demand{{ids[r], 0.5 + rng.f64()*2}}
			flows[i] = fl
			e.StartFlow(fl)
		}
		e.Step()
		use := make([]float64, nres)
		for _, fl := range flows {
			for _, d := range fl.Demands {
				use[d.Resource] += fl.rate * d.Weight
			}
		}
		for _, fl := range flows {
			if fl.RateCap > 0 && math.Abs(fl.rate-fl.RateCap) < 1e-6 {
				continue // cap-bound
			}
			bound := false
			for _, d := range fl.Demands {
				if use[d.Resource] >= e.caps[d.Resource]-1e-6*(1+e.caps[d.Resource]) {
					bound = true
				}
			}
			if !bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// tiny deterministic PRNG for property tests (avoids seeding math/rand
// globally and keeps failures reproducible from the seed input).
type trand struct{ s uint64 }

func newRand(seed int64) *trand { return &trand{uint64(seed)*2862933555777941757 + 3037000493} }

func (r *trand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *trand) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *trand) f64() float64 { return float64(r.next()%1_000_000) / 1_000_000 }
