package sim

import "testing"

// A capacity write takes effect at the very next allocation: the allocator
// re-reads capacities every step, so fault injection can throttle a resource
// mid-run without touching any flow state.
func TestSetResourceCapacityTakesEffectNextStep(t *testing.T) {
	e := New(0.001)
	r := e.AddResource("mc", 100)
	f := &Flow{Remaining: 1e9, Demands: []Demand{{r, 1}}}
	e.StartFlow(f)
	e.Step()
	almost(t, f.Rate(), 100, 1e-9, "nominal rate")

	e.SetResourceCapacity(r, 30)
	if got := e.ResourceCapacity(r); got != 30 {
		t.Fatalf("capacity readback: got %v, want 30", got)
	}
	e.Step()
	almost(t, f.Rate(), 30, 1e-9, "throttled rate")

	e.SetResourceCapacity(r, 100)
	e.Step()
	almost(t, f.Rate(), 100, 1e-9, "restored rate")
}

func TestSetResourceCapacityRejectsNonPositive(t *testing.T) {
	e := New(0.001)
	r := e.AddResource("mc", 100)
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity should panic")
		}
	}()
	e.SetResourceCapacity(r, 0)
}
