package admit

import (
	"testing"

	"numacs/internal/hw"
	"numacs/internal/metrics"
	"numacs/internal/sched"
	"numacs/internal/sim"
	"numacs/internal/topology"
)

// testController builds a controller over a real 4-socket scheduler.
func testController(cfg Config) (*Controller, *sched.Scheduler, *sim.Engine) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(50e-6)
	h := hw.New(e, m)
	s := sched.New(h, metrics.New(m.Sockets))
	e.AddActor(s)
	c := New(cfg, s, e)
	e.AddActor(c)
	return c, s, e
}

// holdStatement is a statement whose completion the test controls.
type holdStatement struct {
	st       *Statement
	done     func()
	ranGran  int
	ranAt    float64
	started  bool
	shedding bool
}

func newHold(tenant string, class Class) *holdStatement {
	h := &holdStatement{}
	h.st = &Statement{
		Tenant: tenant,
		Class:  class,
		Run: func(gran int, issuedAt float64, done func()) {
			h.started = true
			h.ranGran = gran
			h.ranAt = issuedAt
			h.done = done
		},
		OnShed: func() { h.shedding = true },
	}
	return h
}

func TestBypassDispatchesSynchronously(t *testing.T) {
	c, _, e := testController(Config{})
	h := newHold("t1", OLAP)
	c.Submit(h.st)
	if !h.started {
		t.Fatal("uncontended statement not dispatched synchronously")
	}
	if h.ranGran != 0 {
		t.Fatalf("uncontended gran cap = %d, want 0 (uncapped)", h.ranGran)
	}
	if h.ranAt != e.Now() {
		t.Fatalf("issuedAt = %v, want now %v", h.ranAt, e.Now())
	}
	if c.InFlight() != 1 || c.Queued() != 0 {
		t.Fatalf("inflight=%d queued=%d", c.InFlight(), c.Queued())
	}
	h.done()
	if c.InFlight() != 0 {
		t.Fatalf("inflight=%d after done", c.InFlight())
	}
	st := c.Stats("t1")
	if st.Submitted != 1 || st.Admitted != 1 || st.Completed != 1 || st.Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Latency.N() != 1 || st.Wait.N() != 1 || st.Wait.Max() != 0 {
		t.Fatalf("latency/wait histograms = %d/%d samples, wait max %v",
			st.Latency.N(), st.Wait.N(), st.Wait.Max())
	}
}

// TestWeightedFairAdmission: with one slot and two permanently backlogged
// tenants, admissions interleave proportionally to the weights.
func TestWeightedFairAdmission(t *testing.T) {
	c, _, _ := testController(Config{
		Tenants:       []TenantSpec{{Name: "heavy", Weight: 3}, {Name: "light", Weight: 1}},
		MinConcurrent: 1, MaxConcurrent: 1, InitialConcurrent: 1,
	})
	var order []string
	var current *holdStatement
	submit := func(tenant string) *holdStatement {
		h := newHold(tenant, OLAP)
		run := h.st.Run
		h.st.Run = func(gran int, at float64, done func()) {
			order = append(order, tenant)
			run(gran, at, done)
			current = h
		}
		c.Submit(h.st)
		return h
	}
	// Backlog both tenants deeply, then serve 40 admissions.
	first := submit("heavy") // occupies the slot
	for i := 0; i < 60; i++ {
		submit("heavy")
		submit("light")
	}
	current = first
	for i := 0; i < 40; i++ {
		current.done()
	}
	heavy, light := 0, 0
	for _, name := range order[1:41] { // skip the pre-backlog first admission
		if name == "heavy" {
			heavy++
		} else {
			light++
		}
	}
	if heavy < 27 || heavy > 33 || light < 7 || light > 13 {
		t.Fatalf("40 admissions split heavy=%d light=%d, want ~30/10", heavy, light)
	}
}

// TestNoStarvationUnderGreedyTenant: a meek tenant's statement is admitted
// within a bounded number of slot grants even when a greedy tenant has a
// huge standing backlog and keeps resubmitting.
func TestNoStarvationUnderGreedyTenant(t *testing.T) {
	c, _, _ := testController(Config{
		Tenants:       []TenantSpec{{Name: "greedy", Weight: 1}, {Name: "meek", Weight: 1}},
		MinConcurrent: 1, MaxConcurrent: 1, InitialConcurrent: 1,
	})
	grants := 0
	var current func()
	var resubmit func()
	resubmit = func() {
		h := newHold("greedy", OLAP)
		run := h.st.Run
		h.st.Run = func(gran int, at float64, done func()) {
			grants++
			run(gran, at, done)
			current = h.done
			resubmit() // greedy keeps the pressure up
		}
		c.Submit(h.st)
	}
	h0 := newHold("greedy", OLAP)
	c.Submit(h0.st) // occupy the slot
	for i := 0; i < 500; i++ {
		resubmit()
	}
	meek := newHold("meek", OLAP)
	meekGrant := -1
	run := meek.st.Run
	meek.st.Run = func(gran int, at float64, done func()) {
		meekGrant = grants
		run(gran, at, done)
		current = meek.done
	}
	c.Submit(meek.st)
	current = h0.done
	for i := 0; i < 20 && meekGrant < 0; i++ {
		current()
	}
	if meekGrant < 0 {
		t.Fatal("meek tenant starved for 20 slot grants")
	}
	if meekGrant > 2 {
		t.Fatalf("meek tenant waited %d greedy grants, want <=2 (equal weights)", meekGrant)
	}
}

func TestDeadlineShedding(t *testing.T) {
	c, _, e := testController(Config{
		MinConcurrent: 1, MaxConcurrent: 1, InitialConcurrent: 1,
		OLAPDeadline: 1e-3, InteractiveDeadline: 2e-4,
		Period: 1e-4, // the shed sweep runs at the control cadence
	})
	hold := newHold("t", OLAP)
	c.Submit(hold.st) // occupies the only slot
	olap := newHold("t", OLAP)
	inter := newHold("t", Interactive)
	c.Submit(olap.st)
	c.Submit(inter.st)
	// Past the interactive deadline but not the OLAP one.
	e.Run(5e-4)
	if !inter.shedding {
		t.Fatal("interactive statement not shed past its deadline")
	}
	if olap.shedding || olap.started {
		t.Fatal("OLAP statement shed or started early")
	}
	// Past the OLAP deadline too.
	e.Run(1.5e-3)
	if !olap.shedding {
		t.Fatal("OLAP statement not shed past its deadline")
	}
	st := c.Stats("t")
	if st.Shed != 2 {
		t.Fatalf("shed = %d, want 2", st.Shed)
	}
	if c.TotalShed != 2 {
		t.Fatalf("TotalShed = %d", c.TotalShed)
	}
	// The held statement is unaffected.
	hold.done()
	if c.Stats("t").Completed != 1 {
		t.Fatal("held statement did not complete")
	}
}

// TestElasticThrottleUnderSaturation: deep scheduler queues drive the limit
// down to the floor and coarsen the fan-out cap.
func TestElasticThrottleUnderSaturation(t *testing.T) {
	c, s, e := testController(Config{
		MinConcurrent: 2, MaxConcurrent: 64, InitialConcurrent: 64,
		Period: 1e-3,
	})
	// Flood the scheduler with tasks that never complete: every worker goes
	// Working and the queues stay deep.
	for i := 0; i < 2000; i++ {
		s.Submit(&sched.Task{Affinity: i % 4, Hard: true,
			Run: func(w *sched.Worker, done func()) {}})
	}
	e.Run(25e-3)
	if got := c.Limit(); got != 2 {
		t.Fatalf("limit = %d under saturation, want floor 2", got)
	}
	if got := c.GranCap(); got <= 0 || got > 120/2 {
		t.Fatalf("gran cap = %d under saturation, want coarse (1..60)", got)
	}
	if len(c.Trace) == 0 {
		t.Fatal("no control samples recorded")
	}
	last := c.Trace[len(c.Trace)-1]
	if last.QueuedTasks == 0 || last.FreeWorkers != 0 {
		t.Fatalf("trace sample = %+v, want deep queues and no free workers", last)
	}
}

// TestElasticGrowthWhenIdle: with idle workers, shallow queues, and a
// statement backlog, the limit climbs back to the ceiling and the fan-out
// cap lifts.
func TestElasticGrowthWhenIdle(t *testing.T) {
	c, _, e := testController(Config{
		MinConcurrent: 2, MaxConcurrent: 32, InitialConcurrent: 2,
		Period: 1e-3,
	})
	// Two admitted statements that never complete (their "work" does not
	// touch the scheduler, so the machine looks idle), plus a backlog.
	for i := 0; i < 40; i++ {
		c.Submit(newHold("t", OLAP).st)
	}
	e.Run(50e-3)
	if got := c.Limit(); got != 32 {
		t.Fatalf("limit = %d after idle growth, want ceiling 32", got)
	}
	if got := c.GranCap(); got != 0 {
		t.Fatalf("gran cap = %d when idle, want 0 (uncapped)", got)
	}
	if got := c.InFlight(); got != 32 {
		t.Fatalf("inflight = %d, want 32 (backfilled as the limit grew)", got)
	}
}

// TestPriorityAgingBoostsWaitingHead: with aging enabled, a head that waited
// long overtakes a lighter-weight tenant's fresh head.
func TestPriorityAgingBoostsWaitingHead(t *testing.T) {
	c, _, e := testController(Config{
		Tenants:       []TenantSpec{{Name: "a", Weight: 4}, {Name: "b", Weight: 1}},
		MinConcurrent: 1, MaxConcurrent: 1, InitialConcurrent: 1,
		AgingRate: 1000, // 1 virtual unit of credit per ms waited
	})
	hold := newHold("a", OLAP)
	c.Submit(hold.st) // occupy the slot
	bOld := newHold("b", OLAP)
	c.Submit(bOld.st)
	// Let b's head age, then pile on fresh heavy-weight arrivals.
	e.Run(5e-3)
	aFresh := newHold("a", OLAP)
	c.Submit(aFresh.st)
	hold.done()
	if !bOld.started {
		t.Fatal("aged head of the light tenant was not admitted first")
	}
	if aFresh.started {
		t.Fatal("fresh heavy-tenant statement jumped the aged head")
	}
}

// TestShedReentrantSubmit: an OnShed that synchronously resubmits (exactly
// what closed-loop clients do) must not corrupt the tenant queue — every
// submitted statement is accounted exactly once as admitted, shed, or still
// queued, and nothing runs twice.
func TestShedReentrantSubmit(t *testing.T) {
	c, _, e := testController(Config{
		MinConcurrent: 1, MaxConcurrent: 1, InitialConcurrent: 1,
		OLAPDeadline: 1e-4, Period: 1e-4,
	})
	hold := newHold("t", OLAP)
	c.Submit(hold.st) // occupies the only slot for the whole test
	runs := make(map[*Statement]int)
	resubmits := 0
	var mk func() *Statement
	mk = func() *Statement {
		st := &Statement{Tenant: "t"}
		st.Run = func(gran int, at float64, done func()) { runs[st]++; done() }
		st.OnShed = func() {
			resubmits++
			if resubmits < 60 {
				c.Submit(mk()) // reenters the controller mid-shed sweep
			}
		}
		return st
	}
	for i := 0; i < 10; i++ {
		c.Submit(mk())
	}
	e.Run(20e-3) // many shed sweeps; each shed spawns a fresh statement
	if resubmits < 60 {
		t.Fatalf("only %d sheds fired; the reissue chain stalled", resubmits)
	}
	st := c.Stats("t")
	if st.Admitted+st.Shed+uint64(c.Queued()) != st.Submitted {
		t.Fatalf("accounting leak: admitted %d + shed %d + queued %d != submitted %d",
			st.Admitted, st.Shed, c.Queued(), st.Submitted)
	}
	for s, n := range runs {
		if n != 1 {
			t.Fatalf("statement %p ran %d times", s, n)
		}
	}
	if c.InFlight() != 1 {
		t.Fatalf("inflight = %d, want 1 (the held statement)", c.InFlight())
	}
	hold.done()
	if c.InFlight() != 0 {
		t.Fatalf("inflight = %d after done", c.InFlight())
	}
}

func TestAutoRegisterAndNames(t *testing.T) {
	c, _, _ := testController(Config{Tenants: []TenantSpec{{Name: "cfg", Weight: 2}}})
	c.Submit(newHold("walkin", OLAP).st)
	names := c.TenantNames()
	if len(names) != 2 || names[0] != "cfg" || names[1] != "walkin" {
		t.Fatalf("tenant names = %v", names)
	}
	if got := c.Stats("walkin").Weight; got != 1 {
		t.Fatalf("auto-registered weight = %v, want 1", got)
	}
	if got := c.Stats("nobody"); got.Submitted != 0 || got.Name != "nobody" {
		t.Fatalf("unknown tenant stats = %+v", got)
	}
}
