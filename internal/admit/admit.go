// Package admit is the statement-admission and elastic-concurrency front end
// sitting between clients and the execution engine. The Section 5.1
// scheduler orders and steals tasks well, but nothing in the paper's engine
// governs how much work *enters* it: every statement fans out its full task
// set immediately, so under heavy concurrent traffic the priority queues
// grow without bound and tail latency is unbounded — the overload regime the
// paper's concurrency discussion (Section 5) warns about. This package
// closes that gap with three cooperating mechanisms:
//
//   - Weighted-fair admission: statements wait in per-tenant queues and are
//     admitted by start-time fair queuing over the tenant weights, with
//     priority aging of queue heads, so a greedy tenant cannot starve the
//     others and every tenant's goodput tracks its weight share.
//   - Elastic concurrency: a control loop watches scheduler saturation (free
//     and parked worker counts, per-thread-group queue depths) and adapts
//     both the number of concurrently admitted statements (AIMD) and the
//     per-statement task granularity — fan-out splits coarser when queues
//     are deep and finer when sockets idle (the exec.Pipeline MaxFanout
//     lever).
//   - Load shedding: per-class queue-wait deadlines (heavy OLAP scans vs
//     short Interactive delta writes) drop statements that can no longer
//     meet their latency target, keeping the p99 of completed statements
//     bounded when offered load exceeds capacity.
//
// An idle controller is a bypass: a statement submitted when a concurrency
// slot is free and no one queues is dispatched synchronously with no fan-out
// cap, so the uncontended path is bit-identical to calling the engine
// directly (pinned by the harness golden test).
package admit

import (
	"fmt"
	"math"

	"numacs/internal/metrics"
	"numacs/internal/sched"
	"numacs/internal/sim"
	"numacs/internal/trace"
)

// Class buckets statements by their latency contract; each class has its own
// shedding deadline.
type Class int

const (
	// OLAP is the heavy-scan class: analytic statements that fan out across
	// the machine and tolerate a generous deadline.
	OLAP Class = iota
	// Interactive is the short-statement class (delta write batches, point
	// work): cheap to run, latency-critical, tight deadline.
	Interactive
)

// String names the class.
func (c Class) String() string {
	switch c {
	case OLAP:
		return "OLAP"
	case Interactive:
		return "interactive"
	default:
		return "class(?)"
	}
}

// Statement is one unit of admission: a deferred dispatch into the engine.
type Statement struct {
	// Tenant names the issuing tenant; unknown tenants are auto-registered
	// with weight 1.
	Tenant string
	// Class selects the shedding deadline.
	Class Class
	// Run dispatches the statement into the engine when admitted: gran is
	// the task-fan-out cap (0 = uncapped), issuedAt the admission-queue
	// arrival time — the statement's tasks carry it as their scheduler
	// priority, so a statement that waited long enters the task queues aged
	// ahead of fresh ones — and done must be called when the statement
	// completes.
	Run func(gran int, issuedAt float64, done func())
	// OnShed fires instead of Run when load shedding drops the statement
	// (queue wait exceeded the class deadline). Nil is allowed.
	OnShed func()
	// Trace, when non-nil, is the statement's flight-recorder span: the
	// controller stamps the admission instant onto it at dispatch and the
	// shed instant when load shedding drops it.
	Trace *trace.Statement

	enqueued float64
}

// TenantSpec configures one tenant's weight for fair admission.
type TenantSpec struct {
	// Name identifies the tenant in Statement.Tenant.
	Name string
	// Weight is the tenant's fair share (1 when zero).
	Weight float64
}

// Config tunes the controller. The zero value is usable: New fills every
// zero field with the documented default.
type Config struct {
	// Tenants pre-registers tenants with weights; statements from unlisted
	// tenants auto-register with weight 1.
	Tenants []TenantSpec

	// MinConcurrent and MaxConcurrent bound the elastic concurrency limit
	// (defaults: 2 and the machine's worker count).
	MinConcurrent, MaxConcurrent int
	// InitialConcurrent is the starting limit (default: MaxConcurrent — the
	// controller throttles down from open, so an uncontended engine never
	// sees admission queuing).
	InitialConcurrent int

	// Period is the control-loop interval in virtual seconds (default 1 ms,
	// the watchdog's cadence).
	Period float64
	// HighQueuePerWorker is the saturation watermark: when the machine-wide
	// task-queue depth per worker exceeds it, the limit multiplicatively
	// decreases and the statement granularity coarsens (default 2).
	HighQueuePerWorker float64
	// LowQueuePerWorker is the idle watermark: below it, with at least
	// IdleWorkerFraction of the workers free, the limit additively increases
	// and granularity refines (defaults 0.5 and 0.1).
	LowQueuePerWorker  float64
	IdleWorkerFraction float64

	// OLAPDeadline and InteractiveDeadline are the per-class queue-wait
	// deadlines in virtual seconds; a statement still queued past its
	// deadline is shed. Zero disables shedding for the class.
	OLAPDeadline        float64
	InteractiveDeadline float64

	// AgingRate converts a queue head's wait into a virtual-time credit
	// (units of virtual service per second waited): the admission pick key
	// is the tenant's virtual finish time minus AgingRate x head wait, so
	// long-waiting heads age ahead even across weight differences
	// (default 0 — pure weighted fairness, which is already starvation-free).
	AgingRate float64
}

// ControlSample is one control-loop observation, kept for reports: the
// elastic limit and granularity cap with the saturation signals that
// produced them.
type ControlSample struct {
	// Time is the virtual timestamp of the sample.
	Time float64
	// Limit and GranCap are the controller outputs after the decision.
	Limit, GranCap int
	// InFlight, QueuedStatements, QueuedTasks and FreeWorkers are the
	// observed inputs.
	InFlight, QueuedStatements, QueuedTasks, FreeWorkers int
}

// TenantStats is the per-tenant admission outcome.
type TenantStats struct {
	// Name and Weight echo the tenant registration.
	Name   string
	Weight float64
	// Submitted counts statements handed to Submit, Admitted the ones
	// dispatched, Completed the ones that finished, Shed the ones dropped by
	// load shedding.
	Submitted, Admitted, Completed, Shed uint64
	// Latency records admission-to-completion latencies (queue wait
	// included); Wait records the queue wait of admitted statements.
	Latency *metrics.Histogram
	Wait    *metrics.Histogram
}

// tenant is the controller-internal per-tenant state.
type tenant struct {
	stats TenantStats
	queue []*Statement
	head  int // pop cursor; queue[head:] is the backlog
	// vfinish is the tenant's virtual finish time under start-time fair
	// queuing: admitting one statement advances it by 1/weight.
	vfinish float64
}

// backlog returns the tenant's queued statements.
func (t *tenant) backlog() int { return len(t.queue) - t.head }

// pop removes and returns the oldest queued statement.
func (t *tenant) pop() *Statement {
	st := t.queue[t.head]
	t.queue[t.head] = nil
	t.head++
	if t.head == len(t.queue) {
		t.queue = t.queue[:0]
		t.head = 0
	}
	return st
}

// Controller is the admission front end. Register it as a simulation actor
// (core.Engine.EnableAdmission does) and route statements through Submit.
type Controller struct {
	cfg     Config
	sched   *sched.Scheduler
	sim     *sim.Engine
	workers int

	tenants []*tenant
	byName  map[string]int

	inflight    int
	limit       int
	granLevel   int
	vtime       float64
	lastControl float64

	// Trace records one ControlSample per control-loop run, for reports.
	Trace []ControlSample

	// Decisions, when non-nil, is the flight recorder's decision log: the
	// controller records AIMD limit/granularity changes and deadline sheds
	// with the saturation numbers that caused them.
	Decisions *trace.DecisionLog

	// TotalShed counts shed statements across tenants.
	TotalShed uint64
}

// maxGranLevel bounds coarsening: level L caps fan-out at workers >> L, so
// level 3 still grants a statement an eighth of the machine.
const maxGranLevel = 3

// New builds a controller over the scheduler it watches. Zero config fields
// take the documented defaults.
func New(cfg Config, s *sched.Scheduler, se *sim.Engine) *Controller {
	workers := 0
	for _, tg := range s.TGs {
		workers += len(tg.Workers)
	}
	if cfg.MinConcurrent <= 0 {
		cfg.MinConcurrent = 2
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = workers
	}
	if cfg.MaxConcurrent < cfg.MinConcurrent {
		cfg.MaxConcurrent = cfg.MinConcurrent
	}
	if cfg.InitialConcurrent <= 0 {
		cfg.InitialConcurrent = cfg.MaxConcurrent
	}
	if cfg.InitialConcurrent < cfg.MinConcurrent {
		cfg.InitialConcurrent = cfg.MinConcurrent
	}
	if cfg.InitialConcurrent > cfg.MaxConcurrent {
		cfg.InitialConcurrent = cfg.MaxConcurrent
	}
	if cfg.Period <= 0 {
		cfg.Period = 1e-3
	}
	if cfg.HighQueuePerWorker <= 0 {
		cfg.HighQueuePerWorker = 2
	}
	if cfg.LowQueuePerWorker <= 0 {
		cfg.LowQueuePerWorker = 0.5
	}
	if cfg.IdleWorkerFraction <= 0 {
		cfg.IdleWorkerFraction = 0.1
	}
	c := &Controller{
		cfg:     cfg,
		sched:   s,
		sim:     se,
		workers: workers,
		byName:  make(map[string]int),
		limit:   cfg.InitialConcurrent,
	}
	for _, ts := range cfg.Tenants {
		c.register(ts.Name, ts.Weight)
	}
	return c
}

// register adds a tenant (idempotent; later weights do not override).
func (c *Controller) register(name string, weight float64) *tenant {
	if i, ok := c.byName[name]; ok {
		return c.tenants[i]
	}
	if weight <= 0 {
		weight = 1
	}
	t := &tenant{stats: TenantStats{
		Name: name, Weight: weight,
		Latency: &metrics.Histogram{}, Wait: &metrics.Histogram{},
	}}
	c.byName[name] = len(c.tenants)
	c.tenants = append(c.tenants, t)
	return t
}

// Submit hands a statement to the controller. With a free concurrency slot
// and an empty queue it dispatches synchronously (the bypass path);
// otherwise the statement queues under its tenant.
func (c *Controller) Submit(st *Statement) {
	t := c.register(st.Tenant, 1)
	t.stats.Submitted++
	st.enqueued = c.sim.Now()
	t.queue = append(t.queue, st)
	c.dispatch()
}

// Tick implements sim.Actor: each Period, run the control loop and shed
// expired queued statements (dispatch also sheds lazily on pop, so the
// periodic sweep only bounds queue memory and waiting-statement age — one
// Period of slack on ms-scale deadlines, without an every-step backlog
// walk); then backfill open slots.
func (c *Controller) Tick(now float64) {
	if now-c.lastControl >= c.cfg.Period {
		c.lastControl = now
		c.control(now)
		c.shedExpired(now)
	}
	c.dispatch()
}

// control is the elastic concurrency loop: saturation in, (limit, granLevel)
// out, AIMD.
func (c *Controller) control(now float64) {
	sat := c.sched.Saturation()
	qpw := float64(sat.Queued) / float64(c.workers)
	prevLimit, prevGran := c.limit, c.granLevel
	switch {
	case qpw > c.cfg.HighQueuePerWorker:
		// Saturated: throttle multiplicatively and coarsen the fan-out so
		// in-flight statements stop flooding the queues with fine slices.
		dec := c.limit / 4
		if dec < 1 {
			dec = 1
		}
		c.limit -= dec
		if c.limit < c.cfg.MinConcurrent {
			c.limit = c.cfg.MinConcurrent
		}
		if c.granLevel < maxGranLevel {
			c.granLevel++
		}
	case qpw < c.cfg.LowQueuePerWorker &&
		float64(sat.Free+sat.Parked) >= c.cfg.IdleWorkerFraction*float64(c.workers):
		// Idle headroom: admit one more (true additive increase), split finer.
		c.limit++
		if c.limit > c.cfg.MaxConcurrent {
			c.limit = c.cfg.MaxConcurrent
		}
		if c.granLevel > 0 {
			c.granLevel--
		}
	}
	c.Trace = append(c.Trace, ControlSample{
		Time: now, Limit: c.limit, GranCap: c.GranCap(),
		InFlight: c.inflight, QueuedStatements: c.Queued(),
		QueuedTasks: sat.Queued, FreeWorkers: sat.Free,
	})
	if c.Decisions != nil && (c.limit != prevLimit || c.granLevel != prevGran) {
		kind := "aimd-grow"
		if c.limit < prevLimit || c.granLevel > prevGran {
			kind = "aimd-throttle"
		}
		c.Decisions.Record(trace.Decision{
			Time: now, Source: "admission", Kind: kind, From: -1, To: -1,
			Cause: fmt.Sprintf("queue/worker %.2f (high %.2f, low %.2f), %d free: limit %d->%d, gran cap %d",
				qpw, c.cfg.HighQueuePerWorker, c.cfg.LowQueuePerWorker, sat.Free, prevLimit, c.limit, c.GranCap()),
		})
	}
}

// DeadlineFor returns the class's shedding deadline in virtual seconds (0 =
// none) — exported so the shared-scan cohort layer can extend the admission
// latency contract into its join window: a statement that would blow its
// class deadline waiting for a cohort is shed there too.
func (c *Controller) DeadlineFor(cl Class) float64 { return c.deadline(cl) }

// deadline returns the class's shedding deadline (0 = none).
func (c *Controller) deadline(cl Class) float64 {
	if cl == Interactive {
		return c.cfg.InteractiveDeadline
	}
	return c.cfg.OLAPDeadline
}

// shedExpired drops queued statements whose wait exceeded their class
// deadline. The whole backlog is scanned, not just the head: classes mix in
// one tenant queue, so a tight-deadline Interactive statement can expire
// behind a still-live OLAP one. The queue is compacted before any OnShed
// fires — an OnShed may reenter Submit (closed-loop clients reissue), and
// that reentry must see a consistent queue, not a half-compacted one.
func (c *Controller) shedExpired(now float64) {
	var expired []*Statement
	for _, t := range c.tenants {
		if t.backlog() == 0 {
			continue
		}
		q := t.queue[t.head:]
		kept := q[:0]
		expired = expired[:0]
		for _, st := range q {
			if d := c.deadline(st.Class); d > 0 && now-st.enqueued > d {
				expired = append(expired, st)
			} else {
				kept = append(kept, st)
			}
		}
		if len(expired) == 0 {
			continue
		}
		for i := len(kept); i < len(q); i++ {
			q[i] = nil
		}
		t.queue = kept
		t.head = 0
		for _, st := range expired {
			c.shed(t, st)
		}
	}
}

// shed drops one statement.
func (c *Controller) shed(t *tenant, st *Statement) {
	t.stats.Shed++
	c.TotalShed++
	now := c.sim.Now()
	if st.Trace != nil {
		st.Trace.MarkShed(now, "admission")
	}
	if c.Decisions != nil {
		c.Decisions.Record(trace.Decision{
			Time: now, Source: "admission", Kind: "shed", Item: t.stats.Name, From: -1, To: -1,
			Cause: fmt.Sprintf("%s statement waited %.1fms > %.1fms deadline",
				st.Class, (now-st.enqueued)*1e3, c.deadline(st.Class)*1e3),
		})
	}
	if st.OnShed != nil {
		st.OnShed()
	}
}

// pickTenant selects the backlogged tenant with the smallest aged virtual
// start time (start-time fair queuing; ties break by registration order).
func (c *Controller) pickTenant() *tenant {
	var best *tenant
	bestKey := math.Inf(1)
	now := c.sim.Now()
	for _, t := range c.tenants {
		if t.backlog() == 0 {
			continue
		}
		start := t.vfinish
		if c.vtime > start {
			start = c.vtime
		}
		key := start - c.cfg.AgingRate*(now-t.queue[t.head].enqueued)
		if key < bestKey {
			best, bestKey = t, key
		}
	}
	return best
}

// dispatch admits queued statements while concurrency slots are open,
// shedding expired queue heads as it encounters them.
func (c *Controller) dispatch() {
	now := c.sim.Now()
	for c.inflight < c.limit {
		t := c.pickTenant()
		if t == nil {
			return
		}
		st := t.pop()
		if d := c.deadline(st.Class); d > 0 && now-st.enqueued > d {
			c.shed(t, st)
			continue
		}
		// Virtual-time accounting: one statement of service at 1/weight.
		start := t.vfinish
		if c.vtime > start {
			start = c.vtime
		}
		t.vfinish = start + 1/t.stats.Weight
		c.vtime = start
		t.stats.Admitted++
		t.stats.Wait.Record(now - st.enqueued)
		c.inflight++
		if st.Trace != nil {
			st.Trace.MarkAdmitted(now)
		}
		st.Run(c.GranCap(), st.enqueued, func() { c.statementDone(t, st) })
	}
}

// statementDone is the completion hook: free the slot, record the
// end-to-end latency, and backfill from the queues.
func (c *Controller) statementDone(t *tenant, st *Statement) {
	c.inflight--
	t.stats.Completed++
	t.stats.Latency.Record(c.sim.Now() - st.enqueued)
	c.dispatch()
}

// Limit returns the current elastic concurrency limit.
func (c *Controller) Limit() int { return c.limit }

// GranCap returns the current per-statement fan-out cap (0 = uncapped).
func (c *Controller) GranCap() int {
	if c.granLevel == 0 {
		return 0
	}
	cap := c.workers >> uint(c.granLevel)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// InFlight returns the number of admitted, incomplete statements.
func (c *Controller) InFlight() int { return c.inflight }

// Queued returns the total queued-statement backlog across tenants.
func (c *Controller) Queued() int {
	n := 0
	for _, t := range c.tenants {
		n += t.backlog()
	}
	return n
}

// TenantNames lists registered tenants in registration order.
func (c *Controller) TenantNames() []string {
	out := make([]string, len(c.tenants))
	for i, t := range c.tenants {
		out[i] = t.stats.Name
	}
	return out
}

// Stats returns the tenant's admission outcome (zero value for unknown
// tenants).
func (c *Controller) Stats(name string) TenantStats {
	if i, ok := c.byName[name]; ok {
		return c.tenants[i].stats
	}
	return TenantStats{Name: name}
}
