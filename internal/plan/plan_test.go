package plan

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/exec"
)

// testSchema builds the unplaced fixture tables the planning tests use
// (planning and statistics need only metadata, not placement).
func testSchema() (hot, dim1, dim2, fact *colstore.Table) {
	hot = colstore.NewTable("HOT", []*colstore.Column{
		colstore.NewSynthetic("H_VAL", 60_000, 1<<14, false),
	})
	dim1 = colstore.NewTable("DIM1", []*colstore.Column{
		colstore.NewSynthetic("D1_DATE", 15_000, 1<<12, false),
		colstore.NewSynthetic("D1_ID", 15_000, 1<<14, false),
	})
	dim2 = colstore.NewTable("DIM2", []*colstore.Column{
		colstore.NewSynthetic("D2_REGION", 3_750, 1<<10, false),
		colstore.NewSynthetic("D2_ID", 3_750, 1<<12, false),
	})
	fact = colstore.NewTable("FACT", []*colstore.Column{
		colstore.NewSynthetic("F_FK1", 60_000, 1<<14, false),
		colstore.NewSynthetic("F_FK2", 60_000, 1<<12, false),
	})
	return
}

// star2 builds the two-dimension star statement with the large dimension
// written first (so BuildStar nests the small one outermost and the
// join-order pass has something to fix).
func star2(dim1, dim2, fact *colstore.Table) StarStatement {
	return StarStatement{
		Fact: fact,
		Dims: []StarDim{
			{Dim: dim1, Predicate: "D1_DATE", Key: "D1_ID", FactFK: "F_FK1",
				Selectivity: 0.05, HitsPerProbeRow: 1},
			{Dim: dim2, Predicate: "D2_REGION", Key: "D2_ID", FactFK: "F_FK2",
				Selectivity: 0.1, HitsPerProbeRow: 2},
		},
		AggBytesPerRow: 12, AggCyclesPerRow: 24,
		HTSockets: []int{0},
	}
}

// TestPushdownFoldsPredicates: the pushdown pass folds the filter into the
// scan — primary predicate first, extras in written order, index permission
// carried along.
func TestPushdownFoldsPredicates(t *testing.T) {
	hot, _, _, _ := testSchema()
	p := Optimize(BuildQuery(Statement{
		Table: hot, Column: "H_VAL", Selectivity: 0.01,
		ExtraPredicateColumns: []string{"H_VAL"}, // self-join-style second predicate
		UseIndex:              true, Parallel: true,
	}), nil, nil)
	sc := p.Scan
	if sc == nil {
		t.Fatal("no physical scan")
	}
	if sc.Column != "H_VAL" || sc.Selectivity != 0.01 || !sc.UseIndex || !sc.Parallel {
		t.Fatalf("scan fields wrong: %+v", sc)
	}
	if len(sc.ExtraPredicateColumns) != 1 || sc.ExtraPredicateColumns[0] != "H_VAL" {
		t.Fatalf("extra predicates wrong: %v", sc.ExtraPredicateColumns)
	}
	root, ok := p.Root.(*MaterializeNode)
	if !ok {
		t.Fatalf("root is %T, want materialize", p.Root)
	}
	if _, ok := root.Input.(*ScanNode); !ok {
		t.Fatalf("filter not folded: input is %T", root.Input)
	}
}

// TestShareableRule pins the cohort-feeding rule: parallel, index-free,
// single-predicate, single-part — the same statements core routed to the
// registry before the planner existed.
func TestShareableRule(t *testing.T) {
	hot, _, _, _ := testSchema()
	base := Statement{Table: hot, Column: "H_VAL", Selectivity: 1e-5, Parallel: true}

	if p := Optimize(BuildQuery(base), nil, nil); !p.Shareable || p.ShareKey != "HOT.H_VAL" {
		t.Fatalf("base statement not shareable: %+v", p)
	}
	cases := map[string]Statement{
		"index":      {Table: hot, Column: "H_VAL", Selectivity: 1e-5, Parallel: true, UseIndex: true},
		"serial":     {Table: hot, Column: "H_VAL", Selectivity: 1e-5},
		"multi-pred": {Table: hot, Column: "H_VAL", Selectivity: 1e-5, Parallel: true, ExtraPredicateColumns: []string{"H_VAL"}},
	}
	for name, st := range cases {
		if p := Optimize(BuildQuery(st), nil, nil); p.Shareable {
			t.Errorf("%s statement marked shareable", name)
		}
	}
	multi := colstore.NewTable("PP", []*colstore.Column{
		colstore.NewSynthetic("C", 1000, 1<<8, false),
	})
	multi.Parts = append(multi.Parts, multi.Parts[0])
	if p := Optimize(BuildQuery(Statement{Table: multi, Column: "C", Selectivity: 1e-5, Parallel: true}), nil, nil); p.Shareable {
		t.Error("multi-part statement marked shareable")
	}
}

// TestBuildSideEmptyStats: with no statistics the build-side pass keeps the
// written sides and the effective hit rate is the written float, exactly.
func TestBuildSideEmptyStats(t *testing.T) {
	_, dim1, _, fact := testSchema()
	st := StarStatement{
		Fact: fact,
		Dims: []StarDim{{Dim: dim1, Predicate: "D1_DATE", Key: "D1_ID", FactFK: "F_FK1",
			Selectivity: 0.05, HitsPerProbeRow: 1}},
		AggBytesPerRow: 12, AggCyclesPerRow: 24,
	}
	p := Optimize(BuildStar(st), nil, nil)
	if len(p.Joins) != 1 {
		t.Fatalf("want 1 join, got %d", len(p.Joins))
	}
	j := p.Joins[0]
	if j.Swapped {
		t.Error("swapped without stats")
	}
	if j.EffHits != 1 {
		t.Errorf("EffHits %v != written 1 (bit-identity contract)", j.EffHits)
	}
}

// TestBuildSideSwap: when the probe side's estimate is smaller than the
// filtered build side's, the pass swaps — and the folded effective hit rate
// preserves the estimated match count exactly.
func TestBuildSideSwap(t *testing.T) {
	// A huge, barely-filtered dimension against a small fact.
	dim := colstore.NewTable("BIGDIM", []*colstore.Column{
		colstore.NewSynthetic("B_PRED", 200_000, 1<<12, false),
		colstore.NewSynthetic("B_ID", 200_000, 1<<14, false),
	})
	fact := colstore.NewTable("SMALLFACT", []*colstore.Column{
		colstore.NewSynthetic("S_FK", 10_000, 1<<14, false),
	})
	st := StarStatement{
		Fact: fact,
		Dims: []StarDim{{Dim: dim, Predicate: "B_PRED", Key: "B_ID", FactFK: "S_FK",
			Selectivity: 0.5, HitsPerProbeRow: 1}},
		AggBytesPerRow: 12, AggCyclesPerRow: 24,
	}
	stats := Collect(dim, fact)
	p := Optimize(BuildStar(st), stats, nil)
	j := p.Joins[0]
	if !j.Swapped {
		t.Fatalf("build side not swapped: est build %v", j.EstBuildRows)
	}
	// Estimated matches, written: factRows x sel x hits. Swapped lowering:
	// dimRows probe rows x EffHits. They must agree exactly.
	written := 10_000.0 * 0.5 * 1
	swapped := 200_000.0 * j.EffHits
	if math.Abs(written-swapped) > 1e-9*written {
		t.Errorf("swap changed estimated matches: written %v, swapped %v", written, swapped)
	}
}

// TestJoinOrderReorders: with statistics, the two-dimension chain lowers
// smallest-estimate first; without, the written order is kept. Either way the
// folded (selectivity x hits) product — the estimated result size — is
// order-invariant.
func TestJoinOrderReorders(t *testing.T) {
	_, dim1, dim2, fact := testSchema()
	st := star2(dim1, dim2, fact)

	withStats := Optimize(BuildStar(st), Collect(dim1, dim2, fact), nil)
	if len(withStats.Joins) != 2 {
		t.Fatalf("want 2 joins, got %d", len(withStats.Joins))
	}
	// DIM2 est 375 < DIM1 est 750: DIM2 must build first in lowered order.
	if withStats.Joins[0].BuildTable.Name != "DIM2" || withStats.Joins[1].BuildTable.Name != "DIM1" {
		t.Errorf("lowered order %s, %s; want DIM2 first",
			withStats.Joins[0].BuildTable.Name, withStats.Joins[1].BuildTable.Name)
	}

	noStats := Optimize(BuildStar(st), nil, nil)
	if noStats.Joins[0].BuildTable.Name != "DIM1" || noStats.Joins[1].BuildTable.Name != "DIM2" {
		t.Errorf("stat-less order %s, %s; want written order DIM1 first",
			noStats.Joins[0].BuildTable.Name, noStats.Joins[1].BuildTable.Name)
	}

	product := func(p *Physical) float64 {
		out := 1.0
		for _, j := range p.Joins {
			out *= j.HitsPerProbeRow * j.BuildScan.Selectivity
		}
		return out
	}
	if a, b := product(withStats), product(noStats); math.Abs(a-b) > 1e-12*math.Abs(a) {
		t.Errorf("join order changed the folded result product: %v vs %v", a, b)
	}
}

// TestAllReplicatedStats: statistics over fully replicated columns collect
// the replica count and leave every estimate (and therefore every rewrite
// decision) unchanged — replication is a placement fact, not a cardinality.
func TestAllReplicatedStats(t *testing.T) {
	_, dim1, dim2, fact := testSchema()
	for _, tb := range []*colstore.Table{dim1, dim2, fact} {
		for _, c := range tb.Parts[0].Columns {
			c.ReplicaSockets = []int{0, 1, 2, 3}
		}
	}
	stats := Collect(dim1, dim2, fact)
	if cs, ok := stats.Lookup(dim1, "D1_DATE"); !ok || cs.Replicas != 4 {
		t.Fatalf("replica count not collected: %+v", cs)
	}
	p := Optimize(BuildStar(star2(dim1, dim2, fact)), stats, nil)
	if p.Joins[0].BuildTable.Name != "DIM2" {
		t.Errorf("replication changed the join order: %s first", p.Joins[0].BuildTable.Name)
	}
	if p.Joins[0].Swapped || p.Joins[1].Swapped {
		t.Error("replication changed the build side")
	}
}

// TestLowerPlainMatchesHandWired pins the plain-statement lowering contract
// at the struct level: the emitted operators equal the hand-wired
// composition field for field.
func TestLowerPlainMatchesHandWired(t *testing.T) {
	hot, _, _, _ := testSchema()
	st := Statement{
		Table: hot, Column: "H_VAL", Selectivity: 1e-5,
		ProjectColumns: []string{"H_VAL"}, Parallel: true,
		Aggregate: true, AggBytesPerRow: 8, AggCyclesPerRow: 4,
	}
	low := Optimize(BuildQuery(st), nil, nil).Lower(Deps{DisableCoalesce: true})
	if len(low.Ops) != 2 {
		t.Fatalf("want 2 ops, got %d", len(low.Ops))
	}
	wantScan := &exec.ScanOp{
		Table: hot, Column: "H_VAL", Selectivity: 1e-5, Parallel: true,
	}
	if !reflect.DeepEqual(low.Scan, wantScan) {
		t.Errorf("lowered scan drifted:\n got  %+v\n want %+v", low.Scan, wantScan)
	}
	wantAgg := &exec.AggregateOp{
		Source: low.Scan, BytesPerRow: 8, CyclesPerRow: 4,
		ProjectColumns: []string{"H_VAL"}, Parallel: true, DisableCoalesce: true,
	}
	if !reflect.DeepEqual(low.Ops[1], wantAgg) {
		t.Errorf("lowered output drifted:\n got  %+v\n want %+v", low.Ops[1], wantAgg)
	}
}

// TestLowerStarMatchesHandWired pins the single-dimension star lowering
// contract at the struct level against the hand wiring join.ExecuteStar used
// to build inline.
func TestLowerStarMatchesHandWired(t *testing.T) {
	_, dim1, _, fact := testSchema()
	st := StarStatement{
		Fact: fact,
		Dims: []StarDim{{Dim: dim1, Predicate: "D1_DATE", Key: "D1_ID", FactFK: "F_FK1",
			Selectivity: 0.05, HitsPerProbeRow: 1}},
		AggBytesPerRow: 12, AggCyclesPerRow: 24,
		HTSockets: []int{0},
	}
	low := Optimize(BuildStar(st), Collect(dim1, fact), nil).Lower(Deps{})
	if len(low.Ops) != 4 {
		t.Fatalf("want 4 ops (scan, build, probe, agg), got %d", len(low.Ops))
	}
	scan, ok := low.Ops[0].(*exec.ScanOp)
	if !ok {
		t.Fatalf("op[0] is %T, want ScanOp", low.Ops[0])
	}
	wantScan := &exec.ScanOp{Table: dim1, Column: "D1_DATE", Selectivity: 0.05, Parallel: true}
	if !reflect.DeepEqual(scan, wantScan) {
		t.Errorf("lowered dim scan drifted:\n got  %+v\n want %+v", scan, wantScan)
	}
	agg, ok := low.Ops[3].(*exec.AggregateOp)
	if !ok {
		t.Fatalf("op[3] is %T, want AggregateOp", low.Ops[3])
	}
	if agg.BytesPerRow != 12 || agg.CyclesPerRow != 24 || !agg.Parallel {
		t.Errorf("lowered aggregate drifted: %+v", agg)
	}
}

// TestOptimizeIsNoOpForPlainStatements: the full pass pipeline and the empty
// pass list lower random plain statements to identical operator structs —
// pushdown is a pure representation change on this shape.
func TestOptimizeIsNoOpForPlainStatements(t *testing.T) {
	hot, _, _, _ := testSchema()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		st := Statement{
			Table: hot, Column: "H_VAL",
			Selectivity: math.Pow(10, -1-4*rng.Float64()),
			Parallel:    rng.Intn(2) == 0,
			UseIndex:    rng.Intn(2) == 0,
			Aggregate:   rng.Intn(2) == 0,
		}
		if rng.Intn(3) == 0 {
			st.ExtraPredicateColumns = []string{"H_VAL"}
		}
		if st.Aggregate {
			st.AggBytesPerRow = float64(1 + rng.Intn(16))
			st.AggCyclesPerRow = float64(1 + rng.Intn(32))
		}
		deps := Deps{DisableCoalesce: rng.Intn(2) == 0}
		opt := Optimize(BuildQuery(st), nil, nil).Lower(deps)
		raw := OptimizeWith(BuildQuery(st), nil, nil, nil).Lower(deps)
		if !reflect.DeepEqual(opt.Ops[0], raw.Ops[0]) {
			t.Fatalf("statement %d: optimized scan drifted from unoptimized:\n opt %+v\n raw %+v",
				i, opt.Ops[0], raw.Ops[0])
		}
		if !reflect.DeepEqual(opt.Ops[1], raw.Ops[1]) {
			t.Fatalf("statement %d: optimized output drifted from unoptimized", i)
		}
		if opt.Shareable != raw.Shareable || opt.ShareKey != raw.ShareKey {
			t.Fatalf("statement %d: cohort metadata drifted", i)
		}
	}
}

// TestRewritesPreserveEstimatedResult: on random two-dimension stars, the
// optimized plan's estimated result multiset size equals the written plan's —
// the rewrite passes (build-side swap, join order) change execution shape,
// never the answer. The estimated result size of a star is
// factRows x prod_k(sel_k x hits_k); per lowered join the probe-side row
// count times EffHits must reproduce the written matches regardless of swap
// or position.
func TestRewritesPreserveEstimatedResult(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		d1Rows := 1_000 + rng.Intn(200_000)
		d2Rows := 1_000 + rng.Intn(200_000)
		fRows := 1_000 + rng.Intn(200_000)
		dim1 := colstore.NewTable("DIM1", []*colstore.Column{
			colstore.NewSynthetic("D1_DATE", d1Rows, 1<<12, false),
			colstore.NewSynthetic("D1_ID", d1Rows, 1<<14, false),
		})
		dim2 := colstore.NewTable("DIM2", []*colstore.Column{
			colstore.NewSynthetic("D2_REGION", d2Rows, 1<<10, false),
			colstore.NewSynthetic("D2_ID", d2Rows, 1<<12, false),
		})
		fact := colstore.NewTable("FACT", []*colstore.Column{
			colstore.NewSynthetic("F_FK1", fRows, 1<<14, false),
			colstore.NewSynthetic("F_FK2", fRows, 1<<12, false),
		})
		st := star2(dim1, dim2, fact)
		st.Dims[0].Selectivity = 0.01 + 0.5*rng.Float64()
		st.Dims[1].Selectivity = 0.01 + 0.5*rng.Float64()
		st.Dims[0].HitsPerProbeRow = float64(1 + rng.Intn(3))
		st.Dims[1].HitsPerProbeRow = float64(1 + rng.Intn(3))

		stats := Collect(dim1, dim2, fact)
		written := OptimizeWith(BuildStar(st), stats, nil, nil)
		opt := Optimize(BuildStar(st), stats, nil)

		// The aggregate consumes the LAST lowered join's matches; re-derive
		// that stage's analytic match count from the physical fields alone,
		// mirroring exec.JoinOp's probe model: probe rows x effective hits x
		// build fraction (the build-side scan's selectivity; 1 when swapped,
		// since a swapped build inserts every fact row).
		matches := func(p *Physical) float64 {
			j := p.Joins[len(p.Joins)-1]
			if j.Swapped {
				cs, _ := stats.Lookup(j.BuildTable, j.BuildKey)
				return float64(cs.Rows) * j.EffHits
			}
			return float64(fRows) * j.EffHits * j.BuildScan.Selectivity
		}
		// The ground truth both plans must reproduce.
		want := float64(fRows) *
			st.Dims[0].Selectivity * st.Dims[0].HitsPerProbeRow *
			st.Dims[1].Selectivity * st.Dims[1].HitsPerProbeRow
		w, o := matches(written), matches(opt)
		if math.Abs(w-want) > 1e-6*want || math.Abs(o-want) > 1e-6*want {
			t.Fatalf("case %d (d1 %d, d2 %d, f %d): estimated result drifted: want %v, written %v, optimized %v\n opt joins: %+v %+v",
				i, d1Rows, d2Rows, fRows, want, w, o, opt.Joins[0], opt.Joins[1])
		}
	}
}

// TestExplainStable: rendering is deterministic and mentions the plan-level
// landmarks the golden gate relies on.
func TestExplainStable(t *testing.T) {
	hot, dim1, dim2, fact := testSchema()
	l := BuildQuery(Statement{Table: hot, Column: "H_VAL", Selectivity: 1e-5, Parallel: true})
	p := Optimize(l, Collect(hot), nil)
	a, b := l.Explain()+p.Explain(), l.Explain()+p.Explain()
	if a != b {
		t.Fatal("explain output is not deterministic")
	}
	for _, want := range []string{"logical:", "physical:", "shareable: yes (cohort key HOT.H_VAL)", "notes:"} {
		if !strings.Contains(a, want) {
			t.Errorf("explain output missing %q:\n%s", want, a)
		}
	}
	sp := Optimize(BuildStar(star2(dim1, dim2, fact)), Collect(dim1, dim2, fact), nil)
	out := sp.Explain()
	for _, want := range []string{"join[0]: build DIM2.D2_ID", "join[1]: build DIM1.D1_ID", "join-order:"} {
		if !strings.Contains(out, want) {
			t.Errorf("star explain missing %q:\n%s", want, out)
		}
	}
}
