package plan

import (
	"numacs/internal/colstore"
	"numacs/internal/delta"
)

// ColumnStats are the per-column statistics the optimizer passes consume:
// row count, compressed width, replica placement, IVP partitioning, delta
// size, and index presence. The zero value (unknown column, or planning
// without stats) makes every estimate zero, which keeps the written plan —
// stat-less optimization is a no-op, not a crash.
type ColumnStats struct {
	// Rows is the column's total row count across physical parts.
	Rows int
	// Bitcase is the bit-packed width of the indexvector entries.
	Bitcase uint
	// Replicas counts the sockets holding a full copy (1 = unreplicated,
	// 0 = unplaced).
	Replicas int
	// IVPParts counts the column's IVP partitions (0 = not IVP-partitioned).
	IVPParts int
	// DeltaRows counts watermark-visible uncompressed delta rows; they
	// inflate the scan's streamed bytes by delta.RowBytes each.
	DeltaRows int
	// HasIndex reports whether the column carries an inverted index.
	HasIndex bool
	// Placed reports whether the column's indexvector has a PSM (an unplaced
	// column cannot execute, so the planner treats it as estimate-only).
	Placed bool
}

// BytesPerRow is the compressed main-store bytes one row of the column
// streams during a scan.
func (c ColumnStats) BytesPerRow() float64 { return float64(c.Bitcase) / 8 }

// ScanBytes estimates the physical bytes one full pass over the column
// streams: the bit-packed main plus the uncompressed delta rows.
func (c ColumnStats) ScanBytes() float64 {
	return float64(c.Rows)*c.BytesPerRow() + float64(c.DeltaRows)*delta.RowBytes
}

// Stats is the planner's statistics catalog, keyed by table.column. Collect
// builds one from live tables; a nil *Stats is valid everywhere and yields
// zero ColumnStats (the empty-stats edge the optimizer tests pin).
type Stats struct {
	cols map[string]ColumnStats
}

// Collect gathers column statistics from the given tables' live metadata.
func Collect(tables ...*colstore.Table) *Stats {
	s := &Stats{cols: make(map[string]ColumnStats)}
	for _, t := range tables {
		if t == nil {
			continue
		}
		for _, name := range t.ColumnNames() {
			cs := ColumnStats{}
			for _, part := range t.Parts {
				c := part.ColumnByName(name)
				if c == nil {
					continue
				}
				cs.Rows += c.Rows
				cs.Bitcase = c.Bitcase
				cs.DeltaRows += c.DeltaRows()
				if c.Idx != nil {
					cs.HasIndex = true
				}
				if c.IVPSM != nil {
					cs.Placed = true
				}
				if r := len(c.ReplicaSockets); r > cs.Replicas {
					cs.Replicas = r
				}
				if len(c.Partitions) > 1 {
					cs.IVPParts = len(c.Partitions)
				}
			}
			if cs.Replicas == 0 && cs.Placed {
				cs.Replicas = 1
			}
			s.cols[t.Name+"."+name] = cs
		}
	}
	return s
}

// Lookup returns the statistics of table.column, reporting whether the
// catalog holds them. A nil receiver (planning without stats) reports false.
func (s *Stats) Lookup(table *colstore.Table, column string) (ColumnStats, bool) {
	if s == nil || table == nil {
		return ColumnStats{}, false
	}
	cs, ok := s.cols[table.Name+"."+column]
	return cs, ok
}

// estFilteredRows estimates a scan's qualifying rows: the column's row count
// scaled by every pushed predicate's selectivity. Unknown stats estimate 0.
func (s *Stats) estFilteredRows(sc *ScanNode) float64 {
	if len(sc.Preds) == 0 {
		// An unfiltered scan passes every row (the fact side of a join).
		cs, ok := s.Lookup(sc.Table, firstColumn(sc.Table))
		if !ok {
			return 0
		}
		return float64(cs.Rows)
	}
	cs, ok := s.Lookup(sc.Table, sc.Preds[0].Column)
	if !ok {
		return 0
	}
	rows := float64(cs.Rows)
	for _, p := range sc.Preds {
		rows *= p.Selectivity
	}
	return rows
}

// firstColumn returns a table's first column name ("" for an empty table) —
// the row-count proxy for unfiltered scans.
func firstColumn(t *colstore.Table) string {
	if t == nil {
		return ""
	}
	names := t.ColumnNames()
	if len(names) == 0 {
		return ""
	}
	return names[0]
}
