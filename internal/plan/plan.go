// Package plan is the cost-based logical/physical planner over the exec
// operator pipeline. Statements enter as declarative specs (the fields of a
// core.Query or a star-join statement), are built into a logical plan tree
// (Scan/Filter/Join/Aggregate/Materialize nodes with predicates and column
// references), rewritten by a small optimizer pass pipeline — predicate
// pushdown into the scan, join build-side selection and join ordering from
// column statistics (row counts, bitcase widths, replica placement), and
// delta/replica-aware partition planning — and lowered into the existing
// exec.Pipeline operators. The lowering contract is strict: on the written
// plan shapes the emitted operators are field-for-field identical to the
// hand-wired compositions they replace, so planner-driven execution is
// pinned counter-identical to the legacy paths by the harness golden tests.
//
// The planner also closes the loop between statement admission and the
// sharedscan cohort layer: a physical plan whose find phase is a shareable
// scan carries the cohort key (table.column), and core.SubmitBatch groups
// statements whose plans share that key into one plan-driven cohort instead
// of relying on arrival timing (see Physical.Shareable and
// sharedscan.Registry.SubmitGroup).
package plan

import (
	"fmt"

	"numacs/internal/colstore"
)

// Pred is one conjunctive range predicate on a named column. Selectivity is
// the analytic qualifying fraction, matching the simulation's analytic scan
// model.
type Pred struct {
	Column      string
	Selectivity float64
}

// Node is one logical plan node. The concrete node types below form the
// trees the builders produce: an output node (MaterializeNode or
// AggregateNode) over a chain of JoinNodes terminating in ScanNodes, with
// FilterNodes above scans until the pushdown pass folds them in.
type Node interface {
	logicalNode()
}

// ScanNode reads one table's rows. Preds holds the conjunctive predicates
// already pushed into the scan — empty on a freshly built tree, populated by
// the pushdown pass (Preds[0] is the primary predicate whose qualifying
// regions feed the downstream operator).
type ScanNode struct {
	Table    *colstore.Table
	Parallel bool
	Preds    []Pred
	// UseIndex permits index lookups for the pushed predicates when the
	// column has an index and the cost model's selectivity threshold admits
	// them (the decision itself stays in exec.ScanOp at Open time; see
	// exec.IndexEligible for the shared rule).
	UseIndex bool
}

func (*ScanNode) logicalNode() {}

// FilterNode applies conjunctive range predicates to its input. The builders
// emit it above the scan; the pushdown pass folds it into the ScanNode, and
// lowering folds any remaining filter itself so unoptimized plans stay
// executable.
type FilterNode struct {
	Input    Node
	Preds    []Pred
	UseIndex bool
}

func (*FilterNode) logicalNode() {}

// JoinNode hash-joins its build side (a filtered dimension scan) against its
// probe side (the fact scan, or an inner JoinNode for multi-dimension star
// statements) on the named key columns.
type JoinNode struct {
	Build Node
	Probe Node
	// BuildKey names the join-key column on the build side's table (inserted
	// into the hash table); ProbeKey the probed foreign-key column on the
	// fact table.
	BuildKey string
	ProbeKey string
	// HitsPerProbeRow is the analytic join cardinality per probe row against
	// the unfiltered build side.
	HitsPerProbeRow float64
	// HTSockets places the operator-internal hash table (empty defaults to
	// the build column's majority socket, decided inside the operator).
	HTSockets []int
	// Cost knobs forwarded to the exec operator (zero values take the
	// operator defaults).
	BuildCyclesPerRow float64
	ProbeCyclesPerRow float64
	HTMissRate        float64
	// Swapped is set by the build-side pass when the costed build side is
	// the written probe side: the hash table builds from the unfiltered fact
	// column and the dimension key becomes the probe stream, with the
	// dimension predicate's selectivity folded into the effective hit rate.
	Swapped bool
}

func (*JoinNode) logicalNode() {}

// MaterializeNode is the output phase of a plain scan statement: the
// qualifying rows' values are gathered through the dictionary.
type MaterializeNode struct {
	Input          Node
	ProjectColumns []string
	Parallel       bool
}

func (*MaterializeNode) logicalNode() {}

// AggregateNode is the aggregation output phase: the qualifying (or
// join-matching) rows' measures are streamed and folded.
type AggregateNode struct {
	Input          Node
	BytesPerRow    float64
	CyclesPerRow   float64
	ProjectColumns []string
	Parallel       bool
}

func (*AggregateNode) logicalNode() {}

// Logical is a built (pre-optimization) logical plan.
type Logical struct {
	Root Node
}

// Statement mirrors the planning-relevant fields of core.Query: one
// SELECT ... WHERE col BETWEEN ? AND ? statement, optionally with extra
// conjunctive predicates, projections, and an aggregation output phase.
type Statement struct {
	Table                 *colstore.Table
	Column                string
	Selectivity           float64
	ExtraPredicateColumns []string
	ProjectColumns        []string
	UseIndex              bool
	Parallel              bool
	Aggregate             bool
	AggBytesPerRow        float64
	AggCyclesPerRow       float64
}

// BuildQuery builds the logical plan of a plain statement:
// output(filter(scan)). Predicates start on the FilterNode; the pushdown
// pass folds them into the scan.
func BuildQuery(st Statement) *Logical {
	preds := make([]Pred, 0, 1+len(st.ExtraPredicateColumns))
	preds = append(preds, Pred{Column: st.Column, Selectivity: st.Selectivity})
	for _, c := range st.ExtraPredicateColumns {
		preds = append(preds, Pred{Column: c, Selectivity: st.Selectivity})
	}
	var root Node = &FilterNode{
		Input:    &ScanNode{Table: st.Table, Parallel: st.Parallel},
		Preds:    preds,
		UseIndex: st.UseIndex,
	}
	if st.Aggregate {
		root = &AggregateNode{
			Input:          root,
			BytesPerRow:    st.AggBytesPerRow,
			CyclesPerRow:   st.AggCyclesPerRow,
			ProjectColumns: st.ProjectColumns,
			Parallel:       st.Parallel,
		}
	} else {
		root = &MaterializeNode{
			Input:          root,
			ProjectColumns: st.ProjectColumns,
			Parallel:       st.Parallel,
		}
	}
	return &Logical{Root: root}
}

// StarDim is one dimension of a star statement: a range predicate filters
// the dimension, the surviving keys build a hash table, and the fact
// foreign-key column probes it.
type StarDim struct {
	Dim       *colstore.Table
	Predicate string
	Key       string
	// FactFK is the fact table's foreign-key column probing this dimension.
	FactFK      string
	Selectivity float64
	// HitsPerProbeRow is the join cardinality per fact row against the
	// unfiltered dimension (the predicate scales it down).
	HitsPerProbeRow float64
}

// StarStatement describes a composed scan -> join -> aggregate statement
// over a star schema, generalized to several dimensions (the join-order pass
// sequences them by estimated filtered build size).
type StarStatement struct {
	Fact *colstore.Table
	Dims []StarDim
	// AggBytesPerRow / AggCyclesPerRow cost the measure aggregation per
	// matching row.
	AggBytesPerRow  float64
	AggCyclesPerRow float64
	// HTSockets places every join's hash table (empty defaults per join).
	HTSockets []int
}

// BuildStar builds the logical star-join plan: joins nest left-deep over the
// fact scan in the written dimension order, with each dimension's predicate
// on a FilterNode above its scan, and the aggregation on top.
func BuildStar(st StarStatement) *Logical {
	var probe Node = &ScanNode{Table: st.Fact, Parallel: true}
	for _, d := range st.Dims {
		probe = &JoinNode{
			Build: &FilterNode{
				Input: &ScanNode{Table: d.Dim, Parallel: true},
				Preds: []Pred{{Column: d.Predicate, Selectivity: d.Selectivity}},
			},
			Probe:           probe,
			BuildKey:        d.Key,
			ProbeKey:        d.FactFK,
			HitsPerProbeRow: d.HitsPerProbeRow,
			HTSockets:       st.HTSockets,
		}
	}
	return &Logical{Root: &AggregateNode{
		Input:        probe,
		BytesPerRow:  st.AggBytesPerRow,
		CyclesPerRow: st.AggCyclesPerRow,
		Parallel:     true,
	}}
}

// predsLabel renders a predicate list for EXPLAIN, e.g. [D_DATE~0.05].
func predsLabel(preds []Pred) string {
	s := "["
	for i, p := range preds {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s~%g", p.Column, p.Selectivity)
	}
	return s + "]"
}
