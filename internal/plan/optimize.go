package plan

import (
	"fmt"
	"sort"

	"numacs/internal/colstore"
	"numacs/internal/exec"
)

// Context carries what the optimizer passes consult: the statistics catalog
// (nil is valid — stat-dependent passes keep the written plan), the cost
// model, and the notes sink the EXPLAIN rendering surfaces.
type Context struct {
	Stats *Stats
	Costs *exec.Costs
	// Notes records one line per load-bearing pass decision, in pass order.
	Notes []string
}

// note appends one EXPLAIN note.
func (c *Context) note(format string, args ...any) {
	c.Notes = append(c.Notes, fmt.Sprintf(format, args...))
}

// Pass is one optimizer rewrite: a named, tree-to-tree function. Passes may
// mutate the tree they are given (the builders produce a fresh tree per
// statement).
type Pass struct {
	Name        string
	Description string
	Apply       func(*Context, Node) Node
}

// DefaultPasses returns the standard pass pipeline, in application order:
// predicate pushdown, join build-side selection, join ordering.
func DefaultPasses() []Pass {
	return []Pass{
		{Name: "pushdown",
			Description: "fold filter predicates into the scan node they select over",
			Apply:       pushdown},
		{Name: "build-side",
			Description: "build each join's hash table from the smaller estimated input",
			Apply:       buildSide},
		{Name: "join-order",
			Description: "sequence multi-dimension joins by ascending estimated filtered build size",
			Apply:       joinOrder},
	}
}

// Optimize rewrites the logical plan with the default pass pipeline and
// translates it into a physical plan. stats may be nil (stat-dependent
// decisions keep the written plan) and costs may be nil (index-eligibility
// annotation is skipped).
func Optimize(l *Logical, stats *Stats, costs *exec.Costs) *Physical {
	return OptimizeWith(l, stats, costs, DefaultPasses())
}

// OptimizeWith is Optimize with an explicit pass list; an empty list yields
// the direct physical translation of the written plan (the unoptimized
// control the rewrite-preservation property tests execute).
func OptimizeWith(l *Logical, stats *Stats, costs *exec.Costs, passes []Pass) *Physical {
	ctx := &Context{Stats: stats, Costs: costs}
	root := l.Root
	names := make([]string, 0, len(passes))
	for _, p := range passes {
		root = p.Apply(ctx, root)
		names = append(names, p.Name)
	}
	return finalize(ctx, root, names)
}

// ---- passes -----------------------------------------------------------------

// pushdown folds FilterNodes into the ScanNodes beneath them. It is
// semantics-preserving by construction: exec.ScanOp evaluates the primary
// predicate's regions and intersects the extra predicates exactly as the
// filter specifies.
func pushdown(ctx *Context, n Node) Node {
	switch v := n.(type) {
	case *FilterNode:
		child := pushdown(ctx, v.Input)
		if sc, ok := child.(*ScanNode); ok {
			sc.Preds = append(sc.Preds, v.Preds...)
			sc.UseIndex = sc.UseIndex || v.UseIndex
			ctx.note("pushdown: folded %d predicate(s) into scan %s", len(v.Preds), sc.Table.Name)
			return sc
		}
		v.Input = child
		return v
	case *JoinNode:
		v.Build = pushdown(ctx, v.Build)
		v.Probe = pushdown(ctx, v.Probe)
		return v
	case *AggregateNode:
		v.Input = pushdown(ctx, v.Input)
		return v
	case *MaterializeNode:
		v.Input = pushdown(ctx, v.Input)
		return v
	default:
		return n
	}
}

// buildSide chooses each join's hash-table side from the statistics: the
// written build side's estimated post-filter cardinality against the written
// probe side's. Unknown stats (zero estimates on either side) keep the
// written sides — the empty-stats edge case.
func buildSide(ctx *Context, n Node) Node {
	walkJoins(n, func(j *JoinNode) {
		bs := scanOf(j.Build)
		ps := probeBase(j.Probe)
		if bs == nil || ps == nil {
			return
		}
		buildRows := ctx.Stats.estFilteredRows(bs)
		probeRows := ctx.Stats.estFilteredRows(ps)
		if buildRows <= 0 || probeRows <= 0 {
			ctx.note("build-side: %s⋈%s kept (no stats)", bs.Table.Name, ps.Table.Name)
			return
		}
		if probeRows < buildRows {
			j.Swapped = true
			ctx.note("build-side: %s⋈%s swapped — probe side est %.0f rows < build side est %.0f",
				bs.Table.Name, ps.Table.Name, probeRows, buildRows)
			return
		}
		ctx.note("build-side: %s⋈%s kept — build side est %.0f rows <= probe side est %.0f",
			bs.Table.Name, ps.Table.Name, buildRows, probeRows)
	})
	return n
}

// joinOrder sequences a multi-join chain by ascending estimated filtered
// build size, so the cheapest hash table builds first and later probes carry
// the accumulated join selectivity. Single-join plans and stat-less chains
// keep the written order. The rewrite preserves the result multiset: the
// final join's effective cardinality folds every dimension's (selectivity x
// hit rate) product, which is order-invariant.
func joinOrder(ctx *Context, n Node) Node {
	output, chain, terminal := joinChain(n)
	if output == nil || len(chain) < 2 {
		return n
	}
	type keyed struct {
		j   *JoinNode
		est float64
	}
	ks := make([]keyed, len(chain))
	known := true
	for i, j := range chain {
		bs := scanOf(j.Build)
		if bs == nil {
			return n
		}
		ks[i] = keyed{j: j, est: ctx.Stats.estFilteredRows(bs)}
		if ks[i].est <= 0 {
			known = false
		}
	}
	if !known {
		ctx.note("join-order: kept written order (no stats)")
		return n
	}
	// chain[0] is the outermost join (lowered last); ascending lowered order
	// therefore means descending chain order.
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].est > ks[b].est })
	for i := range ks {
		chain[i] = ks[i].j
	}
	relinkChain(output, chain, terminal)
	order := ""
	for i := len(ks) - 1; i >= 0; i-- {
		if order != "" {
			order += " -> "
		}
		order += fmt.Sprintf("%s(est %.0f)", scanOf(ks[i].j.Build).Table.Name, ks[i].est)
	}
	ctx.note("join-order: %s", order)
	return n
}

// walkJoins visits every JoinNode in the tree, outermost first.
func walkJoins(n Node, f func(*JoinNode)) {
	switch v := n.(type) {
	case *JoinNode:
		f(v)
		walkJoins(v.Build, f)
		walkJoins(v.Probe, f)
	case *FilterNode:
		walkJoins(v.Input, f)
	case *AggregateNode:
		walkJoins(v.Input, f)
	case *MaterializeNode:
		walkJoins(v.Input, f)
	}
}

// scanOf returns the ScanNode beneath n, looking through one FilterNode
// (nil when n is neither).
func scanOf(n Node) *ScanNode {
	switch v := n.(type) {
	case *ScanNode:
		return v
	case *FilterNode:
		if sc, ok := v.Input.(*ScanNode); ok {
			// Report the filter's predicates as if pushed, so estimates work
			// on unoptimized trees too, without mutating the plan.
			tmp := *sc
			tmp.Preds = append(append([]Pred{}, sc.Preds...), v.Preds...)
			return &tmp
		}
	}
	return nil
}

// probeBase returns the terminal (fact) ScanNode of a probe chain.
func probeBase(n Node) *ScanNode {
	for {
		switch v := n.(type) {
		case *JoinNode:
			n = v.Probe
		default:
			return scanOf(n)
		}
	}
}

// joinChain decomposes output(join(join(...(fact)))) into the output node,
// the join chain (outermost first), and the terminal probe node. A tree of a
// different shape returns a nil output.
func joinChain(root Node) (output Node, chain []*JoinNode, terminal Node) {
	var input Node
	switch v := root.(type) {
	case *AggregateNode:
		input = v.Input
	case *MaterializeNode:
		input = v.Input
	default:
		return nil, nil, nil
	}
	n := input
	for {
		j, ok := n.(*JoinNode)
		if !ok {
			break
		}
		chain = append(chain, j)
		n = j.Probe
	}
	if len(chain) == 0 {
		return nil, nil, nil
	}
	return root, chain, n
}

// relinkChain rewires the output node's input through the reordered chain
// down to the terminal probe node.
func relinkChain(output Node, chain []*JoinNode, terminal Node) {
	for i := 0; i < len(chain)-1; i++ {
		chain[i].Probe = chain[i+1]
	}
	chain[len(chain)-1].Probe = terminal
	switch v := output.(type) {
	case *AggregateNode:
		v.Input = chain[0]
	case *MaterializeNode:
		v.Input = chain[0]
	}
}

// ---- physical translation ---------------------------------------------------

// PhysScan is the physical find phase of a statement: the scan operator's
// parameters plus the planner's annotations (index eligibility, estimated
// qualifying rows, partition layout).
type PhysScan struct {
	Table                 *colstore.Table
	Column                string
	Selectivity           float64
	ExtraPredicateColumns []string
	UseIndex              bool
	Parallel              bool
	// IndexEligible is the planner's advisory echo of the rule exec.ScanOp
	// applies at Open time (exec.IndexEligible): whether this scan will run
	// as index lookups.
	IndexEligible bool
	// EstRows is the estimated qualifying-row count after every predicate
	// (0 when planned without stats).
	EstRows float64
}

// PhysJoin is one physical hash-join stage: resolved build/probe columns,
// the effective probe hit rate after upstream-join and swap folding, and the
// planner's estimates.
type PhysJoin struct {
	// BuildScan is the dimension filter scan feeding the build side; it is
	// always lowered (the predicate must be evaluated even when the build
	// side is swapped).
	BuildScan  *PhysScan
	BuildTable *colstore.Table
	BuildKey   string
	ProbeTable *colstore.Table
	ProbeKey   string
	HTSockets  []int
	// HitsPerProbeRow is the written per-probe-row cardinality; EffHits is
	// the lowered rate with upstream join selectivities (and, when Swapped,
	// the side exchange) folded in.
	HitsPerProbeRow   float64
	EffHits           float64
	BuildCyclesPerRow float64
	ProbeCyclesPerRow float64
	HTMissRate        float64
	Swapped           bool
	// EstBuildRows is the estimated hash-table cardinality.
	EstBuildRows float64
}

// PhysOutput is the statement's output phase.
type PhysOutput struct {
	// Aggregate selects aggregation over materialization.
	Aggregate      bool
	ProjectColumns []string
	BytesPerRow    float64
	CyclesPerRow   float64
	Parallel       bool
}

// Physical is an optimized, lowerable plan: the rewritten logical tree plus
// the typed physical stages and the cohort-feeding metadata.
type Physical struct {
	// Root is the post-rewrite logical tree (rendered by Explain).
	Root Node
	// Scan is the find phase of a plain statement (nil for star plans).
	Scan *PhysScan
	// Joins holds the star plan's join stages in lowered (innermost-first)
	// order (empty for plain statements).
	Joins []*PhysJoin
	// Output is the statement's output phase.
	Output PhysOutput
	// Shareable marks a find phase the sharedscan registry may merge into a
	// cohort (parallel, index-free, single-predicate, single-part); ShareKey
	// is the cohort key (table.column). Plan-time common-subplan detection
	// groups statements by this key (core.SubmitBatch).
	Shareable bool
	ShareKey  string
	// Passes and Notes record the applied pass names and their decisions.
	Passes []string
	Notes  []string
}

// finalize translates the rewritten tree into physical stages.
func finalize(ctx *Context, root Node, passes []string) *Physical {
	p := &Physical{Root: root, Passes: passes, Notes: ctx.Notes}
	var input Node
	switch v := root.(type) {
	case *AggregateNode:
		p.Output = PhysOutput{Aggregate: true, ProjectColumns: v.ProjectColumns,
			BytesPerRow: v.BytesPerRow, CyclesPerRow: v.CyclesPerRow, Parallel: v.Parallel}
		input = v.Input
	case *MaterializeNode:
		p.Output = PhysOutput{ProjectColumns: v.ProjectColumns, Parallel: v.Parallel}
		input = v.Input
	default:
		panic("plan: root must be a materialize or aggregate node")
	}
	input = foldFilters(input)
	switch v := input.(type) {
	case *ScanNode:
		p.Scan = physScan(ctx, v)
		p.Shareable = v.Parallel && !v.UseIndex && len(v.Preds) == 1 &&
			v.Table.NumParts() == 1
		if p.Shareable {
			p.ShareKey = v.Table.Name + "." + p.Scan.Column
		}
	case *JoinNode:
		_, chain, terminal := joinChain(root)
		if chain == nil {
			panic("plan: unsupported join tree shape")
		}
		fact, ok := terminal.(*ScanNode)
		if !ok {
			panic("plan: join chain must terminate in a scan")
		}
		// Lowered order is innermost-first: reverse the outermost-first chain.
		upstream := 1.0
		for i := len(chain) - 1; i >= 0; i-- {
			j := chain[i]
			bs, ok := j.Build.(*ScanNode)
			if !ok {
				panic("plan: join build side must fold to a scan")
			}
			pj := &PhysJoin{
				BuildScan:         physScan(ctx, bs),
				BuildTable:        bs.Table,
				BuildKey:          j.BuildKey,
				ProbeTable:        fact.Table,
				ProbeKey:          j.ProbeKey,
				HTSockets:         j.HTSockets,
				HitsPerProbeRow:   j.HitsPerProbeRow,
				BuildCyclesPerRow: j.BuildCyclesPerRow,
				ProbeCyclesPerRow: j.ProbeCyclesPerRow,
				HTMissRate:        j.HTMissRate,
				Swapped:           j.Swapped,
				EstBuildRows:      ctx.Stats.estFilteredRows(bs),
			}
			// Effective probe hit rate: the written rate, scaled by the
			// upstream joins' (selectivity x hits) products so intermediate
			// cardinalities shrink, and by the side exchange when swapped.
			// The k==0 unswapped case stays the written float exactly — the
			// golden bit-identity contract.
			eff := j.HitsPerProbeRow
			if upstream != 1.0 {
				eff *= upstream
			}
			sel := selProduct(bs.Preds)
			if j.Swapped {
				factRows, dimRows := 0.0, 0.0
				if cs, ok := ctx.Stats.Lookup(fact.Table, j.ProbeKey); ok {
					factRows = float64(cs.Rows)
				}
				if cs, ok := ctx.Stats.Lookup(bs.Table, j.BuildKey); ok {
					dimRows = float64(cs.Rows)
				}
				if factRows > 0 && dimRows > 0 {
					// The unfiltered fact builds; the dimension key probes.
					// Folding the dimension selectivity into the hit rate
					// preserves the estimated match count exactly.
					eff = eff * factRows * sel / dimRows
				} else {
					pj.Swapped = false
				}
			}
			pj.EffHits = eff
			upstream *= sel * j.HitsPerProbeRow
			p.Joins = append(p.Joins, pj)
		}
	default:
		panic("plan: unsupported plan shape")
	}
	return p
}

// foldFilters folds any FilterNode left by a pass-less optimization into the
// scans beneath, so lowering is total on unoptimized trees too.
func foldFilters(n Node) Node {
	switch v := n.(type) {
	case *FilterNode:
		child := foldFilters(v.Input)
		if sc, ok := child.(*ScanNode); ok {
			sc.Preds = append(sc.Preds, v.Preds...)
			sc.UseIndex = sc.UseIndex || v.UseIndex
			return sc
		}
		v.Input = child
		return v
	case *JoinNode:
		v.Build = foldFilters(v.Build)
		v.Probe = foldFilters(v.Probe)
		return v
	default:
		return n
	}
}

// physScan translates one folded ScanNode.
func physScan(ctx *Context, sc *ScanNode) *PhysScan {
	ps := &PhysScan{
		Table:    sc.Table,
		Parallel: sc.Parallel,
		UseIndex: sc.UseIndex,
		EstRows:  ctx.Stats.estFilteredRows(sc),
	}
	if len(sc.Preds) > 0 {
		ps.Column = sc.Preds[0].Column
		ps.Selectivity = sc.Preds[0].Selectivity
		for _, pr := range sc.Preds[1:] {
			ps.ExtraPredicateColumns = append(ps.ExtraPredicateColumns, pr.Column)
		}
	}
	if ctx.Costs != nil {
		ps.IndexEligible = exec.IndexEligible(ctx.Costs, sc.Table, ps.Column, ps.Selectivity, sc.UseIndex)
	}
	return ps
}

// selProduct multiplies a predicate list's selectivities.
func selProduct(preds []Pred) float64 {
	s := 1.0
	for _, p := range preds {
		s *= p.Selectivity
	}
	return s
}
