package plan

import (
	"fmt"
	"strings"

	"numacs/internal/exec"
)

// PartitionPlan is the planner's partition-layout annotation for one
// physical part of a scanned column: how the find phase will fan out over
// replicas, IVP partitions, or a single socket, and how many delta rows the
// pass unions in. It is derived from live placement metadata at EXPLAIN
// time, so the rendering is deterministic for a fixed placement.
type PartitionPlan struct {
	// Part is the physical part index.
	Part int
	// Rows is the part's row count.
	Rows int
	// Kind is the layout class: "replicated", "ivp", "socket", or "unplaced".
	Kind string
	// Sockets lists the serving sockets: the replica set, each IVP
	// partition's majority socket, or the single home socket.
	Sockets []int
	// DeltaRows counts the watermark-visible uncompressed delta rows the
	// scan unions with the main.
	DeltaRows int
}

// Layout computes the replica/delta-aware partition plan of the scan's
// primary column, one entry per physical part.
func (s *PhysScan) Layout() []PartitionPlan {
	var out []PartitionPlan
	for i, part := range s.Table.Parts {
		col := part.ColumnByName(s.Column)
		if col == nil {
			continue
		}
		pp := PartitionPlan{Part: i, Rows: col.Rows, DeltaRows: col.DeltaRows()}
		switch {
		case col.Replicated():
			pp.Kind = "replicated"
			pp.Sockets = append(pp.Sockets, col.ReplicaSockets...)
		case len(col.Partitions) > 1:
			pp.Kind = "ivp"
			for _, rr := range exec.Partitions(col) {
				pp.Sockets = append(pp.Sockets, rr.Socket)
			}
		case col.IVPSM != nil:
			pp.Kind = "socket"
			pp.Sockets = []int{col.IVPSM.MajoritySocket()}
		default:
			pp.Kind = "unplaced"
		}
		out = append(out, pp)
	}
	return out
}

// Explain renders the logical tree as stable, diffable text — the first of
// the two plan levels the CI plan-golden gate pins.
func (l *Logical) Explain() string {
	var b strings.Builder
	b.WriteString("logical:\n")
	renderNode(&b, l.Root, "  ", "  ")
	return b.String()
}

// Explain renders the optimized plan — the rewritten logical tree, the
// physical stages with the planner's annotations, and the pass notes — as
// stable, diffable text (the second plan level of the CI plan-golden gate).
func (p *Physical) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "optimized logical (passes: %s):\n", strings.Join(p.Passes, ", "))
	renderNode(&b, p.Root, "  ", "  ")
	b.WriteString("physical:\n")
	if p.Scan != nil {
		renderPhysScan(&b, "  find: ", p.Scan)
	}
	for i, j := range p.Joins {
		side := ""
		if j.Swapped {
			side = " swapped"
		}
		fmt.Fprintf(&b, "  join[%d]: build %s.%s (est %.0f rows) probe %s.%s eff-hits=%g ht=%s%s\n",
			i, j.BuildTable.Name, j.BuildKey, j.EstBuildRows,
			j.ProbeTable.Name, j.ProbeKey, j.EffHits, intsLabel(j.HTSockets), side)
		renderPhysScan(&b, "    build-scan: ", j.BuildScan)
	}
	out := "materialize"
	if p.Output.Aggregate {
		out = fmt.Sprintf("aggregate bytes/row=%g cycles/row=%g", p.Output.BytesPerRow, p.Output.CyclesPerRow)
	}
	if len(p.Output.ProjectColumns) > 0 {
		out += fmt.Sprintf(" project=%v", p.Output.ProjectColumns)
	}
	if p.Output.Parallel {
		out += " parallel"
	}
	fmt.Fprintf(&b, "  output: %s\n", out)
	if p.Shareable {
		fmt.Fprintf(&b, "  shareable: yes (cohort key %s)\n", p.ShareKey)
	} else {
		b.WriteString("  shareable: no\n")
	}
	if len(p.Notes) > 0 {
		b.WriteString("notes:\n")
		for _, n := range p.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// renderPhysScan renders one physical scan stage with its annotations and
// partition layout.
func renderPhysScan(b *strings.Builder, prefix string, s *PhysScan) {
	idx := "no"
	if s.IndexEligible {
		idx = "yes"
	}
	extra := ""
	if len(s.ExtraPredicateColumns) > 0 {
		extra = fmt.Sprintf(" extra=%v", s.ExtraPredicateColumns)
	}
	mode := "serial"
	if s.Parallel {
		mode = "parallel"
	}
	fmt.Fprintf(b, "%s%s.%s sel=%g%s %s index=%s est-rows=%.1f\n",
		prefix, s.Table.Name, s.Column, s.Selectivity, extra, mode, idx, s.EstRows)
	pad := strings.Repeat(" ", len(prefix)-len(strings.TrimLeft(prefix, " ")))
	for _, pp := range s.Layout() {
		fmt.Fprintf(b, "%s  part %d: rows=%d %s sockets=%s delta-rows=%d\n",
			pad, pp.Part, pp.Rows, pp.Kind, intsLabel(pp.Sockets), pp.DeltaRows)
	}
}

// renderNode renders one logical node and its children with box-drawing
// indentation.
func renderNode(b *strings.Builder, n Node, firstPrefix, childPad string) {
	b.WriteString(firstPrefix)
	b.WriteString(nodeLabel(n))
	b.WriteString("\n")
	children := nodeChildren(n)
	for i, c := range children {
		connector := "└─ "
		pad := "   "
		if i < len(children)-1 {
			connector = "├─ "
			pad = "│  "
		}
		renderNode(b, c, childPad+connector, childPad+pad)
	}
}

// nodeLabel renders one node's own EXPLAIN line.
func nodeLabel(n Node) string {
	switch v := n.(type) {
	case *ScanNode:
		s := "scan " + v.Table.Name
		if len(v.Preds) > 0 {
			s += " preds=" + predsLabel(v.Preds)
		}
		if v.UseIndex {
			s += " index-permitted"
		}
		if !v.Parallel {
			s += " serial"
		}
		return s
	case *FilterNode:
		s := "filter preds=" + predsLabel(v.Preds)
		if v.UseIndex {
			s += " index-permitted"
		}
		return s
	case *JoinNode:
		s := fmt.Sprintf("join key=%s probe-key=%s hits=%g", v.BuildKey, v.ProbeKey, v.HitsPerProbeRow)
		if len(v.HTSockets) > 0 {
			s += " ht=" + intsLabel(v.HTSockets)
		}
		if v.Swapped {
			s += " swapped"
		}
		return s
	case *AggregateNode:
		return fmt.Sprintf("aggregate bytes/row=%g cycles/row=%g", v.BytesPerRow, v.CyclesPerRow)
	case *MaterializeNode:
		s := "materialize"
		if len(v.ProjectColumns) > 0 {
			s += fmt.Sprintf(" project=%v", v.ProjectColumns)
		}
		return s
	default:
		return fmt.Sprintf("%T", n)
	}
}

// nodeChildren returns a node's children in render order (build before
// probe).
func nodeChildren(n Node) []Node {
	switch v := n.(type) {
	case *FilterNode:
		return []Node{v.Input}
	case *JoinNode:
		return []Node{v.Build, v.Probe}
	case *AggregateNode:
		return []Node{v.Input}
	case *MaterializeNode:
		return []Node{v.Input}
	default:
		return nil
	}
}

// intsLabel renders an int slice as [a b c] without fmt's pointer ambiguity.
func intsLabel(xs []int) string {
	if len(xs) == 0 {
		return "[]"
	}
	s := "["
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d", x)
	}
	return s + "]"
}
