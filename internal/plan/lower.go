package plan

import (
	"numacs/internal/exec"
	"numacs/internal/memsim"
)

// Deps are the engine-side dependencies lowering needs: the simulated page
// allocator for operator-internal structures (hash tables) and the engine's
// materialization-coalescing ablation switch.
type Deps struct {
	Alloc *memsim.Allocator
	// DisableCoalesce mirrors core.Engine.DisableCoalesce into the lowered
	// output operators (ablation only).
	DisableCoalesce bool
}

// Lowered is the executable form of a physical plan: the operator sequence
// for exec.Pipeline, plus the pieces the shared-scan cohort path recomposes
// (the find-phase operator and the output-phase factory).
type Lowered struct {
	// Ops is the pipeline's operator sequence (barrier-separated phases).
	Ops []exec.Operator
	// Scan is the find-phase operator of a plain statement (nil for star
	// plans); the cohort registry replaces it with a shared pass.
	Scan *exec.ScanOp
	// SecondOp builds the statement's private output phase over any
	// find-phase region source — the factory the cohort registry hands each
	// member's regions to. Nil for star plans.
	SecondOp func(src exec.RegionSource) exec.Operator
	// Shareable and ShareKey mirror the physical plan's cohort metadata.
	Shareable bool
	ShareKey  string
}

// Lower emits the physical plan's exec operators. The contract the golden
// tests pin: on unrewritten plan shapes the emitted operators carry exactly
// the fields the hand-wired compositions set — a plain statement lowers to
// the same ScanOp + MaterializeOp/AggregateOp pair core.Submit used to build
// inline, and a single-dimension star statement lowers to the same
// [scan, build, probe, aggregate] sequence as join.ExecuteStar's hand wiring.
func (p *Physical) Lower(d Deps) *Lowered {
	low := &Lowered{Shareable: p.Shareable, ShareKey: p.ShareKey}
	if len(p.Joins) == 0 {
		s := p.Scan
		if s == nil {
			panic("plan: physical plan has neither scan nor joins")
		}
		scan := &exec.ScanOp{
			Table:                 s.Table,
			Column:                s.Column,
			Selectivity:           s.Selectivity,
			ExtraPredicateColumns: s.ExtraPredicateColumns,
			UseIndex:              s.UseIndex,
			Parallel:              s.Parallel,
		}
		low.Scan = scan
		low.SecondOp = p.secondOp(d)
		low.Ops = []exec.Operator{scan, low.SecondOp(scan)}
		return low
	}
	var last *exec.JoinOp
	for _, pj := range p.Joins {
		bs := pj.BuildScan
		scan := &exec.ScanOp{
			Table:       bs.Table,
			Column:      bs.Column,
			Selectivity: bs.Selectivity,
			Parallel:    bs.Parallel,
		}
		buildKey := pj.BuildTable.Column(pj.BuildKey)
		probeFK := pj.ProbeTable.Column(pj.ProbeKey)
		if buildKey == nil || probeFK == nil {
			panic("plan: join stage names unknown columns")
		}
		j := &exec.JoinOp{
			Build:             buildKey,
			Probe:             probeFK,
			HTSockets:         pj.HTSockets,
			HitsPerProbeRow:   pj.EffHits,
			Alloc:             d.Alloc,
			BuildSource:       scan,
			BuildCyclesPerRow: pj.BuildCyclesPerRow,
			ProbeCyclesPerRow: pj.ProbeCyclesPerRow,
			HTMissRate:        pj.HTMissRate,
		}
		if pj.Swapped {
			// The costed build side is the unfiltered fact column: build and
			// probe exchange, the hash table builds from every fact row
			// (no BuildSource filter), and the dimension predicate — already
			// folded into EffHits — still executes as the scan stage.
			j.Build, j.Probe = probeFK, buildKey
			j.BuildSource = nil
		}
		low.Ops = append(low.Ops, scan, j.BuildOp(), j.ProbeOp())
		last = j
	}
	low.Ops = append(low.Ops, &exec.AggregateOp{
		Source:       last,
		BytesPerRow:  p.Output.BytesPerRow,
		CyclesPerRow: p.Output.CyclesPerRow,
		Parallel:     p.Output.Parallel,
	})
	return low
}

// secondOp returns the output-phase factory of a plain statement: the same
// materialization or aggregation operator over any region source, so the
// private path and every cohort role (leader, follower, attacher) compose
// identical output phases.
func (p *Physical) secondOp(d Deps) func(src exec.RegionSource) exec.Operator {
	out := p.Output
	return func(src exec.RegionSource) exec.Operator {
		if out.Aggregate {
			return &exec.AggregateOp{
				Source:          src,
				BytesPerRow:     out.BytesPerRow,
				CyclesPerRow:    out.CyclesPerRow,
				ProjectColumns:  out.ProjectColumns,
				Parallel:        out.Parallel,
				DisableCoalesce: d.DisableCoalesce,
			}
		}
		return &exec.MaterializeOp{
			Scan:            src,
			ProjectColumns:  out.ProjectColumns,
			Parallel:        out.Parallel,
			DisableCoalesce: d.DisableCoalesce,
		}
	}
}
