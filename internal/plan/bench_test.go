package plan

import (
	"testing"

	"numacs/internal/exec"
)

// BenchmarkPlanLower measures the full per-statement planner cost —
// Build -> Optimize -> Lower — alternating the plain-scan and two-dimension
// star shapes. It reports ns/row where a "row" is one planned-and-lowered
// statement, putting the planner on the same benchdiff regression gate as the
// chunk kernels: Submit pays this cost on every statement, so a planner
// slowdown is a hot-path regression.
func BenchmarkPlanLower(b *testing.B) {
	hot, dim1, dim2, fact := testSchema()
	stats := Collect(hot, dim1, dim2, fact)
	costs := exec.DefaultCosts()
	plain := Statement{Table: hot, Column: "H_VAL", Selectivity: 1e-5, Parallel: true}
	star := star2(dim1, dim2, fact)
	deps := Deps{}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			// The Submit hot path plans without stats.
			Optimize(BuildQuery(plain), nil, &costs).Lower(deps)
		} else {
			Optimize(BuildStar(star), stats, &costs).Lower(deps)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/row")
}
