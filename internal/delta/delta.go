// Package delta implements the write side of the main/delta architecture the
// paper's column store builds on (Section 2 describes the read-optimized,
// dictionary-encoded main; updates never touch it directly). Writes append to
// an uncompressed, per-socket delta fragment — one fragment per socket, so a
// writing client appends to the fragment local to its socket — with a
// fragment-local unsorted dictionary. A visibility watermark per fragment
// makes appends atomic with respect to scans: a scan snapshots the committed
// row counts once at plan time and never sees a torn append. A background
// merge (placement.MergeDelta, triggered by the Section 7 adaptive placer as
// an Action{Kind:"merge"}) folds the visible delta rows back into a rebuilt
// dictionary-encoded main and truncates the merged prefix; appends that land
// during the merge simply stay in the delta for the next round.
//
// The package is a pure data structure plus simulated-size accounting: the
// Fragment's Range is the simulated allocation backing it (grown by
// placement.EnsureDeltaCapacity), and RowBytes is what one uncompressed delta
// row costs a scan — the delta trades write speed for scan bytes, which is
// exactly the degradation the delta-merge experiment measures.
//
// All methods are safe for concurrent use: appends, snapshots, and merges
// synchronize on per-fragment locks (the engine's simulated world is
// single-threaded, but the structure itself is race-clean and tested with
// -race).
package delta

import (
	"sync"

	"numacs/internal/memsim"
)

// RowBytes is the simulated cost of one delta row to a scan: an 8-byte
// uncompressed value plus a 4-byte row reference (the main row an update
// overwrites, or the append position of an insert). The main's bit-packed IV
// spends ~2 bits-per-row-per-bitcase; the delta spends 96 bits — the factor
// that makes scans degrade as the delta grows.
const RowBytes = 12

// Entry is one delta row of a real (non-synthetic) column: the target main
// row for updates (-1 for inserts), the fragment-local vid of the written
// value, and a store-wide sequence number ordering updates across fragments
// (last writer wins at merge and lookup time).
type Entry struct {
	Row int32
	Vid uint32
	Seq uint64
}

// Fragment is the per-socket append side of one column's delta: append-only
// entries, a fragment-local dictionary (value -> local vid), and the
// committed watermark below which entries are visible to scans.
type Fragment struct {
	// Socket is the socket the fragment's memory lives on; appends from a
	// client land in the fragment of the client's socket.
	Socket int
	// Range is the simulated allocation backing the fragment, managed by
	// placement.EnsureDeltaCapacity (grown geometrically) and freed when a
	// merge empties the fragment. Only the simulation layer touches it.
	Range memsim.Range

	mu        sync.RWMutex
	entries   []Entry          // real mode only; nil when synthetic
	values    []int64          // local vid -> value (real mode)
	dict      map[int64]uint32 // value -> local vid (real mode)
	committed int              // visibility watermark: entries visible to scans
	inserts   int              // committed entries with Row < 0
	synthetic bool
}

// Committed returns the fragment's visibility watermark: the number of delta
// rows a scan planned now may read.
func (f *Fragment) Committed() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.committed
}

// SizeBytes returns the simulated footprint of the committed fragment:
// RowBytes per row plus 8 bytes per local dictionary value.
func (f *Fragment) SizeBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sizeLocked()
}

func (f *Fragment) sizeLocked() int64 {
	return int64(f.committed)*RowBytes + int64(len(f.values))*8
}

// vidOf interns a value in the fragment-local dictionary. Caller holds f.mu.
func (f *Fragment) vidOf(v int64) uint32 {
	if vid, ok := f.dict[v]; ok {
		return vid
	}
	vid := uint32(len(f.values))
	f.values = append(f.values, v)
	f.dict[v] = vid
	return vid
}

// Delta is one column's delta store: per-socket fragments plus the
// store-wide write sequence and the merge latch.
type Delta struct {
	frags []*Fragment

	mu      sync.Mutex // guards seq and merging
	seq     uint64
	merging bool
}

// New creates a delta store with one fragment per socket. Synthetic mode
// (used by the simulation harness, whose columns carry no data) tracks only
// row counts and sizes; real mode stores values for the functional kernels.
func New(sockets int, synthetic bool) *Delta {
	if sockets < 1 {
		panic("delta: need at least one socket")
	}
	d := &Delta{frags: make([]*Fragment, sockets)}
	for s := range d.frags {
		f := &Fragment{Socket: s, synthetic: synthetic}
		if !synthetic {
			f.dict = make(map[int64]uint32)
		}
		d.frags[s] = f
	}
	return d
}

// Sockets returns the number of per-socket fragments.
func (d *Delta) Sockets() int { return len(d.frags) }

// Fragment returns the fragment of a socket.
func (d *Delta) Fragment(socket int) *Fragment { return d.frags[socket] }

// Synthetic reports whether the store tracks counts only.
func (d *Delta) Synthetic() bool { return d.frags[0].synthetic }

// nextSeq issues the next store-wide write sequence number.
func (d *Delta) nextSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	return d.seq
}

// Insert appends a new row carrying value v to the fragment of the given
// socket. The row becomes visible to scans planned after the append returns
// (the watermark moves last).
func (d *Delta) Insert(socket int, v int64) { d.append(socket, -1, v) }

// Update appends a new version of main row `row` carrying value v to the
// fragment of the given socket. The latest version across all fragments wins
// (store-wide sequence order).
func (d *Delta) Update(socket, row int, v int64) {
	if row < 0 {
		panic("delta: update of a negative row")
	}
	d.append(socket, row, v)
}

func (d *Delta) append(socket, row int, v int64) {
	seq := d.nextSeq()
	f := d.frags[socket]
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.synthetic {
		f.entries = append(f.entries, Entry{Row: int32(row), Vid: f.vidOf(v), Seq: seq})
	}
	if row < 0 {
		f.inserts++
	}
	f.committed++ // watermark moves last: the entry is complete when visible
}

// Rows returns the committed delta rows across all fragments.
func (d *Delta) Rows() int {
	n := 0
	for _, f := range d.frags {
		n += f.Committed()
	}
	return n
}

// InsertRows returns the committed inserts across all fragments (the rows a
// merge adds to the main; updates rewrite existing main rows instead).
func (d *Delta) InsertRows() int {
	n := 0
	for _, f := range d.frags {
		f.mu.RLock()
		n += f.inserts
		f.mu.RUnlock()
	}
	return n
}

// SizeBytes returns the committed simulated footprint of the whole delta —
// the quantity the adaptive placer's merge threshold compares against the
// main's IV bytes.
func (d *Delta) SizeBytes() int64 {
	var b int64
	for _, f := range d.frags {
		b += f.SizeBytes()
	}
	return b
}

// Snapshot is a consistent per-fragment visibility watermark: the row counts
// a scan (or merge) operates on. Fragments may keep growing afterwards; rows
// at or past the snapshot are simply not seen.
type Snapshot struct {
	// Rows and Inserts hold the committed row/insert counts per socket at
	// snapshot time.
	Rows    []int
	Inserts []int
}

// Snapshot captures the current watermark of every fragment.
func (d *Delta) Snapshot() Snapshot {
	s := Snapshot{Rows: make([]int, len(d.frags)), Inserts: make([]int, len(d.frags))}
	for i, f := range d.frags {
		f.mu.RLock()
		s.Rows[i] = f.committed
		s.Inserts[i] = f.inserts
		f.mu.RUnlock()
	}
	return s
}

// TotalRows returns the snapshot's visible rows across fragments.
func (s Snapshot) TotalRows() int {
	n := 0
	for _, r := range s.Rows {
		n += r
	}
	return n
}

// TotalInserts returns the snapshot's visible inserts across fragments.
func (s Snapshot) TotalInserts() int {
	n := 0
	for _, r := range s.Inserts {
		n += r
	}
	return n
}

// LatestUpdate returns the latest visible value written for main row `row`
// (store-wide sequence order across fragments), or ok=false when the row has
// no visible update. It walks every visible entry — fine for point lookups;
// bulk consumers (merge, union counts) use UpdatesIn instead.
func (d *Delta) LatestUpdate(row int) (v int64, ok bool) {
	var bestSeq uint64
	for _, f := range d.frags {
		f.mu.RLock()
		for i := 0; i < f.committed; i++ {
			e := f.entries[i]
			if int(e.Row) == row && e.Seq > bestSeq {
				bestSeq = e.Seq
				v = f.values[e.Vid]
				ok = true
			}
		}
		f.mu.RUnlock()
	}
	return v, ok
}

// UpdatesIn returns, for every main row updated within the snapshot, its
// latest value (store-wide sequence order deciding between fragments) — one
// pass over the delta, so bulk consumers stay O(mainRows + deltaRows).
func (d *Delta) UpdatesIn(s Snapshot) map[int]int64 {
	type upd struct {
		seq uint64
		v   int64
	}
	best := make(map[int]upd)
	for i, f := range d.frags {
		f.mu.RLock()
		n := s.Rows[i]
		if n > f.committed {
			n = f.committed
		}
		for j := 0; j < n; j++ {
			e := f.entries[j]
			if e.Row < 0 {
				continue
			}
			if b, ok := best[int(e.Row)]; !ok || e.Seq > b.seq {
				best[int(e.Row)] = upd{seq: e.Seq, v: f.values[e.Vid]}
			}
		}
		f.mu.RUnlock()
	}
	out := make(map[int]int64, len(best))
	for row, b := range best {
		out[row] = b.v
	}
	return out
}

// AppendInsertsIn appends the snapshot-visible inserted values to out in
// deterministic socket-major, append order — the order a merge materializes
// the new main rows in.
func (d *Delta) AppendInsertsIn(s Snapshot, out []int64) []int64 {
	for i, f := range d.frags {
		f.mu.RLock()
		n := s.Rows[i]
		if n > f.committed {
			n = f.committed
		}
		for j := 0; j < n; j++ {
			e := f.entries[j]
			if e.Row < 0 {
				out = append(out, f.values[e.Vid])
			}
		}
		f.mu.RUnlock()
	}
	return out
}

// AppendVisibleInserts appends every currently visible inserted value to out
// (socket-major, append order).
func (d *Delta) AppendVisibleInserts(out []int64) []int64 {
	return d.AppendInsertsIn(d.Snapshot(), out)
}

// TruncateMerged drops the snapshot's prefix from every fragment: the rows a
// completed merge folded into the main. Rows appended after the snapshot
// survive and stay visible. The fragment-local dictionary is rebuilt from
// the surviving entries (vids remapped), so merged-away values do not leak
// across merge cycles or inflate SizeBytes.
func (d *Delta) TruncateMerged(s Snapshot) {
	for i, f := range d.frags {
		n := s.Rows[i]
		f.mu.Lock()
		if n > f.committed {
			n = f.committed
		}
		if !f.synthetic {
			f.entries = append(f.entries[:0], f.entries[n:]...)
			oldValues := f.values
			f.values = make([]int64, 0, len(f.entries))
			f.dict = make(map[int64]uint32, len(f.entries))
			for j := range f.entries {
				f.entries[j].Vid = f.vidOf(oldValues[f.entries[j].Vid])
			}
		}
		f.committed -= n
		f.inserts -= s.Inserts[i]
		if f.inserts < 0 {
			f.inserts = 0
		}
		f.mu.Unlock()
	}
}

// BeginMerge acquires the store's merge latch so at most one background
// merge runs per column; it reports whether the caller won the latch.
func (d *Delta) BeginMerge() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.merging {
		return false
	}
	d.merging = true
	return true
}

// EndMerge releases the merge latch.
func (d *Delta) EndMerge() {
	d.mu.Lock()
	d.merging = false
	d.mu.Unlock()
}

// Merging reports whether a background merge holds the latch.
func (d *Delta) Merging() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.merging
}
