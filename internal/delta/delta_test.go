package delta

import (
	"sync"
	"testing"
)

func TestInsertUpdateVisibility(t *testing.T) {
	d := New(4, false)
	d.Insert(0, 10)
	d.Insert(2, 20)
	d.Update(1, 5, 99)
	d.Update(3, 5, 100) // later write to the same row wins

	if d.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", d.Rows())
	}
	if d.InsertRows() != 2 {
		t.Fatalf("inserts = %d, want 2", d.InsertRows())
	}
	if v, ok := d.LatestUpdate(5); !ok || v != 100 {
		t.Fatalf("LatestUpdate(5) = %d,%v, want 100,true", v, ok)
	}
	if _, ok := d.LatestUpdate(6); ok {
		t.Fatal("row 6 has no update")
	}
	ins := d.AppendVisibleInserts(nil)
	if len(ins) != 2 || ins[0] != 10 || ins[1] != 20 {
		t.Fatalf("inserts = %v, want [10 20] (socket-major order)", ins)
	}
}

func TestSnapshotIsolatesLaterAppends(t *testing.T) {
	d := New(2, false)
	d.Insert(0, 1)
	d.Insert(1, 2)
	snap := d.Snapshot()
	d.Insert(0, 3) // after the watermark: not in snap
	if snap.TotalRows() != 2 || snap.TotalInserts() != 2 {
		t.Fatalf("snapshot rows=%d inserts=%d, want 2/2", snap.TotalRows(), snap.TotalInserts())
	}
	d.TruncateMerged(snap)
	if d.Rows() != 1 {
		t.Fatalf("post-truncate rows = %d, want 1 (the post-snapshot append survives)", d.Rows())
	}
	ins := d.AppendVisibleInserts(nil)
	if len(ins) != 1 || ins[0] != 3 {
		t.Fatalf("surviving inserts = %v, want [3]", ins)
	}
}

func TestSyntheticCountsOnly(t *testing.T) {
	d := New(2, true)
	for i := 0; i < 10; i++ {
		d.Insert(i%2, 0)
	}
	d.Update(0, 3, 0)
	if d.Rows() != 11 || d.InsertRows() != 10 {
		t.Fatalf("rows=%d inserts=%d, want 11/10", d.Rows(), d.InsertRows())
	}
	if got := d.SizeBytes(); got != 11*RowBytes {
		t.Fatalf("size = %d, want %d (synthetic mode has no dictionary)", got, 11*RowBytes)
	}
	snap := d.Snapshot()
	d.TruncateMerged(snap)
	if d.Rows() != 0 || d.SizeBytes() != 0 {
		t.Fatalf("truncate left rows=%d size=%d", d.Rows(), d.SizeBytes())
	}
}

func TestSizeBytesCountsLocalDictionary(t *testing.T) {
	d := New(1, false)
	d.Insert(0, 7)
	d.Insert(0, 7) // same value: dictionary interned once
	d.Insert(0, 8)
	want := int64(3*RowBytes + 2*8)
	if got := d.SizeBytes(); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
}

// TestTruncatePrunesLocalDictionary: merged-away values must leave the
// fragment-local dictionary (vids remapped for survivors), so SizeBytes does
// not inflate across merge cycles.
func TestTruncatePrunesLocalDictionary(t *testing.T) {
	d := New(1, false)
	for i := 0; i < 100; i++ {
		d.Insert(0, int64(i)) // 100 distinct values
	}
	snap := d.Snapshot()
	d.Insert(0, 500) // survives the truncate
	d.TruncateMerged(snap)
	if got, want := d.SizeBytes(), int64(RowBytes+8); got != want {
		t.Fatalf("size = %d after truncate, want %d (one row, one dict value)", got, want)
	}
	ins := d.AppendVisibleInserts(nil)
	if len(ins) != 1 || ins[0] != 500 {
		t.Fatalf("surviving insert = %v, want [500] (vid remap broken?)", ins)
	}
	// Full truncate resets the dictionary entirely.
	d.TruncateMerged(d.Snapshot())
	if d.SizeBytes() != 0 {
		t.Fatalf("size = %d after full truncate, want 0", d.SizeBytes())
	}
}

// TestUpdatesInBulk: the one-pass bulk variant must agree with per-row
// LatestUpdate and respect the snapshot bound.
func TestUpdatesInBulk(t *testing.T) {
	d := New(2, false)
	d.Update(0, 1, 10)
	d.Update(1, 1, 20) // wins by sequence
	d.Update(0, 3, 30)
	snap := d.Snapshot()
	d.Update(1, 3, 99) // after the snapshot: excluded from UpdatesIn(snap)

	ups := d.UpdatesIn(snap)
	if len(ups) != 2 || ups[1] != 20 || ups[3] != 30 {
		t.Fatalf("UpdatesIn = %v, want {1:20, 3:30}", ups)
	}
	if v, ok := d.LatestUpdate(3); !ok || v != 99 {
		t.Fatalf("LatestUpdate(3) = %d,%v, want the post-snapshot 99", v, ok)
	}
}

func TestMergeLatch(t *testing.T) {
	d := New(1, true)
	if !d.BeginMerge() {
		t.Fatal("first BeginMerge must win")
	}
	if d.BeginMerge() {
		t.Fatal("second BeginMerge must lose while the latch is held")
	}
	if !d.Merging() {
		t.Fatal("Merging() false while latched")
	}
	d.EndMerge()
	if !d.BeginMerge() {
		t.Fatal("BeginMerge must win again after EndMerge")
	}
	d.EndMerge()
}

// TestConcurrentAppendScanMerge exercises the concurrent write path under the
// race detector: appenders on every socket, readers snapshotting and walking
// visible rows, and a merger repeatedly folding the visible prefix. The
// assertions are liveness/consistency only — the point is that -race stays
// silent.
func TestConcurrentAppendScanMerge(t *testing.T) {
	d := New(4, false)
	const perWriter = 400
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if i%3 == 0 {
					d.Update(s, i, int64(i))
				} else {
					d.Insert(s, int64(s*perWriter+i))
				}
			}
		}()
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := d.Snapshot()
				if snap.TotalInserts() > snap.TotalRows() {
					t.Error("snapshot inserts exceed rows")
					return
				}
				d.LatestUpdate(3)
				d.AppendVisibleInserts(nil)
				d.SizeBytes()
			}
		}()
	}
	merged := 0
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !d.BeginMerge() {
				continue
			}
			snap := d.Snapshot()
			merged += snap.TotalRows()
			d.TruncateMerged(snap)
			d.EndMerge()
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	// Everything written is either merged away or still visible.
	if got := merged + d.Rows(); got != 4*perWriter {
		t.Fatalf("merged %d + remaining %d != written %d", merged, d.Rows(), 4*perWriter)
	}
}
