package insight

import (
	"fmt"
	"math"
	"sort"

	"numacs/internal/trace"
)

// Incident directions.
const (
	// Dip marks a series falling below its baseline; Spike a rise above it.
	Dip   = "dip"
	Spike = "spike"
)

// Incident is one detected time-series anomaly: which series moved, which
// way, over which windows, by how much against the detector's expectation,
// and which control-plane decisions fell inside its (slack-padded) interval
// — the suspects a human (or an SLO verdict) starts from. An incident with
// no candidate decisions is still reported, flagged Unexplained.
type Incident struct {
	// Series names the anomalous series ("throughput", "mc-total",
	// "mc-socket1", "queue-depth", "tenant:a").
	Series string `json:"series"`
	// Direction is Dip or Spike, relative to the EWMA baseline.
	Direction string `json:"direction"`
	// FirstWindow and LastWindow are the 0-based sample indexes the anomaly
	// spans (consecutive same-direction windows merge into one incident);
	// Start and End bound it in virtual seconds.
	FirstWindow int     `json:"first_window"`
	LastWindow  int     `json:"last_window"`
	Start       float64 `json:"start"`
	End         float64 `json:"end"`
	// Baseline is the detector's expectation (EWMA mean) at onset; Value the
	// span's most deviant observation; Magnitude the relative change
	// Value/Baseline - 1 (negative for dips); Z the peak robust z-score.
	Baseline  float64 `json:"baseline"`
	Value     float64 `json:"value"`
	Magnitude float64 `json:"magnitude"`
	Z         float64 `json:"z"`
	// SuspectDecisions are the decision-log entries inside the incident's
	// correlation interval (onset minus slack through the last anomalous
	// window), nearest-to-onset first retained under the cap, chronological.
	SuspectDecisions []trace.Decision `json:"suspect_decisions,omitempty"`
	// Unexplained marks an incident with zero candidate decisions.
	Unexplained bool `json:"unexplained,omitempty"`
}

// String renders the incident one-line: series, direction, span, size.
func (in Incident) String() string {
	return fmt.Sprintf("%s %s w%d-w%d: %.3g -> %.3g (%+.0f%%, z=%.1f)",
		in.Series, in.Direction, in.FirstWindow+1, in.LastWindow+1,
		in.Baseline, in.Value, in.Magnitude*100, in.Z)
}

// series is one extracted time-series with its per-unit noise floor: the
// absolute deviation below which the detector never alarms regardless of how
// quiet the series has been (protects near-zero baselines, where a relative
// floor vanishes).
type series struct {
	name     string
	vals     []float64
	absFloor float64
}

// extractSeries pulls the analyzable series out of the samples. Counter
// deltas become rates (per second) so partial flush windows compare cleanly
// against full ones; queue depth stays an instantaneous level.
func extractSeries(samples []trace.Sample) []series {
	if len(samples) == 0 {
		return nil
	}
	n := len(samples)
	rate := func(v float64, smp trace.Sample) float64 {
		if smp.Window <= 0 {
			return 0
		}
		return v / smp.Window
	}
	tp := series{name: "throughput", vals: make([]float64, n), absFloor: 1}
	mc := series{name: "mc-total", vals: make([]float64, n), absFloor: 0.5}
	// Queue depth is an instantaneous level sampled at window boundaries —
	// with N closed-loop clients it legitimately swings anywhere in [0, N]
	// between samples, so its floor is set well above that jitter band and
	// only a sustained queue explosion (admission backlog in the hundreds)
	// clears it.
	qd := series{name: "queue-depth", vals: make([]float64, n), absFloor: 24}
	hasQD := false
	sockets := len(samples[0].Delta.MCBytes)
	perSock := make([]series, sockets)
	for i := range perSock {
		perSock[i] = series{name: fmt.Sprintf("mc-socket%d", i), vals: make([]float64, n), absFloor: 0.5}
	}
	tenants := map[string]*series{}
	var tenantOrder []string
	for w, smp := range samples {
		tp.vals[w] = rate(float64(smp.Delta.QueriesDone), smp)
		mc.vals[w] = smp.TotalMCGiBs()
		for i, g := range smp.MCGiBs() {
			if i < sockets {
				perSock[i].vals[w] = g
			}
		}
		if len(smp.QueueDepths) > 0 {
			hasQD = true
			d := 0
			for _, q := range smp.QueueDepths {
				d += q
			}
			qd.vals[w] = float64(d)
		}
		for _, tc := range smp.Tenants {
			s, ok := tenants[tc.Name]
			if !ok {
				s = &series{name: "tenant:" + tc.Name, vals: make([]float64, n), absFloor: 1}
				tenants[tc.Name] = s
				tenantOrder = append(tenantOrder, tc.Name)
			}
			s.vals[w] = rate(float64(tc.Completed), smp)
		}
	}
	out := []series{tp, mc}
	out = append(out, perSock...)
	if hasQD {
		out = append(out, qd)
	}
	sort.Strings(tenantOrder)
	for _, name := range tenantOrder {
		out = append(out, *tenants[name])
	}
	return out
}

// anomaly is one window flagged by the detector.
type anomaly struct {
	win           int
	up            bool
	z             float64
	baseline, val float64
}

// detectSeries runs the robust change-point detector over one series. The
// EWMA mean is the expectation and an exponentially weighted mean absolute
// deviation (scaled by 1.4826, the MAD-to-sigma factor for normal noise) is
// the scale; both are primed on the first PrimeWindows windows. Quiet
// windows update mean and scale smoothly. An anomalous window re-baselines
// the mean to the observed level WITHOUT feeding the huge residual into the
// scale: a sustained fault therefore alarms once at its onset, tracks the
// faulted level quietly, and — because the scale still reflects healthy
// noise — alarms again when the series snaps back (the recovery incident).
func detectSeries(s series, cfg Config) []anomaly {
	if len(s.vals) <= cfg.PrimeWindows {
		return nil
	}
	mean, dev := 0.0, 0.0
	for _, v := range s.vals[:cfg.PrimeWindows] {
		mean += v
	}
	mean /= float64(cfg.PrimeWindows)
	for _, v := range s.vals[:cfg.PrimeWindows] {
		dev += math.Abs(v - mean)
	}
	dev /= float64(cfg.PrimeWindows)

	var out []anomaly
	for w := cfg.PrimeWindows; w < len(s.vals); w++ {
		v := s.vals[w]
		r := v - mean
		scale := 1.4826 * dev
		if f := cfg.MinRelScale * math.Abs(mean); f > scale {
			scale = f
		}
		if s.absFloor > scale {
			scale = s.absFloor
		}
		if z := r / scale; math.Abs(z) >= cfg.ZThreshold {
			out = append(out, anomaly{win: w, up: z > 0, z: z, baseline: mean, val: v})
			mean = v
		} else {
			mean += cfg.Alpha * r
			dev += cfg.Alpha * (math.Abs(r) - dev)
		}
	}
	return out
}

// detectIncidents runs the detector over every extracted series, merges
// consecutive same-direction anomalous windows into incidents, and
// correlates each incident with the decision log.
func detectIncidents(d *trace.Data, cfg Config) []Incident {
	samples := d.Samples
	var out []Incident
	for _, s := range extractSeries(samples) {
		anoms := detectSeries(s, cfg)
		for i := 0; i < len(anoms); {
			j := i
			peak := anoms[i]
			for j+1 < len(anoms) && anoms[j+1].win == anoms[j].win+1 && anoms[j+1].up == peak.up {
				j++
				if math.Abs(anoms[j].z) > math.Abs(peak.z) {
					peak = anoms[j]
				}
			}
			first, last := anoms[i].win, anoms[j].win
			in := Incident{
				Series:      s.name,
				Direction:   Dip,
				FirstWindow: first,
				LastWindow:  last,
				Start:       samples[first].Time - samples[first].Window,
				End:         samples[last].Time,
				Baseline:    anoms[i].baseline,
				Value:       peak.val,
				Z:           peak.z,
			}
			if peak.up {
				in.Direction = Spike
			}
			if in.Baseline != 0 {
				in.Magnitude = in.Value/in.Baseline - 1
			}
			correlate(&in, d.Decisions, samples[first].Window, cfg)
			out = append(out, in)
			i = j + 1
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].FirstWindow != out[j].FirstWindow {
			return out[i].FirstWindow < out[j].FirstWindow
		}
		return out[i].Series < out[j].Series
	})
	return out
}

// correlate fills the incident's suspect set: every decision inside
// [Start - SlackWindows*window, End]. When more than MaxSuspects qualify the
// ones nearest the incident onset are kept (the fault that opened the
// anomaly sits at its start; an AIMD controller chattering later in the span
// is the droppable tail), then re-sorted chronologically.
func correlate(in *Incident, decisions []trace.Decision, window float64, cfg Config) {
	lo := in.Start - cfg.SlackWindows*window
	var cand []trace.Decision
	for _, d := range decisions {
		if d.Time >= lo && d.Time <= in.End {
			cand = append(cand, d)
		}
	}
	if len(cand) == 0 {
		in.Unexplained = true
		return
	}
	if len(cand) > cfg.MaxSuspects {
		sort.SliceStable(cand, func(i, j int) bool {
			return math.Abs(cand[i].Time-in.Start) < math.Abs(cand[j].Time-in.Start)
		})
		cand = cand[:cfg.MaxSuspects]
	}
	sort.SliceStable(cand, func(i, j int) bool { return cand[i].Time < cand[j].Time })
	in.SuspectDecisions = cand
}
