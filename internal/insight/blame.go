package insight

import (
	"fmt"
	"sort"

	"numacs/internal/trace"
)

// Breakdown is one critical-path blame vector in seconds: where a statement
// (or a group's aggregate) spent its life between submission and completion.
// The components come straight from the recorder's span fields — admission
// queue wait, shared-scan join-window wait, scheduler queue wait, execution —
// and Other absorbs the remainder (phase-barrier drain gaps, inter-phase
// turnaround) so the vector always sums to the total latency.
type Breakdown struct {
	// Queue is the admission-queue wait (zero without an admission
	// controller); Join the shared-scan join-window wait; Sched the gap
	// between phase open and first task pickup summed over phases; Exec the
	// first-task-to-phase-close execution time; Other the unattributed rest.
	Queue float64 `json:"queue"`
	Join  float64 `json:"join"`
	Sched float64 `json:"sched"`
	Exec  float64 `json:"exec"`
	Other float64 `json:"other"`
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.Queue + b.Join + b.Sched + b.Exec + b.Other }

// add accumulates o into b.
func (b *Breakdown) add(o Breakdown) {
	b.Queue += o.Queue
	b.Join += o.Join
	b.Sched += o.Sched
	b.Exec += o.Exec
	b.Other += o.Other
}

// scale divides every component by n (no-op for n <= 0).
func (b *Breakdown) scale(n float64) {
	if n <= 0 {
		return
	}
	b.Queue /= n
	b.Join /= n
	b.Sched /= n
	b.Exec /= n
	b.Other /= n
}

// Dominant returns the largest component's name and its share of the total
// ("exec 72%" style); ("-", 0) when the vector is zero.
func (b Breakdown) Dominant() (string, float64) {
	total := b.Total()
	if total <= 0 {
		return "-", 0
	}
	name, v := "queue", b.Queue
	for _, c := range []struct {
		n string
		v float64
	}{{"join", b.Join}, {"sched", b.Sched}, {"exec", b.Exec}, {"other", b.Other}} {
		if c.v > v {
			name, v = c.n, c.v
		}
	}
	return name, v / total
}

// String renders the vector as its dominant component plus the full split.
func (b Breakdown) String() string {
	name, share := b.Dominant()
	return fmt.Sprintf("%s %.0f%% (queue %.2f / join %.2f / sched %.2f / exec %.2f / other %.2f ms)",
		name, share*100, b.Queue*1e3, b.Join*1e3, b.Sched*1e3, b.Exec*1e3, b.Other*1e3)
}

// statementBreakdown splits one completed statement's latency along its
// critical path.
func statementBreakdown(s *trace.Statement) Breakdown {
	b := Breakdown{
		Queue: s.QueueWait(),
		Join:  s.JoinWait,
		Sched: s.SchedulerWait(),
		Exec:  s.ExecSeconds(),
	}
	if total := s.Done - s.Submitted; total > b.Total() {
		b.Other = total - b.Queue - b.Join - b.Sched - b.Exec
	}
	return b
}

// BlameRow is one group's (class's or tenant's) aggregated blame: completion
// and shed counts, the p50/p99 of total latency, and two blame vectors — the
// mean over all completed statements and the mean over the p95+ tail, whose
// dominant component is the row's one-line diagnosis for "why is the tail
// slow".
type BlameRow struct {
	// Group names the class or tenant ("-" when the trace recorded none).
	Group string `json:"group"`
	// Count is completed statements; Shed the dropped ones (admission
	// deadline or join-window).
	Count int `json:"count"`
	Shed  int `json:"shed"`
	// P50 and P99 are total-latency percentiles over completed statements,
	// in seconds.
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
	// Mean is the average blame vector over all completed statements; Tail
	// the average over the statements at or above the p95 latency — the ones
	// that set the p99.
	Mean Breakdown `json:"mean"`
	Tail Breakdown `json:"tail"`
}

// blameTable aggregates the statements into blame rows keyed by group.
func blameTable(stmts []*trace.Statement, key func(*trace.Statement) string) []BlameRow {
	type acc struct {
		row  BlameRow
		lats []float64
		done []*trace.Statement
	}
	groups := map[string]*acc{}
	get := func(g string) *acc {
		a, ok := groups[g]
		if !ok {
			name := g
			if name == "" {
				name = "-"
			}
			a = &acc{row: BlameRow{Group: name}}
			groups[g] = a
		}
		return a
	}
	for _, s := range stmts {
		a := get(key(s))
		if s.Shed {
			a.row.Shed++
			continue
		}
		if s.Done < 0 {
			continue // in flight at capture: not attributable
		}
		a.row.Count++
		a.lats = append(a.lats, s.Done-s.Submitted)
		a.done = append(a.done, s)
	}
	var rows []BlameRow
	for _, a := range groups {
		if a.row.Count == 0 && a.row.Shed == 0 {
			continue
		}
		if a.row.Count > 0 {
			sort.Float64s(a.lats)
			a.row.P50 = percentile(a.lats, 50)
			a.row.P99 = percentile(a.lats, 99)
			tailFloor := percentile(a.lats, 95)
			nTail := 0
			for _, s := range a.done {
				b := statementBreakdown(s)
				a.row.Mean.add(b)
				if s.Done-s.Submitted >= tailFloor {
					a.row.Tail.add(b)
					nTail++
				}
			}
			a.row.Mean.scale(float64(a.row.Count))
			a.row.Tail.scale(float64(nTail))
		}
		rows = append(rows, a.row)
	}
	sortRows(rows)
	return rows
}

// percentile returns the nearest-rank p-th percentile of sorted (ascending)
// values; zero for an empty slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
