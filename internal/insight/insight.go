// Package insight is the analysis layer on top of the flight recorder: it
// consumes trace.Data (statement spans, the causal decision log, windowed
// time-series) and produces a structured triage report, so "the p99 moved"
// becomes a machine-generated diagnosis instead of a human staring at dumps.
// Three analyses compose into one report:
//
//   - Blame decomposition: every completed statement's latency splits along
//     its critical path into admission-queue wait, shared-scan join-window
//     wait, scheduler wait, and execution (all derived from the span
//     timestamps the recorder stamped). The splits aggregate into per-class
//     and per-tenant blame tables with p50/p99 latencies and the component
//     breakdown of the tail, so a regression names its dominant wait.
//   - Incident detection: a robust change-point detector (EWMA mean with an
//     exponentially weighted MAD-style scale) runs over every recorded
//     time-series — completion throughput, total and per-socket memory
//     bandwidth, scheduler queue depth, per-tenant completions — and each
//     detected dip or spike is correlated with the decision-log entries in
//     its (slack-padded) window. An incident with no candidate decisions is
//     reported as unexplained, never dropped.
//   - SLO verdicts: a declarative spec (per-class latency percentile
//     targets, a tenant-fairness floor, a per-window progress floor)
//     evaluates into pass/fail/skipped verdicts with the blaming evidence
//     attached: the dominant tail component for latency misses, the
//     overlapping incidents for progress stalls.
//
// Analyze is a pure function of the recorded data: it reads the trace and
// builds a report, touching no engine state, so it runs identically online
// (harness auto-triage on a finished run) and offline (a ReadJSONL'd dump
// from a CI artifact).
package insight

import (
	"sort"

	"numacs/internal/trace"
)

// Config tunes the analyzer. The zero value is usable: every zero field
// falls back to the documented default (DefaultConfig fills them in).
type Config struct {
	// Alpha is the EWMA smoothing factor for the detector's mean and scale
	// (default 0.35): large enough to adapt within ~2 windows of a level
	// shift, so a sustained fault raises one incident at its onset instead
	// of re-alarming every window.
	Alpha float64
	// PrimeWindows is how many leading windows prime the detector before it
	// may alarm (default 3). Priming swallows workload ramp-up and gives the
	// EWMA a baseline; runs shorter than PrimeWindows+1 windows can never
	// produce incidents.
	PrimeWindows int
	// ZThreshold is the robust z-score a window's deviation must reach to
	// open an incident (default 3.5).
	ZThreshold float64
	// MinRelScale floors the detector's deviation scale at this fraction of
	// the EWMA mean (default 0.12), so near-constant series do not alarm on
	// noise-level wiggles: a deviation must exceed roughly
	// ZThreshold*MinRelScale of the baseline no matter how quiet the series.
	MinRelScale float64
	// SlackWindows pads an incident's decision-correlation interval by this
	// many windows before its onset (default 1): control planes act with up
	// to a window of latency between a decision and its windowed effect.
	SlackWindows float64
	// MaxSuspects caps an incident's suspect list (default 12); when over
	// cap, the decisions nearest the incident onset are kept.
	MaxSuspects int
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		Alpha:        0.35,
		PrimeWindows: 3,
		ZThreshold:   3.5,
		MinRelScale:  0.12,
		SlackWindows: 1,
		MaxSuspects:  12,
	}
}

// fill replaces zero fields with defaults.
func (c Config) fill() Config {
	d := DefaultConfig()
	if c.Alpha <= 0 {
		c.Alpha = d.Alpha
	}
	if c.PrimeWindows <= 0 {
		c.PrimeWindows = d.PrimeWindows
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = d.ZThreshold
	}
	if c.MinRelScale <= 0 {
		c.MinRelScale = d.MinRelScale
	}
	if c.SlackWindows <= 0 {
		c.SlackWindows = d.SlackWindows
	}
	if c.MaxSuspects <= 0 {
		c.MaxSuspects = d.MaxSuspects
	}
	return c
}

// TriageReport is the analyzer's structured output: the blame tables, the
// detected incidents, and the SLO verdicts, plus enough context (the dump
// meta, record counts) to read it standalone.
type TriageReport struct {
	// Meta echoes the analyzed dump's meta line. A nonzero
	// Meta.DecisionsDropped means suspect sets may be incomplete (the ring
	// discarded the oldest decisions); Render prints the caveat.
	Meta trace.Meta `json:"meta"`
	// Statements and Windows count the analyzed records.
	Statements int `json:"statements"`
	Windows    int `json:"windows"`

	// ByClass and ByTenant are the blame tables, one row per admission class
	// / tenant (sorted by name; the empty group renders as "-").
	ByClass  []BlameRow `json:"by_class,omitempty"`
	ByTenant []BlameRow `json:"by_tenant,omitempty"`

	// Incidents are the detected time-series anomalies with their suspect
	// decisions, ordered by onset window then series name.
	Incidents []Incident `json:"incidents,omitempty"`

	// Verdicts are the SLO evaluations, in spec order.
	Verdicts []Verdict `json:"verdicts,omitempty"`
}

// FailedVerdicts counts the verdicts that evaluated to fail.
func (r *TriageReport) FailedVerdicts() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.Status == VerdictFail {
			n++
		}
	}
	return n
}

// Analyze runs the full triage pipeline — blame decomposition, incident
// detection, SLO evaluation — over one recorder dump with the default
// analyzer tuning. It is a pure function of its inputs: no engine state is
// read or written, so it applies equally to a live run's Data() and to a
// ReadJSONL'd artifact.
func Analyze(d *trace.Data, spec SLOSpec) *TriageReport {
	return AnalyzeWith(d, spec, Config{})
}

// AnalyzeWith is Analyze with explicit analyzer tuning.
func AnalyzeWith(d *trace.Data, spec SLOSpec, cfg Config) *TriageReport {
	cfg = cfg.fill()
	rep := &TriageReport{
		Meta:       d.Meta,
		Statements: len(d.Statements),
		Windows:    len(d.Samples),
	}
	rep.ByClass = blameTable(d.Statements, func(s *trace.Statement) string { return s.Class })
	rep.ByTenant = blameTable(d.Statements, func(s *trace.Statement) string { return s.Tenant })
	rep.Incidents = detectIncidents(d, cfg)
	rep.Verdicts = evaluateSLOs(d, spec, rep)
	return rep
}

// sortRows orders blame rows by group name for stable output.
func sortRows(rows []BlameRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Group < rows[j].Group })
}
