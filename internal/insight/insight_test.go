package insight

import (
	"math"
	"strings"
	"testing"

	"numacs/internal/metrics"
	"numacs/internal/trace"
)

// mcSamples builds a window-per-entry time-series whose total-MC GiB/s track
// vals (one socket; throughput held constant at 100 completions per window so
// only the MC series moves).
func mcSamples(window float64, vals []float64) []trace.Sample {
	out := make([]trace.Sample, len(vals))
	for i, v := range vals {
		out[i] = trace.Sample{
			Time:   float64(i+1) * window,
			Window: window,
			Delta: metrics.Snapshot{
				MCBytes:     []float64{v * window * (1 << 30)},
				QueriesDone: 100,
			},
		}
	}
	return out
}

// completed builds a completed statement with an exact wait decomposition.
func completed(id int, tenant, class string, submitted, queued, sched, exec float64) *trace.Statement {
	s := &trace.Statement{
		ID: id, Tenant: tenant, Class: class, Item: "t.c0",
		Submitted: submitted, Admitted: submitted + queued, Done: -1,
	}
	start := s.Admitted
	s.Phases = []trace.Phase{{
		Name: "scan", Start: start, FirstTask: start + sched, End: start + sched + exec, Tasks: 1,
	}}
	s.Done = start + sched + exec
	return s
}

// TestAnalyzeEmptyTrace: an empty recorder dump must analyze into an empty —
// but well-formed — report: no incidents, no blame rows, every objective
// skipped, and Render must not panic.
func TestAnalyzeEmptyTrace(t *testing.T) {
	spec := SLOSpec{
		Latency:       []LatencyTarget{{Class: "", Percentile: 99, Target: 0.01}},
		FairnessFloor: 0.5,
		MinWindowDone: 1,
	}
	rep := Analyze(&trace.Data{}, spec)
	if len(rep.Incidents) != 0 {
		t.Fatalf("empty trace produced %d incidents", len(rep.Incidents))
	}
	if len(rep.ByClass) != 0 || len(rep.ByTenant) != 0 {
		t.Fatalf("empty trace produced blame rows: %v %v", rep.ByClass, rep.ByTenant)
	}
	if len(rep.Verdicts) != 3 {
		t.Fatalf("got %d verdicts, want 3", len(rep.Verdicts))
	}
	for _, v := range rep.Verdicts {
		if v.Status != VerdictSkipped {
			t.Errorf("verdict %q on an empty trace is %q, want skipped", v.Name, v.Status)
		}
	}
	if rep.FailedVerdicts() != 0 {
		t.Errorf("empty trace failed %d verdicts", rep.FailedVerdicts())
	}
	if out := rep.Render(); !strings.Contains(out, "(none)") {
		t.Errorf("render of empty report misses the empty-incidents marker:\n%s", out)
	}
}

// TestAnalyzeSingleWindow: a run with one sampler window can never prime the
// detector — no incidents, no panic — but the progress verdict still
// evaluates against the one window.
func TestAnalyzeSingleWindow(t *testing.T) {
	d := &trace.Data{Samples: mcSamples(0.01, []float64{50})}
	rep := Analyze(d, SLOSpec{MinWindowDone: 1})
	if len(rep.Incidents) != 0 {
		t.Fatalf("single-window run produced %d incidents", len(rep.Incidents))
	}
	if len(rep.Verdicts) != 1 || rep.Verdicts[0].Status != VerdictPass {
		t.Fatalf("progress verdict on a single completing window: %+v", rep.Verdicts)
	}
	// And with a stalled single window the verdict fails instead of skipping.
	d.Samples[0].Delta.QueriesDone = 0
	rep = Analyze(d, SLOSpec{MinWindowDone: 1})
	if rep.Verdicts[0].Status != VerdictFail {
		t.Fatalf("stalled single window: %+v", rep.Verdicts[0])
	}
}

// TestBlameDecomposition: the per-statement critical-path split must
// reproduce the exact waits the spans encode, and the group aggregation must
// average them.
func TestBlameDecomposition(t *testing.T) {
	stmts := []*trace.Statement{
		completed(0, "a", "OLAP", 0, 0.004, 0.002, 0.010),
		completed(1, "a", "OLAP", 0.001, 0.002, 0.004, 0.010),
	}
	rep := Analyze(&trace.Data{Statements: stmts}, SLOSpec{})
	if len(rep.ByClass) != 1 || len(rep.ByTenant) != 1 {
		t.Fatalf("rows: class %v tenant %v", rep.ByClass, rep.ByTenant)
	}
	row := rep.ByClass[0]
	if row.Group != "OLAP" || row.Count != 2 || row.Shed != 0 {
		t.Fatalf("class row: %+v", row)
	}
	const eps = 1e-12
	if math.Abs(row.Mean.Queue-0.003) > eps || math.Abs(row.Mean.Sched-0.003) > eps ||
		math.Abs(row.Mean.Exec-0.010) > eps || math.Abs(row.Mean.Other) > eps || math.Abs(row.Mean.Join) > eps {
		t.Fatalf("mean blame: %+v", row.Mean)
	}
	// Totals must reconcile: the blame vector sums to the mean latency.
	meanLat := ((0.004 + 0.002 + 0.010) + (0.002 + 0.004 + 0.010)) / 2
	if math.Abs(row.Mean.Total()-meanLat) > eps {
		t.Fatalf("blame total %.6f != mean latency %.6f", row.Mean.Total(), meanLat)
	}
	if name, _ := row.Tail.Dominant(); name != "exec" {
		t.Fatalf("tail dominant %q, want exec", name)
	}
}

// TestBlameAllShed: a tenant whose every statement was shed still gets a
// blame row (count 0, shed N) with zero — not NaN — aggregates.
func TestBlameAllShed(t *testing.T) {
	shed := &trace.Statement{ID: 0, Tenant: "greedy", Class: "OLAP", Item: "t.c0",
		Submitted: 0, Admitted: 0, Done: -1}
	shed.MarkShed(0.005, "admission")
	shed2 := &trace.Statement{ID: 1, Tenant: "greedy", Class: "OLAP", Item: "t.c1",
		Submitted: 0.001, Admitted: 0.001, Done: -1}
	shed2.MarkShed(0.006, "join-window")
	ok := completed(2, "meek", "OLAP", 0, 0, 0.001, 0.004)

	rep := Analyze(&trace.Data{Statements: []*trace.Statement{shed, shed2, ok}}, SLOSpec{})
	var greedy *BlameRow
	for i := range rep.ByTenant {
		if rep.ByTenant[i].Group == "greedy" {
			greedy = &rep.ByTenant[i]
		}
	}
	if greedy == nil {
		t.Fatalf("all-shed tenant missing from blame table: %+v", rep.ByTenant)
	}
	if greedy.Count != 0 || greedy.Shed != 2 {
		t.Fatalf("all-shed row: %+v", greedy)
	}
	for _, v := range []float64{greedy.P50, greedy.P99, greedy.Mean.Total(), greedy.Tail.Total()} {
		if math.IsNaN(v) || v != 0 {
			t.Fatalf("all-shed aggregates not zero: %+v", greedy)
		}
	}
}

// TestIncidentDipWithSuspect: a clean level drop on the MC series raises
// exactly one dip incident whose suspect set holds the decision logged at the
// fault instant — and a later recovery raises a spike incident.
func TestIncidentDipWithSuspect(t *testing.T) {
	window := 0.01
	// Windows 1-5 healthy at ~90, 6-8 faulted at 45, 9-10 recovered.
	vals := []float64{90, 91, 89, 90, 90, 45, 45, 46, 90, 90}
	d := &trace.Data{
		Samples: mcSamples(window, vals),
		Decisions: []trace.Decision{
			{Time: 5.0 * window, Source: "chaos", Kind: "socket-offline", From: 1, To: 1, Cause: "scheduled"},
			{Time: 8.2 * window, Source: "placer", Kind: "replicate", Item: "c0", From: 0, To: 1, Cause: "heat"},
		},
	}
	rep := Analyze(d, SLOSpec{})
	var dip, spike *Incident
	for i := range rep.Incidents {
		in := &rep.Incidents[i]
		if in.Series != "mc-total" {
			continue
		}
		switch in.Direction {
		case Dip:
			dip = in
		case Spike:
			spike = in
		}
	}
	if dip == nil {
		t.Fatalf("no mc-total dip detected: %+v", rep.Incidents)
	}
	if dip.FirstWindow != 5 {
		t.Errorf("dip onset w%d, want w6 (index 5)", dip.FirstWindow+1)
	}
	if dip.Magnitude > -0.3 {
		t.Errorf("dip magnitude %.2f, want <= -0.3", dip.Magnitude)
	}
	found := false
	for _, s := range dip.SuspectDecisions {
		if s.Source == "chaos" && s.Kind == "socket-offline" {
			found = true
		}
	}
	if !found || dip.Unexplained {
		t.Errorf("dip suspects miss the fault decision: %+v", dip)
	}
	if spike == nil {
		t.Fatalf("no mc-total recovery spike detected: %+v", rep.Incidents)
	}
	found = false
	for _, s := range spike.SuspectDecisions {
		if s.Source == "placer" && s.Kind == "replicate" {
			found = true
		}
	}
	if !found {
		t.Errorf("recovery spike suspects miss the replicate decision: %+v", spike)
	}
}

// TestIncidentUnexplained: an incident whose correlation interval holds zero
// decisions is reported flagged Unexplained — never silently dropped.
func TestIncidentUnexplained(t *testing.T) {
	vals := []float64{90, 90, 90, 90, 40, 40, 90, 90}
	d := &trace.Data{Samples: mcSamples(0.01, vals)} // empty decision log
	rep := Analyze(d, SLOSpec{})
	if len(rep.Incidents) == 0 {
		t.Fatal("dip with no decisions vanished from the report")
	}
	for _, in := range rep.Incidents {
		if !in.Unexplained || len(in.SuspectDecisions) != 0 {
			t.Errorf("incident with empty decision log not marked unexplained: %+v", in)
		}
	}
	// A decision outside the correlation interval must not become a suspect.
	d.Decisions = []trace.Decision{{Time: 0.001, Source: "placer", Kind: "move"}}
	rep = Analyze(d, SLOSpec{})
	for _, in := range rep.Incidents {
		if in.FirstWindow >= 4 && !in.Unexplained {
			t.Errorf("far-away decision correlated into incident: %+v", in)
		}
	}
}

// TestSteadySeriesNoIncidents: ordinary noise around a level must stay
// silent, including a series hovering near zero (the absolute floor).
func TestSteadySeriesNoIncidents(t *testing.T) {
	vals := []float64{100, 103, 98, 101, 99, 102, 97, 100, 101, 99}
	rep := Analyze(&trace.Data{Samples: mcSamples(0.01, vals)}, SLOSpec{})
	if len(rep.Incidents) != 0 {
		t.Fatalf("steady series raised incidents: %+v", rep.Incidents)
	}
	nearZero := []float64{0.1, 0.12, 0.09, 0.4, 0.1, 0.11, 0.1, 0.3}
	rep = Analyze(&trace.Data{Samples: mcSamples(0.01, nearZero)}, SLOSpec{})
	for _, in := range rep.Incidents {
		if in.Series == "mc-total" || strings.HasPrefix(in.Series, "mc-socket") {
			t.Fatalf("near-zero series wiggle raised an incident: %+v", in)
		}
	}
}

// TestSLOVerdicts: latency targets pass and fail on the exact percentile,
// fairness flags the starved tenant, and evidence carries the blame.
func TestSLOVerdicts(t *testing.T) {
	var stmts []*trace.Statement
	// Tenant a: 8 fast statements; tenant b: 2 slow ones (scheduler-bound).
	for i := 0; i < 8; i++ {
		stmts = append(stmts, completed(i, "a", "OLAP", float64(i)*0.001, 0, 0.0005, 0.002))
	}
	for i := 8; i < 10; i++ {
		stmts = append(stmts, completed(i, "b", "OLAP", float64(i)*0.001, 0, 0.040, 0.002))
	}
	d := &trace.Data{Statements: stmts}

	spec := SLOSpec{
		Latency: []LatencyTarget{
			{Class: "OLAP", Percentile: 50, Target: 0.010},        // p50 ~2.5ms: pass
			{Class: "OLAP", Percentile: 99, Target: 0.010},        // p99 ~42ms: fail
			{Class: "Interactive", Percentile: 99, Target: 0.010}, // no data: skip
		},
		FairnessFloor: 0.5,
	}
	rep := Analyze(d, spec)
	if len(rep.Verdicts) != 4 {
		t.Fatalf("got %d verdicts: %+v", len(rep.Verdicts), rep.Verdicts)
	}
	if rep.Verdicts[0].Status != VerdictPass {
		t.Errorf("p50 verdict: %+v", rep.Verdicts[0])
	}
	if rep.Verdicts[1].Status != VerdictFail {
		t.Errorf("p99 verdict: %+v", rep.Verdicts[1])
	}
	if !strings.Contains(rep.Verdicts[1].Evidence, "sched") {
		t.Errorf("p99 fail evidence does not blame the scheduler wait: %q", rep.Verdicts[1].Evidence)
	}
	if rep.Verdicts[2].Status != VerdictSkipped {
		t.Errorf("no-data class verdict: %+v", rep.Verdicts[2])
	}
	// Fairness: b completed 2 of an even share of 5 -> 40% < 50% floor.
	fv := rep.Verdicts[3]
	if fv.Status != VerdictFail || !strings.Contains(fv.Evidence, `"b"`) {
		t.Errorf("fairness verdict: %+v", fv)
	}
	if rep.FailedVerdicts() != 2 {
		t.Errorf("FailedVerdicts = %d, want 2", rep.FailedVerdicts())
	}
}
