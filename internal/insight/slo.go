package insight

import (
	"fmt"
	"sort"
	"strings"

	"numacs/internal/trace"
)

// Verdict statuses.
const (
	// VerdictPass and VerdictFail are definitive evaluations; VerdictSkipped
	// marks an objective the trace carries no data for (no statements of the
	// class, fewer than two tenants, no sampler windows). Skipped is not a
	// pass hidden under a different name — Render prints it distinctly — but
	// FailedVerdicts does not count it either.
	VerdictPass    = "pass"
	VerdictFail    = "fail"
	VerdictSkipped = "skipped"
)

// SLOSpec is the declarative objective set a run is judged against. The zero
// value evaluates nothing; every populated objective yields one verdict.
type SLOSpec struct {
	// Latency lists per-class latency percentile targets.
	Latency []LatencyTarget `json:"latency,omitempty"`
	// FairnessFloor requires every tenant's completed-statement count to
	// reach at least this fraction of the even share (completed total /
	// tenants). Zero disables; the objective is skipped below two tenants.
	FairnessFloor float64 `json:"fairness_floor,omitempty"`
	// MinWindowDone requires every sampler window to complete at least this
	// many statements — the no-livelock progress floor. Zero disables.
	MinWindowDone uint64 `json:"min_window_done,omitempty"`
}

// LatencyTarget is one latency objective: the Percentile of class
// Class's completed-statement latency must not exceed Target seconds. An
// empty Class matches every statement (the class-less single-workload runs).
type LatencyTarget struct {
	// Class selects the admission class ("" = all statements).
	Class string `json:"class"`
	// Percentile is the evaluated percentile (e.g. 99); Target the bound in
	// virtual seconds.
	Percentile float64 `json:"percentile"`
	Target     float64 `json:"target"`
}

// Verdict is one evaluated objective: what was required, what was measured,
// and the blaming evidence when it failed (the dominant tail component for
// latency, the overlapping incidents for progress).
type Verdict struct {
	// Name states the objective ("p99(OLAP) <= 20.0ms").
	Name string `json:"name"`
	// Status is VerdictPass, VerdictFail, or VerdictSkipped.
	Status string `json:"status"`
	// Measured and Target are the objective's numbers (units per objective:
	// seconds for latency, fraction of even share for fairness, statements
	// for progress).
	Measured float64 `json:"measured"`
	Target   float64 `json:"target"`
	// Evidence explains the verdict: the blame decomposition or incident
	// list backing it.
	Evidence string `json:"evidence,omitempty"`
}

// evaluateSLOs turns the spec into verdicts against the analyzed data,
// attaching blame and incident evidence from the already-built report.
func evaluateSLOs(d *trace.Data, spec SLOSpec, rep *TriageReport) []Verdict {
	var out []Verdict
	for _, lt := range spec.Latency {
		out = append(out, latencyVerdict(d, lt, rep))
	}
	if spec.FairnessFloor > 0 {
		out = append(out, fairnessVerdict(d, spec.FairnessFloor))
	}
	if spec.MinWindowDone > 0 {
		out = append(out, progressVerdict(d, spec.MinWindowDone, rep))
	}
	return out
}

// latencyVerdict evaluates one latency percentile target; evidence is the
// class's tail blame decomposition.
func latencyVerdict(d *trace.Data, lt LatencyTarget, rep *TriageReport) Verdict {
	className := lt.Class
	if className == "" {
		className = "*"
	}
	v := Verdict{
		Name:   fmt.Sprintf("p%g(%s) <= %.1fms", lt.Percentile, className, lt.Target*1e3),
		Target: lt.Target,
	}
	var lats []float64
	for _, s := range d.Statements {
		if s.Shed || s.Done < 0 {
			continue
		}
		if lt.Class != "" && s.Class != lt.Class {
			continue
		}
		lats = append(lats, s.Done-s.Submitted)
	}
	if len(lats) == 0 {
		v.Status = VerdictSkipped
		v.Evidence = "no completed statements of this class in the trace"
		return v
	}
	sort.Float64s(lats)
	v.Measured = percentile(lats, lt.Percentile)
	v.Status = VerdictPass
	if v.Measured > lt.Target {
		v.Status = VerdictFail
	}
	// Blame evidence: the matching class row's tail decomposition (the ""
	// target reads the whole-trace tail by re-deriving it from all rows'
	// groups when a single "-" row exists).
	group := lt.Class
	if group == "" {
		group = "-"
	}
	for _, row := range rep.ByClass {
		if row.Group == group {
			v.Evidence = "tail blame: " + row.Tail.String()
			break
		}
	}
	if v.Evidence == "" && lt.Class == "" && len(rep.ByClass) > 0 {
		v.Evidence = "tail blame (first class): " + rep.ByClass[0].Tail.String()
	}
	return v
}

// fairnessVerdict checks every tenant's completion count against the
// fairness floor (fraction of the even share).
func fairnessVerdict(d *trace.Data, floor float64) Verdict {
	v := Verdict{
		Name:   fmt.Sprintf("every tenant >= %.0f%% of even completion share", floor*100),
		Target: floor,
	}
	done := map[string]int{}
	total := 0
	for _, s := range d.Statements {
		if s.Tenant == "" || s.Shed || s.Done < 0 {
			continue
		}
		done[s.Tenant]++
		total++
	}
	if len(done) < 2 {
		v.Status = VerdictSkipped
		v.Evidence = "fewer than two tenants in the trace"
		return v
	}
	even := float64(total) / float64(len(done))
	worstName, worst := "", -1.0
	for name, n := range done {
		share := float64(n) / even
		if worst < 0 || share < worst {
			worstName, worst = name, share
		}
	}
	v.Measured = worst
	v.Status = VerdictPass
	if worst < floor {
		v.Status = VerdictFail
	}
	v.Evidence = fmt.Sprintf("worst tenant %q completed %d of an even share of %.0f (%.0f%%)",
		worstName, done[worstName], even, worst*100)
	return v
}

// progressVerdict checks the no-livelock floor: every sampler window must
// complete at least min statements. Evidence on failure lists the stalled
// windows and the incidents overlapping them.
func progressVerdict(d *trace.Data, min uint64, rep *TriageReport) Verdict {
	v := Verdict{
		Name:   fmt.Sprintf("every window completes >= %d statements", min),
		Target: float64(min),
	}
	if len(d.Samples) == 0 {
		v.Status = VerdictSkipped
		v.Evidence = "no sampler windows in the trace"
		return v
	}
	worst := d.Samples[0].Delta.QueriesDone
	var stalled []int
	for w, smp := range d.Samples {
		if smp.Delta.QueriesDone < worst {
			worst = smp.Delta.QueriesDone
		}
		if smp.Delta.QueriesDone < min {
			stalled = append(stalled, w)
		}
	}
	v.Measured = float64(worst)
	if len(stalled) == 0 {
		v.Status = VerdictPass
		return v
	}
	v.Status = VerdictFail
	var parts []string
	for _, w := range stalled {
		part := fmt.Sprintf("w%d", w+1)
		var overlapping []string
		for _, in := range rep.Incidents {
			if w >= in.FirstWindow && w <= in.LastWindow {
				overlapping = append(overlapping, in.String())
			}
		}
		if len(overlapping) > 0 {
			part += " [" + strings.Join(overlapping, "; ") + "]"
		}
		parts = append(parts, part)
	}
	v.Evidence = "stalled windows: " + strings.Join(parts, ", ")
	return v
}
