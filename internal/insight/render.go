package insight

import (
	"fmt"
	"strings"
)

// Render formats the triage report as aligned text tables — the human half
// of scanbench -triage (the -json flag carries the same report structured).
func (r *TriageReport) Render() string {
	var b strings.Builder
	title := "triage"
	if r.Meta.RunID != "" {
		title += ": " + r.Meta.RunID
	}
	fmt.Fprintf(&b, "=== %s ===\n", title)
	fmt.Fprintf(&b, "%d statements, %d windows, %d decisions",
		r.Statements, r.Windows, r.Meta.DecisionsTotal)
	if r.Meta.DecisionsDropped > 0 {
		fmt.Fprintf(&b, " (%d dropped from the ring — suspect sets may be incomplete)",
			r.Meta.DecisionsDropped)
	}
	b.WriteString("\n")

	blame := func(name string, rows []BlameRow) {
		if len(rows) == 0 {
			return
		}
		tbl := newTextTable(name, "group", "done", "shed", "p50", "p99", "tail blame")
		for _, row := range rows {
			tbl.row(row.Group, itoa(row.Count), itoa(row.Shed),
				fmt.Sprintf("%.2fms", row.P50*1e3), fmt.Sprintf("%.2fms", row.P99*1e3),
				row.Tail.String())
		}
		b.WriteString(tbl.render())
	}
	blame("blame by class", r.ByClass)
	blame("blame by tenant", r.ByTenant)

	tbl := newTextTable("incidents", "series", "dir", "windows", "baseline", "value", "change", "z", "suspects")
	if len(r.Incidents) == 0 {
		tbl.row("(none)", "-", "-", "-", "-", "-", "-", "-")
	}
	for _, in := range r.Incidents {
		sus := "UNEXPLAINED"
		if !in.Unexplained {
			var parts []string
			for _, d := range in.SuspectDecisions {
				parts = append(parts, fmt.Sprintf("%s:%s@%.1fms", d.Source, d.Kind, d.Time*1e3))
			}
			sus = strings.Join(parts, " ")
		}
		tbl.row(in.Series, in.Direction,
			fmt.Sprintf("w%d-w%d", in.FirstWindow+1, in.LastWindow+1),
			fmt.Sprintf("%.3g", in.Baseline), fmt.Sprintf("%.3g", in.Value),
			fmt.Sprintf("%+.0f%%", in.Magnitude*100), fmt.Sprintf("%.1f", in.Z), sus)
	}
	b.WriteString(tbl.render())

	if len(r.Verdicts) > 0 {
		tbl := newTextTable("SLO verdicts", "objective", "status", "measured", "target", "evidence")
		for _, v := range r.Verdicts {
			status := v.Status
			if v.Status == VerdictFail {
				status = "FAIL"
			}
			tbl.row(v.Name, status, fmt.Sprintf("%.4g", v.Measured), fmt.Sprintf("%.4g", v.Target), v.Evidence)
		}
		b.WriteString(tbl.render())
	}
	return b.String()
}

// textTable is a minimal aligned-column renderer for the triage output.
type textTable struct {
	name   string
	header []string
	rows   [][]string
}

// newTextTable starts a table with the given header.
func newTextTable(name string, header ...string) *textTable {
	return &textTable{name: name, header: header}
}

// row appends one row.
func (t *textTable) row(cells ...string) { t.rows = append(t.rows, cells) }

// render formats the table with aligned columns.
func (t *textTable) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n-- %s --\n", t.name)
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// itoa is a local fmt shim (keeps render lines short).
func itoa(v int) string { return fmt.Sprintf("%d", v) }
