package memsim

import (
	"testing"
	"testing/quick"
)

func TestAllocOnSocket(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc(3*PageSize+100, OnSocket(2))
	if got := r.Pages(); got != 4 {
		t.Fatalf("pages = %d, want 4", got)
	}
	for _, s := range a.QueryPages(r) {
		if s != 2 {
			t.Fatalf("page on socket %d, want 2", s)
		}
	}
	if a.PagesOnSocket(2) != 4 {
		t.Fatalf("PagesOnSocket(2) = %d", a.PagesOnSocket(2))
	}
}

func TestAllocInterleaved(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc(8*PageSize, Interleaved{Sockets: []int{0, 1, 2, 3}})
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	got := a.QueryPages(r)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("QueryPages = %v, want %v", got, want)
		}
	}
}

func TestAllocInterleavedStartOffset(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc(4*PageSize, Interleaved{Sockets: []int{0, 1, 2, 3}, Start: 2})
	want := []int{2, 3, 0, 1}
	got := a.QueryPages(r)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("QueryPages = %v, want %v", got, want)
		}
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	a := NewAllocator(2)
	r1 := a.Alloc(PageSize/2, OnSocket(0))
	r2 := a.Alloc(PageSize/2, OnSocket(1))
	if r1.End() > r2.Start {
		t.Fatalf("ranges overlap: %+v then %+v", r1, r2)
	}
	if r1.Start.PageIndex() == r2.Start.PageIndex() {
		t.Fatal("two allocations share a page; placement would be ambiguous")
	}
}

func TestMovePages(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc(10*PageSize, OnSocket(0))
	moved := a.MovePages(r, 3)
	if moved != 10 {
		t.Fatalf("moved = %d, want 10", moved)
	}
	if a.PagesOnSocket(0) != 0 || a.PagesOnSocket(3) != 10 {
		t.Fatalf("per-socket counts wrong: s0=%d s3=%d", a.PagesOnSocket(0), a.PagesOnSocket(3))
	}
	// Idempotent.
	if again := a.MovePages(r, 3); again != 0 {
		t.Fatalf("second move moved %d pages, want 0", again)
	}
	if a.TotalPagesMoved() != 10 {
		t.Fatalf("TotalPagesMoved = %d, want 10", a.TotalPagesMoved())
	}
}

func TestMovePartialRange(t *testing.T) {
	a := NewAllocator(2)
	r := a.Alloc(10*PageSize, OnSocket(0))
	half := r.Subrange(0, 5*PageSize)
	if moved := a.MovePages(half, 1); moved != 5 {
		t.Fatalf("moved = %d, want 5", moved)
	}
	if a.PagesOnSocket(0) != 5 || a.PagesOnSocket(1) != 5 {
		t.Fatal("partial move mis-counted")
	}
}

func TestInterleavePages(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc(8*PageSize, OnSocket(0))
	a.InterleavePages(r, []int{0, 1, 2, 3})
	got := a.QueryPages(r)
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("QueryPages = %v, want %v", got, want)
		}
	}
}

func TestSocketBytesPartialPages(t *testing.T) {
	a := NewAllocator(2)
	r := a.Alloc(2*PageSize, OnSocket(0))
	sub := r.Subrange(PageSize/2, PageSize) // half of page 0, half of page 1
	bytes := a.SocketBytes(sub)
	if bytes[0] != PageSize {
		t.Fatalf("SocketBytes = %v, want %d on socket 0", bytes, PageSize)
	}
}

func TestMajoritySocket(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc(10*PageSize, OnSocket(1))
	a.MovePages(r.Subrange(0, 3*PageSize), 2)
	if got := a.MajoritySocket(r); got != 1 {
		t.Fatalf("MajoritySocket = %d, want 1", got)
	}
	if got := a.MajoritySocket(Range{Start: 1 << 40, Bytes: PageSize}); got != -1 {
		t.Fatalf("MajoritySocket of unallocated = %d, want -1", got)
	}
}

func TestRuns(t *testing.T) {
	a := NewAllocator(4)
	r := a.Alloc(6*PageSize, OnSocket(0))
	a.MovePages(r.Subrange(2*PageSize, 2*PageSize), 1)
	runs := a.Runs(r)
	if len(runs) != 3 {
		t.Fatalf("runs = %+v, want 3 runs", runs)
	}
	if runs[0].Socket != 0 || runs[0].NPages != 2 ||
		runs[1].Socket != 1 || runs[1].NPages != 2 ||
		runs[2].Socket != 0 || runs[2].NPages != 2 {
		t.Fatalf("unexpected runs: %+v", runs)
	}
}

func TestFree(t *testing.T) {
	a := NewAllocator(2)
	r := a.Alloc(4*PageSize, OnSocket(1))
	a.Free(r)
	if a.PagesOnSocket(1) != 0 {
		t.Fatalf("pages remain after free: %d", a.PagesOnSocket(1))
	}
	if a.PageSocket(r.Start) != -1 {
		t.Fatal("freed page still resolves")
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Start: PageSize, Bytes: PageSize + 1}
	if r.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", r.Pages())
	}
	if (Range{Start: PageSize, Bytes: 0}).Pages() != 0 {
		t.Fatal("empty range should span 0 pages")
	}
	if Addr(PageSize+123).PageBase() != PageSize {
		t.Fatal("PageBase wrong")
	}
}

func TestSubrangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range subrange")
		}
	}()
	r := Range{Start: 0, Bytes: 100}
	r.Subrange(50, 100)
}

// Property: after any sequence of moves, per-socket page counts always sum
// to the total allocated pages, and SocketBytes sums to the range size.
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(seed uint32) bool {
		a := NewAllocator(4)
		n := int64(1 + seed%64)
		r := a.Alloc(n*PageSize, Interleaved{Sockets: []int{0, 1, 2, 3}})
		s := seed
		for i := 0; i < 10; i++ {
			s = s*1664525 + 1013904223
			off := int64(s%uint32(n)) * PageSize
			s = s*1664525 + 1013904223
			ln := int64(1+s%uint32(n)) * PageSize
			if off+ln > r.Bytes {
				ln = r.Bytes - off
			}
			if ln <= 0 {
				continue
			}
			s = s*1664525 + 1013904223
			a.MovePages(r.Subrange(off, ln), int(s%4))
		}
		total := int64(0)
		for sck := 0; sck < 4; sck++ {
			total += a.PagesOnSocket(sck)
		}
		if total != n {
			return false
		}
		sb := a.SocketBytes(r)
		sum := int64(0)
		for _, b := range sb {
			sum += b
		}
		return sum == r.Bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityFallback(t *testing.T) {
	a := NewAllocator(2)
	a.SetCapacity(4)
	r := a.Alloc(6*PageSize, OnSocket(0))
	if a.PagesOnSocket(0) != 4 || a.PagesOnSocket(1) != 2 {
		t.Fatalf("fallback split: s0=%d s1=%d", a.PagesOnSocket(0), a.PagesOnSocket(1))
	}
	if a.Fallbacks != 2 {
		t.Fatalf("fallbacks = %d, want 2", a.Fallbacks)
	}
	// The first 4 pages are on the preferred socket.
	socks := a.QueryPages(r)
	for i := 0; i < 4; i++ {
		if socks[i] != 0 {
			t.Fatalf("page %d on %d", i, socks[i])
		}
	}
}

func TestCapacityExhaustionPanics(t *testing.T) {
	a := NewAllocator(2)
	a.SetCapacity(1)
	a.Alloc(2*PageSize, OnSocket(0)) // fills both sockets
	defer func() {
		if recover() == nil {
			t.Fatal("expected exhaustion panic")
		}
	}()
	a.Alloc(PageSize, OnSocket(0))
}

func TestCapacityFreeMakesRoom(t *testing.T) {
	a := NewAllocator(2)
	a.SetCapacity(2)
	r := a.Alloc(2*PageSize, OnSocket(1))
	a.Free(r)
	r2 := a.Alloc(2*PageSize, OnSocket(1))
	for _, s := range a.QueryPages(r2) {
		if s != 1 {
			t.Fatalf("freed capacity not reused: socket %d", s)
		}
	}
	if a.Fallbacks != 0 {
		t.Fatalf("unexpected fallbacks: %d", a.Fallbacks)
	}
}
