// Package memsim simulates the operating system's physical-memory facilities
// the paper relies on: a virtual address space organized in 4 KiB pages,
// first-touch and interleaved allocation policies, page-location queries, and
// page migration (the Linux move_pages analogue). Data placements and the
// Page Socket Mapping (package psm) are built against this API, mirroring
// Section 2 ("OS memory allocation facilities") of the paper.
package memsim

import (
	"fmt"
	"sort"
)

// PageSize is the size of a physical page in bytes.
const PageSize = 4096

// Addr is a simulated virtual address.
type Addr uint64

// PageBase returns the base address of the page containing a.
func (a Addr) PageBase() Addr { return a &^ (PageSize - 1) }

// PageIndex returns the page number of the page containing a.
func (a Addr) PageIndex() uint64 { return uint64(a) / PageSize }

// Range is a contiguous virtual address range [Start, Start+Bytes).
type Range struct {
	Start Addr
	Bytes int64
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Start + Addr(r.Bytes) }

// Pages returns the number of pages the range spans.
func (r Range) Pages() int64 {
	if r.Bytes == 0 {
		return 0
	}
	first := r.Start.PageIndex()
	last := (r.End() - 1).PageIndex()
	return int64(last-first) + 1
}

// Subrange returns the range covering [off, off+bytes) within r.
func (r Range) Subrange(off, bytes int64) Range {
	if off < 0 || bytes < 0 || off+bytes > r.Bytes {
		panic(fmt.Sprintf("memsim: subrange [%d,%d) out of range of %d bytes", off, off+bytes, r.Bytes))
	}
	return Range{Start: r.Start + Addr(off), Bytes: bytes}
}

// Policy controls where newly touched pages are physically allocated.
type Policy interface {
	// socketFor returns the socket backing the i-th page of an allocation.
	socketFor(pageOrdinal int64) int
	String() string
}

// OnSocket places every page on one socket (what first-touch achieves when
// the touching thread is pinned to that socket).
type OnSocket int

func (p OnSocket) socketFor(int64) int { return int(p) }
func (p OnSocket) String() string      { return fmt.Sprintf("socket(%d)", int(p)) }

// Interleaved distributes pages round-robin over the given sockets, starting
// at index Start into Sockets.
type Interleaved struct {
	Sockets []int
	Start   int
}

func (p Interleaved) socketFor(i int64) int {
	n := int64(len(p.Sockets))
	return p.Sockets[(int64(p.Start)+i)%n]
}
func (p Interleaved) String() string { return fmt.Sprintf("interleave%v", p.Sockets) }

// Allocator is the simulated physical-memory manager. It is not safe for
// concurrent use; the simulation is single-threaded and deterministic.
type Allocator struct {
	sockets   int
	next      Addr
	pages     map[uint64]uint8 // page index -> socket
	perSocket []int64          // pages per socket
	moved     int64            // cumulative pages moved (move_pages cost proxy)
	// capacity limits pages per socket (0 = unlimited). When a policy's
	// target socket is exhausted, the allocation falls over to the next
	// socket with space — the first-touch fallback of the paper's Section 2
	// ("the OS allocates physical memory from the local socket, unless it
	// is exhausted").
	capacity int64
	// Fallbacks counts pages that could not be placed on their policy's
	// socket.
	Fallbacks int64
}

// NewAllocator creates an allocator for a machine with the given number of
// sockets.
func NewAllocator(sockets int) *Allocator {
	if sockets <= 0 || sockets > 256 {
		panic(fmt.Sprintf("memsim: bad socket count %d", sockets))
	}
	return &Allocator{
		sockets:   sockets,
		next:      PageSize, // keep 0 as a null address
		pages:     make(map[uint64]uint8),
		perSocket: make([]int64, sockets),
	}
}

// Sockets returns the number of sockets the allocator manages.
func (a *Allocator) Sockets() int { return a.sockets }

// SetCapacity limits each socket to the given number of pages (0 removes
// the limit). Existing placements are not revisited.
func (a *Allocator) SetCapacity(pagesPerSocket int64) { a.capacity = pagesPerSocket }

// hasRoom reports whether a socket can take another page.
func (a *Allocator) hasRoom(s int) bool {
	return a.capacity == 0 || a.perSocket[s] < a.capacity
}

// placeSocket resolves the policy's preferred socket against capacities,
// falling over round-robin to the next socket with room.
func (a *Allocator) placeSocket(preferred int) int {
	if a.hasRoom(preferred) {
		return preferred
	}
	for off := 1; off < a.sockets; off++ {
		s := (preferred + off) % a.sockets
		if a.hasRoom(s) {
			a.Fallbacks++
			return s
		}
	}
	panic("memsim: physical memory exhausted on every socket")
}

// Alloc reserves bytes of virtual memory, backs every page according to the
// policy (i.e. the memory is "touched" immediately), and returns the range.
// Allocations are page-aligned.
func (a *Allocator) Alloc(bytes int64, policy Policy) Range {
	if bytes <= 0 {
		panic("memsim: allocation size must be positive")
	}
	r := Range{Start: a.next, Bytes: bytes}
	npages := r.Pages()
	first := r.Start.PageIndex()
	for i := int64(0); i < npages; i++ {
		s := policy.socketFor(i)
		a.checkSocket(s)
		s = a.placeSocket(s)
		a.pages[first+uint64(i)] = uint8(s)
		a.perSocket[s]++
	}
	a.next = (r.End() + PageSize - 1).PageBase()
	if a.next == r.End() {
		a.next += PageSize // guard page: keeps ranges non-adjacent
	}
	return r
}

// Free releases a range previously returned by Alloc.
func (a *Allocator) Free(r Range) {
	first := r.Start.PageIndex()
	for i := int64(0); i < r.Pages(); i++ {
		if s, ok := a.pages[first+uint64(i)]; ok {
			a.perSocket[s]--
			delete(a.pages, first+uint64(i))
		}
	}
}

// PageSocket returns the socket physically backing the page that contains
// addr, or -1 if the page is not allocated.
func (a *Allocator) PageSocket(addr Addr) int {
	if s, ok := a.pages[addr.PageIndex()]; ok {
		return int(s)
	}
	return -1
}

// QueryPages returns the backing socket of every page in the range, in
// order — the query half of move_pages(2).
func (a *Allocator) QueryPages(r Range) []int {
	out := make([]int, 0, r.Pages())
	first := r.Start.PageIndex()
	for i := int64(0); i < r.Pages(); i++ {
		s, ok := a.pages[first+uint64(i)]
		if !ok {
			out = append(out, -1)
		} else {
			out = append(out, int(s))
		}
	}
	return out
}

// MovePages migrates every allocated page of the range to the target socket
// and returns the number of pages that actually moved — the moving half of
// move_pages(2). Virtual addresses are unchanged.
func (a *Allocator) MovePages(r Range, to int) int64 {
	a.checkSocket(to)
	moved := int64(0)
	first := r.Start.PageIndex()
	for i := int64(0); i < r.Pages(); i++ {
		p := first + uint64(i)
		s, ok := a.pages[p]
		if !ok || int(s) == to {
			continue
		}
		a.perSocket[s]--
		a.perSocket[to]++
		a.pages[p] = uint8(to)
		moved++
	}
	a.moved += moved
	return moved
}

// InterleavePages re-places the range's pages round-robin across the given
// sockets (page i of the range goes to sockets[i%len]). Returns pages moved.
func (a *Allocator) InterleavePages(r Range, sockets []int) int64 {
	if len(sockets) == 0 {
		panic("memsim: interleave with no sockets")
	}
	moved := int64(0)
	first := r.Start.PageIndex()
	for i := int64(0); i < r.Pages(); i++ {
		p := first + uint64(i)
		to := sockets[i%int64Len(sockets)]
		a.checkSocket(to)
		s, ok := a.pages[p]
		if !ok || int(s) == to {
			continue
		}
		a.perSocket[s]--
		a.perSocket[to]++
		a.pages[p] = uint8(to)
		moved++
	}
	a.moved += moved
	return moved
}

// PagesOnSocket returns how many allocated pages live on a socket.
func (a *Allocator) PagesOnSocket(s int) int64 { return a.perSocket[s] }

// BytesOnSocket returns the allocated bytes resident on a socket.
func (a *Allocator) BytesOnSocket(s int) int64 { return a.perSocket[s] * PageSize }

// TotalPagesMoved returns the cumulative number of page migrations, a cost
// proxy for move_pages churn.
func (a *Allocator) TotalPagesMoved() int64 { return a.moved }

// SocketBytes splits a range into per-socket resident byte counts. Partial
// first/last pages are attributed proportionally to the bytes that actually
// fall within the range.
func (a *Allocator) SocketBytes(r Range) []int64 {
	out := make([]int64, a.sockets)
	if r.Bytes == 0 {
		return out
	}
	first := r.Start.PageIndex()
	for i := int64(0); i < r.Pages(); i++ {
		p := first + uint64(i)
		s, ok := a.pages[p]
		if !ok {
			continue
		}
		pageStart := Addr(p * PageSize)
		lo, hi := pageStart, pageStart+PageSize
		if r.Start > lo {
			lo = r.Start
		}
		if r.End() < hi {
			hi = r.End()
		}
		if hi > lo {
			out[s] += int64(hi - lo)
		}
	}
	return out
}

// MajoritySocket returns the socket backing most bytes of the range; ties
// break toward the lower socket id. Returns -1 for an unallocated range.
func (a *Allocator) MajoritySocket(r Range) int {
	bytes := a.SocketBytes(r)
	best, bestBytes := -1, int64(0)
	for s, b := range bytes {
		if b > bestBytes {
			best, bestBytes = s, b
		}
	}
	return best
}

// Runs returns the range's pages as maximal runs of consecutive pages on the
// same socket: a compact summary used by the PSM build algorithm.
func (a *Allocator) Runs(r Range) []Run {
	var runs []Run
	first := r.Start.PageIndex()
	for i := int64(0); i < r.Pages(); i++ {
		p := first + uint64(i)
		s, ok := a.pages[p]
		if !ok {
			continue
		}
		if n := len(runs); n > 0 && runs[n-1].Socket == int(s) &&
			runs[n-1].FirstPage+uint64(runs[n-1].NPages) == p {
			runs[n-1].NPages++
		} else {
			runs = append(runs, Run{FirstPage: p, NPages: 1, Socket: int(s)})
		}
	}
	return runs
}

// Run is a maximal sequence of consecutive pages resident on one socket.
type Run struct {
	FirstPage uint64
	NPages    uint32
	Socket    int
}

// SortedSockets returns socket ids ordered by descending resident pages,
// useful in tests and reports.
func (a *Allocator) SortedSockets() []int {
	ids := make([]int, a.sockets)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(x, y int) bool { return a.perSocket[ids[x]] > a.perSocket[ids[y]] })
	return ids
}

func (a *Allocator) checkSocket(s int) {
	if s < 0 || s >= a.sockets {
		panic(fmt.Sprintf("memsim: socket %d out of range (machine has %d)", s, a.sockets))
	}
}

func int64Len(s []int) int64 { return int64(len(s)) }
