package trace

import "numacs/internal/metrics"

// TenantCount is one tenant's cumulative completion/shed counters at a
// sampling instant; the sampler converts consecutive counts into per-window
// deltas.
type TenantCount struct {
	// Name identifies the tenant.
	Name string `json:"name"`
	// Completed and Shed are statement counts.
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
}

// Sample is one window of the time-series: the counter deltas accumulated
// over (Time-Window, Time], plus instantaneous scheduler queue depths and
// optional per-tenant deltas at the window's end.
type Sample struct {
	// Time is the window's end in virtual seconds; Window its length.
	Time   float64 `json:"time"`
	Window float64 `json:"window"`
	// Delta holds the counter growth over the window (per-socket MC bytes,
	// link traffic, completed statements, task counts, ...).
	Delta metrics.Snapshot `json:"delta"`
	// QueueDepths is the per-socket scheduler queue depth at the sampling
	// instant (nil when no queue-depth source is wired).
	QueueDepths []int `json:"queue_depths,omitempty"`
	// Tenants holds per-tenant completion/shed deltas over the window (nil
	// without a tenant source).
	Tenants []TenantCount `json:"tenants,omitempty"`
}

// MCGiBs returns the window's per-socket memory throughput in GiB/s.
func (s Sample) MCGiBs() []float64 { return s.Delta.MCGiBs(s.Window) }

// TotalMCGiBs returns the window's machine-wide memory throughput in GiB/s.
func (s Sample) TotalMCGiBs() float64 {
	if s.Window <= 0 {
		return 0
	}
	return s.Delta.TotalMCBytes() / s.Window / (1 << 30)
}

// Sampler is the windowed time-series recorder: registered as a simulation
// actor, it snapshots the engine counters every Interval of virtual time and
// stores the deltas. It only reads — sampling never perturbs the run. The
// final partial window never ticks inside sim.Run (the loop exits at the
// horizon), so callers finish with Flush.
type Sampler struct {
	// Interval is the sampling period in virtual seconds.
	Interval float64
	// QueueDepths optionally supplies per-socket scheduler queue depths at
	// each sampling instant (wired by the engine to sched.SocketQueueDepths).
	QueueDepths func() []int
	// TenantCounts optionally supplies cumulative per-tenant counters; the
	// sampler differences consecutive readings into per-window deltas. The
	// source must return tenants in a stable order.
	TenantCounts func() []TenantCount

	counters    *metrics.Counters
	last        float64
	prev        metrics.Snapshot
	prevTenants []TenantCount
	samples     []Sample
}

// NewSampler builds a sampler over the given counters. The caller registers
// it as a sim actor and optionally wires the QueueDepths / TenantCounts
// sources.
func NewSampler(interval float64, c *metrics.Counters) *Sampler {
	return &Sampler{Interval: interval, counters: c}
}

// Tick samples when a full interval has elapsed since the last sample. It
// implements sim.Actor.
func (s *Sampler) Tick(now float64) {
	if now-s.last >= s.Interval*(1-1e-9) {
		s.take(now)
	}
}

// Flush records the final partial window ending at now (no-op if nothing
// elapsed since the last sample). Call it once after the run's last
// sim.Run.
func (s *Sampler) Flush(now float64) {
	if now > s.last+s.Interval*1e-9 {
		s.take(now)
	}
}

// Samples returns the recorded windows, oldest first.
func (s *Sampler) Samples() []Sample { return s.samples }

// take closes the current window at now.
func (s *Sampler) take(now float64) {
	cur := s.counters.Snapshot()
	smp := Sample{Time: now, Window: now - s.last, Delta: cur.Sub(s.prev)}
	if s.QueueDepths != nil {
		smp.QueueDepths = s.QueueDepths()
	}
	if s.TenantCounts != nil {
		ts := s.TenantCounts()
		smp.Tenants = make([]TenantCount, len(ts))
		for i, t := range ts {
			d := t
			if i < len(s.prevTenants) && s.prevTenants[i].Name == t.Name {
				d.Completed -= s.prevTenants[i].Completed
				d.Shed -= s.prevTenants[i].Shed
			}
			smp.Tenants[i] = d
		}
		s.prevTenants = ts
	}
	s.samples = append(s.samples, smp)
	s.prev = cur
	s.last = now
}
