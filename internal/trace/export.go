package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Exporters: a JSON-lines dump (one self-describing record per line, easy to
// grep and post-process) and the Chrome trace-event format (a JSON array of
// events), which Perfetto and chrome://tracing open directly. Virtual
// seconds map to trace microseconds.

// tagged is the JSONL line envelope: a record type plus the record itself.
type tagged struct {
	Type string `json:"type"`
	Rec  any    `json:"rec"`
}

// WriteJSONL writes the recorder content as JSON lines: a leading meta line
// (schema version, run id, socket count, decision-ring drop counts), then one
// object per statement, decision, and sample, each tagged with a "type"
// field. ReadJSONL parses the format back and rejects dumps whose schema
// version does not match this build's.
func (d *Data) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	m := d.Meta
	if m.Schema == 0 {
		m.Schema = SchemaVersion
	}
	if err := enc.Encode(tagged{Type: "meta", Rec: m}); err != nil {
		return err
	}
	for _, s := range d.Statements {
		if err := enc.Encode(tagged{Type: "statement", Rec: s}); err != nil {
			return err
		}
	}
	for _, dec := range d.Decisions {
		if err := enc.Encode(tagged{Type: "decision", Rec: dec}); err != nil {
			return err
		}
	}
	for _, smp := range d.Samples {
		if err := enc.Encode(tagged{Type: "sample", Rec: smp}); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a WriteJSONL dump back into Data. The first line must be
// the meta line and its schema version must equal SchemaVersion — triage
// tooling uses the error to reject dumps written by an incompatible build
// instead of misreading them. Unknown record types are skipped, so a newer
// writer that only *adds* record kinds stays readable after a version bump.
func ReadJSONL(r io.Reader) (*Data, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	d := &Data{}
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var env struct {
			Type string          `json:"type"`
			Rec  json.RawMessage `json:"rec"`
		}
		if err := json.Unmarshal(line, &env); err != nil {
			return nil, fmt.Errorf("trace: bad JSONL line: %w", err)
		}
		if first {
			if env.Type != "meta" {
				return nil, fmt.Errorf("trace: dump does not start with a meta line (got %q)", env.Type)
			}
			if err := json.Unmarshal(env.Rec, &d.Meta); err != nil {
				return nil, fmt.Errorf("trace: bad meta line: %w", err)
			}
			if d.Meta.Schema != SchemaVersion {
				return nil, fmt.Errorf("trace: dump schema v%d, this build reads v%d", d.Meta.Schema, SchemaVersion)
			}
			first = false
			continue
		}
		switch env.Type {
		case "statement":
			var s Statement
			if err := json.Unmarshal(env.Rec, &s); err != nil {
				return nil, fmt.Errorf("trace: bad statement line: %w", err)
			}
			d.Statements = append(d.Statements, &s)
		case "decision":
			var dec Decision
			if err := json.Unmarshal(env.Rec, &dec); err != nil {
				return nil, fmt.Errorf("trace: bad decision line: %w", err)
			}
			d.Decisions = append(d.Decisions, dec)
		case "sample":
			var smp Sample
			if err := json.Unmarshal(env.Rec, &smp); err != nil {
				return nil, fmt.Errorf("trace: bad sample line: %w", err)
			}
			d.Samples = append(d.Samples, smp)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, fmt.Errorf("trace: empty dump (no meta line)")
	}
	return d, nil
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Synthetic process IDs grouping the three views in a trace viewer.
const (
	chromePidStatements = 1
	chromePidDecisions  = 2
	chromePidSeries     = 3
)

// sec converts virtual seconds to trace microseconds.
func sec(t float64) float64 { return t * 1e6 }

// ExportChrome writes the recorder content in Chrome trace-event format:
// statements become per-statement rows of complete ("X") spans — one
// whole-lifecycle span plus one span per operator phase — decisions become
// global instant ("i") events, and the time-series becomes counter ("C")
// tracks for memory throughput, completions, and queue depth. The output is
// a plain JSON array, loadable by Perfetto or chrome://tracing.
func ExportChrome(w io.Writer, d *Data) error {
	evs := []chromeEvent{
		meta(chromePidStatements, "statements"),
		meta(chromePidDecisions, "decisions"),
		meta(chromePidSeries, "time-series"),
	}
	for _, s := range d.Statements {
		evs = append(evs, statementEvents(s)...)
	}
	for _, dec := range d.Decisions {
		evs = append(evs, chromeEvent{
			Name: dec.Source + ":" + dec.Kind, Cat: "decision", Ph: "i",
			Ts: sec(dec.Time), Pid: chromePidDecisions, S: "g",
			Args: map[string]any{"item": dec.Item, "from": dec.From, "to": dec.To, "cause": dec.Cause},
		})
	}
	for _, smp := range d.Samples {
		mc := map[string]any{}
		for i, v := range smp.MCGiBs() {
			mc[fmt.Sprintf("socket%d", i)] = v
		}
		evs = append(evs,
			chromeEvent{Name: "MC GiB/s", Ph: "C", Ts: sec(smp.Time), Pid: chromePidSeries, Args: mc},
			chromeEvent{Name: "completed", Ph: "C", Ts: sec(smp.Time), Pid: chromePidSeries,
				Args: map[string]any{"done": smp.Delta.QueriesDone}},
		)
		if len(smp.QueueDepths) > 0 {
			qd := map[string]any{}
			for i, v := range smp.QueueDepths {
				qd[fmt.Sprintf("socket%d", i)] = v
			}
			evs = append(evs, chromeEvent{Name: "queue depth", Ph: "C", Ts: sec(smp.Time),
				Pid: chromePidSeries, Args: qd})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// meta emits a process_name metadata event so viewers label the row groups.
func meta(pid int, name string) chromeEvent {
	return chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}}
}

// statementEvents renders one statement as spans on its own thread row.
func statementEvents(s *Statement) []chromeEvent {
	end := s.Done
	if s.Shed {
		end = s.ShedAt
	}
	if end < 0 {
		// In flight at export time: close the span at its last known event.
		end = s.Admitted
		for _, p := range s.Phases {
			if p.End > end {
				end = p.End
			}
		}
	}
	evs := []chromeEvent{{
		Name: s.Item, Cat: "statement", Ph: "X",
		Ts: sec(s.Submitted), Dur: sec(end - s.Submitted),
		Pid: chromePidStatements, Tid: s.ID,
		Args: map[string]any{
			"tenant": s.Tenant, "class": s.Class, "shed": s.Shed,
			"queue_wait": s.QueueWait(), "sched_wait": s.SchedulerWait(),
			"join_wait": s.JoinWait, "attached": s.Attached,
			"stolen": s.Stolen, "tasks": s.Tasks(),
		},
	}}
	for _, p := range s.Phases {
		pend := p.End
		if pend < 0 {
			pend = end
		}
		evs = append(evs, chromeEvent{
			Name: p.Name, Cat: "phase", Ph: "X",
			Ts: sec(p.Start), Dur: sec(pend - p.Start),
			Pid: chromePidStatements, Tid: s.ID,
			Args: map[string]any{"tasks": p.Tasks, "first_task": p.FirstTask},
		})
	}
	return evs
}
