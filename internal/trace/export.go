package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Exporters: a JSON-lines dump (one self-describing record per line, easy to
// grep and post-process) and the Chrome trace-event format (a JSON array of
// events), which Perfetto and chrome://tracing open directly. Virtual
// seconds map to trace microseconds.

// WriteJSONL writes the recorder content as JSON lines: one object per
// statement, decision, and sample, each tagged with a "type" field.
func (d *Data) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	type tagged struct {
		Type string `json:"type"`
		Rec  any    `json:"rec"`
	}
	for _, s := range d.Statements {
		if err := enc.Encode(tagged{Type: "statement", Rec: s}); err != nil {
			return err
		}
	}
	for _, dec := range d.Decisions {
		if err := enc.Encode(tagged{Type: "decision", Rec: dec}); err != nil {
			return err
		}
	}
	for _, smp := range d.Samples {
		if err := enc.Encode(tagged{Type: "sample", Rec: smp}); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Synthetic process IDs grouping the three views in a trace viewer.
const (
	chromePidStatements = 1
	chromePidDecisions  = 2
	chromePidSeries     = 3
)

// sec converts virtual seconds to trace microseconds.
func sec(t float64) float64 { return t * 1e6 }

// ExportChrome writes the recorder content in Chrome trace-event format:
// statements become per-statement rows of complete ("X") spans — one
// whole-lifecycle span plus one span per operator phase — decisions become
// global instant ("i") events, and the time-series becomes counter ("C")
// tracks for memory throughput, completions, and queue depth. The output is
// a plain JSON array, loadable by Perfetto or chrome://tracing.
func ExportChrome(w io.Writer, d *Data) error {
	evs := []chromeEvent{
		meta(chromePidStatements, "statements"),
		meta(chromePidDecisions, "decisions"),
		meta(chromePidSeries, "time-series"),
	}
	for _, s := range d.Statements {
		evs = append(evs, statementEvents(s)...)
	}
	for _, dec := range d.Decisions {
		evs = append(evs, chromeEvent{
			Name: dec.Source + ":" + dec.Kind, Cat: "decision", Ph: "i",
			Ts: sec(dec.Time), Pid: chromePidDecisions, S: "g",
			Args: map[string]any{"item": dec.Item, "from": dec.From, "to": dec.To, "cause": dec.Cause},
		})
	}
	for _, smp := range d.Samples {
		mc := map[string]any{}
		for i, v := range smp.MCGiBs() {
			mc[fmt.Sprintf("socket%d", i)] = v
		}
		evs = append(evs,
			chromeEvent{Name: "MC GiB/s", Ph: "C", Ts: sec(smp.Time), Pid: chromePidSeries, Args: mc},
			chromeEvent{Name: "completed", Ph: "C", Ts: sec(smp.Time), Pid: chromePidSeries,
				Args: map[string]any{"done": smp.Delta.QueriesDone}},
		)
		if len(smp.QueueDepths) > 0 {
			qd := map[string]any{}
			for i, v := range smp.QueueDepths {
				qd[fmt.Sprintf("socket%d", i)] = v
			}
			evs = append(evs, chromeEvent{Name: "queue depth", Ph: "C", Ts: sec(smp.Time),
				Pid: chromePidSeries, Args: qd})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// meta emits a process_name metadata event so viewers label the row groups.
func meta(pid int, name string) chromeEvent {
	return chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}}
}

// statementEvents renders one statement as spans on its own thread row.
func statementEvents(s *Statement) []chromeEvent {
	end := s.Done
	if s.Shed {
		end = s.ShedAt
	}
	if end < 0 {
		// In flight at export time: close the span at its last known event.
		end = s.Admitted
		for _, p := range s.Phases {
			if p.End > end {
				end = p.End
			}
		}
	}
	evs := []chromeEvent{{
		Name: s.Item, Cat: "statement", Ph: "X",
		Ts: sec(s.Submitted), Dur: sec(end - s.Submitted),
		Pid: chromePidStatements, Tid: s.ID,
		Args: map[string]any{
			"tenant": s.Tenant, "class": s.Class, "shed": s.Shed,
			"queue_wait": s.QueueWait(), "sched_wait": s.SchedulerWait(),
			"join_wait": s.JoinWait, "attached": s.Attached,
			"stolen": s.Stolen, "tasks": s.Tasks(),
		},
	}}
	for _, p := range s.Phases {
		pend := p.End
		if pend < 0 {
			pend = end
		}
		evs = append(evs, chromeEvent{
			Name: p.Name, Cat: "phase", Ph: "X",
			Ts: sec(p.Start), Dur: sec(pend - p.Start),
			Pid: chromePidStatements, Tid: s.ID,
			Args: map[string]any{"tasks": p.Tasks, "first_task": p.FirstTask},
		})
	}
	return evs
}
