// Package trace is the engine's flight recorder: a simulated-clock
// observability layer that captures what the paper's analysis needs but the
// end-of-run aggregates in internal/metrics cannot answer — *when* things
// happened and *why* the control planes acted. It records three coordinated
// views of a run:
//
//   - Statement traces: every statement owns a span record with exact
//     sim timestamps for its lifecycle — admission enqueue/admit/shed,
//     shared-scan join-window wait and mid-flight attach, each operator
//     phase (scan, materialize, build, probe, aggregate) with the gap
//     between phase open and first task pickup (the scheduler queue wait),
//     plus per-socket task counts and stolen tasks.
//   - A decision event log: a bounded ring buffer of control-plane
//     decisions with their cause — adaptive-placer actions with the heat
//     numbers that triggered them, admission AIMD limit changes and
//     deadline sheds, cohort launches/wraps/sheds, chaos fault injections,
//     and delta merges.
//   - Windowed time-series: a simulation actor (Sampler) snapshots
//     metrics.Counters deltas every interval — per-socket memory
//     throughput, link traffic, completed statements, queue depths — the
//     shared replacement for the bespoke per-window counters the chaos
//     experiments used to hand-roll.
//
// The hooks that feed the recorder live in admit, sharedscan, exec, sched,
// adaptive, chaos, and core, and every one is a nil-checked optional field:
// an engine without tracing enabled takes one nil check per hook site and is
// bit-identical to the pre-trace engine (pinned by the harness golden test
// TestTraceDisabledBitIdentical). Tracing itself is passive — it records
// timestamps and counters but starts no flows and mutates no engine state —
// so even an enabled recorder cannot perturb a run.
package trace

// Config tunes the recorder. The zero value is usable: New fills every zero
// field with the documented default.
type Config struct {
	// DecisionCap bounds the decision ring buffer (default 4096). When the
	// ring wraps, the oldest decisions are dropped; DecisionLog.Dropped
	// reports how many.
	DecisionCap int
	// SampleInterval is the time-series sampling interval in virtual
	// seconds. Zero disables the sampler (statement traces and the decision
	// log still record).
	SampleInterval float64
}

// Tracer is the flight recorder for one engine run. core.Engine.EnableTracing
// builds one and threads its hooks through the engine layers.
type Tracer struct {
	// Decisions is the control-plane decision log. The admission controller,
	// cohort registry, adaptive placer, chaos injector, and merge path all
	// record into it.
	Decisions *DecisionLog
	// Sampler is the windowed time-series actor, nil when
	// Config.SampleInterval is zero. The engine registers it as a sim actor.
	Sampler *Sampler

	sockets    int
	statements []*Statement
}

// New builds a tracer for a machine with the given socket count. The caller
// wires the Sampler separately (it needs the engine's counters).
func New(cfg Config, sockets int) *Tracer {
	if cfg.DecisionCap <= 0 {
		cfg.DecisionCap = 4096
	}
	return &Tracer{
		Decisions: NewDecisionLog(cfg.DecisionCap),
		sockets:   sockets,
	}
}

// StartStatement opens a statement trace at the submission instant. The
// returned record is threaded through the admission, cohort, and pipeline
// hooks, which stamp its lifecycle as it progresses.
func (t *Tracer) StartStatement(tenant, class, item string, now float64) *Statement {
	s := &Statement{
		ID: len(t.statements), Tenant: tenant, Class: class, Item: item,
		Submitted: now, Admitted: now, Done: -1,
		SocketTasks: make([]int, t.sockets),
		open:        -1,
	}
	t.statements = append(t.statements, s)
	return s
}

// Statements returns every statement trace opened so far, in submission
// order.
func (t *Tracer) Statements() []*Statement { return t.statements }

// Data snapshots the recorder's content for export: statements, the decision
// log (oldest first), and the time-series samples when a sampler ran.
func (t *Tracer) Data() *Data {
	d := &Data{
		Meta: Meta{
			Schema:           SchemaVersion,
			Sockets:          t.sockets,
			DecisionsTotal:   t.Decisions.Total(),
			DecisionsDropped: t.Decisions.Dropped(),
		},
		Statements: t.statements,
		Decisions:  t.Decisions.Events(),
	}
	if t.Sampler != nil {
		d.Samples = t.Sampler.Samples()
	}
	return d
}

// SchemaVersion identifies the flight-recorder dump layout. WriteJSONL stamps
// it into the dump's leading meta line and ReadJSONL rejects dumps written
// under a different version, so triage tooling never silently misreads a
// stale artifact. Bump it whenever a record's fields change meaning.
const SchemaVersion = 2

// Meta describes a recorder dump: the schema version, the run that produced
// it, the machine's socket count (the length of per-socket slices), and how
// much of the decision ring survived. A nonzero DecisionsDropped means the
// suspect sets of any downstream analysis are incomplete.
type Meta struct {
	// Schema is the dump layout version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// RunID names the producing run (experiment id); empty when unset.
	RunID string `json:"run_id,omitempty"`
	// Sockets is the traced machine's socket count.
	Sockets int `json:"sockets"`
	// DecisionsTotal counts decisions ever recorded; DecisionsDropped the
	// ones the bounded ring discarded (oldest first).
	DecisionsTotal   uint64 `json:"decisions_total"`
	DecisionsDropped uint64 `json:"decisions_dropped"`
}

// Data is the exported flight-recorder content of one run — what the JSONL
// and Chrome exporters serialize and what the harness attaches to reports.
type Data struct {
	// Meta describes the dump (schema version, run id, socket count,
	// decision-ring drop counts).
	Meta Meta `json:"meta"`
	// Statements holds the per-statement span trees.
	Statements []*Statement `json:"statements"`
	// Decisions holds the surviving decision log, oldest first.
	Decisions []Decision `json:"decisions"`
	// Samples holds the windowed time-series (empty without a sampler).
	Samples []Sample `json:"samples,omitempty"`
}

// Statement is the span record of one statement's lifecycle, timestamps in
// virtual seconds. Admitted equals Submitted when no admission controller
// queued the statement; Done is -1 while in flight and for shed statements.
type Statement struct {
	// ID is the statement's index in submission order.
	ID int `json:"id"`
	// Tenant, Class and Item identify the statement: the issuing tenant (""
	// without admission), the admission class, and the scanned data item
	// (table.column) or pipeline label.
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
	Item   string `json:"item"`

	// Submitted is the submission instant; Admitted the instant admission
	// dispatched it (equal to Submitted without queuing); Done the
	// completion instant (-1 until complete).
	Submitted float64 `json:"submitted"`
	Admitted  float64 `json:"admitted"`
	Done      float64 `json:"done"`

	// Shed reports the statement was dropped; ShedAt and ShedBy record when
	// and by which layer ("admission" queue deadline or "join-window").
	Shed   bool    `json:"shed,omitempty"`
	ShedAt float64 `json:"shed_at,omitempty"`
	ShedBy string  `json:"shed_by,omitempty"`

	// Attached reports a mid-flight attach to a running shared pass;
	// JoinWait is the time spent waiting on the cohort lifecycle between
	// registry submission and pass launch.
	Attached bool    `json:"attached,omitempty"`
	JoinWait float64 `json:"join_wait,omitempty"`

	// Phases are the statement's operator phases in execution order.
	Phases []Phase `json:"phases,omitempty"`
	// SocketTasks counts the statement's executed tasks per socket; Stolen
	// counts the ones picked up by a cross-socket steal.
	SocketTasks []int `json:"socket_tasks,omitempty"`
	Stolen      int   `json:"stolen,omitempty"`

	cohortQueued float64
	open         int
}

// Phase is one operator phase of a statement: the span between the phase
// barrier opening and closing, with the first-task pickup instant that
// separates scheduler queue wait from execution.
type Phase struct {
	// Name is the operator kind ("scan", "materialize", "aggregate", ...).
	Name string `json:"name"`
	// Start and End bound the phase; FirstTask is when a worker picked up
	// the phase's first task (-1 when the phase ran no tasks). FirstTask -
	// Start is the phase's scheduler queue wait.
	Start     float64 `json:"start"`
	End       float64 `json:"end"`
	FirstTask float64 `json:"first_task"`
	// Tasks counts the phase's tasks.
	Tasks int `json:"tasks"`
}

// MarkAdmitted stamps the admission instant (the admission controller's
// dispatch hook).
func (s *Statement) MarkAdmitted(now float64) { s.Admitted = now }

// MarkShed stamps a drop: by names the shedding layer.
func (s *Statement) MarkShed(now float64, by string) {
	s.Shed = true
	s.ShedAt = now
	s.ShedBy = by
}

// MarkDone stamps completion (the pipeline's last barrier).
func (s *Statement) MarkDone(now float64) { s.Done = now }

// MarkCohortQueued stamps entry into the shared-scan registry's lifecycle.
func (s *Statement) MarkCohortQueued(now float64) { s.cohortQueued = now }

// MarkCohortLaunched stamps the cohort pass launch, closing the join wait.
func (s *Statement) MarkCohortLaunched(now float64) { s.JoinWait = now - s.cohortQueued }

// MarkAttached flags a mid-flight attach to a running pass.
func (s *Statement) MarkAttached() { s.Attached = true }

// PhaseOpen starts a phase span (the pipeline's phase barrier).
func (s *Statement) PhaseOpen(name string, now float64) {
	s.Phases = append(s.Phases, Phase{Name: name, Start: now, End: -1, FirstTask: -1})
	s.open = len(s.Phases) - 1
}

// PhaseClose ends the open phase span.
func (s *Statement) PhaseClose(now float64) {
	if s.open >= 0 {
		s.Phases[s.open].End = now
		s.open = -1
	}
}

// TaskStart records one task pickup: the executing socket, whether the task
// was stolen across sockets, and — for the open phase's first task — the
// pickup instant that ends the phase's queue wait.
func (s *Statement) TaskStart(socket int, stolen bool, now float64) {
	if socket >= 0 && socket < len(s.SocketTasks) {
		s.SocketTasks[socket]++
	}
	if stolen {
		s.Stolen++
	}
	if s.open >= 0 {
		p := &s.Phases[s.open]
		p.Tasks++
		if p.FirstTask < 0 {
			p.FirstTask = now
		}
	}
}

// QueueWait returns the admission-queue wait (zero without admission).
func (s *Statement) QueueWait() float64 { return s.Admitted - s.Submitted }

// SchedulerWait sums, over phases that ran tasks, the gap between the phase
// opening and its first task pickup — the time the statement's work sat in
// the scheduler queues.
func (s *Statement) SchedulerWait() float64 {
	w := 0.0
	for _, p := range s.Phases {
		if p.FirstTask >= 0 {
			w += p.FirstTask - p.Start
		}
	}
	return w
}

// ExecSeconds sums the first-task-to-close spans of the phases — the time
// the statement's work was actually executing (or draining) on workers.
func (s *Statement) ExecSeconds() float64 {
	w := 0.0
	for _, p := range s.Phases {
		if p.FirstTask >= 0 && p.End >= 0 {
			w += p.End - p.FirstTask
		}
	}
	return w
}

// Tasks returns the statement's total executed-task count.
func (s *Statement) Tasks() int {
	n := 0
	for _, t := range s.SocketTasks {
		n += t
	}
	return n
}

// Decision is one control-plane decision with its cause: who decided
// (Source), what (Kind), about which item, and the numbers that triggered it
// (Cause, human-readable).
type Decision struct {
	// Time is the decision instant in virtual seconds.
	Time float64 `json:"time"`
	// Source names the deciding layer: "placer", "admission", "cohort",
	// "chaos", or "merge".
	Source string `json:"source"`
	// Kind is the decision within the source ("replicate", "aimd-throttle",
	// "cohort-launch", "socket-offline", ...).
	Kind string `json:"kind"`
	// Item names the decision's subject: a column, tenant, or cohort key.
	Item string `json:"item,omitempty"`
	// From and To are socket operands where they apply (-1 otherwise).
	From int `json:"from"`
	To   int `json:"to"`
	// Cause explains the decision with the numbers that triggered it.
	Cause string `json:"cause,omitempty"`
}

// DecisionLog is a bounded ring buffer of decisions: when full, recording a
// new decision drops the oldest. The bound keeps long chatty runs (an AIMD
// controller deciding every millisecond) from growing without limit.
type DecisionLog struct {
	capacity int
	buf      []Decision
	start    int
	total    uint64
}

// NewDecisionLog builds a ring holding at most capacity decisions.
func NewDecisionLog(capacity int) *DecisionLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &DecisionLog{capacity: capacity}
}

// Record appends a decision, dropping the oldest when the ring is full.
func (l *DecisionLog) Record(d Decision) {
	if len(l.buf) < l.capacity {
		l.buf = append(l.buf, d)
	} else {
		l.buf[l.start] = d
		l.start = (l.start + 1) % l.capacity
	}
	l.total++
}

// Events returns the surviving decisions, oldest first.
func (l *DecisionLog) Events() []Decision {
	out := make([]Decision, 0, len(l.buf))
	out = append(out, l.buf[l.start:]...)
	out = append(out, l.buf[:l.start]...)
	return out
}

// Total returns the number of decisions ever recorded, dropped ones
// included.
func (l *DecisionLog) Total() uint64 { return l.total }

// Dropped returns how many decisions the ring has discarded.
func (l *DecisionLog) Dropped() uint64 { return l.total - uint64(len(l.buf)) }
