package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"numacs/internal/metrics"
)

// chromeDecode parses an ExportChrome output back into generic events,
// failing the test unless it is a valid JSON array.
func chromeDecode(t *testing.T, d *Data) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := ExportChrome(&buf, d); err != nil {
		t.Fatalf("ExportChrome: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("Chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	return evs
}

// TestExportChromeEmpty: an empty recorder still produces a valid JSON array
// (the three process-name metadata events), so the artifact always loads.
func TestExportChromeEmpty(t *testing.T) {
	evs := chromeDecode(t, &Data{})
	if len(evs) != 3 {
		t.Fatalf("empty export has %d events, want the 3 metadata events", len(evs))
	}
	for _, ev := range evs {
		if ev["ph"] != "M" || ev["name"] != "process_name" {
			t.Fatalf("unexpected event in empty export: %v", ev)
		}
	}
}

// TestExportChromeSingleSpan: one completed statement round-trips into a
// whole-lifecycle "X" span plus one span per phase, with microsecond
// timestamps.
func TestExportChromeSingleSpan(t *testing.T) {
	tr := New(Config{}, 2)
	s := tr.StartStatement("a", "OLAP", "t.c0", 0.001)
	s.PhaseOpen("scan", 0.001)
	s.TaskStart(0, false, 0.002)
	s.PhaseClose(0.003)
	s.MarkDone(0.003)

	evs := chromeDecode(t, tr.Data())
	var spans []map[string]any
	for _, ev := range evs {
		if ev["ph"] == "X" {
			spans = append(spans, ev)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("got %d X spans, want statement + phase: %v", len(spans), spans)
	}
	outer := spans[0]
	if outer["name"] != "t.c0" || outer["ts"].(float64) != 1000 || outer["dur"].(float64) != 2000 {
		t.Fatalf("statement span: %v", outer)
	}
	phase := spans[1]
	if phase["name"] != "scan" || phase["dur"].(float64) != 2000 {
		t.Fatalf("phase span: %v", phase)
	}
}

// TestExportChromeFull: statements (including shed and in-flight), decisions,
// and samples all encode; every event carries a known ph and the counter
// tracks carry per-socket args.
func TestExportChromeFull(t *testing.T) {
	tr := New(Config{}, 2)
	done := tr.StartStatement("a", "OLAP", "t.c0", 0)
	done.PhaseOpen("scan", 0.001)
	done.TaskStart(1, true, 0.002)
	done.PhaseClose(0.004)
	done.MarkDone(0.004)
	shed := tr.StartStatement("b", "interactive", "write", 0.001)
	shed.MarkShed(0.002, "admission")
	inflight := tr.StartStatement("c", "OLAP", "t.c1", 0.002)
	inflight.PhaseOpen("scan", 0.003) // never closed: still running at export

	tr.Decisions.Record(Decision{Time: 0.002, Source: "chaos", Kind: "socket-offline",
		Item: "socket 1", From: 1, To: 1, Cause: "scheduled"})

	c := metrics.New(2)
	tr.Sampler = NewSampler(0.01, c)
	tr.Sampler.QueueDepths = func() []int { return []int{2, 0} }
	c.AddMemoryTraffic(0, 0, 1<<30, 0, 0)
	tr.Sampler.Tick(0.01)

	evs := chromeDecode(t, tr.Data())
	count := map[string]int{}
	for _, ev := range evs {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X", "i", "C", "M":
			count[ph]++
		default:
			t.Fatalf("unknown ph %q in %v", ph, ev)
		}
	}
	// 3 statement spans + 2 phase spans; 1 instant; MC + completed + queue
	// depth counters; 3 metadata.
	if count["X"] != 5 || count["i"] != 1 || count["C"] != 3 || count["M"] != 3 {
		t.Fatalf("event mix %v, want X:5 i:1 C:3 M:3", count)
	}
	for _, ev := range evs {
		if ev["ph"] == "C" && ev["name"] == "MC GiB/s" {
			args := ev["args"].(map[string]any)
			if args["socket0"].(float64) != 100 {
				t.Fatalf("MC counter args: %v (1 GiB over 10ms = 100 GiB/s)", args)
			}
		}
	}
}

// TestWriteJSONL: every line is a self-describing JSON object, the dump
// leads with the schema-version meta line, and ReadJSONL round-trips the
// content back (records, timestamps, and the derived wait decomposition).
func TestWriteJSONL(t *testing.T) {
	tr := New(Config{}, 2)
	s := tr.StartStatement("a", "OLAP", "t.c0", 0)
	s.PhaseOpen("scan", 0.002)
	s.TaskStart(1, true, 0.004)
	s.PhaseClose(0.008)
	s.MarkDone(0.01)
	tr.Decisions.Record(Decision{Source: "placer", Kind: "replicate", Item: "c0", From: 0, To: 1})
	tr.Sampler = NewSampler(0.01, metrics.New(2))
	tr.Sampler.Tick(0.01)

	data := tr.Data()
	data.Meta.RunID = "round-trip"
	var buf bytes.Buffer
	if err := data.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want meta + 3 records:\n%s", len(lines), buf.String())
	}
	types := map[string]int{}
	for i, ln := range lines {
		var rec struct {
			Type string          `json:"type"`
			Rec  json.RawMessage `json:"rec"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if len(rec.Rec) == 0 {
			t.Fatalf("line %q has no rec payload", ln)
		}
		if i == 0 && rec.Type != "meta" {
			t.Fatalf("first line is %q, want the meta line", rec.Type)
		}
		types[rec.Type]++
	}
	if types["meta"] != 1 || types["statement"] != 1 || types["decision"] != 1 || types["sample"] != 1 {
		t.Fatalf("type mix %v", types)
	}

	got, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if got.Meta != data.Meta {
		t.Fatalf("meta round-trip: got %+v want %+v", got.Meta, data.Meta)
	}
	if got.Meta.Schema != SchemaVersion || got.Meta.Sockets != 2 || got.Meta.RunID != "round-trip" {
		t.Fatalf("meta content: %+v", got.Meta)
	}
	if len(got.Statements) != 1 || len(got.Decisions) != 1 || len(got.Samples) != 1 {
		t.Fatalf("record counts: %d statements, %d decisions, %d samples",
			len(got.Statements), len(got.Decisions), len(got.Samples))
	}
	rs := got.Statements[0]
	if rs.Done != 0.01 || rs.Tenant != "a" || rs.Tasks() != 1 || rs.Stolen != 1 {
		t.Fatalf("statement round-trip: %+v", rs)
	}
	// The derived decomposition survives because the phases do.
	if rs.SchedulerWait() != s.SchedulerWait() || rs.ExecSeconds() != s.ExecSeconds() {
		t.Fatalf("wait decomposition drifted: sched %v vs %v, exec %v vs %v",
			rs.SchedulerWait(), s.SchedulerWait(), rs.ExecSeconds(), s.ExecSeconds())
	}
	if got.Decisions[0] != tr.Decisions.Events()[0] {
		t.Fatalf("decision round-trip: %+v", got.Decisions[0])
	}
}

// TestReadJSONLRejectsMismatch: dumps from another schema version, dumps not
// starting with a meta line, and empty dumps are all rejected with an error —
// triage tooling must never silently analyze a mismatched artifact.
func TestReadJSONLRejectsMismatch(t *testing.T) {
	cases := map[string]string{
		"wrong schema":   `{"type":"meta","rec":{"schema":1,"sockets":2}}`,
		"no meta first":  `{"type":"statement","rec":{"id":0}}`,
		"empty dump":     ``,
		"malformed line": `{"type":`,
	}
	for name, dump := range cases {
		if _, err := ReadJSONL(strings.NewReader(dump)); err == nil {
			t.Errorf("%s: ReadJSONL accepted %q", name, dump)
		}
	}
}
