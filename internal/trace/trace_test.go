package trace

import (
	"fmt"
	"testing"

	"numacs/internal/metrics"
)

// TestStatementLifecycle walks one statement through the admission, cohort,
// and phase hooks and checks the derived wait/exec decomposition.
func TestStatementLifecycle(t *testing.T) {
	tr := New(Config{}, 4)
	s := tr.StartStatement("tenantA", "OLAP", "t.c0", 1.0)
	if s.ID != 0 || s.Submitted != 1.0 || s.Admitted != 1.0 || s.Done != -1 {
		t.Fatalf("fresh statement: %+v", s)
	}
	s.MarkAdmitted(1.5)
	if got := s.QueueWait(); got != 0.5 {
		t.Fatalf("QueueWait = %v, want 0.5", got)
	}

	s.PhaseOpen("scan", 1.5)
	s.TaskStart(0, false, 1.7) // first task: 0.2 of scheduler wait
	s.TaskStart(2, true, 1.8)
	s.PhaseClose(2.0)
	s.PhaseOpen("materialize", 2.0)
	s.TaskStart(1, false, 2.1)
	s.PhaseClose(2.4)
	s.MarkDone(2.4)

	if got := s.SchedulerWait(); got < 0.3-1e-12 || got > 0.3+1e-12 {
		t.Fatalf("SchedulerWait = %v, want 0.3 (0.2 scan + 0.1 materialize)", got)
	}
	if got := s.ExecSeconds(); got < 0.6-1e-12 || got > 0.6+1e-12 {
		t.Fatalf("ExecSeconds = %v, want 0.6 (0.3 scan + 0.3 materialize)", got)
	}
	if got := s.Tasks(); got != 3 {
		t.Fatalf("Tasks = %d, want 3", got)
	}
	if s.Stolen != 1 || s.SocketTasks[0] != 1 || s.SocketTasks[1] != 1 || s.SocketTasks[2] != 1 {
		t.Fatalf("socket attribution wrong: stolen %d, per-socket %v", s.Stolen, s.SocketTasks)
	}
	if len(s.Phases) != 2 || s.Phases[0].Tasks != 2 || s.Phases[1].Tasks != 1 {
		t.Fatalf("phases: %+v", s.Phases)
	}

	// A second statement gets the next ID and both appear in order.
	s2 := tr.StartStatement("", "", "pipeline", 3.0)
	if s2.ID != 1 || len(tr.Statements()) != 2 {
		t.Fatalf("statement ordering broken: id %d, n %d", s2.ID, len(tr.Statements()))
	}
}

// TestStatementShedAndCohort covers the drop and join-window paths.
func TestStatementShedAndCohort(t *testing.T) {
	tr := New(Config{}, 2)
	s := tr.StartStatement("x", "OLAP", "t.c1", 0.0)
	s.MarkCohortQueued(0.1)
	s.MarkCohortLaunched(0.35)
	if got := s.JoinWait; got < 0.25-1e-12 || got > 0.25+1e-12 {
		t.Fatalf("JoinWait = %v, want 0.25", got)
	}
	s.MarkAttached()
	if !s.Attached {
		t.Fatal("MarkAttached did not stick")
	}

	d := tr.StartStatement("x", "OLAP", "t.c1", 0.0)
	d.MarkShed(0.2, "join-window")
	if !d.Shed || d.ShedAt != 0.2 || d.ShedBy != "join-window" || d.Done != -1 {
		t.Fatalf("shed statement: %+v", d)
	}

	// TaskStart on an out-of-range socket must not panic or misattribute.
	s.TaskStart(-1, false, 0.4)
	s.TaskStart(99, false, 0.4)
	if s.SocketTasks[0] != 0 && s.SocketTasks[1] != 0 {
		t.Fatalf("out-of-range sockets attributed: %v", s.SocketTasks)
	}
}

// TestDecisionLogRing pins the ring-buffer semantics: capacity bounds the
// buffer, overflow drops oldest-first, and Events always returns
// chronological order.
func TestDecisionLogRing(t *testing.T) {
	l := NewDecisionLog(4)
	for i := 0; i < 3; i++ {
		l.Record(Decision{Time: float64(i), Kind: fmt.Sprintf("d%d", i)})
	}
	ev := l.Events()
	if len(ev) != 3 || ev[0].Kind != "d0" || ev[2].Kind != "d2" {
		t.Fatalf("pre-wrap events: %+v", ev)
	}
	if l.Total() != 3 || l.Dropped() != 0 {
		t.Fatalf("pre-wrap totals: total %d dropped %d", l.Total(), l.Dropped())
	}

	for i := 3; i < 10; i++ {
		l.Record(Decision{Time: float64(i), Kind: fmt.Sprintf("d%d", i)})
	}
	ev = l.Events()
	if len(ev) != 4 {
		t.Fatalf("ring grew past capacity: %d", len(ev))
	}
	for i, d := range ev {
		if want := fmt.Sprintf("d%d", 6+i); d.Kind != want {
			t.Fatalf("event %d = %q, want %q (oldest-first after wrap)", i, d.Kind, want)
		}
	}
	if l.Total() != 10 || l.Dropped() != 6 {
		t.Fatalf("post-wrap totals: total %d dropped %d, want 10/6", l.Total(), l.Dropped())
	}
}

// TestDecisionLogDefaultCap: non-positive capacities fall back to the default
// rather than building an unusable ring.
func TestDecisionLogDefaultCap(t *testing.T) {
	l := NewDecisionLog(0)
	for i := 0; i < 100; i++ {
		l.Record(Decision{})
	}
	if len(l.Events()) != 100 || l.Dropped() != 0 {
		t.Fatalf("default-cap ring dropped early: %d events, %d dropped", len(l.Events()), l.Dropped())
	}
}

// TestSamplerWindows drives the sampler like the simulator would (a tick per
// step, samples on interval boundaries) and checks the deltas, the final
// Flush, and the optional queue-depth / tenant sources.
func TestSamplerWindows(t *testing.T) {
	c := metrics.New(2)
	s := NewSampler(0.01, c)
	depth := []int{3, 1}
	s.QueueDepths = func() []int { return append([]int(nil), depth...) }
	tenants := []TenantCount{{Name: "a", Completed: 0}, {Name: "b", Completed: 0}}
	s.TenantCounts = func() []TenantCount { return append([]TenantCount(nil), tenants...) }

	// Window 1: 100 bytes on socket 0, one completion for tenant a.
	c.AddMemoryTraffic(0, 0, 100, 0, 0)
	c.AddLatency(0.001)
	tenants[0].Completed = 1
	s.Tick(0.01)
	// Window 2: 50 bytes on socket 1, two completions for tenant b.
	c.AddMemoryTraffic(1, 1, 50, 0, 0)
	c.AddLatency(0.001)
	c.AddLatency(0.001)
	tenants[1].Completed = 2
	s.Tick(0.015) // mid-window tick: must not sample
	s.Tick(0.02)
	// Partial window 3: closed by Flush, not a tick.
	c.AddMemoryTraffic(0, 0, 10, 0, 0)
	s.Flush(0.025)
	s.Flush(0.025) // second flush at the same instant: no-op

	smp := s.Samples()
	if len(smp) != 3 {
		t.Fatalf("got %d samples, want 3: %+v", len(smp), smp)
	}
	if smp[0].Delta.MCBytes[0] != 100 || smp[0].Delta.QueriesDone != 1 {
		t.Fatalf("window 1 delta: %+v", smp[0].Delta)
	}
	if smp[1].Delta.MCBytes[0] != 0 || smp[1].Delta.MCBytes[1] != 50 || smp[1].Delta.QueriesDone != 2 {
		t.Fatalf("window 2 delta: %+v", smp[1].Delta)
	}
	if smp[2].Delta.MCBytes[0] != 10 || smp[2].Window < 0.005-1e-12 || smp[2].Window > 0.005+1e-12 {
		t.Fatalf("flushed window: %+v", smp[2])
	}
	if smp[0].QueueDepths[0] != 3 || smp[0].QueueDepths[1] != 1 {
		t.Fatalf("queue depths: %v", smp[0].QueueDepths)
	}
	if smp[0].Tenants[0].Completed != 1 || smp[0].Tenants[1].Completed != 0 {
		t.Fatalf("window 1 tenants: %+v", smp[0].Tenants)
	}
	if smp[1].Tenants[0].Completed != 0 || smp[1].Tenants[1].Completed != 2 {
		t.Fatalf("window 2 tenant deltas not differenced: %+v", smp[1].Tenants)
	}

	// GiB/s accessors scale by the window.
	if got := smp[0].TotalMCGiBs(); got != 100/0.01/(1<<30) {
		t.Fatalf("TotalMCGiBs = %v", got)
	}
	if got := smp[1].MCGiBs(); got[1] != 50/0.01/(1<<30) {
		t.Fatalf("MCGiBs = %v", got)
	}
}

// TestTracerData: Data snapshots statements, decisions, and samples together.
func TestTracerData(t *testing.T) {
	tr := New(Config{DecisionCap: 8}, 2)
	tr.StartStatement("a", "OLAP", "t.c0", 0)
	tr.Decisions.Record(Decision{Source: "placer", Kind: "replicate"})
	d := tr.Data()
	if len(d.Statements) != 1 || len(d.Decisions) != 1 || len(d.Samples) != 0 {
		t.Fatalf("data: %d statements, %d decisions, %d samples", len(d.Statements), len(d.Decisions), len(d.Samples))
	}

	tr.Sampler = NewSampler(0.01, metrics.New(2))
	tr.Sampler.Tick(0.01)
	if d = tr.Data(); len(d.Samples) != 1 {
		t.Fatalf("sampler data not attached: %d samples", len(d.Samples))
	}
}
