package hw

import (
	"testing"

	"numacs/internal/sim"
	"numacs/internal/topology"
)

// Thermal throttling scales one socket's MC capacity and leaves the others
// at nominal; factor 1 restores it.
func TestSetMCScale(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	h.SetMCScale(1, 0.3)
	if got := e.ResourceCapacity(h.MC[1]); got != 0.3*m.MCBandwidth {
		t.Fatalf("throttled MC capacity = %v, want %v", got, 0.3*m.MCBandwidth)
	}
	for _, s := range []int{0, 2, 3} {
		if got := e.ResourceCapacity(h.MC[s]); got != m.MCBandwidth {
			t.Fatalf("socket %d MC capacity = %v, want nominal", s, got)
		}
	}
	h.SetMCScale(1, 1)
	if got := e.ResourceCapacity(h.MC[1]); got != m.MCBandwidth {
		t.Fatalf("restored MC capacity = %v, want nominal", got)
	}
}

// Link degradation scales every directed link touching the socket — both
// outgoing and incoming — and nothing else.
func TestSetSocketLinkScale(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	h.SetSocketLinkScale(2, 0.25)
	touched := 0
	for i, l := range m.Links {
		got := e.ResourceCapacity(h.Link[i])
		if l.From == 2 || l.To == 2 {
			touched++
			if got != 0.25*l.Bandwidth {
				t.Fatalf("link %d->%d capacity = %v, want quarter", l.From, l.To, got)
			}
		} else if got != l.Bandwidth {
			t.Fatalf("link %d->%d capacity = %v, want nominal", l.From, l.To, got)
		}
	}
	if touched == 0 {
		t.Fatal("no links touch socket 2?")
	}
	h.SetSocketLinkScale(2, 1)
	for i, l := range m.Links {
		if got := e.ResourceCapacity(h.Link[i]); got != l.Bandwidth {
			t.Fatalf("link %d->%d capacity = %v after restore", l.From, l.To, got)
		}
	}
}
