package hw

import (
	"math"
	"testing"

	"numacs/internal/sim"
	"numacs/internal/topology"
)

func TestResourceRegistration(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	if len(h.MC) != 4 {
		t.Fatalf("MCs = %d", len(h.MC))
	}
	if len(h.Link) != len(m.Links) {
		t.Fatalf("links = %d, want %d", len(h.Link), len(m.Links))
	}
	if len(h.Core) != 4 || len(h.Core[0]) != 15 {
		t.Fatalf("cores = %dx%d", len(h.Core), len(h.Core[0]))
	}
	if got := e.ResourceCapacity(h.MC[0]); got != m.MCBandwidth {
		t.Fatalf("MC capacity = %v", got)
	}
	// Core capacity includes the hyperthreading efficiency.
	if got := e.ResourceCapacity(h.Core[0][0]); math.Abs(got-m.FreqHz*m.HTEfficiency) > 1 {
		t.Fatalf("core capacity = %v", got)
	}
}

func TestStreamDemandsLocal(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	d, lt := h.StreamDemands(0, 0, h.Core[0][0], 0.5)
	// Local: MC + core only, no links, no link traffic.
	if len(d) != 2 {
		t.Fatalf("local demands = %+v", d)
	}
	if d[0].Resource != h.MC[0] || d[0].Weight != 1.0 {
		t.Fatalf("local MC demand = %+v", d[0])
	}
	if lt.Data != 0 || lt.Total != 0 {
		t.Fatalf("local stream has link traffic: %+v", lt)
	}
}

func TestStreamDemandsRemote(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	d, lt := h.StreamDemands(0, 2, h.Core[0][0], 0)
	// Remote: penalized MC + one link.
	foundMC, foundLink := false, false
	for _, dem := range d {
		if dem.Resource == h.MC[2] {
			foundMC = true
			if dem.Weight != RemoteMCPenalty {
				t.Fatalf("remote MC weight = %v", dem.Weight)
			}
		}
		for _, li := range m.Route(0, 2) {
			if dem.Resource == h.Link[li] {
				foundLink = true
				if math.Abs(dem.Weight-m.LinkDataFactor) > 1e-12 {
					t.Fatalf("link weight = %v", dem.Weight)
				}
			}
		}
	}
	if !foundMC || !foundLink {
		t.Fatalf("remote demands incomplete: %+v", d)
	}
	if lt.Data != 1 || math.Abs(lt.Total-m.LinkDataFactor) > 1e-12 {
		t.Fatalf("link traffic = %+v", lt)
	}
}

func TestBroadcastSnoopAddsLinkDemandsToLocalStreams(t *testing.T) {
	m := topology.EightSocketWestmere()
	e := sim.New(1e-4)
	h := New(e, m)
	d, lt := h.StreamDemands(0, 0, h.Core[0][0], 0)
	links := 0
	for _, dem := range d {
		for _, id := range h.Link {
			if dem.Resource == id {
				links++
			}
		}
	}
	if links == 0 {
		t.Fatal("broadcast machine: local stream should snoop on links")
	}
	if lt.Total <= 0 {
		t.Fatal("broadcast snoop traffic not accounted")
	}
	if lt.Data != 0 {
		t.Fatal("local stream should carry no link data payload")
	}
}

func TestDirectoryMachineHasNoSnoopOnLocal(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	d, _ := h.StreamDemands(1, 1, sim.Invalid, 0)
	if len(d) != 1 {
		t.Fatalf("directory local stream demands = %+v", d)
	}
}

func TestRandomDemandsMissRate(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	w := make([]float64, 4)
	w[0] = 1
	// Full miss: heavy MC demand, low cap.
	_, capMiss, _ := h.RandomDemands(0, w, sim.Invalid, 0, 0, 1.0)
	// Mostly hits: much higher cap, lighter MC demand.
	dHit, capHit, _ := h.RandomDemands(0, w, sim.Invalid, 0, 0, 0.1)
	if capHit <= capMiss {
		t.Fatalf("cache hits should raise the access rate: %v vs %v", capHit, capMiss)
	}
	var mcw float64
	for _, dem := range dHit {
		if dem.Resource == h.MC[0] {
			mcw = dem.Weight
		}
	}
	if math.Abs(mcw-0.1*topology.CacheLine) > 1e-9 {
		t.Fatalf("MC weight at 10%% miss = %v", mcw)
	}
	// Full-miss local cap equals RandomMLP/latency.
	want := m.RandomMLP / m.LocalLatency
	if math.Abs(capMiss-want)/want > 1e-9 {
		t.Fatalf("full-miss cap = %v, want %v", capMiss, want)
	}
}

func TestRandomDemandsInterleavedSpread(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	w := []float64{0.25, 0.25, 0.25, 0.25}
	d, rateCap, lt := h.RandomDemands(0, w, sim.Invalid, 0, 0, 1.0)
	mcs := 0
	for _, dem := range d {
		for _, id := range h.MC {
			if dem.Resource == id {
				mcs++
			}
		}
	}
	if mcs != 4 {
		t.Fatalf("interleaved access should hit all 4 MCs, got %d", mcs)
	}
	// Cap uses the average latency: worse than local, better than remote.
	local := m.RandomMLP / m.LocalLatency
	remote := m.RandomMLP / m.Latency(0, 1)
	if rateCap >= local || rateCap <= remote {
		t.Fatalf("interleaved cap %v not between remote %v and local %v", rateCap, remote, local)
	}
	if lt.Data <= 0 {
		t.Fatal("interleaved access should cross links")
	}
}

func TestRandomDemandsExtraLocalBytes(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	w := make([]float64, 4)
	w[2] = 1
	d, _, _ := h.RandomDemands(1, w, sim.Invalid, 0, 12, 1.0)
	var localW float64
	for _, dem := range d {
		if dem.Resource == h.MC[1] {
			localW = dem.Weight
		}
	}
	if localW != 12 {
		t.Fatalf("output-write weight on local MC = %v, want 12", localW)
	}
}

func TestComputeDemands(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-4)
	h := New(e, m)
	d, rateCap := h.ComputeDemands(h.Core[0][0])
	if len(d) != 1 || d[0].Weight != 1 {
		t.Fatalf("compute demands = %+v", d)
	}
	if rateCap != m.FreqHz {
		t.Fatalf("compute cap = %v", rateCap)
	}
}

func TestMCUtilization(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(1e-3)
	h := New(e, m)
	d, _ := h.StreamDemands(0, 0, sim.Invalid, 0)
	e.StartFlow(&sim.Flow{Remaining: 1e6, RateCap: 1e9, Demands: d})
	e.Run(0.01)
	u := h.MCUtilization()
	if u[0] != 1e6 {
		t.Fatalf("MC utilization = %v", u)
	}
	if u[1] != 0 {
		t.Fatal("idle MC shows utilization")
	}
}
