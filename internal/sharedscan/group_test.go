package sharedscan_test

// Plan-driven group tests: core.SubmitBatch hands the registry whole groups
// of same-key members (Registry.SubmitGroup); the group must ride the cohort
// lifecycle as a unit — attaching to a running pass together when the attach
// bound admits it, or queueing behind it together when not.

import (
	"testing"

	"numacs/internal/core"
	"numacs/internal/sharedscan"
	"numacs/internal/topology"
	"numacs/internal/workload"
)

// TestGroupAttachesMidFlight: a plan-driven group arriving while a pass is in
// its early fraction attaches whole, like timed arrivals would one by one.
func TestGroupAttachesMidFlight(t *testing.T) {
	e := core.NewWithStep(topology.FourSocketIvyBridge(), 1, 5e-6)
	table := workload.Generate(*bigTable(8_000_000))
	e.Placer.PlaceRR(table)
	reg := e.EnableSharedScans(sharedscan.Config{})

	leaderDone := false
	e.Submit(&core.Query{
		Table: table, Column: "COL000", Selectivity: 1e-5,
		Parallel: true, Strategy: core.Bound,
		OnDone: func(float64) { leaderDone = true },
	})
	e.Sim.Run(100e-6)
	if leaderDone {
		t.Fatal("pass completed before mid-flight point — grow the table")
	}
	done := 0
	qs := make([]*core.Query, 3)
	for i := range qs {
		qs[i] = &core.Query{
			Table: table, Column: "COL000", Selectivity: 1e-5,
			Parallel: true, Strategy: core.Bound,
			OnDone: func(float64) { done++ },
		}
	}
	e.SubmitBatch(qs)
	e.Sim.Run(30e-3)

	if !leaderDone || done != 3 {
		t.Fatalf("statements incomplete: leader=%v group=%d/3", leaderDone, done)
	}
	st := reg.Stats()
	if st.PlanGrouped != 3 {
		t.Fatalf("group not plan-grouped: %+v", st)
	}
	if st.Attached != 3 {
		t.Fatalf("group did not attach whole to the running pass: %+v", st)
	}
	if st.Passes != 1 {
		t.Fatalf("expected one launched pass (plus a wrap): %+v", st)
	}
}

// TestGroupQueuesBehindLateRunningPass: with the attach bound closed, a
// plan-driven group arriving mid-pass queues behind it as one forming cohort
// and launches together when the pass completes — one extra pass, not three.
func TestGroupQueuesBehindLateRunningPass(t *testing.T) {
	e := core.NewWithStep(topology.FourSocketIvyBridge(), 1, 5e-6)
	table := workload.Generate(*bigTable(8_000_000))
	e.Placer.PlaceRR(table)
	reg := e.EnableSharedScans(sharedscan.Config{DisableAttach: true})

	leaderDone := false
	e.Submit(&core.Query{
		Table: table, Column: "COL000", Selectivity: 1e-5,
		Parallel: true, Strategy: core.Bound,
		OnDone: func(float64) { leaderDone = true },
	})
	e.Sim.Run(100e-6)
	if leaderDone {
		t.Fatal("pass completed before mid-flight point — grow the table")
	}
	done := 0
	qs := make([]*core.Query, 3)
	for i := range qs {
		qs[i] = &core.Query{
			Table: table, Column: "COL000", Selectivity: 1e-5,
			Parallel: true, Strategy: core.Bound,
			OnDone: func(float64) { done++ },
		}
	}
	e.SubmitBatch(qs)
	e.Sim.Run(40e-3)

	if !leaderDone || done != 3 {
		t.Fatalf("statements incomplete: leader=%v group=%d/3", leaderDone, done)
	}
	st := reg.Stats()
	if st.PlanGrouped != 3 {
		t.Fatalf("group not plan-grouped: %+v", st)
	}
	if st.Attached != 0 {
		t.Fatalf("attach disabled but members attached: %+v", st)
	}
	if st.Passes != 2 || st.Merged != 2 {
		t.Fatalf("group did not launch as one pass behind the leader: %+v", st)
	}
}
