package sharedscan_test

// Cohort edge-case tests, driven through the real engine (the registry's
// lifecycle only exists between admission and exec, so the tests exercise it
// end to end): mid-flight attach with wrap-around completion, shedding a
// member whose admission deadline expires in the join window (with the
// OnShed hook reentering Submit, the closed-loop pattern of
// TestShedReentrantSubmit), and a cohort over a replicated column fanning
// one slice per replica socket.

import (
	"testing"

	"numacs/internal/admit"
	"numacs/internal/core"
	"numacs/internal/sharedscan"
	"numacs/internal/topology"
	"numacs/internal/workload"
)

// bigTable builds a synthetic single-part table whose column passes span
// many simulator steps, so tests can observe a pass mid-flight.
func bigTable(rows int) *workload.DatasetConfig {
	return &workload.DatasetConfig{
		Rows: rows, Columns: 4, BitcaseMin: 12, BitcaseMax: 15,
		Seed: 1, Synthetic: true,
	}
}

func TestMidFlightAttachWrapAround(t *testing.T) {
	e := core.NewWithStep(topology.FourSocketIvyBridge(), 1, 5e-6)
	table := workload.Generate(*bigTable(8_000_000))
	e.Placer.PlaceRR(table)
	reg := e.EnableSharedScans(sharedscan.Config{})

	doneA, doneB := false, false
	var latA, latB float64
	q := func(done *bool, lat *float64) *core.Query {
		return &core.Query{
			Table: table, Column: "COL000", Selectivity: 1e-5,
			Parallel: true, Strategy: core.Bound,
			OnDone: func(l float64) { *done = true; *lat = l },
		}
	}
	e.Submit(q(&doneA, &latA))
	// Let A's pass get under way (past the 30 us query overhead), then
	// submit B mid-flight.
	e.Sim.Run(100e-6)
	if doneA {
		t.Fatal("pass completed before mid-flight point — grow the table")
	}
	e.Submit(q(&doneB, &latB))
	e.Sim.Run(20e-3)

	if !doneA || !doneB {
		t.Fatalf("statements incomplete: A=%v B=%v", doneA, doneB)
	}
	st := reg.Stats()
	if st.Attached != 1 {
		t.Fatalf("B did not attach mid-flight: %+v", st)
	}
	if st.Wraps != 1 {
		t.Fatalf("no wrap-around pass ran for the attacher: %+v", st)
	}
	if st.Passes != 1 {
		t.Fatalf("expected one shared pass, got %+v", st)
	}
	if latB <= 0 || latA <= 0 {
		t.Fatalf("latencies not recorded: A=%v B=%v", latA, latB)
	}
	// Physical sharing: two statements must cost well under two private
	// passes — A's full pass plus B's missed-prefix wrap plus outputs.
	solo := core.NewWithStep(topology.FourSocketIvyBridge(), 1, 5e-6)
	stable := workload.Generate(*bigTable(8_000_000))
	solo.Placer.PlaceRR(stable)
	sdone := false
	solo.Submit(&core.Query{
		Table: stable, Column: "COL000", Selectivity: 1e-5,
		Parallel: true, Strategy: core.Bound,
		OnDone: func(float64) { sdone = true },
	})
	solo.Sim.Run(20e-3)
	if !sdone {
		t.Fatal("solo control incomplete")
	}
	soloBytes := solo.Counters.TotalMCBytes()
	if got := e.Counters.TotalMCBytes(); got >= 1.9*soloBytes {
		t.Fatalf("attach did not share the pass: 2 statements cost %.0f bytes vs solo %.0f", got, soloBytes)
	}
}

func TestShedWhileWaitingInJoinWindow(t *testing.T) {
	e := core.NewWithStep(topology.FourSocketIvyBridge(), 1, 5e-6)
	table := workload.Generate(*bigTable(8_000_000))
	e.Placer.PlaceRR(table)
	// A tight OLAP deadline relative to the pass length, and attach disabled
	// so arrivals during the pass must wait in the join window.
	e.EnableAdmission(admit.Config{OLAPDeadline: 100e-6, InteractiveDeadline: 100e-6})
	reg := e.EnableSharedScans(sharedscan.Config{JoinWindow: 10e-3, DisableAttach: true})

	doneA := false
	e.Submit(&core.Query{
		Table: table, Column: "COL000", Selectivity: 1e-5,
		Parallel: true, Strategy: core.Bound,
		OnDone: func(float64) { doneA = true },
	})
	e.Sim.Run(100e-6)
	if doneA {
		t.Fatal("pass completed before mid-flight point — grow the table")
	}

	// B waits in the join window behind A's pass; its deadline expires
	// there. Its OnShed reenters Submit synchronously — the closed-loop
	// reissue pattern — exactly once.
	sheds, doneB := 0, 0
	var qB *core.Query
	qB = &core.Query{
		Table: table, Column: "COL000", Selectivity: 1e-5,
		Parallel: true, Strategy: core.Bound,
		OnDone: func(float64) { doneB++ },
		OnShed: func() {
			sheds++
			if sheds == 1 {
				e.Submit(qB)
			}
		},
	}
	e.Submit(qB)
	e.Sim.Run(40e-3)

	if sheds == 0 {
		t.Fatal("no shed despite the deadline expiring in the join window")
	}
	if reg.Stats().Shed == 0 {
		t.Fatalf("registry recorded no sheds: %+v", reg.Stats())
	}
	if !doneA {
		t.Fatal("A never completed")
	}
	if e.ActiveStatements() != 0 {
		t.Fatalf("leaked active statements: %d", e.ActiveStatements())
	}
	if e.Admit.InFlight() != 0 {
		t.Fatalf("leaked admission slots: %d in flight", e.Admit.InFlight())
	}
	// The reentrant resubmission must have been either completed or shed,
	// never lost.
	if doneB+sheds < 2 {
		t.Fatalf("resubmitted statement lost: done=%d sheds=%d", doneB, sheds)
	}
}

// TestOlderPassCompletionKeepsNewerCohortAttachable pins the registry's
// incumbent rule: when a forming cohort's window closes while an older pass
// is still streaming, the new pass becomes the column's running cohort, and
// the OLDER pass completing must not clear that slot — later arrivals keep
// attaching to the newer in-flight pass instead of launching private ones.
func TestOlderPassCompletionKeepsNewerCohortAttachable(t *testing.T) {
	e := core.NewWithStep(topology.FourSocketIvyBridge(), 1, 5e-6)
	table := workload.Generate(*bigTable(64_000_000))
	e.Placer.PlaceRR(table)
	reg := e.EnableSharedScans(sharedscan.Config{JoinWindow: 100e-6, AttachFraction: 0.5})

	done := 0
	submit := func() {
		e.Submit(&core.Query{
			Table: table, Column: "COL000", Selectivity: 1e-5,
			Parallel: true, Strategy: core.Bound,
			OnDone: func(float64) { done++ },
		})
	}
	// A launches pass 1 (~1.4 ms). B arrives past the attach fraction, waits
	// out the join window, and launches pass 2 while pass 1 still streams.
	submit()
	e.Sim.Run(900e-6)
	if done != 0 {
		t.Fatal("pass 1 completed too early for the scenario — grow the table")
	}
	submit()
	// C attaches to pass 2 shortly after it launches; D arrives AFTER pass 1
	// completed and must still find pass 2 attachable.
	e.Sim.Run(1100e-6)
	submit()
	e.Sim.Run(1600e-6)
	submit()
	e.Sim.Run(40e-3)

	if done != 4 {
		t.Fatalf("completed %d of 4 statements", done)
	}
	st := reg.Stats()
	if st.Passes != 2 || st.Attached != 2 {
		t.Fatalf("older pass completion broke attachability of the newer cohort: %+v", st)
	}
}

func TestCohortReplicatedColumnOneSlicePerSocket(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := core.NewWithStep(m, 1, 5e-6)
	table := workload.Generate(*bigTable(2_000_000))
	e.Placer.PlaceRR(table)
	col := table.Parts[0].ColumnByName("COL000")
	primary := col.IVPSM.MajoritySocket()
	for s := 0; s < m.Sockets; s++ {
		if s != primary {
			e.Placer.AddReplica(col, s)
		}
	}
	reg := e.EnableSharedScans(sharedscan.Config{})

	done := 0
	for i := 0; i < 8; i++ {
		e.Submit(&core.Query{
			Table: table, Column: "COL000", Selectivity: 1e-5,
			Parallel: true, Strategy: core.Bound, HomeSocket: i % m.Sockets,
			OnDone: func(float64) { done++ },
		})
	}
	e.Sim.Run(20e-3)

	if done != 8 {
		t.Fatalf("completed %d of 8 statements", done)
	}
	st := reg.Stats()
	if st.Passes != 1 {
		t.Fatalf("expected the 8 scans to share one pass: %+v", st)
	}
	if st.Merged+st.Attached != 7 {
		t.Fatalf("expected 7 sharers: %+v", st)
	}
	// One slice per replica socket: every socket's memory controller must
	// have served part of the cohort pass locally.
	for s := 0; s < m.Sockets; s++ {
		if e.Counters.MCBytes[s] == 0 {
			t.Fatalf("socket %d served no bytes — replica slices not fanned per socket: %v",
				s, e.Counters.MCBytes)
		}
	}
}
