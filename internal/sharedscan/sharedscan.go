// Package sharedscan is the scan-cohort layer between statement admission
// and operator execution. The paper's setting is many concurrent scans
// contending for memory bandwidth, yet each admitted statement traverses its
// column privately — 16 concurrent scans of a read-hot column pay 16 full
// memory passes, so the engine is memory-controller-bound long before the
// cores are. This package merges concurrent range-predicate scans of the
// same column into cohorts that share ONE physical pass (shared /
// cooperative scans in the style of Crescando and SAP HANA scan sharing):
//
//   - A per-column registry tracks one in-flight pass and one forming cohort
//     per column. The first arrival on an idle column launches immediately —
//     the uncontended path is a bypass, bit-identical to the unshared engine
//     (pinned by a harness golden test).
//   - An arrival while a pass is in its early fraction attaches mid-flight,
//     ClockScan-style: it rides the remainder of the running pass and a
//     wrap-around partial pass re-streams only the prefix it missed, shared
//     by all attachers of that generation.
//   - An arrival too late to attach waits in a forming cohort for up to
//     Config.JoinWindow (or until the running pass completes), merging with
//     every other arrival of the window into the next pass.
//
// Accounting is honest on both axes: physical MC/link/LLC traffic is charged
// once per cohort pass, while every member statement attributes its full
// logical per-item traffic so the adaptive placer's read-heat signal is
// undiminished (the mirror image of the delta-merge rule, which charges
// physical traffic but withholds the logical write signal). Each member's
// reported latency runs from its own submission — join-window wait included
// — so admission p99s stay truthful, and a member whose admission deadline
// expires while it waits in a join window is shed through its OnShed hook.
package sharedscan

import (
	"fmt"

	"numacs/internal/colstore"
	"numacs/internal/exec"
	"numacs/internal/sim"
	"numacs/internal/trace"
)

// Config tunes the cohort registry. The zero value is usable: New fills
// every zero field with the documented default.
type Config struct {
	// JoinWindow is the longest a statement waits in a forming cohort, in
	// virtual seconds (default 1 ms). The cohort also launches early when
	// the pass it queued behind completes. Zero takes the default; negative
	// disables waiting (every non-attachable arrival launches its own pass).
	JoinWindow float64
	// AttachFraction bounds mid-flight attachment: an arrival attaches to a
	// running pass only while the pass has streamed at most this fraction of
	// its bytes (default 0.75). Beyond it, the wrap-around pass would
	// re-stream most of the column and sharing stops paying.
	AttachFraction float64
	// MaxCohort caps the members of one pass, attachers included (default
	// 64); a forming cohort that reaches the cap launches immediately.
	MaxCohort int
	// DisableAttach turns off mid-flight attachment (arrivals during a pass
	// always queue in the forming cohort) — for ablations.
	DisableAttach bool
}

// Member is one shareable scan statement handed to the registry: the
// predicate and placement facts of the scan, the statement's timestamps, and
// the hooks the registry drives its lifecycle through.
type Member struct {
	// Key identifies the shared data item (table.column); scans with equal
	// keys may share a pass.
	Key string
	// Table and Column name the scanned data.
	Table  *colstore.Table
	Column string
	// Selectivity is the member's range-predicate selectivity.
	Selectivity float64
	// Strategy and HomeSocket mirror the statement's scheduling parameters.
	Strategy   exec.Strategy
	HomeSocket int
	// MaxFanout is the statement's admission fan-out cap (0 = uncapped); the
	// cohort's combined budget is built from the members' capped shares.
	MaxFanout int
	// IssuedAt is the statement timestamp: task priority and the base of the
	// reported latency, so join-window wait counts toward both.
	IssuedAt float64
	// Deadline is the absolute virtual time after which the statement is
	// shed instead of launched (0 = none) — the admission class deadline
	// extended into the join window.
	Deadline float64
	// SecondOp builds the member's private output phase (materialization or
	// aggregation) over its find-phase regions.
	SecondOp func(src exec.RegionSource) exec.Operator
	// OnDone fires at statement completion with the latency in seconds.
	OnDone func(latency float64)
	// OnShed fires instead of OnDone when the member is shed from a join
	// window. It may reenter Submit synchronously (closed-loop clients
	// reissue), so the registry compacts its queues before firing it.
	OnShed func()
	// Trace, when non-nil, is the statement's flight-recorder span: the
	// registry stamps the cohort lifecycle onto it (join-window wait,
	// mid-flight attach, launch, shed) and threads it into the member's
	// pipeline so operator phases land on the same record.
	Trace *trace.Statement
}

// Stats counts registry outcomes for reports and tests.
type Stats struct {
	// Statements counts members submitted; Passes counts physical cohort
	// passes launched (wrap passes excluded).
	Statements, Passes uint64
	// Solo counts passes launched with a single member — the bypass path.
	Solo uint64
	// Merged counts members that shared another member's pass at launch;
	// Attached counts members that attached to a pass mid-flight.
	Merged, Attached uint64
	// Wraps counts wrap-around passes run for attacher generations.
	Wraps uint64
	// Shed counts members shed while waiting in a join window.
	Shed uint64
	// PlanGrouped counts members that entered through a plan-driven group
	// (SubmitGroup): the planner's common-subplan detection, not arrival
	// timing, placed them in one cohort submission.
	PlanGrouped uint64
}

// cohort is one pass's membership: launch members (leader first), mid-flight
// attachers, and the forming-window deadline before launch.
type cohort struct {
	key       string
	members   []*Member
	attachers []*Member
	pass      *exec.SharedScanOp
	launchAt  float64
	maxMissed float64 // largest pass fraction any attacher missed
}

// keyState is the registry's per-column state: at most one running pass
// (attachable) and one forming cohort (waiting) per key.
type keyState struct {
	running *cohort
	forming *cohort
}

// Registry is the cohort layer: route shareable scans through Submit and
// register it as a simulation actor (core.Engine.EnableSharedScans does
// both wirings).
type Registry struct {
	cfg   Config
	env   *exec.Env
	sim   *sim.Engine
	byKey map[string]*keyState
	keys  []*keyState // deterministic Tick order
	stats Stats

	// Decisions, when non-nil, is the flight recorder's decision log: the
	// registry records cohort launches, mid-flight attaches, wrap passes,
	// and join-window sheds with their membership numbers.
	Decisions *trace.DecisionLog
}

// New builds a registry over the engine's operator environment. Zero config
// fields take the documented defaults.
func New(cfg Config, env *exec.Env, se *sim.Engine) *Registry {
	if cfg.JoinWindow == 0 {
		cfg.JoinWindow = 1e-3
	}
	if cfg.JoinWindow < 0 {
		cfg.JoinWindow = 0
	}
	if cfg.AttachFraction <= 0 {
		cfg.AttachFraction = 0.75
	}
	if cfg.MaxCohort <= 0 {
		cfg.MaxCohort = 64
	}
	return &Registry{cfg: cfg, env: env, sim: se, byKey: make(map[string]*keyState)}
}

// Stats returns the registry outcome counters.
func (r *Registry) Stats() Stats { return r.stats }

// MeanCohort returns the mean members per physical pass (attachers counted
// toward their ridden pass; 0 before the first pass).
func (r *Registry) MeanCohort() float64 {
	if r.stats.Passes == 0 {
		return 0
	}
	return float64(r.stats.Statements-r.stats.Shed) / float64(r.stats.Passes)
}

// state returns (creating if needed) the per-key state.
func (r *Registry) state(key string) *keyState {
	ks, ok := r.byKey[key]
	if !ok {
		ks = &keyState{}
		r.byKey[key] = ks
		r.keys = append(r.keys, ks)
	}
	return ks
}

// Submit routes one shareable scan statement into the cohort lifecycle: an
// idle column launches it immediately (the bypass), an early-fraction
// running pass absorbs it mid-flight, anything else queues it in the
// forming cohort for at most JoinWindow.
func (r *Registry) Submit(m *Member) {
	r.stats.Statements++
	if m.Trace != nil {
		m.Trace.MarkCohortQueued(r.sim.Now())
	}
	ks := r.state(m.Key)
	if c := ks.forming; c != nil {
		c.members = append(c.members, m)
		if len(c.members) >= r.cfg.MaxCohort {
			ks.forming = nil
			r.launch(ks, c)
		}
		return
	}
	if c := ks.running; c != nil {
		if !r.cfg.DisableAttach && len(c.members)+len(c.attachers) < r.cfg.MaxCohort {
			if f := c.pass.Fraction(); f <= r.cfg.AttachFraction {
				if f > c.maxMissed {
					c.maxMissed = f
				}
				c.attachers = append(c.attachers, m)
				r.stats.Attached++
				if m.Trace != nil {
					m.Trace.MarkAttached()
					m.Trace.MarkCohortLaunched(r.sim.Now())
				}
				if r.Decisions != nil {
					r.Decisions.Record(trace.Decision{
						Time: r.sim.Now(), Source: "cohort", Kind: "attach", Item: m.Key, From: -1, To: -1,
						Cause: fmt.Sprintf("running pass at %.0f%% of its bytes (attach bound %.0f%%), %d riders",
							f*100, r.cfg.AttachFraction*100, len(c.attachers)),
					})
				}
				return
			}
		}
		ks.forming = &cohort{key: m.Key, members: []*Member{m}, launchAt: r.sim.Now() + r.cfg.JoinWindow}
		return
	}
	r.launch(ks, &cohort{key: m.Key, members: []*Member{m}})
}

// SubmitGroup routes a plan-driven cohort group into the lifecycle as one
// unit: core.SubmitBatch hands it the members whose physical plans share a
// cohort key, and the whole group lands in the same cohort without waiting
// out a join window per member. Members of a single-element group (and
// members whose keys differ — the registry re-groups defensively) fall back
// to the per-statement Submit path. A group that cannot ride an existing
// forming cohort or attach to the running pass in full launches or queues
// together, so plan-time grouping never splits a detected common subplan.
func (r *Registry) SubmitGroup(ms []*Member) {
	byKey := make(map[string][]*Member)
	var order []string
	for _, m := range ms {
		if _, ok := byKey[m.Key]; !ok {
			order = append(order, m.Key)
		}
		byKey[m.Key] = append(byKey[m.Key], m)
	}
	for _, key := range order {
		g := byKey[key]
		if len(g) == 1 {
			r.Submit(g[0])
			continue
		}
		r.submitGroup(key, g)
	}
}

// submitGroup places one same-key group of two or more members into the
// cohort lifecycle as a unit.
func (r *Registry) submitGroup(key string, g []*Member) {
	now := r.sim.Now()
	r.stats.Statements += uint64(len(g))
	r.stats.PlanGrouped += uint64(len(g))
	for _, m := range g {
		if m.Trace != nil {
			m.Trace.MarkCohortQueued(now)
		}
	}
	if r.Decisions != nil {
		r.Decisions.Record(trace.Decision{
			Time: now, Source: "cohort", Kind: "plan-group", Item: key, From: -1, To: -1,
			Cause: fmt.Sprintf("planner grouped %d statements on a common subplan", len(g)),
		})
	}
	ks := r.state(key)
	if c := ks.forming; c != nil {
		c.members = append(c.members, g...)
		if len(c.members) >= r.cfg.MaxCohort {
			ks.forming = nil
			r.launch(ks, c)
		}
		return
	}
	if c := ks.running; c != nil {
		if !r.cfg.DisableAttach && len(c.members)+len(c.attachers)+len(g) <= r.cfg.MaxCohort {
			if f := c.pass.Fraction(); f <= r.cfg.AttachFraction {
				if f > c.maxMissed {
					c.maxMissed = f
				}
				c.attachers = append(c.attachers, g...)
				r.stats.Attached += uint64(len(g))
				for _, m := range g {
					if m.Trace != nil {
						m.Trace.MarkAttached()
						m.Trace.MarkCohortLaunched(now)
					}
				}
				if r.Decisions != nil {
					r.Decisions.Record(trace.Decision{
						Time: now, Source: "cohort", Kind: "attach", Item: key, From: -1, To: -1,
						Cause: fmt.Sprintf("plan group of %d attached at %.0f%% of the running pass (attach bound %.0f%%)",
							len(g), f*100, r.cfg.AttachFraction*100),
					})
				}
				return
			}
		}
		ks.forming = &cohort{key: key, members: append([]*Member{}, g...), launchAt: now + r.cfg.JoinWindow}
		return
	}
	r.launch(ks, &cohort{key: key, members: append([]*Member{}, g...)})
}

// Tick implements sim.Actor: shed join-window waiters whose deadline passed
// and launch forming cohorts whose window closed.
func (r *Registry) Tick(now float64) {
	for _, ks := range r.keys {
		c := ks.forming
		if c == nil {
			continue
		}
		expired := r.compactExpired(c, now)
		if len(c.members) == 0 {
			ks.forming = nil
		} else if now >= c.launchAt {
			ks.forming = nil
			r.launch(ks, c)
		}
		r.fireSheds(expired)
	}
}

// compactExpired removes members past their deadline from the cohort and
// returns them; the caller fires their OnShed hooks only after the registry
// state is consistent (OnShed may reenter Submit).
func (r *Registry) compactExpired(c *cohort, now float64) []*Member {
	var expired []*Member
	kept := c.members[:0]
	for _, m := range c.members {
		if m.Deadline > 0 && now > m.Deadline {
			expired = append(expired, m)
		} else {
			kept = append(kept, m)
		}
	}
	for i := len(kept); i < len(c.members); i++ {
		c.members[i] = nil
	}
	c.members = kept
	return expired
}

// fireSheds counts and fires the shed hooks.
func (r *Registry) fireSheds(expired []*Member) {
	now := r.sim.Now()
	for _, m := range expired {
		r.stats.Shed++
		if m.Trace != nil {
			m.Trace.MarkShed(now, "join-window")
		}
		if r.Decisions != nil {
			r.Decisions.Record(trace.Decision{
				Time: now, Source: "cohort", Kind: "shed", Item: m.Key, From: -1, To: -1,
				Cause: fmt.Sprintf("deadline %.1fms passed while waiting in the join window", m.Deadline*1e3),
			})
		}
		if m.OnShed != nil {
			m.OnShed()
		}
	}
}

// launch starts a cohort's physical pass: one pipeline owned by the leader
// (first member) whose find phase carries every member's predicate, with the
// leader's own output phase downstream. ks.running is set before any hook
// can run, so reentrant submissions see a consistent registry.
func (r *Registry) launch(ks *keyState, c *cohort) {
	expired := r.compactExpired(c, r.sim.Now())
	if len(c.members) == 0 {
		r.fireSheds(expired)
		return
	}
	leader := c.members[0]
	preds := make([]exec.SharedPred, len(c.members))
	for i, m := range c.members {
		preds[i] = exec.SharedPred{Selectivity: m.Selectivity}
	}
	c.pass = &exec.SharedScanOp{
		Table:     leader.Table,
		Column:    leader.Column,
		Preds:     preds,
		FanoutCap: summedFanout(c.members),
		OnClosed:  func() { r.mainDone(ks, c) },
	}
	r.stats.Passes++
	if len(c.members) == 1 {
		r.stats.Solo++
	} else {
		r.stats.Merged += uint64(len(c.members) - 1)
	}
	now := r.sim.Now()
	for _, m := range c.members {
		if m.Trace != nil {
			m.Trace.MarkCohortLaunched(now)
		}
	}
	if r.Decisions != nil {
		r.Decisions.Record(trace.Decision{
			Time: now, Source: "cohort", Kind: "launch", Item: c.key, From: -1, To: -1,
			Cause: fmt.Sprintf("%d members share one pass (fan-out cap %d)",
				len(c.members), c.pass.FanoutCap),
		})
	}
	ks.running = c
	pl := &exec.Pipeline{
		Env:        r.env,
		Strategy:   leader.Strategy,
		HomeSocket: leader.HomeSocket,
		IssuedAt:   leader.IssuedAt,
		MaxFanout:  leader.MaxFanout,
		Ops:        []exec.Operator{c.pass, leader.SecondOp(memberSource{c.pass, 0})},
		OnDone:     leader.OnDone,
		Trace:      leader.Trace,
	}
	pl.Start()
	r.fireSheds(expired)
}

// mainDone runs at the cohort pass's find barrier: followers' statements
// start (their find phase is already materialized in their regions), the
// attacher generation's wrap pass launches, and the column's forming cohort
// — which was waiting behind this pass — launches immediately.
func (r *Registry) mainDone(ks *keyState, c *cohort) {
	for i, m := range c.members[1:] {
		r.startFollower(m, c.pass.MemberRegions(i+1))
	}
	if len(c.attachers) > 0 {
		r.stats.Wraps++
		al := c.attachers[0]
		preds := make([]exec.SharedPred, len(c.attachers))
		for i, m := range c.attachers {
			preds[i] = exec.SharedPred{Selectivity: m.Selectivity}
		}
		wrap := &exec.WrapScanOp{
			Table:     al.Table,
			Column:    al.Column,
			Fraction:  c.maxMissed,
			Preds:     preds,
			FanoutCap: summedFanout(c.attachers),
		}
		wrap.OnClosed = func() {
			for i, m := range c.attachers[1:] {
				r.startFollower(m, wrap.MemberRegions(i+1))
			}
		}
		if r.Decisions != nil {
			r.Decisions.Record(trace.Decision{
				Time: r.sim.Now(), Source: "cohort", Kind: "wrap", Item: c.key, From: -1, To: -1,
				Cause: fmt.Sprintf("%d attachers re-stream the missed %.0f%% prefix",
					len(c.attachers), c.maxMissed*100),
			})
		}
		pl := &exec.Pipeline{
			Env:        r.env,
			Strategy:   al.Strategy,
			HomeSocket: al.HomeSocket,
			IssuedAt:   al.IssuedAt,
			MaxFanout:  al.MaxFanout,
			Ops:        []exec.Operator{wrap, al.SecondOp(memberSource{wrap, 0})},
			OnDone:     al.OnDone,
			Trace:      al.Trace,
		}
		pl.Start()
	}
	// A newer cohort may already have replaced this one as the column's
	// running pass (Tick launches a forming cohort when its window closes
	// even while an older pass is still streaming); only the current
	// incumbent clears the slot and early-launches the cohort queued behind
	// it.
	if ks.running == c {
		ks.running = nil
		if f := ks.forming; f != nil {
			// The pass this cohort queued behind is done — no reason to
			// keep waiting out the window.
			ks.forming = nil
			r.launch(ks, f)
		}
	}
}

// startFollower starts one follower statement: a pipeline whose find phase
// is the precomputed region set (instant) and whose output phase is the
// member's own.
func (r *Registry) startFollower(m *Member, regions []exec.Region) {
	src := &exec.StaticRegions{Rs: regions}
	pl := &exec.Pipeline{
		Env:        r.env,
		Strategy:   m.Strategy,
		HomeSocket: m.HomeSocket,
		IssuedAt:   m.IssuedAt,
		MaxFanout:  m.MaxFanout,
		Ops:        []exec.Operator{src, m.SecondOp(src)},
		OnDone:     m.OnDone,
		Trace:      m.Trace,
	}
	pl.Start()
}

// summedFanout returns the members' combined admission fan-out budget: the
// sum of their per-statement caps, or 0 (uncapped) when any member was
// admitted without one.
func summedFanout(members []*Member) int {
	sum := 0
	for _, m := range members {
		if m.MaxFanout <= 0 {
			return 0
		}
		sum += m.MaxFanout
	}
	return sum
}

// memberSource adapts one member's slice of a shared pass (main or wrap) to
// the RegionSource the output operators consume.
type memberSource struct {
	pass interface{ MemberRegions(i int) []exec.Region }
	i    int
}

// Regions implements exec.RegionSource.
func (m memberSource) Regions() []exec.Region { return m.pass.MemberRegions(m.i) }
