package sharedscan_test

import (
	"sync"
	"testing"

	"numacs/internal/admit"
	"numacs/internal/core"
	"numacs/internal/sharedscan"
	"numacs/internal/topology"
	"numacs/internal/workload"
)

// TestCohortLifecycleConcurrentEngines drives the full cohort lifecycle —
// join-window merge, mid-flight attach, wrap-around pass, and shed with a
// synchronous reentrant resubmit — on several engines in parallel goroutines.
// Each engine is self-contained, so the test's job under -race is to prove
// the registry and its exec/core plumbing share no hidden package-level
// mutable state between instances (a regression here would poison every
// multi-engine harness sweep). It stays fast and runs under -short on
// purpose: the CI race job is `go test -short -race`.
func TestCohortLifecycleConcurrentEngines(t *testing.T) {
	const engines = 6
	var wg sync.WaitGroup
	for g := 0; g < engines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0:
				runAttachWrapLifecycle(t, int64(g+1))
			case 1:
				runJoinWindowMergeLifecycle(t, int64(g+1))
			default:
				runShedResubmitLifecycle(t, int64(g+1))
			}
		}(g)
	}
	wg.Wait()
}

// runAttachWrapLifecycle exercises merge + mid-flight attach + wrap-around:
// a burst of scans merges into one cohort, and a late arrival attaches to
// the running pass and is finished by a wrap pass.
func runAttachWrapLifecycle(t *testing.T, seed int64) {
	e := core.NewWithStep(topology.FourSocketIvyBridge(), seed, 5e-6)
	table := workload.Generate(workload.DatasetConfig{
		Rows: 8_000_000, Columns: 4, BitcaseMin: 12, BitcaseMax: 15,
		Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRR(table)
	reg := e.EnableSharedScans(sharedscan.Config{})

	done := 0
	q := func() *core.Query {
		return &core.Query{
			Table: table, Column: "COL000", Selectivity: 1e-5,
			Parallel: true, Strategy: core.Bound,
			OnDone: func(float64) { done++ },
		}
	}
	for i := 0; i < 4; i++ {
		e.Submit(q())
	}
	e.Sim.Run(100e-6) // past the query overhead: the cohort pass is mid-flight
	e.Submit(q())     // attaches to the running pass
	e.Sim.Run(40e-3)

	st := reg.Stats()
	if done != 5 {
		t.Errorf("seed %d: %d of 5 statements completed (%+v)", seed, done, st)
	}
	if st.Attached == 0 || st.Wraps == 0 {
		t.Errorf("seed %d: attach/wrap lifecycle incomplete: %+v", seed, st)
	}
}

// runJoinWindowMergeLifecycle exercises the forming-cohort merge: with
// attach disabled, arrivals during a running pass wait in the join window
// and launch together as one merged cohort when the pass completes.
func runJoinWindowMergeLifecycle(t *testing.T, seed int64) {
	e := core.NewWithStep(topology.FourSocketIvyBridge(), seed, 5e-6)
	table := workload.Generate(workload.DatasetConfig{
		Rows: 8_000_000, Columns: 4, BitcaseMin: 12, BitcaseMax: 15,
		Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRR(table)
	reg := e.EnableSharedScans(sharedscan.Config{JoinWindow: 20e-3, DisableAttach: true})

	done := 0
	q := func() *core.Query {
		return &core.Query{
			Table: table, Column: "COL000", Selectivity: 1e-5,
			Parallel: true, Strategy: core.Bound,
			OnDone: func(float64) { done++ },
		}
	}
	e.Submit(q())
	e.Sim.Run(100e-6) // the leader pass is mid-flight
	e.Submit(q())     // both wait in the forming cohort...
	e.Submit(q())     // ...and launch together behind the leader
	e.Sim.Run(40e-3)

	st := reg.Stats()
	if done != 3 {
		t.Errorf("seed %d: %d of 3 statements completed (%+v)", seed, done, st)
	}
	// Merged counts followers, so the two waiters launching as one cohort
	// behind the solo leader show up as a single merged member.
	if st.Merged == 0 {
		t.Errorf("seed %d: forming cohort did not merge: %+v", seed, st)
	}
}

// runShedResubmitLifecycle exercises shed with a synchronous reentrant
// resubmit: a statement waiting in the join window behind a running pass
// expires there, and its OnShed submits it again from inside the registry's
// shed sweep — the closed-loop reissue pattern.
func runShedResubmitLifecycle(t *testing.T, seed int64) {
	e := core.NewWithStep(topology.FourSocketIvyBridge(), seed, 5e-6)
	table := workload.Generate(workload.DatasetConfig{
		Rows: 8_000_000, Columns: 4, BitcaseMin: 12, BitcaseMax: 15,
		Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRR(table)
	e.EnableAdmission(admit.Config{OLAPDeadline: 100e-6, InteractiveDeadline: 100e-6})
	reg := e.EnableSharedScans(sharedscan.Config{JoinWindow: 10e-3, DisableAttach: true})

	doneA := false
	e.Submit(&core.Query{
		Table: table, Column: "COL000", Selectivity: 1e-5,
		Parallel: true, Strategy: core.Bound,
		OnDone: func(float64) { doneA = true },
	})
	e.Sim.Run(100e-6)

	sheds := 0
	var qB *core.Query
	qB = &core.Query{
		Table: table, Column: "COL000", Selectivity: 1e-5,
		Parallel: true, Strategy: core.Bound,
		OnShed: func() {
			sheds++
			if sheds == 1 {
				e.Submit(qB)
			}
		},
	}
	e.Submit(qB)
	e.Sim.Run(40e-3)

	if !doneA {
		t.Errorf("seed %d: leader pass never completed", seed)
	}
	if sheds == 0 {
		t.Errorf("seed %d: no shed despite the join-window deadline: %+v", seed, reg.Stats())
	}
}
