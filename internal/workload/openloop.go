package workload

import (
	"math/rand"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/metrics"
)

// BurstSpec is a periodic burst window for an open-loop tenant: starting at
// Phase, every Period the tenant's arrival rate multiplies by Factor for
// Duration. The zero value means no bursts.
type BurstSpec struct {
	// Period and Duration bound the repeating window (virtual seconds).
	Period, Duration float64
	// Factor multiplies the arrival rate inside the window.
	Factor float64
	// Phase offsets the first window from t=0.
	Phase float64
}

// factor returns the rate multiplier at a virtual time.
func (b BurstSpec) factor(now float64) float64 {
	if b.Period <= 0 || b.Duration <= 0 || b.Factor <= 0 {
		return 1
	}
	t := now - b.Phase
	if t < 0 {
		return 1
	}
	for t >= b.Period {
		t -= b.Period
	}
	if t < b.Duration {
		return b.Factor
	}
	return 1
}

// TenantLoad describes one tenant of the multi-tenant generator. A tenant
// can be open-loop (Rate > 0: statements arrive on a clock regardless of
// completions — the "millions of users" regime where offered load does not
// back off under slowdown), closed-loop (Clients > 0: each client issues,
// waits for completion, thinks, reissues), or both.
type TenantLoad struct {
	// Name is the admission tenant; Weight mirrors the tenant's admission
	// weight (informational here — the controller owns fairness).
	Name   string
	Weight float64

	// Rate is the open-loop arrival rate in statements per virtual second.
	Rate float64
	// Burst periodically multiplies Rate.
	Burst BurstSpec

	// Clients is the closed-loop client count; ThinkTime is each client's
	// pause between a statement's completion (or shed) and its next issue.
	Clients   int
	ThinkTime float64

	// Statement shape.
	Selectivity float64
	Parallel    bool
	Strategy    core.Strategy
	Class       core.StatementClass
	// Chooser picks the queried column (UniformChoice when nil).
	Chooser Chooser
}

// TenantLoadStats is the per-tenant outcome of a generator run.
type TenantLoadStats struct {
	// Name echoes the tenant.
	Name string
	// Issued counts statements submitted, Completed the ones that finished,
	// Shed the ones dropped by admission-control load shedding.
	Issued, Completed, Shed uint64
	// Lat records end-to-end statement latencies (admission wait included
	// when the engine has a controller).
	Lat *metrics.Histogram
}

// tenantLoadState is the generator-internal per-tenant state.
type tenantLoadState struct {
	spec  TenantLoad
	stats TenantLoadStats
	carry float64   // fractional open-loop arrivals
	due   []float64 // closed-loop reissue times (think timers)
	seq   int       // issue sequence, for home-socket spreading
}

// MultiTenantConfig configures the generator.
type MultiTenantConfig struct {
	// Tenants lists the tenant mix; order is the deterministic issue order
	// within a tick.
	Tenants []TenantLoad
	// Seed drives the generator's private RNG.
	Seed int64
}

// MultiTenant drives a multi-tenant statement mix as a simulation actor:
// open-loop arrivals (with bursts) and closed-loop clients (with think
// times) per tenant, each statement tagged with its tenant for admission
// control. Register it with engine.Sim.AddActor and call Start.
type MultiTenant struct {
	cfg     MultiTenantConfig
	engine  *core.Engine
	table   *colstore.Table
	columns []string
	rng     *rand.Rand
	per     []*tenantLoadState
	stopped bool
}

// NewMultiTenant creates the generator over a placed table.
func NewMultiTenant(e *core.Engine, table *colstore.Table, cfg MultiTenantConfig) *MultiTenant {
	g := &MultiTenant{
		cfg:     cfg,
		engine:  e,
		table:   table,
		columns: table.ColumnNames(),
		rng:     rand.New(rand.NewSource(cfg.Seed + 97)),
	}
	for _, spec := range cfg.Tenants {
		if spec.Chooser == nil {
			spec.Chooser = UniformChoice{}
		}
		g.per = append(g.per, &tenantLoadState{
			spec:  spec,
			stats: TenantLoadStats{Name: spec.Name, Lat: &metrics.Histogram{}},
		})
	}
	return g
}

// Start admits every closed-loop client's first statement.
func (g *MultiTenant) Start() {
	for _, ts := range g.per {
		for i := 0; i < ts.spec.Clients; i++ {
			g.issue(ts, true)
		}
	}
}

// Stop prevents further issues (in-flight statements drain normally).
func (g *MultiTenant) Stop() { g.stopped = true }

// Stats returns the per-tenant outcomes, in tenant order.
func (g *MultiTenant) Stats() []TenantLoadStats {
	out := make([]TenantLoadStats, len(g.per))
	for i, ts := range g.per {
		out[i] = ts.stats
	}
	return out
}

// ResetStats zeroes the per-tenant counters and histograms (end of warmup).
func (g *MultiTenant) ResetStats() {
	for _, ts := range g.per {
		ts.stats.Issued = 0
		ts.stats.Completed = 0
		ts.stats.Shed = 0
		ts.stats.Lat.Reset()
	}
}

// Tick implements sim.Actor: accrue open-loop arrivals (burst-scaled) and
// fire due closed-loop reissues.
func (g *MultiTenant) Tick(now float64) {
	if g.stopped {
		return
	}
	step := g.engine.Sim.StepLen()
	for _, ts := range g.per {
		if ts.spec.Rate > 0 {
			ts.carry += ts.spec.Rate * ts.spec.Burst.factor(now) * step
			n := int(ts.carry)
			ts.carry -= float64(n)
			for i := 0; i < n; i++ {
				g.issue(ts, false)
			}
		}
		// Fire think timers that came due (kept sorted by construction:
		// completions only ever append now+ThinkTime, which is monotone).
		fired := 0
		for fired < len(ts.due) && ts.due[fired] <= now {
			fired++
		}
		if fired > 0 {
			ts.due = ts.due[fired:]
			for i := 0; i < fired; i++ {
				g.issue(ts, true)
			}
		}
	}
}

// issue submits one statement of the tenant; closed statements rearm their
// client's think timer on completion or shed.
func (g *MultiTenant) issue(ts *tenantLoadState, closed bool) {
	if g.stopped {
		return
	}
	ts.stats.Issued++
	ts.seq++
	rearm := func() {
		if closed && !g.stopped {
			ts.due = append(ts.due, g.engine.Sim.Now()+ts.spec.ThinkTime)
		}
	}
	col := g.columns[ts.spec.Chooser.Pick(g.rng, len(g.columns))]
	g.engine.Submit(&core.Query{
		Table:       g.table,
		Column:      col,
		Selectivity: ts.spec.Selectivity,
		Parallel:    ts.spec.Parallel,
		Strategy:    ts.spec.Strategy,
		HomeSocket:  ts.seq % g.engine.Machine.Sockets,
		Tenant:      ts.spec.Name,
		Class:       ts.spec.Class,
		OnDone: func(lat float64) {
			ts.stats.Completed++
			ts.stats.Lat.Record(lat)
			rearm()
		},
		OnShed: func() {
			ts.stats.Shed++
			rearm()
		},
	})
}
