// Package workload generates the paper's dataset and drives closed-loop
// clients against the execution engine. The paper's dataset is a table of
// 100 M rows and 160 integer columns whose bitcases cycle through 17..26;
// the generator reproduces that structure at a configurable scale (the
// simulation preserves relative intensities, so shapes survive scaling —
// see DESIGN.md). Clients continuously execute a prepared range predicate
// SELECT COLx FROM TBL WHERE COLx >= ? AND COLx <= ? on a column chosen
// uniformly or with the 80/20 skew of Section 6.2, with no think time.
package workload

import (
	"fmt"
	"math/rand"

	"numacs/internal/colstore"
	"numacs/internal/core"
)

// DatasetConfig describes the synthetic table.
type DatasetConfig struct {
	Rows    int
	Columns int
	// BitcaseMin/Max cycle round-robin across columns (paper: 17..26; the
	// scaled default uses 12..21 so dictionaries stay proportionate).
	BitcaseMin, BitcaseMax uint
	WithIndex              bool
	Seed                   int64
	// Synthetic skips generating and encoding actual values: columns get
	// correctly-sized (but zeroed) structures. The simulation harness uses
	// this — it costs the experiments nothing because match counts are
	// analytic — while examples and tests build real data.
	Synthetic bool
}

// DefaultDataset is the scaled default used by the benchmark harness on
// 4-socket machines.
func DefaultDataset() DatasetConfig {
	return DatasetConfig{
		Rows:       100_000,
		Columns:    64,
		BitcaseMin: 12,
		BitcaseMax: 21,
		WithIndex:  false,
		Seed:       1,
	}
}

// ExpectedDistinct returns the expected number of distinct values when
// drawing n uniform values from a domain of size d.
func ExpectedDistinct(n int, d int) int { return colstore.ExpectedDistinct(n, int64(d)) }

// Generate builds the dataset table.
func Generate(cfg DatasetConfig) *colstore.Table {
	if cfg.Rows <= 0 || cfg.Columns <= 0 {
		panic("workload: dataset needs positive rows and columns")
	}
	if cfg.BitcaseMin < 1 || cfg.BitcaseMax < cfg.BitcaseMin || cfg.BitcaseMax > 31 {
		panic("workload: bad bitcase range")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := int(cfg.BitcaseMax - cfg.BitcaseMin + 1)
	cols := make([]*colstore.Column, cfg.Columns)
	for j := 0; j < cfg.Columns; j++ {
		bc := cfg.BitcaseMin + uint(j%span)
		name := fmt.Sprintf("COL%03d", j)
		if cfg.Synthetic {
			cols[j] = syntheticColumn(name, cfg.Rows, bc, cfg.WithIndex)
			continue
		}
		domain := int64(1) << bc
		vals := make([]int64, cfg.Rows)
		for i := range vals {
			vals[i] = rng.Int63n(domain)
		}
		cols[j] = colstore.Build(name, vals, cfg.WithIndex)
		cols[j].Domain = domain
	}
	return colstore.NewTable("TBL", cols)
}

// syntheticColumn builds a column with realistic sizes but no data.
func syntheticColumn(name string, rows int, bc uint, withIndex bool) *colstore.Column {
	return colstore.NewSynthetic(name, rows, 1<<bc, withIndex)
}

// Chooser picks the column a client queries.
type Chooser interface {
	Pick(rng *rand.Rand, columns int) int
}

// UniformChoice picks any column with equal probability (Section 6.1).
type UniformChoice struct{}

// Pick implements Chooser.
func (UniformChoice) Pick(rng *rand.Rand, columns int) int { return rng.Intn(columns) }

// SkewedChoice implements the Section 6.2 skew: HotProb probability of
// choosing from the hot half of the columns. The paper gives clients an 80%
// probability of picking one of the last 80 of 160 columns.
type SkewedChoice struct {
	HotProb float64 // probability of the hot half (0.8 in the paper)
}

// Pick implements Chooser.
func (s SkewedChoice) Pick(rng *rand.Rand, columns int) int {
	half := columns / 2
	if rng.Float64() < s.HotProb {
		return half + rng.Intn(columns-half) // hot: second half
	}
	return rng.Intn(half) // cold: first half
}

// HotColumnChoice concentrates the workload on a single column: with
// probability P a client queries column Hot, otherwise a uniformly random
// column. This is the read-hot single-item skew that the adaptive
// replication experiment uses — one column dominates its socket, so the
// Section 7 placer must partition or replicate it rather than move it.
type HotColumnChoice struct {
	Hot int     // index of the hot column
	P   float64 // probability of querying it
}

// Pick implements Chooser.
func (h HotColumnChoice) Pick(rng *rand.Rand, columns int) int {
	if rng.Float64() < h.P {
		return h.Hot % columns
	}
	return rng.Intn(columns)
}

// FixedColumnChoice always picks the same column — the same-column hot-scan
// mix of the shared-scan experiment, where every client hammers one
// read-hot column and cohorts can merge all concurrent passes.
type FixedColumnChoice struct {
	// Col is the index of the column every client queries.
	Col int
}

// Pick implements Chooser.
func (f FixedColumnChoice) Pick(_ *rand.Rand, columns int) int { return f.Col % columns }

// ClientsConfig configures the closed-loop client population.
type ClientsConfig struct {
	N           int
	Selectivity float64
	UseIndex    bool
	Parallel    bool
	Strategy    core.Strategy
	Chooser     Chooser
	Seed        int64
	// Tenant tags every query with an admission tenant (relevant only when
	// the engine runs with an admission controller).
	Tenant string
}

// Clients drives N closed-loop clients: each client issues a query and, on
// completion, immediately issues the next (no think time, no result fetch —
// exactly the paper's harness).
type Clients struct {
	cfg     ClientsConfig
	engine  *core.Engine
	table   *colstore.Table
	columns []string
	rng     *rand.Rand
	stopped bool

	// Issued counts queries submitted; the metrics package counts
	// completions.
	Issued uint64
}

// NewClients creates the client population over the given (placed) table.
func NewClients(e *core.Engine, table *colstore.Table, cfg ClientsConfig) *Clients {
	if cfg.Chooser == nil {
		cfg.Chooser = UniformChoice{}
	}
	c := &Clients{
		cfg:     cfg,
		engine:  e,
		table:   table,
		columns: table.ColumnNames(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	return c
}

// Start admits all clients (the paper makes sure all clients are admitted
// before measuring).
func (c *Clients) Start() {
	for i := 0; i < c.cfg.N; i++ {
		c.issue(i)
	}
}

// Stop prevents clients from issuing further queries.
func (c *Clients) Stop() { c.stopped = true }

func (c *Clients) issue(client int) {
	if c.stopped {
		return
	}
	c.Issued++
	col := c.columns[c.cfg.Chooser.Pick(c.rng, len(c.columns))]
	c.engine.Submit(&core.Query{
		Table:       c.table,
		Column:      col,
		Selectivity: c.cfg.Selectivity,
		UseIndex:    c.cfg.UseIndex,
		Parallel:    c.cfg.Parallel,
		Strategy:    c.cfg.Strategy,
		HomeSocket:  client % c.engine.Machine.Sockets,
		Tenant:      c.cfg.Tenant,
		OnDone:      func(float64) { c.issue(client) },
		OnShed:      func() { c.issue(client) },
	})
}

// WritersConfig is the workload's write-mix knob: a population of writing
// clients issuing inserts and updates against chosen columns at a configured
// aggregate rate, opening the mixed read/write scenarios the paper's Section
// 7 update-rate concerns (replication priced out by writes, merge pressure)
// need to actually fire.
type WritersConfig struct {
	// Rate is the aggregate write rate in rows per virtual second.
	Rate float64
	// UpdateFraction is the fraction of writes that update an existing main
	// row (the rest insert new rows, growing the column at the next merge).
	UpdateFraction float64
	// Chooser picks the column each write targets (UniformChoice when nil).
	Chooser Chooser
	// Sockets lists the sockets the writing clients run on — each write
	// appends to the delta fragment of a uniformly chosen listed socket.
	// Empty means all sockets. Pinning writers (e.g. Sockets: []int{0})
	// concentrates the delta on one memory controller, the layout where
	// delta growth degrades scans of a same-socket column most directly.
	Sockets []int
	// Start and Stop bound the active virtual-time window; Stop <= 0 means
	// "never stop". Both default to zero (writers active from the start).
	Start, Stop float64
	// Seed drives the writers' private RNG (column, socket, row, value
	// choices) — independent of the scan clients' stream, so attaching
	// writers never perturbs a fixed-seed read workload's RNG draws.
	Seed int64
	// Tenant routes each tick's write batch through the engine's admission
	// controller (when enabled) as a short Interactive-class statement of
	// this tenant: the batch's mutations are deferred until admitted, and
	// the Interactive deadline can shed the whole batch. Empty keeps the
	// direct-apply path.
	Tenant string
}

// Writers drives the write mix as a simulation actor: each tick it applies
// the accrued number of writes to the per-socket delta fragments of the
// chosen columns (each write lands on a uniformly chosen writing-client
// socket) and issues one batched write-traffic flow per touched fragment.
// Register it with engine.Sim.AddActor.
type Writers struct {
	cfg     WritersConfig
	engine  *core.Engine
	table   *colstore.Table
	columns []*colstore.Column
	rng     *rand.Rand
	carry   float64

	// Inserts and Updates count the writes applied so far; ShedBatches
	// counts admitted-path batches dropped by load shedding (per-batch
	// latency histograms live on the controller's tenant stats).
	Inserts     uint64
	Updates     uint64
	ShedBatches uint64
}

// NewWriters creates the writer population over a placed single-part table.
func NewWriters(e *core.Engine, table *colstore.Table, cfg WritersConfig) *Writers {
	if table.NumParts() != 1 {
		panic("workload: writers need a single-part table (delta + PP is out of scope)")
	}
	if cfg.Chooser == nil {
		cfg.Chooser = UniformChoice{}
	}
	return &Writers{
		cfg:     cfg,
		engine:  e,
		table:   table,
		columns: table.Parts[0].Columns,
		rng:     rand.New(rand.NewSource(cfg.Seed + 31)),
	}
}

// Tick implements sim.Actor: apply this step's writes and emit one batched
// traffic flow per (column, socket) fragment touched.
func (w *Writers) Tick(now float64) {
	if w.cfg.Rate <= 0 || now < w.cfg.Start || (w.cfg.Stop > 0 && now >= w.cfg.Stop) {
		return
	}
	w.carry += w.cfg.Rate * w.engine.Sim.StepLen()
	n := int(w.carry)
	if n == 0 {
		return
	}
	w.carry -= float64(n)
	sockets := w.cfg.Sockets
	if len(sockets) == 0 {
		sockets = make([]int, w.engine.Machine.Sockets)
		for i := range sockets {
			sockets[i] = i
		}
	}
	// Plan this step's writes up front (all RNG draws happen here, so the
	// admitted path consumes the identical random stream as direct apply).
	type write struct {
		col    *colstore.Column
		socket int
		row    int // -1 for inserts
		v      int64
	}
	type batchKey struct {
		col    *colstore.Column
		socket int
	}
	writes := make([]write, 0, n)
	batch := make(map[batchKey]int)
	for i := 0; i < n; i++ {
		col := w.columns[w.cfg.Chooser.Pick(w.rng, len(w.columns))]
		socket := sockets[w.rng.Intn(len(sockets))]
		domain := col.Domain
		if domain <= 0 {
			domain = int64(col.NumDistinct())
			if domain <= 0 {
				domain = 1
			}
		}
		v := w.rng.Int63n(domain)
		row := -1
		if w.rng.Float64() < w.cfg.UpdateFraction {
			row = w.rng.Intn(col.Rows)
		}
		writes = append(writes, write{col, socket, row, v})
		batch[batchKey{col, socket}]++
	}
	// apply performs the mutations and starts one batched traffic flow per
	// touched (column, socket) fragment, in deterministic order; done fires
	// when the last flow drains.
	apply := func(done func()) {
		for _, wr := range writes {
			if wr.row >= 0 {
				w.engine.ApplyUpdate(wr.col, wr.socket, wr.row, wr.v)
				w.Updates++
			} else {
				w.engine.ApplyInsert(wr.col, wr.socket, wr.v)
				w.Inserts++
			}
		}
		outstanding := 0
		for _, rows := range batch {
			if rows > 0 {
				outstanding++
			}
		}
		oneDone := func() {
			outstanding--
			if outstanding == 0 {
				done()
			}
		}
		for _, col := range w.columns {
			for s := 0; s < w.engine.Machine.Sockets; s++ {
				if rows := batch[batchKey{col, s}]; rows > 0 {
					w.engine.AddWriteTrafficDone(col, s, rows, oneDone)
				}
			}
		}
	}
	if w.cfg.Tenant != "" && w.engine.Admit != nil {
		w.engine.SubmitWrite(w.cfg.Tenant, func() { w.ShedBatches++ }, apply)
		return
	}
	apply(func() {})
}
