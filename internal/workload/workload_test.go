package workload

import (
	"math/rand"
	"testing"

	"numacs/internal/core"
	"numacs/internal/topology"
)

// TestWritersRateMixAndWindow: the write-mix actor must apply writes at the
// configured aggregate rate, honor the insert/update fraction and the
// active-window bounds, and land appends in the per-socket delta fragments
// of the chosen columns.
func TestWritersRateMixAndWindow(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := core.NewWithStep(m, 1, 20e-6)
	tbl := Generate(DatasetConfig{Rows: 10_000, Columns: 4, BitcaseMin: 10, BitcaseMax: 13, Seed: 1, Synthetic: true})
	e.Placer.PlaceRR(tbl)
	w := NewWriters(e, tbl, WritersConfig{
		Rate: 100_000, UpdateFraction: 0.25,
		Chooser: HotColumnChoice{Hot: 1, P: 1},
		Start:   0.01, Stop: 0.03, Seed: 3,
	})
	e.Sim.AddActor(w)
	e.Sim.Run(0.05)

	applied := w.Inserts + w.Updates
	want := uint64(100_000 * 0.02) // active for 20ms
	if applied < want*99/100 || applied > want*101/100 {
		t.Fatalf("applied %d writes, want ~%d (rate x active window)", applied, want)
	}
	frac := float64(w.Updates) / float64(applied)
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("update fraction %.3f, want ~0.25", frac)
	}
	col := tbl.Parts[0].Columns[1]
	if col.Delta == nil || uint64(col.Delta.Rows()) != applied {
		t.Fatalf("delta rows %d != applied %d", col.DeltaRows(), applied)
	}
	for _, other := range []int{0, 2, 3} {
		if tbl.Parts[0].Columns[other].Delta != nil {
			t.Fatalf("column %d was never chosen but has a delta", other)
		}
	}
	// Appends spread across every socket's fragment by default.
	for s := 0; s < m.Sockets; s++ {
		if col.Delta.Fragment(s).Committed() == 0 {
			t.Fatalf("socket %d fragment empty", s)
		}
		if col.Delta.Fragment(s).Range.Bytes == 0 {
			t.Fatalf("socket %d fragment has no simulated allocation", s)
		}
	}
	// Write traffic reached the item-traffic accounting as write bytes.
	it := e.ItemTraffic()[col.Name]
	if it == nil || it.WriteBytes <= 0 {
		t.Fatalf("no write traffic attributed: %+v", it)
	}
}

// TestWritersPinnedSockets: with Sockets configured, every append lands on a
// listed socket's fragment.
func TestWritersPinnedSockets(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := core.NewWithStep(m, 1, 20e-6)
	tbl := Generate(DatasetConfig{Rows: 10_000, Columns: 2, BitcaseMin: 10, BitcaseMax: 11, Seed: 1, Synthetic: true})
	e.Placer.PlaceRR(tbl)
	w := NewWriters(e, tbl, WritersConfig{
		Rate: 50_000, Chooser: HotColumnChoice{Hot: 0, P: 1}, Sockets: []int{2}, Seed: 3,
	})
	e.Sim.AddActor(w)
	e.Sim.Run(0.02)

	col := tbl.Parts[0].Columns[0]
	if col.Delta == nil || col.Delta.Rows() == 0 {
		t.Fatal("no writes applied")
	}
	for s := 0; s < m.Sockets; s++ {
		n := col.Delta.Fragment(s).Committed()
		if s == 2 && n == 0 {
			t.Fatal("pinned socket fragment empty")
		}
		if s != 2 && n != 0 {
			t.Fatalf("socket %d fragment has %d rows despite pinning", s, n)
		}
	}
}

func TestGenerateRealDataset(t *testing.T) {
	cfg := DatasetConfig{Rows: 5000, Columns: 10, BitcaseMin: 8, BitcaseMax: 12, Seed: 1}
	tbl := Generate(cfg)
	if tbl.Rows != 5000 || len(tbl.Parts[0].Columns) != 10 {
		t.Fatalf("shape: rows=%d cols=%d", tbl.Rows, len(tbl.Parts[0].Columns))
	}
	// Bitcases cycle; dictionary-minimal bitcase never exceeds the domain's.
	for j, c := range tbl.Parts[0].Columns {
		want := cfg.BitcaseMin + uint(j%5)
		if c.Bitcase > want {
			t.Fatalf("column %d bitcase %d exceeds domain bitcase %d", j, c.Bitcase, want)
		}
		if c.Rows != 5000 {
			t.Fatalf("column %d rows = %d", j, c.Rows)
		}
		// Values in domain.
		for r := 0; r < 100; r++ {
			if v := c.Value(r); v < 0 || v >= 1<<want {
				t.Fatalf("column %d value %d out of domain", j, v)
			}
		}
	}
}

func TestGenerateSyntheticMatchesRealSizes(t *testing.T) {
	real := Generate(DatasetConfig{Rows: 20000, Columns: 4, BitcaseMin: 10, BitcaseMax: 13, Seed: 1})
	synth := Generate(DatasetConfig{Rows: 20000, Columns: 4, BitcaseMin: 10, BitcaseMax: 13, Seed: 1, Synthetic: true})
	for j := range real.Parts[0].Columns {
		r, s := real.Parts[0].Columns[j], synth.Parts[0].Columns[j]
		if s.Bitcase != r.Bitcase {
			t.Errorf("column %d: synthetic bitcase %d, real %d", j, s.Bitcase, r.Bitcase)
		}
		// Dictionary sizes should agree within a few percent (expected vs
		// realized distinct count).
		rd, sd := float64(r.NumDistinct()), float64(s.NumDistinct())
		if sd < rd*0.95 || sd > rd*1.05 {
			t.Errorf("column %d: synthetic distinct %v, real %v", j, sd, rd)
		}
		if !s.Synthetic {
			t.Error("synthetic flag not set")
		}
	}
}

func TestGenerateWithIndex(t *testing.T) {
	tbl := Generate(DatasetConfig{Rows: 2000, Columns: 2, BitcaseMin: 8, BitcaseMax: 8, Seed: 2, WithIndex: true})
	for _, c := range tbl.Parts[0].Columns {
		if c.Idx == nil {
			t.Fatal("index missing")
		}
	}
}

func TestExpectedDistinct(t *testing.T) {
	if got := ExpectedDistinct(1000, 10); got != 10 {
		t.Fatalf("large n small domain: %d", got)
	}
	if got := ExpectedDistinct(10, 1<<30); got != 10 {
		t.Fatalf("huge domain: %d", got)
	}
	if got := ExpectedDistinct(100, 0); got != 1 {
		t.Fatalf("degenerate domain: %d", got)
	}
	mid := ExpectedDistinct(1000, 1000)
	if mid <= 500 || mid >= 1000 {
		t.Fatalf("n==d should land around 632, got %d", mid)
	}
}

func TestUniformChoiceCoversColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		c := (UniformChoice{}).Pick(rng, 8)
		if c < 0 || c >= 8 {
			t.Fatalf("pick out of range: %d", c)
		}
		seen[c] = true
	}
	if len(seen) != 8 {
		t.Fatalf("uniform chooser covered %d of 8 columns", len(seen))
	}
}

func TestSkewedChoiceDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ch := SkewedChoice{HotProb: 0.8}
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if ch.Pick(rng, 16) >= 8 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.77 || frac > 0.83 {
		t.Fatalf("hot fraction = %.3f, want ~0.8", frac)
	}
}

func TestClientsClosedLoop(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	tbl := Generate(DatasetConfig{Rows: 30000, Columns: 8, BitcaseMin: 10, BitcaseMax: 14, Seed: 1, Synthetic: true})
	e.Placer.PlaceRR(tbl)
	c := NewClients(e, tbl, ClientsConfig{
		N: 16, Selectivity: 0.001, Parallel: true, Strategy: core.Bound, Seed: 3,
	})
	c.Start()
	if c.Issued != 16 {
		t.Fatalf("issued %d, want 16 on start", c.Issued)
	}
	e.Sim.Run(0.05)
	if e.Counters.QueriesDone == 0 {
		t.Fatal("no queries completed")
	}
	// Closed loop: completions trigger re-issues.
	if c.Issued <= 16 {
		t.Fatalf("closed loop did not re-issue: issued=%d done=%d", c.Issued, e.Counters.QueriesDone)
	}
	// In-flight = issued - done = N (every client always has one query out).
	if int(c.Issued)-int(e.Counters.QueriesDone) != 16 {
		t.Fatalf("in-flight = %d, want 16", int(c.Issued)-int(e.Counters.QueriesDone))
	}
	c.Stop()
	done := e.Counters.QueriesDone
	issued := c.Issued
	e.Sim.Run(0.1)
	if c.Issued != issued {
		t.Fatal("Stop did not stop issuing")
	}
	_ = done
}
