package workload

import (
	"testing"

	"numacs/internal/admit"
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/topology"
)

// mtEngine builds a placed engine + table for generator tests.
func mtEngine(t *testing.T) (*core.Engine, *colstore.Table) {
	t.Helper()
	m := topology.FourSocketIvyBridge()
	e := core.NewWithStep(m, 1, 25e-6)
	tbl := Generate(DatasetConfig{Rows: 20_000, Columns: 8, BitcaseMin: 10, BitcaseMax: 13, Seed: 1, Synthetic: true})
	e.Placer.PlaceRR(tbl)
	return e, tbl
}

// TestOpenLoopRate: open-loop arrivals track the configured rate regardless
// of completions.
func TestOpenLoopRate(t *testing.T) {
	e, tbl := mtEngine(t)
	g := NewMultiTenant(e, tbl, MultiTenantConfig{
		Tenants: []TenantLoad{{
			Name: "ol", Rate: 50_000, Selectivity: 1e-5, Parallel: true, Strategy: core.Bound,
		}},
		Seed: 1,
	})
	e.Sim.AddActor(g)
	g.Start()
	e.Sim.Run(0.02)
	got := g.Stats()[0].Issued
	want := uint64(50_000 * 0.02)
	if got < want-2 || got > want+2 {
		t.Fatalf("issued %d, want ~%d (rate x horizon)", got, want)
	}
	if g.Stats()[0].Completed == 0 || g.Stats()[0].Lat.N() == 0 {
		t.Fatal("no completions/latency samples recorded")
	}
}

// TestOpenLoopBurst: the burst window multiplies the arrival rate.
func TestOpenLoopBurst(t *testing.T) {
	e, tbl := mtEngine(t)
	g := NewMultiTenant(e, tbl, MultiTenantConfig{
		Tenants: []TenantLoad{{
			Name: "bursty", Rate: 20_000, Selectivity: 1e-5, Parallel: true,
			// Bursting the second half of every 10ms at 3x: over 20ms the
			// mean rate is 2x the base.
			Burst: BurstSpec{Period: 10e-3, Duration: 5e-3, Factor: 3, Phase: 5e-3},
		}},
		Seed: 1,
	})
	e.Sim.AddActor(g)
	g.Start()
	e.Sim.Run(0.02)
	got := g.Stats()[0].Issued
	want := uint64(2 * 20_000 * 0.02)
	if got < want*95/100 || got > want*105/100 {
		t.Fatalf("issued %d with bursts, want ~%d (2x mean rate)", got, want)
	}
}

// TestClosedLoopThinkTime: a single closed-loop client with a think time far
// above the service time issues ~horizon/think statements.
func TestClosedLoopThinkTime(t *testing.T) {
	e, tbl := mtEngine(t)
	g := NewMultiTenant(e, tbl, MultiTenantConfig{
		Tenants: []TenantLoad{{
			Name: "cl", Clients: 1, ThinkTime: 2e-3,
			Selectivity: 1e-5, Parallel: true, Strategy: core.Bound,
		}},
		Seed: 1,
	})
	e.Sim.AddActor(g)
	g.Start()
	e.Sim.Run(0.02)
	got := g.Stats()[0].Issued
	// 20ms / (2ms think + ~sub-ms service): between 5 and 10 issues.
	if got < 5 || got > 10 {
		t.Fatalf("closed-loop client issued %d, want 5..10 with a 2ms think time", got)
	}
}

// TestShedPropagatesToTenantStats: with admission enabled and an absurd
// overload against a one-statement limit, shed statements surface in the
// generator's per-tenant stats, and shed closed-loop clients rearm.
func TestShedPropagatesToTenantStats(t *testing.T) {
	e, tbl := mtEngine(t)
	e.EnableAdmission(admit.Config{
		MinConcurrent: 1, MaxConcurrent: 1, InitialConcurrent: 1,
		OLAPDeadline: 1e-4,
	})
	g := NewMultiTenant(e, tbl, MultiTenantConfig{
		Tenants: []TenantLoad{{
			Name: "ol", Rate: 200_000, Selectivity: 1e-5, Parallel: true, Strategy: core.Bound,
		}},
		Seed: 1,
	})
	e.Sim.AddActor(g)
	g.Start()
	e.Sim.Run(0.01)
	st := g.Stats()[0]
	if st.Shed == 0 {
		t.Fatal("no statements shed under 1-slot admission with a tight deadline")
	}
	if st.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if st.Shed+st.Completed > st.Issued {
		t.Fatalf("shed %d + completed %d > issued %d", st.Shed, st.Completed, st.Issued)
	}
	ctrl := e.Admit.Stats("ol")
	if ctrl.Shed != st.Shed {
		t.Fatalf("controller shed %d != generator shed %d", ctrl.Shed, st.Shed)
	}
}

// TestWritersRouteThroughAdmission: a writer tenant's batches run as
// Interactive statements — deferred until admitted, shed under a hopeless
// deadline.
func TestWritersRouteThroughAdmission(t *testing.T) {
	e, tbl := mtEngine(t)
	e.EnableAdmission(admit.Config{
		MinConcurrent: 1, MaxConcurrent: 1, InitialConcurrent: 1,
		InteractiveDeadline: 1e-9, // hopeless: everything queued sheds
	})
	// Occupy the only slot forever so every write batch queues, expires, and
	// sheds before applying.
	e.Admit.Submit(&admit.Statement{Tenant: "blocker",
		Run: func(gran int, at float64, done func()) {}})
	w := NewWriters(e, tbl, WritersConfig{
		Rate: 50_000, Tenant: "writer", Seed: 3,
	})
	e.Sim.AddActor(w)
	e.Sim.Run(0.01)
	if w.Inserts+w.Updates != 0 {
		t.Fatalf("%d writes applied despite shedding every batch", w.Inserts+w.Updates)
	}
	if w.ShedBatches == 0 {
		t.Fatal("no batches shed")
	}
	if tbl.Parts[0].Columns[0].Delta != nil && tbl.Parts[0].Columns[0].Delta.Rows() != 0 {
		t.Fatal("delta grew despite shed batches")
	}
}
