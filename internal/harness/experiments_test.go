package harness

import (
	"strings"
	"testing"

	"numacs/internal/core"
)

// TestAllExperimentsRunAndRender executes every registered experiment at
// quick scale: each must produce at least one non-empty table and render.
func TestAllExperimentsRunAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	sc := QuickScale()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(sc)
			if rep.ID != e.ID {
				t.Fatalf("report id %q != %q", rep.ID, e.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range rep.Tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q empty", tb.Name)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("table %q row width %d != header %d", tb.Name, len(row), len(tb.Header))
					}
				}
			}
			out := rep.Render()
			if !strings.Contains(out, e.ID) {
				t.Fatal("render missing id")
			}
		})
	}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"table1", "fig1", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"table2", "psmsize", "repart", "adaptive", "adaptive-repl", "delta-merge",
		"admission", "shared-scan", "starjoin",
		"chaos-socket", "chaos-thermal", "chaos-antagonist", "chaos-writestorm",
		"chaos-burst", "planner"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestTable1Calibration(t *testing.T) {
	rep, _ := ByID("table1")
	out := rep.Run(QuickScale()).Render()
	// Table 1 anchors (see the paper): exact latencies and the calibrated
	// bandwidths, including the Westmere broadcast cap.
	for _, anchor := range []string{
		"150 ns", "240 ns", "112 ns", "193 ns", "500 ns", "163 ns", "245 ns",
		"65.0 GiB/s", "47.5 GiB/s", "19.3 GiB/s",
		"8.8 GiB/s", "11.8 GiB/s", "9.8 GiB/s",
		"260.0 GiB/s", "1520.0 GiB/s",
	} {
		if !strings.Contains(out, anchor) {
			t.Errorf("table1 missing %q:\n%s", anchor, out)
		}
	}
}

func TestFig1NUMAAwareWins(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test")
	}
	rep := mustRun(t, "fig1")
	agnostic, aware := 0.0, 0.0
	for _, r := range filterMax(rep.Results, QuickScale().Max) {
		if r.Spec.Strategy == core.OSched {
			agnostic = r.QPM
		} else {
			aware = r.QPM
		}
	}
	// The full-scale gap is ~5x (see EXPERIMENTS.md); at quick scale the
	// tiny per-query scans dilute it.
	if aware < 2.0*agnostic {
		t.Errorf("NUMA-aware %.0f should be >=2x agnostic %.0f", aware, agnostic)
	}
}

func TestFig11LatencyFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test")
	}
	rep := mustRun(t, "fig11")
	cov := map[string]float64{}
	for _, r := range rep.Results {
		cov[r.Spec.Placement.String()] = r.Latency.CoeffOfVariation
	}
	// Figure 11: RR is unfair (high variance), the partitioned placements
	// are fair.
	if cov["RR"] <= cov["IVP4"] || cov["RR"] <= cov["PP4"] {
		t.Errorf("RR CoV %.2f should exceed IVP %.2f and PP %.2f", cov["RR"], cov["IVP4"], cov["PP4"])
	}
}

func TestFig14ThroughputDropsWithSelectivity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test")
	}
	rep := mustRun(t, "fig14")
	prev := 0.0
	for i, r := range rep.Results {
		// Non-increasing; at quick scale the tiny index-path cells can tie
		// (they are all bounded by per-query overhead, as in the paper's
		// flat low-selectivity region).
		if i > 0 && r.QPM > prev*1.02 {
			t.Errorf("TP should not rise with selectivity: %.0f then %.0f at %g",
				prev, r.QPM, r.Spec.Selectivity)
		}
		prev = r.QPM
	}
	// The index path at the lowest selectivity must clearly beat the
	// scan/materialization path at the highest.
	if rep.Results[0].QPM < 2.5*rep.Results[len(rep.Results)-1].QPM {
		t.Errorf("selectivity sweep spread too small: %.0f vs %.0f",
			rep.Results[0].QPM, rep.Results[len(rep.Results)-1].QPM)
	}
}

func TestPSMSizeExperimentMatchesPaper(t *testing.T) {
	rep := mustRun(t, "psmsize")
	out := rep.Render()
	// Section 4.3: ~3 KiB whole-socket, ~5 KiB IVP (the build may coalesce a
	// couple of ranges differently), ~102 KiB PP.
	if !strings.Contains(out, "3.2") && !strings.Contains(out, "3.1") {
		t.Errorf("whole-socket PSM size missing:\n%s", out)
	}
	if !strings.Contains(out, "101.6") && !strings.Contains(out, "102") {
		t.Errorf("PP PSM size missing:\n%s", out)
	}
}

func TestRepartExperimentRatio(t *testing.T) {
	rep := mustRun(t, "repart")
	out := rep.Render()
	if !strings.Contains(out, "IVP (move pages)") || !strings.Contains(out, "PP (rebuild columns)") {
		t.Fatalf("repart rows missing:\n%s", out)
	}
	// PP must be reported as several times slower.
	if !strings.Contains(out, "x") {
		t.Fatalf("relative cost missing:\n%s", out)
	}
}

func mustRun(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	return e.Run(QuickScale())
}
