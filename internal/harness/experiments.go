package harness

import (
	"fmt"
	"sort"

	"numacs/internal/core"
)

// Scale sizes the experiments. Full scale regenerates the paper's figures;
// Quick scale keeps unit tests fast.
type Scale struct {
	Name    string
	Rows    int // dataset rows on the 4/8-socket machines
	Rows32  int // dataset rows on the 16/32-socket machines
	Warmup  float64
	Measure float64
	Step    float64 // simulator step for 4/8-socket machines
	Step32  float64 // simulator step for 16/32-socket machines
	Clients []int   // concurrency sweep
	Max     int     // the "1024 concurrent clients" analysis point
}

// FullScale is the default used by cmd/scanbench and the root benchmarks.
func FullScale() Scale {
	return Scale{
		Name: "full", Rows: 200_000, Rows32: 200_000,
		Warmup: 0.05, Measure: 0.2,
		Step: 5e-6, Step32: 50e-6,
		Clients: []int{1, 4, 16, 64, 256, 1024}, Max: 1024,
	}
}

// QuickScale shrinks everything for unit tests.
func QuickScale() Scale {
	return Scale{
		Name: "quick", Rows: 60_000, Rows32: 60_000,
		Warmup: 0.02, Measure: 0.08,
		Step: 25e-6, Step32: 100e-6,
		Clients: []int{16, 256}, Max: 256,
	}
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(Scale) *Report
	// Explain, when non-nil, renders the experiment's workload through the
	// planner as stable EXPLAIN text (logical and optimized physical plans on
	// a fixed fixture schema) — the plan-golden CI gate diffs it against
	// testdata/plans/<id>.txt.
	Explain func() string
}

// All returns every experiment in paper order.
func All() []Experiment { return registry }

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

func init() {
	register(Experiment{ID: "table1", Title: "Latencies and peak bandwidths of the three servers",
		Description: "Paper Table 1: idle latencies and MLC-style streaming bandwidths, measured on the simulated machines.",
		Run:         runTable1})
	register(Experiment{ID: "fig1", Title: "Impact of NUMA (NUMA-agnostic vs NUMA-aware)",
		Description: "Paper Figure 1: throughput vs concurrency for OS vs Bound with RR-placed columns, and per-socket memory throughput at peak concurrency.",
		Run:         runFig1})
	register(Experiment{ID: "fig8", Title: "Impact of scheduling (OS/Target/Bound, RR, uniform)",
		Description: "Paper Figure 8: throughput and performance metrics for the three scheduling strategies on the 4-socket machine.",
		Run:         runFig8})
	register(Experiment{ID: "fig9", Title: "Impact of the cache coherence protocol (8-socket Westmere)",
		Description: "Paper Figure 9: same as Figure 8 on the broadcast-snoop machine; the NUMA-aware gain shrinks to ~2x.",
		Run:         runFig9})
	register(Experiment{ID: "fig10", Title: "Impact of intra-query parallelism and data placement",
		Description: "Paper Figure 10: RR/IVP/PP with parallelism disabled and enabled.",
		Run:         runFig10})
	register(Experiment{ID: "fig11", Title: "Query latency distributions (RR vs IVP vs PP)",
		Description: "Paper Figure 11 (violin plots rendered as percentiles): RR is unfair, partitioned placements are fair.",
		Run:         runFig11})
	register(Experiment{ID: "fig12", Title: "Impact of scale: partitioning granularity on 32 sockets",
		Description: "Paper Figure 12: scheduling strategies x IVP granularities at peak concurrency; unnecessary partitioning loses up to ~70%, Target loses up to ~58% vs Bound.",
		Run:         runFig12})
	register(Experiment{ID: "fig13", Title: "Concurrency sweep of partitioning granularities (32 sockets)",
		Description: "Paper Figure 13: partitioning wins at low concurrency, RR at high concurrency.",
		Run:         runFig13})
	register(Experiment{ID: "fig14", Title: "Impact of selectivity (with indexes)",
		Description: "Paper Figure 14: selectivity sweep 0.001%..10%; the optimizer switches from index lookups to scans and the critical path shifts CPU->memory->CPU.",
		Run:         runFig14})
	register(Experiment{ID: "fig15", Title: "Skewed workload: impact of stealing memory-intensive tasks",
		Description: "Paper Figure 15: with RR placement and an 80/20 skew, Target loses throughput vs Bound despite higher CPU load.",
		Run:         runFig15})
	register(Experiment{ID: "fig16", Title: "Skewed workload: impact of partitioning",
		Description: "Paper Figure 16: IVP and PP smooth out the skew and recover the uniform-workload throughput.",
		Run:         runFig16})
	register(Experiment{ID: "fig17", Title: "Skewed workload at high selectivity: partitioning type",
		Description: "Paper Figure 17: at 10% selectivity execution is materialization-dominated; PP (local dictionaries) beats IVP (interleaved dictionaries).",
		Run:         runFig17})
	register(Experiment{ID: "fig18", Title: "Skewed, high selectivity, with stealing (Target)",
		Description: "Paper Figure 18: stealing CPU-intensive tasks helps RR reach IVP throughput; PP stays best.",
		Run:         runFig18})
	register(Experiment{ID: "fig19", Title: "TPC-H Q1 and BW-EML style workloads (16 sockets)",
		Description: "Paper Figure 19: PP granularities x Target/Bound; CPU-intensive Q1 favours Target, memory-intensive BW-EML favours Bound; throughput normalized to the best observed.",
		Run:         runFig19})
	register(Experiment{ID: "table2", Title: "Placement property matrix",
		Description: "Paper Table 2: workload properties fitted by each placement, with the measured evidence from the other experiments.",
		Run:         runTable2})
	register(Experiment{ID: "psmsize", Title: "PSM metadata sizes (Section 4.3)",
		Description: "Metadata size of a column's PSMs on a 32-socket machine for whole-socket, IVP, and PP placements.",
		Run:         runPSMSize})
	register(Experiment{ID: "repart", Title: "Repartitioning cost: IVP vs PP (Section 6.2.3)",
		Description: "IVP moves pages; PP rebuilds columns and duplicates dictionary values.",
		Run:         runRepart})
	register(Experiment{ID: "adaptive", Title: "Adaptive data placement (Section 7)",
		Description: "A skewed workload on RR placement, static vs with the adaptive data placer balancing socket utilization.",
		Run:         runAdaptive})
	register(Experiment{ID: "adaptive-repl", Title: "Adaptive replication of read-hot columns (Sections 4.2 + 7)",
		Description: "A read-hot single-column skew of unparallelized scans, balanced by the adaptive placer with and without the replication lever: moving only relocates the hotspot and partitioning forces single-task scans remote (Figure 10), while a replica on every socket serves each scan locally; throughput and QPI traffic tracked over virtual time.",
		Run:         runAdaptiveRepl})
	register(Experiment{ID: "delta-merge", Title: "Delta-store write path: append, scan degradation, merge, recovery (Sections 2 + 7)",
		Description: "Mixed read/write skew on the main/delta architecture: an update-heavy write mix grows a hot column's uncompressed per-socket delta until scans degrade, the write-aware placer fires a background merge that rebuilds the main and restores throughput, and the write-guard reclaims the replicas of a column that turned write-hot.",
		Run:         runDeltaMerge})
	register(Experiment{ID: "admission", Title: "Statement admission control and elastic concurrency (front-end QoS)",
		Description: "Multi-tenant open-loop overload at >2x engine capacity (greedy, bursty, well-behaved, and writer tenants): weighted-fair admission, saturation-driven elastic concurrency and task granularity, and per-class deadline shedding keep p99 bounded and goodput near the weight shares, while the queues-only engine grows its backlog and tail without bound.",
		Run:         runAdmission})
	register(Experiment{ID: "shared-scan", Title: "Shared scan cohorts: one memory pass for N concurrent scans",
		Description: "A same-column hot-scan mix on the 4-socket machine with the cohort layer on vs off: concurrent scans of one column merge into cohorts (bounded join window, ClockScan-style mid-flight attach) that stream the column once and evaluate all member predicates per chunk, cutting physical MC bytes per statement while every statement keeps its logical traffic and truthful latency.",
		Run:         runSharedScan})
	register(Experiment{ID: "chaos-socket", Title: "Chaos: socket failure and return under the adaptive placer",
		Description: "Fault injection: socket 1 goes offline mid-run (queued tasks drained and re-placed, workers parked, replicas invalidated) and returns three windows later; graceful-degradation invariants bound the throughput dip, require recovery, and demand forward progress in every window.",
		Run:         runChaosSocket})
	register(Experiment{ID: "chaos-thermal", Title: "Chaos: memory-controller thermal throttling",
		Description: "Fault injection: the serving socket's MC throttles to 30% of nominal for three windows under an MC-bound scan mix; throughput must track the capacity loss without collapsing and return to baseline when the throttle lifts.",
		Run:         runChaosThermal})
	register(Experiment{ID: "chaos-antagonist", Title: "Chaos: antagonist tenant thrashing column heat",
		Description: "Adversarial traffic: an antagonist tenant rotates its hot column every window to defeat the adaptive placer's replication; weighted-fair admission must preserve the victim tenant's goodput and the placer's churn must stay bounded.",
		Run:         runChaosAntagonist})
	register(Experiment{ID: "chaos-writestorm", Title: "Chaos: write storm racing background merges under shared scans",
		Description: "Adversarial traffic: a socket-0 write storm floods the shared-scanned column's delta mid-run, forcing a background merge to race live cohort passes; the race must resolve without stalling and throughput must recover after the storm.",
		Run:         runChaosWriteStorm})
	register(Experiment{ID: "chaos-burst", Title: "Chaos: arrival bursts at the shared-scan join-window boundary",
		Description: "Adversarial traffic: an open-loop tenant fires arrival spikes exactly one join window long at the shared column; the spikes must collapse into cohorts and the steady tenant's completion rate and p99 must survive.",
		Run:         runChaosBurst})
	register(Experiment{ID: "starjoin", Title: "Composed star-join statements (operator pipeline)",
		Description: "Scan -> join -> aggregate in one scheduled statement: strategies x hash-table placements on the 4-socket machine, enabled by the internal/exec operator-pipeline layer.",
		Run:         runStarJoin,
		Explain:     explainStarJoin})
	register(Experiment{ID: "planner", Title: "Plan-driven cohorts: batch planning vs arrival timing",
		Description: "A mixed multi-statement workload (shared-column scans + star joins) submitted either statement-by-statement (cohorts form from arrival timing alone) or as planned batches (common subplans detected at plan time feed the cohort registry directly); plan-driven grouping must form cohorts timing misses.",
		Run:         runPlanner,
		Explain:     explainPlanner})
}

// ---- shared sweep helpers ---------------------------------------------------

func (s Scale) spec4(k MachineKind) Spec {
	rows := s.Rows
	step := s.Step
	if k == ThirtyTwoSocket || k == SixteenSocket {
		rows = s.Rows32
		step = s.Step32
	}
	return Spec{
		Machine: k,
		Dataset: scaledDataset(k, rows, false),
		Warmup:  s.Warmup, Measure: s.Measure, Step: step,
		Parallel: true,
		Seed:     1,
	}
}

// lowSel is the memory-intensive scan selectivity used by most figures
// (paper: 0.001%).
const lowSel = 1e-5

// highSel is the materialization-dominated selectivity of Figures 17/18
// (paper: 10%).
const highSel = 0.10

func addMetricsTable(rep *Report, name string, results []Result, label func(Result) string) {
	tb := rep.AddTable(name, []string{"case", "TP(q/min)", "CPU", "tasks", "stolen",
		"LLC loc", "LLC rem", "memTP(GiB/s)", "IPC", "QPI(GiB)", "QPIdata(GiB)"})
	for _, r := range results {
		tb.AddRow(label(r), f0(r.QPM), pct(r.CPULoad), itoa(int(r.Tasks)), itoa(int(r.Stolen)),
			f0(r.LLCLocal), f0(r.LLCRemote), f1(r.MemTPTotal), f2(r.IPC),
			f1(r.QPITotalGiB), f1(r.QPIDataGiB))
	}
}

func perSocketRow(r Result) string {
	s := ""
	for i, v := range r.MemTP {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("S%d=%.1f", i+1, v)
	}
	return s
}

// combo pairs a placement with a scheduling strategy for a sweep.
type combo struct {
	p  PlacementSpec
	st core.Strategy
}

// sweepStrategies runs a clients sweep for each (placement, strategy) combo.
func sweepStrategies(base Spec, s Scale, combos []combo, sel float64, skew bool) []Result {
	var out []Result
	for _, c := range combos {
		for _, n := range s.Clients {
			spec := base
			spec.Placement = c.p
			spec.Strategy = c.st
			spec.Clients = n
			spec.Selectivity = sel
			spec.Skew = skew
			out = append(out, Run(spec))
		}
	}
	return out
}

func tpSweepTable(rep *Report, name string, results []Result, s Scale, label func(Result) string) {
	// Group results by label, columns by client count.
	header := []string{"case"}
	for _, n := range s.Clients {
		header = append(header, fmt.Sprintf("%dcl", n))
	}
	tb := rep.AddTable(name, header)
	byLabel := map[string][]Result{}
	var order []string
	for _, r := range results {
		l := label(r)
		if _, ok := byLabel[l]; !ok {
			order = append(order, l)
		}
		byLabel[l] = append(byLabel[l], r)
	}
	for _, l := range order {
		rs := byLabel[l]
		sort.Slice(rs, func(i, j int) bool { return rs[i].Spec.Clients < rs[j].Spec.Clients })
		row := []string{l}
		for _, r := range rs {
			row = append(row, f0(r.QPM))
		}
		tb.AddRow(row...)
	}
}

func filterMax(results []Result, max int) []Result {
	var out []Result
	for _, r := range results {
		if r.Spec.Clients == max {
			out = append(out, r)
		}
	}
	return out
}
