package harness

import (
	"fmt"

	"numacs/internal/adaptive"
	"numacs/internal/agg"
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/memsim"
	"numacs/internal/placement"
	"numacs/internal/psm"
	"numacs/internal/workload"
)

// runFig19 reproduces Figure 19: the TPC-H-Q1-style and BW-EML-style
// workloads on the 16-socket half of the rack-scale machine, across PP
// granularities and the Target/Bound strategies, normalized to the best
// observed throughput (the paper normalizes to undisclosed constants).
func runFig19(s Scale) *Report {
	rep := &Report{ID: "fig19", Title: "TPC-H Q1 and BW-EML style workloads, 16 sockets"}

	granularities := []int{1, 2, 4, 8, 16} // 1 = RR
	strategies := []core.Strategy{core.Target, core.Bound}

	runQ1 := func(gran int, st core.Strategy) float64 {
		e := core.NewWithStep(SixteenSocket.Build(), 1, s.Step32)
		table := agg.Q1Table(agg.Q1Config{Rows: s.Rows32, Seed: 1})
		if gran == 1 {
			e.Placer.PlaceTableOnSocket(table, 0)
		} else {
			table = e.Placer.PlacePP(table, gran)
		}
		clients := agg.NewQ1Clients(e, table, 32, st, 7)
		clients.Start()
		e.Sim.Run(s.Warmup)
		e.Counters.Reset()
		e.Sim.Run(s.Warmup + s.Measure)
		return e.Counters.ThroughputQPM(s.Measure)
	}
	runBWEML := func(gran int, st core.Strategy) float64 {
		e := core.NewWithStep(SixteenSocket.Build(), 1, s.Step32)
		cubes := agg.BWEMLCubes(agg.BWEMLConfig{RowsPerCube: s.Rows32, Seed: 1})
		for ci, cube := range cubes {
			if gran == 1 {
				e.Placer.PlaceTableOnSocket(cube, ci%e.Machine.Sockets)
				continue
			}
			pp := placePPAt(e.Placer, cube, gran, ci*gran)
			cubes[ci] = pp
		}
		clients := agg.NewBWEMLClients(e, cubes, 256, st, 7)
		clients.Start()
		e.Sim.Run(s.Warmup)
		e.Counters.Reset()
		e.Sim.Run(s.Warmup + s.Measure)
		return e.Counters.ThroughputQPM(s.Measure)
	}

	render := func(name string, run func(int, core.Strategy) float64) map[string]float64 {
		raw := map[string]float64{}
		max := 0.0
		for _, g := range granularities {
			for _, st := range strategies {
				v := run(g, st)
				raw[key19(g, st)] = v
				if v > max {
					max = v
				}
			}
		}
		tb := rep.AddTable(name, []string{"placement", "Target", "Bound"})
		for _, g := range granularities {
			label := "RR"
			if g > 1 {
				label = fmt.Sprintf("PP%d", g)
			}
			tb.AddRow(label,
				fmt.Sprintf("%.2f", raw[key19(g, core.Target)]/max),
				fmt.Sprintf("%.2f", raw[key19(g, core.Bound)]/max))
		}
		return raw
	}
	q1 := render("TPC-H Q1 instances (normalized to c1)", runQ1)
	bw := render("BW-EML reporting load (normalized to c2)", runBWEML)
	_ = q1
	_ = bw
	return rep
}

func key19(g int, st core.Strategy) string { return fmt.Sprintf("%d/%s", g, st) }

// placePPAt physically partitions a table and places part j on socket
// (offset+j) mod sockets, so multiple tables spread across disjoint socket
// ranges (the round-robin distribution of Section 6.3).
func placePPAt(p *placement.Placer, t *colstore.Table, parts, offset int) *colstore.Table {
	pp := t.PhysicallyPartition(parts)
	for j, part := range pp.Parts {
		socket := (offset + j) % p.Machine.Sockets
		part.HomeSocket = socket
		for _, c := range part.Columns {
			p.PlaceColumnOnSocket(c, socket)
		}
	}
	return pp
}

// runTable2 reproduces Table 2: the placement property matrix, with measured
// evidence gathered at reduced scale.
func runTable2(s Scale) *Report {
	rep := &Report{ID: "table2", Title: "Placement property matrix"}

	// Measured evidence: latency fairness (CoV) and throughput at the
	// analysis point, plus repartitioning cost and memory overhead.
	base := s.spec4(FourSocket)
	evidence := map[string]Result{}
	for _, p := range []PlacementSpec{{Kind: RR}, {Kind: IVP, Partitions: 4}, {Kind: PP, Partitions: 4}} {
		spec := base
		spec.Placement = p
		spec.Strategy = core.Bound
		spec.Clients = s.Max
		spec.Selectivity = lowSel
		evidence[p.String()] = Run(spec)
	}
	ds := workload.DatasetConfig{Rows: 40_000, Columns: 8, BitcaseMin: 8, BitcaseMax: 14, Seed: 3}
	real := workload.Generate(ds)
	ivpCost := placement.IVPCost(real)
	ppCost := placement.PPCost(real)
	ppTable := real.PhysicallyPartition(4)
	memOverhead := float64(ppTable.TotalBytes())/float64(real.TotalBytes()) - 1

	tb := rep.AddTable("", []string{"placement", "concurrency", "selectivities", "workload dist.",
		"latency CoV (meas.)", "memory consumed", "readjustment", "large-scale overhead"})
	tb.AddRow("RR", "High", "All", "Uniform",
		f2(evidence["RR"].Latency.CoeffOfVariation), "Normal", "Quick", "Low")
	tb.AddRow("IVP", "All", "Low (w/o index) & medium", "Uniform & skewed",
		f2(evidence["IVP4"].Latency.CoeffOfVariation), "Normal",
		fmt.Sprintf("Quick (%.2fs)", ivpCost), "High")
	tb.AddRow("PP", "All", "All", "Uniform & skewed",
		f2(evidence["PP4"].Latency.CoeffOfVariation),
		fmt.Sprintf("+%.0f%%", memOverhead*100),
		fmt.Sprintf("Slow (%.2fs)", ppCost), "High")
	return rep
}

// runPSMSize reproduces the Section 4.3 metadata-size analysis on a
// simulated 32-socket machine.
func runPSMSize(Scale) *Report {
	rep := &Report{ID: "psmsize", Title: "PSM metadata size for a column on 32 sockets"}
	tb := rep.AddTable("", []string{"placement", "IV ranges", "dict ranges", "IX ranges", "total KiB"})

	build := func(name string, f func(a *memsim.Allocator) (iv, dict, ix *psm.PSM, parts int)) {
		a := memsim.NewAllocator(32)
		iv, dict, ix, parts := f(a)
		bits := (iv.SizeBits() + dict.SizeBits() + ix.SizeBits()) * parts
		tb.AddRow(name, itoa(iv.NumRanges()*parts), itoa(dict.NumRanges()*parts),
			itoa(ix.NumRanges()*parts), fmt.Sprintf("%.1f", float64(bits)/8/1024))
	}
	const pages = 128
	build("whole on one socket", func(a *memsim.Allocator) (*psm.PSM, *psm.PSM, *psm.PSM, int) {
		iv := a.Alloc(pages*memsim.PageSize, memsim.OnSocket(0))
		dict := a.Alloc(pages*memsim.PageSize, memsim.OnSocket(0))
		ix1 := a.Alloc(pages*memsim.PageSize, memsim.OnSocket(0))
		ix2 := a.Alloc(pages*memsim.PageSize, memsim.OnSocket(0))
		return psm.Build(a, iv), psm.Build(a, dict), psm.Build(a, ix1, ix2), 1
	})
	all := make([]int, 32)
	for i := range all {
		all[i] = i
	}
	build("IVP across 32 sockets", func(a *memsim.Allocator) (*psm.PSM, *psm.PSM, *psm.PSM, int) {
		iv := a.Alloc(pages*memsim.PageSize, memsim.OnSocket(0))
		for i := 0; i < 32; i++ {
			a.MovePages(iv.Subrange(int64(i)*pages/32*memsim.PageSize, pages/32*memsim.PageSize), i)
		}
		dict := a.Alloc(pages*memsim.PageSize, memsim.Interleaved{Sockets: all})
		ix1 := a.Alloc(pages*memsim.PageSize, memsim.Interleaved{Sockets: all})
		ix2 := a.Alloc(pages*memsim.PageSize, memsim.Interleaved{Sockets: all})
		return psm.Build(a, iv), psm.Build(a, dict), psm.Build(a, ix1, ix2), 1
	})
	build("PP with 32 parts", func(a *memsim.Allocator) (*psm.PSM, *psm.PSM, *psm.PSM, int) {
		// One part: everything on one socket; 32 such parts.
		iv := a.Alloc(pages/32*memsim.PageSize, memsim.OnSocket(0))
		dict := a.Alloc(pages/32*memsim.PageSize, memsim.OnSocket(0))
		ix1 := a.Alloc(pages/32*memsim.PageSize, memsim.OnSocket(0))
		ix2 := a.Alloc(pages/32*memsim.PageSize, memsim.OnSocket(0))
		return psm.Build(a, iv), psm.Build(a, dict), psm.Build(a, ix1, ix2), 32
	})
	return rep
}

// runRepart reproduces the Section 6.2.3 repartitioning comparison: IVP is
// quick (page moves) while PP rebuilds every column and duplicates
// dictionary values.
func runRepart(s Scale) *Report {
	rep := &Report{ID: "repart", Title: "Repartitioning cost: IVP vs PP"}
	rows := s.Rows / 4
	if rows < 10_000 {
		rows = 10_000
	}
	ds := workload.DatasetConfig{Rows: rows, Columns: 16, BitcaseMin: 8, BitcaseMax: 17, Seed: 3}
	real := workload.Generate(ds)

	ivpCost := placement.IVPCost(real)
	ppCost := placement.PPCost(real)
	pp := real.PhysicallyPartition(4)
	overhead := float64(pp.TotalBytes())/float64(real.TotalBytes()) - 1

	tb := rep.AddTable("", []string{"mechanism", "est. duration (s)", "relative", "memory overhead"})
	tb.AddRow("IVP (move pages)", fmt.Sprintf("%.3f", ivpCost), "1.0x", "none")
	tb.AddRow("PP (rebuild columns)", fmt.Sprintf("%.3f", ppCost),
		fmt.Sprintf("%.1fx", ppCost/ivpCost), fmt.Sprintf("+%.1f%%", overhead*100))
	return rep
}

// runAdaptive demonstrates the Section 7 design: a skewed workload on
// RR-placed columns, static vs with the adaptive data placer attached.
func runAdaptive(s Scale) *Report {
	rep := &Report{ID: "adaptive", Title: "Static RR vs adaptive data placement (skewed workload)"}

	run := func(adapt bool) (float64, []adaptive.Action, []float64) {
		e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
		ds := scaledDataset(FourSocket, s.Rows, false)
		ds.Synthetic = true
		table := workload.Generate(ds)
		// Block layout: the hot half of the columns sits on half the sockets
		// (the skewed setup of Section 6.2).
		e.Placer.PlaceRRBlocks(table)
		var placer *adaptive.Placer
		if adapt {
			cfg := adaptive.DefaultConfig()
			cfg.Period = s.Measure / 12
			placer = adaptive.New(e, &adaptive.Catalog{Tables: []*colstore.Table{table}}, cfg)
			e.Sim.AddActor(placer)
		}
		clients := workload.NewClients(e, table, workload.ClientsConfig{
			N: s.Max, Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
			Chooser: workload.SkewedChoice{HotProb: 0.8}, Seed: 11,
		})
		clients.Start()
		// Longer horizon: the placer needs time to converge.
		e.Sim.Run(s.Warmup + s.Measure)
		e.Counters.Reset()
		e.Sim.Run(s.Warmup + 2*s.Measure)
		var actions []adaptive.Action
		if placer != nil {
			actions = placer.Actions
		}
		return e.Counters.ThroughputQPM(s.Measure), actions, e.Counters.MemoryThroughputGiBs(s.Measure)
	}

	staticTP, _, staticMem := run(false)
	adaptTP, actions, adaptMem := run(true)

	tb := rep.AddTable("", []string{"configuration", "TP(q/min)", "per-socket memTP (GiB/s)"})
	tb.AddRow("static RR", f0(staticTP), fmtSockets(staticMem))
	tb.AddRow("adaptive", f0(adaptTP), fmtSockets(adaptMem))

	ta := rep.AddTable("adaptive placer actions", []string{"t(ms)", "action", "column", "from", "to", "parts"})
	for _, a := range actions {
		ta.AddRow(fmt.Sprintf("%.1f", a.Time*1e3), a.Kind, a.Column, itoa(a.From), itoa(a.To), itoa(a.Parts))
	}
	if len(actions) == 0 {
		ta.AddRow("-", "(none)", "-", "-", "-", "-")
	}
	return rep
}

func fmtSockets(v []float64) string {
	s := ""
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.1f", x)
	}
	return s
}
