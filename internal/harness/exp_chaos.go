package harness

import (
	"fmt"
	"strings"

	"numacs/internal/adaptive"
	"numacs/internal/chaos"
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/metrics"
	"numacs/internal/sharedscan"
	"numacs/internal/trace"
	"numacs/internal/workload"
)

// Chaos scenario suite: each chaos-* experiment runs the same workload twice
// — a fault-free control and a faulted run — over chaosWindows virtual-time
// windows, and reports per-window progress so graceful degradation is
// checkable window by window. The acceptance tests assert the degradation
// invariants (bounded throughput loss under the fault, recovery after it
// clears, forward progress in every window, bounded p99 inflation) at BOTH
// the 25 µs and 5 µs simulator steps.

// chaosWindows is the number of reporting windows. Faults are injected at
// the start of window 4 and cleared at the start of window 7 (1-based), so
// the timeline is: windows 1-3 healthy baseline, 4-6 faulted, 7-9 recovery.
const chaosWindows = 9

// chaosFaultWindow / chaosClearWindow are the 0-based window indices at
// whose start the fault fires and clears.
const (
	chaosFaultWindow = 3
	chaosClearWindow = 6
)

// ChaosRun is the measured outcome of one chaos configuration (control or
// faulted), exposed so the acceptance tests can assert the degradation
// invariants at both simulator scales.
type ChaosRun struct {
	// Label identifies the configuration; Faulted tells the runs apart.
	Label   string
	Faulted bool

	// Window is the reporting window length; Done counts statements
	// completed per window (the progress counter — a zero window means the
	// engine stopped making progress), and TP is the same as q/min.
	Window float64
	Done   []uint64
	TP     []float64

	// Latency is the whole-horizon completed-statement distribution.
	Latency metrics.LatencyStats

	// Injected is the chaos layer's applied-fault log (faulted runs only).
	Injected []chaos.Applied
	// Actions is the adaptive placer's decision log (experiments that run
	// one).
	Actions []adaptive.Action
	// Cohorts is the shared-scan registry outcome (experiments that enable
	// sharing).
	Cohorts sharedscan.Stats
	// Merges counts completed background delta merges.
	Merges int
	// Tenants is the per-tenant outcome (multi-tenant experiments).
	Tenants []workload.TenantLoadStats
	// ReplicaSockets is the hot column's final replica-socket list
	// (chaos-socket only).
	ReplicaSockets []int

	// Trace is the run's flight-recorder data: statement spans, the decision
	// log, and the windowed time-series the progress counters above are
	// derived from.
	Trace *trace.Data
}

// chaosHorizon returns the windowed timeline of a scale.
func chaosHorizon(s Scale) (window, horizon float64) {
	horizon = s.Warmup + 2*s.Measure
	return horizon / chaosWindows, horizon
}

// chaosTrace enables the flight recorder with the reporting window as the
// sampling interval, so the recorded time-series IS the per-window progress
// timeline the chaos tables report. Every chaos scenario calls it before
// starting its workload.
func chaosTrace(e *core.Engine, window float64) {
	e.EnableTracing(trace.Config{SampleInterval: window})
}

// runChaosWindows advances the engine over the whole windowed horizon and
// derives the per-window progress counters from the flight recorder's
// time-series (chaosTrace wired the sampler to the reporting window), then
// records the whole-run latency distribution and the recorder's data. The
// sampler observes the engine at exactly the instants the old per-window
// loop read the counters, so the derived numbers are bit-identical to the
// hand-rolled bookkeeping this replaced.
func runChaosWindows(e *core.Engine, run *ChaosRun, window float64) {
	e.Sim.Run(float64(chaosWindows) * window)
	e.Trace.Sampler.Flush(e.Sim.Now())
	samples := e.Trace.Sampler.Samples()
	if len(samples) > chaosWindows {
		samples = samples[:chaosWindows]
	}
	for _, smp := range samples {
		run.Done = append(run.Done, smp.Delta.QueriesDone)
		run.TP = append(run.TP, float64(smp.Delta.QueriesDone)*60/window)
	}
	run.Latency = e.Counters.Latencies()
	run.Trace = e.Trace.Data()
}

// meanTP averages the per-window throughput over [from, to).
func (r ChaosRun) meanTP(from, to int) float64 { return meanf(r.TP[from:to]) }

// MinFaultTP returns the worst faulted-window throughput.
func (r ChaosRun) MinFaultTP() float64 {
	min := r.TP[chaosFaultWindow]
	for _, v := range r.TP[chaosFaultWindow:chaosClearWindow] {
		if v < min {
			min = v
		}
	}
	return min
}

// FaultTP returns the mean throughput of the faulted windows.
func (r ChaosRun) FaultTP() float64 { return r.meanTP(chaosFaultWindow, chaosClearWindow) }

// RecoveryTP returns the mean throughput of the final two (post-recovery)
// windows.
func (r ChaosRun) RecoveryTP() float64 { return r.meanTP(chaosWindows-2, chaosWindows) }

// chaosDataset sizes the chaos experiments' table: 16 columns at 2x the
// scale rows keeps a full private pass heavy enough that a socket or MC
// fault visibly moves the equilibrium, without delta-merge-scale runtimes.
func chaosDataset(s Scale) workload.DatasetConfig {
	return workload.DatasetConfig{
		Rows: 2 * s.Rows, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
		Seed: 1, Synthetic: true,
	}
}

// chaosReport renders the shared control-vs-faulted tables of a chaos
// experiment.
func chaosReport(rep *Report, control, faulted ChaosRun) {
	header := []string{"configuration"}
	for w := 0; w < chaosWindows; w++ {
		tag := ""
		if w >= chaosFaultWindow && w < chaosClearWindow {
			tag = "*"
		}
		header = append(header, fmt.Sprintf("w%d%s", w+1, tag))
	}
	tp := rep.AddTable("throughput over virtual time (q/min per window; * = fault active)", header)
	for _, r := range []ChaosRun{control, faulted} {
		row := []string{r.Label}
		for _, v := range r.TP {
			row = append(row, f0(v))
		}
		tp.AddRow(row...)
	}

	sum := rep.AddTable("graceful degradation", []string{
		"configuration", "baseline TP", "fault TP", "min fault TP", "recovered TP",
		"fault/ctl", "recovered/ctl", "p50", "p99"})
	for _, r := range []ChaosRun{control, faulted} {
		sum.AddRow(r.Label, f0(r.meanTP(1, chaosFaultWindow)), f0(r.FaultTP()), f0(r.MinFaultTP()),
			f0(r.RecoveryTP()),
			fmt.Sprintf("%.2fx", r.FaultTP()/control.FaultTP()),
			fmt.Sprintf("%.2fx", r.RecoveryTP()/control.RecoveryTP()),
			ms(r.Latency.P50), ms(r.Latency.P99))
	}

	ev := rep.AddTable("injected faults", []string{"t(ms)", "fault", "socket", "factor", "tasks re-placed", "replicas dropped"})
	for _, a := range faulted.Injected {
		ev.AddRow(fmt.Sprintf("%.1f", a.At*1e3), a.Kind.String(), itoa(a.Socket),
			f2(a.Factor), itoa(a.TasksReplaced), itoa(a.ReplicasDropped))
	}
	if len(faulted.Injected) == 0 {
		ev.AddRow("-", "(none)", "-", "-", "-", "-")
	}

	chaosTimeline(rep, faulted)
	rep.Trace = faulted.Trace
	autoTriage(rep, faulted)
}

// chaosTimeline renders the faulted run's flight-recorder views: the windowed
// time-series (memory throughput, queue depths, steals alongside the progress
// counter) and the control-plane decision log with causes.
func chaosTimeline(rep *Report, faulted ChaosRun) {
	if faulted.Trace == nil {
		return
	}
	tl := rep.AddTable("flight recorder: faulted-run time-series", []string{
		"t(ms)", "done", "MC GiB/s", "per-socket GiB/s", "queued", "stolen"})
	for _, smp := range faulted.Trace.Samples {
		per := make([]string, len(smp.Delta.MCBytes))
		for i, g := range smp.MCGiBs() {
			per[i] = f1(g)
		}
		queued := 0
		for _, q := range smp.QueueDepths {
			queued += q
		}
		tl.AddRow(fmt.Sprintf("%.1f", smp.Time*1e3), itoa(int(smp.Delta.QueriesDone)),
			f1(smp.TotalMCGiBs()), strings.Join(per, "/"),
			itoa(queued), itoa(int(smp.Delta.TasksStolen)))
	}

	const maxDecisionRows = 40
	dl := rep.AddTable("flight recorder: faulted-run decisions", []string{
		"t(ms)", "source", "kind", "item", "cause"})
	for i, d := range faulted.Trace.Decisions {
		if i >= maxDecisionRows {
			dl.AddRow("...", "", "", "", fmt.Sprintf("(%d more)", len(faulted.Trace.Decisions)-maxDecisionRows))
			break
		}
		dl.AddRow(fmt.Sprintf("%.1f", d.Time*1e3), d.Source, d.Kind, d.Item, d.Cause)
	}
	if len(faulted.Trace.Decisions) == 0 {
		dl.AddRow("-", "(none)", "-", "-", "-")
	}
}

// ---- chaos-socket: socket failure and return under the adaptive placer ----

// chaosSocketVictim is the socket taken offline; chaosSocketReplCol is the
// column whose pre-placed replica on that socket the fault must invalidate.
const (
	chaosSocketVictim  = 1
	chaosSocketReplCol = 0
)

// RunChaosSocket executes the socket-failure scenario: 64 closed-loop
// uniform scan clients on the RR-placed table with the adaptive placer
// running, and (when faulted) socket 1 going offline at the start of window
// 4 — its queued tasks drained and re-placed, its workers parked, and the
// hot column's replica there invalidated — then returning at the start of
// window 7. Recovery is the placer's and scheduler's job, not the fault
// schedule's: the dropped replica stays gone unless the placer re-earns it.
func RunChaosSocket(s Scale, faulted bool) ChaosRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	table := workload.Generate(chaosDataset(s))
	e.Placer.PlaceRR(table)
	replCol := table.Parts[0].Columns[chaosSocketReplCol]
	e.Placer.AddReplica(replCol, chaosSocketVictim)

	window, _ := chaosHorizon(s)
	chaosTrace(e, window)
	cfg := adaptive.DefaultConfig()
	cfg.Period = window / 4
	placer := adaptive.New(e, &adaptive.Catalog{Tables: []*colstore.Table{table}}, cfg)
	e.Sim.AddActor(placer)

	var inj *chaos.Injector
	label := "fault-free control"
	if faulted {
		label = "socket offline w4-w6"
		inj = e.EnableChaos(chaos.Config{Schedule: []chaos.Event{
			{At: float64(chaosFaultWindow) * window, Kind: chaos.SocketOffline, Socket: chaosSocketVictim},
			{At: float64(chaosClearWindow) * window, Kind: chaos.SocketOnline, Socket: chaosSocketVictim},
		}}, table)
	}

	clients := workload.NewClients(e, table, workload.ClientsConfig{
		N: 64, Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
		Chooser: workload.HotColumnChoice{Hot: chaosSocketReplCol, P: 0.3}, Seed: 9,
	})
	clients.Start()

	run := ChaosRun{Label: label, Faulted: faulted, Window: window}
	runChaosWindows(e, &run, window)
	run.Actions = placer.Actions
	if inj != nil {
		run.Injected = inj.Applied
	}
	run.ReplicaSockets = append([]int(nil), replCol.ReplicaSockets...)
	return run
}

func runChaosSocket(s Scale) *Report {
	rep := &Report{
		ID:    "chaos-socket",
		Title: "Chaos: socket failure and return under the adaptive placer",
		Description: "Socket 1 goes offline mid-run (queued tasks re-placed, workers parked, its " +
			"replica invalidated) and returns three windows later; the scheduler and placer must " +
			"degrade gracefully and re-converge, not livelock.",
	}
	control := RunChaosSocket(s, false)
	faulted := RunChaosSocket(s, true)
	chaosReport(rep, control, faulted)

	ta := rep.AddTable("placer actions (faulted run)", []string{"t(ms)", "action", "column", "from", "to"})
	for _, a := range faulted.Actions {
		ta.AddRow(fmt.Sprintf("%.1f", a.Time*1e3), a.Kind, a.Column, itoa(a.From), itoa(a.To))
	}
	if len(faulted.Actions) == 0 {
		ta.AddRow("-", "(none)", "-", "-", "-")
	}
	return rep
}

// ---- chaos-thermal: memory-controller throttling ---------------------------

// chaosThermalFactor throttles the serving MC to 30% of nominal — a severe
// thermal event, strong enough that the fault must visibly bite.
const chaosThermalFactor = 0.3

// RunChaosThermal executes the thermal-throttling scenario: 64 closed-loop
// clients all scanning one socket-0 column (the MC-bound regime), with
// socket 0's memory controller throttled to 30% of nominal during windows
// 4-6. No placer runs: the experiment isolates the engine's raw degradation
// and recovery when the serving controller's capacity collapses and returns.
func RunChaosThermal(s Scale, faulted bool) ChaosRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	table := workload.Generate(chaosDataset(s))
	e.Placer.PlaceRR(table)

	window, _ := chaosHorizon(s)
	chaosTrace(e, window)
	var inj *chaos.Injector
	label := "fault-free control"
	if faulted {
		label = fmt.Sprintf("MC0 @ %.0f%% w4-w6", chaosThermalFactor*100)
		inj = e.EnableChaos(chaos.Config{Schedule: []chaos.Event{
			{At: float64(chaosFaultWindow) * window, Kind: chaos.MCThrottle, Socket: 0, Factor: chaosThermalFactor},
			{At: float64(chaosClearWindow) * window, Kind: chaos.MCThrottle, Socket: 0, Factor: 1},
		}}, table)
	}

	clients := workload.NewClients(e, table, workload.ClientsConfig{
		N: 64, Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
		Chooser: workload.FixedColumnChoice{Col: 0}, Seed: 9, // column 0 lives on socket 0 under RR
	})
	clients.Start()

	run := ChaosRun{Label: label, Faulted: faulted, Window: window}
	runChaosWindows(e, &run, window)
	if inj != nil {
		run.Injected = inj.Applied
	}
	return run
}

func runChaosThermal(s Scale) *Report {
	rep := &Report{
		ID:    "chaos-thermal",
		Title: "Chaos: memory-controller thermal throttling",
		Description: "The serving socket's MC drops to 30% of nominal bandwidth for three windows " +
			"while every client scans a column it serves: throughput must track the capacity loss " +
			"(bounded, no collapse) and return to baseline when the throttle lifts.",
	}
	control := RunChaosThermal(s, false)
	faulted := RunChaosThermal(s, true)
	chaosReport(rep, control, faulted)
	return rep
}
