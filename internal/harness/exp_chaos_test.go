package harness

import (
	"strings"
	"testing"

	"numacs/internal/chaos"
	"numacs/internal/core"
	"numacs/internal/workload"
)

// TestChaosExperimentsRegistered pins the registry contract CI's experiment
// loop depends on: at least four chaos-* experiments are registered and
// resolvable by id. (Cheap — runs even under -short.)
func TestChaosExperimentsRegistered(t *testing.T) {
	var ids []string
	for _, id := range IDs() {
		if strings.HasPrefix(id, "chaos-") {
			ids = append(ids, id)
		}
	}
	if len(ids) < 4 {
		t.Fatalf("only %d chaos-* experiments registered (%v), want >= 4", len(ids), ids)
	}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Fatalf("chaos experiment %q not resolvable by id", id)
		}
	}
}

// TestChaosDisabledBitIdentical pins the zero-cost-when-disabled guarantee:
// an engine with the chaos layer enabled on an EMPTY fault schedule must
// equal the plain engine on every counter and the full latency distribution,
// bit for bit. (The injection hooks are a capacity re-read the allocator
// does anyway and one nil check in the scheduler; an inert injector must not
// perturb a single allocation, dispatch, or RNG draw.)
func TestChaosDisabledBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-seed simulation runs")
	}
	run := func(withChaos bool) *core.Engine {
		e := core.NewWithStep(FourSocket.Build(), 1, 25e-6)
		table := workload.Generate(workload.DatasetConfig{
			Rows: 60_000, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
			Seed: 1, Synthetic: true,
		})
		e.Placer.PlaceRR(table)
		if withChaos {
			e.EnableChaos(chaos.Config{}, table)
		}
		clients := workload.NewClients(e, table, workload.ClientsConfig{
			N: 64, Selectivity: lowSel, Parallel: true, Strategy: core.Bound, Seed: 3,
		})
		clients.Start()
		e.Sim.Run(0.08)
		return e
	}
	plain := run(false)
	inert := run(true)

	if got := len(inert.Chaos.Applied); got != 0 {
		t.Fatalf("inert injector applied %d events", got)
	}
	d, s := plain.Counters, inert.Counters
	if d.QueriesDone != s.QueriesDone || d.TasksExecuted != s.TasksExecuted ||
		d.TasksStolen != s.TasksStolen {
		t.Fatalf("counts drifted: plain {q %d, tasks %d, stolen %d} vs chaos-enabled {q %d, tasks %d, stolen %d}",
			d.QueriesDone, d.TasksExecuted, d.TasksStolen,
			s.QueriesDone, s.TasksExecuted, s.TasksStolen)
	}
	if d.TotalMCBytes() != s.TotalMCBytes() || d.LLCLocal != s.LLCLocal ||
		d.LLCRemote != s.LLCRemote || d.LinkDataBytes != s.LinkDataBytes ||
		d.LinkTotalBytes != s.LinkTotalBytes {
		t.Fatalf("traffic drifted: plain MC %v vs chaos-enabled MC %v",
			d.TotalMCBytes(), s.TotalMCBytes())
	}
	if d.IPC() != s.IPC() || d.WorkerBusySeconds != s.WorkerBusySeconds {
		t.Fatalf("compute drifted: IPC %v vs %v, busy %v vs %v",
			d.IPC(), s.IPC(), d.WorkerBusySeconds, s.WorkerBusySeconds)
	}
	if d.Latencies() != s.Latencies() {
		t.Fatalf("latency distribution drifted:\n plain %+v\n chaos-enabled %+v",
			d.Latencies(), s.Latencies())
	}
}

// assertProgress is the livelock/deadlock watchdog: every reporting window
// of every run must complete at least one statement.
func assertProgress(t *testing.T, r ChaosRun) {
	t.Helper()
	for w, n := range r.Done {
		if n == 0 {
			t.Errorf("%s: window %d completed no statements — engine stopped making progress", r.Label, w+1)
		}
	}
}

// checkChaosSocket asserts the socket-failure invariants at one scale.
func checkChaosSocket(t *testing.T, s Scale) {
	t.Helper()
	control := RunChaosSocket(s, false)
	faulted := RunChaosSocket(s, true)
	assertProgress(t, control)
	assertProgress(t, faulted)

	if len(faulted.Injected) != 2 {
		t.Fatalf("injected %d faults, want offline+online", len(faulted.Injected))
	}
	if faulted.Injected[0].ReplicasDropped < 1 {
		t.Errorf("offline event dropped %d replicas, want >= 1 (the pre-placed socket-1 replica)",
			faulted.Injected[0].ReplicasDropped)
	}
	// Losing one of four sockets costs more than a quarter of throughput
	// here: the hot column's replica on the dead socket is gone too, so its
	// scans fall back to remote service. 0.15 is the no-collapse floor at
	// both steps (measured ~0.50 at 25 us, ~0.23 at 5 us).
	if r := faulted.FaultTP() / control.FaultTP(); r < 0.15 {
		t.Errorf("fault-window throughput ratio %.2f < 0.15 — degradation not graceful", r)
	} else if r > 0.85 {
		t.Errorf("fault-window throughput ratio %.2f > 0.85 — the fault did not bite", r)
	}
	if r := faulted.RecoveryTP() / control.RecoveryTP(); r < 0.8 {
		t.Errorf("recovery throughput ratio %.2f < 0.8 — no convergence after the socket returned", r)
	}
	if faulted.Latency.P99 > 10*control.Latency.P99 {
		t.Errorf("faulted p99 %.2fms > 10x control %.2fms", faulted.Latency.P99*1e3, control.Latency.P99*1e3)
	}
	// The placer must never target the offline socket while it is down...
	faultAt := float64(chaosFaultWindow) * faulted.Window
	clearAt := float64(chaosClearWindow) * faulted.Window
	for _, a := range faulted.Actions {
		if a.Time >= faultAt && a.Time < clearAt && a.To == chaosSocketVictim {
			t.Errorf("placer action %q -> socket %d at t=%.1fms while that socket was offline",
				a.Kind, a.To, a.Time*1e3)
		}
	}
	// ...and must converge: no further re-placement churn after a grace of
	// two windows past the clear.
	for _, a := range faulted.Actions {
		if a.Time >= clearAt+2*faulted.Window {
			t.Errorf("placer still acting (%q %s) at t=%.1fms, %.1fms after the fault cleared — not converged",
				a.Kind, a.Column, a.Time*1e3, (a.Time-clearAt)*1e3)
		}
	}
}

// checkChaosThermal asserts the MC-throttling invariants at one scale.
func checkChaosThermal(t *testing.T, s Scale) {
	t.Helper()
	control := RunChaosThermal(s, false)
	faulted := RunChaosThermal(s, true)
	assertProgress(t, control)
	assertProgress(t, faulted)

	if len(faulted.Injected) != 2 {
		t.Fatalf("injected %d faults, want throttle+restore", len(faulted.Injected))
	}
	if r := faulted.FaultTP() / control.FaultTP(); r < 0.2 {
		t.Errorf("throttled throughput ratio %.2f < 0.2 — collapse, not degradation", r)
	} else if r > 0.7 {
		t.Errorf("throttled throughput ratio %.2f > 0.7 — a 30%% MC throttle did not bite", r)
	}
	if r := faulted.RecoveryTP() / control.RecoveryTP(); r < 0.85 {
		t.Errorf("recovery throughput ratio %.2f < 0.85 after the throttle lifted", r)
	}
	if faulted.Latency.P99 > 10*control.Latency.P99 {
		t.Errorf("faulted p99 %.2fms > 10x control %.2fms", faulted.Latency.P99*1e3, control.Latency.P99*1e3)
	}
}

// checkChaosAntagonist asserts the heat-thrashing invariants at one scale.
func checkChaosAntagonist(t *testing.T, s Scale) {
	t.Helper()
	control := RunChaosAntagonist(s, false)
	faulted := RunChaosAntagonist(s, true)
	assertProgress(t, control)
	assertProgress(t, faulted)

	cv, fv := control.Tenants[0], faulted.Tenants[0] // the victim tenant
	if fv.Completed < 3*fv.Issued/4 {
		t.Errorf("victim completed %d of %d issued under thrashing — admission fairness lost",
			fv.Completed, fv.Issued)
	}
	if float64(fv.Completed) < 0.75*float64(cv.Completed) {
		t.Errorf("victim goodput %d < 0.75x its control goodput %d", fv.Completed, cv.Completed)
	}
	if fv.Lat.P99() > 3*cv.Lat.P99() {
		t.Errorf("victim p99 %.2fms > 3x control %.2fms", fv.Lat.P99()*1e3, cv.Lat.P99()*1e3)
	}
	// The thrash must actually engage the placer's replication lever more
	// than steady heat does, and the resulting churn must stay bounded (the
	// placer acts at most a couple of times per balancing period).
	count := func(r ChaosRun, kind string) int {
		n := 0
		for _, a := range r.Actions {
			if a.Kind == kind {
				n++
			}
		}
		return n
	}
	if count(faulted, "replicate") <= count(control, "replicate") {
		t.Errorf("thrashing run replicated %d times vs control %d — the antagonist did not engage the placer",
			count(faulted, "replicate"), count(control, "replicate"))
	}
	if len(faulted.Actions) > 120 {
		t.Errorf("placer took %d actions under thrashing — churn unbounded", len(faulted.Actions))
	}
}

// checkChaosWriteStorm asserts the write-storm invariants at one scale.
func checkChaosWriteStorm(t *testing.T, s Scale) {
	t.Helper()
	control := RunChaosWriteStorm(s, false)
	faulted := RunChaosWriteStorm(s, true)
	assertProgress(t, control)
	assertProgress(t, faulted)

	if control.Merges != 0 {
		t.Errorf("control run merged %d times — the storm is the only write source", control.Merges)
	}
	if faulted.Merges < 1 {
		t.Error("write storm never triggered a background merge — the race under test did not happen")
	}
	if faulted.Cohorts.Merged == 0 {
		t.Error("no statements shared a pass during the storm run — cohorts disengaged")
	}
	if r := faulted.FaultTP() / control.FaultTP(); r < 0.3 {
		t.Errorf("storm-window throughput ratio %.2f < 0.3 — degradation not graceful", r)
	} else if r > 0.9 {
		t.Errorf("storm-window throughput ratio %.2f > 0.9 — the storm did not bite", r)
	}
	if r := faulted.RecoveryTP() / control.RecoveryTP(); r < 0.7 {
		t.Errorf("post-storm recovery ratio %.2f < 0.7", r)
	}
	// Statements in flight when the merge rebuild kicks in absorb its whole
	// pause, so the storm's tail inflation is the largest of the suite
	// (measured ~1.8x at 25 us, ~5x at 5 us).
	if faulted.Latency.P99 > 8*control.Latency.P99 {
		t.Errorf("faulted p99 %.2fms > 8x control %.2fms", faulted.Latency.P99*1e3, control.Latency.P99*1e3)
	}
}

// checkChaosBurst asserts the join-window-burst invariants at one scale.
func checkChaosBurst(t *testing.T, s Scale) {
	t.Helper()
	control := RunChaosBurst(s, false)
	faulted := RunChaosBurst(s, true)
	assertProgress(t, control)
	assertProgress(t, faulted)

	cb, fb := control.Tenants[1], faulted.Tenants[1] // the burst tenant
	if fb.Issued < 2*cb.Issued {
		t.Fatalf("burst tenant issued %d vs %d without bursts — the spikes never fired", fb.Issued, cb.Issued)
	}
	if st := faulted.Cohorts; st.Merged+st.Attached == 0 {
		t.Error("no statements merged or attached under bursts — sharing disengaged")
	}
	if fs := faulted.Tenants[0]; fs.Completed < 9*fs.Issued/10 {
		t.Errorf("steady tenant completed %d of %d issued under bursts", fs.Completed, fs.Issued)
	}
	if fb.Completed < 7*fb.Issued/10 {
		t.Errorf("burst tenant completed %d of %d issued — spikes were shed, not absorbed", fb.Completed, fb.Issued)
	}
	if r := faulted.FaultTP() / control.FaultTP(); r < 0.8 {
		t.Errorf("burst-window throughput ratio %.2f < 0.8 — spikes should be absorbed by sharing", r)
	}
	if faulted.Latency.P99 > 3*control.Latency.P99 {
		t.Errorf("faulted p99 %.2fms > 3x control %.2fms", faulted.Latency.P99*1e3, control.Latency.P99*1e3)
	}
}

// Quick-scale (25 us step) assertions.

func TestChaosSocketQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs")
	}
	checkChaosSocket(t, QuickScale())
}

func TestChaosThermalQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs")
	}
	checkChaosThermal(t, QuickScale())
}

func TestChaosAntagonistQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs")
	}
	checkChaosAntagonist(t, QuickScale())
}

func TestChaosWriteStormQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs")
	}
	checkChaosWriteStorm(t, QuickScale())
}

func TestChaosBurstQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs")
	}
	checkChaosBurst(t, QuickScale())
}

// Full-scale (5 us step) assertions: the graceful-degradation envelope must
// hold when dispatch quantization is 5x finer, or the invariants would be a
// step-size artifact.

func TestChaosSocketFull(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs at full scale")
	}
	checkChaosSocket(t, FullScale())
}

func TestChaosThermalFull(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs at full scale")
	}
	checkChaosThermal(t, FullScale())
}

func TestChaosAntagonistFull(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs at full scale")
	}
	checkChaosAntagonist(t, FullScale())
}

func TestChaosWriteStormFull(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs at full scale")
	}
	checkChaosWriteStorm(t, FullScale())
}

func TestChaosBurstFull(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs at full scale")
	}
	checkChaosBurst(t, FullScale())
}
