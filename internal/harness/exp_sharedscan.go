package harness

import (
	"fmt"

	"numacs/internal/core"
	"numacs/internal/metrics"
	"numacs/internal/sharedscan"
	"numacs/internal/workload"
)

// Shared-scan experiment: N closed-loop clients hammer ONE read-hot column
// of the 4-socket machine (the same-column hot-scan mix), with the cohort
// layer either enabled or bypassed. Unshared, every statement pays a full
// memory pass over the column, so the serving socket's memory controller
// saturates long before the cores; shared, concurrent statements merge into
// cohorts that stream the column once per pass and evaluate every member
// predicate per chunk. The headline criteria — asserted by the acceptance
// tests at BOTH the 25 µs and 5 µs simulator steps — are >=2x statement
// throughput at >=8 concurrent same-column scans and <=0.5x physical MC
// bytes per statement: the win must be memory traffic, not a coarse-step
// equilibrium artifact.

// sharedScanDataset sizes the experiment table: 8x the scale rows makes a
// private pass heavy enough that the unshared control saturates the serving
// socket's memory controller within the sweep — the paper's MC-bound
// regime, where sharing is the lever.
func sharedScanDataset(s Scale) workload.DatasetConfig {
	return workload.DatasetConfig{
		Rows: 8 * s.Rows, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
		Seed: 1, Synthetic: true,
	}
}

// SharedScanRun is the measured outcome of one shared-scan configuration,
// exposed so the acceptance tests can assert the criteria at both simulator
// scales.
type SharedScanRun struct {
	// Label and SharingOn identify the configuration; Clients is the
	// closed-loop population, all scanning the same column.
	Label     string
	SharingOn bool
	Clients   int

	// QPM and QueriesDone are the measure-window statement throughput.
	QPM         float64
	QueriesDone uint64

	// MCBytes is the physical DRAM traffic served by all memory controllers
	// in the measure window; BytesPerQuery normalizes it per completed
	// statement — the "one memory pass for N scans" criterion.
	MCBytes       float64
	BytesPerQuery float64
	// LinkGiB is the interconnect data traffic of the window.
	LinkGiB float64

	// Latency is the completed-statement latency distribution (join-window
	// wait included for cohort members).
	Latency metrics.LatencyStats

	// Cohorts holds the registry outcome counters (whole run, sharing-on
	// only); MeanCohort is statements per physical pass.
	Cohorts    sharedscan.Stats
	MeanCohort float64
}

// RunSharedScan executes one shared-scan configuration: clients closed-loop
// scanners of column COL000 on the RR-placed table, cohort layer on or off.
func RunSharedScan(s Scale, on bool, clients int) SharedScanRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	table := workload.Generate(sharedScanDataset(s))
	e.Placer.PlaceRR(table)
	var reg *sharedscan.Registry
	if on {
		reg = e.EnableSharedScans(sharedscan.Config{})
	}
	cl := workload.NewClients(e, table, workload.ClientsConfig{
		N: clients, Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
		Chooser: workload.FixedColumnChoice{Col: 0}, Seed: 9,
	})
	cl.Start()
	e.Sim.Run(s.Warmup)
	e.Counters.Reset()
	e.Sim.Run(s.Warmup + s.Measure)

	label := "private passes (sharing OFF)"
	if on {
		label = "shared cohorts (sharing ON)"
	}
	run := SharedScanRun{
		Label: label, SharingOn: on, Clients: clients,
		QPM:         e.Counters.ThroughputQPM(s.Measure),
		QueriesDone: e.Counters.QueriesDone,
		MCBytes:     e.Counters.TotalMCBytes(),
		LinkGiB:     e.Counters.LinkDataBytes / (1 << 30),
		Latency:     e.Counters.Latencies(),
	}
	if run.QueriesDone > 0 {
		run.BytesPerQuery = run.MCBytes / float64(run.QueriesDone)
	}
	if reg != nil {
		run.Cohorts = reg.Stats()
		run.MeanCohort = reg.MeanCohort()
	}
	return run
}

// runSharedScan renders the shared-scan experiment: a concurrency sweep of
// the same-column hot-scan mix with the cohort layer on vs off.
func runSharedScan(s Scale) *Report {
	rep := &Report{
		ID:    "shared-scan",
		Title: "Shared scan cohorts: one memory pass for N concurrent scans",
		Description: "Closed-loop clients all scanning one column; cohort layer on vs off. " +
			"Sharing must cut physical MC bytes per statement, not just rebalance them.",
	}

	sweep := []int{1, 8, 16, 32}
	var runs []SharedScanRun
	for _, n := range sweep {
		runs = append(runs, RunSharedScan(s, false, n), RunSharedScan(s, true, n))
	}

	tb := rep.AddTable("throughput and physical traffic vs concurrency", []string{
		"clients", "mode", "done", "q/min", "speedup", "MC GiB", "KiB/query", "bytes ratio", "QPI(GiB)", "p50", "p99"})
	for i := 0; i < len(runs); i += 2 {
		off, on := runs[i], runs[i+1]
		for _, r := range []SharedScanRun{off, on} {
			mode := "off"
			speedup, ratio := "1.00x", "1.00"
			if r.SharingOn {
				mode = "on"
				speedup = fmt.Sprintf("%.2fx", r.QPM/off.QPM)
				ratio = fmt.Sprintf("%.2f", r.BytesPerQuery/off.BytesPerQuery)
			}
			tb.AddRow(itoa(r.Clients), mode, itoa(int(r.QueriesDone)), f0(r.QPM), speedup,
				f2(r.MCBytes/(1<<30)), f1(r.BytesPerQuery/1024), ratio,
				f2(r.LinkGiB), ms(r.Latency.P50), ms(r.Latency.P99))
		}
	}

	ct := rep.AddTable("cohort lifecycle (sharing ON, whole run)", []string{
		"clients", "stmts", "passes", "solo", "merged", "attached", "wraps", "shed", "mean cohort"})
	for i := 1; i < len(runs); i += 2 {
		r := runs[i]
		ct.AddRow(itoa(r.Clients), itoa(int(r.Cohorts.Statements)), itoa(int(r.Cohorts.Passes)),
			itoa(int(r.Cohorts.Solo)), itoa(int(r.Cohorts.Merged)), itoa(int(r.Cohorts.Attached)),
			itoa(int(r.Cohorts.Wraps)), itoa(int(r.Cohorts.Shed)), f1(r.MeanCohort))
	}
	return rep
}
