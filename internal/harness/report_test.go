package harness

import (
	"strings"
	"testing"
)

func TestReportRenderAlignment(t *testing.T) {
	rep := &Report{ID: "x", Title: "Title", Description: "desc"}
	tb := rep.AddTable("block", []string{"a", "longheader", "c"})
	tb.AddRow("1", "2", "3")
	tb.AddRow("wide-cell", "x", "yy")
	out := rep.Render()
	if !strings.Contains(out, "=== x: Title ===") {
		t.Fatalf("missing banner:\n%s", out)
	}
	if !strings.Contains(out, "desc") || !strings.Contains(out, "-- block --") {
		t.Fatalf("missing sections:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var header, sep string
	for i, l := range lines {
		if strings.HasPrefix(l, "a ") {
			header = l
			sep = lines[i+1]
			break
		}
	}
	if header == "" {
		t.Fatalf("header row not found:\n%s", out)
	}
	// Separator matches header width.
	if len(strings.TrimRight(sep, " ")) == 0 || !strings.Contains(sep, "----") {
		t.Fatalf("separator malformed: %q", sep)
	}
	// Columns align: "longheader" starts at the same offset in header and
	// separator rows.
	if strings.Index(header, "longheader") < 0 {
		t.Fatal("header missing column")
	}
}

func TestFormatHelpers(t *testing.T) {
	if f0(1234.6) != "1235" || f1(1.25) != "1.2" || f2(1.234) != "1.23" {
		t.Fatal("float formats wrong")
	}
	if pct(0.5) != "50%" {
		t.Fatalf("pct = %q", pct(0.5))
	}
	if ms(0.00123) != "1.23ms" {
		t.Fatalf("ms = %q", ms(0.00123))
	}
	if itoa(42) != "42" {
		t.Fatalf("itoa = %q", itoa(42))
	}
	if gib(3.14159) != "3.1" {
		t.Fatalf("gib = %q", gib(3.14159))
	}
}

func TestScaleSpecs(t *testing.T) {
	s := FullScale()
	spec := s.spec4(FourSocket)
	if spec.Step != s.Step || spec.Dataset.Rows != s.Rows {
		t.Fatalf("4S spec: %+v", spec)
	}
	spec32 := s.spec4(ThirtyTwoSocket)
	if spec32.Step != s.Step32 || spec32.Dataset.Rows != s.Rows32 {
		t.Fatalf("32S spec: %+v", spec32)
	}
	if spec32.Dataset.Columns <= spec.Dataset.Columns {
		t.Fatal("32S dataset should have more columns (paper: 160)")
	}
}

func TestPlacementSpecString(t *testing.T) {
	if (PlacementSpec{Kind: RR}).String() != "RR" {
		t.Fatal("RR name")
	}
	if (PlacementSpec{Kind: IVP, Partitions: 8}).String() != "IVP8" {
		t.Fatal("IVP name")
	}
	if (PlacementSpec{Kind: PP, Partitions: 2}).String() != "PP2" {
		t.Fatal("PP name")
	}
}

func TestMachineKindBuild(t *testing.T) {
	for _, k := range []MachineKind{FourSocket, EightSocket, SixteenSocket, ThirtyTwoSocket} {
		m := k.Build()
		if m == nil || m.Sockets == 0 {
			t.Fatalf("machine %v not built", k)
		}
		if k.String() == "" {
			t.Fatal("empty name")
		}
	}
}
