package harness

import (
	"fmt"
	"math/rand"

	"numacs/internal/adaptive"
	"numacs/internal/admit"
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/delta"
	"numacs/internal/sharedscan"
	"numacs/internal/trace"
	"numacs/internal/workload"
)

// Workload-shaped chaos scenarios: the fault is adversarial traffic rather
// than broken hardware — an antagonist tenant thrashing column heat to
// defeat replication, a write storm racing background merges under shared
// scans, and arrival bursts aimed at the shared-scan join window. The
// control runs carry the same tenants with the adversarial behaviour turned
// off, so the degradation invariants compare like against like.

// chaosAdmissionConfig is the admission contract the multi-tenant chaos
// scenarios run under (mirrors the admission experiment's tuning).
func chaosAdmissionConfig(s Scale, tenants []admit.TenantSpec) admit.Config {
	return admit.Config{
		Tenants:             tenants,
		MinConcurrent:       4,
		HighQueuePerWorker:  0.5,
		LowQueuePerWorker:   0.25,
		OLAPDeadline:        s.Measure / 10,
		InteractiveDeadline: s.Measure / 40,
	}
}

// ---- chaos-antagonist: heat thrashing vs the replication lever -------------

const (
	chaosVictimTenant     = "victim"
	chaosAntagonistTenant = "antagonist"
)

// rotatingHotChoice concentrates picks on a hot column that changes every
// window — the heat-thrashing antagonist. By the time the adaptive placer
// has observed a column as hot and replicated it, the antagonist has already
// moved on, so every replica decision is stale on arrival.
type rotatingHotChoice struct {
	engine *core.Engine
	window float64
	p      float64
}

// Pick implements workload.Chooser.
func (r rotatingHotChoice) Pick(rng *rand.Rand, columns int) int {
	if rng.Float64() < r.p {
		return 1 + int(r.engine.Sim.Now()/r.window)%(columns-1)
	}
	return rng.Intn(columns)
}

// RunChaosAntagonist executes the heat-thrashing scenario: a victim tenant
// scanning one fixed column and an antagonist tenant three times its size,
// both under weighted-fair admission with the adaptive placer running. In
// the control the antagonist's heat is steady (a fixed hot column the placer
// can serve with replicas); faulted, its hot column rotates every window to
// defeat replication. The invariants are about the victim: admission must
// preserve its goodput and latency even while the placer's read-hot signal
// is being poisoned, and the placer's action churn must stay bounded.
func RunChaosAntagonist(s Scale, faulted bool) ChaosRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	table := workload.Generate(chaosDataset(s))
	e.Placer.PlaceRR(table)

	window, _ := chaosHorizon(s)
	chaosTrace(e, window)
	cfg := adaptive.DefaultConfig()
	cfg.Period = window / 4
	placer := adaptive.New(e, &adaptive.Catalog{Tables: []*colstore.Table{table}}, cfg)
	e.Sim.AddActor(placer)

	e.EnableAdmission(chaosAdmissionConfig(s, []admit.TenantSpec{
		{Name: chaosVictimTenant, Weight: 1},
		{Name: chaosAntagonistTenant, Weight: 1},
	}))

	var antagonist workload.Chooser = workload.HotColumnChoice{Hot: 8, P: 0.9}
	label := "steady antagonist (control)"
	if faulted {
		antagonist = rotatingHotChoice{engine: e, window: window, p: 0.9}
		label = "heat-thrashing antagonist"
	}
	gen := workload.NewMultiTenant(e, table, workload.MultiTenantConfig{
		Tenants: []workload.TenantLoad{
			{Name: chaosVictimTenant, Weight: 1, Clients: 16,
				Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
				Chooser: workload.FixedColumnChoice{Col: 0}},
			{Name: chaosAntagonistTenant, Weight: 1, Clients: 48,
				Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
				Chooser: antagonist},
		},
		Seed: 5,
	})
	e.Sim.AddActor(gen)
	chaosTenantSeries(e, gen)
	gen.Start()

	run := ChaosRun{Label: label, Faulted: faulted, Window: window}
	runChaosWindows(e, &run, window)
	run.Actions = placer.Actions
	run.Tenants = gen.Stats()
	return run
}

// chaosTenantSeries wires the multi-tenant generator's cumulative per-tenant
// counters into the flight recorder's sampler, so every time-series window
// carries per-tenant completed/shed deltas.
func chaosTenantSeries(e *core.Engine, gen *workload.MultiTenant) {
	e.Trace.Sampler.TenantCounts = func() []trace.TenantCount {
		stats := gen.Stats()
		out := make([]trace.TenantCount, len(stats))
		for i, ts := range stats {
			out[i] = trace.TenantCount{Name: ts.Name, Completed: ts.Completed, Shed: ts.Shed}
		}
		return out
	}
}

func runChaosAntagonist(s Scale) *Report {
	rep := &Report{
		ID:    "chaos-antagonist",
		Title: "Chaos: antagonist tenant thrashing column heat",
		Description: "An antagonist tenant rotates its hot column every window so the adaptive " +
			"placer's replication decisions are stale on arrival; weighted-fair admission must " +
			"preserve the victim tenant's goodput and the placer's churn must stay bounded.",
	}
	control := RunChaosAntagonist(s, false)
	faulted := RunChaosAntagonist(s, true)
	chaosReport(rep, control, faulted)

	tt := rep.AddTable("per-tenant outcome", []string{
		"configuration", "tenant", "issued", "completed", "shed", "p50", "p99"})
	for _, r := range []ChaosRun{control, faulted} {
		for _, ts := range r.Tenants {
			tt.AddRow(r.Label, ts.Name, itoa(int(ts.Issued)), itoa(int(ts.Completed)),
				itoa(int(ts.Shed)), ms(ts.Lat.P50()), ms(ts.Lat.P99()))
		}
	}
	pa := rep.AddTable("placer churn", []string{"configuration", "actions", "replicates", "drops", "moves"})
	for _, r := range []ChaosRun{control, faulted} {
		var repl, drop, move int
		for _, a := range r.Actions {
			switch a.Kind {
			case "replicate":
				repl++
			case "drop-replica":
				drop++
			case "move", "partition-ivp":
				move++
			}
		}
		pa.AddRow(r.Label, itoa(len(r.Actions)), itoa(repl), itoa(drop), itoa(move))
	}
	return rep
}

// ---- chaos-writestorm: writes racing merges under shared scans -------------

// RunChaosWriteStorm executes the write-storm scenario: shared scans hammer
// one column while (faulted only) a socket-0 write storm floods the same
// column's delta during the fault windows — sized to cross the merge
// threshold mid-storm, so the background merge races live cohort passes.
// The write-aware placer owns merge timing exactly as in the delta-merge
// experiment; the invariants here are that the race resolves (merges
// complete, every window makes progress) and throughput recovers once the
// storm passes.
func RunChaosWriteStorm(s Scale, faulted bool) ChaosRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	table := workload.Generate(chaosDataset(s))
	e.Placer.PlaceRR(table)
	scanCol := table.Parts[0].Columns[0]

	window, _ := chaosHorizon(s)
	chaosTrace(e, window)
	e.EnableSharedScans(sharedscan.Config{})

	cfg := adaptive.DefaultConfig()
	cfg.Period = window / 4
	cfg.ImbalanceRatio = 1e9        // freeze move/partition/replicate: write-path levers only
	cfg.StaleReplicaFraction = 1e-9 // no replica churn during the storm
	cfg.MergeDeltaFraction = 0.4
	cfg.MergeTrafficFraction = 0.9
	cfg.WriteHotFraction = 0.001
	placer := adaptive.New(e, &adaptive.Catalog{Tables: []*colstore.Table{table}}, cfg)
	e.Sim.AddActor(placer)

	label := "fault-free control"
	if faulted {
		label = "write storm w4-w6"
		// Sized to cross the merge threshold roughly mid-storm (cf. the
		// delta-merge experiment's derivation).
		thresholdRows := cfg.MergeDeltaFraction * float64(scanCol.IVBytes()) / delta.RowBytes
		rate := thresholdRows / (1.5 * window) / 0.8
		writers := workload.NewWriters(e, table, workload.WritersConfig{
			Rate: rate, UpdateFraction: 0.8,
			Chooser: workload.FixedColumnChoice{Col: 0},
			Sockets: []int{0},
			Start:   float64(chaosFaultWindow) * window,
			Stop:    float64(chaosClearWindow) * window,
			Seed:    5,
		})
		e.Sim.AddActor(writers)
	}

	clients := workload.NewClients(e, table, workload.ClientsConfig{
		N: 32, Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
		Chooser: workload.FixedColumnChoice{Col: 0}, Seed: 9,
	})
	clients.Start()

	run := ChaosRun{Label: label, Faulted: faulted, Window: window}
	runChaosWindows(e, &run, window)
	run.Actions = placer.Actions
	run.Cohorts = e.Shared.Stats()
	run.Merges = e.MergesCompleted
	return run
}

func runChaosWriteStorm(s Scale) *Report {
	rep := &Report{
		ID:    "chaos-writestorm",
		Title: "Chaos: write storm racing background merges under shared scans",
		Description: "A socket-0 write storm floods the shared-scanned column's delta during the " +
			"fault windows, forcing a background merge to race live cohort passes; the race must " +
			"resolve without stalling and throughput must recover after the storm.",
	}
	control := RunChaosWriteStorm(s, false)
	faulted := RunChaosWriteStorm(s, true)
	chaosReport(rep, control, faulted)

	ws := rep.AddTable("write path and cohorts", []string{
		"configuration", "merges", "stmts", "passes", "merged", "attached", "wraps"})
	for _, r := range []ChaosRun{control, faulted} {
		ws.AddRow(r.Label, itoa(r.Merges), itoa(int(r.Cohorts.Statements)), itoa(int(r.Cohorts.Passes)),
			itoa(int(r.Cohorts.Merged)), itoa(int(r.Cohorts.Attached)), itoa(int(r.Cohorts.Wraps)))
	}
	return rep
}

// ---- chaos-burst: arrival bursts at the join-window boundary ---------------

const (
	chaosSteadyTenant = "steady"
	chaosBurstTenant  = "burster"
	// chaosBurstJoinWindow pins the registry's join window so the burst
	// geometry below stays aligned with it at every scale.
	chaosBurstJoinWindow = 1e-3
)

// RunChaosBurst executes the burst-arrival scenario: a steady closed-loop
// tenant shares scans of one column while (faulted only) a burst tenant
// fires open-loop arrival spikes one join-window long at the same column —
// each spike lands inside a single cohort-forming window, the worst case for
// the join-window boundary. Admission and sharing are both on; the
// invariants are that the spikes collapse into cohorts instead of private
// passes, and the steady tenant's completion rate and tail survive.
func RunChaosBurst(s Scale, faulted bool) ChaosRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	table := workload.Generate(chaosDataset(s))
	e.Placer.PlaceRR(table)

	window, _ := chaosHorizon(s)
	chaosTrace(e, window)
	e.EnableSharedScans(sharedscan.Config{JoinWindow: chaosBurstJoinWindow})
	e.EnableAdmission(chaosAdmissionConfig(s, []admit.TenantSpec{
		{Name: chaosSteadyTenant, Weight: 2},
		{Name: chaosBurstTenant, Weight: 1},
	}))

	burst := workload.BurstSpec{}
	label := "no bursts (control)"
	if faulted {
		// Spikes of ~8 arrivals, each one join window long, every 16 join
		// windows, phase-offset so they straddle forming-cohort boundaries.
		burst = workload.BurstSpec{
			Period:   16 * chaosBurstJoinWindow,
			Duration: chaosBurstJoinWindow,
			Factor:   40,
			Phase:    2.5 * chaosBurstJoinWindow,
		}
		label = "join-window bursts"
	}
	gen := workload.NewMultiTenant(e, table, workload.MultiTenantConfig{
		Tenants: []workload.TenantLoad{
			{Name: chaosSteadyTenant, Weight: 2, Clients: 16,
				Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
				Chooser: workload.FixedColumnChoice{Col: 0}},
			{Name: chaosBurstTenant, Weight: 1, Rate: 200, Burst: burst,
				Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
				Chooser: workload.FixedColumnChoice{Col: 0}},
		},
		Seed: 5,
	})
	e.Sim.AddActor(gen)
	chaosTenantSeries(e, gen)
	gen.Start()

	run := ChaosRun{Label: label, Faulted: faulted, Window: window}
	runChaosWindows(e, &run, window)
	run.Cohorts = e.Shared.Stats()
	run.Tenants = gen.Stats()
	return run
}

func runChaosBurst(s Scale) *Report {
	rep := &Report{
		ID:    "chaos-burst",
		Title: "Chaos: arrival bursts at the shared-scan join-window boundary",
		Description: "An open-loop tenant fires arrival spikes exactly one join window long at the " +
			"shared column; the spikes must collapse into cohorts (not a private-pass stampede) " +
			"and the steady tenant's completion rate and p99 must survive them.",
	}
	control := RunChaosBurst(s, false)
	faulted := RunChaosBurst(s, true)
	chaosReport(rep, control, faulted)

	ct := rep.AddTable("cohorts and tenants", []string{
		"configuration", "stmts", "passes", "solo", "merged", "attached", "mean cohort",
		"steady done/issued", "burster done/issued"})
	for _, r := range []ChaosRun{control, faulted} {
		mean := 0.0
		if r.Cohorts.Passes > 0 {
			mean = float64(r.Cohorts.Statements-r.Cohorts.Shed) / float64(r.Cohorts.Passes)
		}
		frac := func(ts workload.TenantLoadStats) string {
			if ts.Issued == 0 {
				return "-"
			}
			return fmt.Sprintf("%d/%d", ts.Completed, ts.Issued)
		}
		ct.AddRow(r.Label, itoa(int(r.Cohorts.Statements)), itoa(int(r.Cohorts.Passes)),
			itoa(int(r.Cohorts.Solo)), itoa(int(r.Cohorts.Merged)), itoa(int(r.Cohorts.Attached)),
			f1(mean), frac(r.Tenants[0]), frac(r.Tenants[1]))
	}
	return rep
}
