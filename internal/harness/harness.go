// Package harness defines one reproducible experiment per table and figure
// of the paper's evaluation (Section 6) and renders the same rows/series the
// paper reports. The benchmark harness at the repository root and
// cmd/scanbench both drive this package.
package harness

import (
	"fmt"

	"numacs/internal/core"
	"numacs/internal/metrics"
	"numacs/internal/topology"
	"numacs/internal/workload"
)

// MachineKind selects one of the paper's three servers.
type MachineKind int

const (
	// FourSocket is the paper's main 4-socket IvyBridge-EX machine (Table 1).
	FourSocket MachineKind = iota
	// EightSocket is the 8-socket broadcast-snoop Westmere-EX machine.
	EightSocket
	// SixteenSocket is half of the rack-scale machine (Section 6.3).
	SixteenSocket
	// ThirtyTwoSocket is the SGI UV 300 rack-scale machine.
	ThirtyTwoSocket
)

// String names the machine as the paper's evaluation does.
func (k MachineKind) String() string {
	switch k {
	case FourSocket:
		return "4S-IvybridgeEX"
	case EightSocket:
		return "8S-WestmereEX"
	case SixteenSocket:
		return "16S-IvybridgeEX"
	case ThirtyTwoSocket:
		return "32S-IvybridgeEX"
	default:
		return fmt.Sprintf("machine(%d)", int(k))
	}
}

// Build instantiates the machine description.
func (k MachineKind) Build() *topology.Machine {
	switch k {
	case FourSocket:
		return topology.FourSocketIvyBridge()
	case EightSocket:
		return topology.EightSocketWestmere()
	case SixteenSocket:
		return topology.SixteenSocketIvyBridge()
	case ThirtyTwoSocket:
		return topology.ThirtyTwoSocketIvyBridge()
	default:
		panic("harness: unknown machine")
	}
}

// PlacementKind is the data placement under test.
type PlacementKind int

const (
	// RR is round-robin whole-column placement (Section 4.1).
	RR PlacementKind = iota
	// IVP partitions the indexvector across sockets (Section 4.2).
	IVP
	// PP physically partitions table, dictionaries included (Section 4.2).
	PP
)

// PlacementSpec pairs a placement with its partition count (ignored for RR).
type PlacementSpec struct {
	Kind       PlacementKind
	Partitions int
}

// String renders the placement as the experiment tables label it (RR,
// IVP<n>, PP<n>).
func (p PlacementSpec) String() string {
	switch p.Kind {
	case RR:
		return "RR"
	case IVP:
		return fmt.Sprintf("IVP%d", p.Partitions)
	case PP:
		return fmt.Sprintf("PP%d", p.Partitions)
	default:
		return "?"
	}
}

// Spec fully describes one experiment cell.
type Spec struct {
	Machine     MachineKind
	Dataset     workload.DatasetConfig
	Placement   PlacementSpec
	Strategy    core.Strategy
	Clients     int
	Selectivity float64
	UseIndex    bool
	Parallel    bool
	Skew        bool

	Warmup  float64 // virtual seconds before counters reset
	Measure float64 // virtual measurement window
	Step    float64 // simulator step; zero = core.DefaultStep
	Seed    int64

	// Ablation knobs.
	DisableHint     bool
	DisableSteal    bool
	FIFOPriority    bool
	DisableCoalesce bool
	Costs           *core.Costs
}

// Result is the measured outcome of one experiment cell, mirroring the
// metrics the paper plots.
type Result struct {
	Spec Spec

	QPM         float64 // throughput in queries/minute
	CPULoad     float64 // 0..1
	Tasks       uint64
	Stolen      uint64
	LLCLocal    float64 // cache lines fetched locally
	LLCRemote   float64
	MemTP       []float64 // per-socket GiB/s
	MemTPTotal  float64
	IPC         float64
	QPIDataGiB  float64
	QPITotalGiB float64
	Latency     metrics.LatencyStats
	TableBytes  int64 // dataset footprint after placement (PP duplication)
	QueriesDone uint64
}

// Run executes one experiment cell from scratch: build machine + engine,
// generate and place the dataset, admit clients, warm up, measure.
func Run(spec Spec) Result {
	m := spec.Machine.Build()
	step := spec.Step
	if step == 0 {
		step = core.DefaultStep
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	e := core.NewWithStep(m, seed, step)
	if spec.Costs != nil {
		e.Costs = *spec.Costs
	}
	if spec.DisableHint {
		e.ConcurrencyHintEnabled = false
	}
	if spec.DisableSteal {
		e.Sched.StealEnabled = false
	}
	if spec.FIFOPriority {
		e.Sched.IgnorePriority = true
	}
	if spec.DisableCoalesce {
		e.DisableCoalesce = true
	}

	ds := spec.Dataset
	if ds.Rows == 0 {
		ds = workload.DefaultDataset()
	}
	ds.Synthetic = true
	ds.WithIndex = ds.WithIndex || spec.UseIndex
	table := workload.Generate(ds)

	switch spec.Placement.Kind {
	case RR:
		if spec.Skew {
			// The paper's skewed experiments have the hot half of the
			// columns on half the sockets (block layout); see PlaceRRBlocks.
			e.Placer.PlaceRRBlocks(table)
		} else {
			e.Placer.PlaceRR(table)
		}
	case IVP:
		e.Placer.PlaceRR(table) // dict/IX baseline location before IVP re-placement
		e.Placer.PlaceTableIVP(table, spec.Placement.Partitions)
	case PP:
		table = e.Placer.PlacePP(table, spec.Placement.Partitions)
	}

	var chooser workload.Chooser = workload.UniformChoice{}
	if spec.Skew {
		chooser = workload.SkewedChoice{HotProb: 0.8}
	}
	clients := workload.NewClients(e, table, workload.ClientsConfig{
		N:           spec.Clients,
		Selectivity: spec.Selectivity,
		UseIndex:    spec.UseIndex,
		Parallel:    spec.Parallel,
		Strategy:    spec.Strategy,
		Chooser:     chooser,
		Seed:        seed + 7,
	})
	clients.Start()

	warmup, measure := spec.Warmup, spec.Measure
	if warmup == 0 {
		warmup = 0.05
	}
	if measure == 0 {
		measure = 0.25
	}
	e.Sim.Run(warmup)
	e.Counters.Reset()
	e.Sim.Run(warmup + measure)

	c := e.Counters
	memTP := c.MemoryThroughputGiBs(measure)
	total := 0.0
	for _, v := range memTP {
		total += v
	}
	return Result{
		Spec:        spec,
		QPM:         c.ThroughputQPM(measure),
		CPULoad:     c.CPULoad(measure, m.TotalThreads()),
		Tasks:       c.TasksExecuted,
		Stolen:      c.TasksStolen,
		LLCLocal:    c.LLCLocal,
		LLCRemote:   c.LLCRemote,
		MemTP:       memTP,
		MemTPTotal:  total,
		IPC:         c.IPC(),
		QPIDataGiB:  c.LinkDataBytes / (1 << 30),
		QPITotalGiB: c.LinkTotalBytes / (1 << 30),
		Latency:     c.Latencies(),
		TableBytes:  table.TotalBytes(),
		QueriesDone: c.QueriesDone,
	}
}

// dataset builders used by the experiment definitions ------------------------

// scaledDataset returns the harness dataset for a machine size. The paper's
// table has 160 columns; the 4- and 8-socket runs use 64 columns to keep the
// container footprint modest while preserving >= 16 columns per socket.
func scaledDataset(k MachineKind, rows int, withIndex bool) workload.DatasetConfig {
	cols := 64
	if k == ThirtyTwoSocket {
		cols = 160
	}
	return workload.DatasetConfig{
		Rows:       rows,
		Columns:    cols,
		BitcaseMin: 12,
		BitcaseMax: 21,
		WithIndex:  withIndex,
		Seed:       1,
	}
}
