package harness

import (
	"strings"
	"testing"

	"numacs/internal/insight"
)

// TestTriageChaosSocket is the insight layer's acceptance test on the
// chaos-socket scenario, at both simulator scales. On the traced faulted
// run the triage report must contain a memory-throughput dip incident inside
// the fault windows whose suspect set includes the injected socket-offline
// fault, and a recovery incident attributed to the placer's post-clear
// re-replication. On the fault-free control the very same analyzer and SLO
// spec must report zero incidents and no failed verdicts — the detector's
// floors are tuned so healthy noise never alarms.
func TestTriageChaosSocket(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs")
	}
	scales := []Scale{QuickScale(), FullScale()}
	for _, s := range scales {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			faulted := RunChaosSocket(s, true)
			control := RunChaosSocket(s, false)
			spec := chaosSLOs(faulted.Window)

			tri := insight.Analyze(faulted.Trace, spec)
			if tri.Statements == 0 || tri.Windows != chaosWindows {
				t.Fatalf("triage saw %d statements, %d windows (want %d windows)",
					tri.Statements, tri.Windows, chaosWindows)
			}

			// The MC-throughput dip: an incident on an mc-* series whose span
			// intersects the fault windows, with the injected socket-offline
			// in its suspect set.
			clearAt := float64(chaosClearWindow) * faulted.Window
			var sawDip, sawRecovery bool
			for _, in := range tri.Incidents {
				if !strings.HasPrefix(in.Series, "mc-") {
					continue
				}
				if in.Direction == insight.Dip &&
					in.FirstWindow <= chaosClearWindow-1 && in.LastWindow >= chaosFaultWindow {
					for _, d := range in.SuspectDecisions {
						if d.Source == "chaos" && d.Kind == "socket-offline" {
							sawDip = true
						}
					}
				}
				if in.Direction == insight.Spike && in.FirstWindow >= chaosClearWindow {
					for _, d := range in.SuspectDecisions {
						if d.Source == "placer" && d.Kind == "replicate" &&
							d.To == chaosSocketVictim && d.Time >= clearAt {
							sawRecovery = true
						}
					}
				}
			}
			if !sawDip {
				t.Errorf("no MC dip incident with the injected socket-offline in its suspects; incidents: %v", tri.Incidents)
			}
			if !sawRecovery {
				t.Errorf("no MC recovery spike attributed to the placer's re-replication to socket %d; incidents: %v",
					chaosSocketVictim, tri.Incidents)
			}

			// The fault must also be visible to the SLO layer on the faulted
			// run as failed or skipped-nothing — at minimum the verdicts exist.
			if len(tri.Verdicts) == 0 {
				t.Error("faulted triage evaluated no SLO verdicts")
			}

			// Control: the same analyzer and spec find a healthy run — zero
			// incidents, zero failed verdicts.
			ctl := insight.Analyze(control.Trace, spec)
			if len(ctl.Incidents) != 0 {
				t.Errorf("control run reports %d incidents, want 0: %v", len(ctl.Incidents), ctl.Incidents)
			}
			if n := ctl.FailedVerdicts(); n != 0 {
				t.Errorf("control run fails %d SLO verdicts, want 0: %+v", n, ctl.Verdicts)
			}
		})
	}
}

// TestChaosReportHasTriage: the chaos reports attach the structured triage
// report and render its tables, so scanbench -triage and the CI artifact
// pipeline get it without re-analyzing.
func TestChaosReportHasTriage(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs")
	}
	e, ok := ByID("chaos-socket")
	if !ok {
		t.Fatal("chaos-socket not registered")
	}
	rep := e.Run(QuickScale())
	if rep.Triage == nil {
		t.Fatal("report has no triage attached")
	}
	if rep.Triage.Meta.RunID != rep.ID {
		t.Errorf("triage run id %q, want %q", rep.Triage.Meta.RunID, rep.ID)
	}
	var sawIncidents, sawVerdicts bool
	for _, tb := range rep.Tables {
		switch tb.Name {
		case "auto-triage: incidents (faulted run)":
			sawIncidents = true
			if len(tb.Rows) == 0 {
				t.Error("incident table is empty (want rows or the (none) placeholder)")
			}
		case "auto-triage: SLO verdicts (faulted run)":
			sawVerdicts = true
			if len(tb.Rows) == 0 {
				t.Error("verdict table is empty")
			}
		}
	}
	if !sawIncidents || !sawVerdicts {
		t.Fatalf("auto-triage tables missing: incidents %v, verdicts %v", sawIncidents, sawVerdicts)
	}
}
