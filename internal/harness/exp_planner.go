package harness

import (
	"fmt"
	"strings"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/join"
	"numacs/internal/metrics"
	"numacs/internal/plan"
	"numacs/internal/sharedscan"
)

// Planner experiment: the same mixed multi-statement script — six shareable
// scans of one hot column plus two star joins — is driven by closed-loop
// clients in two submission modes. In timing mode each client submits its
// script one statement at a time (the next starts when the previous
// completes), so scan cohorts can only form when independent clients happen
// to overlap within the registry's join window or attach bound. In plan mode
// each client submits the whole script as one planned batch: core.SubmitBatch
// plans every statement, detects the six scans' common subplan by cohort key,
// and hands them to the registry as one plan-driven group — a cohort arrival
// timing alone would never assemble from a single client. The acceptance
// tests assert, at both simulator steps, that plan mode forms strictly more
// cohorted statements and at least matches timing-mode throughput.
//
// The comparison is intentionally not concurrency-matched: batch submission
// keeps a client's eight statements in flight together while timing mode
// keeps one, and the report says so — the experiment's claim is about where
// cohorts come from, with throughput as a non-regression floor, not a
// controlled speedup measurement.

// plannerClients is the closed-loop client population of the experiment.
const plannerClients = 8

// plannerScans is the number of same-column shareable scans per client script.
const plannerScans = 6

// plannerSchema is the experiment's fixture schema: a hot scanned table, two
// dimension tables of different filtered sizes (so the join-order pass has a
// real decision), and the fact table joining both.
type plannerSchema struct {
	hot, dim1, dim2, fact *colstore.Table
}

// newPlannerSchema builds and IVP-places the fixture schema for a dataset of
// the given scale rows.
func newPlannerSchema(e *core.Engine, rows int) plannerSchema {
	s := plannerSchema{
		hot: colstore.NewTable("HOT", []*colstore.Column{
			colstore.NewSynthetic("H_VAL", rows, 1<<14, false),
		}),
		dim1: colstore.NewTable("DIM1", []*colstore.Column{
			colstore.NewSynthetic("D1_DATE", rows/4, 1<<12, false),
			colstore.NewSynthetic("D1_ID", rows/4, 1<<14, false),
		}),
		dim2: colstore.NewTable("DIM2", []*colstore.Column{
			colstore.NewSynthetic("D2_REGION", rows/16, 1<<10, false),
			colstore.NewSynthetic("D2_ID", rows/16, 1<<12, false),
		}),
		fact: colstore.NewTable("FACT", []*colstore.Column{
			colstore.NewSynthetic("F_FK1", rows, 1<<14, false),
			colstore.NewSynthetic("F_FK2", rows, 1<<12, false),
		}),
	}
	sockets := []int{0, 1, 2, 3}
	for _, t := range []*colstore.Table{s.hot, s.dim1, s.dim2, s.fact} {
		for _, c := range t.Parts[0].Columns {
			e.Placer.PlaceIVP(c, sockets)
		}
	}
	return s
}

// scanQuery is one of the script's shareable hot-column scans.
func (sc plannerSchema) scanQuery(client int, sockets int, onDone func(float64)) *core.Query {
	return &core.Query{
		Table: sc.hot, Column: "H_VAL", Selectivity: lowSel,
		Parallel: true, Strategy: core.Bound,
		HomeSocket: client % sockets,
		OnDone:     onDone,
	}
}

// starOne is the script's single-dimension star statement (the shape
// join.ExecuteStar plans).
func (sc plannerSchema) starOne(client int, sockets int, onDone func(float64)) join.StarSpec {
	return join.StarSpec{
		Dim: sc.dim1, DimPredicate: "D1_DATE", DimKey: "D1_ID",
		Fact: sc.fact, FactFK: "F_FK1",
		Selectivity: 0.05, HitsPerProbeRow: 1,
		AggBytesPerRow: 12, AggCyclesPerRow: 24,
		HTSockets: []int{0}, Strategy: core.Bound,
		HomeSocket: client % sockets,
		OnDone:     onDone,
	}
}

// starTwo is the script's two-dimension star statement. The written dimension
// order is deliberately wrong — the large filtered dimension is listed first,
// so BuildStar nests the small one outermost — and the join-order pass must
// rewrite it (DIM1 est rows/80 before DIM2 est rows/160 in lowered order).
func (sc plannerSchema) starTwo() plan.StarStatement {
	return plan.StarStatement{
		Fact: sc.fact,
		Dims: []plan.StarDim{
			{Dim: sc.dim1, Predicate: "D1_DATE", Key: "D1_ID", FactFK: "F_FK1",
				Selectivity: 0.05, HitsPerProbeRow: 1},
			{Dim: sc.dim2, Predicate: "D2_REGION", Key: "D2_ID", FactFK: "F_FK2",
				Selectivity: 0.1, HitsPerProbeRow: 1},
		},
		AggBytesPerRow: 12, AggCyclesPerRow: 24,
		HTSockets: []int{0},
	}
}

// submitStarTwo plans and submits the two-dimension star statement —
// the multi-join path core.Submit cannot express, driven straight through
// Build -> Optimize -> Lower.
func submitStarTwo(e *core.Engine, sc plannerSchema, client int, onDone func(float64)) {
	st := sc.starTwo()
	stats := plan.Collect(sc.dim1, sc.dim2, sc.fact)
	low := plan.Optimize(plan.BuildStar(st), stats, &e.Costs).Lower(plan.Deps{Alloc: e.Placer.Alloc})
	e.SubmitPipeline(core.Bound, client%e.Machine.Sockets, onDone, low.Ops...)
}

// PlannerRun is the measured outcome of one planner-experiment mode, exposed
// so the acceptance tests can assert the criteria at both simulator scales.
type PlannerRun struct {
	// Label and PlanDriven identify the submission mode.
	Label      string
	PlanDriven bool

	// QPM and QueriesDone are the measure-window statement throughput.
	QPM         float64
	QueriesDone uint64
	// BytesPerQuery is physical MC traffic per completed statement.
	BytesPerQuery float64
	// Latency is the completed-statement latency distribution.
	Latency metrics.LatencyStats

	// Cohorts holds the whole-run registry counters. CohortedStatements is
	// Merged+Attached — the statements that shared another statement's pass —
	// and PlanGrouped of those arrived through plan-driven groups.
	Cohorts            sharedscan.Stats
	CohortedStatements uint64
	MeanCohort         float64
}

// RunPlanner executes the mixed script workload in one submission mode.
func RunPlanner(s Scale, planDriven bool) PlannerRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	reg := e.EnableSharedScans(sharedscan.Config{})
	sc := newPlannerSchema(e, s.Rows)
	sockets := e.Machine.Sockets

	// statements per script round: the scans plus the two stars.
	perRound := plannerScans + 2
	for i := 0; i < plannerClients; i++ {
		client := i
		if planDriven {
			// Plan mode: the whole round is submitted together; the next round
			// starts when all its statements complete.
			var startRound func()
			pending := 0
			done := func(float64) {
				pending--
				if pending == 0 {
					startRound()
				}
			}
			startRound = func() {
				pending = perRound
				qs := make([]*core.Query, plannerScans)
				for j := range qs {
					qs[j] = sc.scanQuery(client, sockets, done)
				}
				e.SubmitBatch(qs)
				one := sc.starOne(client, sockets, done)
				join.ExecuteStar(e, one)
				submitStarTwo(e, sc, client, done)
			}
			startRound()
			continue
		}
		// Timing mode: the script runs one statement at a time; cohorts can
		// only form across clients whose statements happen to overlap.
		var issue func(k int)
		issue = func(k int) {
			next := func(float64) { issue(k + 1) }
			switch pos := k % perRound; {
			case pos < plannerScans:
				e.Submit(sc.scanQuery(client, sockets, next))
			case pos == plannerScans:
				one := sc.starOne(client, sockets, next)
				join.ExecuteStar(e, one)
			default:
				submitStarTwo(e, sc, client, next)
			}
		}
		issue(0)
	}

	e.Sim.Run(s.Warmup)
	e.Counters.Reset()
	e.Sim.Run(s.Warmup + s.Measure)

	label := "timing-driven (statement at a time)"
	if planDriven {
		label = "plan-driven (batched scripts)"
	}
	run := PlannerRun{
		Label: label, PlanDriven: planDriven,
		QPM:         e.Counters.ThroughputQPM(s.Measure),
		QueriesDone: e.Counters.QueriesDone,
		Latency:     e.Counters.Latencies(),
		Cohorts:     reg.Stats(),
		MeanCohort:  reg.MeanCohort(),
	}
	run.CohortedStatements = run.Cohorts.Merged + run.Cohorts.Attached
	if run.QueriesDone > 0 {
		run.BytesPerQuery = e.Counters.TotalMCBytes() / float64(run.QueriesDone)
	}
	return run
}

// runPlanner renders the planner experiment: both submission modes side by
// side with throughput, traffic, and the cohort provenance counters.
func runPlanner(s Scale) *Report {
	rep := &Report{
		ID:    "planner",
		Title: "Plan-driven cohorts: batch planning vs arrival timing",
		Description: "Eight closed-loop clients run a mixed script (6 shared-column scans + 2 star joins) " +
			"either statement-by-statement or as planned batches. Plan mode detects the scans' common subplan " +
			"at plan time and submits them as one cohort group. Note the modes are not concurrency-matched: " +
			"a batched script keeps all its statements in flight together, so throughput is a non-regression " +
			"floor, not a controlled speedup.",
	}
	timing := RunPlanner(s, false)
	planned := RunPlanner(s, true)

	tb := rep.AddTable("submission modes", []string{
		"mode", "done", "q/min", "KiB/query", "p50", "p99"})
	for _, r := range []PlannerRun{timing, planned} {
		tb.AddRow(r.Label, itoa(int(r.QueriesDone)), f0(r.QPM),
			f1(r.BytesPerQuery/1024), ms(r.Latency.P50), ms(r.Latency.P99))
	}

	ct := rep.AddTable("cohort provenance (whole run)", []string{
		"mode", "stmts", "passes", "solo", "merged", "attached", "plan-grouped", "cohorted", "mean cohort"})
	for _, r := range []PlannerRun{timing, planned} {
		c := r.Cohorts
		ct.AddRow(r.Label, itoa(int(c.Statements)), itoa(int(c.Passes)), itoa(int(c.Solo)),
			itoa(int(c.Merged)), itoa(int(c.Attached)), itoa(int(c.PlanGrouped)),
			itoa(int(r.CohortedStatements)), f1(r.MeanCohort))
	}
	return rep
}

// explainFixtureRows sizes the EXPLAIN fixtures: fixed (quick-scale rows)
// regardless of the invocation's -scale flag, so the rendered plans — and the
// plan-golden files CI diffs — are identical everywhere.
const explainFixtureRows = 60_000

// explainPlanner renders the planner experiment's EXPLAIN walkthrough: the
// shareable scan (with its cohort key), the plan-driven grouping of the
// batch, and the two-dimension star with the join-order rewrite visible.
func explainPlanner() string {
	e := core.NewWithStep(FourSocket.Build(), 1, core.DefaultStep)
	sc := newPlannerSchema(e, explainFixtureRows)
	stats := plan.Collect(sc.hot, sc.dim1, sc.dim2, sc.fact)

	var b strings.Builder
	b.WriteString("## statement 1 of the script: shareable hot-column scan\n")
	l := plan.BuildQuery(plan.Statement{
		Table: sc.hot, Column: "H_VAL", Selectivity: lowSel, Parallel: true,
	})
	b.WriteString(l.Explain())
	phys := plan.Optimize(l, stats, &e.Costs)
	b.WriteString(phys.Explain())
	fmt.Fprintf(&b, "## statements 2-%d share this plan: SubmitBatch detects the common subplan\n", plannerScans)
	fmt.Fprintf(&b, "## and submits all %d as ONE plan-driven cohort group on key %s\n", plannerScans, phys.ShareKey)

	b.WriteString("## star statement: two dimensions, written in the wrong order\n")
	star := plan.BuildStar(sc.starTwo())
	b.WriteString(star.Explain())
	b.WriteString(plan.Optimize(star, stats, &e.Costs).Explain())
	return b.String()
}

// explainStarJoin renders the starjoin experiment's statement through the
// planner: the single-dimension shape whose lowering is pinned
// counter-identical to the hand-wired pipeline.
func explainStarJoin() string {
	e := core.NewWithStep(FourSocket.Build(), 1, core.DefaultStep)
	sockets := []int{0, 1, 2, 3}
	dim := colstore.NewTable("DIM", []*colstore.Column{
		colstore.NewSynthetic("D_DATE", explainFixtureRows/4, 1<<12, false),
		colstore.NewSynthetic("D_ID", explainFixtureRows/4, 1<<14, false),
	})
	fact := colstore.NewTable("FACT", []*colstore.Column{
		colstore.NewSynthetic("F_FK", explainFixtureRows, 1<<14, false),
	})
	for _, c := range dim.Parts[0].Columns {
		e.Placer.PlaceIVP(c, sockets)
	}
	e.Placer.PlaceIVP(fact.Parts[0].Columns[0], sockets)

	spec := join.StarSpec{
		Dim: dim, DimPredicate: "D_DATE", DimKey: "D_ID",
		Fact: fact, FactFK: "F_FK",
		Selectivity: 0.05, HitsPerProbeRow: 1,
		AggBytesPerRow: 12, AggCyclesPerRow: 24,
		HTSockets: []int{0},
	}
	l := spec.Plan()
	var b strings.Builder
	b.WriteString(l.Explain())
	b.WriteString(plan.Optimize(l, plan.Collect(dim, fact), &e.Costs).Explain())
	return b.String()
}
