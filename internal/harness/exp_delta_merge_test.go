package harness

// Tests for the delta-merge experiment: the acceptance criteria of the
// write-path lifecycle — monotonic scan degradation while the delta grows,
// post-merge recovery to the read-only baseline, and write-hot replica
// reclaim — validated at BOTH simulator scales (quick's coarse 25µs step and
// full's 5µs step), per the repo's rule that perf claims must survive the
// fine-step simulation.

import "testing"

func TestDeltaMergeLifecycleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window mixed read/write simulation")
	}
	checkDeltaMergeLifecycle(t, QuickScale())
}

func TestDeltaMergeLifecycleFull(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window mixed read/write simulation at the fine step")
	}
	checkDeltaMergeLifecycle(t, FullScale())
}

func checkDeltaMergeLifecycle(t *testing.T, s Scale) {
	t.Helper()
	base := RunDeltaMerge(s, false)
	mixed := RunDeltaMerge(s, true)

	// Control: the read-only run never merges, keeps its replicas, and the
	// two runs are bit-identical until the writers start (the write path is
	// inert without writes).
	if base.MergesCompleted != 0 {
		t.Fatalf("read-only baseline completed %d merges", base.MergesCompleted)
	}
	if !base.ReplicatedAtEnd {
		t.Fatal("read-only baseline lost its replicas")
	}
	for w := 0; w < 4; w++ {
		if base.TP[w] != mixed.TP[w] {
			t.Fatalf("pre-write window %d diverged: baseline %.0f vs mixed %.0f (write path leaked into read-only execution)",
				w+1, base.TP[w], mixed.TP[w])
		}
	}

	// The size trigger must have fired during the write phase.
	if len(mixed.MergeTimes) == 0 {
		t.Fatalf("no merge fired for the written column; actions: %+v", mixed.Actions)
	}
	firstMerge := mixed.MergeTimes[0]
	if firstMerge < mixed.WriteStart || firstMerge > mixed.WriteStop {
		t.Fatalf("first merge at %.1fms outside the write phase [%.1f, %.1f]ms",
			firstMerge*1e3, mixed.WriteStart*1e3, mixed.WriteStop*1e3)
	}
	if mixed.MergesCompleted == 0 {
		t.Fatal("merges fired but none completed")
	}

	// (a) Scan throughput degrades monotonically with delta size before the
	// merge: over the windows fully inside [writeStart, firstMerge), TP is
	// non-increasing (3% jitter tolerance) and the degradation is
	// substantial.
	var pre []float64
	for w := 4; float64(w+1)*mixed.Window <= firstMerge; w++ {
		pre = append(pre, mixed.TP[w])
	}
	if len(pre) < 2 {
		t.Fatalf("merge fired too early: only %d full degradation windows before %.1fms", len(pre), firstMerge*1e3)
	}
	for i := 1; i < len(pre); i++ {
		if pre[i] > pre[i-1]*1.03 {
			t.Errorf("degradation not monotonic: window TP rose %.0f -> %.0f while the delta grew (series %v)",
				pre[i-1], pre[i], pre)
		}
	}
	minPre := pre[0]
	for _, v := range pre {
		if v < minPre {
			minPre = v
		}
	}
	if minPre > 0.85*mixed.PreWriteTP {
		t.Errorf("degradation not substantial: min pre-merge TP %.0f vs pre-write %.0f (want < 85%%)",
			minPre, mixed.PreWriteTP)
	}

	// (b) Post-merge throughput recovers to within 10% of the read-only
	// baseline (compared against the baseline run's same tail windows).
	if mixed.RecoveredTP < 0.9*base.RecoveredTP || mixed.RecoveredTP > 1.1*base.RecoveredTP {
		t.Errorf("recovery outside 10%%: recovered %.0f vs read-only baseline %.0f (%.3fx)",
			mixed.RecoveredTP, base.RecoveredTP, mixed.RecoveredTP/base.RecoveredTP)
	}
	if mixed.FinalDeltaBytes > int64(mixed.RowsGrownTo/50) {
		t.Errorf("delta not folded at the end: %d bytes linger", mixed.FinalDeltaBytes)
	}

	// (c) The write-hot replicas are reclaimed, during the write phase.
	if mixed.ReplicatedAtEnd {
		t.Error("write-hot column still replicated at the end")
	}
	drops := 0
	for _, a := range mixed.Actions {
		if a.Kind == "drop-replica" {
			drops++
			if a.Time < mixed.WriteStart || a.Time > mixed.WriteStop {
				t.Errorf("drop-replica at %.1fms outside the write phase", a.Time*1e3)
			}
		}
		if a.Kind == "replicate" {
			t.Errorf("replicate action in a run with writes: %+v", a)
		}
	}
	if drops < 2 {
		t.Errorf("expected both extra replicas reclaimed, got %d drop-replica actions", drops)
	}

	// The write mix is update-heavy by construction.
	if mixed.Inserts == 0 || mixed.Updates <= mixed.Inserts {
		t.Errorf("write mix off: %d inserts, %d updates", mixed.Inserts, mixed.Updates)
	}
	// Inserts merged into the main grow the row count.
	if mixed.RowsGrownTo <= s.Rows {
		t.Errorf("merged inserts did not grow the main: %d rows (started at %d)", mixed.RowsGrownTo, s.Rows)
	}
}
