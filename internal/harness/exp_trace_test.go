package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"numacs/internal/adaptive"
	"numacs/internal/admit"
	"numacs/internal/chaos"
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/sharedscan"
	"numacs/internal/trace"
	"numacs/internal/workload"
)

// TestTraceDisabledBitIdentical pins the flight recorder's zero-cost-when-
// disabled guarantee: an engine with tracing enabled (statement spans,
// decision log, AND the sampler actor) must equal the untraced engine on
// every counter and the full latency distribution, bit for bit. The scenario
// deliberately stacks admission, shared scans, the adaptive placer, and a
// real chaos fault so every hook site fires during the traced run — tracing
// is passive (it records timestamps and counters, starts no flows), so even
// a busy recorder must not perturb a single allocation, dispatch, or RNG
// draw.
func TestTraceDisabledBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-seed simulation runs")
	}
	run := func(traced bool) *core.Engine {
		s := QuickScale()
		e := core.NewWithStep(FourSocket.Build(), 1, 25e-6)
		table := workload.Generate(workload.DatasetConfig{
			Rows: 60_000, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
			Seed: 1, Synthetic: true,
		})
		e.Placer.PlaceRR(table)
		if traced {
			e.EnableTracing(trace.Config{SampleInterval: 0.01})
		}
		e.EnableSharedScans(sharedscan.Config{})
		e.EnableAdmission(chaosAdmissionConfig(s, []admit.TenantSpec{
			{Name: "a", Weight: 2},
			{Name: "b", Weight: 1},
		}))
		cfg := adaptive.DefaultConfig()
		cfg.Period = 0.01
		placer := adaptive.New(e, &adaptive.Catalog{Tables: []*colstore.Table{table}}, cfg)
		e.Sim.AddActor(placer)
		e.EnableChaos(chaos.Config{Schedule: []chaos.Event{
			{At: 0.04, Kind: chaos.SocketOffline, Socket: 1},
			{At: 0.06, Kind: chaos.SocketOnline, Socket: 1},
		}}, table)
		gen := workload.NewMultiTenant(e, table, workload.MultiTenantConfig{
			Tenants: []workload.TenantLoad{
				{Name: "a", Weight: 2, Clients: 32,
					Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
					Chooser: workload.FixedColumnChoice{Col: 0}},
				{Name: "b", Weight: 1, Clients: 32,
					Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
					Chooser: workload.HotColumnChoice{Hot: 3, P: 0.5}},
			},
			Seed: 3,
		})
		e.Sim.AddActor(gen)
		gen.Start()
		e.Sim.Run(0.08)
		return e
	}
	plain := run(false)
	traced := run(true)

	// The traced run must actually have recorded — a vacuous recorder would
	// make the equality below meaningless.
	data := traced.Trace.Data()
	if len(data.Statements) == 0 || len(data.Decisions) == 0 || len(data.Samples) == 0 {
		t.Fatalf("recorder stayed empty: %d statements, %d decisions, %d samples",
			len(data.Statements), len(data.Decisions), len(data.Samples))
	}

	d, s := plain.Counters, traced.Counters
	if d.QueriesDone != s.QueriesDone || d.TasksExecuted != s.TasksExecuted ||
		d.TasksStolen != s.TasksStolen {
		t.Fatalf("counts drifted: plain {q %d, tasks %d, stolen %d} vs traced {q %d, tasks %d, stolen %d}",
			d.QueriesDone, d.TasksExecuted, d.TasksStolen,
			s.QueriesDone, s.TasksExecuted, s.TasksStolen)
	}
	if d.TotalMCBytes() != s.TotalMCBytes() || d.LLCLocal != s.LLCLocal ||
		d.LLCRemote != s.LLCRemote || d.LinkDataBytes != s.LinkDataBytes ||
		d.LinkTotalBytes != s.LinkTotalBytes {
		t.Fatalf("traffic drifted: plain MC %v vs traced MC %v",
			d.TotalMCBytes(), s.TotalMCBytes())
	}
	if d.IPC() != s.IPC() || d.WorkerBusySeconds != s.WorkerBusySeconds {
		t.Fatalf("compute drifted: IPC %v vs %v, busy %v vs %v",
			d.IPC(), s.IPC(), d.WorkerBusySeconds, s.WorkerBusySeconds)
	}
	if d.Latencies() != s.Latencies() {
		t.Fatalf("latency distribution drifted:\n plain  %+v\n traced %+v",
			d.Latencies(), s.Latencies())
	}
}

// TestChaosSocketTrace is the flight-recorder acceptance test on the
// chaos-socket scenario: the statement traces must decompose scheduler queue
// wait from execution time, the decision log must contain both the injected
// fault (with its blast radius) and the placer's re-replication to the
// returned socket (with its cause), the windowed MC time-series must exhibit
// the fault dip, and the Chrome export must parse as a non-empty JSON array.
func TestChaosSocketTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs")
	}
	faulted := RunChaosSocket(QuickScale(), true)
	tr := faulted.Trace
	if tr == nil {
		t.Fatal("faulted run recorded no trace")
	}

	// Windowed time-series: one sample per reporting window, and the fault
	// windows' memory throughput dips visibly below the healthy baseline.
	if len(tr.Samples) != chaosWindows {
		t.Fatalf("recorded %d samples, want %d", len(tr.Samples), chaosWindows)
	}
	baseline, fault := 0.0, 0.0
	for w := 0; w < chaosFaultWindow; w++ {
		baseline += tr.Samples[w].TotalMCGiBs()
	}
	baseline /= chaosFaultWindow
	for w := chaosFaultWindow; w < chaosClearWindow; w++ {
		fault += tr.Samples[w].TotalMCGiBs()
	}
	fault /= chaosClearWindow - chaosFaultWindow
	if fault >= 0.85*baseline {
		t.Errorf("fault-window MC %.1f GiB/s >= 0.85x baseline %.1f — the dip is not in the series", fault, baseline)
	}
	// The per-window completion deltas in the series are exactly the run's
	// progress counters (they are derived from the same samples).
	for w, smp := range tr.Samples {
		if smp.Delta.QueriesDone != faulted.Done[w] {
			t.Errorf("window %d: sample delta %d != run.Done %d", w+1, smp.Delta.QueriesDone, faulted.Done[w])
		}
	}

	// Statement traces: completed statements must decompose into scheduler
	// queue wait and execution time (chaos-socket runs no admission, so the
	// queue wait here is the scheduler's, not the controller's).
	nDone, nSchedWait, nExec := 0, 0, 0
	for _, s := range tr.Statements {
		if s.Done >= 0 {
			nDone++
			if s.Done < s.Submitted {
				t.Fatalf("statement %d done %.6f before submitted %.6f", s.ID, s.Done, s.Submitted)
			}
		}
		if s.SchedulerWait() > 0 {
			nSchedWait++
		}
		if s.ExecSeconds() > 0 {
			nExec++
		}
	}
	if nDone == 0 || nExec == 0 {
		t.Fatalf("no completed/executing statements traced: done %d, exec %d of %d", nDone, nExec, len(tr.Statements))
	}
	if nSchedWait == 0 {
		t.Error("no statement shows scheduler queue wait — the first-task hook is not firing")
	}

	// Decision log: the injected fault with its blast radius, and — after the
	// socket returns — the placer re-earning the dropped replica, with cause.
	var sawOffline, sawReplicateBack bool
	clearAt := float64(chaosClearWindow) * faulted.Window
	for _, d := range tr.Decisions {
		if d.Source == "chaos" && d.Kind == "socket-offline" {
			sawOffline = true
			if d.Cause == "" {
				t.Error("chaos socket-offline decision has no cause")
			}
		}
		if d.Source == "placer" && d.Kind == "replicate" &&
			d.Time >= clearAt && d.To == chaosSocketVictim {
			sawReplicateBack = true
			if d.Cause == "" {
				t.Error("placer replicate decision has no cause")
			}
		}
	}
	if !sawOffline {
		t.Error("decision log misses the injected socket-offline fault")
	}
	if !sawReplicateBack {
		t.Errorf("decision log misses the placer's re-replication to socket %d after the fault cleared", chaosSocketVictim)
	}

	// Chrome export: a valid, non-empty JSON array.
	var buf bytes.Buffer
	if err := trace.ExportChrome(&buf, tr); err != nil {
		t.Fatalf("ExportChrome: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("Chrome export is not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("Chrome export is empty")
	}
}

// TestChaosReportHasTimeline: the chaos reports carry the flight-recorder
// tables and attach the trace data for scanbench -trace / -json export.
func TestChaosReportHasTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation runs")
	}
	e, ok := ByID("chaos-thermal")
	if !ok {
		t.Fatal("chaos-thermal not registered")
	}
	rep := e.Run(QuickScale())
	if rep.Trace == nil {
		t.Fatal("report has no trace data attached")
	}
	var sawSeries, sawDecisions bool
	for _, tb := range rep.Tables {
		switch tb.Name {
		case "flight recorder: faulted-run time-series":
			sawSeries = true
			if len(tb.Rows) != chaosWindows {
				t.Errorf("time-series table has %d rows, want %d", len(tb.Rows), chaosWindows)
			}
		case "flight recorder: faulted-run decisions":
			sawDecisions = true
			if len(tb.Rows) == 0 {
				t.Error("decision table is empty")
			}
		}
	}
	if !sawSeries || !sawDecisions {
		t.Fatalf("flight-recorder tables missing: series %v, decisions %v", sawSeries, sawDecisions)
	}
}
