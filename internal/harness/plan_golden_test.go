package harness

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPlanGoldens pins every experiment's EXPLAIN rendering to its committed
// golden under testdata/plans/ — the same files the CI plan-golden gate diffs
// with `scanbench -explain <id>`. A failure here means a planner change moved
// an optimized plan; regenerate deliberately with
//
//	go run ./cmd/scanbench -explain <id> > testdata/plans/<id>.txt
//
// and review the diff like any other behavior change.
func TestPlanGoldens(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "plans")
	checked := 0
	for _, id := range IDs() {
		e, _ := ByID(id)
		if e.Explain == nil {
			continue
		}
		checked++
		want, err := os.ReadFile(filepath.Join(dir, id+".txt"))
		if err != nil {
			t.Errorf("%s: missing golden (regenerate with scanbench -explain %s): %v", id, id, err)
			continue
		}
		if got := e.Explain(); got != string(want) {
			t.Errorf("%s: EXPLAIN drifted from testdata/plans/%s.txt\n--- got ---\n%s--- want ---\n%s",
				id, id, got, want)
		}
	}
	if checked < 2 {
		t.Fatalf("only %d experiments expose Explain; expected planner and starjoin at least", checked)
	}
}
