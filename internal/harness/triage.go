package harness

import (
	"fmt"
	"strings"

	"numacs/internal/insight"
)

// chaosSLOs is the declarative objective set every chaos scenario is judged
// against: whole-run p99 latency bounded by a multiple of the reporting
// window (generous enough that a graceful degradation passes, tight enough
// that a collapse fails), every tenant above half its even completion share
// (skipped automatically by the analyzer on single-tenant scenarios), and
// the no-livelock floor of at least one completion per window.
func chaosSLOs(window float64) insight.SLOSpec {
	return insight.SLOSpec{
		Latency: []insight.LatencyTarget{
			{Class: "", Percentile: 99, Target: 2 * window},
		},
		FairnessFloor: 0.5,
		MinWindowDone: 1,
	}
}

// autoTriage analyzes the faulted run's flight-recorder data against the
// chaos SLOs, attaches the structured report for scanbench -triage / -json,
// and renders its tables into the experiment report — incidents with their
// suspect decisions, SLO verdicts, and the per-group blame decomposition.
func autoTriage(rep *Report, faulted ChaosRun) {
	if faulted.Trace == nil {
		return
	}
	faulted.Trace.Meta.RunID = rep.ID
	tri := insight.Analyze(faulted.Trace, chaosSLOs(faulted.Window))
	rep.Triage = tri

	inc := rep.AddTable("auto-triage: incidents (faulted run)", []string{
		"series", "dir", "windows", "baseline", "value", "change", "z", "suspects"})
	if len(tri.Incidents) == 0 {
		inc.AddRow("(none)", "-", "-", "-", "-", "-", "-", "-")
	}
	for _, in := range tri.Incidents {
		sus := "UNEXPLAINED"
		if !in.Unexplained {
			var parts []string
			for _, d := range in.SuspectDecisions {
				parts = append(parts, fmt.Sprintf("%s:%s@%.1fms", d.Source, d.Kind, d.Time*1e3))
			}
			sus = strings.Join(parts, " ")
		}
		inc.AddRow(in.Series, in.Direction,
			fmt.Sprintf("w%d-w%d", in.FirstWindow+1, in.LastWindow+1),
			f1(in.Baseline), f1(in.Value), pct(in.Magnitude),
			f1(in.Z), sus)
	}

	sv := rep.AddTable("auto-triage: SLO verdicts (faulted run)", []string{
		"objective", "status", "measured", "target", "evidence"})
	for _, v := range tri.Verdicts {
		status := v.Status
		if v.Status == insight.VerdictFail {
			status = "FAIL"
		}
		sv.AddRow(v.Name, status, fmt.Sprintf("%.4g", v.Measured), fmt.Sprintf("%.4g", v.Target), v.Evidence)
	}

	bl := rep.AddTable("auto-triage: blame by tenant (faulted run)", []string{
		"tenant", "done", "shed", "p50", "p99", "tail blame"})
	for _, row := range tri.ByTenant {
		bl.AddRow(row.Group, itoa(row.Count), itoa(row.Shed),
			ms(row.P50), ms(row.P99), row.Tail.String())
	}
}
