package harness

import (
	"testing"

	"numacs/internal/core"
	"numacs/internal/workload"
)

// TestReadOnlyScanPathsBitIdentical pins three fixed-seed read-only scenarios
// to the exact metric values the engine produced before the delta-store write
// path existed (captured at PR 2's HEAD). A column that is never written has
// a nil Delta, so the scan planner must take the identical code path, consume
// the identical RNG stream, and start the identical flows — any drift in
// these numbers means the write path leaked into the read-only side.
func TestReadOnlyScanPathsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-seed simulation runs")
	}
	ds := func(rows int) workload.DatasetConfig {
		return workload.DatasetConfig{Rows: rows, Columns: 16, BitcaseMin: 12, BitcaseMax: 18, Seed: 1}
	}
	specs := []Spec{
		{Machine: FourSocket, Dataset: ds(60_000),
			Placement: PlacementSpec{Kind: RR}, Strategy: core.Bound,
			Clients: 64, Selectivity: 1e-5, Parallel: true,
			Warmup: 0.02, Measure: 0.06, Step: 25e-6, Seed: 1},
		{Machine: FourSocket, Dataset: ds(60_000),
			Placement: PlacementSpec{Kind: IVP, Partitions: 4}, Strategy: core.Target,
			Clients: 32, Selectivity: 0.10, Parallel: true, Skew: true,
			Warmup: 0.02, Measure: 0.06, Step: 25e-6, Seed: 3},
		{Machine: EightSocket, Dataset: ds(40_000),
			Placement: PlacementSpec{Kind: PP, Partitions: 4}, Strategy: core.OSched,
			Clients: 16, Selectivity: 1e-3, Parallel: false,
			Warmup: 0.02, Measure: 0.06, Step: 25e-6, Seed: 5},
	}
	// Golden values captured on the pre-write-path engine (exact, not
	// approximate: the simulation is deterministic).
	want := []struct {
		QPM           float64
		Tasks, Stolen uint64
		LLCLocal      float64
		LLCRemote     float64
		IPC           float64
		QPIDataGiB    float64
		QPITotalGiB   float64
		QueriesDone   uint64
		MemTPTotal    float64
	}{
		{QPM: 3.072e+07, Tasks: 61440, Stolen: 0, LLCLocal: 5.156088450002828e+07, LLCRemote: 0,
			IPC: 0.5731845833333337, QPIDataGiB: 0, QPITotalGiB: 0, QueriesDone: 30720, MemTPTotal: 51.22113674878373},
		{QPM: 1.536e+07, Tasks: 122880, Stolen: 941, LLCLocal: 2.6090571359002005e+07, LLCRemote: 8.974554853498036e+06,
			IPC: 0.6803703636363638, QPIDataGiB: 0.534925154059994, QPITotalGiB: 0.7221489579808089, QueriesDone: 15360, MemTPTotal: 34.83407319833872},
		{QPM: 3.129e+06, Tasks: 6267, Stolen: 0, LLCLocal: 455225.5625000003, LLCRemote: 2.811763447299262e+06,
			IPC: 0.11170341213073785, QPIDataGiB: 0.26351698906010723, QPITotalGiB: 0.49367876226932883, QueriesDone: 3129, MemTPTotal: 3.2454619902361603},
	}
	for i, spec := range specs {
		r := Run(spec)
		w := want[i]
		if r.QPM != w.QPM || r.Tasks != w.Tasks || r.Stolen != w.Stolen ||
			r.LLCLocal != w.LLCLocal || r.LLCRemote != w.LLCRemote ||
			r.IPC != w.IPC || r.QPIDataGiB != w.QPIDataGiB || r.QPITotalGiB != w.QPITotalGiB ||
			r.QueriesDone != w.QueriesDone || r.MemTPTotal != w.MemTPTotal {
			t.Errorf("spec %d drifted from the pre-write-path golden values:\n got  {QPM: %v, Tasks: %d, Stolen: %d, LLCLocal: %v, LLCRemote: %v, IPC: %v, QPIDataGiB: %v, QPITotalGiB: %v, QueriesDone: %d, MemTPTotal: %v}\n want %+v",
				i, r.QPM, r.Tasks, r.Stolen, r.LLCLocal, r.LLCRemote, r.IPC, r.QPIDataGiB, r.QPITotalGiB, r.QueriesDone, r.MemTPTotal, w)
		}
	}
}
