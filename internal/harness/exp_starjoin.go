package harness

import (
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/join"
)

// runStarJoin exercises the composed scan -> join -> aggregate statement the
// operator-pipeline layer enables (Section 8 direction): a closed-loop
// population of star-join statements — dimension predicate scan, hash-table
// build from the qualifying keys, fact foreign-key probe, measure
// aggregation — on the 4-socket machine, across the three scheduling
// strategies and the two hash-table placements. None of the pre-pipeline
// execution paths (scan state machine, private join fan-out, aggregation
// clients) could express this statement.
func runStarJoin(s Scale) *Report {
	rep := &Report{ID: "starjoin", Title: "Composed star-join statements (scan -> join -> aggregate)",
		Description: "Closed-loop star-join statements on the 4-socket machine: the dimension predicate scan feeds the hash-table build, the fact FK probes it, and matching measures are aggregated — one scheduled statement per client."}

	dimRows := s.Rows / 4
	factRows := s.Rows
	clients := 32

	run := func(htPartitioned bool, st core.Strategy) (float64, []float64) {
		e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
		sockets := []int{0, 1, 2, 3}
		dim := colstore.NewTable("DIM", []*colstore.Column{
			colstore.NewSynthetic("D_DATE", dimRows, 1<<12, false),
			colstore.NewSynthetic("D_ID", dimRows, 1<<14, false),
		})
		fact := colstore.NewTable("FACT", []*colstore.Column{
			colstore.NewSynthetic("F_FK", factRows, 1<<14, false),
		})
		for _, c := range dim.Parts[0].Columns {
			e.Placer.PlaceIVP(c, sockets)
		}
		e.Placer.PlaceIVP(fact.Parts[0].Columns[0], sockets)
		ht := []int{0}
		if htPartitioned {
			ht = sockets
		}

		inflight := 0
		var issue func(client int)
		issue = func(client int) {
			if inflight >= clients {
				return
			}
			inflight++
			join.ExecuteStar(e, join.StarSpec{
				Dim: dim, DimPredicate: "D_DATE", DimKey: "D_ID",
				Fact: fact, FactFK: "F_FK",
				Selectivity:     0.05,
				HitsPerProbeRow: 1,
				AggBytesPerRow:  12, AggCyclesPerRow: 24,
				HTSockets:  ht,
				Strategy:   st,
				HomeSocket: client % e.Machine.Sockets,
				OnDone:     func(float64) { inflight--; issue(client) },
			})
		}
		for i := 0; i < clients; i++ {
			issue(i)
		}
		e.Sim.Run(s.Warmup)
		e.Counters.Reset()
		e.Sim.Run(s.Warmup + s.Measure)
		return e.Counters.ThroughputQPM(s.Measure), e.Counters.MemoryThroughputGiBs(s.Measure)
	}

	tb := rep.AddTable("", []string{"hash table", "strategy", "TP(stmt/min)", "per-socket memTP (GiB/s)"})
	for _, htPartitioned := range []bool{false, true} {
		name := "centralized (one socket)"
		if htPartitioned {
			name = "partitioned (all sockets)"
		}
		for _, st := range []core.Strategy{core.OSched, core.Target, core.Bound} {
			tp, mem := run(htPartitioned, st)
			tb.AddRow(name, st.String(), f0(tp), fmtSockets(mem))
		}
	}
	return rep
}
