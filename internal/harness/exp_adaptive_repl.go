package harness

import (
	"fmt"

	"numacs/internal/adaptive"
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/workload"
)

// ReplRun is the measured outcome of one adaptive-repl configuration: the
// per-window throughput and QPI series over virtual time, the placer's
// decision log, and its replica-memory accounting. Exposed so tests can
// assert the acceptance criteria (replication wins, budget respected).
type ReplRun struct {
	Label   string
	TP      []float64 // q/min per window
	QPIGiB  []float64 // QPI data GiB per window
	Actions []adaptive.Action
	// FinalTP is the mean throughput of the last third of the windows,
	// after the placer converged.
	FinalTP          float64
	ReplicaBytes     int64
	PeakReplicaBytes int64
	BudgetBytes      int64
	PagesMoved       int64
	PagesCopied      int64
}

// adaptiveReplWindows is the number of virtual-time windows the experiment
// reports.
const adaptiveReplWindows = 9

// RunAdaptiveRepl executes one adaptive-repl configuration: a read-hot
// single-column skew of unparallelized scan statements (98% of queries hit
// one column, low selectivity, Parallel off — many small concurrent
// statements) on a block RR layout, with the Section 7 placer attached.
// This is the workload the move/partition levers cannot fix: repartitioning
// a column forces every single-task scan to stream most of the IV remotely
// (the Figure 10 effect) and moving it only relocates the hotspot, while a
// replica on every socket serves each scan locally. replicate toggles the
// lever: false caps the placer to the paper's Figure 20 moves and
// repartitioning, true adds the Section 4.2 replication placement under the
// default memory budget.
func RunAdaptiveRepl(s Scale, replicate bool) ReplRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	ds := workload.DatasetConfig{
		Rows: s.Rows, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
		Seed: 1, Synthetic: true,
	}
	table := workload.Generate(ds)
	// Block layout: four columns per socket; the hot column and its three
	// neighbours share socket 0.
	e.Placer.PlaceRRBlocks(table)

	cfg := adaptive.DefaultConfig()
	cfg.Period = s.Measure / 12
	if !replicate {
		cfg.ReplicaBudgetBytes = 0
	}
	placer := adaptive.New(e, &adaptive.Catalog{Tables: []*colstore.Table{table}}, cfg)
	e.Sim.AddActor(placer)

	clients := workload.NewClients(e, table, workload.ClientsConfig{
		N: s.Max, Selectivity: lowSel, Parallel: false, Strategy: core.Bound,
		Chooser: workload.HotColumnChoice{Hot: 2, P: 0.98}, Seed: 11,
	})
	clients.Start()

	label := "move/partition-only"
	if replicate {
		label = "replicating"
	}
	run := ReplRun{Label: label, BudgetBytes: cfg.ReplicaBudgetBytes}
	horizon := s.Warmup + 2*s.Measure
	window := horizon / adaptiveReplWindows
	for w := 0; w < adaptiveReplWindows; w++ {
		e.Counters.Reset()
		e.Sim.Run(float64(w+1) * window)
		run.TP = append(run.TP, e.Counters.ThroughputQPM(window))
		run.QPIGiB = append(run.QPIGiB, e.Counters.LinkDataBytes/(1<<30))
	}
	tail := adaptiveReplWindows / 3
	sum := 0.0
	for _, tp := range run.TP[adaptiveReplWindows-tail:] {
		sum += tp
	}
	run.FinalTP = sum / float64(tail)
	run.Actions = placer.Actions
	run.ReplicaBytes = placer.ReplicaBytes()
	run.PeakReplicaBytes = placer.PeakReplicaBytes
	run.PagesMoved = placer.PagesMoved
	run.PagesCopied = placer.PagesCopied
	return run
}

// runAdaptiveRepl reproduces the adaptive-replication comparison: the same
// read-hot skew of unparallelized statements balanced once with
// moves/repartitioning only (the placer of Figure 20) and once with the
// replication lever enabled. The baseline's levers cannot help here —
// partitioning makes single-task scans stream remotely (Figure 10) and
// moving only relocates the hotspot — while replication serves every scan
// from a local copy on its own socket, so the replicating placer wins on
// both throughput and QPI traffic.
func runAdaptiveRepl(s Scale) *Report {
	rep := &Report{ID: "adaptive-repl", Title: "Adaptive replication of a read-hot column vs move/partition-only"}

	base := RunAdaptiveRepl(s, false)
	repl := RunAdaptiveRepl(s, true)

	header := []string{"configuration"}
	for w := 0; w < adaptiveReplWindows; w++ {
		header = append(header, fmt.Sprintf("w%d", w+1))
	}
	tp := rep.AddTable("throughput over virtual time (q/min per window)", header)
	qpi := rep.AddTable("QPI data traffic over virtual time (GiB per window)", header)
	for _, r := range []ReplRun{base, repl} {
		tpRow, qpiRow := []string{r.Label}, []string{r.Label}
		for w := 0; w < adaptiveReplWindows; w++ {
			tpRow = append(tpRow, f0(r.TP[w]))
			qpiRow = append(qpiRow, fmt.Sprintf("%.2f", r.QPIGiB[w]))
		}
		tp.AddRow(tpRow...)
		qpi.AddRow(qpiRow...)
	}

	sum := rep.AddTable("converged comparison (last third of windows)", []string{
		"configuration", "TP(q/min)", "vs baseline", "replica KiB (peak)", "budget KiB", "pages moved", "pages copied"})
	for _, r := range []ReplRun{base, repl} {
		sum.AddRow(r.Label, f0(r.FinalTP), fmt.Sprintf("%.2fx", r.FinalTP/base.FinalTP),
			fmt.Sprintf("%d (%d)", r.ReplicaBytes/1024, r.PeakReplicaBytes/1024),
			itoa(int(r.BudgetBytes/1024)), itoa(int(r.PagesMoved)), itoa(int(r.PagesCopied)))
	}

	ta := rep.AddTable("replicating placer actions", []string{"t(ms)", "action", "column", "from", "to", "parts", "KiB"})
	for _, a := range repl.Actions {
		ta.AddRow(fmt.Sprintf("%.1f", a.Time*1e3), a.Kind, a.Column, itoa(a.From), itoa(a.To),
			itoa(a.Parts), itoa(int(a.Bytes/1024)))
	}
	if len(repl.Actions) == 0 {
		ta.AddRow("-", "(none)", "-", "-", "-", "-", "-")
	}
	return rep
}
