package harness

import (
	"fmt"

	"numacs/internal/admit"
	"numacs/internal/core"
	"numacs/internal/metrics"
	"numacs/internal/workload"
)

// Admission experiment: a multi-tenant open-loop overload sweep on the
// 4-socket machine. Offered load exceeds engine capacity by >2x (a greedy
// tenant floods, a bursty tenant spikes, a well-behaved tenant stays inside
// its share, a writer tenant trickles Interactive delta batches); the
// admission-on run must keep p99 statement latency bounded by the OLAP
// deadline and per-tenant goodput near the weight shares, while the
// queues-only off run grows its backlog and its tail without bound.

// admissionTenantNames and weights of the three scan tenants (the writer
// tenant rides along as Interactive).
const (
	admAlpha  = "alpha"  // well-behaved: weight 2, offered below its share
	admBravo  = "bravo"  // bursty: weight 1, spikes to 2x its base rate
	admGreedy = "greedy" // greedy: weight 1, offers 6x its fair share
	admWriter = "writer" // Interactive delta write batches
)

// admissionDataset sizes the experiment's table: 4x the scale rows keeps
// per-statement work high enough that statement counts stay tractable under
// a 2.25x-overload open loop.
func admissionDataset(s Scale) workload.DatasetConfig {
	return workload.DatasetConfig{
		Rows: 4 * s.Rows, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
		Seed: 1, Synthetic: true,
	}
}

// MeasureAdmissionCapacity probes the engine's statement capacity for the
// admission experiment's dataset: 64 closed-loop clients (saturating, no
// admission control), measured after warmup. The overload rates and the
// "offered >= 2x capacity" acceptance check are both expressed against this
// number.
func MeasureAdmissionCapacity(s Scale) float64 {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	table := workload.Generate(admissionDataset(s))
	e.Placer.PlaceRR(table)
	clients := workload.NewClients(e, table, workload.ClientsConfig{
		N: 64, Selectivity: lowSel, Parallel: true, Strategy: core.Bound, Seed: 9,
	})
	clients.Start()
	e.Sim.Run(s.Warmup)
	e.Counters.Reset()
	e.Sim.Run(s.Warmup + s.Measure)
	return float64(e.Counters.QueriesDone) / s.Measure
}

// AdmissionTenant is one tenant's measured outcome.
type AdmissionTenant struct {
	// Name and Weight echo the tenant config; OfferedQPS is its configured
	// mean arrival rate.
	Name       string
	Weight     float64
	OfferedQPS float64
	// Issued/Completed/Shed count statements in the measure window;
	// GoodputQPS is Completed over the window.
	Issued, Completed, Shed uint64
	GoodputQPS              float64
	// P50/P99 are the tenant's completed-statement latency percentiles
	// (admission wait included).
	P50, P99 float64
}

// AdmissionRun is the measured outcome of one admission configuration,
// exposed so the acceptance tests can assert the criteria at both simulator
// scales.
type AdmissionRun struct {
	// Label and AdmissionOn identify the configuration.
	Label       string
	AdmissionOn bool

	// CapacityQPS is the probed engine capacity; OfferedQPS the actual scan-
	// tenant arrival rate over the measure window; CompletedQPS the scan
	// goodput.
	CapacityQPS  float64
	OfferedQPS   float64
	CompletedQPS float64

	// Overall is the all-statement latency distribution of the measure
	// window (P99 is the bounded-tail criterion).
	Overall metrics.LatencyStats

	// Tenants holds the scan tenants' outcomes, in tenant order.
	Tenants []AdmissionTenant

	// Writer-side observability (whole run, not just the measure window).
	WriterBatches, WriterShed uint64

	// Scheduler saturation means over the measure window (the satellite
	// counters, sampled by the watchdog).
	MeanQueuedTasks, MeanFreeWorkers float64
	MaxTGDepth                       int

	// Controller state (admission-on runs only).
	FinalLimit, FinalGranCap int
	TotalShed                uint64
	Trace                    []admit.ControlSample

	// OLAPDeadline and InteractiveDeadline document the run's latency
	// contract; Measure is the window they were derived from.
	OLAPDeadline        float64
	InteractiveDeadline float64
	Measure             float64
}

// RunAdmission executes one admission configuration against the probed
// capacity: a 2.25x-capacity multi-tenant open-loop mix, with the admission
// controller either enabled (weighted-fair queues, elastic concurrency,
// deadline shedding) or bypassed (every statement enters the engine
// directly — the pre-admission engine).
func RunAdmission(s Scale, on bool, capacity float64) AdmissionRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	table := workload.Generate(admissionDataset(s))
	e.Placer.PlaceRR(table)

	olapDeadline := s.Measure / 10
	interDeadline := s.Measure / 40
	if on {
		e.EnableAdmission(admit.Config{
			Tenants: []admit.TenantSpec{
				{Name: admAlpha, Weight: 2},
				{Name: admBravo, Weight: 1},
				{Name: admGreedy, Weight: 1},
				{Name: admWriter, Weight: 1},
			},
			MinConcurrent: 4,
			// Tight watermarks: the concurrency hint already keeps task
			// fan-out proportional, so saturation shows up as a modest
			// standing queue — throttle on half a task per worker, grow
			// below a quarter.
			HighQueuePerWorker:  0.5,
			LowQueuePerWorker:   0.25,
			OLAPDeadline:        olapDeadline,
			InteractiveDeadline: interDeadline,
		})
	}

	mk := func(name string, weight, rate float64, burst workload.BurstSpec) workload.TenantLoad {
		return workload.TenantLoad{
			Name: name, Weight: weight, Rate: rate, Burst: burst,
			Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
		}
	}
	tenants := []workload.TenantLoad{
		mk(admAlpha, 2, 0.40*capacity, workload.BurstSpec{}),
		mk(admBravo, 1, 0.30*capacity, workload.BurstSpec{
			Period: s.Measure / 2, Duration: s.Measure / 8, Factor: 2, Phase: s.Measure / 4,
		}),
		mk(admGreedy, 1, 1.50*capacity, workload.BurstSpec{}),
	}
	gen := workload.NewMultiTenant(e, table, workload.MultiTenantConfig{Tenants: tenants, Seed: 5})
	e.Sim.AddActor(gen)
	gen.Start()

	// The writer tenant trickles Interactive delta batches: roughly one
	// batch every 10 simulator steps, small enough that delta growth never
	// moves the capacity baseline.
	writers := workload.NewWriters(e, table, workload.WritersConfig{
		Rate: 0.1 / s.Step, UpdateFraction: 0.5, Tenant: admWriter, Seed: 13,
	})
	e.Sim.AddActor(writers)

	e.Sim.Run(s.Warmup)
	e.Counters.Reset()
	gen.ResetStats()
	e.Sim.Run(s.Warmup + s.Measure)

	label := "queues only (admission OFF)"
	if on {
		label = "admission ON"
	}
	run := AdmissionRun{
		Label: label, AdmissionOn: on,
		CapacityQPS:         capacity,
		Overall:             e.Counters.Latencies(),
		WriterBatches:       writers.Inserts + writers.Updates,
		WriterShed:          writers.ShedBatches,
		MeanQueuedTasks:     e.Counters.MeanQueuedTasks(),
		MeanFreeWorkers:     e.Counters.MeanFreeWorkers(),
		MaxTGDepth:          e.Counters.SatTGMaxDepth,
		OLAPDeadline:        olapDeadline,
		InteractiveDeadline: interDeadline,
		Measure:             s.Measure,
	}
	offered, completed := uint64(0), uint64(0)
	for i, ts := range gen.Stats() {
		spec := tenants[i]
		at := AdmissionTenant{
			Name: ts.Name, Weight: spec.Weight, OfferedQPS: spec.Rate,
			Issued: ts.Issued, Completed: ts.Completed, Shed: ts.Shed,
			GoodputQPS: float64(ts.Completed) / s.Measure,
			P50:        ts.Lat.P50(), P99: ts.Lat.P99(),
		}
		if ts.Name == admBravo {
			// Burst-adjusted mean offered rate: 2x for 1/4 of each period.
			at.OfferedQPS *= 1.25
		}
		run.Tenants = append(run.Tenants, at)
		offered += ts.Issued
		completed += ts.Completed
	}
	run.OfferedQPS = float64(offered) / s.Measure
	run.CompletedQPS = float64(completed) / s.Measure
	if on {
		run.FinalLimit = e.Admit.Limit()
		run.FinalGranCap = e.Admit.GranCap()
		run.TotalShed = e.Admit.TotalShed
		run.Trace = e.Admit.Trace
	}
	return run
}

// runAdmission renders the admission experiment: the overload sweep with the
// controller on vs off.
func runAdmission(s Scale) *Report {
	rep := &Report{ID: "admission", Title: "Statement admission control and elastic concurrency under overload"}

	capacity := MeasureAdmissionCapacity(s)
	off := RunAdmission(s, false, capacity)
	on := RunAdmission(s, true, capacity)

	cfgTab := rep.AddTable("offered load vs capacity", []string{
		"capacity(q/s)", "offered(q/s)", "overload", "OLAP deadline", "interactive deadline"})
	cfgTab.AddRow(f0(capacity), f0(on.OfferedQPS),
		fmt.Sprintf("%.2fx", on.OfferedQPS/capacity),
		ms(on.OLAPDeadline), ms(on.InteractiveDeadline))

	tb := rep.AddTable("per-tenant outcome (measure window)", []string{
		"tenant", "w", "offered(q/s)", "mode", "issued", "done", "shed",
		"goodput(q/s)", "share", "p50", "p99"})
	for i := range on.Tenants {
		for _, r := range []AdmissionRun{on, off} {
			at := r.Tenants[i]
			mode := "off"
			if r.AdmissionOn {
				mode = "on"
			}
			tb.AddRow(at.Name, f0(at.Weight), f0(at.OfferedQPS), mode,
				itoa(int(at.Issued)), itoa(int(at.Completed)), itoa(int(at.Shed)),
				f0(at.GoodputQPS),
				fmt.Sprintf("%.2f", at.GoodputQPS/r.CompletedQPS),
				ms(at.P50), ms(at.P99))
		}
	}

	tail := rep.AddTable("overall statement latency (completed statements)", []string{
		"mode", "done", "p50", "p95", "p99", "max", "p99 vs admission-on"})
	for _, r := range []AdmissionRun{on, off} {
		tail.AddRow(r.Label, itoa(r.Overall.N), ms(r.Overall.P50), ms(r.Overall.P95),
			ms(r.Overall.P99), ms(r.Overall.Max),
			fmt.Sprintf("%.1fx", r.Overall.P99/on.Overall.P99))
	}

	wr := rep.AddTable("writer tenant (Interactive class, whole run)", []string{
		"mode", "rows applied", "batches shed"})
	wr.AddRow("on", itoa(int(on.WriterBatches)), itoa(int(on.WriterShed)))
	wr.AddRow("off", itoa(int(off.WriterBatches)), itoa(int(off.WriterShed)))

	sat := rep.AddTable("scheduler saturation (watchdog samples, measure window)", []string{
		"mode", "mean queued tasks", "mean free workers", "max TG depth", "stmts shed"})
	sat.AddRow("on", f1(on.MeanQueuedTasks), f1(on.MeanFreeWorkers), itoa(on.MaxTGDepth), itoa(int(on.TotalShed)))
	sat.AddRow("off", f1(off.MeanQueuedTasks), f1(off.MeanFreeWorkers), itoa(off.MaxTGDepth), "-")

	tr := rep.AddTable("elastic concurrency trace (admission ON)", []string{
		"t(ms)", "limit", "gran cap", "inflight", "queued stmts", "queued tasks", "free"})
	stride := len(on.Trace)/12 + 1
	for i := 0; i < len(on.Trace); i += stride {
		cs := on.Trace[i]
		tr.AddRow(fmt.Sprintf("%.1f", cs.Time*1e3), itoa(cs.Limit), itoa(cs.GranCap),
			itoa(cs.InFlight), itoa(cs.QueuedStatements), itoa(cs.QueuedTasks), itoa(cs.FreeWorkers))
	}
	if len(on.Trace) == 0 {
		tr.AddRow("-", "-", "-", "-", "-", "-", "-")
	}
	return rep
}
