package harness

import (
	"fmt"
	"strings"

	"numacs/internal/insight"
	"numacs/internal/trace"
)

// TableBlock is one rendered table of a report.
type TableBlock struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Report is the output of one experiment: human-readable tables plus the raw
// results for programmatic checks.
type Report struct {
	ID          string
	Title       string
	Description string
	Tables      []*TableBlock
	Results     []Result

	// Trace is the experiment's flight-recorder data when the experiment
	// records one (the chaos suite attaches its faulted run's recorder);
	// scanbench -trace exports it as JSONL and a Chrome trace file.
	Trace *trace.Data `json:",omitempty"`

	// Triage is the insight layer's automated analysis of Trace (incident
	// detection, SLO verdicts, blame decomposition) when the experiment runs
	// one; scanbench -triage renders it and -json carries it structured.
	Triage *insight.TriageReport `json:",omitempty"`
}

// AddTable appends a table block.
func (r *Report) AddTable(name string, header []string) *TableBlock {
	tb := &TableBlock{Name: name, Header: header}
	r.Tables = append(r.Tables, tb)
	return tb
}

// AddRow appends a formatted row.
func (tb *TableBlock) AddRow(cells ...string) { tb.Rows = append(tb.Rows, cells) }

// Render formats the report as aligned ASCII tables.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Description != "" {
		fmt.Fprintf(&b, "%s\n", r.Description)
	}
	for _, tb := range r.Tables {
		b.WriteString("\n")
		if tb.Name != "" {
			fmt.Fprintf(&b, "-- %s --\n", tb.Name)
		}
		widths := make([]int, len(tb.Header))
		for i, h := range tb.Header {
			widths[i] = len(h)
		}
		for _, row := range tb.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
			b.WriteString("\n")
		}
		line(tb.Header)
		sep := make([]string, len(tb.Header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
		for _, row := range tb.Rows {
			line(row)
		}
	}
	return b.String()
}

// formatting helpers used by the experiment definitions.

func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
func ms(v float64) string  { return fmt.Sprintf("%.2fms", v*1e3) }
func gib(v float64) string { return fmt.Sprintf("%.1f", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
