package harness

import (
	"testing"

	"numacs/internal/core"
	"numacs/internal/workload"
)

// smallDataset keeps unit-test runtime low.
func smallDataset(cols int) workload.DatasetConfig {
	return workload.DatasetConfig{
		Rows: 200_000, Columns: cols, BitcaseMin: 12, BitcaseMax: 21, Seed: 1,
	}
}

func runCell(t *testing.T, strategy core.Strategy, placement PlacementSpec, clients int, skew bool) Result {
	t.Helper()
	return Run(Spec{
		Machine:     FourSocket,
		Dataset:     smallDataset(16),
		Placement:   placement,
		Strategy:    strategy,
		Clients:     clients,
		Selectivity: 0.00001,
		Parallel:    true,
		Skew:        skew,
		Warmup:      0.05,
		Measure:     0.2,
	})
}

// TestFig8Shape verifies the headline result: with RR-placed columns and a
// uniform memory-intensive workload at high concurrency, NUMA-aware
// scheduling (Target/Bound) massively outperforms OS scheduling, with Bound
// at least matching Target (Figure 8).
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test")
	}
	os := runCell(t, core.OSched, PlacementSpec{Kind: RR}, 256, false)
	target := runCell(t, core.Target, PlacementSpec{Kind: RR}, 256, false)
	bound := runCell(t, core.Bound, PlacementSpec{Kind: RR}, 256, false)

	t.Logf("OS:     qpm=%.0f memTP=%.1f GiB/s ipc=%.2f stolen=%d llcR%%=%.0f",
		os.QPM, os.MemTPTotal, os.IPC, os.Stolen, 100*os.LLCRemote/(os.LLCLocal+os.LLCRemote))
	t.Logf("Target: qpm=%.0f memTP=%.1f GiB/s ipc=%.2f stolen=%d",
		target.QPM, target.MemTPTotal, target.IPC, target.Stolen)
	t.Logf("Bound:  qpm=%.0f memTP=%.1f GiB/s ipc=%.2f stolen=%d",
		bound.QPM, bound.MemTPTotal, bound.IPC, bound.Stolen)

	if bound.QPM < 3*os.QPM {
		t.Errorf("Bound/OS = %.2fx, want >= 3x (paper: ~5x)", bound.QPM/os.QPM)
	}
	if bound.QPM < target.QPM*0.95 {
		t.Errorf("Bound (%.0f) should be >= Target (%.0f)", bound.QPM, target.QPM)
	}
	if bound.Stolen != 0 {
		t.Errorf("Bound stole %d tasks", bound.Stolen)
	}
	// OS traffic is mostly remote; Bound mostly local.
	if os.LLCRemote < os.LLCLocal {
		t.Errorf("OS should be mostly remote: local=%.0f remote=%.0f", os.LLCLocal, os.LLCRemote)
	}
	if bound.LLCRemote > bound.LLCLocal*0.1 {
		t.Errorf("Bound should be mostly local: local=%.0f remote=%.0f", bound.LLCLocal, bound.LLCRemote)
	}
	// Memory throughput drives the gap (Figure 1b / 8).
	if bound.MemTPTotal < 2.5*os.MemTPTotal {
		t.Errorf("Bound memTP (%.1f) should dwarf OS (%.1f)", bound.MemTPTotal, os.MemTPTotal)
	}
}
