package harness

import (
	"testing"

	"numacs/internal/core"
	"numacs/internal/sharedscan"
	"numacs/internal/workload"
)

// TestSharedScanBypassBitIdentical pins the bypass guarantee: an uncontended
// scan — no other statement concurrently forming, running, or attachable on
// its column — launches immediately as a cohort of one whose pass plans the
// identical tasks, draws the identical RNG stream, and starts the identical
// flows as the private ScanOp path. A sharing-enabled engine driving one
// closed-loop client must therefore equal the sharing-disabled engine on
// every counter and on the full latency distribution, bit for bit.
func TestSharedScanBypassBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-seed simulation runs")
	}
	run := func(sharing bool) *core.Engine {
		e := core.NewWithStep(FourSocket.Build(), 1, 25e-6)
		table := workload.Generate(workload.DatasetConfig{
			Rows: 60_000, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
			Seed: 1, Synthetic: true,
		})
		e.Placer.PlaceRR(table)
		if sharing {
			e.EnableSharedScans(sharedscan.Config{})
		}
		clients := workload.NewClients(e, table, workload.ClientsConfig{
			N: 1, Selectivity: 1e-5, Parallel: true, Strategy: core.Bound, Seed: 3,
		})
		clients.Start()
		e.Sim.Run(0.08)
		return e
	}
	direct := run(false)
	shared := run(true)

	// Every statement must have taken the solo-launch bypass.
	st := shared.Shared.Stats()
	if st.Statements == 0 || st.Solo != st.Passes || st.Merged+st.Attached+st.Shed != 0 {
		t.Fatalf("uncontended run did not stay on the bypass path: %+v", st)
	}

	d, s := direct.Counters, shared.Counters
	if d.QueriesDone != s.QueriesDone || d.TasksExecuted != s.TasksExecuted ||
		d.TasksStolen != s.TasksStolen {
		t.Fatalf("counts drifted: direct {q %d, tasks %d, stolen %d} vs shared {q %d, tasks %d, stolen %d}",
			d.QueriesDone, d.TasksExecuted, d.TasksStolen,
			s.QueriesDone, s.TasksExecuted, s.TasksStolen)
	}
	if d.TotalMCBytes() != s.TotalMCBytes() || d.LLCLocal != s.LLCLocal ||
		d.LLCRemote != s.LLCRemote || d.LinkDataBytes != s.LinkDataBytes ||
		d.LinkTotalBytes != s.LinkTotalBytes {
		t.Fatalf("traffic drifted: direct {MC %v, LLC %v/%v, link %v/%v} vs shared {MC %v, LLC %v/%v, link %v/%v}",
			d.TotalMCBytes(), d.LLCLocal, d.LLCRemote, d.LinkDataBytes, d.LinkTotalBytes,
			s.TotalMCBytes(), s.LLCLocal, s.LLCRemote, s.LinkDataBytes, s.LinkTotalBytes)
	}
	if d.IPC() != s.IPC() || d.WorkerBusySeconds != s.WorkerBusySeconds {
		t.Fatalf("compute drifted: IPC %v vs %v, busy %v vs %v",
			d.IPC(), s.IPC(), d.WorkerBusySeconds, s.WorkerBusySeconds)
	}
	if d.Latencies() != s.Latencies() {
		t.Fatalf("latency distribution drifted:\n direct %+v\n shared %+v",
			d.Latencies(), s.Latencies())
	}
}

// checkSharedScanCriteria asserts the shared-scan acceptance criteria at one
// simulator scale: in the MC-bound regime, cohort sharing must deliver >=2x
// statement throughput AND <=0.5x physical MC bytes per statement vs the
// sharing-disabled control — the win has to be real memory traffic, not a
// scheduling or step-quantization artifact. minSpeedup parameterizes the
// throughput bar per client count: with the measured marginal predicate cost
// (TestSharedPredCostDerivation), a 32-member pass on the quick scale's
// small column approaches the serving socket's compute asymptote — a full
// private pass streams in ~12 us there, so the unshared control already sits
// at the MC-saturation edge — and the honest requirement at that point is
// no-regression plus the traffic collapse, not 2x. The full scale, whose
// column holds the control firmly MC-bound, asserts >=2x across the sweep
// and is the authoritative fine-step check.
func checkSharedScanCriteria(t *testing.T, s Scale, minSpeedup map[int]float64) {
	t.Helper()
	for _, clients := range []int{16, 32} {
		off := RunSharedScan(s, false, clients)
		on := RunSharedScan(s, true, clients)
		if off.QueriesDone == 0 || on.QueriesDone == 0 {
			t.Fatalf("%d clients: no statements completed (off %d, on %d)",
				clients, off.QueriesDone, on.QueriesDone)
		}
		if min := minSpeedup[clients]; on.QPM < min*off.QPM {
			t.Errorf("%d clients: shared throughput %.0f q/min < %.2fx unshared %.0f",
				clients, on.QPM, min, off.QPM)
		}
		if on.BytesPerQuery > 0.5*off.BytesPerQuery {
			t.Errorf("%d clients: shared MC bytes/query %.0f > 0.5x unshared %.0f",
				clients, on.BytesPerQuery, off.BytesPerQuery)
		}
		// The mechanism must actually engage: most statements share a pass.
		if on.MeanCohort < 2 {
			t.Errorf("%d clients: mean cohort %.1f < 2 — passes are not shared",
				clients, on.MeanCohort)
		}
		if st := on.Cohorts; st.Merged+st.Attached == 0 {
			t.Errorf("%d clients: no statements merged or attached (%+v)", clients, st)
		}
	}
}

// TestSharedScanSpeedupQuick asserts the acceptance criteria at the quick
// scale's 25 us simulator step.
func TestSharedScanSpeedupQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("shared-scan simulation sweep")
	}
	checkSharedScanCriteria(t, QuickScale(), map[int]float64{16: 2, 32: 1.1})
}

// TestSharedScanSpeedupFull asserts the acceptance criteria at the full
// scale's 5 us simulator step (the step-size robustness check: quick-scale
// dispatch quantization must not be what produces the win).
func TestSharedScanSpeedupFull(t *testing.T) {
	if testing.Short() {
		t.Skip("shared-scan simulation sweep at full scale")
	}
	checkSharedScanCriteria(t, FullScale(), map[int]float64{16: 2, 32: 2})
}
