package harness

// Acceptance tests for the adaptive-repl experiment: the replicating placer
// must beat the move/partition-only placer by >=1.3x on the read-hot
// workload, stay within its replica budget, and actually use the
// replication lever (the reclaim-on-decay half of the lifecycle is covered
// by TestStaleReplicasReclaimed in internal/adaptive).

import (
	"testing"

	"numacs/internal/adaptive"
)

func countActions(actions []adaptive.Action, kind string) int {
	n := 0
	for _, a := range actions {
		if a.Kind == kind {
			n++
		}
	}
	return n
}

func TestAdaptiveReplBeatsMovePartitionOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window experiment")
	}
	s := QuickScale()
	base := RunAdaptiveRepl(s, false)
	repl := RunAdaptiveRepl(s, true)

	if repl.FinalTP < 1.3*base.FinalTP {
		t.Fatalf("replicating placer %.0f q/min < 1.3x move/partition-only %.0f q/min",
			repl.FinalTP, base.FinalTP)
	}
	if n := countActions(repl.Actions, "replicate"); n == 0 {
		t.Fatal("replicating run recorded no replicate actions")
	}
	if n := countActions(base.Actions, "replicate"); n != 0 {
		t.Fatalf("move/partition-only run replicated %d times", n)
	}
	if repl.PeakReplicaBytes <= 0 {
		t.Fatal("replicating run accounted no replica memory")
	}
	if repl.PeakReplicaBytes > repl.BudgetBytes {
		t.Fatalf("peak replica bytes %d exceed budget %d", repl.PeakReplicaBytes, repl.BudgetBytes)
	}
	// Replication serves the hot column's dictionary locally on every
	// socket, so the converged QPI traffic must come down vs the
	// interleaved-dictionary baseline.
	lastW := adaptiveReplWindows - 1
	if repl.QPIGiB[lastW] >= base.QPIGiB[lastW] {
		t.Fatalf("replication did not reduce QPI traffic: %.3f GiB vs %.3f GiB",
			repl.QPIGiB[lastW], base.QPIGiB[lastW])
	}
}
