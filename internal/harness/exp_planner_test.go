package harness

import (
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/join"
)

// TestStarJoinPlannerBitIdentical pins the planner's lowering contract on
// the starjoin experiment's fixed-seed scenario: ExecuteStar — which now runs
// Build -> Optimize (with live stats) -> Lower — must emit an operator
// pipeline field-for-field identical to ExecuteStarUnplanned's hand wiring,
// so twin engines driving the two paths with the same seed match on every
// counter and on the full latency distribution, bit for bit.
func TestStarJoinPlannerBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-seed simulation runs")
	}
	s := QuickScale()
	run := func(planned bool) *core.Engine {
		e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
		sockets := []int{0, 1, 2, 3}
		dim := colstore.NewTable("DIM", []*colstore.Column{
			colstore.NewSynthetic("D_DATE", s.Rows/4, 1<<12, false),
			colstore.NewSynthetic("D_ID", s.Rows/4, 1<<14, false),
		})
		fact := colstore.NewTable("FACT", []*colstore.Column{
			colstore.NewSynthetic("F_FK", s.Rows, 1<<14, false),
		})
		for _, c := range dim.Parts[0].Columns {
			e.Placer.PlaceIVP(c, sockets)
		}
		e.Placer.PlaceIVP(fact.Parts[0].Columns[0], sockets)

		clients := 32
		inflight := 0
		var issue func(client int)
		issue = func(client int) {
			if inflight >= clients {
				return
			}
			inflight++
			spec := join.StarSpec{
				Dim: dim, DimPredicate: "D_DATE", DimKey: "D_ID",
				Fact: fact, FactFK: "F_FK",
				Selectivity:     0.05,
				HitsPerProbeRow: 1,
				AggBytesPerRow:  12, AggCyclesPerRow: 24,
				HTSockets:  []int{0},
				Strategy:   core.Bound,
				HomeSocket: client % e.Machine.Sockets,
				OnDone:     func(float64) { inflight--; issue(client) },
			}
			if planned {
				join.ExecuteStar(e, spec)
			} else {
				join.ExecuteStarUnplanned(e, spec)
			}
		}
		for i := 0; i < clients; i++ {
			issue(i)
		}
		e.Sim.Run(s.Warmup)
		e.Counters.Reset()
		e.Sim.Run(s.Warmup + s.Measure)
		return e
	}
	hand := run(false)
	planned := run(true)

	h, p := hand.Counters, planned.Counters
	if h.QueriesDone == 0 {
		t.Fatal("no statements completed")
	}
	if h.QueriesDone != p.QueriesDone || h.TasksExecuted != p.TasksExecuted ||
		h.TasksStolen != p.TasksStolen {
		t.Fatalf("counts drifted: hand {q %d, tasks %d, stolen %d} vs planned {q %d, tasks %d, stolen %d}",
			h.QueriesDone, h.TasksExecuted, h.TasksStolen,
			p.QueriesDone, p.TasksExecuted, p.TasksStolen)
	}
	if h.TotalMCBytes() != p.TotalMCBytes() || h.LLCLocal != p.LLCLocal ||
		h.LLCRemote != p.LLCRemote || h.LinkDataBytes != p.LinkDataBytes ||
		h.LinkTotalBytes != p.LinkTotalBytes {
		t.Fatalf("traffic drifted: hand {MC %v, LLC %v/%v, link %v/%v} vs planned {MC %v, LLC %v/%v, link %v/%v}",
			h.TotalMCBytes(), h.LLCLocal, h.LLCRemote, h.LinkDataBytes, h.LinkTotalBytes,
			p.TotalMCBytes(), p.LLCLocal, p.LLCRemote, p.LinkDataBytes, p.LinkTotalBytes)
	}
	if h.IPC() != p.IPC() || h.WorkerBusySeconds != p.WorkerBusySeconds {
		t.Fatalf("compute drifted: IPC %v vs %v, busy %v vs %v",
			h.IPC(), p.IPC(), h.WorkerBusySeconds, p.WorkerBusySeconds)
	}
	if h.Latencies() != p.Latencies() {
		t.Fatalf("latency distribution drifted:\n hand    %+v\n planned %+v",
			h.Latencies(), p.Latencies())
	}
}

// checkPlannerCriteria asserts the planner experiment's acceptance criteria
// at one simulator scale: plan-driven submission must form strictly more
// cohorted statements than timing-driven submission — and some of them must
// come through plan groups — while at least matching its throughput.
func checkPlannerCriteria(t *testing.T, s Scale) {
	t.Helper()
	timing := RunPlanner(s, false)
	planned := RunPlanner(s, true)
	if timing.QueriesDone == 0 || planned.QueriesDone == 0 {
		t.Fatalf("no statements completed (timing %d, planned %d)",
			timing.QueriesDone, planned.QueriesDone)
	}
	if planned.CohortedStatements <= timing.CohortedStatements {
		t.Errorf("plan-driven cohorted statements %d <= timing-driven %d — plan-time detection added nothing",
			planned.CohortedStatements, timing.CohortedStatements)
	}
	if planned.Cohorts.PlanGrouped == 0 {
		t.Errorf("no statements entered through plan-driven groups: %+v", planned.Cohorts)
	}
	if timing.Cohorts.PlanGrouped != 0 {
		t.Errorf("timing-driven mode unexpectedly used plan groups: %+v", timing.Cohorts)
	}
	if planned.QPM < timing.QPM {
		t.Errorf("plan-driven throughput %.0f q/min < timing-driven %.0f", planned.QPM, timing.QPM)
	}
}

// TestPlannerCohortsQuick asserts the criteria at the quick scale's 25 us
// simulator step.
func TestPlannerCohortsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("planner simulation runs")
	}
	checkPlannerCriteria(t, QuickScale())
}

// TestPlannerCohortsFull asserts the criteria at the full scale's 5 us
// simulator step (step-size robustness: quantization must not be what forms
// the extra cohorts).
func TestPlannerCohortsFull(t *testing.T) {
	if testing.Short() {
		t.Skip("planner simulation runs at full scale")
	}
	checkPlannerCriteria(t, FullScale())
}
