package harness

import (
	"fmt"

	"numacs/internal/core"
)

// runFig15 reproduces Figure 15: skewed workload, RR placement, the three
// scheduling strategies — stealing memory-intensive tasks hurts.
func runFig15(s Scale) *Report {
	rep := &Report{ID: "fig15", Title: "Skewed workload: OS vs Target vs Bound (RR)"}
	base := s.spec4(FourSocket)
	results := sweepStrategies(base, s, []combo{
		{PlacementSpec{Kind: RR}, core.OSched},
		{PlacementSpec{Kind: RR}, core.Target},
		{PlacementSpec{Kind: RR}, core.Bound},
	}, lowSel, true)
	rep.Results = results
	label := func(r Result) string { return r.Spec.Strategy.String() }
	tpSweepTable(rep, "throughput (q/min)", results, s, label)
	addMetricsTable(rep, fmt.Sprintf("performance metrics, %d clients", s.Max), filterMax(results, s.Max), label)
	tb := rep.AddTable("per-socket memory throughput (GiB/s)", []string{"case", "per-socket"})
	for _, r := range filterMax(results, s.Max) {
		tb.AddRow(label(r), perSocketRow(r))
	}
	return rep
}

// runFig16 reproduces Figure 16: the skewed workload with the three data
// placements under Bound — partitioning smooths the skew.
func runFig16(s Scale) *Report {
	rep := &Report{ID: "fig16", Title: "Skewed workload: RR vs IVP vs PP (Bound)"}
	base := s.spec4(FourSocket)
	results := sweepStrategies(base, s, []combo{
		{PlacementSpec{Kind: RR}, core.Bound},
		{PlacementSpec{Kind: IVP, Partitions: 4}, core.Bound},
		{PlacementSpec{Kind: PP, Partitions: 4}, core.Bound},
	}, lowSel, true)
	rep.Results = results
	label := func(r Result) string { return r.Spec.Placement.String() }
	tpSweepTable(rep, "throughput (q/min)", results, s, label)
	addMetricsTable(rep, fmt.Sprintf("performance metrics, %d clients", s.Max), filterMax(results, s.Max), label)
	tb := rep.AddTable("per-socket memory throughput (GiB/s)", []string{"case", "per-socket"})
	for _, r := range filterMax(results, s.Max) {
		tb.AddRow(label(r), perSocketRow(r))
	}
	return rep
}

// runFig17 reproduces Figure 17: the same comparison at 10% selectivity,
// where the CPU-intensive materialization dominates and PP's local
// dictionaries win.
func runFig17(s Scale) *Report {
	rep := &Report{ID: "fig17", Title: "Skewed, 10% selectivity: RR vs IVP vs PP (Bound)"}
	base := s.spec4(FourSocket)
	results := sweepStrategies(base, s, []combo{
		{PlacementSpec{Kind: RR}, core.Bound},
		{PlacementSpec{Kind: IVP, Partitions: 4}, core.Bound},
		{PlacementSpec{Kind: PP, Partitions: 4}, core.Bound},
	}, highSel, true)
	rep.Results = results
	label := func(r Result) string { return r.Spec.Placement.String() }
	tpSweepTable(rep, "throughput (q/min)", results, s, label)
	addMetricsTable(rep, fmt.Sprintf("performance metrics, %d clients", s.Max), filterMax(results, s.Max), label)
	return rep
}

// runFig18 reproduces Figure 18: Figure 17 with Target — stealing
// CPU-intensive tasks is fine and lifts RR.
func runFig18(s Scale) *Report {
	rep := &Report{ID: "fig18", Title: "Skewed, 10% selectivity: RR vs IVP vs PP (Target)"}
	base := s.spec4(FourSocket)
	results := sweepStrategies(base, s, []combo{
		{PlacementSpec{Kind: RR}, core.Target},
		{PlacementSpec{Kind: IVP, Partitions: 4}, core.Target},
		{PlacementSpec{Kind: PP, Partitions: 4}, core.Target},
	}, highSel, true)
	rep.Results = results
	label := func(r Result) string { return r.Spec.Placement.String() }
	tpSweepTable(rep, "throughput (q/min)", results, s, label)
	addMetricsTable(rep, fmt.Sprintf("performance metrics, %d clients", s.Max), filterMax(results, s.Max), label)
	return rep
}
