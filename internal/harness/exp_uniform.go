package harness

import (
	"fmt"

	"numacs/internal/core"
	"numacs/internal/hw"
	"numacs/internal/sim"
	"numacs/internal/topology"
)

// runTable1 reproduces Table 1 by measuring the simulated machines the way
// Intel MLC measures the real ones: analytic idle latencies plus streaming
// bandwidth microbenchmarks driven directly as flows.
func runTable1(s Scale) *Report {
	rep := &Report{ID: "table1", Title: "Latencies and peak bandwidths"}
	tb := rep.AddTable("", []string{"statistic", "4xIvybridge-EX", "32xIvybridge-EX", "8xWestmere-EX"})
	machines := []*topology.Machine{
		topology.FourSocketIvyBridge(),
		topology.ThirtyTwoSocketIvyBridge(),
		topology.EightSocketWestmere(),
	}
	row := func(name string, f func(m *topology.Machine) string) {
		cells := []string{name}
		for _, m := range machines {
			cells = append(cells, f(m))
		}
		tb.AddRow(cells...)
	}
	farthest := func(m *topology.Machine) int {
		best, bestH := 1, 0
		for d := 1; d < m.Sockets; d++ {
			if h := m.Hops(0, d); h > bestH {
				best, bestH = d, h
			}
		}
		return best
	}
	row("Local latency", func(m *topology.Machine) string {
		return fmt.Sprintf("%.0f ns", m.Latency(0, 0)*1e9)
	})
	row("1 hop latency", func(m *topology.Machine) string {
		// nearest remote socket
		best := 1
		for d := 1; d < m.Sockets; d++ {
			if m.Hops(0, d) < m.Hops(0, best) {
				best = d
			}
		}
		return fmt.Sprintf("%.0f ns", m.Latency(0, best)*1e9)
	})
	row("Max hops latency", func(m *topology.Machine) string {
		return fmt.Sprintf("%.0f ns", m.Latency(0, farthest(m))*1e9)
	})
	row("Local B/W", func(m *topology.Machine) string {
		return fmt.Sprintf("%.1f GiB/s", measureStream(m, 0, []int{0}))
	})
	row("1 hop B/W", func(m *topology.Machine) string {
		best := 1
		for d := 1; d < m.Sockets; d++ {
			if m.Hops(0, d) < m.Hops(0, best) {
				best = d
			}
		}
		return fmt.Sprintf("%.1f GiB/s", measureStream(m, best, []int{0}))
	})
	row("Max hops B/W", func(m *topology.Machine) string {
		return fmt.Sprintf("%.1f GiB/s", measureStream(m, farthest(m), []int{0}))
	})
	row("Total local B/W", func(m *topology.Machine) string {
		all := make([]int, m.Sockets)
		for i := range all {
			all[i] = i
		}
		return fmt.Sprintf("%.1f GiB/s", measureStream(m, -1, all))
	})
	return rep
}

// measureStream runs an MLC-style streaming microbenchmark: every hardware
// thread of the given sockets streams from dst (or locally when dst is -1)
// and the aggregate data rate is reported in GiB/s.
func measureStream(m *topology.Machine, dst int, srcSockets []int) float64 {
	eng := sim.New(100e-6)
	h := hw.New(eng, m)
	payload := 0.0
	for _, src := range srcSockets {
		d := dst
		if d < 0 {
			d = src
		}
		for c := 0; c < m.CoresPerSocket; c++ {
			for t := 0; t < m.ThreadsPerCore; t++ {
				demands, _ := h.StreamDemands(src, d, h.Core[src][c], 0.3)
				eng.StartFlow(&sim.Flow{
					Remaining: 1e15,
					RateCap:   m.StreamRate(src, d),
					Demands:   demands,
					OnAdvance: func(p float64) { payload += p },
				})
			}
		}
	}
	const window = 0.02
	eng.Run(window)
	return payload / window / (1 << 30)
}

// runFig1 reproduces Figure 1: the NUMA-agnostic vs NUMA-aware headline.
func runFig1(s Scale) *Report {
	rep := &Report{ID: "fig1", Title: "Impact of NUMA"}
	base := s.spec4(FourSocket)
	results := sweepStrategies(base, s, []combo{
		{PlacementSpec{Kind: RR}, core.OSched},
		{PlacementSpec{Kind: RR}, core.Bound},
	}, lowSel, false)
	rep.Results = results
	label := func(r Result) string {
		if r.Spec.Strategy == core.OSched {
			return "NUMA-agnostic"
		}
		return "NUMA-aware"
	}
	tpSweepTable(rep, "(a) throughput vs concurrent clients (q/min)", results, s, label)
	tb := rep.AddTable(fmt.Sprintf("(b) memory throughput of the sockets, %d clients (GiB/s)", s.Max),
		[]string{"case", "per-socket", "total"})
	for _, r := range filterMax(results, s.Max) {
		tb.AddRow(label(r), perSocketRow(r), f1(r.MemTPTotal))
	}
	return rep
}

// runFig8 reproduces Figure 8.
func runFig8(s Scale) *Report {
	rep := &Report{ID: "fig8", Title: "OS vs Target vs Bound (RR, uniform, low selectivity)"}
	base := s.spec4(FourSocket)
	results := sweepStrategies(base, s, []combo{
		{PlacementSpec{Kind: RR}, core.OSched},
		{PlacementSpec{Kind: RR}, core.Target},
		{PlacementSpec{Kind: RR}, core.Bound},
	}, lowSel, false)
	rep.Results = results
	label := func(r Result) string { return r.Spec.Strategy.String() }
	tpSweepTable(rep, "throughput (q/min)", results, s, label)
	addMetricsTable(rep, fmt.Sprintf("performance metrics, %d clients", s.Max), filterMax(results, s.Max), label)
	tb := rep.AddTable("per-socket memory throughput (GiB/s)", []string{"case", "per-socket"})
	for _, r := range filterMax(results, s.Max) {
		tb.AddRow(label(r), perSocketRow(r))
	}
	return rep
}

// runFig9 reproduces Figure 9 on the broadcast-coherence Westmere machine.
func runFig9(s Scale) *Report {
	rep := &Report{ID: "fig9", Title: "OS vs Target vs Bound on 8-socket Westmere-EX"}
	base := s.spec4(EightSocket)
	results := sweepStrategies(base, s, []combo{
		{PlacementSpec{Kind: RR}, core.OSched},
		{PlacementSpec{Kind: RR}, core.Target},
		{PlacementSpec{Kind: RR}, core.Bound},
	}, lowSel, false)
	rep.Results = results
	label := func(r Result) string { return r.Spec.Strategy.String() }
	tpSweepTable(rep, "throughput (q/min)", results, s, label)
	addMetricsTable(rep, fmt.Sprintf("performance metrics, %d clients", s.Max), filterMax(results, s.Max), label)
	return rep
}

// runFig10 reproduces Figure 10: parallelism x placement.
func runFig10(s Scale) *Report {
	rep := &Report{ID: "fig10", Title: "Intra-query parallelism x data placement (Bound)"}
	base := s.spec4(FourSocket)
	sockets := 4
	combos := []combo{
		{PlacementSpec{Kind: RR}, core.Bound},
		{PlacementSpec{Kind: IVP, Partitions: sockets}, core.Bound},
		{PlacementSpec{Kind: PP, Partitions: sockets}, core.Bound},
	}
	var all []Result
	for _, parallel := range []bool{false, true} {
		b := base
		b.Parallel = parallel
		rs := sweepStrategies(b, s, combos, lowSel, false)
		all = append(all, rs...)
	}
	rep.Results = all
	label := func(r Result) string {
		mode := "w/ par"
		if !r.Spec.Parallel {
			mode = "w/o par"
		}
		return fmt.Sprintf("%s %s", r.Spec.Placement, mode)
	}
	tpSweepTable(rep, "throughput (q/min)", all, s, label)
	tb := rep.AddTable(fmt.Sprintf("LLC load misses, %d clients (cache lines)", s.Max),
		[]string{"case", "local", "remote"})
	for _, r := range filterMax(all, s.Max) {
		tb.AddRow(label(r), f0(r.LLCLocal), f0(r.LLCRemote))
	}
	return rep
}

// runFig11 reproduces Figure 11's latency distributions.
func runFig11(s Scale) *Report {
	rep := &Report{ID: "fig11", Title: "Latency distributions (Bound)"}
	base := s.spec4(FourSocket)
	placements := []PlacementSpec{
		{Kind: RR}, {Kind: IVP, Partitions: 4}, {Kind: PP, Partitions: 4},
	}
	clientCounts := []int{}
	for _, n := range s.Clients {
		if n >= 256 {
			clientCounts = append(clientCounts, n)
		}
	}
	if len(clientCounts) == 0 {
		clientCounts = []int{s.Max}
	}
	tb := rep.AddTable("latency percentiles", []string{"placement", "clients",
		"mean", "p5", "p25", "p50", "p75", "p95", "max", "CoV"})
	for _, p := range placements {
		for _, n := range clientCounts {
			spec := base
			spec.Placement = p
			spec.Strategy = core.Bound
			spec.Clients = n
			spec.Selectivity = lowSel
			r := Run(spec)
			rep.Results = append(rep.Results, r)
			l := r.Latency
			tb.AddRow(p.String(), itoa(n), ms(l.Mean), ms(l.P5), ms(l.P25), ms(l.P50),
				ms(l.P75), ms(l.P95), ms(l.Max), f2(l.CoeffOfVariation))
		}
	}
	return rep
}

// runFig12 reproduces Figure 12: strategies x IVP granularity on 32 sockets.
func runFig12(s Scale) *Report {
	rep := &Report{ID: "fig12", Title: "Scheduling x IVP granularity, 32 sockets"}
	base := s.spec4(ThirtyTwoSocket)
	granularities := []PlacementSpec{
		{Kind: RR},
		{Kind: IVP, Partitions: 2},
		{Kind: IVP, Partitions: 4},
		{Kind: IVP, Partitions: 8},
		{Kind: IVP, Partitions: 16},
		{Kind: IVP, Partitions: 32},
	}
	tb := rep.AddTable(fmt.Sprintf("throughput, %d clients (q/min)", s.Max),
		[]string{"placement", "OS", "Target", "Bound"})
	for _, p := range granularities {
		row := []string{p.String()}
		for _, st := range []core.Strategy{core.OSched, core.Target, core.Bound} {
			spec := base
			spec.Placement = p
			spec.Strategy = st
			spec.Clients = s.Max
			spec.Selectivity = lowSel
			r := Run(spec)
			rep.Results = append(rep.Results, r)
			row = append(row, f0(r.QPM))
		}
		tb.AddRow(row...)
	}
	return rep
}

// runFig13 reproduces Figure 13: client sweep of granularities on 32 sockets.
func runFig13(s Scale) *Report {
	rep := &Report{ID: "fig13", Title: "Concurrency sweep x granularity, 32 sockets"}
	base := s.spec4(ThirtyTwoSocket)
	for _, st := range []core.Strategy{core.Target, core.Bound} {
		results := sweepStrategies(base, s, []combo{
			{PlacementSpec{Kind: RR}, st},
			{PlacementSpec{Kind: IVP, Partitions: 8}, st},
			{PlacementSpec{Kind: IVP, Partitions: 32}, st},
		}, lowSel, false)
		rep.Results = append(rep.Results, results...)
		tpSweepTable(rep, st.String()+" throughput (q/min)", results, s,
			func(r Result) string { return r.Spec.Placement.String() })
	}
	return rep
}

// runFig14 reproduces Figure 14: the selectivity sweep with indexes enabled.
func runFig14(s Scale) *Report {
	rep := &Report{ID: "fig14", Title: "Selectivity sweep with indexes (RR, Bound)"}
	base := s.spec4(FourSocket)
	base.Dataset.WithIndex = true
	selectivities := []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	tb := rep.AddTable(fmt.Sprintf("%d clients", s.Max),
		[]string{"selectivity", "TP(q/min)", "memTP(GiB/s)", "LLC loc", "LLC rem", "CPU", "path"})
	for _, sel := range selectivities {
		spec := base
		spec.Placement = PlacementSpec{Kind: RR}
		spec.Strategy = core.Bound
		spec.Clients = s.Max
		spec.Selectivity = sel
		spec.UseIndex = true
		r := Run(spec)
		rep.Results = append(rep.Results, r)
		path := "scan"
		if sel <= core.DefaultCosts().IndexSelectivityThreshold {
			path = "index"
		}
		tb.AddRow(fmt.Sprintf("%g%%", sel*100), f0(r.QPM), f1(r.MemTPTotal),
			f0(r.LLCLocal), f0(r.LLCRemote), pct(r.CPULoad), path)
	}
	return rep
}
