package harness

import (
	"testing"

	"numacs/internal/admit"
	"numacs/internal/core"
	"numacs/internal/workload"
)

// checkAdmissionCriteria asserts the admission experiment's acceptance
// criteria at one simulator scale: under >=2x-capacity offered load the
// admission-on run keeps p99 statement latency bounded (>=2x better than
// admission-off and within a small multiple of the OLAP deadline) and no
// tenant's goodput falls below half its fair share (its weight share of the
// completed throughput, or its own demand when it offers less).
func checkAdmissionCriteria(t *testing.T, s Scale) {
	t.Helper()
	capacity := MeasureAdmissionCapacity(s)
	if capacity <= 0 {
		t.Fatal("capacity probe returned nothing")
	}
	off := RunAdmission(s, false, capacity)
	on := RunAdmission(s, true, capacity)

	// Overload regime: the open loop must offer at least 2x the probed
	// capacity (both runs share the rate config).
	for _, r := range []AdmissionRun{on, off} {
		if r.OfferedQPS < 2*capacity {
			t.Fatalf("%s: offered %.0f q/s < 2x capacity %.0f", r.Label, r.OfferedQPS, capacity)
		}
	}

	// Bounded tail: admission-on p99 at least 2x better than queues-only,
	// and anchored to the deadline contract rather than the horizon.
	if off.Overall.P99 < 2*on.Overall.P99 {
		t.Fatalf("p99 off %.2fms < 2x p99 on %.2fms — admission did not bound the tail",
			off.Overall.P99*1e3, on.Overall.P99*1e3)
	}
	if on.Overall.P99 > 2.5*on.OLAPDeadline {
		t.Fatalf("admission-on p99 %.2fms exceeds 2.5x the %.2fms OLAP deadline",
			on.Overall.P99*1e3, on.OLAPDeadline*1e3)
	}

	// Weighted fairness: every scan tenant gets at least half its fair
	// share. A tenant offering less than its share is entitled to its
	// demand, not the share.
	totalW := 0.0
	for _, at := range on.Tenants {
		totalW += at.Weight
	}
	for _, at := range on.Tenants {
		fair := at.Weight / totalW * on.CompletedQPS
		if at.OfferedQPS < fair {
			fair = at.OfferedQPS
		}
		if at.GoodputQPS < 0.5*fair {
			t.Errorf("tenant %s goodput %.0f q/s below half its fair share %.0f",
				at.Name, at.GoodputQPS, fair)
		}
	}

	// The mechanisms must actually engage: the greedy tenant's surplus is
	// shed, the control loop samples, and the writer's Interactive batches
	// flow in both modes.
	if on.TotalShed == 0 {
		t.Error("no statements shed despite 2x overload")
	}
	if len(on.Trace) == 0 {
		t.Error("elastic controller recorded no control samples")
	}
	if on.WriterBatches == 0 || off.WriterBatches == 0 {
		t.Error("writer tenant applied no rows")
	}
	// The off run exhibits the failure mode admission prevents: an
	// unbounded statement backlog in the scheduler queues.
	if off.MeanQueuedTasks < 10*on.MeanQueuedTasks {
		t.Errorf("queues-only mean task backlog %.0f not clearly worse than admission-on %.0f",
			off.MeanQueuedTasks, on.MeanQueuedTasks)
	}
}

// TestAdmissionOverloadQuick asserts the acceptance criteria at the quick
// scale's 25 us simulator step.
func TestAdmissionOverloadQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("overload simulation")
	}
	checkAdmissionCriteria(t, QuickScale())
}

// TestAdmissionOverloadFull asserts the acceptance criteria at the full
// scale's 5 us simulator step (the step-size robustness check: quick-scale
// dispatch quantization must not be what produces the win).
func TestAdmissionOverloadFull(t *testing.T) {
	if testing.Short() {
		t.Skip("overload simulation at full scale")
	}
	checkAdmissionCriteria(t, FullScale())
}

// TestAdmissionBypassBitIdentical pins the bypass guarantee: statements
// admitted with no contention (free slot, empty queues) dispatch
// synchronously with no fan-out cap, so an admission-enabled engine produces
// results and traffic identical to direct core.Submit — every counter equal,
// bit for bit, on a fixed-seed closed-loop run.
func TestAdmissionBypassBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-seed simulation runs")
	}
	run := func(admission bool) *core.Engine {
		e := core.NewWithStep(FourSocket.Build(), 1, 25e-6)
		table := workload.Generate(workload.DatasetConfig{
			Rows: 60_000, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
			Seed: 1, Synthetic: true,
		})
		e.Placer.PlaceRR(table)
		if admission {
			e.EnableAdmission(admit.Config{
				Tenants:      []admit.TenantSpec{{Name: "t", Weight: 1}},
				OLAPDeadline: 1, InteractiveDeadline: 1,
			})
		}
		clients := workload.NewClients(e, table, workload.ClientsConfig{
			N: 8, Selectivity: 1e-5, Parallel: true, Strategy: core.Bound,
			Tenant: "t", Seed: 3,
		})
		clients.Start()
		e.Sim.Run(0.08)
		return e
	}
	direct := run(false)
	admitted := run(true)

	// The admitted run must never have queued: uncontended means every
	// statement took the synchronous bypass.
	st := admitted.Admit.Stats("t")
	if st.Wait.N() == 0 || st.Wait.Max() != 0 {
		t.Fatalf("admission queued statements (max wait %v) — not the bypass path", st.Wait.Max())
	}
	if st.Shed != 0 {
		t.Fatalf("admission shed %d statements on an uncontended run", st.Shed)
	}

	d, a := direct.Counters, admitted.Counters
	if d.QueriesDone != a.QueriesDone || d.TasksExecuted != a.TasksExecuted ||
		d.TasksStolen != a.TasksStolen {
		t.Fatalf("counts drifted: direct {q %d, tasks %d, stolen %d} vs admitted {q %d, tasks %d, stolen %d}",
			d.QueriesDone, d.TasksExecuted, d.TasksStolen,
			a.QueriesDone, a.TasksExecuted, a.TasksStolen)
	}
	if d.TotalMCBytes() != a.TotalMCBytes() || d.LLCLocal != a.LLCLocal ||
		d.LLCRemote != a.LLCRemote || d.LinkDataBytes != a.LinkDataBytes ||
		d.LinkTotalBytes != a.LinkTotalBytes {
		t.Fatalf("traffic drifted: direct {MC %v, LLC %v/%v, link %v/%v} vs admitted {MC %v, LLC %v/%v, link %v/%v}",
			d.TotalMCBytes(), d.LLCLocal, d.LLCRemote, d.LinkDataBytes, d.LinkTotalBytes,
			a.TotalMCBytes(), a.LLCLocal, a.LLCRemote, a.LinkDataBytes, a.LinkTotalBytes)
	}
	if d.IPC() != a.IPC() || d.WorkerBusySeconds != a.WorkerBusySeconds {
		t.Fatalf("compute drifted: IPC %v vs %v, busy %v vs %v",
			d.IPC(), a.IPC(), d.WorkerBusySeconds, a.WorkerBusySeconds)
	}
	dl, al := d.Latencies(), a.Latencies()
	if dl != al {
		t.Fatalf("latency distributions drifted:\n direct   %+v\n admitted %+v", dl, al)
	}
}
