package harness

import (
	"fmt"
	"math/rand"

	"numacs/internal/adaptive"
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/delta"
	"numacs/internal/workload"
)

// deltaMergeWindows is the number of virtual-time windows the experiment
// reports. The write phase occupies windows 5-9 (1-based), leaving a
// read-only baseline ramp before it and a recovery tail after it.
const deltaMergeWindows = 13

// deltaMergeScanCol and deltaMergeReplCol are the two columns the lifecycle
// plays out on: the scanned-and-written column whose delta growth degrades
// throughput until the merge folds it back, and the replicated column whose
// copies the write-guard must reclaim once writes reach it.
const (
	deltaMergeScanCol = 2 // socket 0 under the block layout
	deltaMergeReplCol = 5 // socket 1, replicated on sockets 2 and 3 at setup
)

// deltaReadMix concentrates scans on the hot column with a warm secondary
// (the replicated column, so its copies keep earning traffic) over a uniform
// background.
type deltaReadMix struct {
	hot, warm  int
	pHot, pWrm float64
}

// Pick implements workload.Chooser.
func (m deltaReadMix) Pick(rng *rand.Rand, columns int) int {
	r := rng.Float64()
	if r < m.pHot {
		return m.hot % columns
	}
	if r < m.pHot+m.pWrm {
		return m.warm % columns
	}
	return rng.Intn(columns)
}

// deltaWriteMix sends most writes to the hot scanned column and the rest to
// the replicated column (turning it write-hot).
type deltaWriteMix struct {
	hot, warm int
	pHot      float64
}

// Pick implements workload.Chooser.
func (m deltaWriteMix) Pick(rng *rand.Rand, columns int) int {
	if rng.Float64() < m.pHot {
		return m.hot % columns
	}
	return m.warm % columns
}

// DeltaMergeRun is the measured outcome of one delta-merge configuration:
// per-window throughput and the scanned column's delta size over virtual
// time, the placer's decision log, and the end-state the lifecycle
// assertions check. Exposed so tests can validate the acceptance criteria at
// both simulator scales.
type DeltaMergeRun struct {
	Label string
	TP    []float64 // q/min per window
	// DeltaKiB tracks the scanned column's delta size at each window end.
	DeltaKiB []float64
	Actions  []adaptive.Action

	// PreWriteTP is the mean throughput of the read-only windows before
	// writes start (windows 2-4; window 1 is warm-up ramp).
	PreWriteTP float64
	// RecoveredTP is the mean throughput of the last two windows, after the
	// cleanup merge folded the remaining delta.
	RecoveredTP float64
	// WriteStart/WriteStop bound the writers' active window, and MergeTimes
	// lists when the placer fired merges for the scanned column — the tests
	// derive the degradation window from these.
	WriteStart, WriteStop float64
	MergeTimes            []float64
	Window                float64

	MergesCompleted  int
	ReplicatedAtEnd  bool
	FinalDeltaBytes  int64
	Inserts, Updates uint64
	RowsGrownTo      int
}

// RunDeltaMerge executes one delta-merge configuration on the 4-socket
// machine: parallel low-selectivity scans concentrated on one column (with a
// warm replicated secondary), and — when writes is set — an update-heavy
// write mix appended from socket-0 writers during the middle windows. The
// write-aware placer owns the whole lifecycle: the delta grows and degrades
// scans, the size trigger fires a background merge that restores the main,
// the write-guard reclaims the now write-hot replicas of the secondary, and
// the write-cold cleanup merge after the writers stop returns throughput to
// the read-only baseline. The move/partition/replicate levers are frozen
// (huge ImbalanceRatio) so the run isolates exactly the write path.
func RunDeltaMerge(s Scale, writes bool) DeltaMergeRun {
	e := core.NewWithStep(FourSocket.Build(), 1, s.Step)
	ds := workload.DatasetConfig{
		Rows: s.Rows, Columns: 16, BitcaseMin: 12, BitcaseMax: 18,
		Seed: 1, Synthetic: true,
	}
	table := workload.Generate(ds)
	e.Placer.PlaceRRBlocks(table)
	scanCol := table.Parts[0].Columns[deltaMergeScanCol]
	replCol := table.Parts[0].Columns[deltaMergeReplCol]
	e.Placer.AddReplica(replCol, 2)
	e.Placer.AddReplica(replCol, 3)

	horizon := s.Warmup + 2*s.Measure
	window := horizon / deltaMergeWindows

	cfg := adaptive.DefaultConfig()
	cfg.Period = window / 4
	cfg.ImbalanceRatio = 1e9        // freeze move/partition/replicate: write-path levers only
	cfg.StaleReplicaFraction = 1e-9 // replicas live until the write-guard reclaims them
	cfg.MergeDeltaFraction = 0.4
	cfg.MergeTrafficFraction = 0.9 // size trigger governs the in-phase merge timing
	// The write-guard threshold scales with the balancing period (write bytes
	// accumulate per period, the footprint does not); the compressed virtual
	// horizon here makes periods tiny, so the default per-period fraction is
	// scaled down accordingly.
	cfg.WriteHotFraction = 0.001
	placer := adaptive.New(e, &adaptive.Catalog{Tables: []*colstore.Table{table}}, cfg)
	e.Sim.AddActor(placer)

	clients := workload.NewClients(e, table, workload.ClientsConfig{
		N: 256, Selectivity: lowSel, Parallel: true, Strategy: core.Bound,
		Chooser: deltaReadMix{hot: deltaMergeScanCol, warm: deltaMergeReplCol, pHot: 0.80, pWrm: 0.08},
		Seed:    11,
	})
	clients.Start()

	writeStart, writeStop := 4*window, 9*window
	var writers *workload.Writers
	if writes {
		// Rate tuned so the hot column's delta crosses the merge threshold
		// ~3.2 windows into the 5-window write phase, leaving full windows of
		// monotonic degradation before the merge fires.
		thresholdRows := cfg.MergeDeltaFraction * float64(scanCol.IVBytes()) / delta.RowBytes
		rate := thresholdRows / (3.2 * window) / 0.8
		writers = workload.NewWriters(e, table, workload.WritersConfig{
			Rate: rate, UpdateFraction: 0.8,
			Chooser: deltaWriteMix{hot: deltaMergeScanCol, warm: deltaMergeReplCol, pHot: 0.8},
			Sockets: []int{0}, // colocate appends with the hot column's socket
			Start:   writeStart, Stop: writeStop, Seed: 5,
		})
		e.Sim.AddActor(writers)
	}

	label := "read-only baseline"
	if writes {
		label = "mixed read/write"
	}
	run := DeltaMergeRun{Label: label, WriteStart: writeStart, WriteStop: writeStop, Window: window}
	for w := 0; w < deltaMergeWindows; w++ {
		e.Counters.Reset()
		e.Sim.Run(float64(w+1) * window)
		run.TP = append(run.TP, e.Counters.ThroughputQPM(window))
		run.DeltaKiB = append(run.DeltaKiB, float64(scanCol.DeltaBytes())/1024)
	}

	run.PreWriteTP = meanf(run.TP[1:4])
	run.RecoveredTP = meanf(run.TP[deltaMergeWindows-2:])
	run.Actions = placer.Actions
	for _, a := range placer.Actions {
		if a.Kind == "merge" && a.Column == scanCol.Name {
			run.MergeTimes = append(run.MergeTimes, a.Time)
		}
	}
	run.MergesCompleted = e.MergesCompleted
	run.ReplicatedAtEnd = replCol.Replicated()
	run.FinalDeltaBytes = scanCol.DeltaBytes() + replCol.DeltaBytes()
	run.RowsGrownTo = scanCol.Rows
	if writers != nil {
		run.Inserts, run.Updates = writers.Inserts, writers.Updates
	}
	return run
}

func meanf(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// runDeltaMerge reproduces the write-path lifecycle the main/delta
// architecture promises: appends degrade scans as the uncompressed delta
// grows, the background merge restores the read-optimized main (and
// throughput), and the write-guard reclaims replicas of columns that turned
// write-hot — the Section 7 update-rate concerns, actually firing.
func runDeltaMerge(s Scale) *Report {
	rep := &Report{ID: "delta-merge", Title: "Delta-store write path: append, scan degradation, merge, recovery"}

	base := RunDeltaMerge(s, false)
	mixed := RunDeltaMerge(s, true)

	header := []string{"configuration"}
	for w := 0; w < deltaMergeWindows; w++ {
		header = append(header, fmt.Sprintf("w%d", w+1))
	}
	tp := rep.AddTable("throughput over virtual time (q/min per window; writes during w5-w9)", header)
	for _, r := range []DeltaMergeRun{base, mixed} {
		row := []string{r.Label}
		for _, v := range r.TP {
			row = append(row, f0(v))
		}
		tp.AddRow(row...)
	}
	dk := rep.AddTable("hot column delta size at window end (KiB)", header)
	for _, r := range []DeltaMergeRun{base, mixed} {
		row := []string{r.Label}
		for _, v := range r.DeltaKiB {
			row = append(row, f1(v))
		}
		dk.AddRow(row...)
	}

	sum := rep.AddTable("lifecycle summary", []string{
		"configuration", "pre-write TP", "min in-write TP", "recovered TP", "recovered/baseline",
		"merges", "inserts", "updates", "repl col copies", "final delta KiB"})
	for _, r := range []DeltaMergeRun{base, mixed} {
		minTP := r.TP[4]
		for _, v := range r.TP[4:9] {
			if v < minTP {
				minTP = v
			}
		}
		copies := 1
		if r.ReplicatedAtEnd {
			copies = 3
		}
		sum.AddRow(r.Label, f0(r.PreWriteTP), f0(minTP), f0(r.RecoveredTP),
			fmt.Sprintf("%.2fx", r.RecoveredTP/base.RecoveredTP),
			itoa(r.MergesCompleted), itoa(int(r.Inserts)), itoa(int(r.Updates)),
			itoa(copies), f1(float64(r.FinalDeltaBytes)/1024))
	}

	ta := rep.AddTable("write-aware placer actions (mixed run)", []string{"t(ms)", "action", "column", "from", "to", "KiB"})
	for _, a := range mixed.Actions {
		ta.AddRow(fmt.Sprintf("%.1f", a.Time*1e3), a.Kind, a.Column, itoa(a.From), itoa(a.To), itoa(int(a.Bytes/1024)))
	}
	if len(mixed.Actions) == 0 {
		ta.AddRow("-", "(none)", "-", "-", "-", "-")
	}
	return rep
}
