// Package placement implements the three data placement strategies of
// Section 4.2 — round-robin (RR), indexvector partitioning (IVP), and
// physical partitioning (PP) — on top of the simulated page allocator, and
// attaches Page Socket Mappings to every column component so the scheduler
// can derive task affinities.
package placement

import (
	"fmt"

	"numacs/internal/colstore"
	"numacs/internal/delta"
	"numacs/internal/memsim"
	"numacs/internal/psm"
	"numacs/internal/topology"
)

// Strategy names a data placement strategy.
type Strategy int

const (
	// RR places whole columns on sockets round-robin (Section 4.2).
	RR Strategy = iota
	// IVP partitions a column's indexvector across sockets by page moves.
	IVP
	// PP physically partitions the table, each part wholly on one socket.
	PP
)

// String returns the paper's name for the placement strategy.
func (s Strategy) String() string {
	switch s {
	case RR:
		return "RR"
	case IVP:
		return "IVP"
	case PP:
		return "PP"
	default:
		return fmt.Sprintf("placement(%d)", int(s))
	}
}

// Placer allocates simulated memory for columns and tracks their location.
type Placer struct {
	Alloc   *memsim.Allocator
	Machine *topology.Machine
}

// New creates a placer for a machine.
func New(m *topology.Machine) *Placer {
	return &Placer{Alloc: memsim.NewAllocator(m.Sockets), Machine: m}
}

// allSockets returns [0..n).
func (p *Placer) allSockets() []int {
	s := make([]int, p.Machine.Sockets)
	for i := range s {
		s[i] = i
	}
	return s
}

// PlaceColumnOnSocket allocates every component of the column on one socket
// (the RR placement for a single column).
func (p *Placer) PlaceColumnOnSocket(c *colstore.Column, socket int) {
	c.IVRange = p.Alloc.Alloc(c.IVBytes(), memsim.OnSocket(socket))
	c.DictRange = p.Alloc.Alloc(c.DictBytes(), memsim.OnSocket(socket))
	c.IVPSM = psm.Build(p.Alloc, c.IVRange)
	c.DictPSM = psm.Build(p.Alloc, c.DictRange)
	if c.Idx != nil {
		c.IXRange = p.Alloc.Alloc(c.Idx.SizeBytes(), memsim.OnSocket(socket))
		c.IXPSM = psm.Build(p.Alloc, c.IXRange)
	}
	c.Partitions = nil
}

// PlaceTableOnSocket places every column of a single-part table wholly on
// one socket — the "one partition per table degenerates to RR" placement of
// Section 6.3 where whole tables round-robin across sockets.
func (p *Placer) PlaceTableOnSocket(t *colstore.Table, socket int) {
	if t.NumParts() != 1 {
		panic("placement: PlaceTableOnSocket expects an unpartitioned table")
	}
	for _, c := range t.Parts[0].Columns {
		p.PlaceColumnOnSocket(c, socket)
	}
	t.Parts[0].HomeSocket = socket
}

// PlaceRR places each column of a single-part table wholly on one socket, in
// a round-robin fashion across sockets.
func (p *Placer) PlaceRR(t *colstore.Table) {
	if t.NumParts() != 1 {
		panic("placement: PlaceRR expects an unpartitioned table")
	}
	for i, c := range t.Parts[0].Columns {
		p.PlaceColumnOnSocket(c, i%p.Machine.Sockets)
	}
	t.Parts[0].HomeSocket = -1
}

// PlaceRRBlocks places the columns of a single-part table in contiguous
// blocks: socket s receives columns [s*C/S, (s+1)*C/S). This mirrors how a
// loader that fills sockets in column order lays data out, and is the setup
// behind the paper's skewed experiments, where the hot half of the columns
// occupies only half the sockets (Section 6.2: "only two sockets contain the
// hot set of columns").
func (p *Placer) PlaceRRBlocks(t *colstore.Table) {
	if t.NumParts() != 1 {
		panic("placement: PlaceRRBlocks expects an unpartitioned table")
	}
	cols := t.Parts[0].Columns
	s := p.Machine.Sockets
	for i, c := range cols {
		p.PlaceColumnOnSocket(c, i*s/len(cols))
	}
	t.Parts[0].HomeSocket = -1
}

// PlaceIVP partitions the indexvector of the column equally across the given
// sockets (page moves only — the quick, novel placement of Section 4.2) and
// interleaves the dictionary and the index across all sockets of the
// machine. Partition row bounds are recorded on the column.
func (p *Placer) PlaceIVP(c *colstore.Column, sockets []int) {
	k := len(sockets)
	if k < 1 {
		panic("placement: IVP needs at least one socket")
	}
	if c.IVRange.Bytes == 0 {
		c.IVRange = p.Alloc.Alloc(c.IVBytes(), memsim.OnSocket(sockets[0]))
	}
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = c.Rows * i / k
	}
	// Page-align the byte cut points so adjacent partitions never share a
	// page (the allocator returns page-aligned ranges, so offsets aligned to
	// PageSize tile pages exactly and repartitioning is idempotent).
	cuts := make([]int64, k+1)
	for i := 1; i < k; i++ {
		off := c.IVOffsetForRow(bounds[i])
		cuts[i] = off - off%memsim.PageSize
	}
	cuts[k] = c.IVRange.Bytes
	for i := 0; i < k; i++ {
		if cuts[i+1] > cuts[i] {
			p.Alloc.MovePages(c.IVRange.Subrange(cuts[i], cuts[i+1]-cuts[i]), sockets[i])
		}
	}
	c.IVPSM = psm.Build(p.Alloc, c.IVRange)
	c.Partitions = bounds

	// Dictionary and IX are interleaved across all sockets: there is no
	// good single location because vid order in the IV does not follow
	// dictionary order (Section 4.2).
	all := p.allSockets()
	if c.DictRange.Bytes == 0 {
		c.DictRange = p.Alloc.Alloc(c.DictBytes(), memsim.Interleaved{Sockets: all})
	} else {
		p.Alloc.InterleavePages(c.DictRange, all)
	}
	c.DictPSM = psm.Build(p.Alloc, c.DictRange)
	if c.Idx != nil {
		if c.IXRange.Bytes == 0 {
			c.IXRange = p.Alloc.Alloc(c.Idx.SizeBytes(), memsim.Interleaved{Sockets: all})
		} else {
			p.Alloc.InterleavePages(c.IXRange, all)
		}
		c.IXPSM = psm.Build(p.Alloc, c.IXRange)
	}
}

// PlaceReplicated places a full replica of the column (IV, dictionary, IX)
// on each of the given sockets — the replication placement sketched in
// Section 4.2 ("one can replicate some or all components of a column on a
// few sockets, at the expense of memory"). Simulated memory is allocated for
// every replica, so the footprint really multiplies; the scheduler then
// spreads scan tasks across the replica sockets.
func (p *Placer) PlaceReplicated(c *colstore.Column, sockets []int) {
	if len(sockets) == 0 {
		panic("placement: replication needs at least one socket")
	}
	p.PlaceColumnOnSocket(c, sockets[0])
	c.ReplicaSockets = []int{sockets[0]}
	c.Replicas = nil
	for _, s := range sockets[1:] {
		p.AddReplica(c, s)
	}
}

// ReplicaFootprintBytes returns the page-granular simulated memory one extra
// replica of the column will consume — the amount AddReplica allocates and
// the adaptive placer charges against Config.ReplicaBudgetBytes before
// deciding to replicate.
func ReplicaFootprintBytes(c *colstore.Column) int64 {
	pages := func(bytes int64) int64 { return (bytes + memsim.PageSize - 1) / memsim.PageSize }
	b := pages(c.IVBytes()) + pages(c.DictBytes())
	if c.Idx != nil {
		b += pages(c.Idx.SizeBytes())
	}
	return b * memsim.PageSize
}

// AddReplica allocates one extra full replica (IV + dictionary + IX) of a
// placed column on the given socket, records its metadata on the column, and
// returns the page-granular bytes consumed (0 when the socket already holds
// a copy). This is the grow half of the adaptive replication lever of
// Section 7: read-hot columns gain copies on cold sockets so every socket's
// memory controller can serve them. The column must be placed and
// unpartitioned; the primary copy keeps the column's own ranges.
func (p *Placer) AddReplica(c *colstore.Column, socket int) int64 {
	if c.IVPSM == nil {
		panic("placement: AddReplica on an unplaced column")
	}
	if c.NumPartitions() != 1 {
		panic("placement: AddReplica on a partitioned column")
	}
	if len(c.ReplicaSockets) == 0 {
		primary := c.IVPSM.MajoritySocket()
		if primary < 0 {
			primary = 0
		}
		c.ReplicaSockets = []int{primary}
	}
	for _, s := range c.ReplicaSockets {
		if s == socket {
			return 0
		}
	}
	r := colstore.Replica{
		Socket:    socket,
		IVRange:   p.Alloc.Alloc(c.IVBytes(), memsim.OnSocket(socket)),
		DictRange: p.Alloc.Alloc(c.DictBytes(), memsim.OnSocket(socket)),
	}
	if c.Idx != nil {
		r.IXRange = p.Alloc.Alloc(c.Idx.SizeBytes(), memsim.OnSocket(socket))
	}
	c.Replicas = append(c.Replicas, r)
	c.ReplicaSockets = append(c.ReplicaSockets, socket)
	return r.Bytes()
}

// DropReplica frees the column's replica on the given socket and returns the
// page-granular bytes reclaimed (0 when the socket holds no extra replica).
// The primary copy (ReplicaSockets[0]) cannot be dropped. When the last
// extra replica goes, the column reverts to an ordinary single-copy
// placement. This is the teardown half of the Section 7 replica
// lifecycle: the adaptive placer garbage-collects copies whose traffic has
// decayed.
func (p *Placer) DropReplica(c *colstore.Column, socket int) int64 {
	for i, r := range c.Replicas {
		if r.Socket != socket {
			continue
		}
		p.Alloc.Free(r.IVRange)
		p.Alloc.Free(r.DictRange)
		if r.IXRange.Bytes > 0 {
			p.Alloc.Free(r.IXRange)
		}
		c.Replicas = append(c.Replicas[:i], c.Replicas[i+1:]...)
		for j, s := range c.ReplicaSockets {
			if j > 0 && s == socket {
				c.ReplicaSockets = append(c.ReplicaSockets[:j], c.ReplicaSockets[j+1:]...)
				break
			}
		}
		if len(c.ReplicaSockets) == 1 {
			c.ReplicaSockets = nil
		}
		return r.Bytes()
	}
	return 0
}

// PlaceTableIVP applies IVP to every column of a single-part table across
// the given number of partitions, distributing partition->socket assignments
// round-robin so different columns start on different sockets (as in
// Section 6.1.4).
func (p *Placer) PlaceTableIVP(t *colstore.Table, partitions int) {
	if t.NumParts() != 1 {
		panic("placement: PlaceTableIVP expects an unpartitioned table")
	}
	s := p.Machine.Sockets
	for i, c := range t.Parts[0].Columns {
		// Partition j of column i goes to socket (i+j) mod S, so partitions
		// land on distinct sockets and different columns start on different
		// sockets (the round-robin distribution of Section 6.1.4).
		sockets := make([]int, partitions)
		for j := range sockets {
			sockets[j] = (i + j) % s
		}
		p.PlaceIVP(c, sockets)
	}
}

// PlacePP physically partitions the table into n parts and places each part
// wholly on a socket, round-robin. It returns the new table; the input table
// must be single-part.
func (p *Placer) PlacePP(t *colstore.Table, n int) *colstore.Table {
	pp := t.PhysicallyPartition(n)
	for i, part := range pp.Parts {
		socket := i % p.Machine.Sockets
		part.HomeSocket = socket
		for _, c := range part.Columns {
			p.PlaceColumnOnSocket(c, socket)
		}
	}
	return pp
}

// RepartitionIVP changes the number of IVP partitions of a column in place
// by moving pages, and returns the number of pages moved (the cost driver
// that makes IVP "quick to readjust" in Table 2).
func (p *Placer) RepartitionIVP(c *colstore.Column, sockets []int) int64 {
	before := p.Alloc.TotalPagesMoved()
	p.PlaceIVP(c, sockets)
	return p.Alloc.TotalPagesMoved() - before
}

// EnsureDeltaCapacity grows the simulated allocation backing a delta
// fragment so it covers the fragment's committed bytes: capacity doubles
// (page-granular) on the fragment's own socket — the per-socket placement
// that keeps appends local to the writing client. The copy cost of growth is
// folded into the write-traffic flows the engine issues per append batch.
func (p *Placer) EnsureDeltaCapacity(f *delta.Fragment) {
	need := f.SizeBytes()
	if need <= f.Range.Bytes {
		return
	}
	newBytes := f.Range.Bytes * 2
	if newBytes < memsim.PageSize {
		newBytes = memsim.PageSize
	}
	for newBytes < need {
		newBytes *= 2
	}
	if f.Range.Bytes > 0 {
		p.Alloc.Free(f.Range)
	}
	f.Range = p.Alloc.Alloc(newBytes, memsim.OnSocket(f.Socket))
}

// MergeDelta folds the delta rows visible in the given snapshot — taken
// when the merge STARTED, so rows appended while the background merge was in
// flight stay in the delta for the next round — into a rebuilt
// dictionary-encoded main: the merge of the main/delta architecture, fired
// by the adaptive placer's Action{Kind:"merge"}. It rebuilds the main
// structures (Reencode for real columns, ResizeSynthetic for harness
// columns) and re-places them NUMA-aware, preserving the column's placement
// shape:
//
//   - an IVP-partitioned column is re-partitioned across the same sockets
//     (bounds recomputed for the grown row count);
//   - a replicated column's replicas are invalidated and rebuilt at the new
//     size on the same sockets (the merged main must reach every copy);
//   - otherwise the column is re-placed wholly on its previous majority
//     socket.
//
// It returns the merged row count and the pages the rebuild wrote (the copy
// cost the adaptive placer accounts).
func (p *Placer) MergeDelta(c *colstore.Column, snap delta.Snapshot) (mergedRows int, pagesCopied int64) {
	d := c.Delta
	if d == nil || snap.TotalRows() == 0 {
		return 0, 0
	}

	// Record the placement shape before tearing the old structures down.
	shapeIVP := c.NumPartitions() > 1
	var ivpSockets []int
	if shapeIVP {
		for i := 0; i < c.NumPartitions(); i++ {
			from, to := c.PartitionBounds(i)
			off := c.IVOffsetForRow((from + to) / 2)
			if off >= c.IVRange.Bytes {
				off = c.IVRange.Bytes - 1
			}
			s := c.IVPSM.LocationOf(c.IVRange.Start + memsim.Addr(off))
			if s < 0 {
				s = 0
			}
			ivpSockets = append(ivpSockets, s)
		}
	}
	replicaSockets := append([]int(nil), c.ReplicaSockets...)
	home := c.IVPSM.MajoritySocket()
	if len(replicaSockets) > 0 {
		home = replicaSockets[0]
	}
	if home < 0 {
		home = 0
	}

	// Rebuild the main from main + snapshot-visible delta.
	if c.Synthetic {
		c.ResizeSynthetic(c.Rows + snap.TotalInserts())
	} else {
		c.Reencode(c.MergedValuesAt(snap))
	}
	mergedRows = snap.TotalRows()

	// Free the old placement: primary ranges and every replica (replica
	// invalidation — stale copies of the pre-merge main must not serve).
	p.Alloc.Free(c.IVRange)
	p.Alloc.Free(c.DictRange)
	if c.IXRange.Bytes > 0 {
		p.Alloc.Free(c.IXRange)
	}
	for _, r := range c.Replicas {
		p.Alloc.Free(r.IVRange)
		p.Alloc.Free(r.DictRange)
		if r.IXRange.Bytes > 0 {
			p.Alloc.Free(r.IXRange)
		}
	}
	c.IVRange, c.DictRange, c.IXRange = memsim.Range{}, memsim.Range{}, memsim.Range{}
	c.Replicas = nil
	c.ReplicaSockets = nil

	// Re-place the rebuilt main, preserving the shape.
	switch {
	case shapeIVP:
		p.PlaceIVP(c, ivpSockets)
	default:
		p.PlaceColumnOnSocket(c, home)
		// Replica rebuild: same sockets, new size.
		if len(replicaSockets) > 1 {
			for _, s := range replicaSockets[1:] {
				p.AddReplica(c, s)
			}
		}
	}
	pagesCopied = c.IVRange.Pages() + c.DictRange.Pages()
	if c.IXRange.Bytes > 0 {
		pagesCopied += c.IXRange.Pages()
	}
	for _, r := range c.Replicas {
		pagesCopied += (r.Bytes() + memsim.PageSize - 1) / memsim.PageSize
	}

	// The merged prefix leaves the delta; later appends survive. Emptied
	// fragments release their simulated allocation.
	d.TruncateMerged(snap)
	for s := 0; s < d.Sockets(); s++ {
		f := d.Fragment(s)
		if f.Committed() == 0 && f.Range.Bytes > 0 {
			p.Alloc.Free(f.Range)
			f.Range = memsim.Range{}
		}
	}
	return mergedRows, pagesCopied
}

// Cost models for the two repartitioning mechanisms (Section 6.2.3: PP on
// the paper's dataset takes ~18 minutes vs ~4 for IVP and consumes ~8% more
// memory). The constants are expressed per byte so costs scale with data.
const (
	// PageMoveCost is the simulated seconds to migrate one 4 KiB page
	// (move_pages syscall amortized).
	PageMoveCost = 2e-6
	// RebuildCostPerByte is the simulated seconds per byte to re-encode a
	// column during physical partitioning (dictionary rebuild + IV re-encode
	// is far slower than a page move).
	RebuildCostPerByte = 25e-9
)

// IVPCost estimates the simulated duration of IVP-partitioning a table.
func IVPCost(t *colstore.Table) float64 {
	pages := int64(0)
	for _, part := range t.Parts {
		for _, c := range part.Columns {
			pages += (c.IVBytes() + memsim.PageSize - 1) / memsim.PageSize
		}
	}
	return float64(pages) * PageMoveCost
}

// PPCost estimates the simulated duration of physically partitioning a
// table: every byte of every column is reprocessed.
func PPCost(t *colstore.Table) float64 {
	bytes := int64(0)
	for _, part := range t.Parts {
		for _, c := range part.Columns {
			bytes += c.TotalBytes() + int64(c.Rows)*colstore.ValueSize // decode + re-encode
		}
	}
	return float64(bytes) * RebuildCostPerByte
}
