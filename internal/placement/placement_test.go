package placement

import (
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/memsim"
	"numacs/internal/topology"
)

func testColumn(rows int, mod int64, seed uint32, withIndex bool) *colstore.Column {
	vals := make([]int64, rows)
	s := seed
	for i := range vals {
		s = s*1664525 + 1013904223
		vals[i] = int64(s) % mod
	}
	return colstore.Build("c", vals, withIndex)
}

func testTable(rows, cols int) *colstore.Table {
	columns := make([]*colstore.Column, cols)
	for j := range columns {
		columns[j] = testColumn(rows, int64(64+j), uint32(j+1), false)
	}
	for j := range columns {
		columns[j].Name = "COL" + string(rune('0'+j))
	}
	return colstore.NewTable("t", columns)
}

func TestPlaceColumnOnSocket(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	c := testColumn(50000, 1000, 1, true)
	p.PlaceColumnOnSocket(c, 2)
	if got := c.IVPSM.MajoritySocket(); got != 2 {
		t.Fatalf("IV on socket %d", got)
	}
	if got := c.DictPSM.MajoritySocket(); got != 2 {
		t.Fatalf("dict on socket %d", got)
	}
	if got := c.IXPSM.MajoritySocket(); got != 2 {
		t.Fatalf("IX on socket %d", got)
	}
	if c.NumPartitions() != 1 {
		t.Fatal("RR column should be unpartitioned")
	}
}

func TestPlaceRRRoundRobin(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	tbl := testTable(20000, 8)
	p.PlaceRR(tbl)
	for i, c := range tbl.Parts[0].Columns {
		if got := c.IVPSM.MajoritySocket(); got != i%4 {
			t.Fatalf("column %d on socket %d, want %d", i, got, i%4)
		}
	}
}

func TestPlaceIVPPartitionsIV(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	p := New(m)
	c := testColumn(200000, 100000, 3, true)
	p.PlaceIVP(c, []int{0, 1, 2, 3})
	if c.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", c.NumPartitions())
	}
	// Each quarter of the IV should live on its socket.
	for i := 0; i < 4; i++ {
		from, to := c.PartitionBounds(i)
		mid := (from + to) / 2
		addr := c.IVRange.Start + memsim.Addr(c.IVOffsetForRow(mid))
		if got := c.IVPSM.LocationOf(addr); got != i {
			t.Fatalf("partition %d row %d resolves to socket %d", i, mid, got)
		}
	}
	// Dictionary and IX interleaved: pages spread across all sockets.
	dictSum := c.DictPSM.Summary()
	nonzero := 0
	for _, pages := range dictSum {
		if pages > 0 {
			nonzero++
		}
	}
	if nonzero != 4 {
		t.Fatalf("dictionary not interleaved across 4 sockets: %v", dictSum)
	}
}

func TestPlaceIVPSubsetOfSockets(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	c := testColumn(100000, 50000, 5, false)
	p.PlaceIVP(c, []int{1, 3})
	if c.NumPartitions() != 2 {
		t.Fatalf("partitions = %d", c.NumPartitions())
	}
	from, to := c.PartitionBounds(0)
	addr := c.IVRange.Start + memsim.Addr(c.IVOffsetForRow((from+to)/2))
	if got := c.IVPSM.LocationOf(addr); got != 1 {
		t.Fatalf("first part on %d, want 1", got)
	}
}

func TestPlaceTableIVPSpreadsStartSockets(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	tbl := testTable(40000, 4)
	p.PlaceTableIVP(tbl, 2)
	// Column i's first partition should be on socket i%4.
	for i, c := range tbl.Parts[0].Columns {
		from, to := c.PartitionBounds(0)
		addr := c.IVRange.Start + memsim.Addr(c.IVOffsetForRow((from+to)/2))
		if got := c.IVPSM.LocationOf(addr); got != i%4 {
			t.Fatalf("column %d first part on socket %d, want %d", i, got, i%4)
		}
	}
}

func TestPlacePP(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	tbl := testTable(40000, 2)
	pp := p.PlacePP(tbl, 4)
	if pp.NumParts() != 4 {
		t.Fatalf("parts = %d", pp.NumParts())
	}
	for i, part := range pp.Parts {
		if part.HomeSocket != i%4 {
			t.Fatalf("part %d home = %d", i, part.HomeSocket)
		}
		for _, c := range part.Columns {
			if got := c.IVPSM.MajoritySocket(); got != part.HomeSocket {
				t.Fatalf("part %d column IV on %d", i, got)
			}
			if got := c.DictPSM.MajoritySocket(); got != part.HomeSocket {
				t.Fatalf("part %d dict on %d (PP keeps dictionaries local)", i, got)
			}
		}
	}
}

func TestRepartitionIVPMovesOnlyDelta(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	c := testColumn(200000, 100000, 7, false)
	p.PlaceIVP(c, []int{0, 1})
	moved := p.RepartitionIVP(c, []int{0, 1, 2, 3})
	if moved <= 0 {
		t.Fatal("repartition should move pages")
	}
	// Repartitioning to the same layout moves nothing further for the IV,
	// but the dictionary interleave is already in place too.
	again := p.RepartitionIVP(c, []int{0, 1, 2, 3})
	if again != 0 {
		t.Fatalf("idempotent repartition moved %d pages", again)
	}
}

func TestIVPCostMuchCheaperThanPP(t *testing.T) {
	tbl := testTable(100000, 8)
	ivp, pp := IVPCost(tbl), PPCost(tbl)
	if ivp <= 0 || pp <= 0 {
		t.Fatalf("costs: ivp=%v pp=%v", ivp, pp)
	}
	// Section 6.2.3: PP ~18 min vs IVP ~4 min, i.e. roughly 4-5x slower.
	if ratio := pp / ivp; ratio < 2 {
		t.Fatalf("PP/IVP cost ratio = %.2f, expected PP to be much slower", ratio)
	}
}

func TestPPMemoryOverhead(t *testing.T) {
	// Low-cardinality data: PP duplicates dictionary entries across parts.
	cols := []*colstore.Column{testColumn(100000, 5000, 9, false)}
	cols[0].Name = "COLX"
	tbl := colstore.NewTable("t", cols)
	base := tbl.TotalBytes()
	p := New(topology.FourSocketIvyBridge())
	pp := p.PlacePP(tbl, 4)
	if pp.TotalBytes() <= base {
		t.Fatalf("PP should consume more memory: %d vs %d", pp.TotalBytes(), base)
	}
}
