package placement

import (
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/delta"
	"numacs/internal/memsim"
	"numacs/internal/topology"
)

// TestMergeDeltaRealColumn: merging a real column's delta must fold updates
// and inserts into a correctly re-encoded main — values queryable through
// the plain main kernels afterwards — and truncate the delta.
func TestMergeDeltaRealColumn(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	c := testColumn(1000, 50, 7, true)
	p.PlaceColumnOnSocket(c, 1)

	c.Delta = delta.New(4, false)
	c.Delta.Update(0, 5, 1234)
	c.Delta.Update(2, 5, 777) // later write to the same row wins
	c.Delta.Insert(3, 999)
	c.Delta.Insert(1, 1000)
	wantMatches := c.CountMatchesWithDelta(700, 1300)
	snap := c.Delta.Snapshot()
	// A row appended after the merge snapshot (i.e. while the background
	// merge flow is in flight) must stay in the delta for the next round.
	c.Delta.Insert(0, 800)

	rows, pages := p.MergeDelta(c, snap)
	if rows != 4 {
		t.Fatalf("merged %d rows, want 4", rows)
	}
	if pages <= 0 {
		t.Fatal("merge copied no pages")
	}
	if c.Rows != 1002 {
		t.Fatalf("rows = %d, want 1002 (two inserts)", c.Rows)
	}
	if c.Value(5) != 777 {
		t.Fatalf("row 5 = %d after merge, want the latest update 777", c.Value(5))
	}
	// Inserts appended in socket-major order.
	if c.Value(1000) != 1000 || c.Value(1001) != 999 {
		t.Fatalf("inserted rows = %d,%d, want 1000,999", c.Value(1000), c.Value(1001))
	}
	if c.DeltaRows() != 1 {
		t.Fatalf("delta rows = %d after merge, want 1 (the post-snapshot append survives)", c.DeltaRows())
	}
	if n := c.CountMatchesWithDelta(800, 800); n != 1 {
		t.Fatalf("post-snapshot insert lost: %d matches for its value", n)
	}
	// The union-scan count is preserved by the merge for the snapshot rows
	// (now served by main only; the surviving insert at 800 scans via delta).
	got := 0
	loVid, hiVid, ok := c.EncodePredicate(700, 1300)
	if ok {
		got = len(c.ScanPositions(loVid, hiVid, 0, c.Rows, nil))
	}
	if got != wantMatches {
		t.Fatalf("post-merge matches %d != pre-merge union count %d", got, wantMatches)
	}
	// Index was rebuilt for the new row count.
	if c.Idx == nil || len(c.Idx.Postings) != c.Rows {
		t.Fatal("index not rebuilt to the merged size")
	}
	// The rebuilt main lives on the previous home socket.
	if s := c.IVPSM.MajoritySocket(); s != 1 {
		t.Fatalf("merged main on socket %d, want 1", s)
	}
}

// TestMergeDeltaRebuildsReplicas: merging a replicated column must
// invalidate every copy and rebuild it at the merged size on the same
// sockets, with the allocator's books balanced.
func TestMergeDeltaRebuildsReplicas(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	c := testColumn(2000, 64, 3, false)
	c.Synthetic = true // size-only rebuild path
	c.Domain = 64
	p.PlaceReplicated(c, []int{0, 2, 3})

	c.Delta = delta.New(4, true)
	for i := 0; i < 500; i++ {
		c.Delta.Insert(i%4, 0)
	}
	before := make([]int64, 4)
	for s := range before {
		before[s] = p.Alloc.PagesOnSocket(s)
	}
	if _, pages := p.MergeDelta(c, c.Delta.Snapshot()); pages <= 0 {
		t.Fatal("merge copied no pages")
	}
	if c.Rows != 2500 {
		t.Fatalf("rows = %d, want 2500", c.Rows)
	}
	if got := append([]int(nil), c.ReplicaSockets...); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("replica sockets %v, want [0 2 3]", got)
	}
	if len(c.Replicas) != 2 {
		t.Fatalf("replica metadata %d entries, want 2", len(c.Replicas))
	}
	for _, r := range c.Replicas {
		if r.IVRange.Bytes != c.IVBytes() || r.DictRange.Bytes != c.DictBytes() {
			t.Fatalf("replica on S%d not rebuilt at merged size", r.Socket)
		}
	}
	// Fragments emptied and their simulated allocations released.
	for s := 0; s < 4; s++ {
		if c.Delta.Fragment(s).Range.Bytes != 0 {
			t.Fatalf("socket %d fragment range not released", s)
		}
	}
}

// TestMergeDeltaPreservesIVPPartitions: merging an IVP-partitioned column
// re-partitions the grown IV across the same sockets.
func TestMergeDeltaPreservesIVPPartitions(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	c := testColumn(40_000, 64, 5, false)
	c.Synthetic = true
	c.Domain = 64
	p.PlaceColumnOnSocket(c, 0)
	p.PlaceIVP(c, []int{1, 3})

	c.Delta = delta.New(4, true)
	for i := 0; i < 4000; i++ {
		c.Delta.Insert(0, 0)
	}
	p.MergeDelta(c, c.Delta.Snapshot())
	if c.Rows != 44_000 {
		t.Fatalf("rows = %d, want 44000", c.Rows)
	}
	if c.NumPartitions() != 2 {
		t.Fatalf("partitions = %d, want 2", c.NumPartitions())
	}
	f0, t0 := c.PartitionBounds(0)
	f1b, t1 := c.PartitionBounds(1)
	if f0 != 0 || t0 != 22_000 || f1b != 22_000 || t1 != 44_000 {
		t.Fatalf("bounds not recomputed: [%d,%d) [%d,%d)", f0, t0, f1b, t1)
	}
}

// TestEnsureDeltaCapacityGrows: the fragment's simulated allocation doubles
// on the fragment's own socket and always covers the committed bytes.
func TestEnsureDeltaCapacityGrows(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	d := delta.New(4, true)
	f := d.Fragment(2)
	for i := 0; i < 3000; i++ {
		d.Insert(2, 0)
		p.EnsureDeltaCapacity(f)
		if f.Range.Bytes < f.SizeBytes() {
			t.Fatalf("range %d bytes < fragment %d bytes", f.Range.Bytes, f.SizeBytes())
		}
	}
	if got := p.Alloc.MajoritySocket(f.Range); got != 2 {
		t.Fatalf("fragment allocated on socket %d, want 2", got)
	}
}

func testColumn(rows int, mod int64, seed uint32, withIndex bool) *colstore.Column {
	vals := make([]int64, rows)
	s := seed
	for i := range vals {
		s = s*1664525 + 1013904223
		vals[i] = int64(s) % mod
	}
	return colstore.Build("c", vals, withIndex)
}

func testTable(rows, cols int) *colstore.Table {
	columns := make([]*colstore.Column, cols)
	for j := range columns {
		columns[j] = testColumn(rows, int64(64+j), uint32(j+1), false)
	}
	for j := range columns {
		columns[j].Name = "COL" + string(rune('0'+j))
	}
	return colstore.NewTable("t", columns)
}

func TestPlaceColumnOnSocket(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	c := testColumn(50000, 1000, 1, true)
	p.PlaceColumnOnSocket(c, 2)
	if got := c.IVPSM.MajoritySocket(); got != 2 {
		t.Fatalf("IV on socket %d", got)
	}
	if got := c.DictPSM.MajoritySocket(); got != 2 {
		t.Fatalf("dict on socket %d", got)
	}
	if got := c.IXPSM.MajoritySocket(); got != 2 {
		t.Fatalf("IX on socket %d", got)
	}
	if c.NumPartitions() != 1 {
		t.Fatal("RR column should be unpartitioned")
	}
}

func TestPlaceRRRoundRobin(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	tbl := testTable(20000, 8)
	p.PlaceRR(tbl)
	for i, c := range tbl.Parts[0].Columns {
		if got := c.IVPSM.MajoritySocket(); got != i%4 {
			t.Fatalf("column %d on socket %d, want %d", i, got, i%4)
		}
	}
}

func TestPlaceIVPPartitionsIV(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	p := New(m)
	c := testColumn(200000, 100000, 3, true)
	p.PlaceIVP(c, []int{0, 1, 2, 3})
	if c.NumPartitions() != 4 {
		t.Fatalf("partitions = %d", c.NumPartitions())
	}
	// Each quarter of the IV should live on its socket.
	for i := 0; i < 4; i++ {
		from, to := c.PartitionBounds(i)
		mid := (from + to) / 2
		addr := c.IVRange.Start + memsim.Addr(c.IVOffsetForRow(mid))
		if got := c.IVPSM.LocationOf(addr); got != i {
			t.Fatalf("partition %d row %d resolves to socket %d", i, mid, got)
		}
	}
	// Dictionary and IX interleaved: pages spread across all sockets.
	dictSum := c.DictPSM.Summary()
	nonzero := 0
	for _, pages := range dictSum {
		if pages > 0 {
			nonzero++
		}
	}
	if nonzero != 4 {
		t.Fatalf("dictionary not interleaved across 4 sockets: %v", dictSum)
	}
}

func TestPlaceIVPSubsetOfSockets(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	c := testColumn(100000, 50000, 5, false)
	p.PlaceIVP(c, []int{1, 3})
	if c.NumPartitions() != 2 {
		t.Fatalf("partitions = %d", c.NumPartitions())
	}
	from, to := c.PartitionBounds(0)
	addr := c.IVRange.Start + memsim.Addr(c.IVOffsetForRow((from+to)/2))
	if got := c.IVPSM.LocationOf(addr); got != 1 {
		t.Fatalf("first part on %d, want 1", got)
	}
}

func TestPlaceTableIVPSpreadsStartSockets(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	tbl := testTable(40000, 4)
	p.PlaceTableIVP(tbl, 2)
	// Column i's first partition should be on socket i%4.
	for i, c := range tbl.Parts[0].Columns {
		from, to := c.PartitionBounds(0)
		addr := c.IVRange.Start + memsim.Addr(c.IVOffsetForRow((from+to)/2))
		if got := c.IVPSM.LocationOf(addr); got != i%4 {
			t.Fatalf("column %d first part on socket %d, want %d", i, got, i%4)
		}
	}
}

func TestPlacePP(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	tbl := testTable(40000, 2)
	pp := p.PlacePP(tbl, 4)
	if pp.NumParts() != 4 {
		t.Fatalf("parts = %d", pp.NumParts())
	}
	for i, part := range pp.Parts {
		if part.HomeSocket != i%4 {
			t.Fatalf("part %d home = %d", i, part.HomeSocket)
		}
		for _, c := range part.Columns {
			if got := c.IVPSM.MajoritySocket(); got != part.HomeSocket {
				t.Fatalf("part %d column IV on %d", i, got)
			}
			if got := c.DictPSM.MajoritySocket(); got != part.HomeSocket {
				t.Fatalf("part %d dict on %d (PP keeps dictionaries local)", i, got)
			}
		}
	}
}

func TestRepartitionIVPMovesOnlyDelta(t *testing.T) {
	p := New(topology.FourSocketIvyBridge())
	c := testColumn(200000, 100000, 7, false)
	p.PlaceIVP(c, []int{0, 1})
	moved := p.RepartitionIVP(c, []int{0, 1, 2, 3})
	if moved <= 0 {
		t.Fatal("repartition should move pages")
	}
	// Repartitioning to the same layout moves nothing further for the IV,
	// but the dictionary interleave is already in place too.
	again := p.RepartitionIVP(c, []int{0, 1, 2, 3})
	if again != 0 {
		t.Fatalf("idempotent repartition moved %d pages", again)
	}
}

func TestIVPCostMuchCheaperThanPP(t *testing.T) {
	tbl := testTable(100000, 8)
	ivp, pp := IVPCost(tbl), PPCost(tbl)
	if ivp <= 0 || pp <= 0 {
		t.Fatalf("costs: ivp=%v pp=%v", ivp, pp)
	}
	// Section 6.2.3: PP ~18 min vs IVP ~4 min, i.e. roughly 4-5x slower.
	if ratio := pp / ivp; ratio < 2 {
		t.Fatalf("PP/IVP cost ratio = %.2f, expected PP to be much slower", ratio)
	}
}

func TestPPMemoryOverhead(t *testing.T) {
	// Low-cardinality data: PP duplicates dictionary entries across parts.
	cols := []*colstore.Column{testColumn(100000, 5000, 9, false)}
	cols[0].Name = "COLX"
	tbl := colstore.NewTable("t", cols)
	base := tbl.TotalBytes()
	p := New(topology.FourSocketIvyBridge())
	pp := p.PlacePP(tbl, 4)
	if pp.TotalBytes() <= base {
		t.Fatalf("PP should consume more memory: %d vs %d", pp.TotalBytes(), base)
	}
}
