// Package colstore implements the main-memory column-store data structures
// of Section 4.1 of the paper: dictionary-encoded columns with a sorted
// dictionary, a bit-compressed indexvector (IV) of value identifiers (vids),
// and an optional inverted index (IX) mapping vids to IV positions. Scans
// and materialization are functionally real; their memory placement and
// timing are handled by the placement and core packages via simulated
// address ranges attached to each component.
package colstore

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"numacs/internal/delta"
	"numacs/internal/memsim"
	"numacs/internal/psm"
)

// ValueSize is the width of a materialized (decoded) value in bytes; the
// paper's workload uses integer columns.
const ValueSize = 8

// ExpectedDistinct returns the expected number of distinct values when
// drawing n uniform values from a domain of size d.
func ExpectedDistinct(n int, d int64) int {
	if d <= 0 {
		return 1
	}
	exp := float64(d) * (1 - math.Exp(-float64(n)/float64(d)))
	e := int(exp + 0.5)
	if e < 1 {
		e = 1
	}
	if e > n {
		e = n
	}
	return e
}

// NewSynthetic builds a column with realistic sizes (bit-packed IV, sized
// dictionary and optional index) but no data: rows uniform draws from
// [0, domain).
func NewSynthetic(name string, rows int, domain int64, withIndex bool) *Column {
	distinct := ExpectedDistinct(rows, domain)
	bc := uint(1)
	for (1 << bc) < distinct {
		bc++
	}
	c := &Column{
		Name:      name,
		Bitcase:   bc,
		Rows:      rows,
		IVec:      NewPackedVector(bc, rows),
		Dict:      make([]int64, distinct),
		Synthetic: true,
		Domain:    domain,
	}
	if withIndex {
		c.Idx = &Index{
			Offsets:  make([]uint32, distinct+1),
			Postings: make([]uint32, rows),
		}
	}
	return c
}

// Index is the optional inverted index of Figure 3: Offsets[vid] indexes
// into Postings, which holds the (sorted) IV positions of each vid.
type Index struct {
	Offsets  []uint32 // len = #vids + 1
	Postings []uint32 // len = #rows
}

// PositionsOf returns the IV positions holding the given vid.
func (ix *Index) PositionsOf(vid uint32) []uint32 {
	return ix.Postings[ix.Offsets[vid]:ix.Offsets[vid+1]]
}

// SizeBytes returns the memory footprint of the index.
func (ix *Index) SizeBytes() int64 {
	return int64(len(ix.Offsets)+len(ix.Postings)) * 4
}

// Component identifies one of the three data structures of a column.
type Component int

const (
	// IV is the bit-compressed indexvector of value ids.
	IV Component = iota
	// Dict is the sorted dictionary mapping vids to values.
	Dict
	// IX is the optional inverted index mapping vids to IV positions.
	IX
)

// String returns the paper's name for the component.
func (c Component) String() string {
	switch c {
	case IV:
		return "IV"
	case Dict:
		return "dict"
	case IX:
		return "IX"
	default:
		return fmt.Sprintf("component(%d)", int(c))
	}
}

// Column is a dictionary-encoded column (Figure 3). The simulated address
// ranges (IVRange etc.) and PSMs are populated when the column is placed by
// the placement package; scheduling consults the PSMs to define task
// affinities (Section 5.2).
type Column struct {
	Name    string
	Bitcase uint

	Rows int
	IVec *PackedVector
	Dict []int64
	Idx  *Index

	// Synthetic marks a column whose structures are correctly sized but hold
	// no data (the simulation harness uses analytic match counts, so the
	// values are never read). Domain is the generator's value domain, needed
	// to size per-part dictionaries when physically partitioning.
	Synthetic bool
	Domain    int64

	// Simulated placement metadata.
	IVRange   memsim.Range
	DictRange memsim.Range
	IXRange   memsim.Range
	IVPSM     *psm.PSM
	DictPSM   *psm.PSM
	IXPSM     *psm.PSM

	// Partitions covers the IV row space when the column is IVP-partitioned;
	// empty means a single part. Entries are row offsets: partition i spans
	// rows [Partitions[i], Partitions[i+1]).
	Partitions []int

	// ReplicaSockets lists the sockets holding a full replica of the column
	// (IV + dictionary + IX). Replication is the "other data placement" of
	// Section 4.2: it trades memory for the freedom to scan on any of the
	// replica sockets. Empty means unreplicated; when set, the primary copy
	// described by the ranges above lives on ReplicaSockets[0].
	ReplicaSockets []int

	// Replicas records the allocation metadata of every replica beyond the
	// primary copy (one entry per ReplicaSockets[1:] socket, in order), so
	// the adaptive placer can account replica memory against its budget and
	// tear stale replicas down again (Section 7's adaptive design applied to
	// the replication placement of Section 4.2).
	Replicas []Replica

	// Delta is the column's write-side delta store (per-socket uncompressed
	// fragments; see package delta). It is nil until the first write — the
	// read-only scan paths are untouched, byte for byte, for columns that
	// were never written. Scans union the main with the delta rows visible
	// at plan time; placement.MergeDelta folds the delta back into a rebuilt
	// main.
	Delta *delta.Delta
}

// Replica is the placement record of one extra replica of a column: the
// socket it lives on and the simulated address ranges of its components.
// It exists so replicas allocated by the adaptive placer can be freed when
// their traffic decays (replica teardown).
type Replica struct {
	Socket    int
	IVRange   memsim.Range
	DictRange memsim.Range
	IXRange   memsim.Range
}

// Bytes returns the page-granular simulated memory footprint of the replica.
func (r Replica) Bytes() int64 {
	b := (r.IVRange.Pages() + r.DictRange.Pages() + r.IXRange.Pages()) * memsim.PageSize
	return b
}

// ExtraReplicaBytes returns the page-granular bytes consumed by the column's
// replicas beyond the primary copy — the quantity the adaptive placer's
// replica budget (Section 7) caps.
func (c *Column) ExtraReplicaBytes() int64 {
	var b int64
	for _, r := range c.Replicas {
		b += r.Bytes()
	}
	return b
}

// Replicated reports whether the column has replicas. Replica selection for
// accesses lives in the exec layer (exec.BestReplica), which weighs access
// latency against current memory-controller load.
func (c *Column) Replicated() bool { return len(c.ReplicaSockets) > 1 }

// Build dictionary-encodes values into a column. When withIndex is set, the
// inverted index is built as well. The bitcase is the minimum width that
// fits the dictionary size, matching the paper's bit-compression.
func Build(name string, values []int64, withIndex bool) *Column {
	if len(values) == 0 {
		panic("colstore: empty column")
	}
	// Sort distinct values -> dictionary.
	dict := make([]int64, len(values))
	copy(dict, values)
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	w := 0
	for i := 1; i < len(dict); i++ {
		if dict[i] != dict[w] {
			w++
			dict[w] = dict[i]
		}
	}
	dict = dict[:w+1]

	bitcase := uint(bits.Len(uint(len(dict) - 1)))
	if bitcase == 0 {
		bitcase = 1
	}
	iv := NewPackedVector(bitcase, len(values))
	for i, v := range values {
		vid := sort.Search(len(dict), func(j int) bool { return dict[j] >= v })
		iv.Set(i, uint32(vid))
	}
	c := &Column{
		Name:    name,
		Bitcase: bitcase,
		Rows:    len(values),
		IVec:    iv,
		Dict:    dict,
	}
	if withIndex {
		c.BuildIndex()
	}
	return c
}

// BuildIndex constructs the inverted index from the IV. Both passes (the
// vid histogram and the postings fill) decode the IV one batch at a time
// instead of one Get per row.
func (c *Column) BuildIndex() {
	var codes [BatchSize]uint32
	counts := make([]uint32, len(c.Dict)+1)
	for base := 0; base < c.Rows; base += BatchSize {
		n := c.Rows - base
		if n > BatchSize {
			n = BatchSize
		}
		c.IVec.UnpackBatch(base, codes[:n])
		for _, vid := range codes[:n] {
			counts[vid+1]++
		}
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	offsets := make([]uint32, len(counts))
	copy(offsets, counts)
	postings := make([]uint32, c.Rows)
	next := make([]uint32, len(c.Dict))
	copy(next, offsets[:len(c.Dict)])
	for base := 0; base < c.Rows; base += BatchSize {
		n := c.Rows - base
		if n > BatchSize {
			n = BatchSize
		}
		c.IVec.UnpackBatch(base, codes[:n])
		for i, vid := range codes[:n] {
			postings[next[vid]] = uint32(base + i)
			next[vid]++
		}
	}
	c.Idx = &Index{Offsets: offsets, Postings: postings}
}

// NumDistinct returns the dictionary size.
func (c *Column) NumDistinct() int { return len(c.Dict) }

// IVBytes returns the packed size of the indexvector.
func (c *Column) IVBytes() int64 { return c.IVec.SizeBytes() }

// DictBytes returns the dictionary size in bytes.
func (c *Column) DictBytes() int64 { return int64(len(c.Dict)) * ValueSize }

// TotalBytes returns the full footprint (IV + dict + IX).
func (c *Column) TotalBytes() int64 {
	t := c.IVBytes() + c.DictBytes()
	if c.Idx != nil {
		t += c.Idx.SizeBytes()
	}
	return t
}

// EncodePredicate translates a value-range predicate [loVal, hiVal] into a
// vid range [loVid, hiVid] via binary search on the dictionary (the
// predicate-encoding step of Section 5.2). ok is false when no dictionary
// value falls in the range.
func (c *Column) EncodePredicate(loVal, hiVal int64) (loVid, hiVid uint32, ok bool) {
	lo := sort.Search(len(c.Dict), func(i int) bool { return c.Dict[i] >= loVal })
	hi := sort.Search(len(c.Dict), func(i int) bool { return c.Dict[i] > hiVal })
	if lo >= hi {
		return 0, 0, false
	}
	return uint32(lo), uint32(hi - 1), true
}

// Value returns the decoded value at a row (for verification).
func (c *Column) Value(row int) int64 { return c.Dict[c.IVec.Get(row)] }

// ScanPositions scans rows [from, to) for vids in [loVid, hiVid] and appends
// matching positions to out (the low-selectivity result format).
func (c *Column) ScanPositions(loVid, hiVid uint32, from, to int, out []uint32) []uint32 {
	return c.IVec.ScanRange(loVid, hiVid, from, to, out)
}

// IndexLookupPositions collects, via the index, all IV positions holding
// vids in [loVid, hiVid]. Positions are returned in vid-major order, the
// natural output order of index lookups (Section 5.2).
func (c *Column) IndexLookupPositions(loVid, hiVid uint32, out []uint32) []uint32 {
	if c.Idx == nil {
		panic(fmt.Sprintf("colstore: column %s has no index", c.Name))
	}
	for vid := loVid; vid <= hiVid; vid++ {
		out = append(out, c.Idx.PositionsOf(vid)...)
	}
	return out
}

// Materialize decodes the values at the given IV positions into out
// (dictionary random accesses; the output-materialization phase of Section
// 5.2). out must have len(positions) capacity. Dense ascending runs — the
// common case, since find-phase position lists come out sorted — are decoded
// with one batch unpack of the covering row window and a gather over the
// decoded codes; sparse or unsorted stretches (index lookups emit vid-major
// order) fall back to per-row decode, where batching would stream more codes
// than it saves.
func (c *Column) Materialize(positions []uint32, out []int64) {
	var codes [BatchSize]uint32
	n := len(positions)
	i := 0
	for i < n {
		// Extend a strictly-ascending run whose window fits one batch.
		first := positions[i]
		j := i + 1
		for j < n && positions[j] > positions[j-1] && positions[j]-first < BatchSize {
			j++
		}
		count := j - i
		window := int(positions[j-1]-first) + 1
		if count >= 16 && count*2 >= window {
			c.IVec.UnpackBatch(int(first), codes[:window])
			for k := i; k < j; k++ {
				out[k] = c.Dict[codes[positions[k]-first]]
			}
		} else {
			for k := i; k < j; k++ {
				out[k] = c.Dict[c.IVec.Get(int(positions[k]))]
			}
		}
		i = j
	}
}

// materializeScalar is the retained scalar reference for Materialize.
func (c *Column) materializeScalar(positions []uint32, out []int64) {
	for i, p := range positions {
		out[i] = c.Dict[c.IVec.Get(int(p))]
	}
}

// MaterializeRange decodes the values of rows [from, to) into out — the
// contiguous bulk-decode used by delta merges and snapshot materialization:
// one batch unpack per BatchSize rows plus a dictionary gather, instead of a
// per-row IV probe. out must have to-from capacity.
func (c *Column) MaterializeRange(from, to int, out []int64) {
	var codes [BatchSize]uint32
	for base := from; base < to; base += BatchSize {
		n := to - base
		if n > BatchSize {
			n = BatchSize
		}
		c.IVec.UnpackBatch(base, codes[:n])
		o := out[base-from:]
		for i, vid := range codes[:n] {
			o[i] = c.Dict[vid]
		}
	}
}

// IVBytesForRows returns the packed IV bytes covering rows [from, to),
// rounded outward to byte boundaries — the bytes a scan task actually
// streams.
func (c *Column) IVBytesForRows(from, to int) int64 {
	startBit := uint64(from) * uint64(c.Bitcase)
	endBit := uint64(to) * uint64(c.Bitcase)
	return int64((endBit+7)/8 - startBit/8)
}

// IVOffsetForRow returns the byte offset within the IV of the word holding
// the given row, used to locate scan ranges within the IV's address range.
func (c *Column) IVOffsetForRow(row int) int64 {
	return int64(uint64(row) * uint64(c.Bitcase) / 8)
}

// DeltaRows returns the committed delta rows of the column (0 when the
// column was never written).
func (c *Column) DeltaRows() int {
	if c.Delta == nil {
		return 0
	}
	return c.Delta.Rows()
}

// DeltaBytes returns the committed simulated footprint of the column's delta
// (0 when the column was never written) — the quantity the adaptive placer's
// merge threshold compares against IVBytes.
func (c *Column) DeltaBytes() int64 {
	if c.Delta == nil {
		return 0
	}
	return c.Delta.SizeBytes()
}

// VisibleRows returns the logical row count a scan sees: main rows plus the
// committed delta inserts (updates rewrite existing rows and do not add).
func (c *Column) VisibleRows() int {
	if c.Delta == nil {
		return c.Rows
	}
	return c.Rows + c.Delta.InsertRows()
}

// ValueWithDelta returns the current value of a main row: the latest visible
// delta update when one exists, the main's value otherwise. This is the
// point-lookup form; bulk consumers use ValuesWithDelta, which decodes the
// main store one batch at a time and touches the delta once instead of once
// per row.
func (c *Column) ValueWithDelta(row int) int64 {
	if c.Delta != nil {
		if v, ok := c.Delta.LatestUpdate(row); ok {
			return v
		}
	}
	return c.Value(row)
}

// ValuesWithDelta decodes the current values of main rows [from, to) into
// out: the main store portion is batch-decoded (one unpack per BatchSize
// rows), and the delta's latest visible updates are overlaid only on the
// rows that actually have one — rows with no overlay never pay a per-row
// delta probe or a per-row IV decode. out must have to-from capacity.
func (c *Column) ValuesWithDelta(from, to int, out []int64) {
	c.MaterializeRange(from, to, out)
	if c.Delta == nil {
		return
	}
	for row, u := range c.Delta.UpdatesIn(c.Delta.Snapshot()) {
		if row >= from && row < to {
			out[row-from] = u
		}
	}
}

// CountMatchesWithDelta counts the visible rows whose current value falls in
// [loVal, hiVal]: main rows with their latest update applied, plus visible
// delta inserts. This is the functional union-scan kernel the examples and
// tests verify the merge against (the harness uses analytic counts instead).
func (c *Column) CountMatchesWithDelta(loVal, hiVal int64) int {
	// Main store: encode the value predicate to a vid window once and run
	// the batched compare-on-codes counting kernel — no per-row dictionary
	// decode. Rows with a visible update are then corrected individually:
	// their main contribution is retracted and the update's value counted
	// instead.
	var updates map[int]int64
	if c.Delta != nil {
		updates = c.Delta.UpdatesIn(c.Delta.Snapshot())
	}
	n := 0
	loVid, hiVid, ok := c.EncodePredicate(loVal, hiVal)
	if ok {
		n = c.IVec.CountRange(loVid, hiVid, 0, c.Rows)
	}
	for row, u := range updates {
		if row >= c.Rows {
			continue
		}
		if ok {
			if v := c.Value(row); v >= loVal && v <= hiVal {
				n--
			}
		}
		if u >= loVal && u <= hiVal {
			n++
		}
	}
	if c.Delta != nil {
		for _, v := range c.Delta.AppendVisibleInserts(nil) {
			if v >= loVal && v <= hiVal {
				n++
			}
		}
	}
	return n
}

// countMatchesWithDeltaScalar is the retained scalar reference for
// CountMatchesWithDelta: per-row decode with the update overlay applied
// inline.
func (c *Column) countMatchesWithDeltaScalar(loVal, hiVal int64) int {
	var updates map[int]int64
	if c.Delta != nil {
		updates = c.Delta.UpdatesIn(c.Delta.Snapshot())
	}
	n := 0
	for row := 0; row < c.Rows; row++ {
		v := c.Value(row)
		if u, ok := updates[row]; ok {
			v = u
		}
		if v >= loVal && v <= hiVal {
			n++
		}
	}
	if c.Delta != nil {
		for _, v := range c.Delta.AppendVisibleInserts(nil) {
			if v >= loVal && v <= hiVal {
				n++
			}
		}
	}
	return n
}

// MergedValuesAt materializes the column's contents as of a delta snapshot:
// every main row with its latest snapshot-visible update applied, followed
// by the snapshot-visible inserted values in deterministic socket-major
// order. Rows appended after the snapshot are excluded — they stay in the
// delta when a merge folds the snapshot. Only valid for real (non-synthetic)
// columns.
func (c *Column) MergedValuesAt(snap delta.Snapshot) []int64 {
	if c.Synthetic {
		panic("colstore: MergedValuesAt on a synthetic column")
	}
	// Main store: one batched decode of the whole row range, then the
	// snapshot's updates overlaid only on the rows that have one — the rows
	// without an overlay (almost all of them) never pay a per-row IV probe
	// or map lookup.
	out := make([]int64, c.Rows, c.Rows+snap.TotalInserts())
	c.MaterializeRange(0, c.Rows, out)
	if c.Delta != nil {
		for row, u := range c.Delta.UpdatesIn(snap) {
			if row < c.Rows {
				out[row] = u
			}
		}
		out = c.Delta.AppendInsertsIn(snap, out)
	}
	return out
}

// mergedValuesAtScalar is the retained scalar reference for MergedValuesAt.
func (c *Column) mergedValuesAtScalar(snap delta.Snapshot) []int64 {
	var updates map[int]int64
	if c.Delta != nil {
		updates = c.Delta.UpdatesIn(snap)
	}
	out := make([]int64, 0, c.Rows+snap.TotalInserts())
	for row := 0; row < c.Rows; row++ {
		v := c.Value(row)
		if u, ok := updates[row]; ok {
			v = u
		}
		out = append(out, v)
	}
	if c.Delta != nil {
		out = c.Delta.AppendInsertsIn(snap, out)
	}
	return out
}

// MergedValues is MergedValuesAt of the current visibility watermark.
func (c *Column) MergedValues() []int64 {
	if c.Delta == nil {
		return c.MergedValuesAt(delta.Snapshot{})
	}
	return c.MergedValuesAt(c.Delta.Snapshot())
}

// Reencode rebuilds the column's dictionary-encoded main in place from the
// given values — the re-encode half of a delta merge: new sorted dictionary,
// minimal bitcase, re-packed IV, and a rebuilt index when the column had
// one. Placement metadata (ranges, PSMs, partitions) is NOT touched; the
// caller (placement.MergeDelta) re-places the rebuilt structures.
func (c *Column) Reencode(values []int64) {
	if len(values) == 0 {
		panic("colstore: Reencode with no values")
	}
	nc := Build(c.Name, values, c.Idx != nil)
	c.Bitcase = nc.Bitcase
	c.Rows = nc.Rows
	c.IVec = nc.IVec
	c.Dict = nc.Dict
	c.Idx = nc.Idx
}

// ResizeSynthetic rebuilds a synthetic column's correctly-sized (but empty)
// structures for a new row count — the synthetic analogue of Reencode used
// when a delta merge grows the main. The value domain is unchanged, so the
// expected distinct count and bitcase follow the generator's analytics.
func (c *Column) ResizeSynthetic(rows int) {
	if !c.Synthetic {
		panic("colstore: ResizeSynthetic on a real column")
	}
	nc := NewSynthetic(c.Name, rows, c.Domain, c.Idx != nil)
	c.Bitcase = nc.Bitcase
	c.Rows = nc.Rows
	c.IVec = nc.IVec
	c.Dict = nc.Dict
	c.Idx = nc.Idx
}

// PartitionOf returns the index of the IVP partition containing the row, or
// 0 when the column is unpartitioned.
func (c *Column) PartitionOf(row int) int {
	if len(c.Partitions) == 0 {
		return 0
	}
	i := sort.Search(len(c.Partitions), func(i int) bool { return c.Partitions[i] > row })
	return i - 1
}

// NumPartitions returns the number of IVP partitions (1 when unpartitioned).
func (c *Column) NumPartitions() int {
	if len(c.Partitions) == 0 {
		return 1
	}
	return len(c.Partitions) - 1
}

// PartitionBounds returns the row range of IVP partition i.
func (c *Column) PartitionBounds(i int) (from, to int) {
	if len(c.Partitions) == 0 {
		if i != 0 {
			panic("colstore: column has a single partition")
		}
		return 0, c.Rows
	}
	return c.Partitions[i], c.Partitions[i+1]
}
