package colstore

import "fmt"

// PackedVector is a bit-compressed integer vector: n values stored with a
// fixed number of bits each ("bitcase" in the paper), packed contiguously
// into 64-bit words. It is the in-memory format of the indexvector, matching
// the SIMD-scannable layout of Willhalm et al. [33]; the Go scan kernels in
// scan.go operate on whole words the way the SSE kernels operate on vector
// registers.
type PackedVector struct {
	bits  uint // bits per value, 1..32
	n     int
	words []uint64
}

// NewPackedVector creates a vector of n values of the given width.
func NewPackedVector(bits uint, n int) *PackedVector {
	if bits < 1 || bits > 32 {
		panic(fmt.Sprintf("colstore: bitcase %d out of range [1,32]", bits))
	}
	words := (uint64(n)*uint64(bits) + 63) / 64
	return &PackedVector{bits: bits, n: n, words: make([]uint64, words)}
}

// PackValues builds a packed vector from a slice of values.
func PackValues(bits uint, values []uint32) *PackedVector {
	v := NewPackedVector(bits, len(values))
	for i, x := range values {
		v.Set(i, x)
	}
	return v
}

// Bits returns the bitcase.
func (v *PackedVector) Bits() uint { return v.bits }

// Len returns the number of values.
func (v *PackedVector) Len() int { return v.n }

// SizeBytes returns the packed size in bytes.
func (v *PackedVector) SizeBytes() int64 { return int64(len(v.words)) * 8 }

// Set stores a value at position i. The value must fit in the bitcase.
func (v *PackedVector) Set(i int, x uint32) {
	if uint64(x) >= 1<<v.bits {
		panic(fmt.Sprintf("colstore: value %d does not fit in %d bits", x, v.bits))
	}
	bitPos := uint64(i) * uint64(v.bits)
	word := bitPos / 64
	off := bitPos % 64
	mask := uint64(1)<<v.bits - 1
	v.words[word] = v.words[word]&^(mask<<off) | uint64(x)<<off
	if off+uint64(v.bits) > 64 {
		spill := off + uint64(v.bits) - 64
		hiMask := uint64(1)<<spill - 1
		v.words[word+1] = v.words[word+1]&^hiMask | uint64(x)>>(uint64(v.bits)-spill)
	}
}

// Get loads the value at position i.
func (v *PackedVector) Get(i int) uint32 {
	bitPos := uint64(i) * uint64(v.bits)
	word := bitPos / 64
	off := bitPos % 64
	mask := uint64(1)<<v.bits - 1
	x := v.words[word] >> off
	if off+uint64(v.bits) > 64 {
		x |= v.words[word+1] << (64 - off)
	}
	return uint32(x & mask)
}

// ScanRange appends to out the positions in [from, to) whose value lies in
// [lo, hi], the core predicate kernel of the paper's scans. It processes the
// packed words directly rather than calling Get per element.
func (v *PackedVector) ScanRange(lo, hi uint32, from, to int, out []uint32) []uint32 {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("colstore: scan range [%d,%d) out of [0,%d)", from, to, v.n))
	}
	if lo > hi {
		return out
	}
	bits := uint64(v.bits)
	mask := uint64(1)<<bits - 1
	bitPos := uint64(from) * bits
	for i := from; i < to; i++ {
		word := bitPos / 64
		off := bitPos % 64
		x := v.words[word] >> off
		if off+bits > 64 {
			x |= v.words[word+1] << (64 - off)
		}
		val := uint32(x & mask)
		if val >= lo && val <= hi {
			out = append(out, uint32(i))
		}
		bitPos += bits
	}
	return out
}

// ScanRangeBitvector sets a bit in dst for every position in [from, to)
// whose value lies in [lo, hi]. dst must have at least (v.Len()+63)/64
// words. Returns the number of matches. This is the high-selectivity result
// format of Section 5.2.
func (v *PackedVector) ScanRangeBitvector(lo, hi uint32, from, to int, dst []uint64) int {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("colstore: scan range [%d,%d) out of [0,%d)", from, to, v.n))
	}
	if lo > hi {
		return 0
	}
	bits := uint64(v.bits)
	mask := uint64(1)<<bits - 1
	bitPos := uint64(from) * bits
	matches := 0
	for i := from; i < to; i++ {
		word := bitPos / 64
		off := bitPos % 64
		x := v.words[word] >> off
		if off+bits > 64 {
			x |= v.words[word+1] << (64 - off)
		}
		val := uint32(x & mask)
		if val >= lo && val <= hi {
			dst[i/64] |= 1 << (uint(i) % 64)
			matches++
		}
		bitPos += bits
	}
	return matches
}

// CountRange returns how many positions in [from, to) hold values in
// [lo, hi] without materializing them.
func (v *PackedVector) CountRange(lo, hi uint32, from, to int) int {
	if lo > hi {
		return 0
	}
	bits := uint64(v.bits)
	mask := uint64(1)<<bits - 1
	bitPos := uint64(from) * bits
	n := 0
	for i := from; i < to; i++ {
		word := bitPos / 64
		off := bitPos % 64
		x := v.words[word] >> off
		if off+bits > 64 {
			x |= v.words[word+1] << (64 - off)
		}
		val := uint32(x & mask)
		if val >= lo && val <= hi {
			n++
		}
		bitPos += bits
	}
	return n
}
