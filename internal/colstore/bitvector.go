package colstore

import (
	"fmt"
	"math/bits"
)

// PackedVector is a bit-compressed integer vector: n values stored with a
// fixed number of bits each ("bitcase" in the paper), packed contiguously
// into 64-bit words. It is the in-memory format of the indexvector, matching
// the SIMD-scannable layout of Willhalm et al. [33]; the Go scan kernels in
// scan.go operate on whole words the way the SSE kernels operate on vector
// registers.
type PackedVector struct {
	bits  uint // bits per value, 1..32
	n     int
	words []uint64
}

// NewPackedVector creates a vector of n values of the given width. The
// backing array carries one padding word beyond the packed data so the batch
// kernels' two-word window load (Get64) never needs a boundary test; the
// padding is an implementation detail and is excluded from SizeBytes.
func NewPackedVector(bits uint, n int) *PackedVector {
	if bits < 1 || bits > 32 {
		panic(fmt.Sprintf("colstore: bitcase %d out of range [1,32]", bits))
	}
	words := (uint64(n)*uint64(bits) + 63) / 64
	return &PackedVector{bits: bits, n: n, words: make([]uint64, words+1)}
}

// PackValues builds a packed vector from a slice of values.
func PackValues(bits uint, values []uint32) *PackedVector {
	v := NewPackedVector(bits, len(values))
	for i, x := range values {
		v.Set(i, x)
	}
	return v
}

// Bits returns the bitcase.
func (v *PackedVector) Bits() uint { return v.bits }

// Len returns the number of values.
func (v *PackedVector) Len() int { return v.n }

// SizeBytes returns the packed size in bytes (whole words, excluding the
// kernel padding word).
func (v *PackedVector) SizeBytes() int64 {
	return int64((uint64(v.n)*uint64(v.bits) + 63) / 64 * 8)
}

// Set stores a value at position i. The value must fit in the bitcase.
func (v *PackedVector) Set(i int, x uint32) {
	if uint64(x) >= 1<<v.bits {
		panic(fmt.Sprintf("colstore: value %d does not fit in %d bits", x, v.bits))
	}
	bitPos := uint64(i) * uint64(v.bits)
	word := bitPos / 64
	off := bitPos % 64
	mask := uint64(1)<<v.bits - 1
	v.words[word] = v.words[word]&^(mask<<off) | uint64(x)<<off
	if off+uint64(v.bits) > 64 {
		spill := off + uint64(v.bits) - 64
		hiMask := uint64(1)<<spill - 1
		v.words[word+1] = v.words[word+1]&^hiMask | uint64(x)>>(uint64(v.bits)-spill)
	}
}

// Get loads the value at position i.
func (v *PackedVector) Get(i int) uint32 {
	bitPos := uint64(i) * uint64(v.bits)
	word := bitPos / 64
	off := bitPos % 64
	mask := uint64(1)<<v.bits - 1
	x := v.words[word] >> off
	if off+uint64(v.bits) > 64 {
		x |= v.words[word+1] << (64 - off)
	}
	return uint32(x & mask)
}

// ScanRange appends to out the positions in [from, to) whose value lies in
// [lo, hi], the core predicate kernel of the paper's scans. It runs the
// word-parallel batch kernel: every 64-bit window (Get64) holds k complete
// codes, and the packed-field carry trick (rangePlan) tests all of them with
// two adds per half-window — the codes are never decoded, matching the
// SIMD-register comparisons of Willhalm et al. [33]. Matching positions come
// out in ascending order. scanRangeScalar is the retained scalar reference
// the differential tests pin this against.
func (v *PackedVector) ScanRange(lo, hi uint32, from, to int, out []uint32) []uint32 {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("colstore: scan range [%d,%d) out of [0,%d)", from, to, v.n))
	}
	if lo > hi {
		return out
	}
	b := uint64(v.bits)
	p := newFieldPlan(v.bits)
	addLo, addHi := rangeAddends(v.bits, lo, hi)
	maskE, maskO, carE, carO := p.maskE, p.maskO, p.carE, p.carO
	base := from
	bitPos := uint64(from) * b
	// Two windows per iteration: the two mask computations carry no
	// dependency on each other, so they pipeline; narrow odd bitcases (few
	// codes per window) gain the most from the halved loop overhead.
	for base+2*p.k <= to {
		w1 := v.Get64(bitPos)
		w2 := v.Get64(bitPos + p.step)
		we1, wo1 := w1&maskE, w1>>b&maskO
		we2, wo2 := w2&maskE, w2>>b&maskO
		mk1 := matchMask((we1+addLo)&^(we1+addHi)&carE, (wo1+addLo)&^(wo1+addHi)&carO)
		mk2 := matchMask((we2+addLo)&^(we2+addHi)&carE, (wo2+addLo)&^(wo2+addHi)&carO)
		// The combined match masks drain in ascending position order with
		// one branch-free bit-clear per match (see matchMask).
		for ; mk1 != 0; mk1 &= mk1 - 1 {
			out = append(out, uint32(base)+uint32(p.fld[bits.TrailingZeros64(mk1)]))
		}
		for ; mk2 != 0; mk2 &= mk2 - 1 {
			out = append(out, uint32(base+p.k)+uint32(p.fld[bits.TrailingZeros64(mk2)]))
		}
		base += 2 * p.k
		bitPos += 2 * p.step
	}
	for base+p.k <= to {
		w := v.Get64(bitPos)
		we, wo := w&maskE, w>>b&maskO
		for mk := matchMask((we+addLo)&^(we+addHi)&carE, (wo+addLo)&^(wo+addHi)&carO); mk != 0; mk &= mk - 1 {
			out = append(out, uint32(base)+uint32(p.fld[bits.TrailingZeros64(mk)]))
		}
		base += p.k
		bitPos += p.step
	}
	for i := base; i < to; i++ {
		if v.Get(i)-lo <= hi-lo {
			out = append(out, uint32(i))
		}
	}
	return out
}

// scanRangeScalar is the pre-batching scalar kernel (one Get-style decode
// per row), kept as the differential-test reference for ScanRange.
func (v *PackedVector) scanRangeScalar(lo, hi uint32, from, to int, out []uint32) []uint32 {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("colstore: scan range [%d,%d) out of [0,%d)", from, to, v.n))
	}
	if lo > hi {
		return out
	}
	bits := uint64(v.bits)
	mask := uint64(1)<<bits - 1
	bitPos := uint64(from) * bits
	for i := from; i < to; i++ {
		word := bitPos / 64
		off := bitPos % 64
		x := v.words[word] >> off
		if off+bits > 64 {
			x |= v.words[word+1] << (64 - off)
		}
		val := uint32(x & mask)
		if val >= lo && val <= hi {
			out = append(out, uint32(i))
		}
		bitPos += bits
	}
	return out
}

// ScanRangeBitvector sets a bit in dst for every position in [from, to)
// whose value lies in [lo, hi]. dst must have at least (v.Len()+63)/64
// words. Returns the number of matches. This is the high-selectivity result
// format of Section 5.2.
func (v *PackedVector) ScanRangeBitvector(lo, hi uint32, from, to int, dst []uint64) int {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("colstore: scan range [%d,%d) out of [0,%d)", from, to, v.n))
	}
	if lo > hi {
		return 0
	}
	b := uint64(v.bits)
	p := newFieldPlan(v.bits)
	addLo, addHi := rangeAddends(v.bits, lo, hi)
	matches := 0
	base := from
	bitPos := uint64(from) * b
	for base+p.k <= to {
		w := v.Get64(bitPos)
		me, mo := p.rangeMasks(w&p.maskE, w>>b&p.maskO, addLo, addHi)
		for mk := matchMask(me, mo); mk != 0; mk &= mk - 1 {
			pos := uint(base) + uint(p.fld[bits.TrailingZeros64(mk)])
			dst[pos/64] |= 1 << (pos % 64)
			matches++
		}
		base += p.k
		bitPos += p.step
	}
	for i := base; i < to; i++ {
		if v.Get(i)-lo <= hi-lo {
			dst[i/64] |= 1 << (uint(i) % 64)
			matches++
		}
	}
	return matches
}

// scanRangeBitvectorScalar is the retained scalar reference for
// ScanRangeBitvector.
func (v *PackedVector) scanRangeBitvectorScalar(lo, hi uint32, from, to int, dst []uint64) int {
	if lo > hi {
		return 0
	}
	matches := 0
	for i := from; i < to; i++ {
		if val := v.Get(i); val >= lo && val <= hi {
			dst[i/64] |= 1 << (uint(i) % 64)
			matches++
		}
	}
	return matches
}

// CountRange returns how many positions in [from, to) hold values in
// [lo, hi] without materializing them. It runs the word-parallel kernel and
// reduces each window's carry masks with a popcount — no decode, no
// selection vector, no branches in the hot loop.
func (v *PackedVector) CountRange(lo, hi uint32, from, to int) int {
	if lo > hi || from >= to {
		return 0
	}
	b := uint64(v.bits)
	p := newFieldPlan(v.bits)
	addLo, addHi := rangeAddends(v.bits, lo, hi)
	cnt := 0
	base := from
	bitPos := uint64(from) * b
	for base+p.k <= to {
		w := v.Get64(bitPos)
		me, mo := p.rangeMasks(w&p.maskE, w>>b&p.maskO, addLo, addHi)
		cnt += bits.OnesCount64(me) + bits.OnesCount64(mo)
		base += p.k
		bitPos += p.step
	}
	span := uint64(hi - lo)
	for i := base; i < to; i++ {
		cnt += int((uint64(v.Get(i)-lo) - span - 1) >> 63)
	}
	return cnt
}

// countRangeScalar is the retained scalar reference for CountRange.
func (v *PackedVector) countRangeScalar(lo, hi uint32, from, to int) int {
	if lo > hi {
		return 0
	}
	n := 0
	for i := from; i < to; i++ {
		if val := v.Get(i); val >= lo && val <= hi {
			n++
		}
	}
	return n
}
