package colstore

import (
	"testing"
	"testing/quick"
)

func TestVidSetBasics(t *testing.T) {
	s := NewVidSet(200)
	if s.Contains(5) || s.Len() != 0 {
		t.Fatal("fresh set not empty")
	}
	s.Add(5)
	s.Add(130)
	s.Add(5) // duplicate
	if !s.Contains(5) || !s.Contains(130) || s.Contains(6) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Contains(100000) {
		t.Fatal("out-of-range vid reported present")
	}
}

func TestEncodeInList(t *testing.T) {
	c := Build("c", []int64{10, 20, 30, 40, 20, 10}, false)
	s := c.EncodeInList([]int64{20, 40, 99})
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2 (99 absent)", s.Len())
	}
	lo20, _, _ := c.EncodePredicate(20, 20)
	lo40, _, _ := c.EncodePredicate(40, 40)
	if !s.Contains(lo20) || !s.Contains(lo40) {
		t.Fatal("encoded vids missing")
	}
}

func TestScanInListMatchesNaive(t *testing.T) {
	vals := testValues(3000, 500, 21)
	c := Build("c", vals, false)
	inList := []int64{3, 77, 123, 444, 499}
	set := c.EncodeInList(inList)
	got := c.ScanInListPositions(set, 0, c.Rows, nil)
	want := map[int64]bool{}
	for _, v := range inList {
		want[v] = true
	}
	naive := 0
	for i, v := range vals {
		if want[v] {
			if naive >= len(got) || got[naive] != uint32(i) {
				t.Fatalf("mismatch at match %d (row %d)", naive, i)
			}
			naive++
		}
	}
	if naive != len(got) {
		t.Fatalf("found %d, want %d", len(got), naive)
	}
}

func TestScanInListSubrange(t *testing.T) {
	c := Build("c", []int64{1, 2, 3, 1, 2, 3, 1, 2, 3}, false)
	set := c.EncodeInList([]int64{2})
	got := c.ScanInListPositions(set, 2, 7, nil)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("got %v, want [4]", got)
	}
}

// Property: an IN-list scan equals the union of single-value range scans.
func TestScanInListUnionProperty(t *testing.T) {
	f := func(seed uint32, pick [4]uint8) bool {
		vals := testValues(600, 60, seed|1)
		c := Build("c", vals, false)
		var list []int64
		for _, p := range pick {
			list = append(list, int64(p%60))
		}
		set := c.EncodeInList(list)
		got := c.ScanInListPositions(set, 0, c.Rows, nil)

		seen := map[uint32]bool{}
		for _, v := range list {
			if lo, hi, ok := c.EncodePredicate(v, v); ok {
				for _, pos := range c.ScanPositions(lo, hi, 0, c.Rows, nil) {
					seen[pos] = true
				}
			}
		}
		if len(seen) != len(got) {
			return false
		}
		for _, pos := range got {
			if !seen[pos] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
