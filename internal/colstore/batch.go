package colstore

import (
	"fmt"
	mbits "math/bits"
)

// BatchSize is the fixed number of codes a decoding batch kernel unpacks per
// step — the vectorization unit of the chunk hot path. The decode-based loops
// in the package (in-list scans, materialization, index and RLE builds,
// delta-union materialization) process the indexvector one BatchSize batch at
// a time: a word-at-a-time unpack into a stack-resident code buffer, then
// flat kernels over the decoded codes. The range-predicate scans go one step
// further and never decode at all (see rangePlan). 1024 is a multiple of 64,
// so a batch starting on a 64-row boundary always starts on a word boundary
// for every bitcase, and the buffers a kernel needs (codes, selection vector,
// output) stay well inside the L1 cache.
const BatchSize = 1024

// sharedStrip is the number of 64-bit windows a shared scan preloads and
// splits per strip before sweeping the member predicates over them. 128
// windows keep the two half-window buffers at 2 KiB — resident in L1 across
// all member sweeps — while amortizing the per-member loop setup over
// hundreds of codes.
const sharedStrip = 128

// SharedRange is one member predicate of a shared batch scan, already
// encoded on dictionary codes: the member qualifies a row when its vid lies
// in [Lo, Hi]. A member with Lo > Hi matches nothing (an empty predicate
// window, the EncodePredicate !ok case).
type SharedRange struct {
	Lo, Hi uint32
}

// Get64 returns the 64 bits of the packed vector starting at the given bit
// offset, assembled branchlessly from two adjacent words. The vector's
// backing array carries one padding word beyond the packed data, so the
// second load is always in range and needs no boundary test; when the offset
// is word-aligned the second term shifts by 64, which Go defines as zero.
// This is the word-at-a-time load the batch kernels decode from, in the
// spirit of the SIMD register loads of Willhalm et al. [33].
func (v *PackedVector) Get64(bitPos uint64) uint64 {
	w := bitPos >> 6
	off := bitPos & 63
	return v.words[w]>>off | v.words[w+1]<<(64-off)
}

// fieldPlan precomputes, for one bitcase, the constants of the word-parallel
// range kernels: every 64-bit window read by Get64 holds k complete codes at
// bit offsets 0, bits, 2*bits, ..., and the kernel evaluates all of them at
// once with packed-field arithmetic instead of decoding them. Fields are
// split into even- and odd-indexed halves so each tested field has a zeroed
// field-width of headroom above it (the carry trick needs bits+1 bits per
// field); the odd half is brought onto even slots by shifting the window
// right by one field, which also keeps every carry bit below bit 64.
type fieldPlan struct {
	k     int    // complete fields per 64-bit window; >= 2 for every bitcase
	step  uint64 // bits consumed per window, k*bits
	maskE uint64 // the even-indexed field slots of the window
	maskO uint64 // the odd-indexed field slots, in window>>bits coordinates
	carE  uint64 // even-pass carry-bit positions: (i+1)*bits for even i < k
	carO  uint64 // odd-pass carry-bit positions: i*bits for odd i < k
	fld   [64]uint8
}

// matchMask combines the two carry masks into one mask with a single set bit
// per matching field, in ascending position order: even-pass carries move to
// (i+1)*bits-1 and odd-pass carries sit at i*bits, which never collide and
// order exactly like field indices for every bitcase. fld maps each combined
// bit position back to its field index.
func matchMask(me, mo uint64) uint64 { return me>>1 | mo }

// newFieldPlan builds the bitcase-dependent half of a range plan.
func newFieldPlan(bits uint) fieldPlan {
	b := uint64(bits)
	fieldMask := uint64(1)<<b - 1
	var p fieldPlan
	p.k = int(64 / b)
	p.step = uint64(p.k) * b
	for i := 0; i < p.k; i++ {
		slot := uint64(i) * b
		if i%2 == 0 {
			p.maskE |= fieldMask << slot
			p.carE |= 1 << (slot + b)
		} else {
			p.maskO |= fieldMask << (slot - b)
			p.carO |= 1 << slot
		}
	}
	// fld decodes the combined match mask (see matchMask): an even field i
	// lands at bit (i+1)*bits-1, an odd field i at bit i*bits.
	for i := 0; i < p.k; i++ {
		if i%2 == 0 {
			p.fld[uint64(i+1)*b-1] = uint8(i)
		} else {
			p.fld[uint64(i)*b] = uint8(i)
		}
	}
	return p
}

// rangeAddends builds the predicate-dependent half of a range plan: the two
// packed addends of the carry trick, replicated over every even slot. For a
// field f with headroom, f + (2^bits - lo) carries into the field's top+1
// bit exactly when f >= lo, and f + (2^bits - 1 - hi) carries exactly when
// f > hi; a field matches [lo, hi] when the first carry is set and the
// second is not. Unused slots hold zeroed fields, so their sums stay
// slot-local and their spurious carries are masked off by carE/carO.
func rangeAddends(bits uint, lo, hi uint32) (addLo, addHi uint64) {
	b := uint64(bits)
	aLo := uint64(1)<<b - uint64(lo)
	aHi := (uint64(1)<<b - 1) - uint64(hi)
	for slot := uint64(0); slot < 64; slot += 2 * b {
		addLo |= aLo << slot
		addHi |= aHi << slot
	}
	return addLo, addHi
}

// rangeMasks evaluates one window against one predicate: it returns the
// even- and odd-pass carry masks, one set bit per matching field. we and wo
// are the window's even and odd halves (w & maskE and w>>bits & maskO).
func (p *fieldPlan) rangeMasks(we, wo, addLo, addHi uint64) (me, mo uint64) {
	me = (we + addLo) &^ (we + addHi) & p.carE
	mo = (wo + addLo) &^ (wo + addHi) & p.carO
	return me, mo
}

// UnpackBatch decodes the codes of rows [from, from+len(dst)) into dst — the
// batch unpack every vectorized kernel is built on. One call replaces
// len(dst) scalar Get calls: bitcases dividing 64 extract a full word's
// worth of codes per word load, the remaining bitcases run a carry-based
// word-at-a-time loop that loads each packed word exactly once. dst must not
// extend past the vector's length.
func (v *PackedVector) UnpackBatch(from int, dst []uint32) {
	n := len(dst)
	if from < 0 || from+n > v.n {
		panic(fmt.Sprintf("colstore: unpack range [%d,%d) out of [0,%d)", from, from+n, v.n))
	}
	if n == 0 {
		return
	}
	bits := uint64(v.bits)
	mask := uint32(uint64(1)<<bits - 1)
	if 64%bits == 0 {
		v.unpackAligned(from, dst, mask)
		return
	}
	// Carry loop: keep the undecoded remainder of the current word in cur
	// and refill from the next word only when a code straddles the boundary.
	bitPos := uint64(from) * bits
	w := bitPos >> 6
	off := bitPos & 63
	cur := v.words[w] >> off
	avail := 64 - off
	for i := range dst {
		if avail >= bits {
			dst[i] = uint32(cur) & mask
			cur >>= bits
			avail -= bits
		} else {
			w++
			nxt := v.words[w]
			dst[i] = uint32(cur|nxt<<avail) & mask
			cur = nxt >> (bits - avail)
			avail += 64 - bits
		}
	}
}

// unpackAligned is the UnpackBatch fast path for bitcases dividing 64
// (1, 2, 4, 8, 16, 32): after a short prologue to the next word boundary,
// every packed word decodes to exactly 64/bits codes with constant shifts
// and no cross-word carries.
func (v *PackedVector) unpackAligned(from int, dst []uint32, mask uint32) {
	bits := uint64(v.bits)
	per := int(64 / bits)
	n := len(dst)
	i := 0
	for ; i < n && (from+i)%per != 0; i++ {
		dst[i] = v.Get(from + i)
	}
	w := uint64(from+i) * bits >> 6
	for ; i+per <= n; i, w = i+per, w+1 {
		word := v.words[w]
		for k := 0; k < per; k++ {
			dst[i+k] = uint32(word) & mask
			word >>= bits
		}
	}
	for ; i < n; i++ {
		dst[i] = v.Get(from + i)
	}
}

// RangeSelect is the range-predicate kernel over an already-decoded code
// batch: it scans the codes for values in [lo, hi] and writes the qualifying
// batch-relative offsets into sel in ascending order, returning the match
// count. The selection vector is the hand-off format between the find
// kernels and whatever consumes the qualifying rows (position append,
// bitvector set, materialization gather); comparing on codes means the
// dictionary is never probed here. The packed-vector range scans use the
// word-parallel rangePlan kernels instead of decoding; RangeSelect serves
// consumers that already hold a decoded batch. sel must have len(codes)
// capacity. Callers guarantee lo <= hi (an empty window is rejected before
// the batch loop).
func RangeSelect(codes []uint32, lo, hi uint32, sel []uint16) int {
	span := hi - lo
	k := 0
	for i, c := range codes {
		if c-lo <= span { // unsigned trick: one compare for lo <= c <= hi
			sel[k] = uint16(i)
			k++
		}
	}
	return k
}

// RangeCount is the branchless counting variant of RangeSelect: it returns
// how many decoded codes lie in [lo, hi] without materializing a selection
// vector. Callers guarantee lo <= hi.
func RangeCount(codes []uint32, lo, hi uint32) int {
	span := uint64(hi - lo)
	cnt := 0
	for _, c := range codes {
		// 1 exactly when uint32(c-lo) <= span, computed without a branch.
		cnt += int((uint64(c-lo) - span - 1) >> 63)
	}
	return cnt
}

// InListSelect is the batched complex-predicate kernel: it probes every
// decoded code against the qualifying-vid set and writes the matching
// batch-relative offsets into sel, returning the count. sel must have
// len(codes) capacity.
func InListSelect(codes []uint32, set *VidSet, sel []uint16) int {
	k := 0
	for i, c := range codes {
		if set.Contains(c) {
			sel[k] = uint16(i)
			k++
		}
	}
	return k
}

// ScanShared is the N-predicate shared-scan kernel: each 64-bit window of
// rows [from, to) is loaded and split ONCE and every member predicate is
// evaluated on it word-parallel, appending each member's qualifying absolute
// positions to outs[i]. This is the decode-once/compare-many loop the
// shared-scan cost model (exec.Costs.SharedPredCyclesPerByte) describes: the
// window load, the even/odd split, and the memory traffic over the
// indexvector are paid once per window, and each additional member costs
// only its two packed adds and mask merge. Each member's output is
// bit-identical to a private ScanRange with its window. outs must have
// len(preds) entries; the (possibly grown) slices are returned.
func (v *PackedVector) ScanShared(preds []SharedRange, from, to int, outs [][]uint32) [][]uint32 {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("colstore: shared scan range [%d,%d) out of [0,%d)", from, to, v.n))
	}
	if len(outs) != len(preds) {
		panic(fmt.Sprintf("colstore: shared scan with %d outputs for %d predicates", len(outs), len(preds)))
	}
	b := uint64(v.bits)
	p := newFieldPlan(v.bits)
	type member struct {
		addLo, addHi uint64
		skip         bool
	}
	members := make([]member, len(preds))
	for m, pr := range preds {
		if pr.Lo > pr.Hi {
			members[m].skip = true
			continue
		}
		members[m].addLo, members[m].addHi = rangeAddends(v.bits, pr.Lo, pr.Hi)
	}
	// Windows are loaded and split into strips of sharedStrip window halves,
	// then each member sweeps the in-cache strip: the per-member inner loop
	// is a flat two-add pass with no window loads, and the per-window work
	// that every member shares (Get64, the even/odd split, the memory
	// traffic over the packed words) is paid once per strip fill.
	var buf [sharedStrip][2]uint64
	base := from
	bitPos := uint64(from) * b
	for base+p.k <= to {
		stripStart := base
		nw := 0
		for nw < sharedStrip && base+p.k <= to {
			w := v.Get64(bitPos)
			buf[nw][0] = w & p.maskE
			buf[nw][1] = w >> b & p.maskO
			nw++
			base += p.k
			bitPos += p.step
		}
		strip := buf[:nw]
		kk := uint32(p.k)
		for m := range members {
			mb := &members[m]
			if mb.skip {
				continue
			}
			addLo, addHi := mb.addLo, mb.addHi
			carE, carO := p.carE, p.carO
			o := outs[m]
			wbase := uint32(stripStart)
			j := 0
			// Two strip windows per iteration, mirroring ScanRange's unroll:
			// the two mask computations are independent and pipeline.
			for ; j+2 <= len(strip); j += 2 {
				we1, wo1 := strip[j][0], strip[j][1]
				we2, wo2 := strip[j+1][0], strip[j+1][1]
				mk1 := matchMask((we1+addLo)&^(we1+addHi)&carE, (wo1+addLo)&^(wo1+addHi)&carO)
				mk2 := matchMask((we2+addLo)&^(we2+addHi)&carE, (wo2+addLo)&^(wo2+addHi)&carO)
				for ; mk1 != 0; mk1 &= mk1 - 1 {
					o = append(o, wbase+uint32(p.fld[mbits.TrailingZeros64(mk1)]))
				}
				for ; mk2 != 0; mk2 &= mk2 - 1 {
					o = append(o, wbase+kk+uint32(p.fld[mbits.TrailingZeros64(mk2)]))
				}
				wbase += 2 * kk
			}
			for ; j < len(strip); j++ {
				we, wo := strip[j][0], strip[j][1]
				me := (we + addLo) &^ (we + addHi) & carE
				mo := (wo + addLo) &^ (wo + addHi) & carO
				for mk := matchMask(me, mo); mk != 0; mk &= mk - 1 {
					o = append(o, wbase+uint32(p.fld[mbits.TrailingZeros64(mk)]))
				}
				wbase += kk
			}
			outs[m] = o
		}
	}
	// Tail: fewer than one window of rows left. Still decode-once: one Get
	// per row, every member compared on the decoded code.
	for i := base; i < to; i++ {
		c := v.Get(i)
		for m, pr := range preds {
			if !members[m].skip && c-pr.Lo <= pr.Hi-pr.Lo {
				outs[m] = append(outs[m], uint32(i))
			}
		}
	}
	return outs
}

// ScanSharedPositions runs the N-predicate shared-scan kernel over rows
// [from, to) of the column: one decode per batch, every cohort member's
// vid-window predicate evaluated on it. outs (one slice per member, grown
// and returned) receives each member's absolute qualifying positions.
func (c *Column) ScanSharedPositions(preds []SharedRange, from, to int, outs [][]uint32) [][]uint32 {
	return c.IVec.ScanShared(preds, from, to, outs)
}
