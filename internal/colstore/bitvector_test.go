package colstore

import (
	"testing"
	"testing/quick"
)

func TestPackedVectorRoundTrip(t *testing.T) {
	for _, bc := range []uint{1, 3, 7, 8, 13, 17, 21, 26, 31, 32} {
		n := 257
		v := NewPackedVector(bc, n)
		max := uint32(1)<<bc - 1
		for i := 0; i < n; i++ {
			v.Set(i, uint32(i*2654435761)&max)
		}
		for i := 0; i < n; i++ {
			want := uint32(i*2654435761) & max
			if got := v.Get(i); got != want {
				t.Fatalf("bitcase %d pos %d: got %d, want %d", bc, i, got, want)
			}
		}
	}
}

func TestPackedVectorOverwrite(t *testing.T) {
	v := NewPackedVector(17, 10)
	v.Set(3, 12345)
	v.Set(3, 54321)
	if got := v.Get(3); got != 54321 {
		t.Fatalf("overwrite: got %d", got)
	}
	// Neighbours untouched.
	if v.Get(2) != 0 || v.Get(4) != 0 {
		t.Fatal("overwrite corrupted neighbours")
	}
}

func TestPackedVectorSetRejectsOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized value")
		}
	}()
	v := NewPackedVector(4, 4)
	v.Set(0, 16)
}

func TestScanRangeMatchesNaive(t *testing.T) {
	v := NewPackedVector(13, 1000)
	vals := make([]uint32, 1000)
	s := uint32(42)
	for i := range vals {
		s = s*1664525 + 1013904223
		vals[i] = s % 8000
		v.Set(i, vals[i])
	}
	for _, tc := range []struct{ lo, hi uint32 }{{0, 8000}, {100, 200}, {7999, 7999}, {500, 499}, {0, 0}} {
		got := v.ScanRange(tc.lo, tc.hi, 0, 1000, nil)
		var want []uint32
		for i, x := range vals {
			if x >= tc.lo && x <= tc.hi {
				want = append(want, uint32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("[%d,%d]: got %d matches, want %d", tc.lo, tc.hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d]: position %d differs", tc.lo, tc.hi, i)
			}
		}
	}
}

func TestScanRangeSubrange(t *testing.T) {
	v := PackValues(8, []uint32{5, 10, 15, 20, 25, 30})
	got := v.ScanRange(10, 25, 2, 5, nil)
	want := []uint32{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScanRangeBitvector(t *testing.T) {
	v := PackValues(8, []uint32{1, 200, 3, 200, 5, 200, 7})
	dst := make([]uint64, 1)
	n := v.ScanRangeBitvector(200, 200, 0, 7, dst)
	if n != 3 {
		t.Fatalf("matches = %d, want 3", n)
	}
	if dst[0] != (1<<1 | 1<<3 | 1<<5) {
		t.Fatalf("bitvector = %b", dst[0])
	}
}

func TestCountRangeAgrees(t *testing.T) {
	v := NewPackedVector(20, 500)
	s := uint32(7)
	for i := 0; i < 500; i++ {
		s = s*1664525 + 1013904223
		v.Set(i, s%(1<<20))
	}
	lo, hi := uint32(1000), uint32(500000)
	if got, want := v.CountRange(lo, hi, 50, 450), len(v.ScanRange(lo, hi, 50, 450, nil)); got != want {
		t.Fatalf("CountRange = %d, ScanRange found %d", got, want)
	}
}

// Property: pack/unpack round-trips and scan agrees with a naive filter for
// random bitcases, values, and predicate ranges.
func TestPackedVectorProperty(t *testing.T) {
	f := func(seed uint32, bcRaw uint8, loRaw, hiRaw uint32) bool {
		bc := uint(bcRaw%32) + 1
		n := 64 + int(seed%200)
		max := uint32(1)<<bc - 1
		vals := make([]uint32, n)
		s := seed
		v := NewPackedVector(bc, n)
		for i := range vals {
			s = s*1664525 + 1013904223
			vals[i] = s & max
			v.Set(i, vals[i])
		}
		for i := range vals {
			if v.Get(i) != vals[i] {
				return false
			}
		}
		lo, hi := loRaw&max, hiRaw&max
		got := v.ScanRange(lo, hi, 0, n, nil)
		cnt := 0
		for i, x := range vals {
			if x >= lo && x <= hi {
				if cnt >= len(got) || got[cnt] != uint32(i) {
					return false
				}
				cnt++
			}
		}
		if cnt != len(got) {
			return false
		}
		// Bitvector kernel agrees with position kernel.
		dst := make([]uint64, (n+63)/64)
		if v.ScanRangeBitvector(lo, hi, 0, n, dst) != cnt {
			return false
		}
		return v.CountRange(lo, hi, 0, n) == cnt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
