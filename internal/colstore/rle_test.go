package colstore

import (
	"testing"
	"testing/quick"
)

func rleFixture() (*PackedVector, *RLEVector) {
	// 2,2,2,5,5,1,1,1,1,7
	iv := PackValues(4, []uint32{2, 2, 2, 5, 5, 1, 1, 1, 1, 7})
	return iv, BuildRLE(iv)
}

func TestBuildRLERuns(t *testing.T) {
	_, r := rleFixture()
	if r.Runs() != 4 {
		t.Fatalf("runs = %d, want 4", r.Runs())
	}
	if r.Len() != 10 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRLEGetAgreesWithPacked(t *testing.T) {
	iv, r := rleFixture()
	for i := 0; i < iv.Len(); i++ {
		if r.Get(i) != iv.Get(i) {
			t.Fatalf("pos %d: rle %d, packed %d", i, r.Get(i), iv.Get(i))
		}
	}
}

func TestRLEScanMatchesPackedScan(t *testing.T) {
	iv, r := rleFixture()
	for _, tc := range []struct{ lo, hi uint32 }{{1, 2}, {5, 5}, {0, 7}, {3, 4}, {7, 1}} {
		want := iv.ScanRange(tc.lo, tc.hi, 0, iv.Len(), nil)
		got := r.ScanRange(tc.lo, tc.hi, 0, r.Len(), nil)
		if len(want) != len(got) {
			t.Fatalf("[%d,%d]: rle %v, packed %v", tc.lo, tc.hi, got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("[%d,%d]: rle %v, packed %v", tc.lo, tc.hi, got, want)
			}
		}
	}
}

func TestRLEScanSubrange(t *testing.T) {
	iv, r := rleFixture()
	want := iv.ScanRange(1, 5, 2, 8, nil)
	got := r.ScanRange(1, 5, 2, 8, nil)
	if len(want) != len(got) {
		t.Fatalf("subrange: rle %v, packed %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("subrange: rle %v, packed %v", got, want)
		}
	}
}

func TestRLECountRange(t *testing.T) {
	iv, r := rleFixture()
	if got, want := r.CountRange(1, 2, 0, 10), iv.CountRange(1, 2, 0, 10); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if got := r.CountRange(9, 9, 0, 10); got != 0 {
		t.Fatalf("count of absent vid = %d", got)
	}
}

func TestRLECompressionWinsOnSortedData(t *testing.T) {
	// Sorted low-cardinality data compresses to few runs; random data does
	// not — the trade-off Section 8 alludes to.
	sorted := make([]uint32, 10000)
	for i := range sorted {
		sorted[i] = uint32(i / 500) // 20 runs
	}
	ivSorted := PackValues(8, sorted)
	rleSorted := BuildRLE(ivSorted)
	if rleSorted.Runs() != 20 {
		t.Fatalf("sorted runs = %d, want 20", rleSorted.Runs())
	}
	if rleSorted.SizeBytes() >= ivSorted.SizeBytes() {
		t.Fatalf("RLE (%d B) should beat bit-packing (%d B) on sorted data",
			rleSorted.SizeBytes(), ivSorted.SizeBytes())
	}

	random := make([]uint32, 10000)
	s := uint32(7)
	for i := range random {
		s = s*1664525 + 1013904223
		random[i] = s % 200
	}
	rleRandom := BuildRLE(PackValues(8, random))
	if rleRandom.SizeBytes() <= PackValues(8, random).SizeBytes() {
		t.Fatal("RLE should lose to bit-packing on random data")
	}
}

func TestRLEEmptyAndSingle(t *testing.T) {
	r := BuildRLE(NewPackedVector(4, 0))
	if r.Len() != 0 || r.Runs() != 0 {
		t.Fatalf("empty: %+v", r)
	}
	one := BuildRLE(PackValues(4, []uint32{9}))
	if one.Runs() != 1 || one.Get(0) != 9 {
		t.Fatalf("single: %+v", one)
	}
}

// Property: RLE round-trips and scans agree with the packed kernels on
// random run-structured data.
func TestRLEEquivalenceProperty(t *testing.T) {
	f := func(seed uint32, loRaw, hiRaw uint8) bool {
		s := seed
		var vals []uint32
		for len(vals) < 300 {
			s = s*1664525 + 1013904223
			v := s % 16
			s = s*1664525 + 1013904223
			runLen := 1 + int(s%9)
			for j := 0; j < runLen && len(vals) < 300; j++ {
				vals = append(vals, v)
			}
		}
		iv := PackValues(4, vals)
		r := BuildRLE(iv)
		for i := range vals {
			if r.Get(i) != vals[i] {
				return false
			}
		}
		lo, hi := uint32(loRaw%16), uint32(hiRaw%16)
		want := iv.ScanRange(lo, hi, 10, 290, nil)
		got := r.ScanRange(lo, hi, 10, 290, nil)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return r.CountRange(lo, hi, 10, 290) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
