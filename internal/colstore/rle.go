package colstore

import "fmt"

// RLEVector is a run-length-encoded value-identifier vector — the further IV
// compression mentioned in Section 8 ("IV can be further compressed using,
// e.g., run-length or prefix encoding"). It stores maximal runs of equal
// vids as (start position, vid) pairs; run i spans positions
// [Starts[i], Starts[i+1]). Scans over an RLEVector skip whole runs, so
// their cost scales with the number of runs rather than the number of rows —
// which is why RLE pays off only on sorted or low-cardinality data. The
// paper notes such compression changes task CPU/memory intensity but not the
// placement and scheduling implications.
type RLEVector struct {
	n      int
	Starts []uint32 // len = runs+1; Starts[runs] = n
	Vids   []uint32 // len = runs
}

// BuildRLE run-length-encodes a packed vector, decoding it one batch at a
// time (UnpackBatch) and detecting run breaks on the decoded codes.
func BuildRLE(iv *PackedVector) *RLEVector {
	r := &RLEVector{n: iv.Len()}
	if iv.Len() == 0 {
		r.Starts = []uint32{0}
		return r
	}
	var codes [BatchSize]uint32
	cur := iv.Get(0)
	r.Starts = append(r.Starts, 0)
	r.Vids = append(r.Vids, cur)
	for base := 0; base < iv.Len(); base += BatchSize {
		n := iv.Len() - base
		if n > BatchSize {
			n = BatchSize
		}
		iv.UnpackBatch(base, codes[:n])
		for i, v := range codes[:n] {
			if v != cur {
				r.Starts = append(r.Starts, uint32(base+i))
				r.Vids = append(r.Vids, v)
				cur = v
			}
		}
	}
	r.Starts = append(r.Starts, uint32(iv.Len()))
	return r
}

// Len returns the number of logical positions.
func (r *RLEVector) Len() int { return r.n }

// Runs returns the number of runs.
func (r *RLEVector) Runs() int { return len(r.Vids) }

// SizeBytes returns the encoded size (4 bytes per start + 4 per vid).
func (r *RLEVector) SizeBytes() int64 {
	return int64(len(r.Starts)+len(r.Vids)) * 4
}

// Get decodes the vid at a position via binary search over run starts.
func (r *RLEVector) Get(pos int) uint32 {
	if pos < 0 || pos >= r.n {
		panic(fmt.Sprintf("colstore: RLE position %d out of [0,%d)", pos, r.n))
	}
	lo, hi := 0, len(r.Vids)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(r.Starts[mid]) <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return r.Vids[lo]
}

// ScanRange appends the positions in [from, to) whose vid lies in [lo, hi],
// skipping whole runs — the RLE scan kernel.
func (r *RLEVector) ScanRange(lo, hi uint32, from, to int, out []uint32) []uint32 {
	if from < 0 || to > r.n || from > to {
		panic(fmt.Sprintf("colstore: RLE scan range [%d,%d) out of [0,%d)", from, to, r.n))
	}
	if lo > hi || from == to {
		return out
	}
	// Find the run containing 'from'.
	ri := 0
	{
		l, h := 0, len(r.Vids)-1
		for l < h {
			mid := (l + h + 1) / 2
			if int(r.Starts[mid]) <= from {
				l = mid
			} else {
				h = mid - 1
			}
		}
		ri = l
	}
	for ; ri < len(r.Vids) && int(r.Starts[ri]) < to; ri++ {
		v := r.Vids[ri]
		if v < lo || v > hi {
			continue
		}
		s := int(r.Starts[ri])
		e := int(r.Starts[ri+1])
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		for p := s; p < e; p++ {
			out = append(out, uint32(p))
		}
	}
	return out
}

// CountRange counts positions in [from, to) with vids in [lo, hi] without
// materializing them — for RLE this touches only run boundaries.
func (r *RLEVector) CountRange(lo, hi uint32, from, to int) int {
	if lo > hi || from >= to {
		return 0
	}
	count := 0
	for ri := 0; ri < len(r.Vids); ri++ {
		s, e := int(r.Starts[ri]), int(r.Starts[ri+1])
		if e <= from {
			continue
		}
		if s >= to {
			break
		}
		v := r.Vids[ri]
		if v < lo || v > hi {
			continue
		}
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		count += e - s
	}
	return count
}
