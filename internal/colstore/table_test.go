package colstore

import (
	"testing"
)

func buildTestTable(t *testing.T, rows, cols int) *Table {
	t.Helper()
	columns := make([]*Column, cols)
	for j := 0; j < cols; j++ {
		columns[j] = Build(colName(j), testValues(rows, int64(100+j*37), uint32(j+1)), false)
	}
	return NewTable("tbl", columns)
}

func colName(j int) string { return "COL" + string(rune('A'+j)) }

func TestNewTable(t *testing.T) {
	tbl := buildTestTable(t, 500, 3)
	if tbl.NumParts() != 1 || tbl.Rows != 500 {
		t.Fatalf("parts=%d rows=%d", tbl.NumParts(), tbl.Rows)
	}
	if c := tbl.Column("COLB"); c == nil || c.Rows != 500 {
		t.Fatal("Column lookup failed")
	}
	if names := tbl.ColumnNames(); len(names) != 3 || names[0] != "COLA" {
		t.Fatalf("names = %v", names)
	}
}

func TestNewTableRejectsMismatchedRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched row counts")
		}
	}()
	NewTable("bad", []*Column{
		Build("a", testValues(10, 5, 1), false),
		Build("b", testValues(20, 5, 2), false),
	})
}

func TestPhysicalPartitionPreservesData(t *testing.T) {
	tbl := buildTestTable(t, 1000, 2)
	orig := tbl.Parts[0].Columns[0]
	pp := tbl.PhysicallyPartition(4)
	if pp.NumParts() != 4 {
		t.Fatalf("parts = %d", pp.NumParts())
	}
	covered := 0
	for _, p := range pp.Parts {
		covered += p.Rows()
		col := p.ColumnByName("COLA")
		for r := p.RowFrom; r < p.RowTo; r++ {
			if col.Value(r-p.RowFrom) != orig.Value(r) {
				t.Fatalf("row %d differs after PP", r)
			}
		}
	}
	if covered != 1000 {
		t.Fatalf("parts cover %d rows", covered)
	}
}

func TestPhysicalPartitionDictionaryOverhead(t *testing.T) {
	// Low-cardinality columns repeat values in every part, so the sum of
	// per-part dictionaries exceeds the single dictionary — the PP memory
	// overhead of Section 4.2 / 6.2.3.
	cols := []*Column{Build("c", testValues(4000, 50, 3), false)}
	tbl := NewTable("t", cols)
	pp := tbl.PhysicallyPartition(4)
	var ppDict int64
	for _, p := range pp.Parts {
		ppDict += p.Columns[0].DictBytes()
	}
	if ppDict <= cols[0].DictBytes() {
		t.Fatalf("PP dictionaries (%d B) should exceed the original (%d B)", ppDict, cols[0].DictBytes())
	}
	if pp.TotalBytes() <= tbl.TotalBytes()-cols[0].DictBytes() {
		t.Fatal("TotalBytes should reflect duplication")
	}
}

func TestPhysicalPartitionKeepsIndexes(t *testing.T) {
	cols := []*Column{Build("c", testValues(400, 40, 9), true)}
	pp := NewTable("t", cols).PhysicallyPartition(2)
	for _, p := range pp.Parts {
		if p.Columns[0].Idx == nil {
			t.Fatal("index lost during PP")
		}
	}
}

func TestPhysicalPartitionScanEquivalence(t *testing.T) {
	// A predicate scan over all parts finds the same global row ids as over
	// the unpartitioned column.
	vals := testValues(2000, 300, 11)
	tbl := NewTable("t", []*Column{Build("c", vals, false)})
	whole := tbl.Parts[0].Columns[0]
	lo, hi, ok := whole.EncodePredicate(50, 90)
	if !ok {
		t.Fatal("predicate empty")
	}
	want := whole.ScanPositions(lo, hi, 0, whole.Rows, nil)

	pp := tbl.PhysicallyPartition(3)
	var got []uint32
	for _, p := range pp.Parts {
		c := p.Columns[0]
		plo, phi, ok := c.EncodePredicate(50, 90)
		if !ok {
			continue
		}
		for _, pos := range c.ScanPositions(plo, phi, 0, c.Rows, nil) {
			got = append(got, pos+uint32(p.RowFrom))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("PP scan found %d, whole scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestPhysicallyPartitionRejectsRepartition(t *testing.T) {
	tbl := buildTestTable(t, 100, 1)
	pp := tbl.PhysicallyPartition(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double partition")
		}
	}()
	pp.PhysicallyPartition(4)
}
