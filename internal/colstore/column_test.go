package colstore

import (
	"testing"
	"testing/quick"
)

func testValues(n int, mod int64, seed uint32) []int64 {
	vals := make([]int64, n)
	s := seed
	for i := range vals {
		s = s*1664525 + 1013904223
		vals[i] = int64(s) % mod
	}
	return vals
}

func TestBuildDictionarySortedDistinct(t *testing.T) {
	c := Build("c", []int64{5, 3, 5, 1, 3, 9}, false)
	want := []int64{1, 3, 5, 9}
	if len(c.Dict) != len(want) {
		t.Fatalf("dict = %v, want %v", c.Dict, want)
	}
	for i := range want {
		if c.Dict[i] != want[i] {
			t.Fatalf("dict = %v, want %v", c.Dict, want)
		}
	}
	if c.Bitcase != 2 {
		t.Fatalf("bitcase = %d, want 2", c.Bitcase)
	}
	// Round-trip through vids.
	for i, v := range []int64{5, 3, 5, 1, 3, 9} {
		if got := c.Value(i); got != v {
			t.Fatalf("Value(%d) = %d, want %d", i, got, v)
		}
	}
}

func TestBuildSingleValueColumn(t *testing.T) {
	c := Build("c", []int64{7, 7, 7}, false)
	if len(c.Dict) != 1 || c.Bitcase != 1 {
		t.Fatalf("dict=%v bitcase=%d", c.Dict, c.Bitcase)
	}
}

func TestEncodePredicate(t *testing.T) {
	c := Build("c", []int64{10, 20, 30, 40, 50}, false)
	lo, hi, ok := c.EncodePredicate(15, 45)
	if !ok || c.Dict[lo] != 20 || c.Dict[hi] != 40 {
		t.Fatalf("EncodePredicate(15,45) = %d,%d,%v", lo, hi, ok)
	}
	// Exact bounds.
	lo, hi, ok = c.EncodePredicate(20, 40)
	if !ok || c.Dict[lo] != 20 || c.Dict[hi] != 40 {
		t.Fatalf("EncodePredicate(20,40) = %d,%d,%v", lo, hi, ok)
	}
	// Empty range.
	if _, _, ok := c.EncodePredicate(21, 29); ok {
		t.Fatal("expected no qualifying vids")
	}
	if _, _, ok := c.EncodePredicate(100, 200); ok {
		t.Fatal("expected no qualifying vids above domain")
	}
}

func TestScanVsIndexLookupAgree(t *testing.T) {
	vals := testValues(5000, 1000, 99)
	c := Build("c", vals, true)
	lo, hi, ok := c.EncodePredicate(100, 150)
	if !ok {
		t.Fatal("predicate should qualify")
	}
	scan := c.ScanPositions(lo, hi, 0, c.Rows, nil)
	idx := c.IndexLookupPositions(lo, hi, nil)
	if len(scan) != len(idx) {
		t.Fatalf("scan found %d, index found %d", len(scan), len(idx))
	}
	seen := make(map[uint32]bool, len(scan))
	for _, p := range scan {
		seen[p] = true
	}
	for _, p := range idx {
		if !seen[p] {
			t.Fatalf("index position %d not found by scan", p)
		}
	}
}

func TestIndexPostingsComplete(t *testing.T) {
	vals := testValues(1000, 50, 7)
	c := Build("c", vals, true)
	total := 0
	for vid := 0; vid < c.NumDistinct(); vid++ {
		ps := c.Idx.PositionsOf(uint32(vid))
		total += len(ps)
		for _, p := range ps {
			if c.IVec.Get(int(p)) != uint32(vid) {
				t.Fatalf("posting %d of vid %d holds vid %d", p, vid, c.IVec.Get(int(p)))
			}
		}
	}
	if total != c.Rows {
		t.Fatalf("postings cover %d rows, want %d", total, c.Rows)
	}
}

func TestMaterialize(t *testing.T) {
	vals := []int64{100, 200, 300, 400}
	c := Build("c", vals, false)
	out := make([]int64, 2)
	c.Materialize([]uint32{1, 3}, out)
	if out[0] != 200 || out[1] != 400 {
		t.Fatalf("Materialize = %v", out)
	}
}

func TestIVBytesForRows(t *testing.T) {
	c := Build("c", testValues(1000, 100000, 3), false)
	full := c.IVBytesForRows(0, c.Rows)
	if full != c.IVBytes() && full != c.IVBytes()-7 { // packed size rounds to words
		if full > c.IVBytes() {
			t.Fatalf("IVBytesForRows(all) = %d > packed size %d", full, c.IVBytes())
		}
	}
	half := c.IVBytesForRows(0, 500)
	if half <= 0 || half > full {
		t.Fatalf("IVBytesForRows(half) = %d", half)
	}
	// Halves sum to ~full (within a byte of rounding).
	h2 := c.IVBytesForRows(500, 1000)
	if s := half + h2; s < full || s > full+1 {
		t.Fatalf("halves sum %d, full %d", s, full)
	}
}

func TestPartitionHelpers(t *testing.T) {
	c := Build("c", testValues(100, 1000, 5), false)
	if c.NumPartitions() != 1 {
		t.Fatal("fresh column should have one partition")
	}
	from, to := c.PartitionBounds(0)
	if from != 0 || to != 100 {
		t.Fatalf("bounds = %d,%d", from, to)
	}
	c.Partitions = []int{0, 25, 50, 100}
	if c.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", c.NumPartitions())
	}
	if p := c.PartitionOf(0); p != 0 {
		t.Fatalf("PartitionOf(0) = %d", p)
	}
	if p := c.PartitionOf(49); p != 1 {
		t.Fatalf("PartitionOf(49) = %d", p)
	}
	if p := c.PartitionOf(99); p != 2 {
		t.Fatalf("PartitionOf(99) = %d", p)
	}
	if f, tt := c.PartitionBounds(1); f != 25 || tt != 50 {
		t.Fatalf("PartitionBounds(1) = %d,%d", f, tt)
	}
}

// Property: dictionary encoding preserves values and order of the dictionary.
func TestDictionaryEncodingProperty(t *testing.T) {
	f := func(seed uint32, modRaw uint16) bool {
		mod := int64(modRaw%2000) + 1
		vals := testValues(300, mod, seed)
		c := Build("c", vals, false)
		for i, v := range vals {
			if c.Value(i) != v {
				return false
			}
		}
		for i := 1; i < len(c.Dict); i++ {
			if c.Dict[i] <= c.Dict[i-1] {
				return false
			}
		}
		// Bitcase is minimal.
		if len(c.Dict) > 1 && (1<<(c.Bitcase-1)) >= len(c.Dict) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
