package colstore

import (
	"testing"
)

// FuzzScanRange differentially fuzzes the word-parallel batch kernels against
// their retained scalar references. The batch kernels share the packed-field
// carry trick (rangePlan), so one fuzz target covers all three result formats:
// position list (ScanRange), bitvector (ScanRangeBitvector), and count
// (CountRange). The raw inputs are normalized into the kernels' documented
// domain — bitcase in [1,32], predicate bounds under 1<<bits, scan window
// inside [0,n] — but lo > hi and empty windows are kept, since those early
// returns are part of the contract.
func FuzzScanRange(f *testing.F) {
	// One seed per structurally distinct bitcase family: 1 (64 codes/word),
	// 3 and 7 (odd, word-straddling codes), 12 (the benchmark bitcase),
	// 13 and 21 (odd k, unused tail bits), 31 and 32 (1-2 codes/word).
	f.Add(uint64(1), uint32(0), uint32(1), uint16(0), uint16(4096), uint16(4096), uint64(1))
	f.Add(uint64(3), uint32(2), uint32(5), uint16(7), uint16(900), uint16(1000), uint64(2))
	f.Add(uint64(7), uint32(10), uint32(100), uint16(63), uint16(65), uint16(128), uint64(3))
	f.Add(uint64(12), uint32(100), uint32(3000), uint16(0), uint16(4096), uint16(4096), uint64(4))
	f.Add(uint64(13), uint32(8000), uint32(100), uint16(1), uint16(4095), uint16(4096), uint64(5))
	f.Add(uint64(21), uint32(0), uint32(1<<21-1), uint16(5), uint16(5), uint16(64), uint64(6))
	f.Add(uint64(31), uint32(1<<30), uint32(1<<31), uint16(0), uint16(100), uint16(100), uint64(7))
	f.Add(uint64(32), uint32(0), uint32(1<<31), uint16(9), uint16(77), uint16(200), uint64(8))
	f.Fuzz(func(t *testing.T, bitsRaw uint64, lo, hi uint32, fromRaw, toRaw, nRaw uint16, seed uint64) {
		bits := uint(1 + bitsRaw%32)
		dom := uint64(1) << bits
		n := 1 + int(nRaw)%4096
		from := int(fromRaw) % (n + 1)
		to := int(toRaw) % (n + 1)
		if from > to {
			from, to = to, from
		}
		lo = uint32(uint64(lo) % dom)
		hi = uint32(uint64(hi) % dom)

		v := NewPackedVector(bits, n)
		x := seed
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			v.Set(i, uint32(x>>32)&uint32(dom-1))
		}

		got := v.ScanRange(lo, hi, from, to, nil)
		want := v.scanRangeScalar(lo, hi, from, to, nil)
		if len(got) != len(want) {
			t.Fatalf("bits=%d n=%d [%d,%d] rows [%d,%d): batch found %d positions, scalar %d",
				bits, n, lo, hi, from, to, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bits=%d n=%d [%d,%d] rows [%d,%d): position %d: batch %d, scalar %d",
					bits, n, lo, hi, from, to, i, got[i], want[i])
			}
		}

		words := (n + 63) / 64
		gotBV := make([]uint64, words)
		wantBV := make([]uint64, words)
		gotM := v.ScanRangeBitvector(lo, hi, from, to, gotBV)
		wantM := v.scanRangeBitvectorScalar(lo, hi, from, to, wantBV)
		if gotM != wantM {
			t.Fatalf("bits=%d n=%d [%d,%d] rows [%d,%d): bitvector matches: batch %d, scalar %d",
				bits, n, lo, hi, from, to, gotM, wantM)
		}
		for w := range gotBV {
			if gotBV[w] != wantBV[w] {
				t.Fatalf("bits=%d n=%d [%d,%d] rows [%d,%d): bitvector word %d: batch %#x, scalar %#x",
					bits, n, lo, hi, from, to, w, gotBV[w], wantBV[w])
			}
		}

		if gotC, wantC := v.CountRange(lo, hi, from, to), v.countRangeScalar(lo, hi, from, to); gotC != wantC {
			t.Fatalf("bits=%d n=%d [%d,%d] rows [%d,%d): count: batch %d, scalar %d",
				bits, n, lo, hi, from, to, gotC, wantC)
		}
	})
}
