package colstore

// VidSet is a bitset over value identifiers, the "list of qualifying vid"
// the paper builds for complex predicates before scanning (Section 5.2 and
// Willhalm et al. [34]): when a predicate is not a contiguous range (IN
// lists, disjunctions, string patterns evaluated on the dictionary), the
// qualifying vids are collected first and the scan probes the set per row.
type VidSet struct {
	words []uint64
	n     int
}

// NewVidSet creates a set for dictionaries of the given size.
func NewVidSet(dictSize int) *VidSet {
	return &VidSet{words: make([]uint64, (dictSize+63)/64)}
}

// Add inserts a vid.
func (s *VidSet) Add(vid uint32) {
	w := vid / 64
	if s.words[w]&(1<<(vid%64)) == 0 {
		s.words[w] |= 1 << (vid % 64)
		s.n++
	}
}

// Contains reports membership.
func (s *VidSet) Contains(vid uint32) bool {
	w := vid / 64
	if int(w) >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(vid%64)) != 0
}

// Len returns the number of vids in the set.
func (s *VidSet) Len() int { return s.n }

// EncodeInList translates an IN-list of real values into a vid set via
// binary searches on the dictionary; values absent from the dictionary are
// skipped.
func (c *Column) EncodeInList(values []int64) *VidSet {
	s := NewVidSet(len(c.Dict))
	for _, v := range values {
		if lo, hi, ok := c.EncodePredicate(v, v); ok {
			for vid := lo; vid <= hi; vid++ {
				s.Add(vid)
			}
		}
	}
	return s
}

// ScanInList appends the positions in [from, to) whose vid is in the set —
// the complex-predicate scan kernel, batched: each BatchSize batch is
// unpacked once and the set probe runs over the decoded codes (InListSelect).
func (v *PackedVector) ScanInList(set *VidSet, from, to int, out []uint32) []uint32 {
	var codes [BatchSize]uint32
	var sel [BatchSize]uint16
	for base := from; base < to; base += BatchSize {
		n := to - base
		if n > BatchSize {
			n = BatchSize
		}
		v.UnpackBatch(base, codes[:n])
		k := InListSelect(codes[:n], set, sel[:])
		for _, s := range sel[:k] {
			out = append(out, uint32(base)+uint32(s))
		}
	}
	return out
}

// scanInListScalar is the retained scalar reference for ScanInList.
func (v *PackedVector) scanInListScalar(set *VidSet, from, to int, out []uint32) []uint32 {
	for i := from; i < to; i++ {
		if set.Contains(v.Get(i)) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// ScanInListPositions scans rows [from, to) of the column for vids in the
// set and appends matching positions.
func (c *Column) ScanInListPositions(set *VidSet, from, to int, out []uint32) []uint32 {
	return c.IVec.ScanInList(set, from, to, out)
}
