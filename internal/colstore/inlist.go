package colstore

// VidSet is a bitset over value identifiers, the "list of qualifying vid"
// the paper builds for complex predicates before scanning (Section 5.2 and
// Willhalm et al. [34]): when a predicate is not a contiguous range (IN
// lists, disjunctions, string patterns evaluated on the dictionary), the
// qualifying vids are collected first and the scan probes the set per row.
type VidSet struct {
	words []uint64
	n     int
}

// NewVidSet creates a set for dictionaries of the given size.
func NewVidSet(dictSize int) *VidSet {
	return &VidSet{words: make([]uint64, (dictSize+63)/64)}
}

// Add inserts a vid.
func (s *VidSet) Add(vid uint32) {
	w := vid / 64
	if s.words[w]&(1<<(vid%64)) == 0 {
		s.words[w] |= 1 << (vid % 64)
		s.n++
	}
}

// Contains reports membership.
func (s *VidSet) Contains(vid uint32) bool {
	w := vid / 64
	if int(w) >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(vid%64)) != 0
}

// Len returns the number of vids in the set.
func (s *VidSet) Len() int { return s.n }

// EncodeInList translates an IN-list of real values into a vid set via
// binary searches on the dictionary; values absent from the dictionary are
// skipped.
func (c *Column) EncodeInList(values []int64) *VidSet {
	s := NewVidSet(len(c.Dict))
	for _, v := range values {
		if lo, hi, ok := c.EncodePredicate(v, v); ok {
			for vid := lo; vid <= hi; vid++ {
				s.Add(vid)
			}
		}
	}
	return s
}

// ScanInList appends the positions in [from, to) whose vid is in the set —
// the complex-predicate scan kernel.
func (v *PackedVector) ScanInList(set *VidSet, from, to int, out []uint32) []uint32 {
	bits := uint64(v.bits)
	mask := uint64(1)<<bits - 1
	bitPos := uint64(from) * bits
	for i := from; i < to; i++ {
		word := bitPos / 64
		off := bitPos % 64
		x := v.words[word] >> off
		if off+bits > 64 {
			x |= v.words[word+1] << (64 - off)
		}
		if set.Contains(uint32(x & mask)) {
			out = append(out, uint32(i))
		}
		bitPos += bits
	}
	return out
}

// ScanInListPositions scans rows [from, to) of the column for vids in the
// set and appends matching positions.
func (c *Column) ScanInListPositions(set *VidSet, from, to int, out []uint32) []uint32 {
	return c.IVec.ScanInList(set, from, to, out)
}
