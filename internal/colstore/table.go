package colstore

import "fmt"

// Part is one physical partition of a table: a contiguous row range with its
// own columns (and hence its own per-part dictionaries, the source of PP's
// extra memory consumption discussed in Section 4.2).
type Part struct {
	RowFrom, RowTo int
	Columns        []*Column
	// HomeSocket is the socket the part is placed on (-1 before placement).
	HomeSocket int
}

// Rows returns the number of rows in the part.
func (p *Part) Rows() int { return p.RowTo - p.RowFrom }

// ColumnByName finds a column within the part.
func (p *Part) ColumnByName(name string) *Column {
	for _, c := range p.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Table is a physically partitionable table. An unpartitioned table has a
// single part covering all rows.
type Table struct {
	Name  string
	Rows  int
	Parts []*Part
}

// NewTable builds a single-part table from whole columns.
func NewTable(name string, columns []*Column) *Table {
	if len(columns) == 0 {
		panic("colstore: table needs at least one column")
	}
	rows := columns[0].Rows
	for _, c := range columns {
		if c.Rows != rows {
			panic(fmt.Sprintf("colstore: column %s has %d rows, table has %d", c.Name, c.Rows, rows))
		}
	}
	return &Table{
		Name: name,
		Rows: rows,
		Parts: []*Part{{
			RowFrom:    0,
			RowTo:      rows,
			Columns:    columns,
			HomeSocket: -1,
		}},
	}
}

// NumParts returns the number of physical partitions.
func (t *Table) NumParts() int { return len(t.Parts) }

// Column returns the whole-table column by name; it panics if the table is
// physically partitioned (use Parts in that case).
func (t *Table) Column(name string) *Column {
	if len(t.Parts) != 1 {
		panic(fmt.Sprintf("colstore: table %s is physically partitioned", t.Name))
	}
	c := t.Parts[0].ColumnByName(name)
	if c == nil {
		panic(fmt.Sprintf("colstore: no column %s in table %s", name, t.Name))
	}
	return c
}

// ColumnNames returns the column names of the table.
func (t *Table) ColumnNames() []string {
	names := make([]string, 0, len(t.Parts[0].Columns))
	for _, c := range t.Parts[0].Columns {
		names = append(names, c.Name)
	}
	return names
}

// TotalBytes sums the footprint of every part, exposing PP's dictionary
// duplication overhead.
func (t *Table) TotalBytes() int64 {
	total := int64(0)
	for _, p := range t.Parts {
		for _, c := range p.Columns {
			total += c.TotalBytes()
		}
	}
	return total
}

// PhysicallyPartition rebuilds the table as n range partitions on the
// implicit row id (the paper partitions by ranges of the ID primary key,
// which equals the row number in the generated dataset). Every column of
// every part is fully rebuilt — per-part dictionary, re-encoded IV, and
// index if the source column had one. This is what makes PP heavyweight
// (Section 6.2.3); RepartitionCost quantifies it.
func (t *Table) PhysicallyPartition(n int) *Table {
	if len(t.Parts) != 1 {
		panic(fmt.Sprintf("colstore: table %s is already partitioned", t.Name))
	}
	if n < 1 || n > t.Rows {
		panic(fmt.Sprintf("colstore: bad partition count %d", n))
	}
	src := t.Parts[0].Columns
	parts := make([]*Part, n)
	for i := 0; i < n; i++ {
		from := t.Rows * i / n
		to := t.Rows * (i + 1) / n
		cols := make([]*Column, len(src))
		for j, c := range src {
			if c.Synthetic {
				// Synthetic columns carry no data; build a correctly-sized
				// synthetic part (per-part dictionaries shrink according to
				// the expected distinct count of the smaller row range,
				// which is also what produces PP's duplication overhead).
				cols[j] = NewSynthetic(c.Name, to-from, c.Domain, c.Idx != nil)
				continue
			}
			vals := make([]int64, to-from)
			for r := from; r < to; r++ {
				vals[r-from] = c.Value(r)
			}
			cols[j] = Build(c.Name, vals, c.Idx != nil)
			cols[j].Domain = c.Domain
		}
		parts[i] = &Part{RowFrom: from, RowTo: to, Columns: cols, HomeSocket: -1}
	}
	return &Table{Name: t.Name, Rows: t.Rows, Parts: parts}
}
