package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"numacs/internal/delta"
)

// lcgFill fills a fresh packed vector and its mirror slice with a
// deterministic pseudo-random code stream.
func lcgFill(bc uint, n int, seed uint32) (*PackedVector, []uint32) {
	v := NewPackedVector(bc, n)
	vals := make([]uint32, n)
	max := uint32(uint64(1)<<bc - 1)
	s := seed
	for i := range vals {
		s = s*1664525 + 1013904223
		vals[i] = s & max
		v.Set(i, vals[i])
	}
	return v, vals
}

// TestGet64Window pins the two-word window load against bit arithmetic on
// the mirror values, at offsets straddling word boundaries.
func TestGet64Window(t *testing.T) {
	for _, bc := range []uint{1, 5, 12, 31, 32} {
		v, vals := lcgFill(bc, 300, 99)
		mask := uint64(1)<<bc - 1
		for i := 0; i < 300; i++ {
			got := v.Get64(uint64(i)*uint64(bc)) & mask
			if got != uint64(vals[i]) {
				t.Fatalf("bitcase %d row %d: Get64 window = %d, want %d", bc, i, got, vals[i])
			}
		}
	}
}

// TestUnpackBatchMatchesGet covers every bitcase 1..32 with batch spans that
// start unaligned and end mid-batch: the batched decode must agree with the
// scalar Get at every position.
func TestUnpackBatchMatchesGet(t *testing.T) {
	for bc := uint(1); bc <= 32; bc++ {
		n := 2*BatchSize + 137
		v, vals := lcgFill(bc, n, uint32(bc)*2654435761)
		for _, from := range []int{0, 1, 63, 64, 65, BatchSize - 1, BatchSize, BatchSize + 7} {
			for _, span := range []int{0, 1, 31, BatchSize, BatchSize + 13, n - from} {
				if from+span > n {
					continue
				}
				dst := make([]uint32, span)
				v.UnpackBatch(from, dst)
				for i, got := range dst {
					if got != vals[from+i] {
						t.Fatalf("bitcase %d from=%d span=%d: pos %d = %d, want %d",
							bc, from, span, i, got, vals[from+i])
					}
				}
			}
		}
	}
}

// TestBatchedKernelsMatchScalar is the differential property test of the
// tentpole: for random bitcases, ranges, and batch-boundary offsets
// (including spans that are not a multiple of BatchSize), every batched
// kernel must be bit-identical to its retained scalar reference.
func TestBatchedKernelsMatchScalar(t *testing.T) {
	f := func(seed uint32, bcRaw uint8, loRaw, hiRaw uint32, fromRaw, spanRaw uint16) bool {
		bc := uint(bcRaw%32) + 1
		n := BatchSize + int(seed%uint32(2*BatchSize+100))
		v, _ := lcgFill(bc, n, seed)
		max := uint32(uint64(1)<<bc - 1)
		lo, hi := loRaw&max, hiRaw&max
		from := int(fromRaw) % n
		to := from + int(spanRaw)%(n-from) + 1

		want := v.scanRangeScalar(lo, hi, from, to, nil)
		got := v.ScanRange(lo, hi, from, to, nil)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		if v.CountRange(lo, hi, from, to) != v.countRangeScalar(lo, hi, from, to) {
			return false
		}
		dstB := make([]uint64, (n+63)/64)
		dstS := make([]uint64, (n+63)/64)
		if v.ScanRangeBitvector(lo, hi, from, to, dstB) != v.scanRangeBitvectorScalar(lo, hi, from, to, dstS) {
			return false
		}
		for i := range dstB {
			if dstB[i] != dstS[i] {
				return false
			}
		}
		// In-list kernel: a set of a few pseudo-random vids. The set domain
		// is capped (Contains handles out-of-range vids), keeping the fixture
		// small at wide bitcases.
		setMax := max
		if setMax > 1<<16 {
			setMax = 1<<16 - 1
		}
		set := NewVidSet(int(setMax) + 1)
		s := seed ^ 0xdeadbeef
		for i := 0; i < 5; i++ {
			s = s*1664525 + 1013904223
			set.Add(s & setMax)
		}
		wantIL := v.scanInListScalar(set, from, to, nil)
		gotIL := v.ScanInList(set, from, to, nil)
		if len(gotIL) != len(wantIL) {
			return false
		}
		for i := range gotIL {
			if gotIL[i] != wantIL[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestScanSharedMatchesPrivateScans pins the N-predicate shared kernel:
// every member's positions must be bit-identical to a private ScanRange with
// the member's window, including empty (Lo > Hi) windows.
func TestScanSharedMatchesPrivateScans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		bc := uint(rng.Intn(32)) + 1
		n := BatchSize/2 + rng.Intn(3*BatchSize)
		v, _ := lcgFill(bc, n, rng.Uint32())
		max := uint32(uint64(1)<<bc - 1)
		from := rng.Intn(n)
		to := from + rng.Intn(n-from) + 1
		preds := make([]SharedRange, 1+rng.Intn(8))
		for i := range preds {
			preds[i] = SharedRange{Lo: rng.Uint32() & max, Hi: rng.Uint32() & max}
			// Leave some genuinely empty windows in place.
			if rng.Intn(4) > 0 && preds[i].Lo > preds[i].Hi {
				preds[i].Lo, preds[i].Hi = preds[i].Hi, preds[i].Lo
			}
		}
		outs := v.ScanShared(preds, from, to, make([][]uint32, len(preds)))
		for m, pr := range preds {
			want := v.scanRangeScalar(pr.Lo, pr.Hi, from, to, nil)
			if len(outs[m]) != len(want) {
				t.Fatalf("iter %d member %d: %d matches, want %d", iter, m, len(outs[m]), len(want))
			}
			for i := range want {
				if outs[m][i] != want[i] {
					t.Fatalf("iter %d member %d: position %d differs", iter, m, i)
				}
			}
		}
	}
}

// TestMaterializeBatchedVsScalar covers the three position-list shapes the
// output phase sees: dense sorted (scan results), sparse sorted, and
// vid-major unsorted (index lookups).
func TestMaterializeBatchedVsScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, 3*BatchSize+77)
	for i := range vals {
		vals[i] = rng.Int63n(5000)
	}
	c := Build("m", vals, true)
	shapes := map[string][]uint32{}
	var dense []uint32
	for i := 0; i < c.Rows; i++ {
		if rng.Intn(10) > 0 {
			dense = append(dense, uint32(i))
		}
	}
	shapes["dense"] = dense
	var sparse []uint32
	for i := 0; i < c.Rows; i += 1 + rng.Intn(40) {
		sparse = append(sparse, uint32(i))
	}
	shapes["sparse"] = sparse
	lo, hi, _ := c.EncodePredicate(0, 2500)
	shapes["vid-major"] = c.IndexLookupPositions(lo, hi, nil)
	shapes["empty"] = nil
	for name, positions := range shapes {
		got := make([]int64, len(positions))
		want := make([]int64, len(positions))
		c.Materialize(positions, got)
		c.materializeScalar(positions, want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: position %d: got %d, want %d", name, i, got[i], want[i])
			}
		}
	}
	// MaterializeRange against per-row Value.
	out := make([]int64, c.Rows)
	c.MaterializeRange(0, c.Rows, out)
	for i := range out {
		if out[i] != c.Value(i) {
			t.Fatalf("MaterializeRange row %d: got %d, want %d", i, out[i], c.Value(i))
		}
	}
}

// deltaColumn builds a real column with a delta holding both updates and
// inserts, the fixture for the delta-union differential tests.
func deltaColumn(t *testing.T, rows int, seed int64) *Column {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = rng.Int63n(10_000)
	}
	c := Build("d", vals, false)
	c.Delta = delta.New(2, false)
	for i := 0; i < rows/4; i++ {
		c.Delta.Update(rng.Intn(2), rng.Intn(rows), rng.Int63n(10_000))
	}
	for i := 0; i < rows/8; i++ {
		c.Delta.Insert(rng.Intn(2), rng.Int63n(10_000))
	}
	return c
}

// TestCountMatchesWithDeltaBatchedVsScalar pins the compare-on-codes count
// (vid-window count + per-updated-row correction) against the retained
// per-row scalar union scan, across predicate windows including empty and
// all-matching ones.
func TestCountMatchesWithDeltaBatchedVsScalar(t *testing.T) {
	for _, rows := range []int{100, BatchSize + 33, 2*BatchSize + 1} {
		c := deltaColumn(t, rows, int64(rows))
		for _, pr := range [][2]int64{{0, 10_000}, {2000, 4000}, {9999, 9999}, {5000, 4000}, {-50, -1}} {
			got := c.CountMatchesWithDelta(pr[0], pr[1])
			want := c.countMatchesWithDeltaScalar(pr[0], pr[1])
			if got != want {
				t.Fatalf("rows=%d [%d,%d]: got %d, want %d", rows, pr[0], pr[1], got, want)
			}
		}
		// A column that was never written takes the pure batched-count path.
		noDelta := Build("nd", []int64{5, 1, 5, 9, 5}, false)
		if got, want := noDelta.CountMatchesWithDelta(5, 9), noDelta.countMatchesWithDeltaScalar(5, 9); got != want {
			t.Fatalf("no-delta: got %d, want %d", got, want)
		}
	}
}

// TestMergedValuesAtBatchedVsScalar pins the batched merge materialization
// (bulk main decode + overlay) against the scalar reference, at both the
// current watermark and an older snapshot.
func TestMergedValuesAtBatchedVsScalar(t *testing.T) {
	c := deltaColumn(t, BatchSize+200, 42)
	snaps := []delta.Snapshot{c.Delta.Snapshot()}
	// Grow the delta past the first snapshot so snapshot-bounding is
	// exercised too.
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 50; i++ {
		c.Delta.Update(rng.Intn(2), rng.Intn(c.Rows), rng.Int63n(10_000))
		c.Delta.Insert(rng.Intn(2), rng.Int63n(10_000))
	}
	snaps = append(snaps, c.Delta.Snapshot())
	for si, snap := range snaps {
		got := c.MergedValuesAt(snap)
		want := c.mergedValuesAtScalar(snap)
		if len(got) != len(want) {
			t.Fatalf("snap %d: %d values, want %d", si, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("snap %d: row %d: got %d, want %d", si, i, got[i], want[i])
			}
		}
	}
}

// TestValuesWithDeltaMatchesPointLookups pins the bulk batched overlay
// decode against the per-row point API.
func TestValuesWithDeltaMatchesPointLookups(t *testing.T) {
	c := deltaColumn(t, 800, 5)
	from, to := 13, 777
	out := make([]int64, to-from)
	c.ValuesWithDelta(from, to, out)
	for i := range out {
		if want := c.ValueWithDelta(from + i); out[i] != want {
			t.Fatalf("row %d: got %d, want %d", from+i, out[i], want)
		}
	}
	// No-delta column: pure batched decode.
	nd := Build("nd", []int64{3, 1, 4, 1, 5, 9, 2, 6}, false)
	ndOut := make([]int64, nd.Rows)
	nd.ValuesWithDelta(0, nd.Rows, ndOut)
	for i := range ndOut {
		if ndOut[i] != nd.Value(i) {
			t.Fatalf("no-delta row %d: got %d, want %d", i, ndOut[i], nd.Value(i))
		}
	}
}
