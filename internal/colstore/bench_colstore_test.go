package colstore

// Kernel microbenchmarks of the batched chunk hot path, one per data-touching
// kernel family, across narrow/medium/wide bitcases (4/12/20/32 — an aligned
// fast-path case, two carry-loop cases, and the widest case). Each reports
// ns/row so the CI perf-regression gate (cmd/benchdiff over the BENCH_<run>
// artifacts) can diff kernel throughput run over run; the /scalar variants
// benchmark the retained scalar references, so the batched-vs-scalar margin
// is part of the recorded trajectory too.

import (
	"fmt"
	"testing"
	"time"
)

const benchRows = 1 << 20

// benchVector packs benchRows pseudo-random codes at the given bitcase. The
// code domain is capped so materialization benchmarks can dictionary-gather
// with a realistically sized dictionary.
func benchVector(bc uint) (*PackedVector, uint32) {
	max := uint32(uint64(1)<<bc - 1)
	if max > 1<<20-1 {
		max = 1<<20 - 1
	}
	v := NewPackedVector(bc, benchRows)
	s := uint32(12345)
	for i := 0; i < benchRows; i++ {
		s = s*1664525 + 1013904223
		v.Set(i, s&max)
	}
	return v, max
}

// benchWindow is a ~10%-selectivity code window over [0, max].
func benchWindow(max uint32) (lo, hi uint32) {
	return max / 4, max/4 + max/10
}

func reportNsPerRow(b *testing.B, rows int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rows), "ns/row")
}

// BenchmarkScanPositions benchmarks the find-phase range kernel: batched
// (UnpackBatch + RangeSelect) vs the retained scalar reference.
func BenchmarkScanPositions(b *testing.B) {
	for _, bc := range []uint{4, 12, 20, 32} {
		v, max := benchVector(bc)
		lo, hi := benchWindow(max)
		b.Run(fmt.Sprintf("bits=%d", bc), func(b *testing.B) {
			var out []uint32
			for i := 0; i < b.N; i++ {
				out = v.ScanRange(lo, hi, 0, benchRows, out[:0])
			}
			reportNsPerRow(b, benchRows)
		})
		b.Run(fmt.Sprintf("bits=%d/scalar", bc), func(b *testing.B) {
			var out []uint32
			for i := 0; i < b.N; i++ {
				out = v.scanRangeScalar(lo, hi, 0, benchRows, out[:0])
			}
			reportNsPerRow(b, benchRows)
		})
	}
}

// BenchmarkCountRange benchmarks the branchless batched counting kernel.
func BenchmarkCountRange(b *testing.B) {
	for _, bc := range []uint{4, 12, 20, 32} {
		v, max := benchVector(bc)
		lo, hi := benchWindow(max)
		b.Run(fmt.Sprintf("bits=%d", bc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = v.CountRange(lo, hi, 0, benchRows)
			}
			reportNsPerRow(b, benchRows)
		})
	}
}

// BenchmarkMaterialize benchmarks the output-phase gather: dense sorted
// positions take the batched window-unpack path, sparse ones the per-row
// fallback.
func BenchmarkMaterialize(b *testing.B) {
	for _, bc := range []uint{4, 12, 20, 32} {
		v, max := benchVector(bc)
		c := &Column{Name: "bench", Bitcase: bc, Rows: benchRows, IVec: v,
			Dict: make([]int64, int(max)+1)}
		for i := range c.Dict {
			c.Dict[i] = int64(i) * 3
		}
		dense := make([]uint32, 0, benchRows/2)
		sparse := make([]uint32, 0, benchRows/16)
		for i := 0; i < benchRows; i++ {
			if i%2 == 0 {
				dense = append(dense, uint32(i))
			}
			if i%16 == 0 {
				sparse = append(sparse, uint32(i))
			}
		}
		out := make([]int64, len(dense))
		b.Run(fmt.Sprintf("bits=%d/dense", bc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Materialize(dense, out[:len(dense)])
			}
			reportNsPerRow(b, len(dense))
		})
		b.Run(fmt.Sprintf("bits=%d/dense/scalar", bc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.materializeScalar(dense, out[:len(dense)])
			}
			reportNsPerRow(b, len(dense))
		})
		b.Run(fmt.Sprintf("bits=%d/sparse", bc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Materialize(sparse, out[:len(sparse)])
			}
			reportNsPerRow(b, len(sparse))
		})
	}
}

// BenchmarkSharedPred benchmarks the N-predicate shared-scan kernel against
// N private scans of the same windows: the decode-once/compare-many claim of
// the shared-scan cost model (exec.Costs.SharedPredCyclesPerByte), measured
// on real code. ns/row is per physical row streamed, so the shared/private
// ratio is the cohort's compute saving at n members.
func BenchmarkSharedPred(b *testing.B) {
	const nPreds = 8
	for _, bc := range []uint{4, 12, 20, 32} {
		v, max := benchVector(bc)
		preds := make([]SharedRange, nPreds)
		for i := range preds {
			lo := max / uint32(nPreds) * uint32(i)
			preds[i] = SharedRange{Lo: lo, Hi: lo + max/10}
		}
		outs := make([][]uint32, nPreds)
		b.Run(fmt.Sprintf("bits=%d/n=%d", bc, nPreds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for m := range outs {
					outs[m] = outs[m][:0]
				}
				outs = v.ScanShared(preds, 0, benchRows, outs)
			}
			reportNsPerRow(b, benchRows)
		})
		b.Run(fmt.Sprintf("bits=%d/n=%d/private", bc, nPreds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for m, pr := range preds {
					outs[m] = v.ScanRange(pr.Lo, pr.Hi, 0, benchRows, outs[m][:0])
				}
			}
			reportNsPerRow(b, benchRows)
		})
	}
}

// sinkInt keeps counting benchmarks from being optimized away.
var sinkInt int

// minPairSeconds times fa and fb alternately and returns each one's fastest
// pass. Interleaving keeps clock-frequency drift and scheduler noise from
// biasing one side, which matters on shared single-vCPU CI machines.
func minPairSeconds(reps int, fa, fb func()) (a, b float64) {
	for r := 0; r < reps; r++ {
		ta := time.Now()
		fa()
		da := time.Since(ta).Seconds()
		tb := time.Now()
		fb()
		db := time.Since(tb).Seconds()
		if r == 0 || da < a {
			a = da
		}
		if r == 0 || db < b {
			b = db
		}
	}
	return a, b
}

// TestScanPositionsBatchedSpeedup asserts the tentpole's acceptance bar: the
// batched range kernel is at least 2x the scalar reference's row throughput
// at bitcases <= 16. Timing-based, so it is skipped in -short runs (the
// -race CI job); the full suite and the bench job exercise it.
func TestScanPositionsBatchedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive: skipped in -short runs")
	}
	for _, bc := range []uint{4, 8, 12, 16} {
		v, max := benchVector(bc)
		lo, hi := benchWindow(max)
		var out []uint32
		scalar, batched := minPairSeconds(6, func() {
			out = v.scanRangeScalar(lo, hi, 0, benchRows, out[:0])
		}, func() {
			out = v.ScanRange(lo, hi, 0, benchRows, out[:0])
		})
		speedup := scalar / batched
		t.Logf("bitcase %2d: scalar %.2f ns/row, batched %.2f ns/row, speedup %.2fx",
			bc, scalar*1e9/benchRows, batched*1e9/benchRows, speedup)
		if speedup < 2 {
			t.Errorf("bitcase %d: batched ScanRange speedup %.2fx < 2x", bc, speedup)
		}
	}
}

// TestSharedScanDecodeOnceSpeedup asserts the measured decode-once saving:
// one shared 8-predicate pass beats 8 private passes, because the window
// load, the even/odd split, and the memory traffic over the indexvector are
// paid once instead of 8 times. The floor here is deliberately conservative
// (1.15x) so the test stays green on noisy shared runners; the actual ratio
// (typically 1.3-1.8x on this kernel) is tracked by BenchmarkSharedPred and
// the CI perf-regression gate.
func TestSharedScanDecodeOnceSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive: skipped in -short runs")
	}
	const nPreds = 8
	for _, bc := range []uint{4, 12} {
		v, max := benchVector(bc)
		preds := make([]SharedRange, nPreds)
		for i := range preds {
			lo := max / uint32(nPreds) * uint32(i)
			preds[i] = SharedRange{Lo: lo, Hi: lo + max/10}
		}
		outs := make([][]uint32, nPreds)
		private, shared := minPairSeconds(6, func() {
			for m, pr := range preds {
				outs[m] = v.ScanRange(pr.Lo, pr.Hi, 0, benchRows, outs[m][:0])
			}
		}, func() {
			for m := range outs {
				outs[m] = outs[m][:0]
			}
			outs = v.ScanShared(preds, 0, benchRows, outs)
		})
		speedup := private / shared
		t.Logf("bitcase %2d, n=%d: private %.2f ns/row, shared %.2f ns/row, speedup %.2fx",
			bc, nPreds, private*1e9/benchRows, shared*1e9/benchRows, speedup)
		if speedup < 1.15 {
			t.Errorf("bitcase %d: shared %d-predicate pass speedup %.2fx < 1.15x", bc, nPreds, speedup)
		}
	}
}
