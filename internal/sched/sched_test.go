package sched

import (
	"testing"

	"numacs/internal/hw"
	"numacs/internal/metrics"
	"numacs/internal/sim"
	"numacs/internal/topology"
)

func testSched(m *topology.Machine) (*Scheduler, *sim.Engine) {
	e := sim.New(50e-6)
	h := hw.New(e, m)
	s := New(h, metrics.New(m.Sockets))
	e.AddActor(s)
	return s, e
}

// immediateTask returns a task that completes as soon as it is dispatched
// and records the socket it ran on.
func immediateTask(priority float64, affinity int, hard bool, ranOn *[]int) *Task {
	return &Task{
		Priority:     priority,
		Affinity:     affinity,
		Hard:         hard,
		CallerSocket: 0,
		Run: func(w *Worker, done func()) {
			*ranOn = append(*ranOn, w.Socket())
			done()
		},
	}
}

func TestWorkerCoverageMatchesHardwareContexts(t *testing.T) {
	for _, m := range []*topology.Machine{topology.FourSocketIvyBridge(), topology.ThirtyTwoSocketIvyBridge()} {
		s, _ := testSched(m)
		total := 0
		perSocket := make(map[int]int)
		for _, tg := range s.TGs {
			total += len(tg.Workers)
			perSocket[tg.Socket] += len(tg.Workers)
		}
		if total != m.TotalThreads() {
			t.Fatalf("%s: %d workers, want %d", m.Name, total, m.TotalThreads())
		}
		for sock := 0; sock < m.Sockets; sock++ {
			if perSocket[sock] != m.ThreadsPerSocket() {
				t.Fatalf("%s: socket %d has %d workers", m.Name, sock, perSocket[sock])
			}
		}
	}
}

func TestTGsPerSocketRule(t *testing.T) {
	if TGsPerSocket(4) != 1 || TGsPerSocket(8) != 1 {
		t.Fatal("small topologies should have one TG per socket")
	}
	if TGsPerSocket(32) != 2 {
		t.Fatal("large topologies should have two TGs per socket")
	}
	s, _ := testSched(topology.ThirtyTwoSocketIvyBridge())
	if len(s.TGs) != 64 {
		t.Fatalf("32-socket machine has %d TGs, want 64", len(s.TGs))
	}
}

func TestAffinityRespected(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	var ran []int
	for i := 0; i < 8; i++ {
		s.Submit(immediateTask(0, 2, false, &ran))
	}
	e.Step()
	if len(ran) != 8 {
		t.Fatalf("%d tasks ran, want 8", len(ran))
	}
	for _, sock := range ran {
		if sock != 2 {
			t.Fatalf("task with affinity 2 ran on socket %d", sock)
		}
	}
}

func TestNoAffinityRunsOnCallerSocket(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	var ran []int
	task := immediateTask(0, -1, false, &ran)
	task.CallerSocket = 3
	s.Submit(task)
	e.Step()
	if len(ran) != 1 || ran[0] != 3 {
		t.Fatalf("ran on %v, want socket 3", ran)
	}
}

func TestPriorityOrder(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	// Occupy every worker of socket 0 with long tasks so queued tasks are
	// ordered strictly by priority when capacity frees up.
	var order []float64
	blockDone := make([]func(), 0)
	nWorkers := 30
	for i := 0; i < nWorkers; i++ {
		s.Submit(&Task{
			Affinity: 0, Hard: true, Priority: -1,
			Run: func(w *Worker, done func()) { blockDone = append(blockDone, done) },
		})
	}
	e.Step()
	// Now queue tasks in shuffled priority order.
	for _, p := range []float64{5, 1, 4, 2, 3} {
		pp := p
		s.Submit(&Task{
			Affinity: 0, Hard: true, Priority: pp,
			Run: func(w *Worker, done func()) {
				order = append(order, pp)
				done()
			},
		})
	}
	// Release one worker at a time; queued tasks must run lowest-priority-
	// value first.
	for i := 0; i < 5; i++ {
		blockDone[i]()
		e.Step()
	}
	want := []float64{1, 2, 3, 4, 5}
	if len(order) != 5 {
		t.Fatalf("ran %d tasks, want 5", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOTiebreakWithinPriority(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	var order []int
	blockDone := []func(){}
	for i := 0; i < 30; i++ {
		s.Submit(&Task{Affinity: 0, Hard: true, Priority: -1,
			Run: func(w *Worker, done func()) { blockDone = append(blockDone, done) }})
	}
	e.Step()
	for i := 0; i < 4; i++ {
		id := i
		s.Submit(&Task{Affinity: 0, Hard: true, Priority: 7,
			Run: func(w *Worker, done func()) { order = append(order, id); done() }})
	}
	for i := 0; i < 4; i++ {
		blockDone[i]()
		e.Step()
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestInterSocketStealingOfNormalTasks(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	var ran []int
	// 120 tasks bound for socket 0's queue; workers of other sockets should
	// steal some.
	for i := 0; i < 120; i++ {
		s.Submit(immediateTask(0, 0, false, &ran))
	}
	e.Step()
	if len(ran) != 120 {
		t.Fatalf("%d ran", len(ran))
	}
	stolen := 0
	for _, sock := range ran {
		if sock != 0 {
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("expected inter-socket steals of normal tasks")
	}
	if s.Counters.TasksStolen != uint64(stolen) {
		t.Fatalf("steal counter = %d, observed %d", s.Counters.TasksStolen, stolen)
	}
}

func TestHardTasksNeverCrossSockets(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	var ran []int
	for i := 0; i < 200; i++ {
		s.Submit(immediateTask(0, 1, true, &ran))
	}
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if len(ran) != 200 {
		t.Fatalf("%d ran, want 200", len(ran))
	}
	for _, sock := range ran {
		if sock != 1 {
			t.Fatalf("hard task executed on socket %d", sock)
		}
	}
	if s.Counters.TasksStolen != 0 {
		t.Fatalf("hard tasks counted as stolen: %d", s.Counters.TasksStolen)
	}
}

func TestIntraSocketStealingFromHardQueues(t *testing.T) {
	// On the 32-socket machine each socket has two TGs; hard tasks queued on
	// one TG may be executed by the other TG of the same socket.
	m := topology.ThirtyTwoSocketIvyBridge()
	s, e := testSched(m)
	var ran []int
	perTG := m.ThreadsPerSocket() / 2
	// More hard tasks than one TG's workers can start in one tick.
	for i := 0; i < perTG*2; i++ {
		s.Submit(immediateTask(0, 5, true, &ran))
	}
	e.Step()
	if len(ran) != perTG*2 {
		t.Fatalf("%d ran, want %d", len(ran), perTG*2)
	}
	for _, sock := range ran {
		if sock != 5 {
			t.Fatalf("hard task left socket 5: ran on %d", sock)
		}
	}
}

func TestStealDisabled(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	s.StealEnabled = false
	var ran []int
	for i := 0; i < 120; i++ {
		s.Submit(immediateTask(0, 0, false, &ran))
	}
	for i := 0; i < 10; i++ {
		e.Step()
	}
	for _, sock := range ran {
		if sock != 0 {
			t.Fatal("steal disabled but task crossed sockets")
		}
	}
}

func TestAsyncTaskCompletion(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := sim.New(50e-6)
	h := hw.New(e, m)
	s := New(h, metrics.New(m.Sockets))
	e.AddActor(s)
	finished := false
	s.Submit(&Task{
		Affinity: 0,
		Run: func(w *Worker, done func()) {
			// Simulate a streaming phase: 1 MiB local scan.
			demands, _ := h.StreamDemands(w.Socket(), 0, w.CoreRes, 0.5)
			e.StartFlow(&sim.Flow{
				Remaining: 1 << 20,
				RateCap:   m.StreamRate(w.Socket(), 0),
				Demands:   demands,
				OnDone: func() {
					finished = true
					done()
				},
			})
		},
	})
	e.Run(0.01)
	if !finished {
		t.Fatal("flow-backed task did not finish")
	}
	if s.Counters.TasksExecuted != 1 {
		t.Fatalf("TasksExecuted = %d", s.Counters.TasksExecuted)
	}
	if s.Counters.WorkerBusySeconds <= 0 {
		t.Fatal("busy time not recorded")
	}
	if s.WorkingWorkers() != 0 {
		t.Fatal("worker not released")
	}
}

func TestWatchdogRuns(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	e.Run(0.01)
	if s.WatchdogRuns == 0 {
		t.Fatal("watchdog never ran")
	}
}

func TestSubmitTwicePanics(t *testing.T) {
	s, _ := testSched(topology.FourSocketIvyBridge())
	task := &Task{Affinity: 0, Run: func(w *Worker, done func()) { done() }}
	s.Submit(task)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double submit")
		}
	}()
	s.Submit(task)
}
