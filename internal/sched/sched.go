// Package sched implements the NUMA-aware task scheduler of Section 5.1:
// thread groups (TGs) per socket, each with a normal priority queue
// (stealable by any socket) and a hard priority queue (stealable only within
// the socket), worker threads in working/free/parked states, statement-
// timestamp priorities, a stealing order of own TG -> other TGs of the same
// socket -> TGs of other sockets, and a watchdog that keeps thread groups
// saturated.
package sched

import (
	"container/heap"
	"fmt"

	"numacs/internal/hw"
	"numacs/internal/metrics"
	"numacs/internal/sim"
)

// Task is a schedulable unit of work. Execution is asynchronous: the
// scheduler invokes Run with the worker that picked the task up, and the
// task calls the supplied done function when it finishes (typically from a
// flow-completion callback).
type Task struct {
	// Priority orders tasks; lower values run first. The engine uses the
	// issue timestamp of the SQL statement, so tasks of older queries are
	// preferred and a query's tasks complete close together (Section 5.1).
	Priority float64
	// Affinity is the socket the task wants to run on; -1 for none. A task
	// with no affinity is inserted into the queue of the TG where the caller
	// runs, for cache affinity.
	Affinity int
	// Hard marks the task as bound: it is placed in the hard priority queue
	// and can only be executed by workers of its socket.
	Hard bool
	// CallerSocket is where the task creator runs; used for no-affinity
	// insertion.
	CallerSocket int
	// Run starts execution on a worker. The implementation must eventually
	// call done (it may do so synchronously for zero-cost tasks).
	Run func(w *Worker, done func())
	// OnStart, when non-nil, is invoked at pickup time — before Run — with
	// the executing worker and whether the pickup was a cross-socket steal.
	// The flight recorder uses it to stamp first-task times and per-socket
	// task counts; it must only observe, never reschedule.
	OnStart func(w *Worker, stolen bool)

	seq      uint64
	homeTG   int // TG the task was enqueued on
	enqueued bool
}

// State is a worker-thread state (Figure 6).
type State int

const (
	// Working: currently handling a task.
	Working State = iota
	// Free: waiting for a task, wakes up periodically.
	Free
	// Parked: sleeping until explicitly woken; used when free threads
	// already cover the hardware contexts.
	Parked
	// Inactive: blocked in the kernel on a synchronization primitive while
	// handling a task. Tasks in this simulator do not block, but the state
	// is modelled so the watchdog's accounting matches the paper.
	Inactive
)

// String names the worker state as in Figure 6.
func (s State) String() string {
	switch s {
	case Working:
		return "working"
	case Free:
		return "free"
	case Parked:
		return "parked"
	case Inactive:
		return "inactive"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Worker is a worker thread of a thread group.
type Worker struct {
	ID    int
	TG    *ThreadGroup
	State State

	// CoreRes is the compute resource of the core this worker's hardware
	// thread belongs to.
	CoreRes sim.ResourceID

	task      *Task
	busySince float64
	// Bound reports whether the worker is currently bound to its TG's
	// hardware contexts (set while handling tasks with an affinity).
	Bound bool
}

// Socket returns the socket the worker runs on.
func (w *Worker) Socket() int { return w.TG.Socket }

// ThreadGroup is a per-socket group of workers with two priority queues.
type ThreadGroup struct {
	ID     int
	Socket int

	queue     taskHeap // stealable by any socket
	hardQueue taskHeap // stealable only within the socket

	Workers []*Worker
}

// QueuedTasks returns the number of tasks waiting in both queues.
func (tg *ThreadGroup) QueuedTasks() int { return tg.queue.Len() + tg.hardQueue.Len() }

// Scheduler is the NUMA-aware task scheduler.
type Scheduler struct {
	HW       *hw.Hardware
	Counters *metrics.Counters

	TGs      []*ThreadGroup
	bySocket [][]*ThreadGroup

	// StealEnabled globally enables work stealing (true in the paper's
	// scheduler; the ablation benchmarks switch it off).
	StealEnabled bool

	// IgnorePriority makes the queues FIFO instead of statement-timestamp
	// ordered — the ablation for the paper's priority scheme, which makes a
	// query's tasks complete close together (Section 5.1).
	IgnorePriority bool

	// WatchdogPeriod is how often the watchdog actor runs.
	WatchdogPeriod float64

	nextSeq      uint64
	lastWatchdog float64

	// offline marks sockets taken down by fault injection (nil until the
	// first SetSocketOnline call, so the disabled path costs one nil check).
	// Submissions targeting an offline socket are redirected to the nearest
	// online one, and the socket's workers park until it returns.
	offline []bool

	// Watchdog statistics (Section 5.1): saturation observations.
	WatchdogRuns        uint64
	UnsaturatedObserved uint64
}

// TGsPerSocket returns the paper's sizing rule: small topologies get one
// thread group per socket, large ones two (to reduce queue contention).
func TGsPerSocket(sockets int) int {
	if sockets >= 16 {
		return 2
	}
	return 1
}

// New builds a scheduler with workers covering every hardware context.
func New(h *hw.Hardware, counters *metrics.Counters) *Scheduler {
	m := h.Machine
	s := &Scheduler{
		HW:             h,
		Counters:       counters,
		StealEnabled:   true,
		WatchdogPeriod: 1e-3,
	}
	perSocket := TGsPerSocket(m.Sockets)
	s.bySocket = make([][]*ThreadGroup, m.Sockets)
	id := 0
	for sock := 0; sock < m.Sockets; sock++ {
		coresPerTG := (m.CoresPerSocket + perSocket - 1) / perSocket
		for g := 0; g < perSocket; g++ {
			tg := &ThreadGroup{ID: id, Socket: sock}
			id++
			loCore := g * coresPerTG
			hiCore := loCore + coresPerTG
			if hiCore > m.CoresPerSocket {
				hiCore = m.CoresPerSocket
			}
			wid := 0
			for c := loCore; c < hiCore; c++ {
				for t := 0; t < m.ThreadsPerCore; t++ {
					tg.Workers = append(tg.Workers, &Worker{
						ID:      wid,
						TG:      tg,
						State:   Free,
						CoreRes: h.Core[sock][c],
					})
					wid++
				}
			}
			s.TGs = append(s.TGs, tg)
			s.bySocket[sock] = append(s.bySocket[sock], tg)
		}
	}
	return s
}

// Submit enqueues a task. Tasks with an affinity go to a TG of that socket
// (the less loaded one); hard tasks go to its hard queue. Tasks without an
// affinity go to a TG of the caller's socket.
func (s *Scheduler) Submit(t *Task) {
	if t.enqueued {
		panic("sched: task submitted twice")
	}
	t.enqueued = true
	t.seq = s.nextSeq
	s.nextSeq++
	if s.IgnorePriority {
		t.Priority = 0 // FIFO via the seq tiebreak
	}
	socket := t.Affinity
	if socket < 0 {
		socket = t.CallerSocket
	}
	if s.offline != nil && s.offline[socket] {
		// Fault injection took the target socket down: re-place the task on
		// the nearest online socket. Hard tasks stay hard — they bind to the
		// fallback socket instead (their data is still reachable remotely).
		socket = s.nearestOnline(socket)
	}
	tgs := s.bySocket[socket]
	tg := tgs[0]
	for _, cand := range tgs[1:] {
		if cand.QueuedTasks() < tg.QueuedTasks() {
			tg = cand
		}
	}
	t.homeTG = tg.ID
	if t.Hard {
		heap.Push(&tg.hardQueue, t)
	} else {
		heap.Push(&tg.queue, t)
	}
}

// SocketOnline reports whether a socket's worker pool is available (true
// until fault injection takes it offline with SetSocketOnline).
func (s *Scheduler) SocketOnline(socket int) bool {
	return s.offline == nil || !s.offline[socket]
}

// nearestOnline returns the first online socket at increasing offset from the
// given one (deterministic re-placement order). It panics when every socket
// is offline — the machine cannot run any task then.
func (s *Scheduler) nearestOnline(socket int) int {
	n := len(s.bySocket)
	for off := 0; off < n; off++ {
		if cand := (socket + off) % n; !s.offline[cand] {
			return cand
		}
	}
	panic("sched: all sockets offline")
}

// SetSocketOnline transitions a socket between online and offline — the
// chaos layer's socket-failure events. Taking a socket offline drains both
// queues of its thread groups and re-places every queued task through Submit
// (which redirects to the nearest online socket), then parks the socket's
// free workers; workers mid-task finish their task and park on completion.
// Bringing it back online un-parks them. Returns the number of queued tasks
// re-placed (0 for an online transition or when already in the target state).
func (s *Scheduler) SetSocketOnline(socket int, online bool) int {
	if s.offline == nil {
		if online {
			return 0
		}
		s.offline = make([]bool, len(s.bySocket))
	}
	if s.offline[socket] == !online {
		return 0
	}
	s.offline[socket] = !online
	if online {
		for _, tg := range s.bySocket[socket] {
			for _, w := range tg.Workers {
				if w.State == Parked {
					w.State = Free
				}
			}
		}
		return 0
	}
	// Drain and re-place the dead socket's queues. heap.Pop yields priority
	// order, and Submit assigns fresh seq numbers, so the re-placed tasks
	// keep their relative order on the fallback socket's queues.
	var drained []*Task
	for _, tg := range s.bySocket[socket] {
		for tg.queue.Len() > 0 {
			drained = append(drained, heap.Pop(&tg.queue).(*Task))
		}
		for tg.hardQueue.Len() > 0 {
			drained = append(drained, heap.Pop(&tg.hardQueue).(*Task))
		}
		for _, w := range tg.Workers {
			if w.State == Free {
				w.State = Parked
			}
		}
	}
	for _, t := range drained {
		t.enqueued = false
		s.Submit(t)
	}
	return len(drained)
}

// QueuedTasks returns the machine-wide queue depth.
func (s *Scheduler) QueuedTasks() int {
	n := 0
	for _, tg := range s.TGs {
		n += tg.QueuedTasks()
	}
	return n
}

// WorkingWorkers returns the number of workers currently executing tasks.
func (s *Scheduler) WorkingWorkers() int {
	n := 0
	for _, tg := range s.TGs {
		for _, w := range tg.Workers {
			if w.State == Working {
				n++
			}
		}
	}
	return n
}

// Saturation is a point-in-time scheduler saturation snapshot: worker-state
// counts and per-thread-group queue depths. It is the signal the admission
// controller's elastic concurrency loop feeds on (free workers and shallow
// queues mean the engine can absorb more statements; deep queues mean the
// fan-out already outruns the workers) and what the watchdog samples into
// the metrics counters.
type Saturation struct {
	// Working, Free, Parked and Inactive count workers by state.
	Working, Free, Parked, Inactive int
	// QueueDepths holds each thread group's queued tasks (normal + hard), in
	// TG id order.
	QueueDepths []int
	// Queued is the machine-wide queued-task total (the sum of QueueDepths).
	Queued int
}

// Workers returns the total worker count of the snapshot.
func (s Saturation) Workers() int { return s.Working + s.Free + s.Parked + s.Inactive }

// Saturation takes a saturation snapshot of all thread groups.
func (s *Scheduler) Saturation() Saturation {
	snap := Saturation{QueueDepths: make([]int, len(s.TGs))}
	for i, tg := range s.TGs {
		d := tg.QueuedTasks()
		snap.QueueDepths[i] = d
		snap.Queued += d
		for _, w := range tg.Workers {
			switch w.State {
			case Working:
				snap.Working++
			case Free:
				snap.Free++
			case Parked:
				snap.Parked++
			case Inactive:
				snap.Inactive++
			}
		}
	}
	return snap
}

// FreeWorkers returns the number of workers in the Free state.
func (s *Scheduler) FreeWorkers() int {
	n := 0
	for _, tg := range s.TGs {
		for _, w := range tg.Workers {
			if w.State == Free {
				n++
			}
		}
	}
	return n
}

// ParkedWorkers returns the number of workers in the Parked state.
func (s *Scheduler) ParkedWorkers() int {
	n := 0
	for _, tg := range s.TGs {
		for _, w := range tg.Workers {
			if w.State == Parked {
				n++
			}
		}
	}
	return n
}

// SocketQueueDepths returns the queued-task count per socket (thread-group
// depths folded onto their sockets).
func (s *Scheduler) SocketQueueDepths() []int {
	out := make([]int, len(s.bySocket))
	for _, tg := range s.TGs {
		out[tg.Socket] += tg.QueuedTasks()
	}
	return out
}

// Tick implements sim.Actor: the main dispatch loop. It mirrors the worker
// main loop of Section 5.1 — peek own queues, then the other TGs of the same
// socket (including their hard queues), then go around the normal queues of
// all sockets.
func (s *Scheduler) Tick(now float64) {
	// Local dispatch first: every TG serves its own queues.
	for _, tg := range s.TGs {
		for _, w := range tg.Workers {
			if w.State != Free {
				continue
			}
			t := s.popLocal(tg)
			if t == nil {
				break
			}
			s.start(w, t, now, false)
		}
	}
	// Stealing pass for workers still free.
	if s.StealEnabled {
		for _, tg := range s.TGs {
			for _, w := range tg.Workers {
				if w.State != Free {
					continue
				}
				t, interSocket := s.steal(tg)
				if t == nil {
					break
				}
				s.start(w, t, now, interSocket)
			}
		}
	}
	// Watchdog.
	if now-s.lastWatchdog >= s.WatchdogPeriod {
		s.lastWatchdog = now
		s.watchdog()
	}
}

// popLocal pops the highest-priority task across the TG's two queues.
func (s *Scheduler) popLocal(tg *ThreadGroup) *Task {
	switch {
	case tg.queue.Len() == 0 && tg.hardQueue.Len() == 0:
		return nil
	case tg.queue.Len() == 0:
		return heap.Pop(&tg.hardQueue).(*Task)
	case tg.hardQueue.Len() == 0:
		return heap.Pop(&tg.queue).(*Task)
	case taskLess(tg.hardQueue[0], tg.queue[0]):
		return heap.Pop(&tg.hardQueue).(*Task)
	default:
		return heap.Pop(&tg.queue).(*Task)
	}
}

// steal finds a task for a worker of tg: first other TGs of the same socket
// (hard queues included), then the normal queues of other sockets. Reports
// whether the steal crossed sockets.
func (s *Scheduler) steal(tg *ThreadGroup) (*Task, bool) {
	for _, other := range s.bySocket[tg.Socket] {
		if other == tg {
			continue
		}
		if t := s.popLocal(other); t != nil {
			return t, false
		}
	}
	n := len(s.bySocket)
	for off := 1; off < n; off++ {
		sock := (tg.Socket + off) % n
		for _, other := range s.bySocket[sock] {
			if other.queue.Len() > 0 {
				return heap.Pop(&other.queue).(*Task), true
			}
		}
	}
	return nil, false
}

// start hands a task to a worker.
func (s *Scheduler) start(w *Worker, t *Task, now float64, stolen bool) {
	w.State = Working
	w.task = t
	w.busySince = now
	// Binding semantics of Section 5.1: the worker binds to its TG's
	// hardware contexts while handling tasks with an affinity and unbinds
	// for tasks without one.
	w.Bound = t.Affinity >= 0
	if stolen {
		s.Counters.TasksStolen++
	}
	if t.OnStart != nil {
		t.OnStart(w, stolen)
	}
	t.Run(w, func() { s.finish(w) })
}

// finish returns a worker to the free pool.
func (s *Scheduler) finish(w *Worker) {
	now := s.HW.Engine.Now()
	dur := now - w.busySince
	s.Counters.TasksExecuted++
	s.Counters.WorkerBusySeconds += dur
	// Busy cycles feed the IPC proxy: a worker occupies its hardware context
	// for the task's wall time whether it retires instructions or stalls on
	// memory.
	s.Counters.AddCompute(w.Socket(), 0, dur*s.HW.Machine.FreqHz)
	w.task = nil
	w.State = Free
	if s.offline != nil && s.offline[w.Socket()] {
		// The socket went offline while this task ran: the worker parks
		// instead of rejoining the free pool.
		w.State = Parked
	}
}

// watchdog mirrors the paper's watchdog thread: it scans thread groups,
// counts unsaturated TGs that still have queued tasks (in the real system it
// would wake or create threads; in the simulation every hardware context
// already has a worker, so this is observability), samples the saturation
// signals into the metrics counters, and updates statistics.
func (s *Scheduler) watchdog() {
	s.WatchdogRuns++
	unsaturated := false
	for _, tg := range s.TGs {
		working := 0
		for _, w := range tg.Workers {
			if w.State == Working {
				working++
			}
		}
		if working < len(tg.Workers) && tg.QueuedTasks() > 0 {
			s.UnsaturatedObserved++
			unsaturated = true
		}
	}
	snap := s.Saturation()
	s.Counters.AddSaturationSample(snap.Free, snap.Parked, snap.QueueDepths, unsaturated)
}

// taskHeap is a priority heap ordered by (Priority, seq).
type taskHeap []*Task

func taskLess(a, b *Task) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (h taskHeap) Len() int            { return len(h) }
func (h taskHeap) Less(i, j int) bool  { return taskLess(h[i], h[j]) }
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
