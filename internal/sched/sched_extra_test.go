package sched

import (
	"testing"

	"numacs/internal/topology"
)

// TestStealPrefersSameSocket verifies the Section 5.1 stealing order: a free
// worker first drains its own socket's queues before going around the other
// sockets, regardless of cross-socket priorities.
func TestStealPrefersSameSocket(t *testing.T) {
	m := topology.ThirtyTwoSocketIvyBridge() // two TGs per socket
	s, e := testSched(m)
	var ran []int

	// Occupy every worker of the machine except one on socket 3 with tasks
	// that never complete.
	for i := 0; i < m.ThreadsPerSocket()-1; i++ {
		s.Submit(&Task{Affinity: 3, Hard: true, Priority: -1,
			Run: func(w *Worker, done func()) {}})
	}
	for sock := 0; sock < m.Sockets; sock++ {
		if sock == 3 {
			continue
		}
		for i := 0; i < m.ThreadsPerSocket(); i++ {
			s.Submit(&Task{Affinity: sock, Hard: true, Priority: -1,
				Run: func(w *Worker, done func()) {}})
		}
	}
	e.Step()
	if got := s.FreeWorkers(); got != 1 {
		t.Fatalf("setup: %d free workers, want exactly 1 (on socket 3)", got)
	}

	// Two candidate tasks: a same-socket one (queued on socket 3, which the
	// free worker's own TG may or may not own) and a remote one with HIGHER
	// priority on socket 7. Same-socket must still win: priority orders
	// within queues, not across sockets.
	s.Submit(&Task{Affinity: 3, Priority: 10,
		Run: func(w *Worker, done func()) { ran = append(ran, w.Socket()); done() }})
	s.Submit(&Task{Affinity: 7, Priority: 0,
		Run: func(w *Worker, done func()) { ran = append(ran, w.Socket()); done() }})
	stolenBefore := s.Counters.TasksStolen
	e.Step()
	// Both tasks complete synchronously, so the single free worker runs both
	// within one dispatch tick: the same-socket task first (local dispatch
	// precedes the stealing pass), then the remote one as an inter-socket
	// steal — still executing on socket 3.
	if len(ran) != 2 {
		t.Fatalf("dispatch tick ran %d tasks, want 2 (the lone free worker serves both)", len(ran))
	}
	if ran[0] != 3 {
		t.Fatalf("first executed task ran on socket %d, want same-socket 3", ran[0])
	}
	if ran[1] != 3 {
		t.Fatalf("stolen task ran on socket %d, want 3 (the only free worker)", ran[1])
	}
	if got := s.Counters.TasksStolen - stolenBefore; got != 1 {
		t.Fatalf("inter-socket steals = %d, want 1", got)
	}
}

// TestWorkerBindingSemantics checks the Section 5.1 binding rule: workers
// bind while handling tasks with an affinity and unbind for tasks without.
func TestWorkerBindingSemantics(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	var boundStates []bool
	s.Submit(&Task{Affinity: 1,
		Run: func(w *Worker, done func()) { boundStates = append(boundStates, w.Bound); done() }})
	s.Submit(&Task{Affinity: -1, CallerSocket: 1,
		Run: func(w *Worker, done func()) { boundStates = append(boundStates, w.Bound); done() }})
	e.Step()
	e.Step()
	if len(boundStates) != 2 {
		t.Fatalf("ran %d tasks", len(boundStates))
	}
	if !boundStates[0] {
		t.Fatal("worker not bound for affinity task")
	}
	if boundStates[1] {
		t.Fatal("worker bound for no-affinity task")
	}
}

// TestIgnorePriorityIsFIFO verifies the ablation knob.
func TestIgnorePriorityIsFIFO(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	s.IgnorePriority = true
	var order []int
	blockDone := []func(){}
	for i := 0; i < 30; i++ {
		s.Submit(&Task{Affinity: 0, Hard: true, Priority: -5,
			Run: func(w *Worker, done func()) { blockDone = append(blockDone, done) }})
	}
	e.Step()
	// Submit with decreasing priorities; FIFO must ignore them.
	for i := 0; i < 4; i++ {
		id := i
		s.Submit(&Task{Affinity: 0, Hard: true, Priority: float64(10 - i),
			Run: func(w *Worker, done func()) { order = append(order, id); done() }})
	}
	for i := 0; i < 4; i++ {
		blockDone[i]()
		e.Step()
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated with IgnorePriority: %v", order)
		}
	}
}

// TestQueuedTasksAccounting checks the queue-depth introspection used by the
// watchdog and the adaptive layer.
func TestQueuedTasksAccounting(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	for i := 0; i < 200; i++ {
		s.Submit(&Task{Affinity: 2, Hard: true, Priority: 0,
			Run: func(w *Worker, done func()) {}})
	}
	// Nothing dispatched yet.
	if got := s.QueuedTasks(); got != 200 {
		t.Fatalf("queued = %d before dispatch", got)
	}
	e.Step()
	// 30 workers on socket 2 started tasks (they never finish).
	if got := s.WorkingWorkers(); got != 30 {
		t.Fatalf("working = %d, want 30", got)
	}
	if got := s.QueuedTasks(); got != 170 {
		t.Fatalf("queued = %d, want 170", got)
	}
}

// TestSaturationSnapshot checks the saturation exports the admission
// controller's elastic concurrency loop feeds on: worker-state counts,
// per-TG and per-socket queue depths.
func TestSaturationSnapshot(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	s, e := testSched(m)
	perSocket := m.ThreadsPerSocket() // 30
	// Saturate socket 1 and queue 12 extra hard tasks there; leave the rest
	// of the machine idle.
	for i := 0; i < perSocket+12; i++ {
		s.Submit(&Task{Affinity: 1, Hard: true, Priority: 0,
			Run: func(w *Worker, done func()) {}})
	}
	e.Step()
	snap := s.Saturation()
	if snap.Workers() != m.TotalThreads() {
		t.Fatalf("snapshot workers = %d, want %d", snap.Workers(), m.TotalThreads())
	}
	if snap.Working != perSocket {
		t.Fatalf("working = %d, want %d", snap.Working, perSocket)
	}
	if snap.Free != m.TotalThreads()-perSocket {
		t.Fatalf("free = %d, want %d", snap.Free, m.TotalThreads()-perSocket)
	}
	if snap.Parked != 0 || snap.Inactive != 0 {
		t.Fatalf("parked/inactive = %d/%d, want 0/0", snap.Parked, snap.Inactive)
	}
	if snap.Queued != 12 {
		t.Fatalf("queued = %d, want 12 (hard queue is socket-bound)", snap.Queued)
	}
	if len(snap.QueueDepths) != len(s.TGs) || snap.QueueDepths[1] != 12 {
		t.Fatalf("per-TG depths = %v, want 12 on TG 1", snap.QueueDepths)
	}
	if s.FreeWorkers() != snap.Free || s.ParkedWorkers() != snap.Parked {
		t.Fatal("FreeWorkers/ParkedWorkers disagree with the snapshot")
	}
	bySocket := s.SocketQueueDepths()
	if len(bySocket) != m.Sockets || bySocket[1] != 12 || bySocket[0] != 0 {
		t.Fatalf("per-socket depths = %v", bySocket)
	}
}

// TestWatchdogSamplesSaturationCounters: the watchdog exports its saturation
// observations through the metrics counters.
func TestWatchdogSamplesSaturationCounters(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	s.StealEnabled = false
	for i := 0; i < 45; i++ { // 30 run, 15 queue on socket 0's TG
		s.Submit(&Task{Affinity: 0, Hard: true, Priority: 0,
			Run: func(w *Worker, done func()) {}})
	}
	e.Run(0.01)
	c := s.Counters
	if c.SatSamples == 0 {
		t.Fatal("watchdog recorded no saturation samples")
	}
	if c.SatSamples != s.WatchdogRuns {
		t.Fatalf("samples = %d, watchdog runs = %d", c.SatSamples, s.WatchdogRuns)
	}
	if got := c.MeanQueuedTasks(); got != 15 {
		t.Fatalf("mean queued = %v, want 15 (steady backlog)", got)
	}
	if c.SatTGMaxDepth != 15 {
		t.Fatalf("max TG depth = %d, want 15", c.SatTGMaxDepth)
	}
	if got := c.MeanFreeWorkers(); got != 90 {
		t.Fatalf("mean free = %v, want 90 (three idle sockets)", got)
	}
	// Socket 0's TG is saturated (all 30 working), so no unsaturated
	// observations despite the backlog.
	if c.SatUnsaturated != 0 {
		t.Fatalf("unsaturated samples = %d, want 0", c.SatUnsaturated)
	}
}

// TestWatchdogCountsUnsaturatedTGs: a TG with queued tasks but idle workers
// is "unsaturated" — the real watchdog would wake threads there.
func TestWatchdogCountsUnsaturatedTGs(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	s.StealEnabled = false
	// A burst of blocking tasks on one socket; with stealing off, other TGs
	// stay idle and their queues empty, so no unsaturated observations are
	// expected. Then queue more than the TG can run.
	for i := 0; i < 40; i++ {
		s.Submit(&Task{Affinity: 0, Hard: true, Priority: 0,
			Run: func(w *Worker, done func()) {}})
	}
	e.Run(0.005)
	// Socket 0's TG is saturated (30 working, 10 queued): not "unsaturated".
	if s.UnsaturatedObserved != 0 {
		t.Fatalf("unsaturated observations = %d, want 0", s.UnsaturatedObserved)
	}
	if s.WatchdogRuns == 0 {
		t.Fatal("watchdog idle")
	}
}
