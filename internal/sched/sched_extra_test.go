package sched

import (
	"testing"

	"numacs/internal/topology"
)

// TestStealPrefersSameSocket verifies the Section 5.1 stealing order: a free
// worker first drains the other thread group of its own socket before going
// around the other sockets.
func TestStealPrefersSameSocket(t *testing.T) {
	m := topology.ThirtyTwoSocketIvyBridge() // two TGs per socket
	s, e := testSched(m)
	var ran []int

	// Saturate every worker of socket 3 except one TG's worth, then queue
	// one task on each of: socket 3's other TG and socket 7.
	// Simpler: put one normal task on socket 3 and one on socket 7, then let
	// a single free worker of socket 3 choose.
	perTG := m.ThreadsPerSocket() / 2

	// Occupy all workers of socket 3 except one.
	hold := 0
	for i := 0; i < m.ThreadsPerSocket()-1; i++ {
		s.Submit(&Task{Affinity: 3, Hard: true, Priority: -1,
			Run: func(w *Worker, done func()) { hold++ }})
	}
	// Occupy every worker on all other sockets so only socket 3's last
	// worker is free.
	for sock := 0; sock < m.Sockets; sock++ {
		if sock == 3 {
			continue
		}
		for i := 0; i < m.ThreadsPerSocket(); i++ {
			s.Submit(&Task{Affinity: sock, Hard: true, Priority: -1,
				Run: func(w *Worker, done func()) {}})
		}
	}
	e.Step()

	// Two candidate tasks: a same-socket one (queued on socket 3, which the
	// free worker's own TG may or may not own) and a remote one with HIGHER
	// priority on socket 7. Same-socket must still win: priority orders
	// within queues, not across sockets.
	s.Submit(&Task{Affinity: 3, Priority: 10,
		Run: func(w *Worker, done func()) { ran = append(ran, w.Socket()); done() }})
	s.Submit(&Task{Affinity: 7, Priority: 0,
		Run: func(w *Worker, done func()) { ran = append(ran, w.Socket()); done() }})
	e.Step()
	if len(ran) == 0 {
		t.Fatal("free worker picked nothing")
	}
	if ran[0] != 3 {
		t.Fatalf("first executed task ran on socket %d, want same-socket 3", ran[0])
	}
	_ = perTG
}

// TestWorkerBindingSemantics checks the Section 5.1 binding rule: workers
// bind while handling tasks with an affinity and unbind for tasks without.
func TestWorkerBindingSemantics(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	var boundStates []bool
	s.Submit(&Task{Affinity: 1,
		Run: func(w *Worker, done func()) { boundStates = append(boundStates, w.Bound); done() }})
	s.Submit(&Task{Affinity: -1, CallerSocket: 1,
		Run: func(w *Worker, done func()) { boundStates = append(boundStates, w.Bound); done() }})
	e.Step()
	e.Step()
	if len(boundStates) != 2 {
		t.Fatalf("ran %d tasks", len(boundStates))
	}
	if !boundStates[0] {
		t.Fatal("worker not bound for affinity task")
	}
	if boundStates[1] {
		t.Fatal("worker bound for no-affinity task")
	}
}

// TestIgnorePriorityIsFIFO verifies the ablation knob.
func TestIgnorePriorityIsFIFO(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	s.IgnorePriority = true
	var order []int
	blockDone := []func(){}
	for i := 0; i < 30; i++ {
		s.Submit(&Task{Affinity: 0, Hard: true, Priority: -5,
			Run: func(w *Worker, done func()) { blockDone = append(blockDone, done) }})
	}
	e.Step()
	// Submit with decreasing priorities; FIFO must ignore them.
	for i := 0; i < 4; i++ {
		id := i
		s.Submit(&Task{Affinity: 0, Hard: true, Priority: float64(10 - i),
			Run: func(w *Worker, done func()) { order = append(order, id); done() }})
	}
	for i := 0; i < 4; i++ {
		blockDone[i]()
		e.Step()
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated with IgnorePriority: %v", order)
		}
	}
}

// TestQueuedTasksAccounting checks the queue-depth introspection used by the
// watchdog and the adaptive layer.
func TestQueuedTasksAccounting(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	for i := 0; i < 200; i++ {
		s.Submit(&Task{Affinity: 2, Hard: true, Priority: 0,
			Run: func(w *Worker, done func()) {}})
	}
	// Nothing dispatched yet.
	if got := s.QueuedTasks(); got != 200 {
		t.Fatalf("queued = %d before dispatch", got)
	}
	e.Step()
	// 30 workers on socket 2 started tasks (they never finish).
	if got := s.WorkingWorkers(); got != 30 {
		t.Fatalf("working = %d, want 30", got)
	}
	if got := s.QueuedTasks(); got != 170 {
		t.Fatalf("queued = %d, want 170", got)
	}
}

// TestWatchdogCountsUnsaturatedTGs: a TG with queued tasks but idle workers
// is "unsaturated" — the real watchdog would wake threads there.
func TestWatchdogCountsUnsaturatedTGs(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	s.StealEnabled = false
	// A burst of blocking tasks on one socket; with stealing off, other TGs
	// stay idle and their queues empty, so no unsaturated observations are
	// expected. Then queue more than the TG can run.
	for i := 0; i < 40; i++ {
		s.Submit(&Task{Affinity: 0, Hard: true, Priority: 0,
			Run: func(w *Worker, done func()) {}})
	}
	e.Run(0.005)
	// Socket 0's TG is saturated (30 working, 10 queued): not "unsaturated".
	if s.UnsaturatedObserved != 0 {
		t.Fatalf("unsaturated observations = %d, want 0", s.UnsaturatedObserved)
	}
	if s.WatchdogRuns == 0 {
		t.Fatal("watchdog idle")
	}
}
