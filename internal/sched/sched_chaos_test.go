package sched

import (
	"testing"

	"numacs/internal/topology"
)

// Submissions targeting an offline socket land on the nearest online one;
// hard tasks stay hard there.
func TestOfflineRedirectsSubmissions(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	if n := s.SetSocketOnline(2, false); n != 0 {
		t.Fatalf("empty drain re-placed %d tasks", n)
	}
	if s.SocketOnline(2) || !s.SocketOnline(3) {
		t.Fatal("online bookkeeping wrong")
	}
	var ran []int
	for i := 0; i < 4; i++ {
		s.Submit(immediateTask(0, 2, i%2 == 0, &ran))
	}
	e.Step()
	if len(ran) != 4 {
		t.Fatalf("%d tasks ran, want 4", len(ran))
	}
	for _, sock := range ran {
		if sock != 3 {
			t.Fatalf("redirected task ran on socket %d, want 3 (nearest online)", sock)
		}
	}
}

// Taking a socket offline drains its queues: already-enqueued tasks re-place
// onto online sockets and still run, and the dead socket's free workers park.
func TestOfflineDrainsQueuedTasks(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	var ran []int
	for i := 0; i < 6; i++ {
		s.Submit(immediateTask(float64(i), 1, i >= 4, &ran))
	}
	if n := s.SetSocketOnline(1, false); n != 6 {
		t.Fatalf("drained %d tasks, want 6", n)
	}
	if got := s.ParkedWorkers(); got != topology.FourSocketIvyBridge().ThreadsPerSocket() {
		t.Fatalf("%d workers parked, want the whole socket", got)
	}
	e.Step()
	if len(ran) != 6 {
		t.Fatalf("%d drained tasks ran, want 6", len(ran))
	}
	for _, sock := range ran {
		if sock == 1 {
			t.Fatal("task ran on the offline socket")
		}
	}
	// Idempotent: a second offline transition is a no-op.
	if n := s.SetSocketOnline(1, false); n != 0 {
		t.Fatalf("repeated offline drained %d tasks", n)
	}
}

// Bringing a socket back un-parks its workers and submissions target it again.
func TestOnlineRestoresSocket(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	s.SetSocketOnline(2, false)
	s.SetSocketOnline(2, true)
	if s.ParkedWorkers() != 0 {
		t.Fatalf("%d workers still parked after online", s.ParkedWorkers())
	}
	var ran []int
	for i := 0; i < 4; i++ {
		s.Submit(immediateTask(0, 2, false, &ran))
	}
	e.Step()
	for _, sock := range ran {
		if sock != 2 {
			t.Fatalf("task ran on socket %d after restore, want 2", sock)
		}
	}
}

// A worker mid-task when its socket dies finishes the task and then parks
// instead of going back to Free.
func TestWorkerParksAfterTaskWhenOffline(t *testing.T) {
	s, e := testSched(topology.FourSocketIvyBridge())
	var finish func()
	s.Submit(&Task{
		Affinity: 0,
		Run: func(w *Worker, done func()) {
			finish = done
		},
	})
	e.Step()
	if finish == nil {
		t.Fatal("task never dispatched")
	}
	if s.WorkingWorkers() != 1 {
		t.Fatalf("%d working workers, want 1", s.WorkingWorkers())
	}
	s.SetSocketOnline(0, false)
	finish()
	want := topology.FourSocketIvyBridge().ThreadsPerSocket()
	if got := s.ParkedWorkers(); got != want {
		t.Fatalf("%d workers parked after finish, want %d", got, want)
	}
}

// With every socket offline a submission cannot be placed anywhere.
func TestAllSocketsOfflinePanics(t *testing.T) {
	s, _ := testSched(topology.FourSocketIvyBridge())
	for sock := 0; sock < 4; sock++ {
		s.SetSocketOnline(sock, false)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("submitting with all sockets offline should panic")
		}
	}()
	var ran []int
	s.Submit(immediateTask(0, 0, false, &ran))
}
