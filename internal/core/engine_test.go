package core

import (
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/topology"
)

func testColumnVals(rows int, mod int64, seed uint32) []int64 {
	vals := make([]int64, rows)
	s := seed
	for i := range vals {
		s = s*1664525 + 1013904223
		vals[i] = int64(s) % mod
	}
	return vals
}

func buildPlacedTable(e *Engine, cols, rows int, withIndex bool) *colstore.Table {
	columns := make([]*colstore.Column, cols)
	for j := range columns {
		c := colstore.Build("COL"+string(rune('A'+j)), testColumnVals(rows, 1<<14, uint32(j+1)), withIndex)
		columns[j] = c
	}
	t := colstore.NewTable("TBL", columns)
	e.Placer.PlaceRR(t)
	return t
}

func TestStrategyString(t *testing.T) {
	if OSched.String() != "OS" || Target.String() != "Target" || Bound.String() != "Bound" {
		t.Fatal("strategy names wrong")
	}
}

func TestConcurrencyHint(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	if got := e.ConcurrencyHint(); got != 120 {
		t.Fatalf("idle hint = %d, want 120", got)
	}
	e.activeStatements = 60
	if got := e.ConcurrencyHint(); got != 2 {
		t.Fatalf("hint at 60 stmts = %d, want 2", got)
	}
	e.activeStatements = 1000
	if got := e.ConcurrencyHint(); got != 1 {
		t.Fatalf("hint at 1000 stmts = %d, want 1", got)
	}
	e.ConcurrencyHintEnabled = false
	if got := e.ConcurrencyHint(); got != 120 {
		t.Fatalf("hint disabled = %d, want 120", got)
	}
}

func TestSingleQueryCompletes(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 4, 20000, false)
	var latency float64
	done := false
	e.Submit(&Query{
		Table: tbl, Column: "COLA", Selectivity: 0.001,
		Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(l float64) { done = true; latency = l },
	})
	e.Sim.Run(0.5)
	if !done {
		t.Fatal("query did not complete")
	}
	if latency <= 0 {
		t.Fatalf("latency = %v", latency)
	}
	if e.ActiveStatements() != 0 {
		t.Fatalf("active statements = %d", e.ActiveStatements())
	}
	if e.Counters.QueriesDone != 1 {
		t.Fatalf("QueriesDone = %d", e.Counters.QueriesDone)
	}
	if e.Counters.TotalMCBytes() <= 0 {
		t.Fatal("no memory traffic recorded")
	}
}

func TestBoundKeepsTrafficLocal(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 4, 50000, false)
	for i := 0; i < 32; i++ {
		e.Submit(&Query{
			Table: tbl, Column: "COLB", Selectivity: 0.0001,
			Parallel: true, Strategy: Bound, HomeSocket: i % 4,
			OnDone: func(float64) {},
		})
	}
	e.Sim.Run(0.2)
	if e.Counters.QueriesDone == 0 {
		t.Fatal("no queries completed")
	}
	remote, local := 0.0, 0.0
	for s := 0; s < 4; s++ {
		remote += e.Counters.RemoteBytes[s]
		local += e.Counters.LocalBytes[s]
	}
	// The scan traffic must be overwhelmingly local under Bound; only the
	// interleave-free dictionary accesses (also local under RR) count.
	if remote > local*0.05 {
		t.Fatalf("Bound produced %.0f remote vs %.0f local bytes", remote, local)
	}
	if e.Counters.TasksStolen != 0 {
		t.Fatalf("Bound stole %d tasks", e.Counters.TasksStolen)
	}
}

func TestOSStrategyGeneratesRemoteTraffic(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 8, 50000, false)
	for i := 0; i < 32; i++ {
		e.Submit(&Query{
			Table: tbl, Column: "COLC", Selectivity: 0.0001,
			Parallel: true, Strategy: OSched, HomeSocket: i % 4,
			OnDone: func(float64) {},
		})
	}
	e.Sim.Run(0.2)
	remote := 0.0
	for s := 0; s < 4; s++ {
		remote += e.Counters.RemoteBytes[s]
	}
	if remote == 0 {
		t.Fatal("OS strategy produced no remote traffic; NUMA-agnostic model broken")
	}
}

func TestQueryOnIVPPartitionedColumn(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	c := colstore.Build("COLX", testColumnVals(80000, 1<<14, 3), false)
	tbl := colstore.NewTable("TBL", []*colstore.Column{c})
	e.Placer.PlaceIVP(c, []int{0, 1, 2, 3})
	done := false
	e.Submit(&Query{
		Table: tbl, Column: "COLX", Selectivity: 0.001,
		Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	e.Sim.Run(0.5)
	if !done {
		t.Fatal("IVP query did not complete")
	}
	// All four sockets must have served IV bytes.
	for s := 0; s < 4; s++ {
		if e.Counters.MCBytes[s] == 0 {
			t.Fatalf("socket %d served no bytes for an IVP-partitioned scan", s)
		}
	}
}

func TestQueryOnPPTable(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	cols := []*colstore.Column{colstore.Build("COLY", testColumnVals(80000, 1<<14, 5), false)}
	tbl := colstore.NewTable("TBL", cols)
	pp := e.Placer.PlacePP(tbl, 4)
	done := false
	e.Submit(&Query{
		Table: pp, Column: "COLY", Selectivity: 0.001,
		Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	e.Sim.Run(0.5)
	if !done {
		t.Fatal("PP query did not complete")
	}
	for s := 0; s < 4; s++ {
		if e.Counters.MCBytes[s] == 0 {
			t.Fatalf("socket %d served no bytes for a PP scan", s)
		}
	}
}

func TestIndexPathUsedAtLowSelectivity(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 2, 30000, true)
	done := false
	e.Submit(&Query{
		Table: tbl, Column: "COLA", Selectivity: 0.0005, UseIndex: true,
		Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	e.Sim.Run(0.5)
	if !done {
		t.Fatal("index query did not complete")
	}
	// Index lookups stream far fewer bytes than a scan of the whole IV.
	ivBytes := float64(tbl.Column("COLA").IVBytes())
	if e.Counters.TotalMCBytes() > ivBytes/2 {
		t.Fatalf("index path moved %.0f bytes; scan would move %.0f — index not used",
			e.Counters.TotalMCBytes(), ivBytes)
	}
}

func TestScanPathUsedAboveIndexThreshold(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 2, 30000, true)
	done := false
	e.Submit(&Query{
		Table: tbl, Column: "COLA", Selectivity: 0.05, UseIndex: true,
		Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	e.Sim.Run(0.5)
	if !done {
		t.Fatal("query did not complete")
	}
	ivBytes := float64(tbl.Column("COLA").IVBytes())
	if e.Counters.TotalMCBytes() < ivBytes/2 {
		t.Fatal("expected full IV scan above the index threshold")
	}
}

func TestNonParallelQueryUsesOneTaskPerPhase(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 2, 30000, false)
	done := false
	e.Submit(&Query{
		Table: tbl, Column: "COLA", Selectivity: 0.001,
		Parallel: false, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	e.Sim.Run(0.5)
	if !done {
		t.Fatal("query did not complete")
	}
	// 1 scan + 1 materialization (the per-query overhead runs on the client
	// connection thread, not as a scheduler task).
	if e.Counters.TasksExecuted != 2 {
		t.Fatalf("TasksExecuted = %d, want 2", e.Counters.TasksExecuted)
	}
}

func TestItemTrafficAttribution(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 4, 30000, false)
	e.Submit(&Query{
		Table: tbl, Column: "COLB", Selectivity: 0.01,
		Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) {},
	})
	e.Sim.Run(0.5)
	it := e.ItemTraffic()["COLB"]
	if it == nil || it.Bytes <= 0 || it.IVBytes <= 0 {
		t.Fatalf("item traffic missing: %+v", it)
	}
	if _, ok := e.ItemTraffic()["COLA"]; ok {
		t.Fatal("unqueried column has traffic")
	}
	e.ResetItemTraffic()
	if len(e.ItemTraffic()) != 0 {
		t.Fatal("ResetItemTraffic did not clear")
	}
}

func TestLatencyRecordedPerQuery(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 4, 20000, false)
	n := 16
	for i := 0; i < n; i++ {
		e.Submit(&Query{
			Table: tbl, Column: "COLA", Selectivity: 0.001,
			Parallel: true, Strategy: Target, HomeSocket: i % 4,
			OnDone: func(float64) {},
		})
	}
	e.Sim.Run(0.5)
	if got := e.Counters.Latencies().N; got != n {
		t.Fatalf("latencies recorded = %d, want %d", got, n)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, float64) {
		e := New(topology.FourSocketIvyBridge(), 42)
		tbl := buildPlacedTable(e, 4, 30000, false)
		for i := 0; i < 16; i++ {
			e.Submit(&Query{
				Table: tbl, Column: "COLC", Selectivity: 0.005,
				Parallel: true, Strategy: Target, HomeSocket: i % 4,
				OnDone: func(float64) {},
			})
		}
		e.Sim.Run(0.1)
		return e.Counters.QueriesDone, e.Counters.TotalMCBytes()
	}
	q1, b1 := run()
	q2, b2 := run()
	if q1 != q2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", q1, b1, q2, b2)
	}
}
