// Package core is the execution engine tying the paper's contributions
// together: it schedules concurrent column scans over placed data (Section
// 5.2), applying one of the three task scheduling strategies (OS, Target,
// Bound) and consulting the Page Socket Mappings of the selected column to
// derive task affinities. Queries are executed as state machines driven by
// task completions on the simulated machine.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"numacs/internal/colstore"
	"numacs/internal/hw"
	"numacs/internal/metrics"
	"numacs/internal/placement"
	"numacs/internal/psm"
	"numacs/internal/sched"
	"numacs/internal/sim"
	"numacs/internal/topology"
)

// Strategy is a task scheduling strategy (Section 6's OS/Target/Bound).
type Strategy int

const (
	// OSched leaves scheduling to the operating system: no task affinities,
	// no binding; the OS balances (and migrates) threads.
	OSched Strategy = iota
	// Target assigns task affinities; tasks may still be stolen by other
	// sockets.
	Target
	// Bound assigns task affinities and sets the hard-affinity flag:
	// inter-socket stealing is prevented.
	Bound
)

func (s Strategy) String() string {
	switch s {
	case OSched:
		return "OS"
	case Target:
		return "Target"
	case Bound:
		return "Bound"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Costs holds the calibrated cost-model constants. Defaults are tuned so the
// simulated machines reproduce Table 1 and the headline ratios of the paper
// (see the calibration tests and EXPERIMENTS.md).
type Costs struct {
	// ScanCyclesPerByte is the compute cost of the SIMD scan kernel.
	ScanCyclesPerByte float64
	// ScanInstrPerByte feeds the IPC proxy.
	ScanInstrPerByte float64
	// MatCyclesPerAccess is the per-qualifying-row compute cost of
	// materialization (IV probe + dictionary decode + output write).
	MatCyclesPerAccess float64
	// MatInstrPerAccess feeds the IPC proxy.
	MatInstrPerAccess float64
	// IdxCyclesPerAccess is the per-position compute cost of index lookups.
	IdxCyclesPerAccess float64
	// OutBytesPerMatch is the output-vector bytes written per qualifying row.
	OutBytesPerMatch float64
	// QueryOverheadSeconds is the fixed per-query session/parse/plan cost,
	// modelled as compute on the client's home socket.
	QueryOverheadSeconds float64
	// UnboundStreamPenalty scales the per-thread streaming and random-access
	// rate of tasks executed by unbound workers (the OS strategy): it models
	// the combined cost of OS thread migration, prefetcher restarts, and
	// cross-socket queueing that a NUMA-agnostic system suffers. This is the
	// one deliberately calibrated constant, set to reproduce the ~5x gap of
	// Figures 1 and 8; the ablation benchmark quantifies its influence.
	UnboundStreamPenalty float64
	// IndexSelectivityThreshold is the optimizer's cutoff: predicates at or
	// below this selectivity use index lookups when an index exists
	// (Section 6.1.5 observes the switch between 0.1% and 1%).
	IndexSelectivityThreshold float64
	// IndexAccessesPerMatch is the pointer-chasing cost of index lookups in
	// dependent cache-line accesses per qualifying position.
	IndexAccessesPerMatch float64
	// MatMissRate is the fraction of materialization dictionary probes that
	// miss the last-level cache and reach DRAM; dictionaries largely fit in
	// the L3, which keeps materialization CPU-intensive (Section 6.1.5).
	MatMissRate float64
	// BitvectorSelectivity is the threshold above which the find phase emits
	// its qualifying matches as a bitvector (one bit per row) instead of a
	// position list (4 bytes per match) — the two result formats of Section
	// 5.2 ("for high selectivities, a bitvector format is preferred").
	BitvectorSelectivity float64
	// IdxMissRate is the same for index pointer chasing (postings are
	// colder than dictionaries).
	IdxMissRate float64
}

// DefaultCosts returns the calibrated defaults.
func DefaultCosts() Costs {
	return Costs{
		ScanCyclesPerByte:         0.5,
		ScanInstrPerByte:          1.0,
		MatCyclesPerAccess:        15,
		MatInstrPerAccess:         60,
		IdxCyclesPerAccess:        20,
		OutBytesPerMatch:          colstore.ValueSize + 4, // value + position
		QueryOverheadSeconds:      30e-6,
		UnboundStreamPenalty:      0.15,
		IndexSelectivityThreshold: 0.001,
		IndexAccessesPerMatch:     1.2,
		MatMissRate:               0.1,
		IdxMissRate:               0.6,
		BitvectorSelectivity:      0.02,
	}
}

// ItemTraffic accumulates per-data-item memory traffic, used by the adaptive
// data placer to find hot items (Section 7).
type ItemTraffic struct {
	Bytes     float64 // total DRAM bytes attributed to the item
	IVBytes   float64 // bytes from scanning the indexvector
	DictBytes float64 // bytes from dictionary/index random accesses
}

// Engine executes queries on a simulated machine.
type Engine struct {
	Machine  *topology.Machine
	Sim      *sim.Engine
	HW       *hw.Hardware
	Sched    *sched.Scheduler
	Placer   *placement.Placer
	Counters *metrics.Counters
	Costs    Costs

	// ConcurrencyHintEnabled enables the task-granularity hint of [28]
	// (default true; the ablation benchmark switches it off).
	ConcurrencyHintEnabled bool

	// DisableCoalesce turns off the materialization-preprocessing
	// optimization of Section 5.2 that merges contiguous same-socket output
	// regions before issuing tasks (ablation only).
	DisableCoalesce bool

	rng              *rand.Rand
	activeStatements int
	itemTraffic      map[string]*ItemTraffic
}

// DefaultStep is the simulator step length. 20 µs keeps task-dispatch
// quantization well below typical task durations; large-machine experiments
// pass a coarser step explicitly for speed.
const DefaultStep = 20e-6

// New creates an engine for the machine with all substrates wired up.
func New(m *topology.Machine, seed int64) *Engine {
	return NewWithStep(m, seed, DefaultStep)
}

// NewWithStep creates an engine with an explicit simulator step length.
func NewWithStep(m *topology.Machine, seed int64, step float64) *Engine {
	simEngine := sim.New(step)
	h := hw.New(simEngine, m)
	counters := metrics.New(m.Sockets)
	scheduler := sched.New(h, counters)
	simEngine.AddActor(scheduler)
	return &Engine{
		Machine:                m,
		Sim:                    simEngine,
		HW:                     h,
		Sched:                  scheduler,
		Placer:                 placement.New(m),
		Counters:               counters,
		Costs:                  DefaultCosts(),
		ConcurrencyHintEnabled: true,
		rng:                    rand.New(rand.NewSource(seed)),
		itemTraffic:            make(map[string]*ItemTraffic),
	}
}

// ActiveStatements returns the number of in-flight queries.
func (e *Engine) ActiveStatements() int { return e.activeStatements }

// ItemTraffic returns the accumulated per-item traffic map.
func (e *Engine) ItemTraffic() map[string]*ItemTraffic { return e.itemTraffic }

// ResetItemTraffic clears per-item accounting (used by the adaptive placer
// between balancing rounds).
func (e *Engine) ResetItemTraffic() { e.itemTraffic = make(map[string]*ItemTraffic) }

// ConcurrencyHint returns the task-granularity budget for one partitionable
// operation: the machine's hardware contexts divided by the number of
// concurrently active statements [28]. Without the hint, operations always
// fan out to the maximum.
func (e *Engine) ConcurrencyHint() int {
	total := e.Machine.TotalThreads()
	if !e.ConcurrencyHintEnabled {
		return total
	}
	n := e.activeStatements
	if n < 1 {
		n = 1
	}
	h := total / n
	if h < 1 {
		h = 1
	}
	return h
}

// Query describes one SELECT ... WHERE col BETWEEN ? AND ? execution.
type Query struct {
	Table       *colstore.Table
	Column      string
	Selectivity float64

	// ExtraPredicateColumns adds conjunctive range predicates on further
	// columns: the find phase of Section 5.2 is repeated, in parallel, for
	// each predicate column, and the qualifying set is their intersection
	// (the paper discusses this generalization in Section 6). Each extra
	// predicate uses the same Selectivity.
	ExtraPredicateColumns []string
	// ProjectColumns projects additional columns: the materialization phase
	// is repeated, in parallel, for each projected column (ibid.). The
	// predicate column itself is always materialized.
	ProjectColumns []string
	// UseIndex permits index lookups when the column has an index and the
	// optimizer's selectivity threshold admits them.
	UseIndex bool
	// Parallel enables intra-query parallelism (on in most experiments).
	Parallel bool
	Strategy Strategy
	// HomeSocket is where the client's connection thread runs.
	HomeSocket int
	// OnDone fires at completion with the query latency in seconds.
	OnDone func(latency float64)

	// Aggregate turns the second phase into an aggregation over the
	// qualifying rows instead of an output materialization (Section 6.3:
	// aggregations are parallelized like scans and task affinities are
	// defined the same way). AggBytesPerRow is the payload streamed from the
	// aggregated columns per qualifying row (local to the part under PP);
	// AggCyclesPerRow is the per-row compute — high for TPC-H Q1's
	// multiplications, low for BW-EML's simple expressions.
	Aggregate       bool
	AggBytesPerRow  float64
	AggCyclesPerRow float64

	issuedAt float64
}

// queryRun tracks one executing query.
type queryRun struct {
	q       *Query
	e       *Engine
	pending int // outstanding tasks in the current phase

	// Per "region" match counts collected by the find phase. For IVP the
	// regions are IV partitions; for PP they are physical parts.
	regions []regionResult
}

// regionResult is the per-partition output of the find phase, the input to
// materialization preprocessing (Section 5.2).
type regionResult struct {
	col     *colstore.Column
	part    *colstore.Part
	socket  int // socket of this IV partition/part
	matches int
}

// Submit starts executing a query; completion is reported via q.OnDone.
func (e *Engine) Submit(q *Query) {
	q.issuedAt = e.Sim.Now()
	e.activeStatements++
	r := &queryRun{q: q, e: e}
	// Phase 0: fixed per-query overhead (parse/plan/session). It runs on the
	// client's connection thread — a receiver thread outside the worker pool
	// — so it adds latency without occupying a worker (units are seconds;
	// the rate cap of 1 makes the flow a pure delay).
	e.Sim.StartFlow(&sim.Flow{
		Remaining: e.Costs.QueryOverheadSeconds,
		RateCap:   1,
		OnDone:    func() { r.findPhase() },
	})
}

// affinityFor applies the scheduling strategy to a natural data socket.
func affinityFor(strategy Strategy, socket int) (affinity int, hard bool) {
	if socket < 0 {
		return -1, false
	}
	switch strategy {
	case OSched:
		return -1, false
	case Target:
		return socket, false
	default:
		return socket, true
	}
}

// jitterMatches derives a deterministic approximate match count for a row
// range: the analytic expectation of the uniform data generator with a small
// per-task jitter, standing in for actually running the scan kernel (the
// kernels themselves are implemented and tested in package colstore; the
// harness uses the analytic count so experiments over hundreds of thousands
// of queries stay tractable).
func (r *queryRun) jitterMatches(rows int) int {
	exp := r.q.Selectivity * float64(rows)
	f := 0.95 + 0.1*r.e.rng.Float64()
	m := int(exp*f + 0.5)
	if m > rows {
		m = rows
	}
	return m
}

// findPhase issues the tasks that find qualifying matches: parallel scan
// tasks over the IV (rounded to partition multiples), or a single index
// lookup per part (Section 5.2).
func (r *queryRun) findPhase() {
	e := r.e
	q := r.q
	useIndex := false
	if q.UseIndex && q.Selectivity <= e.Costs.IndexSelectivityThreshold {
		if c := q.Table.Parts[0].ColumnByName(q.Column); c != nil && c.Idx != nil {
			useIndex = true
		}
	}

	// Build the region list and the task list first, then submit. Only the
	// primary predicate column tracks regions (the materialization input);
	// additional predicate columns run the same find phase in parallel and
	// merely intersect the result (Section 6's multi-predicate discussion).
	type scanTask struct {
		col       *colstore.Column
		rowFrom   int
		rowTo     int
		region    int // -1 for extra predicate columns
		indexTask bool
		// allCols, when set, makes this a single unparallelized task that
		// scans every physical part sequentially — with parallelism
		// disabled, one task must access the remote sockets of the other
		// parts itself (the Figure 10 effect).
		allCols []*colstore.Column
	}
	var tasks []scanTask
	plan := func(colName string, trackRegions bool) {
		if !q.Parallel && !useIndex && q.Table.NumParts() > 1 {
			cols := make([]*colstore.Column, 0, q.Table.NumParts())
			rows := 0
			for _, part := range q.Table.Parts {
				c := part.ColumnByName(colName)
				if c == nil {
					panic(fmt.Sprintf("core: no column %s", colName))
				}
				cols = append(cols, c)
				rows += c.Rows
			}
			region := -1
			if trackRegions {
				region = len(r.regions)
				r.regions = append(r.regions, regionResult{
					col: cols[0], part: q.Table.Parts[0], socket: cols[0].IVPSM.MajoritySocket(),
				})
			}
			tasks = append(tasks, scanTask{col: cols[0], rowFrom: 0, rowTo: rows, region: region, allCols: cols})
			return
		}
		for _, part := range q.Table.Parts {
			col := part.ColumnByName(colName)
			if col == nil {
				panic(fmt.Sprintf("core: no column %s", colName))
			}
			if useIndex {
				region := -1
				if trackRegions {
					region = len(r.regions)
					r.regions = append(r.regions, regionResult{col: col, part: part, socket: ixSocket(col)})
				}
				tasks = append(tasks, scanTask{col: col, rowFrom: 0, rowTo: col.Rows, region: region, indexTask: true})
				continue
			}
			nparts := col.NumPartitions()
			if !q.Parallel {
				// Single task spanning everything; region socket is the IV
				// majority socket.
				region := -1
				if trackRegions {
					region = len(r.regions)
					r.regions = append(r.regions, regionResult{col: col, part: part, socket: col.IVPSM.MajoritySocket()})
				}
				tasks = append(tasks, scanTask{col: col, rowFrom: 0, rowTo: col.Rows, region: region})
				continue
			}
			// Tasks per part: the concurrency hint rounded up to a multiple
			// of the IVP partitions so each task's range lies wholly in one
			// partition.
			hint := e.ConcurrencyHint()
			if q.Table.NumParts() > 1 {
				hint = hint / q.Table.NumParts()
				if hint < 1 {
					hint = 1
				}
			}
			if col.Replicated() {
				// A replicated column behaves like a partitioned one for
				// scheduling: the row space is sliced across replicas and
				// each slice scans its own replica locally.
				reps := col.ReplicaSockets
				per := (hint + len(reps) - 1) / len(reps)
				for ri, sock := range reps {
					pf := col.Rows * ri / len(reps)
					pt := col.Rows * (ri + 1) / len(reps)
					region := -1
					if trackRegions {
						region = len(r.regions)
						r.regions = append(r.regions, regionResult{col: col, part: part, socket: sock})
					}
					n := per
					if n > pt-pf {
						n = pt - pf
					}
					for ti := 0; ti < n; ti++ {
						f := pf + (pt-pf)*ti/n
						t := pf + (pt-pf)*(ti+1)/n
						tasks = append(tasks, scanTask{col: col, rowFrom: f, rowTo: t, region: region})
					}
				}
				continue
			}
			perPartition := (hint + nparts - 1) / nparts
			for pi := 0; pi < nparts; pi++ {
				pf, pt := col.PartitionBounds(pi)
				region := -1
				if trackRegions {
					region = len(r.regions)
					r.regions = append(r.regions, regionResult{col: col, part: part, socket: ivSocketForRows(col, pf, pt)})
				}
				rows := pt - pf
				n := perPartition
				if n > rows {
					n = rows
				}
				for ti := 0; ti < n; ti++ {
					f := pf + rows*ti/n
					t := pf + rows*(ti+1)/n
					tasks = append(tasks, scanTask{col: col, rowFrom: f, rowTo: t, region: region})
				}
			}
		}
	}
	plan(q.Column, true)
	for _, extra := range q.ExtraPredicateColumns {
		plan(extra, false)
	}

	r.pending = len(tasks)
	for _, st := range tasks {
		st := st
		m := r.jitterMatches(st.rowTo - st.rowFrom)
		if st.region >= 0 {
			r.regions[st.region].matches += m
		}
		var socket int
		if st.region >= 0 {
			socket = r.regions[st.region].socket
		} else if st.indexTask {
			socket = ixSocket(st.col)
		} else {
			socket = ivSocketForRows(st.col, st.rowFrom, st.rowTo)
		}
		affinity, hard := affinityFor(q.Strategy, socket)
		run := func(w *sched.Worker, done func()) {
			r.runScan(w, st.col, st.rowFrom, st.rowTo, m, func() { done(); r.findTaskDone() })
		}
		if st.allCols != nil {
			run = func(w *sched.Worker, done func()) {
				r.runScanAll(w, st.allCols, m, func() { done(); r.findTaskDone() })
			}
		}
		if st.indexTask {
			run = func(w *sched.Worker, done func()) {
				r.runIndexLookup(w, st.col, m, func() { done(); r.findTaskDone() })
			}
		}
		e.Sched.Submit(&sched.Task{
			Priority: q.issuedAt, Affinity: affinity, Hard: hard, CallerSocket: q.HomeSocket,
			Run: run,
		})
	}
}

// findTaskDone is the barrier of the find phase.
func (r *queryRun) findTaskDone() {
	r.pending--
	if r.pending == 0 {
		r.materializePhase()
	}
}

// runScanAll executes one unparallelized scan across every physical part:
// the single worker streams each part's IV in turn, reaching remote sockets
// for the parts that are not local (Figure 10's "single task has to access
// remotely the sockets of the remaining partitions").
func (r *queryRun) runScanAll(w *sched.Worker, cols []*colstore.Column, matches int, onDone func()) {
	remaining := len(cols)
	oneDone := func() {
		remaining--
		if remaining == 0 {
			onDone()
		}
	}
	// Sequential execution: chain per-part scans.
	var start func(i int)
	start = func(i int) {
		if i >= len(cols) {
			return
		}
		m := 0
		if i == len(cols)-1 {
			m = matches // output writes attributed once
		}
		r.runScan(w, cols[i], 0, cols[i].Rows, m, func() {
			oneDone()
			start(i + 1)
		})
	}
	start(0)
}

// runScan executes one scan task: stream the IV bytes of rows [from,to)
// from wherever they physically live, plus the (small) match output write.
func (r *queryRun) runScan(w *sched.Worker, col *colstore.Column, from, to, matches int, onDone func()) {
	e := r.e
	offFrom := col.IVOffsetForRow(from)
	offTo := offFrom + col.IVBytesForRows(from, to)
	if offTo > col.IVRange.Bytes {
		offTo = col.IVRange.Bytes
	}
	var perSocket []int64
	if col.Replicated() {
		// Stream from the nearest replica instead of the primary copy.
		rep := col.NearestReplica(w.Socket(), e.Machine.Latency)
		perSocket = make([]int64, rep+1)
		perSocket[rep] = offTo - offFrom
	} else {
		perSocket = col.IVPSM.SocketBytes(col.IVRange, offFrom, offTo-offFrom)
	}
	src := w.Socket()
	penalty := 1.0
	if !w.Bound {
		penalty = e.Costs.UnboundStreamPenalty
	}
	// Sequential flows, one per distinct source socket of the range.
	// The match output uses the Section 5.2 result formats: a position list
	// (4 bytes per match) at low selectivity, a bitvector (one bit per
	// scanned row) at high selectivity — whichever is smaller at the
	// configured threshold.
	var phases []*sim.Flow
	outBytes := float64(matches) * 4
	if r.q.Selectivity >= e.Costs.BitvectorSelectivity {
		outBytes = float64(to-from) / 8
	}
	outPerByte := outBytes / float64(offTo-offFrom+1)
	for dst, bytes := range perSocket {
		if bytes == 0 {
			continue
		}
		dst := dst
		demands, lt := e.HW.StreamDemands(src, dst, w.CoreRes, e.Costs.ScanCyclesPerByte)
		if outPerByte > 0 {
			demands = append(demands, sim.Demand{Resource: e.HW.MC[src], Weight: outPerByte})
		}
		fl := &sim.Flow{
			Remaining: float64(bytes),
			RateCap:   e.Machine.StreamRate(src, dst) * penalty,
			Demands:   demands,
			OnAdvance: func(p float64) {
				e.Counters.AddMemoryTraffic(src, dst, p, p*lt.Data, p*lt.Total)
				e.Counters.AddCompute(src, p*e.Costs.ScanInstrPerByte, 0)
				e.addItemTraffic(col.Name, p, p, 0)
			},
		}
		phases = append(phases, fl)
	}
	runPhases(e.Sim, phases, onDone)
}

// runIndexLookup executes one (unparallelized) index-lookup task: dependent
// random accesses into the IX.
func (r *queryRun) runIndexLookup(w *sched.Worker, col *colstore.Column, matches int, onDone func()) {
	e := r.e
	src := w.Socket()
	accesses := float64(matches)*e.Costs.IndexAccessesPerMatch + 16
	dstWeights := componentWeights(e.Machine.Sockets, col.IXPSM)
	demands, rateCap, lt := e.HW.RandomDemands(src, dstWeights, w.CoreRes,
		e.Costs.IdxCyclesPerAccess, 4, e.Costs.IdxMissRate)
	if !w.Bound {
		rateCap *= e.Costs.UnboundStreamPenalty
	}
	miss := e.Costs.IdxMissRate
	e.Sim.StartFlow(&sim.Flow{
		Remaining: accesses,
		RateCap:   rateCap,
		Demands:   demands,
		OnAdvance: func(p float64) {
			bytes := p * topology.CacheLine * miss
			e.addSpreadTraffic(src, dstWeights, bytes, p*lt.Data, p*lt.Total)
			e.Counters.AddCompute(src, p*e.Costs.MatInstrPerAccess/2, 0)
			e.addItemTraffic(col.Name, bytes, 0, bytes)
		},
		OnDone: onDone,
	})
}

// addSpreadTraffic attributes DRAM bytes across the destination sockets of a
// random-access flow (interleaved structures spread over all sockets).
func (e *Engine) addSpreadTraffic(src int, dstWeights []float64, bytes, linkData, linkTotal float64) {
	first := true
	for dst, frac := range dstWeights {
		if frac == 0 {
			continue
		}
		ld, t := 0.0, 0.0
		if first {
			// Attribute link traffic once (it is already aggregated).
			ld, t = linkData, linkTotal
			first = false
		}
		e.Counters.AddMemoryTraffic(src, dst, bytes*frac, ld, t)
	}
}

// materializePhase implements the output-materialization scheduling of
// Section 5.2: the output vector is divided into one fixed region per
// hardware context; region boundaries are resolved to the socket of the IV
// pages that produce them (via the PSM); contiguous same-socket regions are
// coalesced; and each coalesced partition receives a correspondingly
// weighted number of tasks, at least one, within the concurrency hint.
func (r *queryRun) materializePhase() {
	e := r.e
	q := r.q
	// Conjunctive extra predicates intersect the qualifying set: scale every
	// region's matches by selectivity once per extra predicate column.
	if k := len(q.ExtraPredicateColumns); k > 0 {
		factor := math.Pow(q.Selectivity, float64(k))
		for i := range r.regions {
			r.regions[i].matches = int(float64(r.regions[i].matches)*factor + 0.5)
		}
	}
	total := 0
	for _, reg := range r.regions {
		total += reg.matches
	}
	if total == 0 {
		r.complete()
		return
	}

	// Fixed-size output regions mapped to producing IV sockets.
	nRegions := e.Machine.TotalThreads()
	if !q.Parallel {
		nRegions = 1
	}
	type coalesced struct {
		col     *colstore.Column
		part    *colstore.Part
		socket  int
		matches int
		weight  int
	}
	var parts []coalesced
	ri := 0 // region cursor into r.regions
	consumed := 0
	for i := 0; i < nRegions; i++ {
		lo := total * i / nRegions
		hi := total * (i + 1) / nRegions
		m := hi - lo
		if m == 0 {
			continue
		}
		// Advance the producing region cursor.
		for ri < len(r.regions)-1 && consumed+r.regions[ri].matches <= lo {
			consumed += r.regions[ri].matches
			ri++
		}
		reg := &r.regions[ri]
		if n := len(parts); !e.DisableCoalesce && n > 0 &&
			parts[n-1].socket == reg.socket && parts[n-1].col == reg.col {
			parts[n-1].matches += m
			parts[n-1].weight++
		} else {
			parts = append(parts, coalesced{col: reg.col, part: reg.part, socket: reg.socket, matches: m, weight: 1})
		}
	}

	// Distribute tasks: proportional to weight, at least one per partition,
	// not surpassing the concurrency hint.
	hint := e.ConcurrencyHint()
	if !q.Parallel {
		hint = 1
	}
	if hint < len(parts) {
		hint = len(parts)
	}
	totalWeight := 0
	for _, p := range parts {
		totalWeight += p.weight
	}
	type matTask struct {
		col     *colstore.Column
		socket  int
		matches int
	}
	var matTasks []matTask
	for _, p := range parts {
		// Materialization targets: the predicate column plus every projected
		// column of the same part; the phase is repeated per projected
		// column in parallel (Section 6).
		targets := []*colstore.Column{p.col}
		for _, name := range q.ProjectColumns {
			if p.part == nil {
				continue
			}
			if pc := p.part.ColumnByName(name); pc != nil {
				targets = append(targets, pc)
			}
		}
		n := hint * p.weight / totalWeight
		if n < 1 {
			n = 1
		}
		if n > p.matches {
			n = p.matches
		}
		for _, target := range targets {
			for t := 0; t < n; t++ {
				f := p.matches * t / n
				tt := p.matches * (t + 1) / n
				if tt == f {
					continue
				}
				matTasks = append(matTasks, matTask{target, p.socket, tt - f})
			}
		}
	}

	r.pending = len(matTasks)
	if r.pending == 0 {
		r.complete()
		return
	}
	for _, mt := range matTasks {
		mt := mt
		affinity, hard := affinityFor(q.Strategy, mt.socket)
		run := func(w *sched.Worker, done func()) {
			r.runMaterialize(w, mt.col, mt.matches, func() { done(); r.matTaskDone() })
		}
		if q.Aggregate {
			run = func(w *sched.Worker, done func()) {
				r.runAggregate(w, mt.col, mt.socket, mt.matches, func() { done(); r.matTaskDone() })
			}
		}
		e.Sched.Submit(&sched.Task{
			Priority: q.issuedAt, Affinity: affinity, Hard: hard, CallerSocket: q.HomeSocket,
			Run: run,
		})
	}
}

// runAggregate executes one aggregation task: stream the qualifying rows'
// payload columns from the socket holding this region's data and burn the
// per-row aggregation compute.
func (r *queryRun) runAggregate(w *sched.Worker, col *colstore.Column, dataSocket int, m int, onDone func()) {
	e := r.e
	q := r.q
	src := w.Socket()
	dst := dataSocket
	if dst < 0 {
		dst = src
	}
	bytes := float64(m) * q.AggBytesPerRow
	cpb := 0.0
	if q.AggBytesPerRow > 0 {
		cpb = q.AggCyclesPerRow / q.AggBytesPerRow
	}
	demands, lt := e.HW.StreamDemands(src, dst, w.CoreRes, cpb)
	penalty := 1.0
	if !w.Bound {
		penalty = e.Costs.UnboundStreamPenalty
	}
	e.Sim.StartFlow(&sim.Flow{
		Remaining: bytes,
		RateCap:   e.Machine.StreamRate(src, dst) * penalty,
		Demands:   demands,
		OnAdvance: func(p float64) {
			e.Counters.AddMemoryTraffic(src, dst, p, p*lt.Data, p*lt.Total)
			e.Counters.AddCompute(src, p*cpb*0.8, 0)
			e.addItemTraffic(col.Name, p, p, 0)
		},
		OnDone: onDone,
	})
}

func (r *queryRun) matTaskDone() {
	r.pending--
	if r.pending == 0 {
		r.complete()
	}
}

// runMaterialize executes one materialization task: m dependent random
// accesses into the dictionary plus output writes on the worker's socket
// (output vectors reuse virtual memory, so writes land wherever the worker
// runs — Section 5.2).
func (r *queryRun) runMaterialize(w *sched.Worker, col *colstore.Column, m int, onDone func()) {
	e := r.e
	src := w.Socket()
	var dstWeights []float64
	if col.Replicated() {
		// Probe the nearest dictionary replica.
		dstWeights = make([]float64, e.Machine.Sockets)
		dstWeights[col.NearestReplica(src, e.Machine.Latency)] = 1
	} else {
		dstWeights = componentWeights(e.Machine.Sockets, col.DictPSM)
	}
	demands, rateCap, lt := e.HW.RandomDemands(src, dstWeights, w.CoreRes,
		e.Costs.MatCyclesPerAccess, e.Costs.OutBytesPerMatch, e.Costs.MatMissRate)
	if !w.Bound {
		rateCap *= e.Costs.UnboundStreamPenalty
	}
	miss := e.Costs.MatMissRate
	e.Sim.StartFlow(&sim.Flow{
		Remaining: float64(m),
		RateCap:   rateCap,
		Demands:   demands,
		OnAdvance: func(p float64) {
			bytes := p * topology.CacheLine * miss
			e.addSpreadTraffic(src, dstWeights, bytes, p*lt.Data, p*lt.Total)
			e.Counters.AddCompute(src, p*e.Costs.MatInstrPerAccess, 0)
			e.addItemTraffic(col.Name, bytes+p*e.Costs.OutBytesPerMatch, 0, bytes)
		},
		OnDone: onDone,
	})
}

// complete finishes the query.
func (r *queryRun) complete() {
	e := r.e
	e.activeStatements--
	lat := e.Sim.Now() - r.q.issuedAt
	e.Counters.AddLatency(lat)
	if r.q.OnDone != nil {
		r.q.OnDone(lat)
	}
}

// addItemTraffic attributes traffic to a data item for the adaptive placer.
func (e *Engine) addItemTraffic(item string, bytes, ivBytes, dictBytes float64) {
	it := e.itemTraffic[item]
	if it == nil {
		it = &ItemTraffic{}
		e.itemTraffic[item] = it
	}
	it.Bytes += bytes
	it.IVBytes += ivBytes
	it.DictBytes += dictBytes
}

// runPhases executes flows sequentially, then calls onDone.
func runPhases(s *sim.Engine, phases []*sim.Flow, onDone func()) {
	if len(phases) == 0 {
		onDone()
		return
	}
	for i := 0; i < len(phases)-1; i++ {
		next := phases[i+1]
		phases[i].OnDone = func() { s.StartFlow(next) }
	}
	phases[len(phases)-1].OnDone = onDone
	s.StartFlow(phases[0])
}

// ivSocketForRows returns the socket backing the IV bytes of rows [from,to).
func ivSocketForRows(col *colstore.Column, from, to int) int {
	offFrom := col.IVOffsetForRow(from)
	offTo := offFrom + col.IVBytesForRows(from, to)
	if offTo > col.IVRange.Bytes {
		offTo = col.IVRange.Bytes
	}
	bytes := col.IVPSM.SocketBytes(col.IVRange, offFrom, offTo-offFrom)
	best, bestB := -1, int64(0)
	for s, b := range bytes {
		if b > bestB {
			best, bestB = s, b
		}
	}
	return best
}

// ixSocket returns the IX's socket, or -1 when it is interleaved (no
// affinity is assigned then, per Section 5.2).
func ixSocket(col *colstore.Column) int {
	if col.IXPSM == nil {
		return -1
	}
	sum := col.IXPSM.Summary()
	nonzero, sock := 0, -1
	for s, pages := range sum {
		if pages > 0 {
			nonzero++
			sock = s
		}
	}
	if nonzero == 1 {
		return sock
	}
	return -1 // interleaved
}

// componentWeights converts a component PSM into per-socket access fractions.
func componentWeights(sockets int, p *psm.PSM) []float64 {
	out := make([]float64, sockets)
	if p == nil {
		out[0] = 1
		return out
	}
	sum := p.Summary()
	total := 0.0
	for s, pages := range sum {
		if s < sockets {
			out[s] = float64(pages)
			total += float64(pages)
		}
	}
	if total == 0 {
		out[0] = 1
		return out
	}
	for s := range out {
		out[s] /= total
	}
	return out
}
