// Package core is the execution engine tying the paper's contributions
// together: it schedules concurrent column scans over placed data (Section
// 5.2), applying one of the three task scheduling strategies (OS, Target,
// Bound) and consulting the Page Socket Mappings of the selected column to
// derive task affinities. Statements execute as operator pipelines on the
// internal/exec layer: a query is a scan operator composed with a
// materialization or aggregation operator, driven by task completions on the
// simulated machine; arbitrary compositions (scan -> join -> aggregate) run
// through the same SubmitPipeline entry point.
package core

import (
	"math/rand"

	"numacs/internal/admit"
	"numacs/internal/chaos"
	"numacs/internal/exec"
	"numacs/internal/hw"
	"numacs/internal/metrics"
	"numacs/internal/placement"
	"numacs/internal/sched"
	"numacs/internal/sharedscan"
	"numacs/internal/sim"
	"numacs/internal/topology"
	"numacs/internal/trace"

	"numacs/internal/colstore"
)

// Strategy is a task scheduling strategy (Section 6's OS/Target/Bound).
type Strategy = exec.Strategy

const (
	// OSched leaves scheduling to the operating system: no task affinities,
	// no binding; the OS balances (and migrates) threads.
	OSched = exec.OSched
	// Target assigns task affinities; tasks may still be stolen by other
	// sockets.
	Target = exec.Target
	// Bound assigns task affinities and sets the hard-affinity flag:
	// inter-socket stealing is prevented.
	Bound = exec.Bound
)

// StatementClass is the admission class of a statement (admit.Class): it
// selects the load-shedding deadline when the engine runs with an admission
// controller.
type StatementClass = admit.Class

const (
	// OLAPClass marks heavy analytic scans (generous deadline).
	OLAPClass = admit.OLAP
	// InteractiveClass marks short latency-critical statements such as delta
	// write batches (tight deadline).
	InteractiveClass = admit.Interactive
)

// Costs holds the calibrated cost-model constants.
type Costs = exec.Costs

// DefaultCosts returns the calibrated defaults.
func DefaultCosts() Costs { return exec.DefaultCosts() }

// ItemTraffic accumulates per-data-item memory traffic, used by the adaptive
// data placer to find hot items (Section 7) and — via the per-socket
// breakdown — to tell which copies of a replicated column earn their keep.
type ItemTraffic struct {
	Bytes     float64 // total DRAM bytes attributed to the item
	IVBytes   float64 // bytes from scanning the indexvector
	DictBytes float64 // bytes from dictionary/index random accesses
	// DeltaBytes counts bytes from scanning the item's uncompressed delta
	// fragments — the placer's scan-slowdown merge heuristic keys on their
	// share of the item's scan traffic.
	DeltaBytes float64
	// WriteBytes counts write-side traffic (delta appends and merge
	// rebuilds). Nonzero recent write traffic arms the placer's write-guard:
	// the item is never newly replicated and its write-hot replicas are
	// reclaimed (Section 7's update-rate concern).
	WriteBytes float64
	// PerSocket attributes the item's bytes to the serving socket, when the
	// access had a single identifiable source (replica streams and probes
	// do; interleaved-structure accesses are spread and not attributed).
	PerSocket []float64
}

// Engine executes queries on a simulated machine.
type Engine struct {
	Machine  *topology.Machine
	Sim      *sim.Engine
	HW       *hw.Hardware
	Sched    *sched.Scheduler
	Placer   *placement.Placer
	Counters *metrics.Counters
	Costs    Costs

	// ConcurrencyHintEnabled enables the task-granularity hint of [28]
	// (default true; the ablation benchmark switches it off).
	ConcurrencyHintEnabled bool

	// DisableCoalesce turns off the materialization-preprocessing
	// optimization of Section 5.2 that merges contiguous same-socket output
	// regions before issuing tasks (ablation only).
	DisableCoalesce bool

	// MergesCompleted counts background delta merges that finished, and
	// MergePagesCopied the pages their rebuilds wrote (observability for the
	// write path; see write.go).
	MergesCompleted  int
	MergePagesCopied int64

	// Admit is the optional statement-admission controller (EnableAdmission
	// wires one). When set, Submit and SubmitWrite route through it: queries
	// wait in per-tenant queues under weighted-fair admission, the elastic
	// concurrency loop bounds how many run at once, and overload sheds. Nil
	// means direct dispatch — the pre-admission engine, unchanged.
	Admit *admit.Controller

	// Shared is the optional scan-cohort registry (EnableSharedScans wires
	// one). When set, shareable scans — parallel, index-free,
	// single-predicate statements over single-part tables — route through
	// it: concurrent scans of the same column merge into cohorts that pay
	// one physical memory pass for all member predicates. Nil means every
	// statement traverses its column privately — the pre-sharing engine,
	// unchanged.
	Shared *sharedscan.Registry

	// Chaos is the optional fault injector (EnableChaos wires one). When set,
	// a scheduled fault script runs against the engine mid-simulation: sockets
	// go offline and return, memory controllers and links throttle. Nil — or
	// an empty schedule — leaves every execution path bit-identical to the
	// pre-chaos engine (the hooks are capacity writes and a nil check).
	Chaos *chaos.Injector

	// Trace is the optional flight recorder (EnableTracing wires one). When
	// set, every statement gets a span record threaded through the admission,
	// cohort, and pipeline layers, control-plane decisions land in its
	// decision ring, and (when configured) a sampler actor records windowed
	// counter time-series. Nil leaves every path bit-identical to the
	// untraced engine: tracing is passive, and each hook is one nil check.
	Trace *trace.Tracer

	env              *exec.Env
	rng              *rand.Rand
	activeStatements int
	itemTraffic      map[string]*ItemTraffic
}

// DefaultStep is the simulator step length. 20 µs keeps task-dispatch
// quantization well below typical task durations; large-machine experiments
// pass a coarser step explicitly for speed.
const DefaultStep = 20e-6

// New creates an engine for the machine with all substrates wired up.
func New(m *topology.Machine, seed int64) *Engine {
	return NewWithStep(m, seed, DefaultStep)
}

// NewWithStep creates an engine with an explicit simulator step length.
func NewWithStep(m *topology.Machine, seed int64, step float64) *Engine {
	simEngine := sim.New(step)
	h := hw.New(simEngine, m)
	counters := metrics.New(m.Sockets)
	scheduler := sched.New(h, counters)
	simEngine.AddActor(scheduler)
	e := &Engine{
		Machine:                m,
		Sim:                    simEngine,
		HW:                     h,
		Sched:                  scheduler,
		Placer:                 placement.New(m),
		Counters:               counters,
		Costs:                  DefaultCosts(),
		ConcurrencyHintEnabled: true,
		rng:                    rand.New(rand.NewSource(seed)),
		itemTraffic:            make(map[string]*ItemTraffic),
	}
	e.env = &exec.Env{
		Machine:         m,
		Sim:             simEngine,
		HW:              h,
		Sched:           scheduler,
		Counters:        counters,
		Costs:           &e.Costs,
		Rand:            e.rng,
		ConcurrencyHint: e.ConcurrencyHint,
		AddItemTraffic:  e.addItemTraffic,
	}
	return e
}

// ExecEnv returns the engine's operator-pipeline environment, for composing
// raw exec pipelines outside the statement entry points.
func (e *Engine) ExecEnv() *exec.Env { return e.env }

// EnableAdmission puts an admission controller in front of the engine's
// Submit and SubmitWrite paths and registers it as a simulation actor. It
// returns the controller for stats and tracing. Call it once, before
// submitting statements.
func (e *Engine) EnableAdmission(cfg admit.Config) *admit.Controller {
	if e.Admit != nil {
		panic("core: admission already enabled")
	}
	c := admit.New(cfg, e.Sched, e.Sim)
	e.Sim.AddActor(c)
	e.Admit = c
	if e.Trace != nil {
		c.Decisions = e.Trace.Decisions
	}
	return c
}

// EnableSharedScans puts a scan-cohort registry on the engine's Submit path
// and registers it as a simulation actor: concurrent shareable scans of the
// same column merge into cohorts that share one physical pass. It returns
// the registry for stats. Call it once, before submitting statements.
func (e *Engine) EnableSharedScans(cfg sharedscan.Config) *sharedscan.Registry {
	if e.Shared != nil {
		panic("core: shared scans already enabled")
	}
	r := sharedscan.New(cfg, e.env, e.Sim)
	e.Sim.AddActor(r)
	e.Shared = r
	if e.Trace != nil {
		r.Decisions = e.Trace.Decisions
	}
	return r
}

// EnableChaos registers a fault injector driven by the declarative schedule
// and returns it for assertions on the applied-fault log. tables lists the
// tables whose columns socket faults invalidate replicas of. Call it once,
// before running the simulation; an empty schedule is a valid (and inert)
// configuration, pinned bit-identical to the pre-chaos engine by the harness
// golden test.
func (e *Engine) EnableChaos(cfg chaos.Config, tables ...*colstore.Table) *chaos.Injector {
	if e.Chaos != nil {
		panic("core: chaos already enabled")
	}
	var cols []*colstore.Column
	for _, t := range tables {
		for _, p := range t.Parts {
			cols = append(cols, p.Columns...)
		}
	}
	in := chaos.New(cfg, e.HW, e.Sched, e.Placer, cols)
	e.Sim.AddActor(in)
	e.Chaos = in
	if e.Trace != nil {
		in.Decisions = e.Trace.Decisions
	}
	return in
}

// EnableTracing wires the flight recorder: statement spans on every Submit /
// SubmitWrite / SubmitPipeline path, control-plane decisions (placer moves,
// AIMD steps, cohort lifecycle, chaos faults, delta merges) in a bounded ring,
// and — when cfg.SampleInterval > 0 — a sampler actor recording windowed
// counter deltas. It returns the tracer for export and assertions. Call it
// once; it composes with the other Enable* calls in either order (layers
// already enabled are attached retroactively, layers enabled later attach
// themselves). Tracing is passive — it never starts flows or mutates engine
// state — so a traced run is bit-identical to an untraced one (pinned by the
// harness golden test).
func (e *Engine) EnableTracing(cfg trace.Config) *trace.Tracer {
	if e.Trace != nil {
		panic("core: tracing already enabled")
	}
	t := trace.New(cfg, e.Machine.Sockets)
	if cfg.SampleInterval > 0 {
		s := trace.NewSampler(cfg.SampleInterval, e.Counters)
		s.QueueDepths = e.Sched.SocketQueueDepths
		e.Sim.AddActor(s)
		t.Sampler = s
	}
	e.Trace = t
	if e.Admit != nil {
		e.Admit.Decisions = t.Decisions
	}
	if e.Shared != nil {
		e.Shared.Decisions = t.Decisions
	}
	if e.Chaos != nil {
		e.Chaos.Decisions = t.Decisions
	}
	return t
}

// ActiveStatements returns the number of in-flight queries.
func (e *Engine) ActiveStatements() int { return e.activeStatements }

// ItemTraffic returns the accumulated per-item traffic map.
func (e *Engine) ItemTraffic() map[string]*ItemTraffic { return e.itemTraffic }

// ResetItemTraffic clears per-item accounting (used by the adaptive placer
// between balancing rounds).
func (e *Engine) ResetItemTraffic() { e.itemTraffic = make(map[string]*ItemTraffic) }

// ConcurrencyHint returns the task-granularity budget for one partitionable
// operation: the machine's hardware contexts divided by the number of
// concurrently active statements [28]. Without the hint, operations always
// fan out to the maximum.
func (e *Engine) ConcurrencyHint() int {
	total := e.Machine.TotalThreads()
	if !e.ConcurrencyHintEnabled {
		return total
	}
	n := e.activeStatements
	if n < 1 {
		n = 1
	}
	h := total / n
	if h < 1 {
		h = 1
	}
	return h
}

// Query describes one SELECT ... WHERE col BETWEEN ? AND ? execution.
type Query struct {
	Table       *colstore.Table
	Column      string
	Selectivity float64

	// ExtraPredicateColumns adds conjunctive range predicates on further
	// columns: the find phase of Section 5.2 is repeated, in parallel, for
	// each predicate column, and the qualifying set is their intersection
	// (the paper discusses this generalization in Section 6). Each extra
	// predicate uses the same Selectivity.
	ExtraPredicateColumns []string
	// ProjectColumns projects additional columns: the materialization phase
	// is repeated, in parallel, for each projected column (ibid.). The
	// predicate column itself is always materialized.
	ProjectColumns []string
	// UseIndex permits index lookups when the column has an index and the
	// optimizer's selectivity threshold admits them.
	UseIndex bool
	// Parallel enables intra-query parallelism (on in most experiments).
	Parallel bool
	Strategy Strategy
	// HomeSocket is where the client's connection thread runs.
	HomeSocket int
	// OnDone fires at completion with the query latency in seconds. Under
	// admission control the latency includes the admission-queue wait.
	OnDone func(latency float64)

	// Tenant names the issuing tenant for admission control; ignored (and
	// irrelevant) when the engine has no controller.
	Tenant string
	// Class is the statement's admission class (OLAP unless set); it selects
	// the load-shedding deadline.
	Class admit.Class
	// OnShed fires instead of OnDone when the admission controller sheds the
	// statement under overload.
	OnShed func()

	// Aggregate turns the second phase into an aggregation over the
	// qualifying rows instead of an output materialization (Section 6.3:
	// aggregations are parallelized like scans and task affinities are
	// defined the same way). AggBytesPerRow is the payload streamed from the
	// aggregated columns per qualifying row (local to the part under PP);
	// AggCyclesPerRow is the per-row compute — high for TPC-H Q1's
	// multiplications, low for BW-EML's simple expressions.
	Aggregate       bool
	AggBytesPerRow  float64
	AggCyclesPerRow float64
}

// Submit starts executing a query as a two-operator pipeline (find phase,
// then materialization or aggregation); completion is reported via q.OnDone.
// With admission enabled the statement routes through the controller: it may
// wait in its tenant's queue (the wait counts toward the reported latency
// and ages its task priority), run with a coarsened fan-out, or be shed.
func (e *Engine) Submit(q *Query) {
	var st *trace.Statement
	if e.Trace != nil {
		st = e.Trace.StartStatement(q.Tenant, q.Class.String(), q.Table.Name+"."+q.Column, e.Sim.Now())
	}
	if e.Admit != nil {
		e.Admit.Submit(&admit.Statement{
			Tenant: q.Tenant,
			Class:  q.Class,
			Trace:  st,
			OnShed: q.OnShed,
			Run: func(gran int, issuedAt float64, done func()) {
				e.submitQuery(q, st, gran, issuedAt, done)
			},
		})
		return
	}
	e.submitQuery(q, st, 0, e.Sim.Now(), nil)
}

// submitQuery builds and dispatches the query's operator pipeline with the
// given fan-out cap and statement timestamp. release, when non-nil, frees
// the statement's admission-concurrency slot; it runs before the query's own
// completion (or shed) callback.
func (e *Engine) submitQuery(q *Query, st *trace.Statement, gran int, issuedAt float64, release func()) {
	onDone := func(lat float64) {
		if release != nil {
			release()
		}
		if q.OnDone != nil {
			q.OnDone(lat)
		}
	}
	low := e.planQuery(q)
	if e.Shared != nil && low.Shareable {
		e.submitShared(q, low, st, gran, issuedAt, onDone, release)
		return
	}
	e.submitPipeline(q.Strategy, q.HomeSocket, gran, issuedAt, st, onDone, low.Ops...)
}

// SubmitPipeline executes composed operators as one SQL statement: the fixed
// per-query overhead runs first on the client's connection thread, the
// statement counts toward the concurrency hint while in flight, and every
// operator task carries the statement timestamp as its priority. The
// completion latency (including the overhead) is recorded and reported via
// onDone.
func (e *Engine) SubmitPipeline(strategy Strategy, homeSocket int, onDone func(latency float64), ops ...exec.Operator) {
	e.SubmitPipelineAt(strategy, homeSocket, 0, e.Sim.Now(), onDone, ops...)
}

// SubmitPipelineAt is SubmitPipeline with the admission controller's two
// levers exposed: maxFanout caps every operator's task fan-out (0 =
// uncapped), and issuedAt backdates the statement timestamp to its
// admission-queue arrival — task priorities age with the wait, and the
// recorded latency covers queue time, not just execution.
func (e *Engine) SubmitPipelineAt(strategy Strategy, homeSocket, maxFanout int, issuedAt float64, onDone func(latency float64), ops ...exec.Operator) {
	var st *trace.Statement
	if e.Trace != nil {
		st = e.Trace.StartStatement("", "", "pipeline", e.Sim.Now())
	}
	e.submitPipeline(strategy, homeSocket, maxFanout, issuedAt, st, onDone, ops...)
}

// submitPipeline is the shared pipeline-dispatch core: SubmitPipelineAt and
// submitQuery both land here, the latter threading the statement's trace span
// (created at Submit time, so the span covers the admission-queue wait).
func (e *Engine) submitPipeline(strategy Strategy, homeSocket, maxFanout int, issuedAt float64, st *trace.Statement, onDone func(latency float64), ops ...exec.Operator) {
	e.activeStatements++
	p := &exec.Pipeline{
		Env:        e.env,
		Strategy:   strategy,
		HomeSocket: homeSocket,
		IssuedAt:   issuedAt,
		MaxFanout:  maxFanout,
		Ops:        ops,
		Trace:      st,
		OnDone: func(lat float64) {
			e.activeStatements--
			if onDone != nil {
				onDone(lat)
			}
		},
	}
	// Phase 0: fixed per-query overhead (parse/plan/session). It runs on the
	// client's connection thread — a receiver thread outside the worker pool
	// — so it adds latency without occupying a worker (units are seconds;
	// the rate cap of 1 makes the flow a pure delay).
	e.Sim.StartFlow(&sim.Flow{
		Remaining: e.Costs.QueryOverheadSeconds,
		RateCap:   1,
		OnDone:    p.Start,
	})
}

// addItemTraffic attributes traffic to a data item for the adaptive placer.
// socket is the serving socket, or -1 when the access spread over several
// sockets (interleaved structures).
func (e *Engine) addItemTraffic(item string, socket int, t exec.Traffic) {
	it := e.itemTraffic[item]
	if it == nil {
		it = &ItemTraffic{PerSocket: make([]float64, e.Machine.Sockets)}
		e.itemTraffic[item] = it
	}
	it.Bytes += t.Bytes
	it.IVBytes += t.IVBytes
	it.DictBytes += t.DictBytes
	it.DeltaBytes += t.DeltaBytes
	it.WriteBytes += t.WriteBytes
	if socket >= 0 && socket < len(it.PerSocket) {
		it.PerSocket[socket] += t.Bytes
	}
}
