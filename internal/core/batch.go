package core

// Plan-driven cohort formation: SubmitBatch plans a multi-statement batch as
// a unit and detects common subplans across statements before any of them
// executes, so scans that share a find phase land in one cohort regardless of
// arrival timing. This is the planner's half of the sharing loop; the
// timing half (join windows, mid-flight attach) stays in sharedscan.

import (
	"numacs/internal/sharedscan"
	"numacs/internal/sim"
	"numacs/internal/trace"
)

// SubmitBatch submits a batch of statements that arrived together (one
// multi-statement request, or one scheduler dispatch round). Every statement
// is planned, and statements whose physical plans share a cohort key — the
// planner's common-subplan detection — are handed to the shared-scan registry
// as one plan-driven group (sharedscan.Registry.SubmitGroup), guaranteeing
// they share a physical pass even when a join window would have missed them.
// Statements with unique or unshareable plans take the normal Submit path.
//
// Plan-driven grouping needs the registry and bypasses per-statement
// admission, so with an admission controller installed (or sharing disabled)
// the batch degrades to per-statement Submit calls — admission's queueing
// decisions would otherwise be invisible to the group.
func (e *Engine) SubmitBatch(qs []*Query) {
	if e.Admit != nil || e.Shared == nil {
		for _, q := range qs {
			e.Submit(q)
		}
		return
	}
	issuedAt := e.Sim.Now()
	groups := make(map[string][]*sharedscan.Member)
	var order []string
	for _, q := range qs {
		var st *trace.Statement
		if e.Trace != nil {
			st = e.Trace.StartStatement(q.Tenant, q.Class.String(), q.Table.Name+"."+q.Column, issuedAt)
		}
		low := e.planQuery(q)
		if !low.Shareable {
			e.submitPipeline(q.Strategy, q.HomeSocket, 0, issuedAt, st, q.OnDone, low.Ops...)
			continue
		}
		if _, ok := groups[low.ShareKey]; !ok {
			order = append(order, low.ShareKey)
		}
		groups[low.ShareKey] = append(groups[low.ShareKey], e.cohortMember(q, low, st, 0, issuedAt, q.OnDone, nil))
	}
	for _, key := range order {
		ms := groups[key]
		// Phase 0: one fixed per-query overhead delay covers the group — each
		// member's overhead flow would run concurrently on its own connection
		// thread and complete at the same instant anyway, so one flow is
		// timing-equivalent and the whole group joins the registry together.
		e.Sim.StartFlow(&sim.Flow{
			Remaining: e.Costs.QueryOverheadSeconds,
			RateCap:   1,
			OnDone:    func() { e.Shared.SubmitGroup(ms) },
		})
	}
}
