package core

import (
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/topology"
)

// Section 6 of the paper: a predicate on multiple columns repeats the find
// phase (in parallel) per column; projecting multiple columns repeats the
// materialization phase per column.

func TestExtraPredicateColumnsScanBothIVs(t *testing.T) {
	run := func(extra []string) float64 {
		e := New(topology.FourSocketIvyBridge(), 1)
		tbl := buildPlacedTable(e, 4, 40000, false)
		done := false
		e.Submit(&Query{
			Table: tbl, Column: "COLA", ExtraPredicateColumns: extra,
			Selectivity: 0.001, Parallel: true, Strategy: Bound, HomeSocket: 0,
			OnDone: func(float64) { done = true },
		})
		e.Sim.Run(0.5)
		if !done {
			t.Fatal("query did not complete")
		}
		return e.Counters.TotalMCBytes()
	}
	single := run(nil)
	double := run([]string{"COLB"})
	if double < single*1.7 {
		t.Fatalf("two predicate columns should roughly double scan traffic: %v vs %v", single, double)
	}
}

func TestExtraPredicateIntersectsMatches(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 4, 40000, false)
	done := false
	// sel 0.05 on two columns -> intersection ~ 0.0025: materialization
	// accesses should reflect the intersection (tiny), not the union.
	e.Submit(&Query{
		Table: tbl, Column: "COLA", ExtraPredicateColumns: []string{"COLB"},
		Selectivity: 0.05, Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	e.Sim.Run(0.5)
	if !done {
		t.Fatal("query did not complete")
	}
	it := e.ItemTraffic()["COLA"]
	if it == nil {
		t.Fatal("no traffic recorded")
	}
	// Dict traffic proportional to intersection (~100 rows), far below the
	// single-predicate match count (~2000 rows).
	expected := 40000 * 0.05 * 0.05 // ~100
	if it.DictBytes > expected*64*5 {
		t.Fatalf("materialization did not intersect: dict bytes %v", it.DictBytes)
	}
}

func TestProjectColumnsRepeatMaterialization(t *testing.T) {
	run := func(project []string) uint64 {
		e := New(topology.FourSocketIvyBridge(), 1)
		tbl := buildPlacedTable(e, 4, 40000, false)
		done := false
		e.Submit(&Query{
			Table: tbl, Column: "COLA", ProjectColumns: project,
			Selectivity: 0.01, Parallel: false, Strategy: Bound, HomeSocket: 0,
			OnDone: func(float64) { done = true },
		})
		e.Sim.Run(0.5)
		if !done {
			t.Fatal("query did not complete")
		}
		return e.Counters.TasksExecuted
	}
	// Non-parallel: 1 scan + 1 materialization per materialized column.
	if got := run(nil); got != 2 {
		t.Fatalf("single column: %d tasks, want 2", got)
	}
	if got := run([]string{"COLB", "COLC"}); got != 4 {
		t.Fatalf("projecting two extra columns: %d tasks, want 4 (scan + 3 mats)", got)
	}
}

func TestProjectColumnsTouchTheirDictionaries(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 4, 40000, false)
	done := false
	e.Submit(&Query{
		Table: tbl, Column: "COLA", ProjectColumns: []string{"COLD"},
		Selectivity: 0.01, Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	e.Sim.Run(0.5)
	if !done {
		t.Fatal("query did not complete")
	}
	if it := e.ItemTraffic()["COLD"]; it == nil || it.DictBytes <= 0 {
		t.Fatalf("projected column's dictionary untouched: %+v", it)
	}
}

func TestMultiColumnOnPPTable(t *testing.T) {
	e2 := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e2, 3, 40000, false)
	pp := e2.Placer.PlacePP(tbl, 4)
	done := false
	e2.Submit(&Query{
		Table: pp, Column: "COLA",
		ExtraPredicateColumns: []string{"COLB"},
		ProjectColumns:        []string{"COLC"},
		Selectivity:           0.05, Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	e2.Sim.Run(0.5)
	if !done {
		t.Fatal("multi-column PP query did not complete")
	}
}

// Replication: the Section 4.2 "other data placement" — replicas trade
// memory for local scans on several sockets.

func TestReplicatedColumnScansLocally(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	c := colstore.Build("HOT", testColumnVals(80000, 1<<14, 3), false)
	tbl := colstore.NewTable("TBL", []*colstore.Column{c})
	e.Placer.PlaceReplicated(c, []int{0, 1, 2, 3})
	if !c.Replicated() {
		t.Fatal("column should be replicated")
	}
	for i := 0; i < 64; i++ {
		e.Submit(&Query{
			Table: tbl, Column: "HOT", Selectivity: 0.0001,
			Parallel: true, Strategy: Bound, HomeSocket: i % 4,
			OnDone: func(float64) {},
		})
	}
	e.Sim.Run(0.2)
	if e.Counters.QueriesDone == 0 {
		t.Fatal("no queries completed")
	}
	// All four sockets serve their replica; traffic stays local.
	for s := 0; s < 4; s++ {
		if e.Counters.MCBytes[s] == 0 {
			t.Fatalf("replica socket %d idle", s)
		}
	}
	remote := 0.0
	for s := 0; s < 4; s++ {
		remote += e.Counters.RemoteBytes[s]
	}
	if remote > 0 {
		t.Fatalf("replicated Bound scans produced %v remote bytes", remote)
	}
}

func TestReplicationConsumesMemory(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	c := colstore.Build("HOT", testColumnVals(50000, 1<<14, 3), false)
	before := int64(0)
	for s := 0; s < 4; s++ {
		before += e.Placer.Alloc.BytesOnSocket(s)
	}
	e.Placer.PlaceReplicated(c, []int{0, 1, 2, 3})
	after := int64(0)
	for s := 0; s < 4; s++ {
		after += e.Placer.Alloc.BytesOnSocket(s)
	}
	single := c.IVBytes() + c.DictBytes()
	if after-before < 4*single {
		t.Fatalf("4 replicas should consume >= 4x a single copy: delta %d, single %d", after-before, single)
	}
}
