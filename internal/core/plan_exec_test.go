package core

import (
	"math"
	"math/rand"
	"testing"

	"numacs/internal/plan"
	"numacs/internal/sharedscan"
	"numacs/internal/topology"
)

// randomStatements draws a fixed-seed mix of plain statements spanning the
// planner's plain-plan space: selectivity sweep, serial and parallel,
// index-permitted, multi-predicate, materializing and aggregating.
func randomStatements(rng *rand.Rand, n int) []*Query {
	out := make([]*Query, n)
	for i := range out {
		q := &Query{
			Column:      "COLA",
			Selectivity: math.Pow(10, -1-3*rng.Float64()),
			Parallel:    rng.Intn(4) != 0,
			Strategy:    Bound,
			HomeSocket:  rng.Intn(4),
		}
		if rng.Intn(4) == 0 {
			q.UseIndex = true
		}
		if rng.Intn(4) == 0 {
			q.ExtraPredicateColumns = []string{"COLB"}
		}
		if rng.Intn(2) == 0 {
			q.Aggregate = true
			q.AggBytesPerRow = float64(4 + rng.Intn(12))
			q.AggCyclesPerRow = float64(2 + rng.Intn(30))
		} else {
			q.ProjectColumns = []string{"COLA"}
		}
		out[i] = q
	}
	return out
}

// TestPlanRewritesPreserveExecution is the execution half of the rewrite-
// preservation property: twin fixed-seed engines drive the same random
// statement mix, one through Submit (full pass pipeline), the other through
// pass-less lowering + SubmitPipeline (the unoptimized control). Every
// counter and the full latency distribution must match bit for bit — the
// optimizer may only change representation on plain statements, never
// execution.
func TestPlanRewritesPreserveExecution(t *testing.T) {
	const n = 24
	run := func(optimized bool) *Engine {
		e := New(topology.FourSocketIvyBridge(), 1)
		tbl := buildPlacedTable(e, 2, 20000, true)
		rng := rand.New(rand.NewSource(42))
		qs := randomStatements(rng, n)
		inflight := 0
		next := 0
		var issue func()
		issue = func() {
			for inflight < 6 && next < len(qs) {
				q := qs[next]
				next++
				inflight++
				q.Table = tbl
				q.OnDone = func(float64) { inflight--; issue() }
				if optimized {
					e.Submit(q)
					continue
				}
				low := plan.OptimizeWith(plan.BuildQuery(plan.Statement{
					Table: q.Table, Column: q.Column, Selectivity: q.Selectivity,
					ExtraPredicateColumns: q.ExtraPredicateColumns,
					ProjectColumns:        q.ProjectColumns,
					UseIndex:              q.UseIndex, Parallel: q.Parallel,
					Aggregate: q.Aggregate, AggBytesPerRow: q.AggBytesPerRow,
					AggCyclesPerRow: q.AggCyclesPerRow,
				}), nil, &e.Costs, nil).Lower(plan.Deps{Alloc: e.Placer.Alloc, DisableCoalesce: e.DisableCoalesce})
				e.SubmitPipeline(q.Strategy, q.HomeSocket, q.OnDone, low.Ops...)
			}
		}
		issue()
		e.Sim.Run(0.4)
		return e
	}
	o := run(true).Counters
	u := run(false).Counters
	if o.QueriesDone != uint64(n) {
		t.Fatalf("optimized run completed %d of %d statements", o.QueriesDone, n)
	}
	if o.QueriesDone != u.QueriesDone || o.TasksExecuted != u.TasksExecuted ||
		o.TasksStolen != u.TasksStolen {
		t.Fatalf("counts drifted: optimized {q %d, tasks %d} vs unoptimized {q %d, tasks %d}",
			o.QueriesDone, o.TasksExecuted, u.QueriesDone, u.TasksExecuted)
	}
	if o.TotalMCBytes() != u.TotalMCBytes() || o.LLCLocal != u.LLCLocal ||
		o.LLCRemote != u.LLCRemote || o.LinkDataBytes != u.LinkDataBytes ||
		o.LinkTotalBytes != u.LinkTotalBytes {
		t.Fatal("traffic drifted between optimized and unoptimized lowering")
	}
	if o.IPC() != u.IPC() || o.WorkerBusySeconds != u.WorkerBusySeconds {
		t.Fatal("compute drifted between optimized and unoptimized lowering")
	}
	if o.Latencies() != u.Latencies() {
		t.Fatalf("latency distribution drifted:\n optimized   %+v\n unoptimized %+v",
			o.Latencies(), u.Latencies())
	}
}

// TestSubmitBatchGroupsCommonSubplans pins the plan-driven cohort path: a
// batch of same-column shareable scans lands in the registry as one
// plan-grouped cohort, non-shareable statements in the same batch take the
// private pipeline, and every statement completes.
func TestSubmitBatchGroupsCommonSubplans(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	reg := e.EnableSharedScans(sharedscan.Config{})
	tbl := buildPlacedTable(e, 2, 20000, false)

	done := 0
	onDone := func(float64) { done++ }
	var qs []*Query
	for i := 0; i < 5; i++ {
		qs = append(qs, &Query{
			Table: tbl, Column: "COLA", Selectivity: 1e-3,
			Parallel: true, Strategy: Bound, OnDone: onDone,
		})
	}
	// A non-shareable rider: multi-predicate statements keep the private path.
	qs = append(qs, &Query{
		Table: tbl, Column: "COLA", Selectivity: 1e-3,
		ExtraPredicateColumns: []string{"COLB"},
		Parallel:              true, Strategy: Bound, OnDone: onDone,
	})
	e.SubmitBatch(qs)
	e.Sim.Run(0.3)

	if done != len(qs) {
		t.Fatalf("completed %d of %d batch statements", done, len(qs))
	}
	st := reg.Stats()
	if st.PlanGrouped != 5 {
		t.Errorf("plan-grouped statements = %d, want 5 (%+v)", st.PlanGrouped, st)
	}
	if st.Statements != 5 {
		t.Errorf("registry statements = %d, want 5 (the rider must stay private)", st.Statements)
	}
	if st.Passes != 1 || st.Merged != 4 {
		t.Errorf("grouped batch did not share one pass: %+v", st)
	}
}

// TestSubmitBatchFallsBackUnderAdmission: with no registry the batch degrades
// to per-statement submission and still completes everything.
func TestSubmitBatchFallsBackUnderAdmission(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 1, 20000, false)
	done := 0
	var qs []*Query
	for i := 0; i < 4; i++ {
		qs = append(qs, &Query{
			Table: tbl, Column: "COLA", Selectivity: 1e-3,
			Parallel: true, Strategy: Bound, OnDone: func(float64) { done++ },
		})
	}
	e.SubmitBatch(qs)
	e.Sim.Run(0.3)
	if done != len(qs) {
		t.Fatalf("completed %d of %d statements without a registry", done, len(qs))
	}
}
