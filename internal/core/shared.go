package core

// The engine's shared-scan path: shareable statements are handed to the
// sharedscan.Registry as cohort members instead of building a private
// ScanOp. The member carries everything the registry needs to assemble the
// statement's pipeline — the predicate, the scheduling parameters, the
// output-phase factory, and the lifecycle hooks — so the registry can merge
// concurrent same-column scans into one physical pass while every statement
// keeps its own latency, logical traffic, and completion callbacks.

import (
	"numacs/internal/exec"
	"numacs/internal/sharedscan"
	"numacs/internal/sim"
	"numacs/internal/trace"
)

// shareableScan reports whether a query can join a scan cohort: an
// intra-parallel, index-free, single-predicate scan of a single-part table.
// Unparallelized scans (the Figure 10 single-task path), index lookups,
// multi-predicate statements, and physically partitioned tables keep the
// private path.
func (e *Engine) shareableScan(q *Query) bool {
	return q.Parallel && !q.UseIndex &&
		len(q.ExtraPredicateColumns) == 0 && q.Table.NumParts() == 1
}

// submitShared dispatches a shareable query through the cohort registry:
// the fixed per-query overhead runs first (as on the private path), then
// the statement joins the registry's lifecycle for its column. The member's
// shed deadline extends the admission class deadline into the join window;
// a shed frees the admission slot and fires q.OnShed.
func (e *Engine) submitShared(q *Query, st *trace.Statement, gran int, issuedAt float64, onDone func(latency float64), release func()) {
	deadline := 0.0
	if e.Admit != nil {
		if d := e.Admit.DeadlineFor(q.Class); d > 0 {
			deadline = issuedAt + d
		}
	}
	e.activeStatements++
	m := &sharedscan.Member{
		Key:         q.Table.Name + "." + q.Column,
		Table:       q.Table,
		Column:      q.Column,
		Selectivity: q.Selectivity,
		Strategy:    q.Strategy,
		HomeSocket:  q.HomeSocket,
		MaxFanout:   gran,
		IssuedAt:    issuedAt,
		Deadline:    deadline,
		Trace:       st,
		SecondOp:    func(src exec.RegionSource) exec.Operator { return e.secondOp(q, src) },
		OnDone: func(lat float64) {
			e.activeStatements--
			onDone(lat)
		},
		OnShed: func() {
			e.activeStatements--
			if release != nil {
				release()
			}
			if q.OnShed != nil {
				q.OnShed()
			}
		},
	}
	// Phase 0: the same fixed per-query overhead as SubmitPipelineAt, on the
	// client's connection thread; the statement joins its cohort only once
	// parse/plan/session work is paid.
	e.Sim.StartFlow(&sim.Flow{
		Remaining: e.Costs.QueryOverheadSeconds,
		RateCap:   1,
		OnDone:    func() { e.Shared.Submit(m) },
	})
}

// secondOp builds the query's output phase over the given find-phase
// regions — the same materialization or aggregation operator the private
// path composes.
func (e *Engine) secondOp(q *Query, src exec.RegionSource) exec.Operator {
	if q.Aggregate {
		return &exec.AggregateOp{
			Source:          src,
			BytesPerRow:     q.AggBytesPerRow,
			CyclesPerRow:    q.AggCyclesPerRow,
			ProjectColumns:  q.ProjectColumns,
			Parallel:        q.Parallel,
			DisableCoalesce: e.DisableCoalesce,
		}
	}
	return &exec.MaterializeOp{
		Scan:            src,
		ProjectColumns:  q.ProjectColumns,
		Parallel:        q.Parallel,
		DisableCoalesce: e.DisableCoalesce,
	}
}
