package core

// The engine's planning and shared-scan glue: every plain statement is built
// into a logical plan, optimized, and lowered to exec operators, and a
// statement whose lowered plan is shareable is handed to the
// sharedscan.Registry as a cohort member instead of dispatching its private
// ScanOp. The member carries everything the registry needs to assemble the
// statement's pipeline — the predicate, the scheduling parameters, the
// lowered output-phase factory, and the lifecycle hooks — so the registry can
// merge concurrent same-column scans into one physical pass while every
// statement keeps its own latency, logical traffic, and completion callbacks.

import (
	"numacs/internal/plan"
	"numacs/internal/sharedscan"
	"numacs/internal/sim"
	"numacs/internal/trace"
)

// planQuery runs one statement through the planner: build the logical tree,
// optimize, and lower to exec operators. The per-statement hot path plans
// without a statistics catalog (stat-less passes keep the written plan, and
// the shareable/pushdown analysis needs no stats), so Submit never pays a
// catalog walk; batch and star paths collect stats explicitly.
func (e *Engine) planQuery(q *Query) *plan.Lowered {
	l := plan.BuildQuery(plan.Statement{
		Table:                 q.Table,
		Column:                q.Column,
		Selectivity:           q.Selectivity,
		ExtraPredicateColumns: q.ExtraPredicateColumns,
		ProjectColumns:        q.ProjectColumns,
		UseIndex:              q.UseIndex,
		Parallel:              q.Parallel,
		Aggregate:             q.Aggregate,
		AggBytesPerRow:        q.AggBytesPerRow,
		AggCyclesPerRow:       q.AggCyclesPerRow,
	})
	return plan.Optimize(l, nil, &e.Costs).Lower(e.planDeps())
}

// planDeps exposes the engine-side dependencies plan lowering needs.
func (e *Engine) planDeps() plan.Deps {
	return plan.Deps{Alloc: e.Placer.Alloc, DisableCoalesce: e.DisableCoalesce}
}

// cohortMember wraps a planned shareable statement as a cohort-registry
// member and counts it as an active statement. The member's shed deadline
// extends the admission class deadline into the join window; a shed frees the
// admission slot and fires q.OnShed.
func (e *Engine) cohortMember(q *Query, low *plan.Lowered, st *trace.Statement, gran int, issuedAt float64, onDone func(latency float64), release func()) *sharedscan.Member {
	deadline := 0.0
	if e.Admit != nil {
		if d := e.Admit.DeadlineFor(q.Class); d > 0 {
			deadline = issuedAt + d
		}
	}
	e.activeStatements++
	return &sharedscan.Member{
		Key:         low.ShareKey,
		Table:       q.Table,
		Column:      q.Column,
		Selectivity: q.Selectivity,
		Strategy:    q.Strategy,
		HomeSocket:  q.HomeSocket,
		MaxFanout:   gran,
		IssuedAt:    issuedAt,
		Deadline:    deadline,
		Trace:       st,
		SecondOp:    low.SecondOp,
		OnDone: func(lat float64) {
			e.activeStatements--
			if onDone != nil {
				onDone(lat)
			}
		},
		OnShed: func() {
			e.activeStatements--
			if release != nil {
				release()
			}
			if q.OnShed != nil {
				q.OnShed()
			}
		},
	}
}

// submitShared dispatches a shareable planned query through the cohort
// registry: the fixed per-query overhead runs first (as on the private path),
// then the statement joins the registry's lifecycle for its column.
func (e *Engine) submitShared(q *Query, low *plan.Lowered, st *trace.Statement, gran int, issuedAt float64, onDone func(latency float64), release func()) {
	m := e.cohortMember(q, low, st, gran, issuedAt, onDone, release)
	// Phase 0: the same fixed per-query overhead as SubmitPipelineAt, on the
	// client's connection thread; the statement joins its cohort only once
	// parse/plan/session work is paid.
	e.Sim.StartFlow(&sim.Flow{
		Remaining: e.Costs.QueryOverheadSeconds,
		RateCap:   1,
		OnDone:    func() { e.Shared.Submit(m) },
	})
}
