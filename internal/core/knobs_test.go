package core

import (
	"testing"

	"numacs/internal/topology"
)

// TestUnboundPenaltyDrivesOSGap: the calibrated unbound-worker penalty is
// what separates OS from Bound; with the penalty off, the gap must shrink
// substantially.
func TestUnboundPenaltyDrivesOSGap(t *testing.T) {
	run := func(penalty float64, strategy Strategy) float64 {
		e := New(topology.FourSocketIvyBridge(), 1)
		e.Costs.UnboundStreamPenalty = penalty
		tbl := buildPlacedTable(e, 8, 60000, false)
		for i := 0; i < 64; i++ {
			i := i
			var issue func(float64)
			issue = func(float64) {
				e.Submit(&Query{
					Table: tbl, Column: "COLA", Selectivity: 0.0001,
					Parallel: true, Strategy: strategy, HomeSocket: i % 4,
					OnDone: issue,
				})
			}
			issue(0)
		}
		e.Sim.Run(0.15)
		return float64(e.Counters.QueriesDone)
	}
	bound := run(0.15, Bound)
	osPenalized := run(0.15, OSched)
	osFree := run(1.0, OSched)
	if bound/osPenalized < 1.2*(bound/osFree) {
		t.Fatalf("penalty should widen the gap: bound/os %0.2f with penalty, %0.2f without",
			bound/osPenalized, bound/osFree)
	}
}

// TestDisableCoalesceIssuesMoreTasks: without region coalescing, the
// materialization preprocessing keeps one partition per fixed output region
// (each needing at least one task), so at high concurrency — where the
// concurrency hint would otherwise issue a single task — tasks per query
// explode. That is precisely the overhead the Section 5.2 coalescing
// avoids.
func TestDisableCoalesceIssuesMoreTasks(t *testing.T) {
	run := func(disable bool) uint64 {
		e := New(topology.FourSocketIvyBridge(), 1)
		e.DisableCoalesce = disable
		tbl := buildPlacedTable(e, 2, 60000, false)
		for i := 0; i < 64; i++ {
			e.Submit(&Query{
				Table: tbl, Column: "COLA", Selectivity: 0.1,
				Parallel: true, Strategy: Bound, HomeSocket: i % 4,
				OnDone: func(float64) {},
			})
		}
		e.Sim.Run(0.1)
		q := e.Counters.QueriesDone
		if q == 0 {
			t.Fatal("no queries done")
		}
		return e.Counters.TasksExecuted / q
	}
	coalesced := run(false)
	exploded := run(true)
	if exploded < coalesced*3 {
		t.Fatalf("disabling coalescing should multiply tasks/query: %d vs %d", exploded, coalesced)
	}
}

// TestBitvectorOutputFormat: at high selectivity the scan writes a bitvector
// (rows/8 bytes) instead of a position list (4 bytes per match), so the
// scan-phase output bytes drop by ~32x selectivity.
func TestBitvectorOutputFormat(t *testing.T) {
	run := func(sel float64) float64 {
		e := New(topology.FourSocketIvyBridge(), 1)
		tbl := buildPlacedTable(e, 2, 60000, false)
		done := false
		e.Submit(&Query{
			Table: tbl, Column: "COLA", Selectivity: sel,
			Parallel: false, Strategy: Bound, HomeSocket: 0,
			OnDone: func(float64) { done = true },
		})
		e.Sim.Run(0.3)
		if !done {
			t.Fatal("query did not complete")
		}
		return e.Counters.TotalMCBytes()
	}
	// Just below and above the threshold: the bitvector's fixed rows/8
	// output is smaller than 60000*0.05*4 position bytes, so total traffic
	// must not jump proportionally to matches.
	below := run(0.019)
	above := run(0.021)
	// Above the threshold output bytes shrink; scan+materialization grow
	// slightly with matches. Net: traffic above must be < traffic below
	// scaled by the match ratio.
	if above >= below*(0.021/0.019) {
		t.Fatalf("bitvector format did not reduce output traffic: %.0f -> %.0f", below, above)
	}
}

// TestZeroMatchQueryCompletes: a predicate with no qualifying rows skips
// materialization entirely.
func TestZeroMatchQueryCompletes(t *testing.T) {
	e := New(topology.FourSocketIvyBridge(), 1)
	tbl := buildPlacedTable(e, 2, 1000, false)
	done := false
	e.Submit(&Query{
		Table: tbl, Column: "COLA", Selectivity: 0, // zero matches
		Parallel: true, Strategy: Bound, HomeSocket: 0,
		OnDone: func(float64) { done = true },
	})
	e.Sim.Run(0.2)
	if !done {
		t.Fatal("zero-selectivity query did not complete")
	}
}

// TestHintDisabledFansOutMaximally verifies the ablation knob at high
// concurrency: without the hint every query fans out to the machine width.
func TestHintDisabledFansOutMaximally(t *testing.T) {
	run := func(enabled bool) uint64 {
		e := New(topology.FourSocketIvyBridge(), 1)
		e.ConcurrencyHintEnabled = enabled
		tbl := buildPlacedTable(e, 2, 60000, false)
		for i := 0; i < 64; i++ {
			e.Submit(&Query{
				Table: tbl, Column: "COLA", Selectivity: 0.0001,
				Parallel: true, Strategy: Bound, HomeSocket: i % 4,
				OnDone: func(float64) {},
			})
		}
		e.Sim.Run(0.05)
		q := e.Counters.QueriesDone
		if q == 0 {
			t.Fatal("no queries done")
		}
		return e.Counters.TasksExecuted / q
	}
	withHint := run(true)
	withoutHint := run(false)
	if withoutHint < withHint*4 {
		t.Fatalf("hint off should multiply tasks/query: %d vs %d", withoutHint, withHint)
	}
}
