package core

// The engine's write path: appends into per-socket delta fragments and the
// background merge that folds them back into the dictionary-encoded main.
// Writes are not statements — a delta append is orders of magnitude cheaper
// than a scan — so they bypass the scheduler: the data-structure mutation
// applies immediately (ApplyInsert/ApplyUpdate), and the DRAM traffic of an
// append batch is modeled as one flow against the fragment socket's memory
// controller (AddWriteTraffic), which is how writes contend with concurrent
// scans. The merge runs as a background flow (StartMerge) whose completion
// swaps in the rebuilt main via placement.MergeDelta.

import (
	"fmt"

	"numacs/internal/admit"
	"numacs/internal/colstore"
	"numacs/internal/delta"
	"numacs/internal/exec"
	"numacs/internal/placement"
	"numacs/internal/sim"
	"numacs/internal/trace"
)

// SubmitWrite routes a write batch through the admission controller as a
// short Interactive-class statement when admission is enabled, or applies it
// immediately otherwise. apply must perform the data-structure mutations and
// start the batch's traffic flows, calling done when the flows complete —
// under admission the batch may wait in its tenant's queue first (writes are
// deferred, not applied-then-admitted), and the Interactive deadline can
// shed it, in which case apply never runs.
func (e *Engine) SubmitWrite(tenant string, onShed func(), apply func(done func())) {
	var st *trace.Statement
	if e.Trace != nil {
		st = e.Trace.StartStatement(tenant, admit.Interactive.String(), "write", e.Sim.Now())
	}
	if e.Admit == nil {
		apply(func() {
			if st != nil {
				st.MarkDone(e.Sim.Now())
			}
		})
		return
	}
	e.Admit.Submit(&admit.Statement{
		Tenant: tenant,
		Class:  admit.Interactive,
		Trace:  st,
		OnShed: onShed,
		Run: func(gran int, issuedAt float64, done func()) {
			apply(func() {
				if st != nil {
					st.MarkDone(e.Sim.Now())
				}
				done()
			})
		},
	})
}

// EnsureDelta returns the column's delta store, creating the per-socket
// fragments on the first write. Columns that are never written keep a nil
// Delta, which is what keeps the read-only scan paths bit-identical to a
// delta-free build.
func (e *Engine) EnsureDelta(col *colstore.Column) *delta.Delta {
	if col.Delta == nil {
		col.Delta = delta.New(e.Machine.Sockets, col.Synthetic)
	}
	return col.Delta
}

// ApplyInsert appends a new row carrying value v to the column's delta
// fragment on the given socket (the writing client's socket — appends are
// always local). The simulated fragment allocation grows as needed. Traffic
// is accounted separately via AddWriteTraffic so callers can batch.
func (e *Engine) ApplyInsert(col *colstore.Column, socket int, v int64) {
	d := e.EnsureDelta(col)
	d.Insert(socket, v)
	e.Placer.EnsureDeltaCapacity(d.Fragment(socket))
}

// ApplyUpdate appends a new version of main row `row` carrying value v to
// the column's delta fragment on the given socket. Scans keep reading the
// stale main row until the next merge folds the new version in; the
// analytic match model treats the delta version as an extra scanned row.
func (e *Engine) ApplyUpdate(col *colstore.Column, socket, row int, v int64) {
	d := e.EnsureDelta(col)
	d.Update(socket, row, v)
	e.Placer.EnsureDeltaCapacity(d.Fragment(socket))
}

// AddWriteTraffic models the DRAM traffic of `rows` delta appends into the
// column's fragment on the given socket as one flow against that socket's
// memory controller — writes contend with scans for the MC, which is the
// contention the Section 7 placer's update-rate concerns are about. The
// bytes are attributed to the item as write traffic (arming the placer's
// write-guard).
func (e *Engine) AddWriteTraffic(col *colstore.Column, socket, rows int) {
	e.AddWriteTrafficDone(col, socket, rows, nil)
}

// AddWriteTrafficDone is AddWriteTraffic with a completion callback, fired
// when the batch's flow drains (immediately for empty batches) — the hook
// admitted write statements report their completion through.
func (e *Engine) AddWriteTrafficDone(col *colstore.Column, socket, rows int, onDone func()) {
	if rows <= 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	bytes := float64(rows) * e.Costs.DeltaWriteBytesPerRow
	name := col.Name
	e.Sim.StartFlow(&sim.Flow{
		Remaining: bytes,
		RateCap:   e.Machine.StreamRate(socket, socket),
		Demands:   []sim.Demand{{Resource: e.HW.MC[socket], Weight: 1}},
		OnAdvance: func(p float64) {
			e.Counters.AddMemoryTraffic(socket, socket, p, 0, 0)
			e.addItemTraffic(name, socket, exec.Traffic{Bytes: p, WriteBytes: p})
		},
		OnDone: onDone,
	})
}

// StartMerge launches the background merge of the column's delta: a flow
// streams the rebuild bytes (read old main + delta, write new main) at the
// column-rebuild rate against the target socket's memory controller, and on
// completion placement.MergeDelta swaps the rebuilt, re-placed main in
// (replicas invalidated and rebuilt). In-flight scans keep their plan-time
// watermark; appends during the merge stay in the delta. It returns whether
// a merge started, the NUMA target socket, and the modeled rebuild bytes.
// At most one merge runs per column (the delta's merge latch).
func (e *Engine) StartMerge(col *colstore.Column, onDone func(mergedRows int)) (started bool, target int, bytes int64) {
	d := col.Delta
	if d == nil || d.Rows() == 0 {
		return false, -1, 0
	}
	if !d.BeginMerge() {
		return false, -1, 0
	}
	// The merge folds exactly the rows visible now: the flow's bytes and the
	// completion's MergeDelta share this snapshot, so rows appended while
	// the rebuild is in flight stay in the delta for the next round.
	snap := d.Snapshot()
	// NUMA-aware target: the merged main lands where the primary copy
	// lives, so the rebuild writes (and the post-merge scans) stay local.
	target = col.IVPSM.MajoritySocket()
	if len(col.ReplicaSockets) > 0 {
		target = col.ReplicaSockets[0]
	}
	if target < 0 {
		target = 0
	}
	bytes = 2*(col.IVBytes()+col.DictBytes()) + int64(snap.TotalRows())*delta.RowBytes
	if e.Trace != nil {
		e.Trace.Decisions.Record(trace.Decision{
			Time: e.Sim.Now(), Source: "merge", Kind: "merge-start", Item: col.Name,
			From: target, To: target,
			Cause: fmt.Sprintf("%d delta rows folded into the main on socket %d (%.1fMiB rebuild)",
				snap.TotalRows(), target, float64(bytes)/(1<<20)),
		})
	}
	e.Sim.StartFlow(&sim.Flow{
		Remaining: float64(bytes),
		RateCap:   1 / placement.RebuildCostPerByte,
		Demands:   []sim.Demand{{Resource: e.HW.MC[target], Weight: 1}},
		OnAdvance: func(p float64) {
			// Merge traffic loads the target's MC but is deliberately NOT
			// attributed to the item as write traffic: the write-guard keys
			// on client writes, and a merge of a replicated, barely-written
			// column must not read as "write-hot" and self-reclaim the very
			// replicas it is about to rebuild.
			e.Counters.AddMemoryTraffic(target, target, p, 0, 0)
		},
		OnDone: func() {
			rows, pages := e.Placer.MergeDelta(col, snap)
			e.MergesCompleted++
			e.MergePagesCopied += pages
			d.EndMerge()
			if onDone != nil {
				onDone(rows)
			}
		},
	})
	return true, target, bytes
}
