// Package topology describes NUMA machines: sockets, cores, hardware
// threads, memory controllers, interconnect links and routes, access
// latencies, and the cache-coherence protocol. It ships the three machines
// from Table 1 of the paper and a builder for custom topologies.
package topology

import (
	"fmt"
	"math"
)

// GiB is 2^30 bytes; bandwidths below are expressed in GiB/s for readability
// and converted to bytes/s.
const GiB = 1024 * 1024 * 1024

// linkRawFactor converts a measured payload bandwidth (Table 1's B/W rows,
// measured with Intel MLC) into the raw link capacity the simulator manages:
// raw capacity carries payload plus protocol/coherence overhead
// (LinkDataFactor), so a single-socket stream measures the Table 1 value.
const linkRawFactor = 1.35

// CacheLine is the coherence granule in bytes.
const CacheLine = 64

// Coherence identifies the cache-coherence protocol, which determines how
// much interconnect traffic memory accesses generate beyond the data itself.
type Coherence int

const (
	// Directory-based coherence (Ivybridge-EX): snoops are targeted, so the
	// coherence tax is a modest per-byte inflation on the data's route.
	Directory Coherence = iota
	// BroadcastSnoop (Westmere-EX): every memory access broadcasts snoops on
	// all links of the requesting socket, so even purely local streaming
	// consumes interconnect bandwidth. This is why the 8-socket machine's
	// total local bandwidth (96.2 GiB/s) is far below the per-socket sum
	// (8 x 19.3 = 154.4 GiB/s) in Table 1.
	BroadcastSnoop
)

func (c Coherence) String() string {
	switch c {
	case Directory:
		return "directory"
	case BroadcastSnoop:
		return "broadcast-snoop"
	default:
		return fmt.Sprintf("coherence(%d)", int(c))
	}
}

// Link is a directed interconnect link between two sockets (or between a
// socket and an off-socket router on hierarchical machines; routers are
// modelled as extra nodes past the socket indices).
type Link struct {
	From, To  int
	Bandwidth float64 // bytes/s usable for data+coherence in this direction
}

// Machine is a complete NUMA machine description.
type Machine struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	FreqHz         float64

	// MCBandwidth is the per-socket memory-controller bandwidth in bytes/s
	// ("local B/W" row of Table 1).
	MCBandwidth float64

	// Nodes is the total node count in the link graph: sockets first, then
	// any routers. Links reference node indices.
	Nodes int
	Links []Link

	// LocalLatency is the idle local DRAM latency in seconds; HopLatency is
	// the added latency per link traversed.
	LocalLatency float64
	HopLatency   float64
	// MaxLatency optionally clamps the worst-case latency (Table 1's "max
	// hops latency"); zero means no clamp.
	MaxLatency float64
	// RouterLatency is added per intermediate router node traversed
	// (NUMAlink routers on the rack-scale machine add more latency than a
	// direct QPI hop).
	RouterLatency float64

	Coherence Coherence
	// SnoopFactor is the fraction of each memory-access byte that is
	// broadcast as snoop traffic on every link of the accessing socket under
	// BroadcastSnoop coherence.
	SnoopFactor float64
	// LinkDataFactor inflates data bytes on each route link to account for
	// request/acknowledgement and directory-coherence overhead.
	LinkDataFactor float64

	// MLP is the number of outstanding cache-line misses a single hardware
	// thread sustains while streaming; it bounds the per-thread streaming
	// rate to CacheLine*MLP/latency.
	MLP float64
	// RandomMLP is the same bound for dependent random accesses
	// (materialization dictionary probes, index chasing).
	RandomMLP float64
	// HTEfficiency is the combined throughput of two hardware threads on one
	// core relative to one thread (e.g. 1.25 = +25%).
	HTEfficiency float64

	routes [][][]int // src socket -> dst socket -> link indices along route
	hops   [][]int   // src -> dst -> number of links
	lat    [][]float64

	outLinks [][]int // socket -> indices of links leaving that socket
}

// TotalThreads returns the number of hardware contexts of the machine.
func (m *Machine) TotalThreads() int {
	return m.Sockets * m.CoresPerSocket * m.ThreadsPerCore
}

// ThreadsPerSocket returns the hardware contexts per socket.
func (m *Machine) ThreadsPerSocket() int {
	return m.CoresPerSocket * m.ThreadsPerCore
}

// Route returns the link indices traversed from socket src to socket dst.
// The route is empty for local access.
func (m *Machine) Route(src, dst int) []int { return m.routes[src][dst] }

// Hops returns the number of links between two sockets.
func (m *Machine) Hops(src, dst int) int { return m.hops[src][dst] }

// Latency returns the DRAM access latency in seconds from a core on socket
// src to memory on socket dst.
func (m *Machine) Latency(src, dst int) float64 { return m.lat[src][dst] }

// SocketLinks returns the indices of links leaving the given socket.
func (m *Machine) SocketLinks(s int) []int { return m.outLinks[s] }

// StreamRate returns the per-hardware-thread streaming bandwidth bound in
// bytes/s for accesses from socket src to memory on socket dst.
func (m *Machine) StreamRate(src, dst int) float64 {
	return CacheLine * m.MLP / m.Latency(src, dst)
}

// RandomRate returns the per-hardware-thread dependent-random-access rate in
// accesses/s from socket src to memory on socket dst.
func (m *Machine) RandomRate(src, dst int) float64 {
	return m.RandomMLP / m.Latency(src, dst)
}

// MaxHops returns the diameter of the socket graph in links.
func (m *Machine) MaxHops() int {
	max := 0
	for s := 0; s < m.Sockets; s++ {
		for d := 0; d < m.Sockets; d++ {
			if m.hops[s][d] > max {
				max = m.hops[s][d]
			}
		}
	}
	return max
}

// Finalize computes routes, hop counts, and latencies from the link graph.
// It must be called after constructing a custom Machine; the shipped
// machines are already finalized.
func (m *Machine) Finalize() error {
	if m.Sockets <= 0 || m.Nodes < m.Sockets {
		return fmt.Errorf("topology: bad node counts (sockets=%d nodes=%d)", m.Sockets, m.Nodes)
	}
	adj := make([][]int, m.Nodes) // node -> link indices out
	for i, l := range m.Links {
		if l.From < 0 || l.From >= m.Nodes || l.To < 0 || l.To >= m.Nodes {
			return fmt.Errorf("topology: link %d endpoints out of range", i)
		}
		adj[l.From] = append(adj[l.From], i)
	}
	m.routes = make([][][]int, m.Sockets)
	m.hops = make([][]int, m.Sockets)
	m.lat = make([][]float64, m.Sockets)
	m.outLinks = make([][]int, m.Sockets)
	for s := 0; s < m.Sockets; s++ {
		m.outLinks[s] = adj[s]
		m.routes[s] = make([][]int, m.Sockets)
		m.hops[s] = make([]int, m.Sockets)
		m.lat[s] = make([]float64, m.Sockets)
		// BFS from s over the link graph.
		prevLink := make([]int, m.Nodes)
		dist := make([]int, m.Nodes)
		for i := range prevLink {
			prevLink[i] = -1
			dist[i] = math.MaxInt32
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, li := range adj[n] {
				to := m.Links[li].To
				if dist[to] == math.MaxInt32 {
					dist[to] = dist[n] + 1
					prevLink[to] = li
					queue = append(queue, to)
				}
			}
		}
		for d := 0; d < m.Sockets; d++ {
			if d == s {
				m.lat[s][d] = m.LocalLatency
				continue
			}
			if dist[d] == math.MaxInt32 {
				return fmt.Errorf("topology: socket %d unreachable from %d", d, s)
			}
			// Reconstruct route.
			var route []int
			for n := d; n != s; {
				li := prevLink[n]
				route = append(route, li)
				n = m.Links[li].From
			}
			// Reverse in place.
			for i, j := 0, len(route)-1; i < j; i, j = i+1, j-1 {
				route[i], route[j] = route[j], route[i]
			}
			m.routes[s][d] = route
			m.hops[s][d] = dist[d]
			lat := m.LocalLatency + float64(dist[d])*m.HopLatency
			// Intermediate nodes past the socket range are routers.
			for _, li := range route {
				if m.Links[li].To >= m.Sockets {
					lat += m.RouterLatency
				}
			}
			if m.MaxLatency > 0 && lat > m.MaxLatency {
				lat = m.MaxLatency
			}
			m.lat[s][d] = lat
		}
	}
	return nil
}

// mesh adds full-mesh bidirectional links among the given nodes.
func mesh(links []Link, nodes []int, bw float64) []Link {
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				links = append(links, Link{From: a, To: b, Bandwidth: bw})
			}
		}
	}
	return links
}

// FourSocketIvyBridge models the paper's main machine: 4 sockets of 15-core
// Intel Xeon E7-4880 v2 (Ivybridge-EX) at 2.5 GHz, fully interconnected with
// QPI, directory coherence. Table 1 column 1.
func FourSocketIvyBridge() *Machine {
	m := &Machine{
		Name:           "4S-IvybridgeEX",
		Sockets:        4,
		CoresPerSocket: 15,
		ThreadsPerCore: 2,
		FreqHz:         2.5e9,
		MCBandwidth:    65 * GiB,
		Nodes:          4,
		LocalLatency:   150e-9,
		HopLatency:     90e-9, // 150 + 90 = 240 ns one hop
		Coherence:      Directory,
		SnoopFactor:    0,
		LinkDataFactor: 1.35,
		MLP:            10,
		RandomMLP:      4,
		HTEfficiency:   1.25,
	}
	m.Links = mesh(nil, []int{0, 1, 2, 3}, 8.8*linkRawFactor*GiB)
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}

// EightSocketWestmere models the 8-socket Westmere-EX machine: two IBM x3950
// X5 boxes of 4 sockets each (E7-8870, 10 cores, 2.4 GHz), QPI mesh inside a
// box, two inter-box links, broadcast-snoop coherence. Table 1 column 3.
func EightSocketWestmere() *Machine {
	m := &Machine{
		Name:           "8S-WestmereEX",
		Sockets:        8,
		CoresPerSocket: 10,
		ThreadsPerCore: 2,
		FreqHz:         2.4e9,
		MCBandwidth:    19.3 * GiB,
		Nodes:          8,
		LocalLatency:   163e-9,
		HopLatency:     41e-9, // 163+41=204 ~ 195 ns one hop; 245 ns two hops
		MaxLatency:     245e-9,
		Coherence:      BroadcastSnoop,
		// Snoops broadcast along the routes to every other socket; the factor
		// is calibrated (together with the link raws below) so the machine
		// measures Table 1's column: 19.3 GiB/s per-socket local, ~10.3
		// 1-hop, ~4.6 max-hop, and — crucially — a total local bandwidth of
		// ~96 GiB/s instead of the 154 GiB/s per-socket sum.
		SnoopFactor:    0.0617,
		LinkDataFactor: 1.35,
		MLP:            8,
		RandomMLP:      4,
		HTEfficiency:   1.25,
	}
	var links []Link
	links = mesh(links, []int{0, 1, 2, 3}, 10.8*linkRawFactor*GiB)
	links = mesh(links, []int{4, 5, 6, 7}, 10.8*linkRawFactor*GiB)
	// Two inter-box QPI links (each direction), shared by all cross-box pairs.
	for _, p := range [][2]int{{0, 4}, {3, 7}} {
		links = append(links,
			Link{From: p[0], To: p[1], Bandwidth: 5.5 * linkRawFactor * GiB},
			Link{From: p[1], To: p[0], Bandwidth: 5.5 * linkRawFactor * GiB})
	}
	m.Links = links
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}

// ThirtyTwoSocketIvyBridge models the SGI UV 300 rack-scale machine: 32
// sockets of E7-8890 v2 (15 cores, 2.8 GHz) arranged as 8 blades of 4
// sockets; sockets inside a blade are fully interconnected, and each blade
// has a NUMAlink router; routers are fully interconnected. Table 1 column 2.
func ThirtyTwoSocketIvyBridge() *Machine {
	return HierarchicalIvyBridge(8)
}

// SixteenSocketIvyBridge is half of the rack-scale machine: Section 6.3
// splits the 32-socket system into two 16-socket halves, one hosting the
// database server.
func SixteenSocketIvyBridge() *Machine {
	return HierarchicalIvyBridge(4)
}

// HierarchicalIvyBridge builds an SGI-UV-style machine with the given number
// of 4-socket blades.
func HierarchicalIvyBridge(blades int) *Machine {
	const perBlade = 4
	m := &Machine{
		Name:           fmt.Sprintf("%dS-IvybridgeEX", blades*perBlade),
		Sockets:        blades * perBlade,
		CoresPerSocket: 15,
		ThreadsPerCore: 2,
		FreqHz:         2.8e9,
		MCBandwidth:    47.5 * GiB,
		Nodes:          blades*perBlade + blades, // sockets + one router per blade
		LocalLatency:   112e-9,
		HopLatency:     81e-9,   // 1 hop (intra-blade): 193 ns
		RouterLatency:  72.5e-9, // inter-blade (3 links + 2 routers): 500 ns
		MaxLatency:     500e-9,
		Coherence:      Directory,
		SnoopFactor:    0,
		LinkDataFactor: 1.35,
		MLP:            10,
		RandomMLP:      4,
		HTEfficiency:   1.25,
	}
	var links []Link
	for b := 0; b < blades; b++ {
		nodes := make([]int, perBlade)
		for i := range nodes {
			nodes[i] = b*perBlade + i
		}
		links = mesh(links, nodes, 11.8*linkRawFactor*GiB)
		// Socket <-> blade router links.
		router := blades*perBlade + b
		for _, s := range nodes {
			links = append(links,
				Link{From: s, To: router, Bandwidth: 9.8 * linkRawFactor * GiB},
				Link{From: router, To: s, Bandwidth: 9.8 * linkRawFactor * GiB})
		}
	}
	// Router full mesh (NUMAlink backplane).
	routers := make([]int, blades)
	for b := range routers {
		routers[b] = blades*perBlade + b
	}
	links = mesh(links, routers, 9.8*linkRawFactor*GiB)
	m.Links = links
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}

// Uniform builds a simple fully-interconnected machine, mainly for tests.
func Uniform(sockets, coresPerSocket int, mcGiBs, linkGiBs float64) *Machine {
	m := &Machine{
		Name:           fmt.Sprintf("uniform-%ds", sockets),
		Sockets:        sockets,
		CoresPerSocket: coresPerSocket,
		ThreadsPerCore: 2,
		FreqHz:         2.5e9,
		MCBandwidth:    mcGiBs * GiB,
		Nodes:          sockets,
		LocalLatency:   150e-9,
		HopLatency:     90e-9,
		Coherence:      Directory,
		LinkDataFactor: 1.35,
		MLP:            10,
		RandomMLP:      4,
		HTEfficiency:   1.25,
	}
	nodes := make([]int, sockets)
	for i := range nodes {
		nodes[i] = i
	}
	m.Links = mesh(nil, nodes, linkGiBs*GiB)
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}
