package topology

import (
	"math"
	"testing"
)

func TestFourSocketShape(t *testing.T) {
	m := FourSocketIvyBridge()
	if m.Sockets != 4 || m.CoresPerSocket != 15 || m.ThreadsPerCore != 2 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	if m.TotalThreads() != 120 {
		t.Fatalf("TotalThreads = %d, want 120", m.TotalThreads())
	}
	if m.MaxHops() != 1 {
		t.Fatalf("4-socket machine should be fully interconnected, max hops = %d", m.MaxHops())
	}
	// Table 1: local 150 ns, 1 hop 240 ns.
	if got := m.Latency(0, 0); math.Abs(got-150e-9) > 1e-12 {
		t.Fatalf("local latency = %v", got)
	}
	if got := m.Latency(0, 3); math.Abs(got-240e-9) > 1e-12 {
		t.Fatalf("1-hop latency = %v", got)
	}
}

func TestFourSocketRoutes(t *testing.T) {
	m := FourSocketIvyBridge()
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			r := m.Route(s, d)
			if s == d {
				if len(r) != 0 {
					t.Fatalf("local route not empty: %v", r)
				}
				continue
			}
			if len(r) != 1 {
				t.Fatalf("route %d->%d has %d links, want 1", s, d, len(r))
			}
			l := m.Links[r[0]]
			if l.From != s || l.To != d {
				t.Fatalf("route %d->%d uses link %+v", s, d, l)
			}
		}
	}
}

func TestEightSocketWestmere(t *testing.T) {
	m := EightSocketWestmere()
	if m.Coherence != BroadcastSnoop {
		t.Fatal("Westmere must use broadcast-snoop coherence")
	}
	if m.MaxHops() < 2 {
		t.Fatalf("8-socket machine should be multi-hop, max hops = %d", m.MaxHops())
	}
	// Table 1: local 163 ns, max hops 245 ns.
	if got := m.Latency(0, 0); math.Abs(got-163e-9) > 1e-12 {
		t.Fatalf("local latency = %v", got)
	}
	// Cross-box worst case is clamped at 245 ns.
	worst := 0.0
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if m.Latency(s, d) > worst {
				worst = m.Latency(s, d)
			}
		}
	}
	if math.Abs(worst-245e-9) > 1e-12 {
		t.Fatalf("max latency = %v, want 245 ns", worst)
	}
}

func TestThirtyTwoSocket(t *testing.T) {
	m := ThirtyTwoSocketIvyBridge()
	if m.Sockets != 32 {
		t.Fatalf("sockets = %d", m.Sockets)
	}
	if m.TotalThreads() != 960 {
		t.Fatalf("TotalThreads = %d, want 960", m.TotalThreads())
	}
	// Intra-blade: 1 hop, 193 ns.
	if got := m.Latency(0, 1); math.Abs(got-193e-9) > 1e-12 {
		t.Fatalf("intra-blade latency = %v", got)
	}
	// Inter-blade: 3 links (socket->router->router->socket), clamped 500 ns.
	if h := m.Hops(0, 4); h != 3 {
		t.Fatalf("inter-blade hops = %d, want 3", h)
	}
	// Table 1: max hops latency 500 ns (3 links + 2 NUMAlink routers).
	if got := m.Latency(0, 4); math.Abs(got-500e-9) > 1e-12 {
		t.Fatalf("inter-blade latency = %v, want 500 ns", got)
	}
	// All sockets reachable.
	for s := 0; s < 32; s++ {
		for d := 0; d < 32; d++ {
			if s != d && len(m.Route(s, d)) == 0 {
				t.Fatalf("no route %d->%d", s, d)
			}
		}
	}
}

func TestRoutesAreConnectedPaths(t *testing.T) {
	for _, m := range []*Machine{FourSocketIvyBridge(), EightSocketWestmere(), ThirtyTwoSocketIvyBridge()} {
		for s := 0; s < m.Sockets; s++ {
			for d := 0; d < m.Sockets; d++ {
				if s == d {
					continue
				}
				at := s
				for _, li := range m.Route(s, d) {
					l := m.Links[li]
					if l.From != at {
						t.Fatalf("%s: route %d->%d broken at node %d (link %+v)", m.Name, s, d, at, l)
					}
					at = l.To
				}
				if at != d {
					t.Fatalf("%s: route %d->%d ends at %d", m.Name, s, d, at)
				}
			}
		}
	}
}

func TestStreamRateLocalFasterThanRemote(t *testing.T) {
	for _, m := range []*Machine{FourSocketIvyBridge(), EightSocketWestmere(), ThirtyTwoSocketIvyBridge()} {
		local := m.StreamRate(0, 0)
		for d := 1; d < m.Sockets; d++ {
			if r := m.StreamRate(0, d); r >= local {
				t.Fatalf("%s: remote stream rate to %d (%v) >= local (%v)", m.Name, d, r, local)
			}
		}
	}
}

func TestSocketLinksLeaveSocket(t *testing.T) {
	m := ThirtyTwoSocketIvyBridge()
	for s := 0; s < m.Sockets; s++ {
		ls := m.SocketLinks(s)
		if len(ls) == 0 {
			t.Fatalf("socket %d has no outgoing links", s)
		}
		for _, li := range ls {
			if m.Links[li].From != s {
				t.Fatalf("link %d does not leave socket %d", li, s)
			}
		}
	}
}

func TestFinalizeErrors(t *testing.T) {
	m := &Machine{Sockets: 2, Nodes: 2} // no links: unreachable
	if err := m.Finalize(); err == nil {
		t.Fatal("expected unreachable-socket error")
	}
	m = &Machine{Sockets: 2, Nodes: 2, Links: []Link{{From: 0, To: 5}}}
	if err := m.Finalize(); err == nil {
		t.Fatal("expected out-of-range link error")
	}
	m = &Machine{Sockets: 0}
	if err := m.Finalize(); err == nil {
		t.Fatal("expected bad node count error")
	}
}

func TestUniformBuilder(t *testing.T) {
	m := Uniform(2, 4, 10, 5)
	if m.Sockets != 2 || m.TotalThreads() != 16 {
		t.Fatalf("unexpected uniform machine: %+v", m)
	}
	if m.MCBandwidth != 10*GiB {
		t.Fatalf("MC bandwidth = %v", m.MCBandwidth)
	}
}
