// Package agg implements the Section 6.3 benchmark workloads as synthetic
// equivalents (the paper's TPC-H kit and the proprietary SAP BW-EML
// benchmark are not available here; see DESIGN.md for the substitution
// argument):
//
//   - A TPC-H-Q1-style workload: continuously issued instances of an
//     aggregation query over one large lineitem-like table, dominated by
//     per-row multiplications — CPU-intensive, which is why stealing
//     (Target) helps it.
//   - A BW-EML-style reporting workload: three star-schema "InfoCube"
//     tables queried with simple, memory-intensive aggregations — which is
//     why stealing hurts and Bound wins.
package agg

import (
	"fmt"
	"math/rand"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/exec"
	"numacs/internal/workload"
)

// Q1Config sizes the lineitem-like table.
type Q1Config struct {
	Rows int
	Seed int64
}

// Q1Table builds the synthetic lineitem table: a predicate column standing
// in for l_shipdate plus the aggregated measure columns (quantity,
// extendedprice, discount, tax, returnflag, linestatus).
func Q1Table(cfg Q1Config) *colstore.Table {
	ds := workload.DatasetConfig{
		Rows:       cfg.Rows,
		Columns:    7,
		BitcaseMin: 12,
		BitcaseMax: 16,
		Seed:       cfg.Seed,
		Synthetic:  true,
	}
	t := workload.Generate(ds)
	// Rename to the TPC-H roles for readability in reports.
	names := []string{"L_SHIPDATE", "L_QUANTITY", "L_EXTENDEDPRICE", "L_DISCOUNT",
		"L_TAX", "L_RETURNFLAG", "L_LINESTATUS"}
	for i, c := range t.Parts[0].Columns {
		c.Name = names[i]
	}
	return t
}

// Q1 query profile: Q1 qualifies almost every row (shipdate <= ~98% of the
// horizon) and computes several multiplications per row, making it
// CPU-intensive (Section 6.3).
const (
	Q1Selectivity = 0.97
	// Q1BytesPerRow: six measure columns at ~2 packed bytes each.
	Q1BytesPerRow = 12
	// Q1CyclesPerRow: the sum/avg/discount/tax multiplication chains.
	Q1CyclesPerRow = 90
)

// BWEMLConfig sizes the InfoCube tables.
type BWEMLConfig struct {
	RowsPerCube int
	Cubes       int // the benchmark has 3
	Seed        int64
}

// BWEMLCubes builds the InfoCube tables.
func BWEMLCubes(cfg BWEMLConfig) []*colstore.Table {
	if cfg.Cubes == 0 {
		cfg.Cubes = 3
	}
	cubes := make([]*colstore.Table, cfg.Cubes)
	for i := range cubes {
		ds := workload.DatasetConfig{
			Rows:       cfg.RowsPerCube,
			Columns:    8,
			BitcaseMin: 10,
			BitcaseMax: 14,
			Seed:       cfg.Seed + int64(i),
			Synthetic:  true,
		}
		t := workload.Generate(ds)
		t.Name = fmt.Sprintf("INFOCUBE%d", i+1)
		cubes[i] = t
	}
	return cubes
}

// BW-EML query profile: reporting navigation steps scan a cube and apply
// simple aggregation expressions — memory-intensive (Section 6.3).
const (
	BWEMLSelectivity  = 0.30
	BWEMLBytesPerRow  = 16
	BWEMLCyclesPerRow = 6
)

// Clients drives closed-loop aggregation clients over one or more tables
// (Q1 uses one; BW-EML picks among the cubes uniformly).
type Clients struct {
	Engine   *core.Engine
	Tables   []*colstore.Table
	Column   func(t *colstore.Table) string // predicate column per table
	N        int
	Strategy core.Strategy

	Selectivity  float64
	BytesPerRow  float64
	CyclesPerRow float64

	rng     *rand.Rand
	stopped bool
	Issued  uint64
}

// NewQ1Clients builds the TPC-H-Q1-style population.
func NewQ1Clients(e *core.Engine, table *colstore.Table, n int, strategy core.Strategy, seed int64) *Clients {
	return &Clients{
		Engine: e, Tables: []*colstore.Table{table},
		Column:       func(*colstore.Table) string { return "L_SHIPDATE" },
		N:            n,
		Strategy:     strategy,
		Selectivity:  Q1Selectivity,
		BytesPerRow:  Q1BytesPerRow,
		CyclesPerRow: Q1CyclesPerRow,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// NewBWEMLClients builds the BW-EML-style population over the cubes.
func NewBWEMLClients(e *core.Engine, cubes []*colstore.Table, n int, strategy core.Strategy, seed int64) *Clients {
	return &Clients{
		Engine: e, Tables: cubes,
		Column:       func(t *colstore.Table) string { return t.Parts[0].Columns[0].Name },
		N:            n,
		Strategy:     strategy,
		Selectivity:  BWEMLSelectivity,
		BytesPerRow:  BWEMLBytesPerRow,
		CyclesPerRow: BWEMLCyclesPerRow,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Start admits all clients.
func (c *Clients) Start() {
	for i := 0; i < c.N; i++ {
		c.issue(i)
	}
}

// Stop prevents further queries.
func (c *Clients) Stop() { c.stopped = true }

// issue composes one aggregation statement directly on the operator-pipeline
// layer: a find-phase scan feeding an aggregation over its qualifying
// regions (the same two operators a core.Query with Aggregate set builds).
func (c *Clients) issue(client int) {
	if c.stopped {
		return
	}
	c.Issued++
	t := c.Tables[c.rng.Intn(len(c.Tables))]
	scan := &exec.ScanOp{
		Table:       t,
		Column:      c.Column(t),
		Selectivity: c.Selectivity,
		Parallel:    true,
	}
	agg := &exec.AggregateOp{
		Source:          scan,
		BytesPerRow:     c.BytesPerRow,
		CyclesPerRow:    c.CyclesPerRow,
		Parallel:        true,
		DisableCoalesce: c.Engine.DisableCoalesce,
	}
	c.Engine.SubmitPipeline(c.Strategy, client%c.Engine.Machine.Sockets,
		func(float64) { c.issue(client) }, scan, agg)
}
