package agg

import (
	"testing"

	"numacs/internal/core"
	"numacs/internal/topology"
)

func TestQ1TableShape(t *testing.T) {
	tbl := Q1Table(Q1Config{Rows: 10000, Seed: 1})
	if tbl.Rows != 10000 {
		t.Fatalf("rows = %d", tbl.Rows)
	}
	names := tbl.ColumnNames()
	if len(names) != 7 || names[0] != "L_SHIPDATE" || names[2] != "L_EXTENDEDPRICE" {
		t.Fatalf("names = %v", names)
	}
}

func TestBWEMLCubes(t *testing.T) {
	cubes := BWEMLCubes(BWEMLConfig{RowsPerCube: 5000, Seed: 1})
	if len(cubes) != 3 {
		t.Fatalf("cubes = %d, want 3", len(cubes))
	}
	for i, c := range cubes {
		if c.Rows != 5000 {
			t.Fatalf("cube %d rows = %d", i, c.Rows)
		}
		if c.Name == "" {
			t.Fatal("cube unnamed")
		}
	}
}

func TestQ1ClientsRun(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	tbl := Q1Table(Q1Config{Rows: 50000, Seed: 1})
	pp := e.Placer.PlacePP(tbl, 4)
	c := NewQ1Clients(e, pp, 8, core.Target, 7)
	c.Start()
	e.Sim.Run(0.2)
	if e.Counters.QueriesDone == 0 {
		t.Fatal("no Q1 instances completed")
	}
	// Q1 is aggregation-heavy: compute instructions should dwarf the scan's.
	if e.Counters.IPC() <= 0 {
		t.Fatal("no compute recorded")
	}
}

func TestBWEMLClientsSpreadOverCubes(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	cubes := BWEMLCubes(BWEMLConfig{RowsPerCube: 30000, Seed: 1})
	for i, cube := range cubes {
		e.Placer.PlaceTableOnSocket(cube, i%m.Sockets)
	}
	c := NewBWEMLClients(e, cubes, 12, core.Bound, 7)
	c.Start()
	e.Sim.Run(0.2)
	if e.Counters.QueriesDone == 0 {
		t.Fatal("no BW-EML steps completed")
	}
	// The three cubes sit on sockets 0..2; all three must serve traffic.
	for s := 0; s < 3; s++ {
		if e.Counters.MCBytes[s] == 0 {
			t.Fatalf("cube socket %d served no bytes", s)
		}
	}
}

// Q1 must be more CPU-intensive per byte than BW-EML — that asymmetry drives
// the paper's Figure 19 conclusions.
func TestQ1MoreCPUIntensiveThanBWEML(t *testing.T) {
	if Q1CyclesPerRow/Q1BytesPerRow <= BWEMLCyclesPerRow/BWEMLBytesPerRow {
		t.Fatal("Q1 should burn more cycles per byte than BW-EML")
	}
}

func TestAggClientsClosedLoop(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	tbl := Q1Table(Q1Config{Rows: 20000, Seed: 1})
	e.Placer.PlaceTableOnSocket(tbl, 0)
	c := NewQ1Clients(e, tbl, 4, core.Bound, 7)
	c.Start()
	e.Sim.Run(0.1)
	inFlight := int(c.Issued) - int(e.Counters.QueriesDone)
	if inFlight != 4 {
		t.Fatalf("in-flight = %d, want 4", inFlight)
	}
	c.Stop()
	issued := c.Issued
	e.Sim.Run(0.15)
	if c.Issued != issued {
		t.Fatal("Stop did not stop issuing")
	}
}
