package psm

import (
	"testing"
	"testing/quick"

	"numacs/internal/memsim"
)

const page = memsim.PageSize

func TestBuildSingleSocketRange(t *testing.T) {
	a := memsim.NewAllocator(4)
	r := a.Alloc(10*page, memsim.OnSocket(2))
	p := Build(a, r)
	if p.NumRanges() != 1 {
		t.Fatalf("ranges = %d, want 1: %s", p.NumRanges(), p)
	}
	if p.TotalPages() != 10 {
		t.Fatalf("pages = %d, want 10", p.TotalPages())
	}
	if got := p.LocationOf(r.Start + 5*page + 17); got != 2 {
		t.Fatalf("LocationOf = %d, want 2", got)
	}
	if got := p.MajoritySocket(); got != 2 {
		t.Fatalf("MajoritySocket = %d, want 2", got)
	}
}

func TestBuildDetectsInterleave(t *testing.T) {
	a := memsim.NewAllocator(4)
	r := a.Alloc(16*page, memsim.Interleaved{Sockets: []int{0, 1, 2, 3}})
	p := Build(a, r)
	if p.NumRanges() != 1 {
		t.Fatalf("interleaved range should collapse to one entry, got %d: %s", p.NumRanges(), p)
	}
	for i := 0; i < 16; i++ {
		want := i % 4
		if got := p.LocationOf(r.Start + memsim.Addr(i*page)); got != want {
			t.Fatalf("page %d: LocationOf = %d, want %d", i, got, want)
		}
	}
	sum := p.Summary()
	for s := 0; s < 4; s++ {
		if sum[s] != 4 {
			t.Fatalf("summary = %v, want 4 pages on each socket", sum)
		}
	}
}

func TestBuildPatternBreak(t *testing.T) {
	// Interleave that breaks into a solid run: 0,1,0,1,0,1,2,2,2,2.
	a := memsim.NewAllocator(4)
	r := a.Alloc(10*page, memsim.OnSocket(2))
	a.InterleavePages(r.Subrange(0, 6*page), []int{0, 1})
	p := Build(a, r)
	for i, want := range []int{0, 1, 0, 1, 0, 1, 2, 2, 2, 2} {
		if got := p.LocationOf(r.Start + memsim.Addr(i*page)); got != want {
			t.Fatalf("page %d: LocationOf = %d, want %d (%s)", i, got, want, p)
		}
	}
	if p.NumRanges() > 3 {
		t.Fatalf("expected compact encoding, got %d ranges: %s", p.NumRanges(), p)
	}
}

func TestBuildMixedRanges(t *testing.T) {
	// The paper's Figure 5 example: one range split across two sockets plus
	// an interleaved range.
	a := memsim.NewAllocator(4)
	iv := a.Alloc(4*page, memsim.OnSocket(0))
	a.MovePages(iv.Subrange(2*page, 2*page), 1)
	dict := a.Alloc(3*page, memsim.Interleaved{Sockets: []int{0, 1, 2, 3}, Start: 2})
	p := Build(a, iv, dict)
	if got := p.LocationOf(iv.Start); got != 0 {
		t.Fatalf("iv page 0 on %d", got)
	}
	if got := p.LocationOf(iv.Start + 3*page); got != 1 {
		t.Fatalf("iv page 3 on %d", got)
	}
	if got := p.LocationOf(dict.Start); got != 2 {
		t.Fatalf("dict page 0 on %d, want 2", got)
	}
	if got := p.TotalPages(); got != 7 {
		t.Fatalf("pages = %d, want 7", got)
	}
}

func TestLocationOfUntracked(t *testing.T) {
	p := New()
	if got := p.LocationOf(123456); got != -1 {
		t.Fatalf("LocationOf on empty PSM = %d, want -1", got)
	}
	if got := p.MajoritySocket(); got != -1 {
		t.Fatalf("MajoritySocket on empty PSM = %d, want -1", got)
	}
}

func TestAddSkipsTrackedPages(t *testing.T) {
	a := memsim.NewAllocator(2)
	r := a.Alloc(4*page, memsim.OnSocket(0))
	p := Build(a, r)
	a.MovePages(r, 1) // move everything; PSM must keep the stale view
	p.Add(a, r)       // already tracked: no change
	if got := p.LocationOf(r.Start); got != 0 {
		t.Fatalf("Add re-read tracked pages: socket %d", got)
	}
	if p.TotalPages() != 4 {
		t.Fatalf("pages = %d", p.TotalPages())
	}
}

func TestRemoveSplitsRanges(t *testing.T) {
	a := memsim.NewAllocator(2)
	r := a.Alloc(10*page, memsim.OnSocket(0))
	p := Build(a, r)
	p.Remove(r.Subrange(4*page, 2*page))
	if p.TotalPages() != 8 {
		t.Fatalf("pages = %d, want 8", p.TotalPages())
	}
	if got := p.LocationOf(r.Start + 4*page); got != -1 {
		t.Fatalf("removed page still resolves to %d", got)
	}
	if got := p.LocationOf(r.Start + 6*page); got != 0 {
		t.Fatalf("kept page lost: %d", got)
	}
	if p.NumRanges() != 2 {
		t.Fatalf("ranges = %d, want 2: %s", p.NumRanges(), p)
	}
}

func TestRemovePreservesInterleavePhase(t *testing.T) {
	a := memsim.NewAllocator(4)
	r := a.Alloc(12*page, memsim.Interleaved{Sockets: []int{0, 1, 2, 3}})
	p := Build(a, r)
	p.Remove(r.Subrange(0, 2*page)) // now starts at page 2 -> socket 2
	if got := p.LocationOf(r.Start + 2*page); got != 2 {
		t.Fatalf("phase lost after Remove: socket %d, want 2 (%s)", got, p)
	}
	if got := p.LocationOf(r.Start + 5*page); got != 1 {
		t.Fatalf("phase lost after Remove: socket %d, want 1", got)
	}
}

func TestMoveRange(t *testing.T) {
	a := memsim.NewAllocator(4)
	r := a.Alloc(8*page, memsim.OnSocket(0))
	p := Build(a, r)
	moved := p.MoveRange(a, r.Subrange(0, 4*page), 3)
	if moved != 4 {
		t.Fatalf("moved = %d, want 4", moved)
	}
	if got := p.LocationOf(r.Start); got != 3 {
		t.Fatalf("PSM stale after MoveRange: %d", got)
	}
	if got := p.LocationOf(r.Start + 6*page); got != 0 {
		t.Fatalf("unmoved page relocated: %d", got)
	}
	if got := a.PageSocket(r.Start); got != 3 {
		t.Fatalf("allocator disagrees: %d", got)
	}
}

func TestInterleaveRange(t *testing.T) {
	a := memsim.NewAllocator(4)
	r := a.Alloc(8*page, memsim.OnSocket(0))
	p := Build(a, r)
	p.InterleaveRange(a, r, []int{0, 1, 2, 3})
	for i := 0; i < 8; i++ {
		if got := p.LocationOf(r.Start + memsim.Addr(i*page)); got != i%4 {
			t.Fatalf("page %d on %d after interleave", i, got)
		}
	}
}

func TestSocketBytes(t *testing.T) {
	a := memsim.NewAllocator(2)
	r := a.Alloc(4*page, memsim.OnSocket(0))
	a.MovePages(r.Subrange(2*page, 2*page), 1)
	p := Build(a, r)
	b := p.SocketBytes(r, 0, 4*page)
	if b[0] != 2*page || b[1] != 2*page {
		t.Fatalf("SocketBytes = %v", b)
	}
	// Subrange straddling the boundary.
	b = p.SocketBytes(r, page, 2*page)
	if b[0] != page || b[1] != page {
		t.Fatalf("SocketBytes(straddle) = %v", b)
	}
}

// Paper Section 4.3: metadata sizes for a column on a 32-socket machine.
func TestPaperMetadataSizes(t *testing.T) {
	// Whole column on one socket: r=1 for IV, r=1 for dict, r=2 for IX
	// => 4 ranges total => 4*360 + 3*8192 bits ~ 3 KiB.
	bits := func(ranges, psms int) int { return ranges*entryBits + psms*summaryBits }
	if got, want := bits(4, 3), 26016; got != want {
		t.Fatalf("whole-socket metadata = %d bits, want %d", got, want)
	}
	// IVP across 32 sockets: r=32 IV + r=1 dict + r=2 IX = 35 ranges.
	if got, want := bits(35, 3), 37176; got != want {
		t.Fatalf("IVP metadata = %d bits, want %d", got, want)
	}
	// PP with 32 parts: per part 4 ranges and 3 PSMs.
	got := 32 * bits(4, 3)
	if got != 832512 { // ~102 KiB
		t.Fatalf("PP metadata = %d bits", got)
	}
	if kib := float64(got) / 8 / 1024; kib < 100 || kib > 104 {
		t.Fatalf("PP metadata = %.1f KiB, want ~102 KiB", kib)
	}
}

func TestSizeBitsMatchesFormula(t *testing.T) {
	a := memsim.NewAllocator(4)
	r := a.Alloc(8*page, memsim.OnSocket(0))
	a.MovePages(r.Subrange(4*page, 4*page), 1)
	p := Build(a, r)
	if got, want := p.SizeBits(), 2*360+8192; got != want {
		t.Fatalf("SizeBits = %d, want %d", got, want)
	}
}

func TestSubset(t *testing.T) {
	a := memsim.NewAllocator(4)
	r := a.Alloc(8*page, memsim.OnSocket(0))
	a.MovePages(r.Subrange(4*page, 4*page), 1)
	p := Build(a, r)
	q := p.Subset(r.Subrange(4*page, 4*page))
	if q.TotalPages() != 4 {
		t.Fatalf("subset pages = %d, want 4", q.TotalPages())
	}
	if got := q.MajoritySocket(); got != 1 {
		t.Fatalf("subset majority = %d, want 1", got)
	}
	// Original untouched.
	if p.TotalPages() != 8 {
		t.Fatal("Subset mutated the source PSM")
	}
}

func TestAddPSM(t *testing.T) {
	a := memsim.NewAllocator(4)
	r1 := a.Alloc(4*page, memsim.OnSocket(0))
	r2 := a.Alloc(4*page, memsim.OnSocket(1))
	p := Build(a, r1)
	q := Build(a, r2)
	p.AddPSM(q)
	if p.TotalPages() != 8 {
		t.Fatalf("merged pages = %d, want 8", p.TotalPages())
	}
	if got := p.LocationOf(r2.Start); got != 1 {
		t.Fatalf("merged lookup = %d, want 1", got)
	}
}

// Property: for any move sequence, PSM lookups agree with the allocator
// after a rebuild, and the summary equals per-socket page counts.
func TestPSMAgreesWithAllocatorProperty(t *testing.T) {
	f := func(seed uint32) bool {
		a := memsim.NewAllocator(4)
		n := int64(2 + seed%40)
		r := a.Alloc(n*page, memsim.Interleaved{Sockets: []int{0, 1, 2, 3}})
		s := seed
		for i := 0; i < 6; i++ {
			s = s*1664525 + 1013904223
			off := int64(s%uint32(n)) * page
			s = s*1664525 + 1013904223
			ln := int64(1+s%8) * page
			if off+ln > r.Bytes {
				ln = r.Bytes - off
			}
			if ln <= 0 {
				continue
			}
			s = s*1664525 + 1013904223
			a.MovePages(r.Subrange(off, ln), int(s%4))
		}
		p := Build(a, r)
		if p.TotalPages() != uint64(n) {
			return false
		}
		var counts [4]uint32
		for i := int64(0); i < n; i++ {
			addr := r.Start + memsim.Addr(i*page)
			got := p.LocationOf(addr)
			want := a.PageSocket(addr)
			if got != want {
				return false
			}
			counts[want]++
		}
		sum := p.Summary()
		for sck, c := range counts {
			have := uint32(0)
			if sck < len(sum) {
				have = sum[sck]
			}
			if have != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
