// Package psm implements the Page Socket Mapping of Section 4.3 of the
// paper: a compact, read-optimized summary of the physical location of
// virtual address ranges. A PSM maintains a sorted vector of ranges — each
// holding a first page address (64 bits), a page count (32 bits), a socket
// (8 bits), and an interleaving pattern (256 bits) — plus a summary vector of
// pages per socket (256 x 32 bits). Looking up the physical location of a
// pointer is a binary search over the ranges' first pages, following the
// interleaving pattern when the range is interleaved.
package psm

import (
	"fmt"
	"sort"
	"strings"

	"numacs/internal/memsim"
)

// MaxSockets is the maximum socket count a PSM can describe (the paper sizes
// the interleaving pattern and summary vector for 256 sockets).
const MaxSockets = 256

// entryBits is the size of one stored range: 64 (first page address) +
// 32 (number of pages) + 8 (socket) + 256 (interleaving pattern).
const entryBits = 64 + 32 + 8 + 256

// summaryBits is the size of the pages-per-socket summary vector.
const summaryBits = MaxSockets * 32

// rangeEntry is one entry of the internal vector of ranges.
type rangeEntry struct {
	firstPage uint64 // page index (address / PageSize)
	nPages    uint32
	socket    uint8 // for interleaved ranges: the starting socket
	// pattern lists the participating sockets of an interleaved range in
	// round-robin order starting at 'socket'; nil for non-interleaved ranges.
	// (The paper stores this as a 256-bit socket bitmask plus start socket;
	// we keep the explicit order, which is equivalent for lookups and is
	// still accounted at 256 bits in SizeBits.)
	pattern []uint8
}

func (e *rangeEntry) lastPage() uint64 { return e.firstPage + uint64(e.nPages) - 1 }

// pageLoc pairs a page index with the socket backing it.
type pageLoc struct {
	page   uint64
	socket int
}

func (e *rangeEntry) socketOfPage(page uint64) int {
	if len(e.pattern) == 0 {
		return int(e.socket)
	}
	off := page - e.firstPage
	return int(e.pattern[off%uint64(len(e.pattern))])
}

// PSM summarizes the physical location of a set of virtual pages.
type PSM struct {
	ranges  []rangeEntry
	summary [MaxSockets]uint32
}

// New returns an empty PSM.
func New() *PSM { return &PSM{} }

// Build creates a PSM for the given virtual ranges by querying the allocator
// for the physical location of each page (the move_pages query path),
// collapsing contiguous same-socket pages into ranges and detecting
// round-robin interleaving patterns.
func Build(alloc *memsim.Allocator, ranges ...memsim.Range) *PSM {
	p := New()
	for _, r := range ranges {
		p.Add(alloc, r)
	}
	return p
}

// Add incorporates the pages of a virtual range. Pages already tracked are
// skipped, mirroring the paper's description.
func (p *PSM) Add(alloc *memsim.Allocator, r memsim.Range) {
	if r.Bytes == 0 {
		return
	}
	first := r.Start.PageIndex()
	n := uint64(r.Pages())
	// Collect the physical socket of each not-yet-tracked page.
	var locs []pageLoc
	socks := alloc.QueryPages(memsim.Range{Start: r.Start.PageBase(), Bytes: int64(n) * memsim.PageSize})
	for i := uint64(0); i < n; i++ {
		page := first + i
		if socks[i] < 0 || p.contains(page) {
			continue
		}
		locs = append(locs, pageLoc{page, socks[i]})
	}
	// Greedily emit runs, preferring plain same-socket runs and falling back
	// to interleave detection when consecutive pages alternate sockets with
	// a recurring pattern.
	for i := 0; i < len(locs); {
		// Extend a same-socket contiguous run.
		j := i + 1
		for j < len(locs) && locs[j].page == locs[j-1].page+1 && locs[j].socket == locs[i].socket {
			j++
		}
		if j-i > 1 || j == len(locs) || locs[j].page != locs[j-1].page+1 {
			p.insert(rangeEntry{firstPage: locs[i].page, nPages: uint32(j - i), socket: uint8(locs[i].socket)})
			i = j
			continue
		}
		// Try to detect an interleaving pattern: find the shortest period k
		// (2..MaxSockets) such that sockets repeat with period k over a
		// contiguous run of pages.
		runEnd := i + 1
		for runEnd < len(locs) && locs[runEnd].page == locs[runEnd-1].page+1 {
			runEnd++
		}
		run := locs[i:runEnd]
		k, covered := detectPattern(run)
		if k >= 2 {
			pat := make([]uint8, k)
			for x := 0; x < k; x++ {
				pat[x] = uint8(run[x].socket)
			}
			p.insert(rangeEntry{
				firstPage: run[0].page,
				nPages:    uint32(covered),
				socket:    pat[0],
				pattern:   pat,
			})
			i += covered
			continue
		}
		// No pattern: emit the single page.
		p.insert(rangeEntry{firstPage: locs[i].page, nPages: 1, socket: uint8(locs[i].socket)})
		i++
	}
}

// detectPattern finds the shortest period k>=2 under which a prefix of the
// run's socket sequence repeats with k distinct sockets (a round-robin
// interleave) and returns k with the length of the periodic prefix. A
// pattern must recur for at least two full periods; otherwise (0,0) is
// returned and the caller falls back to plain ranges.
func detectPattern(run []pageLoc) (k, covered int) {
	for k = 2; k <= MaxSockets && 2*k <= len(run); k++ {
		distinct := make(map[int]bool, k)
		for x := 0; x < k; x++ {
			distinct[run[x].socket] = true
		}
		if len(distinct) != k {
			continue
		}
		c := k
		for c < len(run) && run[c].socket == run[c-k].socket {
			c++
		}
		if c >= 2*k {
			return k, c
		}
	}
	return 0, 0
}

// contains reports whether the page is already tracked.
func (p *PSM) contains(page uint64) bool {
	i := sort.Search(len(p.ranges), func(i int) bool { return p.ranges[i].lastPage() >= page })
	return i < len(p.ranges) && p.ranges[i].firstPage <= page
}

// insert adds an entry keeping the vector sorted by first page, merging with
// an adjacent compatible plain range when possible.
func (p *PSM) insert(e rangeEntry) {
	// Update summary.
	if len(e.pattern) == 0 {
		p.summary[e.socket] += e.nPages
	} else {
		k := uint32(len(e.pattern))
		for idx, s := range e.pattern {
			cnt := e.nPages / k
			if uint32(idx) < e.nPages%k {
				cnt++
			}
			p.summary[s] += cnt
		}
	}
	i := sort.Search(len(p.ranges), func(i int) bool { return p.ranges[i].firstPage > e.firstPage })
	// Merge with predecessor when contiguous, same socket, both plain.
	if i > 0 {
		prev := &p.ranges[i-1]
		if len(prev.pattern) == 0 && len(e.pattern) == 0 &&
			prev.socket == e.socket && prev.firstPage+uint64(prev.nPages) == e.firstPage {
			prev.nPages += e.nPages
			p.mergeForward(i - 1)
			return
		}
	}
	p.ranges = append(p.ranges, rangeEntry{})
	copy(p.ranges[i+1:], p.ranges[i:])
	p.ranges[i] = e
	p.mergeForward(i)
}

// mergeForward merges entry i with its successor if compatible.
func (p *PSM) mergeForward(i int) {
	for i+1 < len(p.ranges) {
		a, b := &p.ranges[i], &p.ranges[i+1]
		if len(a.pattern) == 0 && len(b.pattern) == 0 && a.socket == b.socket &&
			a.firstPage+uint64(a.nPages) == b.firstPage {
			a.nPages += b.nPages
			p.ranges = append(p.ranges[:i+1], p.ranges[i+2:]...)
			continue
		}
		return
	}
}

// Remove drops all pages of the virtual range from the PSM, splitting
// entries as needed.
func (p *PSM) Remove(r memsim.Range) {
	if r.Bytes == 0 {
		return
	}
	first := r.Start.PageIndex()
	last := (r.End() - 1).PageIndex()
	var out []rangeEntry
	var summary [MaxSockets]uint32
	for _, e := range p.ranges {
		segs := subtract(e, first, last)
		out = append(out, segs...)
	}
	p.ranges = out
	for _, e := range p.ranges {
		if len(e.pattern) == 0 {
			summary[e.socket] += e.nPages
		} else {
			k := uint32(len(e.pattern))
			for idx, s := range e.pattern {
				cnt := e.nPages / k
				if uint32(idx) < e.nPages%k {
					cnt++
				}
				summary[s] += cnt
			}
		}
	}
	p.summary = summary
}

// subtract returns e minus pages [first,last], preserving pattern phase.
func subtract(e rangeEntry, first, last uint64) []rangeEntry {
	eFirst, eLast := e.firstPage, e.lastPage()
	if last < eFirst || first > eLast {
		return []rangeEntry{e}
	}
	var out []rangeEntry
	if first > eFirst {
		left := e
		left.nPages = uint32(first - eFirst)
		out = append(out, left)
	}
	if last < eLast {
		right := e
		right.firstPage = last + 1
		right.nPages = uint32(eLast - last)
		if len(e.pattern) > 0 {
			// Rotate the pattern so it still starts at the new first page.
			shift := (last + 1 - eFirst) % uint64(len(e.pattern))
			pat := make([]uint8, len(e.pattern))
			for i := range pat {
				pat[i] = e.pattern[(uint64(i)+shift)%uint64(len(e.pattern))]
			}
			right.pattern = pat
			right.socket = pat[0]
		}
		out = append(out, right)
	}
	return out
}

// LocationOf returns the socket backing the page that contains the address,
// or -1 when the address is not tracked.
func (p *PSM) LocationOf(addr memsim.Addr) int {
	page := addr.PageIndex()
	i := sort.Search(len(p.ranges), func(i int) bool { return p.ranges[i].lastPage() >= page })
	if i == len(p.ranges) || p.ranges[i].firstPage > page {
		return -1
	}
	return p.ranges[i].socketOfPage(page)
}

// SocketBytes returns the per-socket resident bytes of the subrange
// [off, off+bytes) of r according to the PSM (page-granular: partial pages
// count proportionally).
func (p *PSM) SocketBytes(r memsim.Range, off, bytes int64) []int64 {
	out := make([]int64, MaxSockets)
	if bytes <= 0 {
		return out[:0]
	}
	sub := r.Subrange(off, bytes)
	maxSocket := 0
	first := sub.Start.PageIndex()
	for i := int64(0); i < sub.Pages(); i++ {
		page := first + uint64(i)
		s := p.LocationOf(memsim.Addr(page * memsim.PageSize))
		if s < 0 {
			continue
		}
		pageStart := memsim.Addr(page * memsim.PageSize)
		lo, hi := pageStart, pageStart+memsim.PageSize
		if sub.Start > lo {
			lo = sub.Start
		}
		if sub.End() < hi {
			hi = sub.End()
		}
		out[s] += int64(hi - lo)
		if s > maxSocket {
			maxSocket = s
		}
	}
	return out[:maxSocket+1]
}

// Summary returns pages per socket, indexed by socket id, trimmed to the
// highest socket in use.
func (p *PSM) Summary() []uint32 {
	hi := -1
	for s := MaxSockets - 1; s >= 0; s-- {
		if p.summary[s] > 0 {
			hi = s
			break
		}
	}
	out := make([]uint32, hi+1)
	copy(out, p.summary[:hi+1])
	return out
}

// TotalPages returns the number of pages the PSM tracks.
func (p *PSM) TotalPages() uint64 {
	total := uint64(0)
	for _, e := range p.ranges {
		total += uint64(e.nPages)
	}
	return total
}

// MajoritySocket returns the socket holding the most tracked pages, or -1
// for an empty PSM. Ties break toward the lower socket id.
func (p *PSM) MajoritySocket() int {
	best, bestPages := -1, uint32(0)
	for s := 0; s < MaxSockets; s++ {
		if p.summary[s] > bestPages {
			best, bestPages = s, p.summary[s]
		}
	}
	return best
}

// NumRanges returns the number of stored ranges.
func (p *PSM) NumRanges() int { return len(p.ranges) }

// SizeBits returns the metadata size in bits using the paper's accounting:
// 360 bits per stored range plus an 8192-bit summary vector.
func (p *PSM) SizeBits() int { return entryBits*len(p.ranges) + summaryBits }

// Clone returns a deep copy.
func (p *PSM) Clone() *PSM {
	q := &PSM{summary: p.summary}
	q.ranges = make([]rangeEntry, len(p.ranges))
	copy(q.ranges, p.ranges)
	for i := range q.ranges {
		if q.ranges[i].pattern != nil {
			pat := make([]uint8, len(q.ranges[i].pattern))
			copy(pat, q.ranges[i].pattern)
			q.ranges[i].pattern = pat
		}
	}
	return q
}

// AddPSM merges another PSM's ranges into p (pages already present win).
func (p *PSM) AddPSM(q *PSM) {
	for _, e := range q.ranges {
		for pg := e.firstPage; pg <= e.lastPage(); pg++ {
			if p.contains(pg) {
				continue
			}
			p.insert(rangeEntry{firstPage: pg, nPages: 1, socket: uint8(e.socketOfPage(pg))})
		}
	}
}

// Subset returns a new PSM restricted to the pages of the given range.
func (p *PSM) Subset(r memsim.Range) *PSM {
	q := p.Clone()
	first := r.Start.PageIndex()
	last := (r.End() - 1).PageIndex()
	if r.Bytes == 0 {
		return New()
	}
	// Remove everything before and after.
	if first > 0 {
		q.Remove(memsim.Range{Start: 0, Bytes: int64(first) * memsim.PageSize})
	}
	q.Remove(memsim.Range{Start: memsim.Addr((last + 1) * memsim.PageSize), Bytes: 1 << 50})
	return q
}

// MoveRange migrates the pages of the virtual range to the target socket via
// the allocator and updates the PSM in place.
func (p *PSM) MoveRange(alloc *memsim.Allocator, r memsim.Range, to int) int64 {
	moved := alloc.MovePages(r, to)
	p.Remove(r)
	p.Add(alloc, r)
	return moved
}

// InterleaveRange re-places the pages of the range round-robin across the
// given sockets via the allocator and updates the PSM in place.
func (p *PSM) InterleaveRange(alloc *memsim.Allocator, r memsim.Range, sockets []int) int64 {
	moved := alloc.InterleavePages(r, sockets)
	p.Remove(r)
	p.Add(alloc, r)
	return moved
}

// String renders the PSM for debugging.
func (p *PSM) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PSM{%d ranges, %d pages", len(p.ranges), p.TotalPages())
	for _, e := range p.ranges {
		if len(e.pattern) == 0 {
			fmt.Fprintf(&b, " [page %d +%d -> S%d]", e.firstPage, e.nPages, e.socket)
		} else {
			fmt.Fprintf(&b, " [page %d +%d interleave %v]", e.firstPage, e.nPages, e.pattern)
		}
	}
	b.WriteString("}")
	return b.String()
}
