package metrics

import "testing"

// TestSnapshotDelta: snapshots are value copies (later counter mutation does
// not leak in) and DeltaSince returns the per-field growth.
func TestSnapshotDelta(t *testing.T) {
	c := New(2)
	c.AddMemoryTraffic(0, 0, 100, 10, 20) // local on socket 0
	c.AddMemoryTraffic(0, 1, 64, 8, 16)   // remote: socket 0 reads socket 1
	c.AddCompute(1, 1000, 500)
	c.TasksExecuted = 5
	c.AddLatency(0.001)
	c.WorkerBusySeconds = 0.25

	first := c.Snapshot()
	if first.MCBytes[0] != 100 || first.MCBytes[1] != 64 {
		t.Fatalf("snapshot MCBytes: %v", first.MCBytes)
	}
	if first.LocalBytes[0] != 100 || first.RemoteBytes[0] != 64 {
		t.Fatalf("snapshot locality: local %v remote %v", first.LocalBytes, first.RemoteBytes)
	}

	c.AddMemoryTraffic(1, 1, 36, 0, 0)
	c.TasksStolen = 2
	c.AddLatency(0.002)
	c.AddLatency(0.003)

	// The earlier snapshot must not have moved with the counters.
	if first.MCBytes[1] != 64 || first.QueriesDone != 1 {
		t.Fatalf("snapshot aliased the live counters: %+v", first)
	}

	d := c.DeltaSince(first)
	if d.MCBytes[0] != 0 || d.MCBytes[1] != 36 {
		t.Fatalf("delta MCBytes: %v", d.MCBytes)
	}
	if d.QueriesDone != 2 || d.TasksStolen != 2 || d.TasksExecuted != 0 {
		t.Fatalf("delta scheduler counters: %+v", d)
	}
	if d.LinkDataBytes != 0 || d.WorkerBusySeconds != 0 {
		t.Fatalf("delta scalars: %+v", d)
	}
	if got := d.TotalMCBytes(); got != 36 {
		t.Fatalf("delta TotalMCBytes = %v, want 36", got)
	}

	// A zero-value prev yields the running totals (first-window case).
	full := c.DeltaSince(Snapshot{})
	if full.MCBytes[0] != 100 || full.MCBytes[1] != 100 || full.QueriesDone != 3 {
		t.Fatalf("zero-prev delta: %+v", full)
	}
}

// TestSnapshotMCGiBs: byte deltas scale to GiB/s by the window, and a
// non-positive window yields zeros rather than Inf/NaN.
func TestSnapshotMCGiBs(t *testing.T) {
	s := Snapshot{MCBytes: []float64{1 << 30, 2 << 30}}
	g := s.MCGiBs(0.5)
	if g[0] != 2 || g[1] != 4 {
		t.Fatalf("MCGiBs over 0.5s: %v", g)
	}
	z := s.MCGiBs(0)
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero-window MCGiBs must be zeros: %v", z)
	}
}

// TestHistogramMerge: merged samples contribute to percentiles, the source is
// unchanged, and nil/empty sources are no-ops.
func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []float64{1, 2, 3} {
		a.Record(v)
	}
	for _, v := range []float64{10, 20} {
		b.Record(v)
	}
	a.Percentile(50) // force the sorted flag, Merge must clear it
	a.Merge(&b)
	if a.N() != 5 || b.N() != 2 {
		t.Fatalf("after merge: a.N=%d b.N=%d, want 5 and 2", a.N(), b.N())
	}
	if got := a.Max(); got != 20 {
		t.Fatalf("merged max = %v, want 20", got)
	}
	if got := a.Percentile(50); got != 3 {
		t.Fatalf("merged median = %v, want 3", got)
	}
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.N() != 5 {
		t.Fatalf("nil/empty merge changed N: %d", a.N())
	}
}

// TestHistogramPercentileEdges pins the boundary semantics: one sample, p<=0,
// p>=100, and the empty histogram.
func TestHistogramPercentileEdges(t *testing.T) {
	var empty Histogram
	if empty.Percentile(50) != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}

	var one Histogram
	one.Record(7)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := one.Percentile(p); got != 7 {
			t.Fatalf("single sample p%v = %v, want 7", p, got)
		}
	}

	var h Histogram
	for _, v := range []float64{5, 1, 3} { // unsorted on purpose
		h.Record(v)
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want min 1", got)
	}
	if got := h.Percentile(-5); got != 1 {
		t.Fatalf("p(-5) = %v, want min 1", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v, want max 5", got)
	}
	if got := h.Percentile(150); got != 5 {
		t.Fatalf("p150 = %v, want max 5", got)
	}
	if got := h.Percentile(50); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
}

// TestHistogramResetThenRecord: Reset drops the samples but the histogram
// stays usable, with correct percentiles over the new samples.
func TestHistogramResetThenRecord(t *testing.T) {
	var h Histogram
	for _, v := range []float64{100, 200, 300} {
		h.Record(v)
	}
	h.Percentile(99) // sort before reset
	h.Reset()
	if h.N() != 0 || h.Percentile(50) != 0 {
		t.Fatalf("after reset: N=%d p50=%v", h.N(), h.Percentile(50))
	}
	h.Record(2)
	h.Record(1)
	if h.N() != 2 || h.Percentile(0) != 1 || h.Percentile(100) != 2 {
		t.Fatalf("post-reset records: N=%d min=%v max=%v", h.N(), h.Percentile(0), h.Percentile(100))
	}
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("post-reset mean = %v, want 1.5", got)
	}
}
