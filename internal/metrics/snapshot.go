package metrics

// Snapshot is a point-in-time value copy of the accumulating Counters
// fields. Two snapshots subtract into a windowed delta (Sub), which is how
// the trace sampler turns the run-long accumulators into a time-series
// without resetting them. Latency samples are not copied — a snapshot is a
// counter copy, not a distribution; QueriesDone carries the completion
// count.
type Snapshot struct {
	// MCBytes, LocalBytes, RemoteBytes mirror the per-socket traffic
	// accumulators.
	MCBytes     []float64 `json:"mc_bytes"`
	LocalBytes  []float64 `json:"local_bytes,omitempty"`
	RemoteBytes []float64 `json:"remote_bytes,omitempty"`
	// LinkDataBytes and LinkTotalBytes mirror the interconnect accumulators;
	// LLCLocal and LLCRemote the cache-line locality counters.
	LinkDataBytes  float64 `json:"link_data_bytes"`
	LinkTotalBytes float64 `json:"link_total_bytes"`
	LLCLocal       float64 `json:"llc_local,omitempty"`
	LLCRemote      float64 `json:"llc_remote,omitempty"`
	// Instructions and BusyCycles mirror the per-socket compute
	// accumulators.
	Instructions []float64 `json:"instructions,omitempty"`
	BusyCycles   []float64 `json:"busy_cycles,omitempty"`
	// TasksExecuted, TasksStolen, QueriesDone and WorkerBusySeconds mirror
	// the scheduler counters.
	TasksExecuted     uint64  `json:"tasks_executed"`
	TasksStolen       uint64  `json:"tasks_stolen"`
	QueriesDone       uint64  `json:"queries_done"`
	WorkerBusySeconds float64 `json:"worker_busy_seconds"`
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		MCBytes:           append([]float64(nil), c.MCBytes...),
		LocalBytes:        append([]float64(nil), c.LocalBytes...),
		RemoteBytes:       append([]float64(nil), c.RemoteBytes...),
		LinkDataBytes:     c.LinkDataBytes,
		LinkTotalBytes:    c.LinkTotalBytes,
		LLCLocal:          c.LLCLocal,
		LLCRemote:         c.LLCRemote,
		Instructions:      append([]float64(nil), c.Instructions...),
		BusyCycles:        append([]float64(nil), c.BusyCycles...),
		TasksExecuted:     c.TasksExecuted,
		TasksStolen:       c.TasksStolen,
		QueriesDone:       c.QueriesDone,
		WorkerBusySeconds: c.WorkerBusySeconds,
	}
}

// DeltaSince returns the counter growth since prev (a snapshot taken earlier
// on the same Counters). A zero-value prev yields the current totals, so the
// first window of a sampling loop needs no special case.
func (c *Counters) DeltaSince(prev Snapshot) Snapshot {
	return c.Snapshot().Sub(prev)
}

// Sub returns s - prev field by field. Slices shorter than s's (notably the
// nil slices of a zero-value Snapshot) are treated as zeros.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := s
	out.MCBytes = subSlice(s.MCBytes, prev.MCBytes)
	out.LocalBytes = subSlice(s.LocalBytes, prev.LocalBytes)
	out.RemoteBytes = subSlice(s.RemoteBytes, prev.RemoteBytes)
	out.Instructions = subSlice(s.Instructions, prev.Instructions)
	out.BusyCycles = subSlice(s.BusyCycles, prev.BusyCycles)
	out.LinkDataBytes -= prev.LinkDataBytes
	out.LinkTotalBytes -= prev.LinkTotalBytes
	out.LLCLocal -= prev.LLCLocal
	out.LLCRemote -= prev.LLCRemote
	out.TasksExecuted -= prev.TasksExecuted
	out.TasksStolen -= prev.TasksStolen
	out.QueriesDone -= prev.QueriesDone
	out.WorkerBusySeconds -= prev.WorkerBusySeconds
	return out
}

// TotalMCBytes sums the snapshot's per-socket memory bytes.
func (s Snapshot) TotalMCBytes() float64 {
	t := 0.0
	for _, b := range s.MCBytes {
		t += b
	}
	return t
}

// MCGiBs converts the snapshot's per-socket memory bytes into GiB/s over a
// window in seconds.
func (s Snapshot) MCGiBs(window float64) []float64 {
	out := make([]float64, len(s.MCBytes))
	if window <= 0 {
		return out
	}
	for i, b := range s.MCBytes {
		out[i] = b / window / (1 << 30)
	}
	return out
}

// subSlice returns a - b elementwise, treating missing b entries as zero.
func subSlice(a, b []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	for i := range out {
		if i < len(b) {
			out[i] -= b[i]
		}
	}
	return out
}
