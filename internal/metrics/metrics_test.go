package metrics

import (
	"math"
	"testing"
)

func TestMemoryTrafficAccounting(t *testing.T) {
	c := New(4)
	c.AddMemoryTraffic(0, 0, 6400, 0, 0)       // local
	c.AddMemoryTraffic(1, 0, 1280, 1280, 1728) // remote to socket 0
	if c.MCBytes[0] != 7680 {
		t.Fatalf("MCBytes[0] = %v", c.MCBytes[0])
	}
	if c.LocalBytes[0] != 6400 || c.RemoteBytes[1] != 1280 {
		t.Fatalf("locality split wrong: %v %v", c.LocalBytes, c.RemoteBytes)
	}
	if c.LLCLocal != 100 || c.LLCRemote != 20 {
		t.Fatalf("LLC lines = %v local, %v remote", c.LLCLocal, c.LLCRemote)
	}
	if c.LinkDataBytes != 1280 || c.LinkTotalBytes != 1728 {
		t.Fatalf("link traffic = %v / %v", c.LinkDataBytes, c.LinkTotalBytes)
	}
	if c.TotalMCBytes() != 7680 {
		t.Fatalf("TotalMCBytes = %v", c.TotalMCBytes())
	}
}

func TestIPC(t *testing.T) {
	c := New(2)
	c.AddCompute(0, 100, 50)
	c.AddCompute(1, 100, 150)
	if got := c.IPC(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("IPC = %v, want 1.0", got)
	}
	if New(1).IPC() != 0 {
		t.Fatal("IPC of empty counters should be 0")
	}
}

func TestLatencyStats(t *testing.T) {
	c := New(1)
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		c.AddLatency(v)
	}
	s := c.Latencies()
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Mean-5.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.P50-5.5) > 1e-9 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P5 >= s.P25 || s.P25 >= s.P75 || s.P75 >= s.P95 {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	if s.CoeffOfVariation <= 0 {
		t.Fatalf("cv = %v", s.CoeffOfVariation)
	}
}

func TestLatencyStatsEmpty(t *testing.T) {
	s := New(1).Latencies()
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestThroughputAndLoad(t *testing.T) {
	c := New(2)
	for i := 0; i < 100; i++ {
		c.AddLatency(0.01)
	}
	if got := c.ThroughputQPM(60); math.Abs(got-100) > 1e-9 {
		t.Fatalf("qpm = %v", got)
	}
	if got := c.ThroughputQPM(0); got != 0 {
		t.Fatalf("qpm at zero window = %v", got)
	}
	c.WorkerBusySeconds = 30
	if got := c.CPULoad(10, 6); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("load = %v", got)
	}
	c.WorkerBusySeconds = 1000
	if got := c.CPULoad(10, 6); got != 1 {
		t.Fatalf("load should clamp to 1, got %v", got)
	}
}

func TestMemoryThroughputGiBs(t *testing.T) {
	c := New(2)
	c.AddMemoryTraffic(0, 1, float64(2)*(1<<30), 0, 0)
	tp := c.MemoryThroughputGiBs(2)
	if math.Abs(tp[1]-1.0) > 1e-9 || tp[0] != 0 {
		t.Fatalf("mem TP = %v", tp)
	}
}

func TestReset(t *testing.T) {
	c := New(2)
	c.AddMemoryTraffic(0, 1, 100, 10, 20)
	c.AddCompute(0, 5, 5)
	c.AddLatency(1)
	c.TasksExecuted = 3
	c.TasksStolen = 1
	c.WorkerBusySeconds = 9
	c.Reset()
	if c.TotalMCBytes() != 0 || c.LLCRemote != 0 || c.QueriesDone != 0 ||
		c.TasksExecuted != 0 || c.TasksStolen != 0 || c.WorkerBusySeconds != 0 ||
		c.Latencies().N != 0 || c.LinkTotalBytes != 0 {
		t.Fatalf("reset incomplete: %+v", c)
	}
}
