package metrics

import (
	"math"
	"testing"
)

func TestMemoryTrafficAccounting(t *testing.T) {
	c := New(4)
	c.AddMemoryTraffic(0, 0, 6400, 0, 0)       // local
	c.AddMemoryTraffic(1, 0, 1280, 1280, 1728) // remote to socket 0
	if c.MCBytes[0] != 7680 {
		t.Fatalf("MCBytes[0] = %v", c.MCBytes[0])
	}
	if c.LocalBytes[0] != 6400 || c.RemoteBytes[1] != 1280 {
		t.Fatalf("locality split wrong: %v %v", c.LocalBytes, c.RemoteBytes)
	}
	if c.LLCLocal != 100 || c.LLCRemote != 20 {
		t.Fatalf("LLC lines = %v local, %v remote", c.LLCLocal, c.LLCRemote)
	}
	if c.LinkDataBytes != 1280 || c.LinkTotalBytes != 1728 {
		t.Fatalf("link traffic = %v / %v", c.LinkDataBytes, c.LinkTotalBytes)
	}
	if c.TotalMCBytes() != 7680 {
		t.Fatalf("TotalMCBytes = %v", c.TotalMCBytes())
	}
}

func TestIPC(t *testing.T) {
	c := New(2)
	c.AddCompute(0, 100, 50)
	c.AddCompute(1, 100, 150)
	if got := c.IPC(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("IPC = %v, want 1.0", got)
	}
	if New(1).IPC() != 0 {
		t.Fatal("IPC of empty counters should be 0")
	}
}

func TestLatencyStats(t *testing.T) {
	c := New(1)
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		c.AddLatency(v)
	}
	s := c.Latencies()
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Mean-5.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.P50-5.5) > 1e-9 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P5 >= s.P25 || s.P25 >= s.P75 || s.P75 >= s.P95 {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	if s.CoeffOfVariation <= 0 {
		t.Fatalf("cv = %v", s.CoeffOfVariation)
	}
}

func TestLatencyStatsEmpty(t *testing.T) {
	s := New(1).Latencies()
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestThroughputAndLoad(t *testing.T) {
	c := New(2)
	for i := 0; i < 100; i++ {
		c.AddLatency(0.01)
	}
	if got := c.ThroughputQPM(60); math.Abs(got-100) > 1e-9 {
		t.Fatalf("qpm = %v", got)
	}
	if got := c.ThroughputQPM(0); got != 0 {
		t.Fatalf("qpm at zero window = %v", got)
	}
	c.WorkerBusySeconds = 30
	if got := c.CPULoad(10, 6); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("load = %v", got)
	}
	c.WorkerBusySeconds = 1000
	if got := c.CPULoad(10, 6); got != 1 {
		t.Fatalf("load should clamp to 1, got %v", got)
	}
}

func TestMemoryThroughputGiBs(t *testing.T) {
	c := New(2)
	c.AddMemoryTraffic(0, 1, float64(2)*(1<<30), 0, 0)
	tp := c.MemoryThroughputGiBs(2)
	if math.Abs(tp[1]-1.0) > 1e-9 || tp[0] != 0 {
		t.Fatalf("mem TP = %v", tp)
	}
}

func TestReset(t *testing.T) {
	c := New(2)
	c.AddMemoryTraffic(0, 1, 100, 10, 20)
	c.AddCompute(0, 5, 5)
	c.AddLatency(1)
	c.TasksExecuted = 3
	c.TasksStolen = 1
	c.WorkerBusySeconds = 9
	c.Reset()
	if c.TotalMCBytes() != 0 || c.LLCRemote != 0 || c.QueriesDone != 0 ||
		c.TasksExecuted != 0 || c.TasksStolen != 0 || c.WorkerBusySeconds != 0 ||
		c.Latencies().N != 0 || c.LinkTotalBytes != 0 {
		t.Fatalf("reset incomplete: %+v", c)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	if h.P50() != 0 || h.P99() != 0 || h.N() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	// 1..100 in shuffled-ish order: percentiles must not depend on insertion
	// order.
	for i := 0; i < 100; i++ {
		h.Record(float64((i*37)%100 + 1))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.P50(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 50.5", got)
	}
	if got := h.P99(); math.Abs(got-99.01) > 1e-9 {
		t.Fatalf("p99 = %v, want 99.01", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	// Recording after a percentile query invalidates the sort cache.
	h.Record(1000)
	if got := h.Max(); got != 1000 {
		t.Fatalf("max after late record = %v", got)
	}
	h.Reset()
	if h.N() != 0 || h.P99() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestLatencyStatsP99(t *testing.T) {
	c := New(1)
	for i := 1; i <= 200; i++ {
		c.AddLatency(float64(i))
	}
	ls := c.Latencies()
	if math.Abs(ls.P99-198.01) > 1e-9 {
		t.Fatalf("p99 = %v, want 198.01", ls.P99)
	}
	if ls.P99 < ls.P95 || ls.P99 > ls.Max {
		t.Fatalf("p99 %v outside [p95 %v, max %v]", ls.P99, ls.P95, ls.Max)
	}
}

func TestSaturationCounters(t *testing.T) {
	c := New(2)
	c.AddSaturationSample(10, 2, []int{5, 0, 7, 1}, true)
	c.AddSaturationSample(0, 0, []int{3, 3, 3, 3}, false)
	if c.SatSamples != 2 {
		t.Fatalf("samples = %d", c.SatSamples)
	}
	if got := c.MeanFreeWorkers(); got != 5 {
		t.Fatalf("mean free = %v, want 5", got)
	}
	if got := c.MeanParkedWorkers(); got != 1 {
		t.Fatalf("mean parked = %v, want 1", got)
	}
	if got := c.MeanQueuedTasks(); got != 12.5 {
		t.Fatalf("mean queued = %v, want 12.5 ((13+12)/2)", got)
	}
	if c.SatTGMaxDepth != 7 {
		t.Fatalf("max TG depth = %d, want 7", c.SatTGMaxDepth)
	}
	if c.SatUnsaturated != 1 {
		t.Fatalf("unsaturated = %d, want 1", c.SatUnsaturated)
	}
	c.Reset()
	if c.SatSamples != 0 || c.MeanFreeWorkers() != 0 || c.MeanQueuedTasks() != 0 ||
		c.SatTGMaxDepth != 0 || c.SatUnsaturated != 0 {
		t.Fatal("saturation counters survive Reset")
	}
}
