// Package metrics collects the performance counters the paper reports from
// Linux, SAP HANA, and Intel PCM: per-socket memory throughput, QPI data and
// total traffic, local/remote LLC load misses, IPC, CPU load, task counts,
// stolen tasks, and query latencies. The simulator has perfect knowledge, so
// these counters are exact rather than sampled.
package metrics

import (
	"math"
	"sort"
)

// Counters accumulates all performance metrics of a run.
type Counters struct {
	Sockets int

	// Memory bytes served by each socket's memory controller.
	MCBytes []float64
	// Memory bytes read by cores of each socket, split by locality.
	LocalBytes  []float64
	RemoteBytes []float64

	// Interconnect traffic in bytes: data payload vs everything (payload +
	// protocol/coherence overhead), per the Fig. 8 "QPI traffic" vs "QPI
	// data traffic" distinction.
	LinkDataBytes  float64
	LinkTotalBytes float64

	// LLC load-miss proxy: cache lines fetched from DRAM, by locality.
	LLCLocal  float64
	LLCRemote float64

	// Compute: instructions retired (work-proportional proxy) and busy
	// cycles, per socket.
	Instructions []float64
	BusyCycles   []float64

	// Scheduler counters.
	TasksExecuted uint64
	TasksStolen   uint64 // inter-socket steals
	QueriesDone   uint64
	// WorkerBusySeconds sums, over all worker threads, the time spent
	// executing tasks; CPU load is this over window x hardware contexts.
	WorkerBusySeconds float64

	// Scheduler saturation signals, sampled by the sched watchdog each run
	// (Section 5.1's watchdog observability, consumed by the admission
	// controller's reports): SatSamples counts samples, the sums divide by it
	// for means, and SatTGMaxDepth is the deepest single-thread-group queue
	// seen in any sample.
	SatSamples     uint64
	SatFreeSum     float64 // free workers summed over samples
	SatParkedSum   float64 // parked workers summed over samples
	SatQueueSum    float64 // machine-wide queued tasks summed over samples
	SatTGMaxDepth  int     // deepest single-TG queue observed
	SatUnsaturated uint64  // samples with an unsaturated TG that had queued tasks

	latencies []float64
}

// New creates counters for a machine with the given socket count.
func New(sockets int) *Counters {
	return &Counters{
		Sockets:      sockets,
		MCBytes:      make([]float64, sockets),
		LocalBytes:   make([]float64, sockets),
		RemoteBytes:  make([]float64, sockets),
		Instructions: make([]float64, sockets),
		BusyCycles:   make([]float64, sockets),
	}
}

// AddMemoryTraffic records bytes read by a core on srcSocket from memory on
// dstSocket, with the link bytes (data payload and total including
// coherence) the access generated.
func (c *Counters) AddMemoryTraffic(srcSocket, dstSocket int, bytes, linkData, linkTotal float64) {
	c.MCBytes[dstSocket] += bytes
	lines := bytes / 64
	if srcSocket == dstSocket {
		c.LocalBytes[srcSocket] += bytes
		c.LLCLocal += lines
	} else {
		c.RemoteBytes[srcSocket] += bytes
		c.LLCRemote += lines
	}
	c.LinkDataBytes += linkData
	c.LinkTotalBytes += linkTotal
}

// AddCompute records instructions and busy cycles on a socket.
func (c *Counters) AddCompute(socket int, instructions, cycles float64) {
	c.Instructions[socket] += instructions
	c.BusyCycles[socket] += cycles
}

// AddSaturationSample records one scheduler saturation observation: the
// free and parked worker counts and the per-thread-group queue depths at the
// sampling instant. unsaturated reports whether any thread group had idle
// workers alongside queued tasks (the watchdog's wake-a-thread condition).
func (c *Counters) AddSaturationSample(free, parked int, tgDepths []int, unsaturated bool) {
	c.SatSamples++
	c.SatFreeSum += float64(free)
	c.SatParkedSum += float64(parked)
	total := 0
	for _, d := range tgDepths {
		total += d
		if d > c.SatTGMaxDepth {
			c.SatTGMaxDepth = d
		}
	}
	c.SatQueueSum += float64(total)
	if unsaturated {
		c.SatUnsaturated++
	}
}

// MeanFreeWorkers returns the mean free-worker count over the saturation
// samples (0 when nothing was sampled).
func (c *Counters) MeanFreeWorkers() float64 {
	if c.SatSamples == 0 {
		return 0
	}
	return c.SatFreeSum / float64(c.SatSamples)
}

// MeanParkedWorkers returns the mean parked-worker count over the saturation
// samples.
func (c *Counters) MeanParkedWorkers() float64 {
	if c.SatSamples == 0 {
		return 0
	}
	return c.SatParkedSum / float64(c.SatSamples)
}

// MeanQueuedTasks returns the mean machine-wide task-queue depth over the
// saturation samples.
func (c *Counters) MeanQueuedTasks() float64 {
	if c.SatSamples == 0 {
		return 0
	}
	return c.SatQueueSum / float64(c.SatSamples)
}

// AddLatency records a completed query latency in seconds.
func (c *Counters) AddLatency(seconds float64) {
	c.latencies = append(c.latencies, seconds)
	c.QueriesDone++
}

// Reset zeroes every counter (used at the end of warmup).
func (c *Counters) Reset() {
	for i := 0; i < c.Sockets; i++ {
		c.MCBytes[i] = 0
		c.LocalBytes[i] = 0
		c.RemoteBytes[i] = 0
		c.Instructions[i] = 0
		c.BusyCycles[i] = 0
	}
	c.LinkDataBytes = 0
	c.LinkTotalBytes = 0
	c.LLCLocal = 0
	c.LLCRemote = 0
	c.TasksExecuted = 0
	c.TasksStolen = 0
	c.QueriesDone = 0
	c.WorkerBusySeconds = 0
	c.SatSamples = 0
	c.SatFreeSum = 0
	c.SatParkedSum = 0
	c.SatQueueSum = 0
	c.SatTGMaxDepth = 0
	c.SatUnsaturated = 0
	c.latencies = c.latencies[:0]
}

// TotalMCBytes sums memory bytes served across sockets.
func (c *Counters) TotalMCBytes() float64 {
	t := 0.0
	for _, b := range c.MCBytes {
		t += b
	}
	return t
}

// IPC returns the machine-wide instructions-per-cycle proxy.
func (c *Counters) IPC() float64 {
	ins, cyc := 0.0, 0.0
	for i := 0; i < c.Sockets; i++ {
		ins += c.Instructions[i]
		cyc += c.BusyCycles[i]
	}
	if cyc == 0 {
		return 0
	}
	return ins / cyc
}

// LatencyStats summarizes the latency distribution. P99 is the tail the
// admission-control experiments bound under overload.
type LatencyStats struct {
	N                        int
	Mean, Min, Max           float64
	P5, P25, P50, P75, P95   float64
	P99                      float64
	StdDev, CoeffOfVariation float64
}

// Latencies computes distribution statistics over recorded latencies.
func (c *Counters) Latencies() LatencyStats {
	n := len(c.latencies)
	if n == 0 {
		return LatencyStats{}
	}
	sorted := make([]float64, n)
	copy(sorted, c.latencies)
	sort.Float64s(sorted)
	pct := func(p float64) float64 {
		idx := p / 100 * float64(n-1)
		lo := int(idx)
		if lo >= n-1 {
			return sorted[n-1]
		}
		frac := idx - float64(lo)
		return sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(n)
	ss := 0.0
	for _, v := range sorted {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n))
	cv := 0.0
	if mean > 0 {
		cv = sd / mean
	}
	return LatencyStats{
		N: n, Mean: mean, Min: sorted[0], Max: sorted[n-1],
		P5: pct(5), P25: pct(25), P50: pct(50), P75: pct(75), P95: pct(95),
		P99:    pct(99),
		StdDev: sd, CoeffOfVariation: cv,
	}
}

// Histogram records a scalar sample stream (latencies, waits) for exact
// percentile reporting. The simulator has perfect knowledge, so samples are
// kept exactly rather than bucketed; Percentile sorts lazily. The admission
// controller and the multi-tenant workload generator keep one per tenant.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Record appends one sample.
func (h *Histogram) Record(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// N returns the number of recorded samples.
func (h *Histogram) N() int { return len(h.samples) }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	h.sortSamples()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile (0..100) with linear interpolation
// between order statistics, or 0 when no samples were recorded.
func (h *Histogram) Percentile(p float64) float64 {
	h.sortSamples()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	idx := p / 100 * float64(n-1)
	lo := int(idx)
	if lo >= n-1 {
		return h.samples[n-1]
	}
	frac := idx - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[lo+1]*frac
}

// P50 returns the median.
func (h *Histogram) P50() float64 { return h.Percentile(50) }

// P99 returns the 99th percentile — the tail metric the admission
// experiment bounds.
func (h *Histogram) P99() float64 { return h.Percentile(99) }

// Merge appends every sample of other into h (other is unchanged). The
// multi-tenant reports use it to aggregate per-tenant distributions into a
// machine-wide one.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	h.samples = append(h.samples, other.samples...)
	h.sorted = false
}

// Reset drops all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sorted = false
}

// sortSamples lazily orders the samples for the percentile accessors.
func (h *Histogram) sortSamples() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// ThroughputQPM converts the completed-query count over a measurement window
// (seconds) into queries per minute.
func (c *Counters) ThroughputQPM(window float64) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.QueriesDone) / window * 60
}

// MemoryThroughputGiBs returns per-socket memory throughput in GiB/s over a
// window in seconds.
func (c *Counters) MemoryThroughputGiBs(window float64) []float64 {
	out := make([]float64, c.Sockets)
	for i, b := range c.MCBytes {
		out[i] = b / window / (1 << 30)
	}
	return out
}

// CPULoad returns machine-wide CPU utilization in [0,1]: worker busy time
// over window x hardware contexts.
func (c *Counters) CPULoad(window float64, totalThreads int) float64 {
	avail := window * float64(totalThreads)
	if avail == 0 {
		return 0
	}
	load := c.WorkerBusySeconds / avail
	if load > 1 {
		load = 1
	}
	return load
}
