package adaptive

// Tests for the replication lever of the Section 7 placer: replicate
// decisions on read-hot dominating items, the memory budget cap, stale
// replica garbage collection, and the partition action label regression.

import (
	"math/rand"
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/placement"
	"numacs/internal/topology"
	"numacs/internal/workload"
)

// hotOneSetup drives 98% of the traffic to one column at the given
// selectivity and returns the engine, the hot column, and the placer.
func hotOneSetup(t *testing.T, sel float64, tweak func(*Config)) (*core.Engine, *colstore.Column, *Placer) {
	t.Helper()
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 60000, Columns: 16, BitcaseMin: 12, BitcaseMax: 18, Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRRBlocks(tbl)
	hot := tbl.Parts[0].Columns[2] // socket 0 holds columns 0..3
	cfg := DefaultConfig()
	cfg.Period = 5e-3
	if tweak != nil {
		tweak(&cfg)
	}
	p := New(e, &Catalog{Tables: []*colstore.Table{tbl}}, cfg)
	e.Sim.AddActor(p)
	clients := workload.NewClients(e, tbl, workload.ClientsConfig{
		N: 256, Selectivity: sel, Parallel: true, Strategy: core.Bound,
		Chooser: workload.HotColumnChoice{Hot: 2, P: 0.98}, Seed: 2,
	})
	clients.Start()
	return e, hot, p
}

func countKind(actions []Action, kind string) int {
	n := 0
	for _, a := range actions {
		if a.Kind == kind {
			n++
		}
	}
	return n
}

// TestPlacerReplicatesReadHotColumn: a dominating read-hot column must gain
// replicas on the cold sockets (the Section 4.2 replication placement,
// created adaptively) instead of being moved or partitioned.
func TestPlacerReplicatesReadHotColumn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	_, hot, p := hotOneSetup(t, 0.10, nil)
	p.Engine.Sim.Run(0.15)

	if n := countKind(p.Actions, "replicate"); n == 0 {
		t.Fatalf("no replicate actions on a read-hot dominating column; actions: %+v", p.Actions)
	}
	if !hot.Replicated() {
		t.Fatal("hot column not replicated")
	}
	if len(hot.ReplicaSockets) < 3 {
		t.Fatalf("expected replicas on most sockets, got %v", hot.ReplicaSockets)
	}
	if hot.NumPartitions() != 1 {
		t.Fatalf("replicated column must stay unpartitioned, has %d parts", hot.NumPartitions())
	}
	if p.ReplicaBytes() != hot.ExtraReplicaBytes() {
		t.Fatalf("budget accounting %d != column metadata %d", p.ReplicaBytes(), hot.ExtraReplicaBytes())
	}
	if p.PeakReplicaBytes > p.Cfg.ReplicaBudgetBytes {
		t.Fatalf("peak replica bytes %d exceed budget %d", p.PeakReplicaBytes, p.Cfg.ReplicaBudgetBytes)
	}
	if p.PagesCopied == 0 {
		t.Fatal("replication should account copied pages")
	}
}

// TestReplicaBudgetCap: with room for only one extra replica, the placer
// must stop replicating at the cap — never exceeding it — and fall back to
// the move/partition levers of Figure 20.
func TestReplicaBudgetCap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	e, hot, p := hotOneSetup(t, 0.10, nil)
	// Shrink the budget before the first balancing round: room for exactly
	// one extra copy of the hot column.
	budget := placement.ReplicaFootprintBytes(hot) + 1024
	p.Cfg.ReplicaBudgetBytes = budget
	e.Sim.Run(0.15)

	if n := countKind(p.Actions, "replicate"); n != 1 {
		t.Fatalf("budget for one replica, got %d replicate actions", n)
	}
	if p.PeakReplicaBytes > budget {
		t.Fatalf("peak replica bytes %d exceed budget %d", p.PeakReplicaBytes, budget)
	}
	if len(hot.ReplicaSockets) != 2 {
		t.Fatalf("expected primary + one replica, got %v", hot.ReplicaSockets)
	}
	// The residual imbalance must still be worked on with the other levers:
	// the budget does not stall the placer.
	if len(p.Actions) <= 1 {
		t.Fatalf("placer stalled after exhausting the budget; actions: %+v", p.Actions)
	}
}

// shiftChooser queries column A hot until the shift time, column B after.
type shiftChooser struct {
	e       *core.Engine
	shiftAt float64
	a, b    int
}

func (s shiftChooser) Pick(rng *rand.Rand, columns int) int {
	hot := s.a
	if s.e.Sim.Now() >= s.shiftAt {
		hot = s.b
	}
	if rng.Float64() < 0.95 {
		return hot % columns
	}
	return rng.Intn(columns)
}

// TestStaleReplicasReclaimed: when the workload shifts away from a
// replicated column, its traffic decays and the balanced branch must
// garbage-collect the stale copies, returning their memory to the budget.
func TestStaleReplicasReclaimed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 60000, Columns: 16, BitcaseMin: 12, BitcaseMax: 18, Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRRBlocks(tbl)
	oldHot := tbl.Parts[0].Columns[2]
	cfg := DefaultConfig()
	cfg.Period = 5e-3
	p := New(e, &Catalog{Tables: []*colstore.Table{tbl}}, cfg)
	e.Sim.AddActor(p)
	clients := workload.NewClients(e, tbl, workload.ClientsConfig{
		N: 256, Selectivity: 0.10, Parallel: true, Strategy: core.Bound,
		Chooser: shiftChooser{e: e, shiftAt: 0.15, a: 2, b: 9}, Seed: 2,
	})
	clients.Start()

	e.Sim.Run(0.15)
	if !oldHot.Replicated() {
		t.Fatal("setup: hot column not replicated before the shift")
	}
	replicatedBytes := p.ReplicaBytes()

	e.Sim.Run(0.45)
	if countKind(p.Actions, "drop-replica") == 0 {
		t.Fatalf("no drop-replica actions after the hotspot shifted; actions: %+v", p.Actions)
	}
	if oldHot.Replicated() {
		t.Fatalf("stale replicas of %s not reclaimed: %v", oldHot.Name, oldHot.ReplicaSockets)
	}
	if oldHot.ExtraReplicaBytes() != 0 {
		t.Fatalf("stale replica metadata lingers: %d bytes", oldHot.ExtraReplicaBytes())
	}
	if p.ReplicaBytes() >= replicatedBytes+replicatedBytes/2 {
		t.Fatalf("replica memory did not come back down: %d then, %d now", replicatedBytes, p.ReplicaBytes())
	}
	if p.PeakReplicaBytes > p.Cfg.ReplicaBudgetBytes {
		t.Fatalf("peak replica bytes %d exceed budget %d", p.PeakReplicaBytes, p.Cfg.ReplicaBudgetBytes)
	}
}

// TestPartitionActionLabelMatchesMechanism is the regression test for the
// action-label fix: the whole-column placer always applies the IVP
// repartitioning mechanism, so the recorded action must say so — previously
// dictionary-heavy items were logged as "partition-pp" while RepartitionIVP
// ran underneath.
func TestPartitionActionLabelMatchesMechanism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	// High selectivity makes the hot item's traffic dictionary-heavy (the
	// condition that used to mislabel the action); replication is disabled
	// so the dominance branch must fall through to partitioning.
	_, hot, p := hotOneSetup(t, 0.10, func(cfg *Config) { cfg.ReplicaBudgetBytes = 0 })
	p.Engine.Sim.Run(0.15)

	parts := 0
	for _, a := range p.Actions {
		switch a.Kind {
		case "partition-ivp":
			parts++
		case "partition-pp":
			t.Fatalf("action labelled partition-pp but the placer only applies the IVP mechanism: %+v", a)
		case "replicate":
			t.Fatalf("replication disabled but replicate action recorded: %+v", a)
		}
	}
	if parts == 0 {
		t.Fatalf("dominating column was not partitioned; actions: %+v", p.Actions)
	}
	if hot.NumPartitions() < 2 {
		t.Fatalf("hot column still has %d partition(s)", hot.NumPartitions())
	}
}
