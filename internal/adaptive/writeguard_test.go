package adaptive

// Tests for the write-aware side of the Section 7 placer: the write-guard
// (no new replicas for written columns, write-hot replicas reclaimed) and
// the delta-size merge trigger.

import (
	"testing"

	"numacs/internal/workload"
)

// TestWriteHotReplicaDropped: a replicated column that starts taking writes
// turns write-hot, and the write-guard must reclaim its extra replicas —
// every copy would go stale with each write and the next merge would rebuild
// them all (the Section 7 update-rate concern pricing replication out).
func TestWriteHotReplicaDropped(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	e, hot, p := hotOneSetup(t, 0.10, func(cfg *Config) {
		// No new replication: isolate the reclaim path.
		cfg.ReplicaBudgetBytes = 0
	})
	// Replicate the hot column up front (as its read-only life would have).
	e.Placer.AddReplica(hot, 1)
	e.Placer.AddReplica(hot, 2)
	table := p.Catalog.Tables[0]
	writers := workload.NewWriters(e, table, workload.WritersConfig{
		Rate: 200_000, UpdateFraction: 0.5,
		Chooser: workload.HotColumnChoice{Hot: 2, P: 1}, Seed: 9,
	})
	e.Sim.AddActor(writers)

	e.Sim.Run(0.1)

	if hot.Replicated() {
		t.Fatalf("write-hot column still replicated: %v", hot.ReplicaSockets)
	}
	if n := countKind(p.Actions, "drop-replica"); n != 2 {
		t.Fatalf("expected both extra replicas reclaimed, got %d drop-replica actions: %+v", n, p.Actions)
	}
	if hot.ExtraReplicaBytes() != 0 {
		t.Fatalf("replica metadata lingers: %d bytes", hot.ExtraReplicaBytes())
	}
}

// TestNoReplicateUnderWrites: the grow half of the write-guard. The same
// read-hot dominating workload that TestPlacerReplicatesReadHotColumn shows
// earns replicas must NOT be replicated when the column also takes a steady
// trickle of writes — no replicate action may ever fire for a column with
// nonzero recent write traffic.
func TestNoReplicateUnderWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	e, hot, p := hotOneSetup(t, 0.10, nil)
	table := p.Catalog.Tables[0]
	// A modest but uninterrupted write stream: every balancing period sees
	// nonzero write traffic for the hot column.
	writers := workload.NewWriters(e, table, workload.WritersConfig{
		Rate: 50_000, UpdateFraction: 1.0,
		Chooser: workload.HotColumnChoice{Hot: 2, P: 1}, Seed: 9,
	})
	e.Sim.AddActor(writers)

	e.Sim.Run(0.15)

	for _, a := range p.Actions {
		if a.Kind == "replicate" && a.Column == hot.Name {
			t.Fatalf("replicate action for a column with recent write traffic: %+v", a)
		}
	}
	if hot.Replicated() {
		t.Fatalf("written column gained replicas: %v", hot.ReplicaSockets)
	}
	// The placer must still work the imbalance with its other levers rather
	// than stall (the control test shows this workload demands action).
	if len(p.Actions) == 0 {
		t.Fatal("placer took no action at all on an imbalanced written workload")
	}
}

// TestMergeTriggeredByDeltaSize: with writers growing a column's delta and
// no help from scans, the size trigger alone must fire a background merge
// that folds the delta into the main (growing it by the inserts) and
// truncates the delta.
func TestMergeTriggeredByDeltaSize(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	e, hot, p := hotOneSetup(t, 0.10, nil)
	table := p.Catalog.Tables[0]
	rowsBefore := hot.Rows
	writers := workload.NewWriters(e, table, workload.WritersConfig{
		Rate: 400_000, UpdateFraction: 0.5,
		Chooser: workload.HotColumnChoice{Hot: 2, P: 1}, Seed: 9,
	})
	e.Sim.AddActor(writers)

	e.Sim.Run(0.15)

	merges := 0
	for _, a := range p.Actions {
		if a.Kind == "merge" && a.Column == hot.Name {
			merges++
		}
	}
	if merges == 0 {
		t.Fatalf("no merge fired while the delta grew; actions: %+v", p.Actions)
	}
	if e.MergesCompleted == 0 {
		t.Fatal("merge fired but never completed")
	}
	if hot.Rows <= rowsBefore {
		t.Fatalf("merged inserts did not grow the main: %d rows", hot.Rows)
	}
	// The delta was truncated at each merge: what lingers is bounded by the
	// writes of the post-merge tail, far below the total written.
	if int64(hot.DeltaRows()) >= int64(writers.Inserts+writers.Updates) {
		t.Fatalf("delta never truncated: %d rows lingering of %d written",
			hot.DeltaRows(), writers.Inserts+writers.Updates)
	}
}
