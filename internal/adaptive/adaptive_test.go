package adaptive

import (
	"math/rand"
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/topology"
	"numacs/internal/workload"
)

func skewedSetup(t *testing.T, adapt bool) (*core.Engine, *Placer) {
	t.Helper()
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 60000, Columns: 16, BitcaseMin: 12, BitcaseMax: 18, Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRRBlocks(tbl) // hot half of columns on sockets 2 and 3
	var p *Placer
	if adapt {
		cfg := DefaultConfig()
		cfg.Period = 5e-3
		p = New(e, &Catalog{Tables: []*colstore.Table{tbl}}, cfg)
		e.Sim.AddActor(p)
	}
	clients := workload.NewClients(e, tbl, workload.ClientsConfig{
		N: 256, Selectivity: 0.00001, Parallel: true, Strategy: core.Bound,
		Chooser: workload.SkewedChoice{HotProb: 0.8}, Seed: 2,
	})
	clients.Start()
	return e, p
}

func imbalance(mc []float64) float64 {
	min, max := mc[0], mc[0]
	for _, v := range mc {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == 0 {
		min = 1
	}
	return max / min
}

func TestPlacerBalancesSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	static, _ := skewedSetup(t, false)
	static.Sim.Run(0.15)
	staticRatio := imbalance(static.Counters.MCBytes)
	staticTP := static.Counters.QueriesDone

	adaptEng, placer := skewedSetup(t, true)
	adaptEng.Sim.Run(0.15)
	// Measure the balance of the final window only.
	adaptEng.Counters.Reset()
	adaptEng.Sim.Run(0.25)
	adaptRatio := imbalance(adaptEng.Counters.MCBytes)

	if len(placer.Actions) == 0 {
		t.Fatal("placer took no actions on a skewed workload")
	}
	if adaptRatio >= staticRatio {
		t.Fatalf("placer did not improve balance: static %.2f, adaptive %.2f", staticRatio, adaptRatio)
	}
	if adaptRatio > 2.0 {
		t.Fatalf("adaptive imbalance still %.2f", adaptRatio)
	}
	_ = staticTP
}

func TestPlacerImprovesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	static, _ := skewedSetup(t, false)
	static.Sim.Run(0.2)
	static.Counters.Reset()
	static.Sim.Run(0.35)
	staticTP := static.Counters.QueriesDone

	adaptEng, _ := skewedSetup(t, true)
	adaptEng.Sim.Run(0.2)
	adaptEng.Counters.Reset()
	adaptEng.Sim.Run(0.35)
	adaptTP := adaptEng.Counters.QueriesDone

	if float64(adaptTP) < float64(staticTP)*1.1 {
		t.Fatalf("adaptive TP %d should beat static %d by >10%%", adaptTP, staticTP)
	}
}

func TestPlacerIdleOnBalancedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 60000, Columns: 16, BitcaseMin: 12, BitcaseMax: 18, Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRR(tbl)
	cfg := DefaultConfig()
	cfg.Period = 5e-3
	p := New(e, &Catalog{Tables: []*colstore.Table{tbl}}, cfg)
	e.Sim.AddActor(p)
	clients := workload.NewClients(e, tbl, workload.ClientsConfig{
		N: 256, Selectivity: 0.00001, Parallel: true, Strategy: core.Bound, Seed: 2,
	})
	clients.Start()
	e.Sim.Run(0.2)
	for _, a := range p.Actions {
		if a.Kind != "shrink" {
			t.Fatalf("placer acted on a balanced workload: %+v", a)
		}
	}
}

func TestShrinkColdPartitionedColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 60000, Columns: 8, BitcaseMin: 12, BitcaseMax: 15, Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRR(tbl)
	// Partition one column that will stay cold.
	cold := tbl.Parts[0].Columns[0]
	e.Placer.PlaceIVP(cold, []int{0, 1, 2, 3})
	if cold.NumPartitions() != 4 {
		t.Fatal("setup failed")
	}
	cfg := DefaultConfig()
	cfg.Period = 5e-3
	p := New(e, &Catalog{Tables: []*colstore.Table{tbl}}, cfg)
	e.Sim.AddActor(p)
	// Balanced light load on the other columns only, so the partitioned
	// column stays cold and the balanced branch shrinks it.
	clients := workload.NewClients(e, tbl, workload.ClientsConfig{
		N: 64, Selectivity: 0.00001, Parallel: true, Strategy: core.Bound, Seed: 2,
		Chooser: skipFirst{},
	})
	clients.Start()
	e.Sim.Run(0.3)
	if cold.NumPartitions() >= 4 {
		t.Fatalf("cold partitioned column not shrunk: %d parts", cold.NumPartitions())
	}
	shrinks := 0
	for _, a := range p.Actions {
		if a.Kind == "shrink" {
			shrinks++
		}
	}
	if shrinks == 0 {
		t.Fatal("no shrink actions recorded")
	}
}

// skipFirst picks any column except the first.
type skipFirst struct{}

func (skipFirst) Pick(rng *rand.Rand, columns int) int {
	return 1 + rng.Intn(columns-1)
}

func TestCatalogColumns(t *testing.T) {
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 1000, Columns: 4, BitcaseMin: 8, BitcaseMax: 10, Seed: 1, Synthetic: true,
	})
	cat := &Catalog{Tables: []*colstore.Table{tbl}}
	if got := len(cat.Columns()); got != 4 {
		t.Fatalf("catalog columns = %d", got)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Period <= 0 || cfg.ImbalanceRatio <= 1 || cfg.DominanceFraction <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
}

// oneColumn always queries the last column, making it dominate its socket.
type oneColumn struct{}

func (oneColumn) Pick(rng *rand.Rand, columns int) int { return columns - 1 }

// TestPlacerPartitionsDominatingItem forces the Figure 20 branch where the
// hottest item dominates its socket: moving it would only move the hotspot,
// so the placer must increase its partition count instead. Replication is
// disabled (budget 0) to pin the partitioning fallback; the replication
// lever has its own tests in replicate_test.go.
func TestPlacerPartitionsDominatingItem(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window placer simulation")
	}
	m := topology.FourSocketIvyBridge()
	e := core.New(m, 1)
	tbl := workload.Generate(workload.DatasetConfig{
		Rows: 60000, Columns: 8, BitcaseMin: 12, BitcaseMax: 15, Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRR(tbl)
	hot := tbl.Parts[0].Columns[7]
	cfg := DefaultConfig()
	cfg.Period = 5e-3
	cfg.ReplicaBudgetBytes = 0
	p := New(e, &Catalog{Tables: []*colstore.Table{tbl}}, cfg)
	e.Sim.AddActor(p)
	clients := workload.NewClients(e, tbl, workload.ClientsConfig{
		N: 256, Selectivity: 0.00001, Parallel: true, Strategy: core.Bound,
		Chooser: oneColumn{}, Seed: 2,
	})
	clients.Start()
	e.Sim.Run(0.3)
	partitioned := false
	for _, a := range p.Actions {
		if (a.Kind == "partition-ivp" || a.Kind == "partition-pp") && a.Column == hot.Name {
			partitioned = true
		}
	}
	if !partitioned {
		t.Fatalf("dominating column was not partitioned; actions: %+v", p.Actions)
	}
	if hot.NumPartitions() < 2 {
		t.Fatalf("hot column still has %d partition(s)", hot.NumPartitions())
	}
}
