// Package adaptive implements the envisioned adaptive design of Section 7:
// a catalog exposing every column's Page Socket Mappings, and a data placer
// that continuously balances CPU and memory-bandwidth utilization across
// sockets by moving or repartitioning hot data items, and shrinks cold
// partitioned items when utilization is balanced.
//
// The placer follows the paper's flowchart (Figure 20):
//
//	place data using RR
//	loop:
//	  if utilization unbalanced:
//	      find hottest socket, find hottest item on it
//	      if the item does not dominate the socket: move it to the coldest socket
//	      else: increase its partitions (IVP if IV-intensive, else PP),
//	            placing the new partition on the coldest socket
//	  else:
//	      for each partitioned item with no active traffic: decrease partitions
package adaptive

import (
	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/memsim"
)

// Catalog lists the tables whose columns the placer manages, mirroring the
// catalog component of Figure 20 (tables -> partitions -> columns -> PSMs).
type Catalog struct {
	Tables []*colstore.Table
}

// Columns enumerates all columns of single-part tables (the placer moves
// whole columns; physically partitioned tables are managed part-wise by
// their PP placement already).
func (c *Catalog) Columns() []*colstore.Column {
	var out []*colstore.Column
	for _, t := range c.Tables {
		for _, p := range t.Parts {
			out = append(out, p.Columns...)
		}
	}
	return out
}

// Config tunes the placer.
type Config struct {
	// Period between balancing rounds in virtual seconds.
	Period float64
	// ImbalanceRatio: a round triggers rebalancing when the hottest socket's
	// served bytes exceed the coldest's by this factor.
	ImbalanceRatio float64
	// DominanceFraction: an item "dominates" its socket when it contributes
	// at least this fraction of the socket's traffic — then it is
	// partitioned rather than moved.
	DominanceFraction float64
	// MaxPartitions caps IVP growth (machine sockets by default).
	MaxPartitions int
}

// DefaultConfig returns the placer defaults.
func DefaultConfig() Config {
	return Config{
		Period:            10e-3,
		ImbalanceRatio:    1.4,
		DominanceFraction: 0.5,
	}
}

// Action records one placement decision, for observability and tests.
type Action struct {
	Time   float64
	Kind   string // "move", "partition-ivp", "partition-pp", "shrink"
	Column string
	From   int
	To     int
	Parts  int
}

// Placer is the data placer actor. Register it with the simulation engine
// (engine.Sim.AddActor) after placing data with RR.
type Placer struct {
	Engine  *core.Engine
	Catalog *Catalog
	Cfg     Config

	lastRun    float64
	lastMC     []float64
	Actions    []Action
	PagesMoved int64
}

// New creates a placer.
func New(e *core.Engine, cat *Catalog, cfg Config) *Placer {
	if cfg.Period == 0 {
		cfg = DefaultConfig()
	}
	if cfg.MaxPartitions == 0 {
		cfg.MaxPartitions = e.Machine.Sockets
	}
	return &Placer{Engine: e, Catalog: cat, Cfg: cfg, lastMC: make([]float64, e.Machine.Sockets)}
}

// Tick implements sim.Actor.
func (p *Placer) Tick(now float64) {
	if now-p.lastRun < p.Cfg.Period {
		return
	}
	p.lastRun = now
	e := p.Engine

	// Per-socket utilization over the last period, from the MC byte
	// counters (the paper reads hardware counters here).
	cur := e.HW.MCUtilization()
	delta := make([]float64, len(cur))
	for s := range cur {
		delta[s] = cur[s] - p.lastMC[s]
		p.lastMC[s] = cur[s]
	}
	hot, cold := argmax(delta), argmin(delta)
	traffic := e.ItemTraffic()
	defer e.ResetItemTraffic()

	total := 0.0
	for _, d := range delta {
		total += d
	}
	if total <= 0 {
		return
	}
	if delta[hot] > p.Cfg.ImbalanceRatio*maxf(delta[cold], total/float64(len(delta))/4) {
		p.rebalance(now, hot, cold, delta[hot], traffic)
		return
	}
	p.shrinkCold(now, traffic)
}

// rebalance implements the unbalanced branch of the flowchart.
func (p *Placer) rebalance(now float64, hot, cold int, hotBytes float64, traffic map[string]*core.ItemTraffic) {
	// Find the hottest item whose IV lives (at least partly) on the hot
	// socket.
	var hottest *colstore.Column
	var hottestTraffic *core.ItemTraffic
	best := 0.0
	for _, col := range p.Catalog.Columns() {
		it := traffic[col.Name]
		if it == nil || col.IVPSM == nil {
			continue
		}
		onHot := false
		for s, pages := range col.IVPSM.Summary() {
			if s == hot && pages > 0 {
				onHot = true
			}
		}
		if onHot && it.Bytes > best {
			best = it.Bytes
			hottest = col
			hottestTraffic = it
		}
	}
	if hottest == nil {
		return
	}
	alloc := p.Engine.Placer.Alloc
	if best < p.Cfg.DominanceFraction*hotBytes && hottest.NumPartitions() == 1 {
		// The item does not dominate the hot socket: move it wholesale to
		// the coldest socket.
		moved := hottest.IVPSM.MoveRange(alloc, hottest.IVRange, cold)
		moved += hottest.DictPSM.MoveRange(alloc, hottest.DictRange, cold)
		if hottest.IXPSM != nil {
			moved += hottest.IXPSM.MoveRange(alloc, hottest.IXRange, cold)
		}
		p.PagesMoved += moved
		p.Actions = append(p.Actions, Action{Time: now, Kind: "move", Column: hottest.Name, From: hot, To: cold})
		return
	}
	// The item dominates: increase its partition count, placing the new
	// partition on the coldest socket. IVP when the item's traffic is
	// IV-scan dominated, PP otherwise (Figure 20); whole-column management
	// uses IVP here — PP operates at table granularity and is delegated to
	// the repartitioning tooling.
	nparts := hottest.NumPartitions()
	if nparts >= p.Cfg.MaxPartitions {
		return
	}
	sockets := currentIVSockets(hottest)
	sockets = append(sockets, cold)
	moved := p.Engine.Placer.RepartitionIVP(hottest, sockets)
	p.PagesMoved += moved
	kind := "partition-ivp"
	if hottestTraffic != nil && hottestTraffic.DictBytes > hottestTraffic.IVBytes {
		kind = "partition-pp"
	}
	p.Actions = append(p.Actions, Action{Time: now, Kind: kind, Column: hottest.Name, From: hot, To: cold, Parts: nparts + 1})
}

// shrinkCold implements the balanced branch: partitioned items with no
// active traffic collapse back toward a single partition, freeing the
// machine from unnecessary partitioning overhead (Section 6.1.4).
func (p *Placer) shrinkCold(now float64, traffic map[string]*core.ItemTraffic) {
	for _, col := range p.Catalog.Columns() {
		if col.NumPartitions() <= 1 {
			continue
		}
		if it := traffic[col.Name]; it != nil && it.Bytes > 0 {
			continue // item is warm
		}
		sockets := currentIVSockets(col)
		moved := p.Engine.Placer.RepartitionIVP(col, sockets[:len(sockets)-1])
		p.PagesMoved += moved
		p.Actions = append(p.Actions, Action{Time: now, Kind: "shrink", Column: col.Name, Parts: col.NumPartitions()})
		return // at most one shrink per round
	}
}

// currentIVSockets lists the sockets of the column's IVP partitions in
// partition order.
func currentIVSockets(col *colstore.Column) []int {
	n := col.NumPartitions()
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		from, to := col.PartitionBounds(i)
		mid := (from + to) / 2
		addr := col.IVRange.Start
		off := col.IVOffsetForRow(mid)
		if off < col.IVRange.Bytes {
			addr += memsim.Addr(off)
		}
		s := col.IVPSM.LocationOf(addr)
		if s < 0 {
			s = 0
		}
		out = append(out, s)
	}
	return out
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func argmin(v []float64) int {
	best := 0
	for i, x := range v {
		if x < v[best] {
			best = i
		}
	}
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
