// Package adaptive implements the envisioned adaptive design of Section 7:
// a catalog exposing every column's Page Socket Mappings, and a data placer
// that continuously balances CPU and memory-bandwidth utilization across
// sockets by moving, repartitioning, or replicating hot data items, and
// shrinks cold partitioned items and stale replicas when utilization is
// balanced.
//
// The placer follows the paper's flowchart (Figure 20), extended with the
// replication placement of Section 4.2 as a third lever:
//
//	place data using RR
//	loop:
//	  if utilization unbalanced:
//	      find hottest socket, find hottest item on it
//	      if the item dominates the socket and is read-hot (scan traffic,
//	          no recent repartition churn) and the replica budget allows:
//	          add a replica of it on the coldest socket
//	      else if the item does not dominate the socket: move it to the
//	          coldest socket
//	      else: increase its partitions, placing the new partition on the
//	          coldest socket
//	  else:
//	      for each partitioned item with no active traffic: decrease
//	          partitions; for each replicated item, reclaim replicas whose
//	          traffic has decayed
package adaptive

import (
	"fmt"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/memsim"
	"numacs/internal/placement"
	"numacs/internal/trace"
)

// Catalog lists the tables whose columns the placer manages, mirroring the
// catalog component of Figure 20 (tables -> partitions -> columns -> PSMs).
type Catalog struct {
	Tables []*colstore.Table
}

// Columns enumerates all columns of single-part tables (the placer moves
// whole columns; physically partitioned tables are managed part-wise by
// their PP placement already).
func (c *Catalog) Columns() []*colstore.Column {
	var out []*colstore.Column
	for _, t := range c.Tables {
		for _, p := range t.Parts {
			out = append(out, p.Columns...)
		}
	}
	return out
}

// Config tunes the placer (the knobs of the Section 7 design; see the
// "adaptive placement knobs" section of EXPERIMENTS.md).
type Config struct {
	// Period between balancing rounds in virtual seconds.
	Period float64
	// ImbalanceRatio: a round triggers rebalancing when the hottest socket's
	// served bytes exceed the coldest's by this factor.
	ImbalanceRatio float64
	// DominanceFraction: an item "dominates" its socket when it contributes
	// at least this fraction of the socket's traffic — then it is
	// replicated or partitioned rather than moved.
	DominanceFraction float64
	// MaxPartitions caps IVP growth (machine sockets by default).
	MaxPartitions int

	// ReplicaBudgetBytes caps the total simulated memory spent on extra
	// column replicas (the Section 4.2 replication placement "at the
	// expense of memory"). Zero disables adaptive replication entirely —
	// the placer then balances with moves and repartitioning only.
	// DefaultConfig sets DefaultReplicaBudgetBytes, a 1/16 fraction of the
	// nominal per-socket DRAM the simulation assumes.
	ReplicaBudgetBytes int64
	// ReadHotFraction: an item qualifies for replication only when its
	// scan + dictionary read bytes are at least this fraction of its total
	// attributed traffic (replication suits read-mostly items; a column
	// whose traffic is dominated by output writes gains nothing from extra
	// read copies).
	ReadHotFraction float64
	// ReplicaCooldown is the virtual-time window after a move/repartition
	// of a column during which it is not replicated (no replication on top
	// of fresh repartition churn). Zero defaults to 2x Period.
	ReplicaCooldown float64
	// StaleReplicaFraction: in the balanced branch, an extra replica is
	// garbage-collected when it served less than this fraction of the
	// column's even per-copy share over the last period — the copy no
	// longer earns its keep.
	StaleReplicaFraction float64

	// WriteHotFraction is the write-guard's reclaim threshold: a replicated
	// column is write-hot when its last-period write traffic touches at
	// least this fraction of one replica's footprint — the rate at which
	// every copy goes stale (each write must reach all copies, and the next
	// merge rebuilds every replica in full). A write-hot column's extra
	// replicas are dropped: the update-rate concern that prices replication
	// out in Section 7. Independently of this threshold, a column with ANY
	// nonzero recent write traffic is never newly replicated.
	WriteHotFraction float64
	// MergeDeltaFraction is the size-based merge trigger: a background merge
	// starts when a column's delta bytes reach this fraction of its main IV
	// bytes. Negative disables merging entirely; zero means default.
	MergeDeltaFraction float64
	// MergeTrafficFraction is the scan-slowdown merge trigger: merge when
	// the delta's share of the column's scan bytes over the last period
	// (delta / (IV + delta)) exceeds this fraction — the delta is slowing
	// scans down even if it is still small relative to the main. A column
	// that is scanned but received no writes over the whole period is merged
	// unconditionally (folding a write-cold delta is pure win).
	MergeTrafficFraction float64
}

// DefaultReplicaBudgetBytes is the default replica budget: 1/16 of the
// 4 GiB-per-socket DRAM the simulated machines nominally have. Experiments
// that model explicit DRAM capacities (Allocator.SetCapacity) should derive
// the budget from those instead.
const DefaultReplicaBudgetBytes = 4 << 30 / 16

// DefaultConfig returns the placer defaults.
func DefaultConfig() Config {
	return Config{
		Period:               10e-3,
		ImbalanceRatio:       1.4,
		DominanceFraction:    0.5,
		ReplicaBudgetBytes:   DefaultReplicaBudgetBytes,
		ReadHotFraction:      0.5,
		StaleReplicaFraction: 0.1,
		WriteHotFraction:     0.02,
		MergeDeltaFraction:   0.25,
		MergeTrafficFraction: 0.5,
	}
}

// Action records one placement decision, for observability and tests. Kind
// is one of "move", "partition-ivp", "replicate", "drop-replica", "shrink",
// "merge".
type Action struct {
	Time   float64
	Kind   string
	Column string
	From   int
	To     int
	Parts  int
	// Bytes is the replica memory allocated ("replicate") or reclaimed
	// ("drop-replica"), or the delta bytes being folded ("merge").
	Bytes int64
}

// Placer is the data placer actor of Figure 20. Register it with the
// simulation engine (engine.Sim.AddActor) after placing data with RR.
type Placer struct {
	Engine  *core.Engine
	Catalog *Catalog
	Cfg     Config

	lastRun   float64
	lastMC    []float64
	lastChurn map[string]float64 // column -> last move/repartition time

	// Actions is the decision log, newest last.
	Actions []Action
	// PagesMoved counts pages migrated by moves and repartitioning (the
	// move_pages cost proxy of Table 2).
	PagesMoved int64
	// PagesCopied counts pages streamed to create replicas (replication
	// copies data instead of moving pages).
	PagesCopied int64

	replicaBytes int64
	// PeakReplicaBytes is the high-water mark of replica memory, for
	// asserting the budget is never exceeded.
	PeakReplicaBytes int64
}

// New creates a placer. Zero-valued Config fields are filled with the
// DefaultConfig values field by field — except ReplicaBudgetBytes, whose
// zero is meaningful ("replication disabled"): start from DefaultConfig()
// to opt into the default budget. Any replicas already present on the
// catalog's columns (e.g. placed manually with PlaceReplicated) count
// against the budget from the start.
func New(e *core.Engine, cat *Catalog, cfg Config) *Placer {
	def := DefaultConfig()
	if cfg.Period == 0 {
		cfg.Period = def.Period
	}
	if cfg.ImbalanceRatio == 0 {
		cfg.ImbalanceRatio = def.ImbalanceRatio
	}
	if cfg.DominanceFraction == 0 {
		cfg.DominanceFraction = def.DominanceFraction
	}
	if cfg.ReadHotFraction == 0 {
		cfg.ReadHotFraction = def.ReadHotFraction
	}
	if cfg.StaleReplicaFraction == 0 {
		cfg.StaleReplicaFraction = def.StaleReplicaFraction
	}
	if cfg.WriteHotFraction == 0 {
		cfg.WriteHotFraction = def.WriteHotFraction
	}
	if cfg.MergeDeltaFraction == 0 {
		cfg.MergeDeltaFraction = def.MergeDeltaFraction
	}
	if cfg.MergeTrafficFraction == 0 {
		cfg.MergeTrafficFraction = def.MergeTrafficFraction
	}
	if cfg.MaxPartitions == 0 {
		cfg.MaxPartitions = e.Machine.Sockets
	}
	if cfg.ReplicaCooldown == 0 {
		cfg.ReplicaCooldown = 2 * cfg.Period
	}
	p := &Placer{
		Engine:    e,
		Catalog:   cat,
		Cfg:       cfg,
		lastMC:    make([]float64, e.Machine.Sockets),
		lastChurn: make(map[string]float64),
	}
	for _, col := range cat.Columns() {
		p.replicaBytes += col.ExtraReplicaBytes()
	}
	p.PeakReplicaBytes = p.replicaBytes
	return p
}

// ReplicaBytes returns the simulated memory currently spent on extra
// replicas, the quantity capped by Config.ReplicaBudgetBytes.
func (p *Placer) ReplicaBytes() int64 { return p.replicaBytes }

// record appends one action to the placer's decision log and, when the
// engine's flight recorder is enabled, mirrors it into the trace decision
// ring with the heat numbers that triggered it.
func (p *Placer) record(a Action, cause string) {
	p.Actions = append(p.Actions, a)
	if p.Engine.Trace != nil {
		p.Engine.Trace.Decisions.Record(trace.Decision{
			Time: a.Time, Source: "placer", Kind: a.Kind, Item: a.Column,
			From: a.From, To: a.To, Cause: cause,
		})
	}
}

// mib formats bytes as MiB for decision causes.
func mib(b float64) string { return fmt.Sprintf("%.1fMiB", b/(1<<20)) }

// Tick implements sim.Actor: one balancing round per Config.Period.
func (p *Placer) Tick(now float64) {
	if now-p.lastRun < p.Cfg.Period {
		return
	}
	p.lastRun = now
	e := p.Engine

	// Resync the replica-memory accounting with the catalog: a background
	// merge completing between rounds rebuilds replicas at the merged size
	// (placement.MergeDelta), changing their footprint out of band.
	p.replicaBytes = 0
	for _, col := range p.Catalog.Columns() {
		p.replicaBytes += col.ExtraReplicaBytes()
	}
	if p.replicaBytes > p.PeakReplicaBytes {
		p.PeakReplicaBytes = p.replicaBytes
	}

	// Per-socket utilization over the last period, from the MC byte
	// counters (the paper reads hardware counters here).
	cur := e.HW.MCUtilization()
	delta := make([]float64, len(cur))
	for s := range cur {
		delta[s] = cur[s] - p.lastMC[s]
		p.lastMC[s] = cur[s]
	}
	hot, cold := argmax(delta), p.coldestOnline(delta)
	traffic := e.ItemTraffic()
	defer e.ResetItemTraffic()

	total := 0.0
	for _, d := range delta {
		total += d
	}
	if total <= 0 {
		// A fully idle period carries no signal: leave placement (including
		// replicas) untouched rather than churn on a workload gap.
		return
	}
	// Write-side levers run every round, independent of balance: the
	// write-guard reclaims replicas of write-hot columns, and the merge
	// heuristics fold grown deltas back into the main.
	p.reclaimWriteHot(now, traffic)
	p.triggerMerges(now, traffic)
	if cold >= 0 && cold != hot &&
		delta[hot] > p.Cfg.ImbalanceRatio*maxf(delta[cold], total/float64(len(delta))/4) {
		p.rebalance(now, hot, cold, delta[hot], traffic)
		return
	}
	p.shrinkCold(now, traffic, total/float64(len(delta)))
}

// reclaimWriteHot is the drop half of the write-guard: every replicated
// column whose last-period write traffic touches at least
// Config.WriteHotFraction of one replica's footprint loses all extra
// replicas — each copy would have to absorb every write and the next merge
// rebuilds every copy in full, so replication no longer pays (the Section 7
// update-rate concern).
func (p *Placer) reclaimWriteHot(now float64, traffic map[string]*core.ItemTraffic) {
	for _, col := range p.Catalog.Columns() {
		if !col.Replicated() {
			continue
		}
		it := traffic[col.Name]
		if it == nil || it.WriteBytes <= 0 ||
			it.WriteBytes < p.Cfg.WriteHotFraction*float64(placement.ReplicaFootprintBytes(col)) {
			continue
		}
		for len(col.ReplicaSockets) > 1 {
			s := col.ReplicaSockets[len(col.ReplicaSockets)-1]
			freed := p.Engine.Placer.DropReplica(col, s)
			p.replicaBytes -= freed
			p.record(Action{Time: now, Kind: "drop-replica", Column: col.Name, From: s, Bytes: freed},
				fmt.Sprintf("write-guard: %s written last period >= %.0f%% of the replica footprint",
					mib(it.WriteBytes), p.Cfg.WriteHotFraction*100))
		}
	}
}

// triggerMerges fires the background merge for every column whose delta has
// outgrown one of the heuristics: the size trigger (delta bytes vs main IV
// bytes), the scan-slowdown trigger (the delta's share of last-period scan
// bytes), or the write-cold cleanup (scanned, non-empty delta, zero writes —
// folding is pure win). The merge itself runs asynchronously
// (core.Engine.StartMerge); its completion swaps in the rebuilt main.
func (p *Placer) triggerMerges(now float64, traffic map[string]*core.ItemTraffic) {
	if p.Cfg.MergeDeltaFraction < 0 {
		return
	}
	for _, col := range p.Catalog.Columns() {
		d := col.Delta
		if d == nil || d.Merging() || d.Rows() == 0 {
			continue
		}
		deltaBytes := d.SizeBytes()
		reason := ""
		if float64(deltaBytes) >= p.Cfg.MergeDeltaFraction*float64(col.IVBytes()) {
			reason = fmt.Sprintf("delta grew to %s >= %.0f%% of the %s main",
				mib(float64(deltaBytes)), p.Cfg.MergeDeltaFraction*100, mib(float64(col.IVBytes())))
		} else if it := traffic[col.Name]; it != nil && it.DeltaBytes > 0 {
			if scanBytes := it.IVBytes + it.DeltaBytes; it.DeltaBytes >= p.Cfg.MergeTrafficFraction*scanBytes {
				// The delta is slowing scans down.
				reason = fmt.Sprintf("delta served %s of %s scanned last period (>= %.0f%%)",
					mib(it.DeltaBytes), mib(scanBytes), p.Cfg.MergeTrafficFraction*100)
			} else if it.WriteBytes == 0 {
				// Write-cold cleanup: folding is pure win.
				reason = "write-cold delta still being scanned"
			}
		}
		if reason == "" {
			continue
		}
		started, target, _ := p.Engine.StartMerge(col, nil)
		if !started {
			continue
		}
		p.record(Action{Time: now, Kind: "merge", Column: col.Name, From: -1, To: target, Bytes: deltaBytes}, reason)
	}
}

// rebalance implements the unbalanced branch of the flowchart: replicate a
// read-hot dominating item, move a non-dominating one, or repartition.
func (p *Placer) rebalance(now float64, hot, cold int, hotBytes float64, traffic map[string]*core.ItemTraffic) {
	hottest, hottestTraffic := p.hottestOn(hot, traffic, false)
	if hottest == nil {
		return
	}
	if p.tryReplicate(now, hottest, hottestTraffic, hot, cold, hotBytes) {
		return
	}
	if hottest.Replicated() {
		// A replicated item has no move/partition lever left: moving the
		// primary would desynchronize the replica metadata and IVP conflicts
		// with replica-sliced scheduling. While the budget (or cooldown)
		// gates further replicas, offload the hot socket's next-hottest
		// unreplicated item instead.
		hottest, hottestTraffic = p.hottestOn(hot, traffic, true)
		if hottest == nil {
			return
		}
	}
	best := hottestTraffic.Bytes
	alloc := p.Engine.Placer.Alloc
	if best < p.Cfg.DominanceFraction*hotBytes && hottest.NumPartitions() == 1 {
		// The item does not dominate the hot socket: move it wholesale to
		// the coldest socket.
		moved := hottest.IVPSM.MoveRange(alloc, hottest.IVRange, cold)
		moved += hottest.DictPSM.MoveRange(alloc, hottest.DictRange, cold)
		if hottest.IXPSM != nil {
			moved += hottest.IXPSM.MoveRange(alloc, hottest.IXRange, cold)
		}
		p.PagesMoved += moved
		p.lastChurn[hottest.Name] = now
		p.record(Action{Time: now, Kind: "move", Column: hottest.Name, From: hot, To: cold},
			fmt.Sprintf("item served %s of hot socket %d's %s (< %.0f%% dominance): move to coldest socket %d",
				mib(best), hot, mib(hotBytes), p.Cfg.DominanceFraction*100, cold))
		return
	}
	// The item dominates: increase its partition count, placing the new
	// partition on the coldest socket. The whole-column placer always uses
	// the IVP mechanism — PP operates at table granularity and is delegated
	// to the repartitioning tooling (placement.PlacePP and the PPCost
	// model), so the action is labelled by the mechanism actually applied.
	// The paper's Figure 20 would pick PP for dictionary-heavy items; here
	// such items are preferentially served by replication above.
	nparts := hottest.NumPartitions()
	if nparts >= p.Cfg.MaxPartitions {
		return
	}
	sockets := currentIVSockets(hottest)
	sockets = append(sockets, cold)
	moved := p.Engine.Placer.RepartitionIVP(hottest, sockets)
	p.PagesMoved += moved
	p.lastChurn[hottest.Name] = now
	p.record(Action{Time: now, Kind: "partition-ivp", Column: hottest.Name, From: hot, To: cold, Parts: nparts + 1},
		fmt.Sprintf("item dominates hot socket %d (%s of %s served): split %d->%d partitions, new one on socket %d",
			hot, mib(best), mib(hotBytes), nparts, nparts+1, cold))
}

// hottestOn finds the item with the most attributed traffic that has a copy
// (primary IV pages or a replica) on the hot socket. skipReplicated
// restricts the search to items the move/partition levers still apply to.
func (p *Placer) hottestOn(hot int, traffic map[string]*core.ItemTraffic, skipReplicated bool) (*colstore.Column, *core.ItemTraffic) {
	var hottest *colstore.Column
	var hottestTraffic *core.ItemTraffic
	best := 0.0
	for _, col := range p.Catalog.Columns() {
		it := traffic[col.Name]
		if it == nil || col.IVPSM == nil {
			continue
		}
		if skipReplicated && col.Replicated() {
			continue
		}
		onHot := false
		for s, pages := range col.IVPSM.Summary() {
			if s == hot && pages > 0 {
				onHot = true
			}
		}
		for _, s := range col.ReplicaSockets {
			if s == hot {
				onHot = true
			}
		}
		if onHot && it.Bytes > best {
			best = it.Bytes
			hottest = col
			hottestTraffic = it
		}
	}
	return hottest, hottestTraffic
}

// tryReplicate applies the replication lever: a dominating, read-hot item
// with no recent repartition churn gains a copy on the coldest socket, if
// the memory budget allows. Returns true when a replica was added.
func (p *Placer) tryReplicate(now float64, col *colstore.Column, it *core.ItemTraffic, hot, cold int, hotBytes float64) bool {
	if p.Cfg.ReplicaBudgetBytes <= 0 || col.NumPartitions() != 1 {
		return false
	}
	if it == nil || it.Bytes <= 0 || it.Bytes < p.Cfg.DominanceFraction*hotBytes {
		return false
	}
	if it.WriteBytes > 0 {
		// Write-guard: any nonzero recent write traffic disqualifies the
		// column — every replica would have to absorb every write, so the
		// copies could never pay for themselves (Section 7's update-rate
		// concern pricing replication out).
		return false
	}
	if reads := it.IVBytes + it.DictBytes; reads < p.Cfg.ReadHotFraction*it.Bytes {
		return false
	}
	if t, ok := p.lastChurn[col.Name]; ok && now-t < p.Cfg.ReplicaCooldown {
		return false
	}
	for _, s := range col.ReplicaSockets {
		if s == cold {
			return false
		}
	}
	if p.replicaBytes+placement.ReplicaFootprintBytes(col) > p.Cfg.ReplicaBudgetBytes {
		return false
	}
	added := p.Engine.Placer.AddReplica(col, cold)
	if added == 0 {
		return false
	}
	p.replicaBytes += added
	if p.replicaBytes > p.PeakReplicaBytes {
		p.PeakReplicaBytes = p.replicaBytes
	}
	p.PagesCopied += (added + memsim.PageSize - 1) / memsim.PageSize
	p.record(Action{Time: now, Kind: "replicate", Column: col.Name, From: hot, To: cold, Bytes: added},
		fmt.Sprintf("read-hot item served %s of hot socket %d's %s (>= %.0f%% dominance, %.0f%% reads): replicate to cold socket %d",
			mib(it.Bytes), hot, mib(hotBytes), p.Cfg.DominanceFraction*100,
			(it.IVBytes+it.DictBytes)/it.Bytes*100, cold))
	return true
}

// shrinkCold implements the balanced branch: partitioned items with no
// active traffic collapse back toward a single partition (Section 6.1.4),
// and replicas that stopped earning their keep are garbage-collected,
// returning their memory to the budget. avgSocketBytes is the mean
// per-socket traffic of the last period, the absolute reference a
// replicated column's traffic must stay significant against. At most one
// action per round.
func (p *Placer) shrinkCold(now float64, traffic map[string]*core.ItemTraffic, avgSocketBytes float64) {
	for _, col := range p.Catalog.Columns() {
		it := traffic[col.Name]
		if col.Replicated() {
			if stale := p.staleReplica(col, it, avgSocketBytes); stale >= 0 {
				freed := p.Engine.Placer.DropReplica(col, stale)
				p.replicaBytes -= freed
				p.record(Action{Time: now, Kind: "drop-replica", Column: col.Name, From: stale, Bytes: freed},
					fmt.Sprintf("stale replica on socket %d: item traffic decayed below %.0f%% of the mean socket's %s",
						stale, p.Cfg.StaleReplicaFraction*100, mib(avgSocketBytes)))
				return
			}
			continue
		}
		if col.NumPartitions() <= 1 {
			continue
		}
		if it != nil && it.Bytes > 0 {
			continue // item is warm
		}
		sockets := currentIVSockets(col)
		moved := p.Engine.Placer.RepartitionIVP(col, sockets[:len(sockets)-1])
		p.PagesMoved += moved
		p.lastChurn[col.Name] = now
		p.record(Action{Time: now, Kind: "shrink", Column: col.Name, Parts: col.NumPartitions()},
			fmt.Sprintf("balanced round, no traffic on the item: shrink to %d partitions", col.NumPartitions()))
		return // at most one action per round
	}
}

// staleReplica returns the socket of one extra replica of the column whose
// last-period traffic no longer justifies the copy, or -1. A replica is
// stale when the column went fully cold, when its total traffic decayed to
// a negligible fraction of the average socket's (the column would no longer
// qualify for replication today), or when this particular copy served far
// less than its even share (scheduling drifted away from it).
func (p *Placer) staleReplica(col *colstore.Column, it *core.ItemTraffic, avgSocketBytes float64) int {
	if len(col.ReplicaSockets) < 2 {
		return -1
	}
	if it == nil || it.Bytes <= 0 || it.Bytes < p.Cfg.StaleReplicaFraction*avgSocketBytes {
		return col.ReplicaSockets[len(col.ReplicaSockets)-1]
	}
	evenShare := it.Bytes / float64(len(col.ReplicaSockets))
	for _, s := range col.ReplicaSockets[1:] {
		served := 0.0
		if s >= 0 && s < len(it.PerSocket) {
			served = it.PerSocket[s]
		}
		if served < p.Cfg.StaleReplicaFraction*evenShare {
			return s
		}
	}
	return -1
}

// currentIVSockets lists the sockets of the column's IVP partitions in
// partition order.
func currentIVSockets(col *colstore.Column) []int {
	n := col.NumPartitions()
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		from, to := col.PartitionBounds(i)
		mid := (from + to) / 2
		addr := col.IVRange.Start
		off := col.IVOffsetForRow(mid)
		if off < col.IVRange.Bytes {
			addr += memsim.Addr(off)
		}
		s := col.IVPSM.LocationOf(addr)
		if s < 0 {
			s = 0
		}
		out = append(out, s)
	}
	return out
}

// coldestOnline returns the socket with the least last-period traffic whose
// worker pool is online, or -1 when no socket is. Every lever places data on
// the cold socket, so a socket taken down by fault injection must never be
// the target: data moved there could only be served remotely, and the scans
// the placer is trying to localize would chase it off-socket. With every
// socket online this is exactly argmin (same first-index tie-break).
func (p *Placer) coldestOnline(v []float64) int {
	best := -1
	for s, x := range v {
		if !p.Engine.Sched.SocketOnline(s) {
			continue
		}
		if best < 0 || x < v[best] {
			best = s
		}
	}
	return best
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
