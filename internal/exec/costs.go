package exec

import "numacs/internal/colstore"

// Costs holds the calibrated cost-model constants. Defaults are tuned so the
// simulated machines reproduce Table 1 and the headline ratios of the paper
// (see the calibration tests and EXPERIMENTS.md).
type Costs struct {
	// ScanCyclesPerByte is the compute cost of the SIMD scan kernel.
	ScanCyclesPerByte float64
	// ScanInstrPerByte feeds the IPC proxy.
	ScanInstrPerByte float64
	// MatCyclesPerAccess is the per-qualifying-row compute cost of
	// materialization (IV probe + dictionary decode + output write).
	MatCyclesPerAccess float64
	// MatInstrPerAccess feeds the IPC proxy.
	MatInstrPerAccess float64
	// IdxCyclesPerAccess is the per-position compute cost of index lookups.
	IdxCyclesPerAccess float64
	// OutBytesPerMatch is the output-vector bytes written per qualifying row.
	OutBytesPerMatch float64
	// QueryOverheadSeconds is the fixed per-query session/parse/plan cost,
	// modelled as compute on the client's home socket.
	QueryOverheadSeconds float64
	// UnboundStreamPenalty scales the per-thread streaming and random-access
	// rate of tasks executed by unbound workers (the OS strategy): it models
	// the combined cost of OS thread migration, prefetcher restarts, and
	// cross-socket queueing that a NUMA-agnostic system suffers. This is the
	// one deliberately calibrated constant, set to reproduce the ~5x gap of
	// Figures 1 and 8; the ablation benchmark quantifies its influence.
	UnboundStreamPenalty float64
	// IndexSelectivityThreshold is the optimizer's cutoff: predicates at or
	// below this selectivity use index lookups when an index exists
	// (Section 6.1.5 observes the switch between 0.1% and 1%).
	IndexSelectivityThreshold float64
	// IndexAccessesPerMatch is the pointer-chasing cost of index lookups in
	// dependent cache-line accesses per qualifying position.
	IndexAccessesPerMatch float64
	// MatMissRate is the fraction of materialization dictionary probes that
	// miss the last-level cache and reach DRAM; dictionaries largely fit in
	// the L3, which keeps materialization CPU-intensive (Section 6.1.5).
	MatMissRate float64
	// BitvectorSelectivity is the threshold above which the find phase emits
	// its qualifying matches as a bitvector (one bit per row) instead of a
	// position list (4 bytes per match) — the two result formats of Section
	// 5.2 ("for high selectivities, a bitvector format is preferred").
	BitvectorSelectivity float64
	// IdxMissRate is the same for index pointer chasing (postings are
	// colder than dictionaries).
	IdxMissRate float64
	// DeltaScanCyclesPerByte is the compute cost of scanning uncompressed
	// delta rows: predicate evaluation on raw 8-byte values cannot use the
	// bit-packed SIMD kernel, so it burns more cycles per byte than the
	// main's scan (on top of the delta's larger bytes-per-row).
	DeltaScanCyclesPerByte float64
	// DeltaWriteBytesPerRow is the DRAM traffic one delta append generates:
	// the entry itself plus amortized fragment-local dictionary maintenance.
	DeltaWriteBytesPerRow float64
	// SharedPredCyclesPerByte is the marginal compute of each ADDITIONAL
	// predicate a shared scan pass evaluates per chunk: the pass unpacks the
	// bit-compressed values once (ScanCyclesPerByte, load + decode
	// dominated) and then runs one SIMD range-compare per further member on
	// the decoded registers — about half a full private scan kernel, so
	// cohort sharing keeps a compute margin beyond two members on top of
	// its N-fold memory-traffic saving.
	SharedPredCyclesPerByte float64
	// SharedPredInstrPerByte is the IPC-proxy counterpart of the marginal
	// predicate evaluation.
	SharedPredInstrPerByte float64
}

// SharedScanCyclesPerByte returns the per-byte compute of an n-predicate
// shared scan pass: one decode plus n-1 marginal predicate evaluations.
func (c *Costs) SharedScanCyclesPerByte(n int) float64 {
	return c.ScanCyclesPerByte + float64(n-1)*c.SharedPredCyclesPerByte
}

// SharedScanInstrPerByte returns the instructions-per-byte proxy of an
// n-predicate shared scan pass.
func (c *Costs) SharedScanInstrPerByte(n int) float64 {
	return c.ScanInstrPerByte + float64(n-1)*c.SharedPredInstrPerByte
}

// SharedDeltaCyclesPerByte returns the per-byte compute of an n-predicate
// shared delta-fragment scan: the uncompressed row is loaded once and each
// further member adds a marginal compare.
func (c *Costs) SharedDeltaCyclesPerByte(n int) float64 {
	return c.DeltaScanCyclesPerByte + float64(n-1)*c.SharedPredCyclesPerByte
}

// DefaultCosts returns the calibrated defaults.
func DefaultCosts() Costs {
	return Costs{
		ScanCyclesPerByte:         0.5,
		ScanInstrPerByte:          1.0,
		MatCyclesPerAccess:        15,
		MatInstrPerAccess:         60,
		IdxCyclesPerAccess:        20,
		OutBytesPerMatch:          colstore.ValueSize + 4, // value + position
		QueryOverheadSeconds:      30e-6,
		UnboundStreamPenalty:      0.15,
		IndexSelectivityThreshold: 0.001,
		IndexAccessesPerMatch:     1.2,
		MatMissRate:               0.1,
		IdxMissRate:               0.6,
		BitvectorSelectivity:      0.02,
		DeltaScanCyclesPerByte:    1.0,
		DeltaWriteBytesPerRow:     16,
		// Derived from BenchmarkSharedPred at the benchmark bitcase (12):
		// with r the measured shared/private ns-per-row ratio of an n=8
		// cohort (~0.60), the marginal predicate costs
		// Scan*(n*r-1)/(n-1) ~ 0.27 cycles/byte — rounded down to 0.25; a
		// shared pass is a saving, not a free ride. The instr counterpart
		// keeps the 2 instr/cycle ratio of the scan kernel. The derivation
		// test (TestSharedPredCostDerivation) re-measures the ratio and pins
		// the constant inside the measured band.
		SharedPredCyclesPerByte: 0.25,
		SharedPredInstrPerByte:  0.5,
	}
}
