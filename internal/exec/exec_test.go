package exec

import (
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/hw"
	"numacs/internal/metrics"
	"numacs/internal/placement"
	"numacs/internal/sched"
	"numacs/internal/sim"
	"numacs/internal/topology"
)

func TestAffinityFor(t *testing.T) {
	cases := []struct {
		strategy Strategy
		socket   int
		affinity int
		hard     bool
	}{
		{OSched, 2, -1, false},
		{OSched, -1, -1, false},
		{Target, 2, 2, false},
		{Target, 0, 0, false},
		{Target, -1, -1, false},
		{Bound, 2, 2, true},
		{Bound, 0, 0, true},
		{Bound, -1, -1, false},
	}
	for _, c := range cases {
		a, h := AffinityFor(c.strategy, c.socket)
		if a != c.affinity || h != c.hard {
			t.Errorf("AffinityFor(%s, %d) = (%d, %v), want (%d, %v)",
				c.strategy, c.socket, a, h, c.affinity, c.hard)
		}
	}
}

// testEnv builds a bare Env over a fresh 4-socket machine.
func testEnv() *Env {
	m := topology.FourSocketIvyBridge()
	s := sim.New(20e-6)
	h := hw.New(s, m)
	c := metrics.New(m.Sockets)
	sc := sched.New(h, c)
	s.AddActor(sc)
	costs := DefaultCosts()
	return &Env{Machine: m, Sim: s, HW: h, Sched: sc, Counters: c, Costs: &costs}
}

// TestAffinityDerivationAcrossPlacements covers the acceptance matrix:
// OS/Target/Bound x RR/IVP/PP placements. The partition fan-out must resolve
// every partition to the socket its pages live on, and the strategy must turn
// that socket into the right (affinity, hard) pair.
func TestAffinityDerivationAcrossPlacements(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	p := placement.New(m)

	check := func(name string, col *colstore.Column, wantSockets []int) {
		t.Helper()
		parts := Partitions(col)
		if len(wantSockets) > 0 && len(parts) != len(wantSockets) {
			t.Fatalf("%s: %d partitions, want %d", name, len(parts), len(wantSockets))
		}
		for i, pr := range parts {
			if len(wantSockets) > 0 && pr.Socket != wantSockets[i] {
				t.Errorf("%s partition %d on socket %d, want %d", name, i, pr.Socket, wantSockets[i])
			}
			for _, st := range []Strategy{OSched, Target, Bound} {
				a, h := AffinityFor(st, pr.Socket)
				switch st {
				case OSched:
					if a != -1 || h {
						t.Errorf("%s/OS: affinity (%d,%v)", name, a, h)
					}
				case Target:
					if a != pr.Socket || h {
						t.Errorf("%s/Target: affinity (%d,%v), want (%d,false)", name, a, h, pr.Socket)
					}
				case Bound:
					if a != pr.Socket || !h {
						t.Errorf("%s/Bound: affinity (%d,%v), want (%d,true)", name, a, h, pr.Socket)
					}
				}
			}
		}
	}

	// RR: the whole column on one socket — a single partition there.
	rr := colstore.NewSynthetic("RR", 40_000, 1<<12, false)
	p.PlaceColumnOnSocket(rr, 2)
	check("RR", rr, []int{2})

	// IVP: four IV partitions, one per socket.
	ivp := colstore.NewSynthetic("IVP", 40_000, 1<<12, false)
	p.PlaceIVP(ivp, []int{0, 1, 2, 3})
	check("IVP", ivp, []int{0, 1, 2, 3})

	// PP: each physical part is a column placed wholly on its socket.
	ppTable := colstore.NewTable("PP", []*colstore.Column{colstore.NewSynthetic("C", 40_000, 1<<12, false)})
	pp := p.PlacePP(ppTable, 4)
	for pi, part := range pp.Parts {
		check("PP", part.Columns[0], []int{part.HomeSocket})
		_ = pi
	}

	// Replicated: one slice per replica, each on its replica's socket.
	rep := colstore.NewSynthetic("REP", 40_000, 1<<12, false)
	p.PlaceReplicated(rep, []int{1, 3})
	check("replicated", rep, []int{1, 3})
}

// TestPartitionsWeightedSpreadsByMCLoad: a replicated column's row slices
// must shrink on loaded sockets and grow on idle ones, while still covering
// the whole row space contiguously with every replica participating.
func TestPartitionsWeightedSpreadsByMCLoad(t *testing.T) {
	m := topology.FourSocketIvyBridge()
	p := placement.New(m)
	rep := colstore.NewSynthetic("REP", 40_000, 1<<12, false)
	p.PlaceReplicated(rep, []int{0, 2})

	even := PartitionsWeighted(rep, nil)
	if len(even) != 2 || even[0].To-even[0].From != even[1].To-even[1].From {
		t.Fatalf("nil load must split evenly: %+v", even)
	}

	loaded := PartitionsWeighted(rep, []float64{9, 0, 0, 0}) // socket 0 saturated
	if len(loaded) != 2 {
		t.Fatalf("want 2 slices, got %+v", loaded)
	}
	if loaded[0].Socket != 0 || loaded[1].Socket != 2 {
		t.Fatalf("slices on wrong sockets: %+v", loaded)
	}
	s0 := loaded[0].To - loaded[0].From
	s2 := loaded[1].To - loaded[1].From
	if s0 == 0 || s2 == 0 {
		t.Fatalf("every replica must keep a slice: %+v", loaded)
	}
	if s0*2 >= s2 {
		t.Fatalf("loaded socket slice %d not well below idle slice %d", s0, s2)
	}
	if loaded[0].From != 0 || loaded[0].To != loaded[1].From || loaded[1].To != rep.Rows {
		t.Fatalf("slices not contiguous over the row space: %+v", loaded)
	}
}

// TestBestReplica pins replica-choice behavior: a worker on a replica socket
// always uses the local copy, an idle machine yields the nearest copy, and a
// loaded memory controller diverts remote workers to the copy with headroom.
func TestBestReplica(t *testing.T) {
	m := topology.EightSocketWestmere()
	s := sim.New(20e-6)
	h := hw.New(s, m)
	c := metrics.New(m.Sockets)
	costs := DefaultCosts()
	env := &Env{Machine: m, Sim: s, HW: h, Sched: sched.New(h, c), Counters: c, Costs: &costs}

	col := &colstore.Column{ReplicaSockets: []int{0, 5}}
	// Socket 1 is in box A: replica 0 is one hop, replica 5 is cross-box.
	if got := BestReplica(env, col, 1); got != 0 {
		t.Fatalf("idle nearest from 1 = %d, want 0", got)
	}
	if got := BestReplica(env, col, 6); got != 5 {
		t.Fatalf("idle nearest from 6 = %d, want 5", got)
	}
	if got := BestReplica(env, col, 5); got != 5 {
		t.Fatalf("replica-local = %d, want 5", got)
	}
	// Saturate MC[0]: remote workers divert to the socket-5 copy, but a
	// worker on socket 0 still uses its local copy.
	s.StartFlow(&sim.Flow{Remaining: 1e12, Demands: []sim.Demand{{Resource: h.MC[0], Weight: 50}}})
	if got := BestReplica(env, col, 1); got != 5 {
		t.Fatalf("loaded MC[0]: from 1 = %d, want 5", got)
	}
	if got := BestReplica(env, col, 0); got != 0 {
		t.Fatalf("loaded MC[0]: local worker = %d, want 0", got)
	}
	if got := BestReplica(env, &colstore.Column{}, 1); got != -1 {
		t.Fatalf("unreplicated column = %d, want -1", got)
	}
}

func TestSplitRows(t *testing.T) {
	spans := SplitRows(100, 200, 4)
	if len(spans) != 4 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0][0] != 100 || spans[3][1] != 200 {
		t.Fatalf("bad bounds: %v", spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i][0] != spans[i-1][1] {
			t.Fatalf("gap between spans: %v", spans)
		}
	}
	// More tasks than rows: clamp to one row per task.
	if got := len(SplitRows(0, 3, 10)); got != 3 {
		t.Fatalf("clamped spans = %d, want 3", got)
	}
	if SplitRows(5, 5, 4) != nil {
		t.Fatal("empty range should yield no spans")
	}
}

// barrierOp records phase events and runs its tasks as simulated flows.
type barrierOp struct {
	name   string
	tasks  int
	delay  float64
	events *[]string
}

func (o *barrierOp) Open(p *Pipeline) []Task {
	*o.events = append(*o.events, o.name+".open")
	out := make([]Task, o.tasks)
	for i := range out {
		i := i
		out[i] = Task{Socket: i % p.Env.Machine.Sockets, Run: func(w *sched.Worker, done func()) {
			p.Env.Sim.StartFlow(&sim.Flow{
				Remaining: o.delay * float64(i+1), // staggered durations
				RateCap:   1,
				OnDone: func() {
					*o.events = append(*o.events, o.name+".task")
					done()
				},
			})
		}}
	}
	return out
}

func (o *barrierOp) Close(*Pipeline) {
	*o.events = append(*o.events, o.name+".close")
}

// TestPipelineBarrierOrdering asserts the pipeline's phase contract: all of
// phase A's tasks complete before A closes, A closes before B opens, and the
// pipeline's OnDone fires last with the statement latency.
func TestPipelineBarrierOrdering(t *testing.T) {
	env := testEnv()
	var events []string
	a := &barrierOp{name: "A", tasks: 5, delay: 1e-4, events: &events}
	b := &barrierOp{name: "B", tasks: 3, delay: 1e-4, events: &events}
	doneLat := -1.0
	p := &Pipeline{
		Env: env, Strategy: Bound, IssuedAt: env.Sim.Now(),
		Ops:    []Operator{a, b},
		OnDone: func(lat float64) { events = append(events, "done"); doneLat = lat },
	}
	p.Start()
	env.Sim.Run(0.5)

	want := []string{
		"A.open", "A.task", "A.task", "A.task", "A.task", "A.task", "A.close",
		"B.open", "B.task", "B.task", "B.task", "B.close", "done",
	}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q (all: %v)", i, events[i], want[i], events)
		}
	}
	if doneLat <= 0 {
		t.Fatalf("latency %f not positive", doneLat)
	}
	if env.Counters.QueriesDone != 1 {
		t.Fatalf("QueriesDone = %d", env.Counters.QueriesDone)
	}
}

// TestPipelineEmptyPhases asserts operators producing no tasks still open,
// close, and advance the pipeline synchronously.
func TestPipelineEmptyPhases(t *testing.T) {
	env := testEnv()
	var events []string
	a := &barrierOp{name: "A", tasks: 0, events: &events}
	b := &barrierOp{name: "B", tasks: 0, events: &events}
	done := false
	p := &Pipeline{Env: env, Ops: []Operator{a, b}, OnDone: func(float64) { done = true }}
	p.Start()
	if !done {
		t.Fatal("empty pipeline should complete synchronously")
	}
	want := []string{"A.open", "A.close", "B.open", "B.close"}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

// TestPipelineHardTasksStayHome asserts Bound pipelines execute every task on
// its data's socket (no inter-socket steals), while Target permits them.
func TestPipelineHardTasksStayHome(t *testing.T) {
	env := testEnv()
	offSocket := 0
	op := &socketCheckOp{want: 1, offSocket: &offSocket}
	p := &Pipeline{Env: env, Strategy: Bound, Ops: []Operator{op}}
	p.Start()
	env.Sim.Run(0.05)
	if offSocket != 0 {
		t.Fatalf("%d Bound tasks ran off their socket", offSocket)
	}
}

type socketCheckOp struct {
	want      int
	offSocket *int
}

func (o *socketCheckOp) Open(p *Pipeline) []Task {
	out := make([]Task, 16)
	for i := range out {
		out[i] = Task{Socket: o.want, Run: func(w *sched.Worker, done func()) {
			if w.Socket() != o.want {
				*o.offSocket++
			}
			p.Env.Sim.StartFlow(&sim.Flow{Remaining: 1e-5, RateCap: 1, OnDone: done})
		}}
	}
	return out
}

func (o *socketCheckOp) Close(*Pipeline) {}
