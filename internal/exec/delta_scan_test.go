package exec

// Tests for the delta-union side of the find phase: scans of a written
// column plan extra per-fragment tasks, attribute their traffic as delta
// bytes, and contribute analytic matches — while an unwritten column's plan
// is untouched.

import (
	"math/rand"
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/delta"
	"numacs/internal/placement"
)

// deltaScanSetup builds a placed 2-column synthetic table and an Env wired
// with item-traffic accounting.
func deltaScanSetup(t *testing.T) (*Env, *colstore.Table, map[string]Traffic) {
	t.Helper()
	env := testEnv()
	p := placement.New(env.Machine)
	tbl := colstore.NewTable("TBL", []*colstore.Column{
		colstore.NewSynthetic("COL000", 20_000, 1<<12, false),
		colstore.NewSynthetic("COL001", 20_000, 1<<13, false),
	})
	p.PlaceRR(tbl)
	env.Rand = rand.New(rand.NewSource(1))
	traffic := map[string]Traffic{}
	env.AddItemTraffic = func(item string, socket int, tr Traffic) {
		cur := traffic[item]
		cur.Bytes += tr.Bytes
		cur.IVBytes += tr.IVBytes
		cur.DictBytes += tr.DictBytes
		cur.DeltaBytes += tr.DeltaBytes
		cur.WriteBytes += tr.WriteBytes
		traffic[item] = cur
	}
	return env, tbl, traffic
}

func runScanPipeline(env *Env, tbl *colstore.Table, column string) *ScanOp {
	scan := &ScanOp{Table: tbl, Column: column, Selectivity: 0.01, Parallel: true}
	done := false
	p := &Pipeline{Env: env, Strategy: Bound, HomeSocket: 0, Ops: []Operator{scan},
		OnDone: func(float64) { done = true }}
	p.Start()
	for i := 0; i < 200_000 && !done; i++ {
		env.Sim.Step()
	}
	if !done {
		panic("exec test: scan pipeline never drained")
	}
	return scan
}

// TestScanUnionsVisibleDelta: a written column's find phase must include one
// task per non-empty fragment, add the analytic delta matches to the
// regions, and attribute the streamed bytes as delta traffic on the
// fragment's socket.
func TestScanUnionsVisibleDelta(t *testing.T) {
	env, tbl, traffic := deltaScanSetup(t)
	col := tbl.Parts[0].Columns[0]
	col.Delta = delta.New(env.Machine.Sockets, true)
	const perFrag = 1000
	for s := 0; s < 3; s++ { // three non-empty fragments, one empty
		for i := 0; i < perFrag; i++ {
			col.Delta.Insert(s, 0)
		}
	}

	scan := runScanPipeline(env, tbl, col.Name)

	mainMatches, deltaMatches := 0, 0
	deltaRegions := 0
	for _, r := range scan.Regions() {
		if r.Col != col {
			t.Fatalf("region for unexpected column %s", r.Col.Name)
		}
		if r.Part != tbl.Parts[0] {
			t.Fatal("region lost its part")
		}
		if r.Socket >= 0 && r.Socket < 3 && r.Matches == perFrag/100 {
			deltaRegions++
			deltaMatches += r.Matches
		} else {
			mainMatches += r.Matches
		}
	}
	if deltaRegions != 3 {
		t.Fatalf("expected 3 delta regions (one per non-empty fragment), classified %d; regions: %+v",
			deltaRegions, scan.Regions())
	}
	if deltaMatches != 3*perFrag/100 {
		t.Fatalf("delta matches %d, want %d (selectivity x visible rows, no jitter)", deltaMatches, 3*perFrag/100)
	}
	if mainMatches == 0 {
		t.Fatal("main scan contributed no matches")
	}
	it := traffic[col.Name]
	wantDelta := float64(3*perFrag) * delta.RowBytes
	if it.DeltaBytes < wantDelta*0.99 || it.DeltaBytes > wantDelta*1.01 {
		t.Fatalf("delta bytes %.0f, want ~%.0f", it.DeltaBytes, wantDelta)
	}
	if it.IVBytes <= 0 {
		t.Fatal("main IV bytes not attributed")
	}
}

// TestUnwrittenColumnPlansNoDeltaTasks: a nil Delta (never written) must
// leave the plan untouched — same regions, no delta traffic — so read-only
// workloads execute exactly as before the write path existed.
func TestUnwrittenColumnPlansNoDeltaTasks(t *testing.T) {
	env, tbl, traffic := deltaScanSetup(t)
	col := tbl.Parts[0].Columns[1]

	scan := runScanPipeline(env, tbl, col.Name)

	for _, r := range scan.Regions() {
		if r.Matches == 0 {
			t.Fatal("empty region planned for an unwritten column")
		}
	}
	if it := traffic[col.Name]; it.DeltaBytes != 0 || it.WriteBytes != 0 {
		t.Fatalf("unwritten column attributed delta/write traffic: %+v", it)
	}
}
