package exec

// Shared-scan operators: the find phase of a scan cohort. A cohort batches N
// concurrent range-predicate scans of the same column into ONE physical pass
// over the indexvector — the memory traversal is paid once, each chunk is
// evaluated against all member predicates (Crescando / SAP HANA-style scan
// sharing), and every member keeps its own logical result regions for its
// private output phase. The accounting rule mirrors the write-path merge
// precedent: physical counters (MC bytes, link traffic, LLC lines) are
// charged once per pass, while per-item traffic is attributed once per
// member so the adaptive placer's read-heat signal still sees N logical
// scans. With a single member the pass plans the identical tasks, draws the
// identical RNG stream, and starts the identical flows as ScanOp — the
// uncontended bypass guarantee, pinned by the harness golden test.

import (
	"fmt"

	"numacs/internal/colstore"
	"numacs/internal/delta"
	"numacs/internal/sched"
	"numacs/internal/sim"
)

// SharedPred is one member predicate of a shared scan pass.
type SharedPred struct {
	// Selectivity of the member's range predicate; it drives the member's
	// analytic match counts and its result-format (position list vs
	// bitvector) output bytes.
	Selectivity float64
}

// sharedTask is one planned task of a shared find pass.
type sharedTask struct {
	col     *colstore.Column
	rowFrom int
	rowTo   int
	region  int
	socket  int
	// deltaFrag marks a delta-fragment task (rows streamed uncompressed from
	// the fragment's socket); matches are analytic per member, like ScanOp.
	deltaFrag bool
	deltaRows int
}

// SharedScanOp is the find phase of a scan cohort: one physical pass over
// the column that evaluates every member predicate per chunk. It implements
// Operator (the pass itself) and RegionSource (the leader's — member 0's —
// regions); followers consume their regions via MemberRegions.
type SharedScanOp struct {
	// Table and Column name the scanned data (every member shares them).
	Table  *colstore.Table
	Column string
	// Preds holds one predicate per cohort member, leader first.
	Preds []SharedPred
	// FanoutCap is the members' summed admission fan-out caps (0 when any
	// member was admitted uncapped); it bounds the pass's task budget.
	FanoutCap int
	// OnClosed fires at the find barrier, after every member's regions are
	// final — the cohort registry's hook to start follower statements and
	// the attachers' wrap pass.
	OnClosed func()

	regions    [][]Region // per member, parallel layouts
	bytesTotal float64    // planned main-pass IV bytes
	bytesDone  float64    // streamed so far (attach-progress signal)
}

// Regions implements RegionSource for the leader (member 0).
func (s *SharedScanOp) Regions() []Region { return s.MemberRegions(0) }

// MemberRegions returns member i's find-phase regions: the same partition
// layout for every member, with the member's own match counts.
func (s *SharedScanOp) MemberRegions(i int) []Region { return s.regions[i] }

// Fraction reports the pass's streamed fraction of its planned IV bytes —
// the progress signal the registry's mid-flight attach policy keys on.
func (s *SharedScanOp) Fraction() float64 {
	if s.bytesTotal <= 0 {
		return 0
	}
	f := s.bytesDone / s.bytesTotal
	if f > 1 {
		f = 1
	}
	return f
}

// sharedJitter is ScanOp's analytic match model with the selectivity as a
// parameter: expectation with a small deterministic per-task jitter. Draw
// order is per task, then per member (leader first), so a single-member pass
// consumes the identical RNG stream as ScanOp.
func sharedJitter(env *Env, rows int, sel float64) int {
	exp := sel * float64(rows)
	f := 0.95 + 0.1*env.Rand.Float64()
	m := int(exp*f + 0.5)
	if m > rows {
		m = rows
	}
	return m
}

// cohortBudget scales a per-statement task budget to the cohort: the pass
// replaces n statements, so it inherits n concurrency-hint shares, bounded
// by the machine's hardware contexts and by cap — the members' summed
// admission fan-out caps (0 when any member was admitted uncapped), so the
// elastic controller's granularity lever still binds on shared passes.
func cohortBudget(p *Pipeline, n, cap int) int {
	h := p.Env.hint() * n
	if t := p.Env.Machine.TotalThreads(); h > t {
		h = t
	}
	if cap > 0 && cap < h {
		h = cap
	}
	if h < 1 {
		h = 1
	}
	return h
}

// Open plans the shared find pass: the same partition fan-out as ScanOp's
// parallel branch, with the whole predicate set carried by every task and
// per-member match counts drawn per task.
func (s *SharedScanOp) Open(p *Pipeline) []Task {
	env := p.Env
	n := len(s.Preds)
	s.regions = make([][]Region, n)
	s.bytesTotal, s.bytesDone = 0, 0
	mcLoad := env.MCLoad()
	var tasks []sharedTask
	for _, part := range s.Table.Parts {
		col := part.ColumnByName(s.Column)
		if col == nil {
			panic(fmt.Sprintf("exec: no column %s", s.Column))
		}
		hint := cohortBudget(p, n, s.FanoutCap)
		if s.Table.NumParts() > 1 {
			hint = hint / s.Table.NumParts()
			if hint < 1 {
				hint = 1
			}
		}
		parts := PartitionsWeighted(col, mcLoad)
		per := TasksPerPartition(hint, len(parts))
		for _, pr := range parts {
			region := len(s.regions[0])
			for i := range s.regions {
				s.regions[i] = append(s.regions[i], Region{Col: col, Part: part, Socket: pr.Socket})
			}
			for _, span := range SplitRows(pr.From, pr.To, per) {
				tasks = append(tasks, sharedTask{col: col, rowFrom: span[0], rowTo: span[1], region: region, socket: pr.Socket})
			}
		}
		// Delta union, once per cohort: one task per non-empty per-socket
		// fragment, with per-member analytic match counts (no RNG, mirroring
		// ScanOp's delta planning).
		if col.Delta != nil {
			snap := col.Delta.Snapshot()
			for sock := 0; sock < col.Delta.Sockets(); sock++ {
				rows := snap.Rows[sock]
				if rows == 0 {
					continue
				}
				region := len(s.regions[0])
				for i := range s.regions {
					s.regions[i] = append(s.regions[i], Region{Col: col, Part: part, Socket: sock})
				}
				tasks = append(tasks, sharedTask{col: col, region: region, socket: sock, deltaFrag: true, deltaRows: rows})
			}
		}
	}

	out := make([]Task, 0, len(tasks))
	for _, st := range tasks {
		st := st
		matches := make([]int, n)
		for i, pred := range s.Preds {
			if st.deltaFrag {
				matches[i] = int(pred.Selectivity*float64(st.deltaRows) + 0.5)
			} else {
				matches[i] = sharedJitter(env, st.rowTo-st.rowFrom, pred.Selectivity)
			}
			s.regions[i][st.region].Matches += matches[i]
		}
		if !st.deltaFrag {
			s.bytesTotal += float64(st.col.IVBytesForRows(st.rowFrom, st.rowTo))
		}
		run := func(w *sched.Worker, done func()) {
			s.runShared(env, w, st.col, st.rowFrom, st.rowTo, matches, done)
		}
		if st.deltaFrag {
			run = func(w *sched.Worker, done func()) {
				s.runSharedDelta(env, w, st.col, st.socket, st.deltaRows, matches, done)
			}
		}
		out = append(out, Task{Socket: st.socket, Run: run})
	}
	return out
}

// Close fires the cohort hook at the find barrier.
func (s *SharedScanOp) Close(*Pipeline) {
	if s.OnClosed != nil {
		s.OnClosed()
	}
}

// memberOutBytes returns the member's find-result output bytes under the
// Section 5.2 result formats: a position list (4 bytes per match) at low
// selectivity, a bitvector (one bit per scanned row) at high selectivity.
func memberOutBytes(env *Env, sel float64, matches, rows int) float64 {
	if sel >= env.Costs.BitvectorSelectivity {
		return float64(rows) / 8
	}
	return float64(matches) * 4
}

// runShared executes one shared scan task: stream the IV bytes of rows
// [from,to) once, burn len(matches) predicate evaluations per byte, and
// write every member's match output. Physical traffic is charged once; item
// traffic is attributed once per member.
func (s *SharedScanOp) runShared(env *Env, w *sched.Worker, col *colstore.Column, from, to int, matches []int, onDone func()) {
	n := len(matches)
	offFrom := col.IVOffsetForRow(from)
	offTo := offFrom + col.IVBytesForRows(from, to)
	if offTo > col.IVRange.Bytes {
		offTo = col.IVRange.Bytes
	}
	var perSocket []int64
	if col.Replicated() {
		rep := BestReplica(env, col, w.Socket())
		perSocket = make([]int64, rep+1)
		perSocket[rep] = offTo - offFrom
	} else {
		perSocket = col.IVPSM.SocketBytes(col.IVRange, offFrom, offTo-offFrom)
	}
	src := w.Socket()
	penalty := 1.0
	if !w.Bound {
		penalty = env.Costs.UnboundStreamPenalty
	}
	outBytes := 0.0
	for i, pred := range s.Preds {
		outBytes += memberOutBytes(env, pred.Selectivity, matches[i], to-from)
	}
	outPerByte := outBytes / float64(offTo-offFrom+1)
	var flows []*sim.Flow
	for dst, bytes := range perSocket {
		if bytes == 0 {
			continue
		}
		dst := dst
		demands, lt := env.HW.StreamDemands(src, dst, w.CoreRes, env.Costs.SharedScanCyclesPerByte(n))
		if outPerByte > 0 {
			demands = append(demands, sim.Demand{Resource: env.HW.MC[src], Weight: outPerByte})
		}
		fl := &sim.Flow{
			Remaining: float64(bytes),
			RateCap:   env.Machine.StreamRate(src, dst) * penalty,
			Demands:   demands,
			OnAdvance: func(p float64) {
				s.bytesDone += p
				env.Counters.AddMemoryTraffic(src, dst, p, p*lt.Data, p*lt.Total)
				env.Counters.AddCompute(src, p*env.Costs.SharedScanInstrPerByte(n), 0)
				// One logical attribution per member; addItemTraffic is
				// linear, so one n-scaled call equals n unit calls.
				env.addItem(col.Name, dst, Traffic{Bytes: p * float64(n), IVBytes: p * float64(n)})
			},
		}
		flows = append(flows, fl)
	}
	RunFlows(env.Sim, flows, onDone)
}

// runSharedDelta executes one shared delta-fragment task: the fragment's
// uncompressed rows are streamed once from their own socket and evaluated
// against every member predicate.
func (s *SharedScanOp) runSharedDelta(env *Env, w *sched.Worker, col *colstore.Column, frag, rows int, matches []int, onDone func()) {
	n := len(matches)
	bytes := float64(rows) * delta.RowBytes
	src := w.Socket()
	penalty := 1.0
	if !w.Bound {
		penalty = env.Costs.UnboundStreamPenalty
	}
	outBytes := 0.0
	for i, pred := range s.Preds {
		outBytes += memberOutBytes(env, pred.Selectivity, matches[i], rows)
	}
	demands, lt := env.HW.StreamDemands(src, frag, w.CoreRes, env.Costs.SharedDeltaCyclesPerByte(n))
	if outBytes > 0 {
		demands = append(demands, sim.Demand{Resource: env.HW.MC[src], Weight: outBytes / (bytes + 1)})
	}
	env.Sim.StartFlow(&sim.Flow{
		Remaining: bytes,
		RateCap:   env.Machine.StreamRate(src, frag) * penalty,
		Demands:   demands,
		OnAdvance: func(p float64) {
			env.Counters.AddMemoryTraffic(src, frag, p, p*lt.Data, p*lt.Total)
			env.Counters.AddCompute(src, p*env.Costs.SharedScanInstrPerByte(n), 0)
			env.addItem(col.Name, frag, Traffic{Bytes: p * float64(n), DeltaBytes: p * float64(n)})
		},
		OnDone: onDone,
	})
}

// WrapScanOp is the ClockScan-style wrap-around pass of a cohort's
// mid-flight attachers: statements that attached while the main pass was at
// fraction f ride the remainder for free and then re-stream only the prefix
// they missed. The wrap streams Fraction of the column's IV (plus the delta
// fragments, whole) once for all attachers; each attacher's logical regions
// cover the full column.
type WrapScanOp struct {
	// Table and Column name the scanned data.
	Table  *colstore.Table
	Column string
	// Fraction is the prefix share of the row space to re-stream — the
	// largest fraction any attacher missed.
	Fraction float64
	// Preds holds one predicate per attacher, wrap leader first.
	Preds []SharedPred
	// FanoutCap is the attachers' summed admission fan-out caps (0 when any
	// attacher was admitted uncapped).
	FanoutCap int
	// OnClosed fires at the wrap barrier (regions final).
	OnClosed func()

	regions [][]Region
}

// Regions implements RegionSource for the wrap leader (attacher 0).
func (wr *WrapScanOp) Regions() []Region { return wr.MemberRegions(0) }

// MemberRegions returns attacher i's full-column find regions.
func (wr *WrapScanOp) MemberRegions(i int) []Region { return wr.regions[i] }

// Open plans the wrap tasks: the missed prefix of each scheduling partition,
// fanned out under the attachers' combined budget. Regions span the full
// column (ride + wrap); attachers' logical item traffic is attributed at the
// barrier (see Close), since their physical ride bytes were charged to the
// main pass.
func (wr *WrapScanOp) Open(p *Pipeline) []Task {
	env := p.Env
	n := len(wr.Preds)
	wr.regions = make([][]Region, n)
	mcLoad := env.MCLoad()
	var out []Task
	for _, part := range wr.Table.Parts {
		col := part.ColumnByName(wr.Column)
		if col == nil {
			panic(fmt.Sprintf("exec: no column %s", wr.Column))
		}
		hint := cohortBudget(p, n, wr.FanoutCap)
		parts := PartitionsWeighted(col, mcLoad)
		per := TasksPerPartition(hint, len(parts))
		for _, pr := range parts {
			// Full-column logical regions, per attacher.
			for i, pred := range wr.Preds {
				wr.regions[i] = append(wr.regions[i], Region{
					Col: col, Part: part, Socket: pr.Socket,
					Matches: sharedJitter(env, pr.To-pr.From, pred.Selectivity),
				})
			}
			// Physical wrap tasks: the missed prefix of THIS partition —
			// the pass streams its partitions in parallel, so an attacher
			// at fraction f missed ~f of each slice (and, for a replicated
			// column, the wrap bytes must come from every replica socket,
			// not just the low-row slices).
			to := pr.From + int(wr.Fraction*float64(pr.To-pr.From)+0.5)
			if to > pr.To {
				to = pr.To
			}
			if to <= pr.From {
				continue
			}
			for _, span := range SplitRows(pr.From, to, per) {
				span := span
				col := col
				socket := pr.Socket
				out = append(out, Task{Socket: socket, Run: func(w *sched.Worker, done func()) {
					wr.runWrap(env, w, col, span[0], span[1], done)
				}})
			}
		}
		// Delta fragments are small; the wrap re-streams them whole so
		// attachers observe watermark-visible delta rows too.
		if col.Delta != nil {
			snap := col.Delta.Snapshot()
			for sock := 0; sock < col.Delta.Sockets(); sock++ {
				rows := snap.Rows[sock]
				if rows == 0 {
					continue
				}
				for i, pred := range wr.Preds {
					wr.regions[i] = append(wr.regions[i], Region{
						Col: col, Part: part, Socket: sock,
						Matches: int(pred.Selectivity*float64(rows) + 0.5),
					})
				}
				sock, rows := sock, rows
				out = append(out, Task{Socket: sock, Run: func(w *sched.Worker, done func()) {
					wr.runWrapDelta(env, w, col, sock, rows, done)
				}})
			}
		}
	}
	return out
}

// Close attributes each attacher's logical full-column traffic (their
// physical bytes were charged partly to the main pass, partly to the wrap;
// the placer's read-heat signal still owes one logical scan per statement —
// spread, since no single copy served the whole ride) and fires the cohort
// hook.
func (wr *WrapScanOp) Close(p *Pipeline) {
	env := p.Env
	for _, part := range wr.Table.Parts {
		col := part.ColumnByName(wr.Column)
		if col == nil {
			continue
		}
		for range wr.Preds {
			env.addItem(col.Name, -1, Traffic{
				Bytes:   float64(col.IVRange.Bytes),
				IVBytes: float64(col.IVRange.Bytes),
			})
		}
	}
	if wr.OnClosed != nil {
		wr.OnClosed()
	}
}

// runWrap streams the wrapped IV rows [from,to) once; compute scales with
// the attacher count, output writes carry every attacher's full result
// bytes (their outputs are produced across ride + wrap but charged here).
func (wr *WrapScanOp) runWrap(env *Env, w *sched.Worker, col *colstore.Column, from, to int, onDone func()) {
	n := len(wr.Preds)
	offFrom := col.IVOffsetForRow(from)
	offTo := offFrom + col.IVBytesForRows(from, to)
	if offTo > col.IVRange.Bytes {
		offTo = col.IVRange.Bytes
	}
	var perSocket []int64
	if col.Replicated() {
		rep := BestReplica(env, col, w.Socket())
		perSocket = make([]int64, rep+1)
		perSocket[rep] = offTo - offFrom
	} else {
		perSocket = col.IVPSM.SocketBytes(col.IVRange, offFrom, offTo-offFrom)
	}
	src := w.Socket()
	penalty := 1.0
	if !w.Bound {
		penalty = env.Costs.UnboundStreamPenalty
	}
	outBytes := 0.0
	scanned := to - from
	if frac := wr.Fraction; frac > 0 {
		// The wrap's share of each attacher's full-column output bytes.
		for _, pred := range wr.Preds {
			full := memberOutBytes(env, pred.Selectivity, int(pred.Selectivity*float64(col.Rows)+0.5), col.Rows)
			outBytes += full * float64(scanned) / (frac * float64(col.Rows))
		}
	}
	outPerByte := outBytes / float64(offTo-offFrom+1)
	var flows []*sim.Flow
	for dst, bytes := range perSocket {
		if bytes == 0 {
			continue
		}
		dst := dst
		demands, lt := env.HW.StreamDemands(src, dst, w.CoreRes, env.Costs.SharedScanCyclesPerByte(n))
		if outPerByte > 0 {
			demands = append(demands, sim.Demand{Resource: env.HW.MC[src], Weight: outPerByte})
		}
		flows = append(flows, &sim.Flow{
			Remaining: float64(bytes),
			RateCap:   env.Machine.StreamRate(src, dst) * penalty,
			Demands:   demands,
			OnAdvance: func(p float64) {
				env.Counters.AddMemoryTraffic(src, dst, p, p*lt.Data, p*lt.Total)
				env.Counters.AddCompute(src, p*env.Costs.SharedScanInstrPerByte(n), 0)
			},
		})
	}
	RunFlows(env.Sim, flows, onDone)
}

// runWrapDelta re-streams one delta fragment for the attachers.
func (wr *WrapScanOp) runWrapDelta(env *Env, w *sched.Worker, col *colstore.Column, frag, rows int, onDone func()) {
	n := len(wr.Preds)
	bytes := float64(rows) * delta.RowBytes
	src := w.Socket()
	penalty := 1.0
	if !w.Bound {
		penalty = env.Costs.UnboundStreamPenalty
	}
	demands, lt := env.HW.StreamDemands(src, frag, w.CoreRes, env.Costs.SharedDeltaCyclesPerByte(n))
	env.Sim.StartFlow(&sim.Flow{
		Remaining: bytes,
		RateCap:   env.Machine.StreamRate(src, frag) * penalty,
		Demands:   demands,
		OnAdvance: func(p float64) {
			env.Counters.AddMemoryTraffic(src, frag, p, p*lt.Data, p*lt.Total)
			env.Counters.AddCompute(src, p*env.Costs.SharedScanInstrPerByte(n), 0)
		},
		OnDone: onDone,
	})
}

// StaticRegions feeds precomputed find-phase regions to a downstream output
// operator: follower statements of a cohort open instantly (the physical
// pass already ran) and materialize or aggregate their own logical result.
type StaticRegions struct {
	// Rs is the member's precomputed region set.
	Rs []Region
}

// Regions implements RegionSource.
func (s *StaticRegions) Regions() []Region { return s.Rs }

// Open implements Operator: no tasks — the find work was shared.
func (s *StaticRegions) Open(*Pipeline) []Task { return nil }

// Close implements Operator.
func (s *StaticRegions) Close(*Pipeline) {}
