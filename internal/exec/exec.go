// Package exec is the composable operator-pipeline layer that every
// simulated statement — scans, materialization, aggregation, hash joins —
// executes on. It factors out the machinery the paper routes through one
// NUMA-aware task scheduler: deriving per-partition task affinities from the
// Page Socket Mappings of the operator's inputs (Section 5.2), applying the
// OS/Target/Bound scheduling strategy (Section 6), fanning a phase out under
// the concurrency hint [28], and sequencing phases with barriers.
//
// An Operator produces the tasks of one pipeline phase; a Pipeline runs its
// operators in order, scheduling each operator's tasks through the shared
// scheduler and advancing past a barrier when the phase drains. Operators
// hand results downstream by direct reference (a MaterializeOp points at the
// ScanOp whose qualifying regions it consumes), so composed statements like
// scan -> join-build -> join-probe -> aggregate are ordinary pipelines.
package exec

import (
	"fmt"
	"math/rand"

	"numacs/internal/colstore"
	"numacs/internal/hw"
	"numacs/internal/metrics"
	"numacs/internal/psm"
	"numacs/internal/sched"
	"numacs/internal/sim"
	"numacs/internal/topology"
	"numacs/internal/trace"
)

// Strategy is a task scheduling strategy (Section 6's OS/Target/Bound).
type Strategy int

const (
	// OSched leaves scheduling to the operating system: no task affinities,
	// no binding; the OS balances (and migrates) threads.
	OSched Strategy = iota
	// Target assigns task affinities; tasks may still be stolen by other
	// sockets.
	Target
	// Bound assigns task affinities and sets the hard-affinity flag:
	// inter-socket stealing is prevented.
	Bound
)

// String returns the paper's name for the strategy (Section 6: OS, Target,
// Bound).
func (s Strategy) String() string {
	switch s {
	case OSched:
		return "OS"
	case Target:
		return "Target"
	case Bound:
		return "Bound"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// AffinityFor applies the scheduling strategy to a natural data socket: the
// single place task affinity and hardness are derived from a socket for every
// operator in the system. It encodes the Section 5.2 rule — a task's
// affinity is the socket its input pages live on (per the PSMs) — under the
// Section 6 strategies: OS drops the affinity, Target sets it soft, Bound
// sets it hard. For replicated data the socket itself is chosen load-aware
// at plan time (PartitionsWeighted, BestReplica) and then fed through here
// like any other data socket.
func AffinityFor(strategy Strategy, socket int) (affinity int, hard bool) {
	if socket < 0 {
		return -1, false
	}
	switch strategy {
	case OSched:
		return -1, false
	case Target:
		return socket, false
	default:
		return socket, true
	}
}

// Env bundles what operators need from the engine: the simulated machine and
// its substrates, the cost model, and the engine hooks — the concurrency
// hint of [28] and the per-item traffic attribution feeding the Section 7
// adaptive data placer.
type Env struct {
	Machine  *topology.Machine
	Sim      *sim.Engine
	HW       *hw.Hardware
	Sched    *sched.Scheduler
	Counters *metrics.Counters
	Costs    *Costs
	// Rand drives the analytic match-count jitter of the scan model.
	Rand *rand.Rand

	// ConcurrencyHint returns the task-granularity budget for one
	// partitionable operation [28]. Nil means "all hardware contexts".
	ConcurrencyHint func() int
	// AddItemTraffic attributes DRAM traffic to a named data item for the
	// adaptive data placer (Section 7); nil disables attribution. socket is
	// the serving socket (-1 when the access spreads over several sockets,
	// e.g. an interleaved dictionary); per-socket attribution is what lets
	// the placer tell which replica of a replicated column earns its keep.
	AddItemTraffic func(item string, socket int, t Traffic)
}

// Traffic is one attribution sample for a data item: total DRAM bytes plus
// the breakdown the adaptive placer's levers key on — IV streaming and
// dictionary/index probes identify read-hot items (replication candidates),
// delta-scan bytes feed the merge slowdown heuristic, and write bytes arm
// the write-guard (a written column is never newly replicated and write-hot
// replicas are reclaimed).
type Traffic struct {
	Bytes      float64
	IVBytes    float64
	DictBytes  float64
	DeltaBytes float64
	WriteBytes float64
}

// hint returns the concurrency budget.
func (env *Env) hint() int {
	if env.ConcurrencyHint != nil {
		return env.ConcurrencyHint()
	}
	return env.Machine.TotalThreads()
}

// MCLoad returns the instantaneous per-socket memory-controller demand of
// the simulated machine — the utilization signal replica-aware scheduling
// weighs sockets by (see PartitionsWeighted and BestReplica).
func (env *Env) MCLoad() []float64 {
	return env.HW.MCLoad()
}

// addItem attributes per-item traffic when the hook is wired.
func (env *Env) addItem(item string, socket int, t Traffic) {
	if env.AddItemTraffic != nil {
		env.AddItemTraffic(item, socket, t)
	}
}

// addSpreadTraffic attributes DRAM bytes across the destination sockets of a
// random-access flow (interleaved structures spread over all sockets).
func (env *Env) addSpreadTraffic(src int, dstWeights []float64, bytes, linkData, linkTotal float64) {
	first := true
	for dst, frac := range dstWeights {
		if frac == 0 {
			continue
		}
		ld, t := 0.0, 0.0
		if first {
			// Attribute link traffic once (it is already aggregated).
			ld, t = linkData, linkTotal
			first = false
		}
		env.Counters.AddMemoryTraffic(src, dst, bytes*frac, ld, t)
	}
}

// Task is one schedulable unit of operator work. Socket is the natural data
// socket the task's inputs live on (-1 for none); the pipeline derives the
// scheduling affinity from it via AffinityFor.
type Task struct {
	Socket int
	// Run starts the task on a worker and must eventually call done.
	Run func(w *sched.Worker, done func())
}

// Operator produces the tasks of one pipeline phase — one of the
// barrier-separated phases of Section 5.2's statement execution (find,
// output materialization, aggregation, join build/probe).
type Operator interface {
	// Open is called when the operator's phase begins — every upstream
	// operator has passed its barrier — and returns the tasks to schedule.
	// Returning no tasks completes the phase immediately.
	Open(p *Pipeline) []Task
	// Close is called at the phase barrier, after the last task finished and
	// before the next operator opens.
	Close(p *Pipeline)
}

// Pipeline sequences operators with barriers on a simulated machine. All
// tasks carry the statement's issue timestamp as their priority, so the
// scheduler completes a statement's tasks close together (Section 5.1).
type Pipeline struct {
	Env *Env
	// Strategy is the statement's scheduling strategy, applied to every
	// operator task via AffinityFor.
	Strategy Strategy
	// HomeSocket is where the issuing client's connection thread runs.
	HomeSocket int
	// IssuedAt is the statement timestamp: task priority and the base of the
	// completion latency.
	IssuedAt float64
	// Ops are the operators, executed in order with a barrier between them.
	Ops []Operator
	// OnDone fires when the last operator's barrier clears, with the
	// statement latency in seconds.
	OnDone func(latency float64)

	// MaxFanout caps the per-operator task fan-out of this statement — the
	// admission controller's elastic-granularity lever: under deep scheduler
	// queues, statements split coarser so the queues drain instead of
	// filling with more slices of the same work. Zero means no cap, leaving
	// the concurrency hint alone in charge (bit-identical to the planner
	// without admission control).
	MaxFanout int

	// Trace, when non-nil, is the statement's flight-recorder span: the
	// pipeline stamps each operator phase (open, first task pickup, barrier)
	// and the completion instant onto it. Nil when tracing is disabled —
	// every use is nil-checked, keeping the hot path cost at one comparison.
	Trace *trace.Statement

	pending int
}

// Hint returns the task-granularity budget of this statement's partitionable
// phases: the engine's concurrency hint [28], capped by the statement's
// MaxFanout when the admission controller set one.
func (p *Pipeline) Hint() int {
	h := p.Env.hint()
	if p.MaxFanout > 0 && p.MaxFanout < h {
		return p.MaxFanout
	}
	return h
}

// Start opens the first operator. The pipeline records the statement latency
// into Env.Counters when the last barrier clears.
func (p *Pipeline) Start() {
	p.runPhase(0)
}

func (p *Pipeline) runPhase(i int) {
	if i >= len(p.Ops) {
		p.finish()
		return
	}
	if p.Trace != nil {
		p.Trace.PhaseOpen(PhaseName(p.Ops[i]), p.Env.Sim.Now())
	}
	tasks := p.Ops[i].Open(p)
	if len(tasks) == 0 {
		if p.Trace != nil {
			p.Trace.PhaseClose(p.Env.Sim.Now())
		}
		p.Ops[i].Close(p)
		p.runPhase(i + 1)
		return
	}
	p.pending = len(tasks)
	for _, t := range tasks {
		t := t
		affinity, hard := AffinityFor(p.Strategy, t.Socket)
		st := &sched.Task{
			Priority: p.IssuedAt, Affinity: affinity, Hard: hard, CallerSocket: p.HomeSocket,
			Run: func(w *sched.Worker, done func()) {
				t.Run(w, func() { done(); p.taskDone(i) })
			},
		}
		if p.Trace != nil {
			st.OnStart = func(w *sched.Worker, stolen bool) {
				p.Trace.TaskStart(w.Socket(), stolen, p.Env.Sim.Now())
			}
		}
		p.Env.Sched.Submit(st)
	}
}

// taskDone is the phase barrier.
func (p *Pipeline) taskDone(i int) {
	p.pending--
	if p.pending == 0 {
		if p.Trace != nil {
			p.Trace.PhaseClose(p.Env.Sim.Now())
		}
		p.Ops[i].Close(p)
		p.runPhase(i + 1)
	}
}

func (p *Pipeline) finish() {
	lat := p.Env.Sim.Now() - p.IssuedAt
	if p.Trace != nil {
		p.Trace.MarkDone(p.Env.Sim.Now())
	}
	p.Env.Counters.AddLatency(lat)
	if p.OnDone != nil {
		p.OnDone(lat)
	}
}

// PhaseName maps an operator to its flight-recorder phase label.
func PhaseName(op Operator) string {
	switch op.(type) {
	case *ScanOp:
		return "scan"
	case *SharedScanOp:
		return "shared-scan"
	case *WrapScanOp:
		return "wrap-scan"
	case *MaterializeOp:
		return "materialize"
	case *AggregateOp:
		return "aggregate"
	case *joinBuild:
		return "build"
	case *joinProbe:
		return "probe"
	case *StaticRegions:
		return "regions"
	default:
		return "op"
	}
}

// Region is the per-partition output of a producing operator: how many
// qualifying matches a partition holds and the socket its data lives on. It
// is the input to output-materialization and aggregation scheduling
// (Section 5.2).
type Region struct {
	Col     *colstore.Column
	Part    *colstore.Part
	Socket  int
	Matches int
}

// RegionSource is an operator that yields qualifying matches downstream
// operators consume (ScanOp and JoinOp).
type RegionSource interface {
	Regions() []Region
}

// ---- shared partition fan-out and PSM-weight helpers ------------------------

// RowRange is one scheduling partition of a column's row space with the
// socket its bytes (majority) live on.
type RowRange struct {
	From, To, Socket int
}

// Partitions returns the scheduling partitions of a placed column: one per
// IVP partition with its majority socket, or one slice per replica for
// replicated columns (each slice scans its own replica locally, the row
// space split evenly). The find-phase fan-out uses PartitionsWeighted
// instead so replica slices track current MC utilization.
func Partitions(col *colstore.Column) []RowRange {
	return PartitionsWeighted(col, nil)
}

// PartitionsWeighted is Partitions with replica-aware load balancing: for a
// replicated column, each replica's share of the row space is proportional
// to its socket's current memory-controller headroom (mcLoad as returned by
// Env.MCLoad; nil or unreplicated falls back to an even split). A loaded
// socket still receives a non-zero slice — the goal is to spread scan
// traffic across all copies (Section 4.2's replication placement), weighted
// away from saturated memory controllers, not to abandon them.
func PartitionsWeighted(col *colstore.Column, mcLoad []float64) []RowRange {
	if col.Replicated() {
		reps := col.ReplicaSockets
		weights := make([]float64, len(reps))
		total := 0.0
		for i, sock := range reps {
			w := 1.0
			if mcLoad != nil && sock >= 0 && sock < len(mcLoad) {
				w = 1 / (1 + mcLoad[sock])
			}
			weights[i] = w
			total += w
		}
		out := make([]RowRange, len(reps))
		from := 0
		acc := 0.0
		for i, sock := range reps {
			acc += weights[i]
			to := int(float64(col.Rows)*acc/total + 0.5)
			if i == len(reps)-1 {
				to = col.Rows
			}
			out[i] = RowRange{From: from, To: to, Socket: sock}
			from = to
		}
		return out
	}
	n := col.NumPartitions()
	out := make([]RowRange, n)
	for i := range out {
		f, t := col.PartitionBounds(i)
		out[i] = RowRange{From: f, To: t, Socket: IVSocketForRows(col, f, t)}
	}
	return out
}

// BestReplica returns the replica socket a worker on src should access. A
// worker sitting on a replica socket always uses the local copy — spreading
// across copies happens at task fan-out (PartitionsWeighted), and a local
// access never crosses the interconnect. A worker elsewhere picks the copy
// minimizing access latency scaled by the serving memory controller's
// current load (1+demand), steering toward replicas with headroom. Returns
// -1 for an unreplicated column.
func BestReplica(env *Env, col *colstore.Column, src int) int {
	if len(col.ReplicaSockets) == 0 {
		return -1
	}
	load := env.MCLoad()
	best, bestCost := -1, 0.0
	for _, s := range col.ReplicaSockets {
		if s == src {
			return s
		}
		cost := env.Machine.Latency(src, s)
		if s >= 0 && s < len(load) {
			cost *= 1 + load[s]
		}
		if best < 0 || cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}

// leastLoadedSocket picks the socket with the smallest current MC demand
// (ties and nil load break toward the first listed socket).
func leastLoadedSocket(sockets []int, mcLoad []float64) int {
	if len(sockets) == 0 {
		return -1
	}
	best := sockets[0]
	for _, s := range sockets[1:] {
		if s >= 0 && s < len(mcLoad) && best >= 0 && best < len(mcLoad) && mcLoad[s] < mcLoad[best] {
			best = s
		}
	}
	return best
}

// singleSocket returns the one socket with non-zero weight, or -1 when the
// weights spread over several sockets (used for per-item traffic
// attribution: spread accesses are not attributable to one copy).
func singleSocket(weights []float64) int {
	found := -1
	for s, w := range weights {
		if w == 0 {
			continue
		}
		if found >= 0 {
			return -1
		}
		found = s
	}
	return found
}

// TasksPerPartition divides a concurrency budget across partitions, rounding
// up so every partition gets at least one task.
func TasksPerPartition(hint, partitions int) int {
	if partitions < 1 {
		partitions = 1
	}
	n := (hint + partitions - 1) / partitions
	if n < 1 {
		n = 1
	}
	return n
}

// SplitRows slices the row range [from,to) into at most n equal spans (fewer
// when the range has fewer rows than n).
func SplitRows(from, to, n int) [][2]int {
	rows := to - from
	if n > rows {
		n = rows
	}
	if n < 1 {
		return nil
	}
	out := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		f := from + rows*i/n
		t := from + rows*(i+1)/n
		out = append(out, [2]int{f, t})
	}
	return out
}

// IVSocketForRows returns the socket backing the majority of the IV bytes of
// rows [from,to).
func IVSocketForRows(col *colstore.Column, from, to int) int {
	offFrom := col.IVOffsetForRow(from)
	offTo := offFrom + col.IVBytesForRows(from, to)
	if offTo > col.IVRange.Bytes {
		offTo = col.IVRange.Bytes
	}
	bytes := col.IVPSM.SocketBytes(col.IVRange, offFrom, offTo-offFrom)
	best, bestB := -1, int64(0)
	for s, b := range bytes {
		if b > bestB {
			best, bestB = s, b
		}
	}
	return best
}

// IndexSocket returns the IX's socket, or -1 when it is interleaved (no
// affinity is assigned then, per Section 5.2).
func IndexSocket(col *colstore.Column) int {
	if col.IXPSM == nil {
		return -1
	}
	sum := col.IXPSM.Summary()
	nonzero, sock := 0, -1
	for s, pages := range sum {
		if pages > 0 {
			nonzero++
			sock = s
		}
	}
	if nonzero == 1 {
		return sock
	}
	return -1 // interleaved
}

// ComponentWeights converts a component PSM into per-socket access fractions.
func ComponentWeights(sockets int, p *psm.PSM) []float64 {
	out := make([]float64, sockets)
	if p == nil {
		out[0] = 1
		return out
	}
	sum := p.Summary()
	total := 0.0
	for s, pages := range sum {
		if s < sockets {
			out[s] = float64(pages)
			total += float64(pages)
		}
	}
	if total == 0 {
		out[0] = 1
		return out
	}
	for s := range out {
		out[s] /= total
	}
	return out
}

// RunFlows executes flows sequentially on the simulator, then calls onDone.
func RunFlows(s *sim.Engine, flows []*sim.Flow, onDone func()) {
	if len(flows) == 0 {
		onDone()
		return
	}
	for i := 0; i < len(flows)-1; i++ {
		next := flows[i+1]
		flows[i].OnDone = func() { s.StartFlow(next) }
	}
	flows[len(flows)-1].OnDone = onDone
	s.StartFlow(flows[0])
}
