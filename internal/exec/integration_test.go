package exec_test

// Integration tests for the operator-pipeline layer: composing the same
// operators the statement entry points build must be counter-identical to
// those entry points on a fixed seed, and the new scan -> join -> aggregate
// composition must run end-to-end with per-socket traffic accounted.

import (
	"math"
	"testing"

	"numacs/internal/colstore"
	"numacs/internal/core"
	"numacs/internal/exec"
	"numacs/internal/join"
	"numacs/internal/metrics"
	"numacs/internal/topology"
	"numacs/internal/workload"
)

func assertCountersEqual(t *testing.T, a, b *metrics.Counters) {
	t.Helper()
	if a.QueriesDone != b.QueriesDone {
		t.Errorf("QueriesDone %d != %d", a.QueriesDone, b.QueriesDone)
	}
	if a.TasksExecuted != b.TasksExecuted {
		t.Errorf("TasksExecuted %d != %d", a.TasksExecuted, b.TasksExecuted)
	}
	if a.TasksStolen != b.TasksStolen {
		t.Errorf("TasksStolen %d != %d", a.TasksStolen, b.TasksStolen)
	}
	feq := func(name string, x, y float64) {
		t.Helper()
		if math.Abs(x-y) > 1e-6*(math.Abs(x)+1) {
			t.Errorf("%s %.6f != %.6f", name, x, y)
		}
	}
	for s := range a.MCBytes {
		feq("MCBytes", a.MCBytes[s], b.MCBytes[s])
		feq("Instructions", a.Instructions[s], b.Instructions[s])
	}
	feq("LinkDataBytes", a.LinkDataBytes, b.LinkDataBytes)
	feq("LinkTotalBytes", a.LinkTotalBytes, b.LinkTotalBytes)
	feq("LLCLocal", a.LLCLocal, b.LLCLocal)
	feq("LLCRemote", a.LLCRemote, b.LLCRemote)
	feq("WorkerBusySeconds", a.WorkerBusySeconds, b.WorkerBusySeconds)
}

func placedTable(e *core.Engine) *colstore.Table {
	tb := workload.Generate(workload.DatasetConfig{
		Rows: 60_000, Columns: 8, BitcaseMin: 12, BitcaseMax: 19, Seed: 1, Synthetic: true,
	})
	e.Placer.PlaceRR(tb)
	e.Placer.PlaceTableIVP(tb, 4)
	return tb
}

// TestPipelineScanMatchesQueryPath: composing ScanOp + MaterializeOp by hand
// through SubmitPipeline must be numerically identical to the core.Query
// scan path (which the refactor rebased on those same operators).
func TestPipelineScanMatchesQueryPath(t *testing.T) {
	run := func(viaQuery bool) *metrics.Counters {
		e := core.New(topology.FourSocketIvyBridge(), 1)
		tb := placedTable(e)
		for i := 0; i < 24; i++ {
			if viaQuery {
				e.Submit(&core.Query{
					Table: tb, Column: "COL002", Selectivity: 1e-3,
					Parallel: true, Strategy: core.Bound, HomeSocket: i % 4,
				})
				continue
			}
			scan := &exec.ScanOp{Table: tb, Column: "COL002", Selectivity: 1e-3, Parallel: true}
			mat := &exec.MaterializeOp{Scan: scan, Parallel: true}
			e.SubmitPipeline(core.Bound, i%4, nil, scan, mat)
		}
		e.Sim.Run(0.05)
		return e.Counters
	}
	assertCountersEqual(t, run(true), run(false))
}

// TestPipelineJoinMatchesExecutePath: a raw two-operator pipeline built from
// exec.JoinOp must be numerically identical to join.Execute.
func TestPipelineJoinMatchesExecutePath(t *testing.T) {
	run := func(viaExecute bool) *metrics.Counters {
		e := core.NewWithStep(topology.FourSocketIvyBridge(), 1, 10e-6)
		build := colstore.NewSynthetic("DIM", 20_000, 1<<12, false)
		probe := colstore.NewSynthetic("FACT", 80_000, 1<<12, false)
		e.Placer.PlaceIVP(build, []int{0, 1, 2, 3})
		e.Placer.PlaceIVP(probe, []int{0, 1, 2, 3})
		for i := 0; i < 8; i++ {
			if viaExecute {
				join.Execute(e, join.Spec{
					Build: build, Probe: probe, Strategy: core.Bound,
					HTSockets: []int{0, 1, 2, 3}, HitsPerProbeRow: 1, HomeSocket: i % 4,
				})
				continue
			}
			j := &exec.JoinOp{
				Build: build, Probe: probe, HTSockets: []int{0, 1, 2, 3},
				HitsPerProbeRow: 1, Alloc: e.Placer.Alloc,
			}
			p := &exec.Pipeline{
				Env: e.ExecEnv(), Strategy: core.Bound, HomeSocket: i % 4,
				IssuedAt: e.Sim.Now(), Ops: []exec.Operator{j.BuildOp(), j.ProbeOp()},
			}
			p.Start()
		}
		e.Sim.Run(0.05)
		return e.Counters
	}
	assertCountersEqual(t, run(true), run(false))
}

// TestStarJoinPipelineEndToEnd: the composed scan -> join -> aggregate
// statement — impossible on the pre-refactor paths — completes on the
// simulated 4-socket machine with traffic accounted on every socket, and is
// deterministic on a fixed seed.
func TestStarJoinPipelineEndToEnd(t *testing.T) {
	run := func(st core.Strategy) (*metrics.Counters, int) {
		e := core.NewWithStep(topology.FourSocketIvyBridge(), 1, 10e-6)
		dim := colstore.NewTable("DIM", []*colstore.Column{
			colstore.NewSynthetic("D_DATE", 20_000, 1<<12, false),
			colstore.NewSynthetic("D_ID", 20_000, 1<<14, false),
		})
		fact := colstore.NewTable("FACT", []*colstore.Column{
			colstore.NewSynthetic("F_FK", 80_000, 1<<14, false),
		})
		for _, c := range dim.Parts[0].Columns {
			e.Placer.PlaceIVP(c, []int{0, 1, 2, 3})
		}
		e.Placer.PlaceIVP(fact.Parts[0].Columns[0], []int{0, 1, 2, 3})

		completed := 0
		for i := 0; i < 8; i++ {
			i := i
			var issue func()
			issue = func() {
				join.ExecuteStar(e, join.StarSpec{
					Dim: dim, DimPredicate: "D_DATE", DimKey: "D_ID",
					Fact: fact, FactFK: "F_FK",
					Selectivity: 0.05, HitsPerProbeRow: 1,
					AggBytesPerRow: 12, AggCyclesPerRow: 24,
					HTSockets: []int{0, 1, 2, 3}, Strategy: st,
					HomeSocket: i % 4,
					OnDone:     func(float64) { completed++; issue() },
				})
			}
			issue()
		}
		e.Sim.Run(0.05)
		return e.Counters, completed
	}

	c, completed := run(core.Bound)
	if completed == 0 {
		t.Fatal("no star-join statements completed")
	}
	if c.QueriesDone == 0 {
		t.Fatal("no latencies recorded")
	}
	for s, b := range c.MCBytes {
		if b <= 0 {
			t.Errorf("socket %d served no memory traffic", s)
		}
	}
	// Every phase streams its inputs from their own sockets under Bound, so
	// each socket must see local traffic (the interleaved hash-table probes
	// are legitimately remote).
	for s, b := range c.LocalBytes {
		if b <= 0 {
			t.Errorf("socket %d read no local bytes", s)
		}
	}

	// NUMA-awareness must pay for the composed statement like it does for
	// plain scans: Bound well ahead of the OS strategy.
	_, osCompleted := run(core.OSched)
	if float64(completed) < 2*float64(osCompleted) {
		t.Errorf("Bound (%d) should be >=2x OS (%d) on the composed statement", completed, osCompleted)
	}

	// Determinism on the fixed seed.
	c2, completed2 := run(core.Bound)
	if completed2 != completed {
		t.Fatalf("completions differ across runs: %d vs %d", completed, completed2)
	}
	assertCountersEqual(t, c, c2)

	// The statement participates in the concurrency hint (unlike the bare
	// join path): with 8 in flight the hint must shrink.
	e := core.New(topology.FourSocketIvyBridge(), 1)
	if e.ConcurrencyHint() != e.Machine.TotalThreads() {
		t.Fatalf("idle hint should be all threads")
	}
}
