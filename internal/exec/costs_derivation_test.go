package exec

import (
	"testing"
	"time"

	"numacs/internal/colstore"
)

// TestSharedPredCostDerivation pins SharedPredCyclesPerByte to the kernel it
// models instead of to a hand-set guess. The constant is the marginal cost of
// one ADDITIONAL predicate in a shared pass, so it falls out of the measured
// shared/private throughput ratio r of an n-member cohort:
//
//	shared cycles/byte = Scan * n * r = Scan + (n-1) * SharedPred
//	=> SharedPred = Scan * (n*r - 1) / (n - 1)
//
// The cheap half of the test always runs and asserts the shipped constant
// sits in the physically meaningful band: above ~0.05 (a marginal compare is
// not free) and below 0.3 (well under the 0.5 of a full private scan kernel —
// otherwise sharing could never pay). The measurement half re-derives the
// constant from the real kernel at the benchmark bitcase and checks the
// shipped value against the measured band; it is timing-sensitive, so it is
// skipped in -short runs (the -race CI job) like the other kernel-speedup
// tests.
func TestSharedPredCostDerivation(t *testing.T) {
	c := DefaultCosts()
	if c.SharedPredCyclesPerByte < 0.05 || c.SharedPredCyclesPerByte > 0.3 {
		t.Errorf("SharedPredCyclesPerByte %.3f outside the derivation band [0.05, 0.3]",
			c.SharedPredCyclesPerByte)
	}
	if got, want := c.SharedPredInstrPerByte/c.SharedPredCyclesPerByte,
		c.ScanInstrPerByte/c.ScanCyclesPerByte; got != want {
		t.Errorf("marginal-predicate instr/cycle ratio %.2f != scan kernel's %.2f", got, want)
	}

	if testing.Short() {
		t.Skip("timing-sensitive: measurement half skipped in -short runs")
	}

	const (
		nPreds = 8
		rows   = 1 << 20
		bc     = 12
	)
	max := uint32(1)<<bc - 1
	v := colstore.NewPackedVector(bc, rows)
	s := uint32(12345)
	for i := 0; i < rows; i++ {
		s = s*1664525 + 1013904223
		v.Set(i, s&max)
	}
	// Near-zero-selectivity windows (0.1% each): the benchmark's default
	// 10% windows spend much of the pass appending qualifying positions,
	// which the simulator charges separately per match (OutBytesPerMatch,
	// the materialization phase) — the constant being derived is the
	// decode-once/compare-many marginal only.
	preds := make([]colstore.SharedRange, nPreds)
	for i := range preds {
		lo := max / nPreds * uint32(i)
		preds[i] = colstore.SharedRange{Lo: lo, Hi: lo + max/1000}
	}
	outs := make([][]uint32, nPreds)

	// Interleave the two sides and keep each one's fastest pass, the same
	// noise discipline as the colstore kernel-speedup tests.
	var private, shared float64
	for rep := 0; rep < 6; rep++ {
		t0 := time.Now()
		for m, pr := range preds {
			outs[m] = v.ScanRange(pr.Lo, pr.Hi, 0, rows, outs[m][:0])
		}
		dp := time.Since(t0).Seconds()
		t0 = time.Now()
		for m := range outs {
			outs[m] = outs[m][:0]
		}
		outs = v.ScanShared(preds, 0, rows, outs)
		ds := time.Since(t0).Seconds()
		if rep == 0 || dp < private {
			private = dp
		}
		if rep == 0 || ds < shared {
			shared = ds
		}
	}

	r := shared / private
	derived := c.ScanCyclesPerByte * (nPreds*r - 1) / (nPreds - 1)
	t.Logf("bitcase %d, n=%d: shared/private ratio %.3f => derived marginal cost %.3f cycles/byte (shipped %.3f)",
		bc, nPreds, r, derived, c.SharedPredCyclesPerByte)
	if derived < 0.05 || derived > 0.3 {
		t.Errorf("measured derivation %.3f outside [0.05, 0.3] — kernel ratio drifted; re-derive the constant", derived)
	}
	if c.SharedPredCyclesPerByte < 0.5*derived || c.SharedPredCyclesPerByte > 1.5*derived {
		t.Errorf("shipped SharedPredCyclesPerByte %.3f is not within 50%% of the measured derivation %.3f",
			c.SharedPredCyclesPerByte, derived)
	}
}
