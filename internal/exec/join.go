package exec

import (
	"numacs/internal/colstore"
	"numacs/internal/memsim"
	"numacs/internal/sched"
	"numacs/internal/sim"
)

// Join cost defaults.
const (
	DefaultBuildCyclesPerRow = 25
	DefaultProbeCyclesPerRow = 18
	// DefaultHTMissRate: hash tables are bigger and colder than dictionaries.
	DefaultHTMissRate = 0.5
	// joinStreamCyclesPerByte is the compute cost of streaming the join
	// columns' IV bytes.
	joinStreamCyclesPerByte = 0.3
	// htBytesPerSlot is the open-addressing slot footprint (key + row + used).
	htBytesPerSlot = 16
)

// JoinOp is the Section 8 hash-join operator: a parallel build phase whose
// tasks are bound to the build data's sockets and write the operator-internal
// hash table, a barrier, then a parallel probe phase whose tasks are bound to
// the probe data's sockets and randomly access the hash table wherever it was
// placed. It contributes two pipeline phases (BuildOp and ProbeOp) and is a
// RegionSource: its probe-side match regions feed a downstream AggregateOp.
type JoinOp struct {
	Build *colstore.Column
	Probe *colstore.Column
	// HTSockets lists the sockets holding hash-table partitions: one socket
	// for a centralized table, several for a partitioned table co-located
	// with the build partitions. When empty, the table is placed on the
	// build column's majority socket.
	HTSockets []int
	// HitsPerProbeRow is the analytic join cardinality per probe row against
	// the unfiltered build side.
	HitsPerProbeRow float64
	// Alloc allocates the simulated hash-table pages.
	Alloc *memsim.Allocator

	// BuildSource optionally filters the build side: only the source's
	// qualifying matches are inserted into the hash table, shrinking both the
	// build work and the effective probe cardinality (the scan->join->
	// aggregate composition). Nil builds from every row.
	BuildSource RegionSource

	// Cost knobs (zero values take the defaults above).
	BuildCyclesPerRow float64
	ProbeCyclesPerRow float64
	HTMissRate        float64

	htRange   memsim.Range
	buildFrac float64
	regions   []Region
}

// Regions implements RegionSource: the per-partition probe-side match counts,
// available once the probe phase has opened.
func (j *JoinOp) Regions() []Region { return j.regions }

// BuildOp returns the build-phase operator.
func (j *JoinOp) BuildOp() Operator { return (*joinBuild)(j) }

// ProbeOp returns the probe-phase operator; it must be placed after BuildOp
// in the pipeline.
func (j *JoinOp) ProbeOp() Operator { return (*joinProbe)(j) }

func (j *JoinOp) missRate() float64 {
	if j.HTMissRate == 0 {
		return DefaultHTMissRate
	}
	return j.HTMissRate
}

// htWeights returns the access distribution over the hash-table sockets.
func (j *JoinOp) htWeights(env *Env) []float64 {
	w := make([]float64, env.Machine.Sockets)
	for _, s := range j.HTSockets {
		w[s] += 1 / float64(len(j.HTSockets))
	}
	return w
}

// fanOut plans one join phase over the column's scheduling partitions: each
// task streams its share of the column and performs hash-table accesses
// (inserts during build, probes afterwards).
func (j *JoinOp) fanOut(p *Pipeline, col *colstore.Column, cyclesPerRow, accessesPerRow, byteFrac float64) []Task {
	env := p.Env
	parts := Partitions(col)
	per := TasksPerPartition(p.Hint(), len(parts))
	weights := j.htWeights(env)
	var out []Task
	for _, pr := range parts {
		for _, span := range SplitRows(pr.From, pr.To, per) {
			from, to := span[0], span[1]
			out = append(out, Task{Socket: pr.Socket, Run: func(w *sched.Worker, done func()) {
				j.runTask(env, w, col, from, to, cyclesPerRow, accessesPerRow, byteFrac, weights, done)
			}})
		}
	}
	return out
}

// runTask streams the rows' IV bytes, then performs the hash-table random
// accesses.
func (j *JoinOp) runTask(env *Env, w *sched.Worker, col *colstore.Column, from, to int,
	cyclesPerRow, accessesPerRow, byteFrac float64, htWeights []float64, onDone func()) {

	src := w.Socket()
	offFrom := col.IVOffsetForRow(from)
	bytes := col.IVBytesForRows(from, to)
	if offFrom+bytes > col.IVRange.Bytes {
		bytes = col.IVRange.Bytes - offFrom
	}
	var perSocket []int64
	if col.Replicated() {
		// Stream from the replica with the most MC headroom, matching the
		// per-replica task affinities Partitions derives for replicated
		// columns.
		rep := BestReplica(env, col, src)
		perSocket = make([]int64, rep+1)
		perSocket[rep] = bytes
	} else {
		perSocket = col.IVPSM.SocketBytes(col.IVRange, offFrom, bytes)
	}
	penalty := 1.0
	if !w.Bound {
		penalty = env.Costs.UnboundStreamPenalty
	}

	// Phase A: stream the column slice (scaled down when a build filter means
	// only a fraction of the rows is gathered).
	var flows []*sim.Flow
	for dst, b := range perSocket {
		fb := float64(b) * byteFrac
		if fb == 0 {
			continue
		}
		dst := dst
		demands, lt := env.HW.StreamDemands(src, dst, w.CoreRes, joinStreamCyclesPerByte)
		flows = append(flows, &sim.Flow{
			Remaining: fb,
			RateCap:   env.Machine.StreamRate(src, dst) * penalty,
			Demands:   demands,
			OnAdvance: func(p float64) {
				env.Counters.AddMemoryTraffic(src, dst, p, p*lt.Data, p*lt.Total)
			},
		})
	}
	// Phase B: hash-table accesses.
	accesses := float64(to-from) * accessesPerRow
	demands, rateCap, _ := env.HW.RandomDemands(src, htWeights, w.CoreRes,
		cyclesPerRow, 0, j.missRate())
	if !w.Bound {
		rateCap *= env.Costs.UnboundStreamPenalty
	}
	miss := j.missRate()
	flows = append(flows, &sim.Flow{
		Remaining: accesses,
		RateCap:   rateCap,
		Demands:   demands,
		OnAdvance: func(p float64) {
			b := p * 64 * miss
			for dst, frac := range htWeights {
				if frac > 0 {
					env.Counters.AddMemoryTraffic(src, dst, b*frac, 0, 0)
				}
			}
			env.Counters.AddCompute(src, p*cyclesPerRow, 0)
		},
	})
	RunFlows(env.Sim, flows, onDone)
}

// joinBuild is the build phase of a JoinOp.
type joinBuild JoinOp

func (b *joinBuild) Open(p *Pipeline) []Task {
	j := (*JoinOp)(b)
	if len(j.HTSockets) == 0 {
		j.HTSockets = []int{j.Build.IVPSM.MajoritySocket()}
	}
	j.buildFrac = 1
	if j.BuildSource != nil {
		matches := 0
		for _, r := range j.BuildSource.Regions() {
			matches += r.Matches
		}
		j.buildFrac = float64(matches) / float64(j.Build.Rows)
		if j.buildFrac > 1 {
			j.buildFrac = 1
		}
	}
	// Allocate the hash table across its sockets (open addressing at 2x the
	// inserted rows).
	htBytes := int64(float64(j.Build.Rows)*j.buildFrac) * 2 * htBytesPerSlot
	if htBytes < memsim.PageSize {
		htBytes = memsim.PageSize
	}
	if len(j.HTSockets) == 1 {
		j.htRange = j.Alloc.Alloc(htBytes, memsim.OnSocket(j.HTSockets[0]))
	} else {
		j.htRange = j.Alloc.Alloc(htBytes, memsim.Interleaved{Sockets: j.HTSockets})
	}
	cycles := j.BuildCyclesPerRow
	if cycles == 0 {
		cycles = DefaultBuildCyclesPerRow
	}
	return j.fanOut(p, j.Build, cycles, j.buildFrac, j.buildFrac)
}

func (b *joinBuild) Close(*Pipeline) {}

// joinProbe is the probe phase of a JoinOp.
type joinProbe JoinOp

func (pr *joinProbe) Open(p *Pipeline) []Task {
	j := (*JoinOp)(pr)
	effHits := j.HitsPerProbeRow * j.buildFrac
	accesses := effHits
	if accesses < 1 {
		accesses = 1
	}
	// Probe-side match regions for downstream aggregation.
	j.regions = j.regions[:0]
	for _, part := range Partitions(j.Probe) {
		j.regions = append(j.regions, Region{
			Col:     j.Probe,
			Socket:  part.Socket,
			Matches: int(float64(part.To-part.From)*effHits + 0.5),
		})
	}
	cycles := j.ProbeCyclesPerRow
	if cycles == 0 {
		cycles = DefaultProbeCyclesPerRow
	}
	return j.fanOut(p, j.Probe, cycles, accesses, 1)
}

// Close releases the operator-internal hash table at the probe barrier.
func (pr *joinProbe) Close(*Pipeline) {
	j := (*JoinOp)(pr)
	j.Alloc.Free(j.htRange)
}
