package exec

import (
	"fmt"
	"math"

	"numacs/internal/colstore"
	"numacs/internal/delta"
	"numacs/internal/sched"
	"numacs/internal/sim"
	"numacs/internal/topology"
)

// ScanOp is the find phase of Section 5.2: parallel scan tasks over the
// indexvector (rounded to partition multiples), or a single index lookup per
// part when the optimizer's selectivity threshold admits one. Its Regions
// carry the per-partition match counts that materialization, aggregation, or
// a join build consume downstream.
type ScanOp struct {
	Table       *colstore.Table
	Column      string
	Selectivity float64

	// ExtraPredicateColumns adds conjunctive range predicates on further
	// columns: the find phase is repeated, in parallel, for each predicate
	// column, and the qualifying set is their intersection (the paper
	// discusses this generalization in Section 6). Each extra predicate uses
	// the same Selectivity.
	ExtraPredicateColumns []string
	// UseIndex permits index lookups when the column has an index and the
	// optimizer's selectivity threshold admits them.
	UseIndex bool
	// Parallel enables intra-operator parallelism.
	Parallel bool

	regions []Region
}

// Regions implements RegionSource: the per-partition match counts, with the
// conjunctive extra-predicate intersection already applied.
func (s *ScanOp) Regions() []Region { return s.regions }

// jitterMatches derives a deterministic approximate match count for a row
// range: the analytic expectation of the uniform data generator with a small
// per-task jitter, standing in for actually running the scan kernel (the
// kernels themselves are implemented and tested in package colstore; the
// harness uses the analytic count so experiments over hundreds of thousands
// of queries stay tractable).
func (s *ScanOp) jitterMatches(env *Env, rows int) int {
	exp := s.Selectivity * float64(rows)
	f := 0.95 + 0.1*env.Rand.Float64()
	m := int(exp*f + 0.5)
	if m > rows {
		m = rows
	}
	return m
}

// scanTask is one planned find-phase task.
type scanTask struct {
	col     *colstore.Column
	rowFrom int
	rowTo   int
	region  int // -1 for extra predicate columns
	// socket is the data socket resolved at plan time (replica-aware), kept
	// on the task so replica slices and extra-predicate tasks retain their
	// placement even when no region is tracked.
	socket    int
	indexTask bool
	// allCols, when set, makes this a single unparallelized task that scans
	// every physical part sequentially — with parallelism disabled, one task
	// must access the remote sockets of the other parts itself (the Figure 10
	// effect).
	allCols []*colstore.Column
	// deltaFrag, when set, makes this a delta-fragment scan: deltaRows
	// watermark-visible uncompressed rows streamed from the fragment's own
	// socket, unioned with the main scan at the find barrier. deltaMatches
	// is the analytic match count (no jitter: the read-only RNG stream must
	// stay untouched when no writes were ever issued).
	deltaFrag    *delta.Fragment
	deltaRows    int
	deltaMatches int
}

// IndexEligible is the single source of truth for the index-vs-scan decision:
// the statement permits index use, the selectivity clears the cost model's
// threshold, and the column actually carries an index. ScanOp.Open applies it
// at execution time and the planner mirrors it as a physical-plan annotation,
// so EXPLAIN output and execution can never disagree.
func IndexEligible(costs *Costs, table *colstore.Table, column string, selectivity float64, useIndex bool) bool {
	if !useIndex || selectivity > costs.IndexSelectivityThreshold {
		return false
	}
	c := table.Parts[0].ColumnByName(column)
	return c != nil && c.Idx != nil
}

// Open plans and emits the find tasks. Only the primary predicate column
// tracks regions (the materialization input); additional predicate columns
// run the same find phase in parallel and merely intersect the result
// (Section 6's multi-predicate discussion).
func (s *ScanOp) Open(p *Pipeline) []Task {
	env := p.Env
	s.regions = s.regions[:0] // support operator reuse across pipelines
	// One MC-load snapshot per plan: every replica-socket decision of this
	// statement sees the same instant (recomputing per column would walk all
	// active flows repeatedly for no added signal).
	mcLoad := env.MCLoad()
	useIndex := IndexEligible(env.Costs, s.Table, s.Column, s.Selectivity, s.UseIndex)

	var tasks []scanTask
	plan := func(colName string, trackRegions bool) {
		if !s.Parallel && !useIndex && s.Table.NumParts() > 1 {
			cols := make([]*colstore.Column, 0, s.Table.NumParts())
			rows := 0
			for _, part := range s.Table.Parts {
				c := part.ColumnByName(colName)
				if c == nil {
					panic(fmt.Sprintf("exec: no column %s", colName))
				}
				cols = append(cols, c)
				rows += c.Rows
			}
			socket := cols[0].IVPSM.MajoritySocket()
			region := -1
			if trackRegions {
				region = len(s.regions)
				s.regions = append(s.regions, Region{
					Col: cols[0], Part: s.Table.Parts[0], Socket: socket,
				})
			}
			tasks = append(tasks, scanTask{col: cols[0], rowFrom: 0, rowTo: rows, region: region, socket: socket, allCols: cols})
			return
		}
		for _, part := range s.Table.Parts {
			col := part.ColumnByName(colName)
			if col == nil {
				panic(fmt.Sprintf("exec: no column %s", colName))
			}
			if useIndex {
				// Index lookups on a replicated column chase the replica with
				// the most MC headroom; otherwise the IX's own socket.
				socket := IndexSocket(col)
				if col.Replicated() {
					socket = leastLoadedSocket(col.ReplicaSockets, mcLoad)
				}
				region := -1
				if trackRegions {
					region = len(s.regions)
					s.regions = append(s.regions, Region{Col: col, Part: part, Socket: socket})
				}
				tasks = append(tasks, scanTask{col: col, rowFrom: 0, rowTo: col.Rows, region: region, socket: socket, indexTask: true})
				continue
			}
			if !s.Parallel {
				// Single task spanning everything; region socket is the IV
				// majority socket — except for a replicated column, where any
				// replica serves the whole scan locally: the task goes to the
				// replica socket with the most MC headroom (the Figure 10
				// single-task remote-access penalty is exactly what
				// replication removes).
				socket := col.IVPSM.MajoritySocket()
				if col.Replicated() {
					socket = leastLoadedSocket(col.ReplicaSockets, mcLoad)
				}
				region := -1
				if trackRegions {
					region = len(s.regions)
					s.regions = append(s.regions, Region{Col: col, Part: part, Socket: socket})
				}
				tasks = append(tasks, scanTask{col: col, rowFrom: 0, rowTo: col.Rows, region: region, socket: socket})
				continue
			}
			// Tasks per partition: the concurrency hint rounded up to a
			// multiple of the scheduling partitions (IVP partitions, or
			// replicas for a replicated column) so each task's range lies
			// wholly in one partition. Replica slices are weighted by current
			// MC utilization so loaded sockets receive less of the fan-out.
			hint := p.Hint()
			if s.Table.NumParts() > 1 {
				hint = hint / s.Table.NumParts()
				if hint < 1 {
					hint = 1
				}
			}
			parts := PartitionsWeighted(col, mcLoad)
			per := TasksPerPartition(hint, len(parts))
			for _, pr := range parts {
				region := -1
				if trackRegions {
					region = len(s.regions)
					s.regions = append(s.regions, Region{Col: col, Part: part, Socket: pr.Socket})
				}
				for _, span := range SplitRows(pr.From, pr.To, per) {
					tasks = append(tasks, scanTask{col: col, rowFrom: span[0], rowTo: span[1], region: region, socket: pr.Socket})
				}
			}
		}
	}
	// planDelta unions the column's watermark-visible delta rows into the
	// find phase: one task per non-empty per-socket fragment, streaming
	// uncompressed rows from the fragment's own socket. A column that was
	// never written has a nil Delta and plans nothing — the read-only path
	// is bit-identical to a delta-free build.
	planDelta := func(colName string, trackRegions bool) {
		for _, part := range s.Table.Parts {
			col := part.ColumnByName(colName)
			if col == nil || col.Delta == nil {
				continue
			}
			snap := col.Delta.Snapshot()
			for sock := 0; sock < col.Delta.Sockets(); sock++ {
				rows := snap.Rows[sock]
				if rows == 0 {
					continue
				}
				frag := col.Delta.Fragment(sock)
				m := int(s.Selectivity*float64(rows) + 0.5)
				region := -1
				if trackRegions {
					region = len(s.regions)
					s.regions = append(s.regions, Region{Col: col, Part: part, Socket: sock})
				}
				tasks = append(tasks, scanTask{
					col: col, region: region, socket: sock,
					deltaFrag: frag, deltaRows: rows, deltaMatches: m,
				})
			}
		}
	}

	plan(s.Column, true)
	planDelta(s.Column, true)
	for _, extra := range s.ExtraPredicateColumns {
		plan(extra, false)
		planDelta(extra, false)
	}

	out := make([]Task, 0, len(tasks))
	for _, st := range tasks {
		st := st
		var m int
		if st.deltaFrag != nil {
			m = st.deltaMatches
		} else {
			m = s.jitterMatches(env, st.rowTo-st.rowFrom)
		}
		if st.region >= 0 {
			s.regions[st.region].Matches += m
		}
		// The data socket was resolved at plan time (replica-aware); tracked
		// regions carry the same socket for the downstream output phase.
		socket := st.socket
		run := func(w *sched.Worker, done func()) {
			s.runScan(env, w, st.col, st.rowFrom, st.rowTo, m, done)
		}
		if st.allCols != nil {
			run = func(w *sched.Worker, done func()) {
				s.runScanAll(env, w, st.allCols, m, done)
			}
		}
		if st.deltaFrag != nil {
			run = func(w *sched.Worker, done func()) {
				s.runDeltaScan(env, w, st.col, st.deltaFrag, st.deltaRows, m, done)
			}
		}
		if st.indexTask {
			run = func(w *sched.Worker, done func()) {
				s.runIndexLookup(env, w, st.col, m, done)
			}
		}
		out = append(out, Task{Socket: socket, Run: run})
	}
	return out
}

// Close applies the conjunctive extra-predicate intersection at the find
// barrier: every region's matches scale by selectivity once per extra
// predicate column.
func (s *ScanOp) Close(*Pipeline) {
	if k := len(s.ExtraPredicateColumns); k > 0 {
		factor := math.Pow(s.Selectivity, float64(k))
		for i := range s.regions {
			s.regions[i].Matches = int(float64(s.regions[i].Matches)*factor + 0.5)
		}
	}
}

// runScanAll executes one unparallelized scan across every physical part:
// the single worker streams each part's IV in turn, reaching remote sockets
// for the parts that are not local (Figure 10's "single task has to access
// remotely the sockets of the remaining partitions").
func (s *ScanOp) runScanAll(env *Env, w *sched.Worker, cols []*colstore.Column, matches int, onDone func()) {
	remaining := len(cols)
	oneDone := func() {
		remaining--
		if remaining == 0 {
			onDone()
		}
	}
	// Sequential execution: chain per-part scans.
	var start func(i int)
	start = func(i int) {
		if i >= len(cols) {
			return
		}
		m := 0
		if i == len(cols)-1 {
			m = matches // output writes attributed once
		}
		s.runScan(env, w, cols[i], 0, cols[i].Rows, m, func() {
			oneDone()
			start(i + 1)
		})
	}
	start(0)
}

// runScan executes one scan task: stream the IV bytes of rows [from,to)
// from wherever they physically live, plus the (small) match output write.
func (s *ScanOp) runScan(env *Env, w *sched.Worker, col *colstore.Column, from, to, matches int, onDone func()) {
	offFrom := col.IVOffsetForRow(from)
	offTo := offFrom + col.IVBytesForRows(from, to)
	if offTo > col.IVRange.Bytes {
		offTo = col.IVRange.Bytes
	}
	var perSocket []int64
	if col.Replicated() {
		// Stream from the replica with the most MC headroom (the nearest one
		// when the machine is idle) instead of the primary copy.
		rep := BestReplica(env, col, w.Socket())
		perSocket = make([]int64, rep+1)
		perSocket[rep] = offTo - offFrom
	} else {
		perSocket = col.IVPSM.SocketBytes(col.IVRange, offFrom, offTo-offFrom)
	}
	src := w.Socket()
	penalty := 1.0
	if !w.Bound {
		penalty = env.Costs.UnboundStreamPenalty
	}
	// Sequential flows, one per distinct source socket of the range.
	// The match output uses the Section 5.2 result formats: a position list
	// (4 bytes per match) at low selectivity, a bitvector (one bit per
	// scanned row) at high selectivity — whichever is smaller at the
	// configured threshold.
	var flows []*sim.Flow
	outBytes := float64(matches) * 4
	if s.Selectivity >= env.Costs.BitvectorSelectivity {
		outBytes = float64(to-from) / 8
	}
	outPerByte := outBytes / float64(offTo-offFrom+1)
	for dst, bytes := range perSocket {
		if bytes == 0 {
			continue
		}
		dst := dst
		demands, lt := env.HW.StreamDemands(src, dst, w.CoreRes, env.Costs.ScanCyclesPerByte)
		if outPerByte > 0 {
			demands = append(demands, sim.Demand{Resource: env.HW.MC[src], Weight: outPerByte})
		}
		fl := &sim.Flow{
			Remaining: float64(bytes),
			RateCap:   env.Machine.StreamRate(src, dst) * penalty,
			Demands:   demands,
			OnAdvance: func(p float64) {
				env.Counters.AddMemoryTraffic(src, dst, p, p*lt.Data, p*lt.Total)
				env.Counters.AddCompute(src, p*env.Costs.ScanInstrPerByte, 0)
				env.addItem(col.Name, dst, Traffic{Bytes: p, IVBytes: p})
			},
		}
		flows = append(flows, fl)
	}
	RunFlows(env.Sim, flows, onDone)
}

// runDeltaScan executes one delta-fragment scan task: stream the fragment's
// watermark-visible uncompressed rows (RowBytes each — several times the
// main's bit-packed bytes per row, which is why scans degrade as the delta
// grows) from the fragment's own socket, burning the uncompressed-predicate
// compute, plus the match output write.
func (s *ScanOp) runDeltaScan(env *Env, w *sched.Worker, col *colstore.Column, frag *delta.Fragment, rows, matches int, onDone func()) {
	bytes := float64(rows) * delta.RowBytes
	src := w.Socket()
	dst := frag.Socket
	penalty := 1.0
	if !w.Bound {
		penalty = env.Costs.UnboundStreamPenalty
	}
	outBytes := float64(matches) * 4
	if s.Selectivity >= env.Costs.BitvectorSelectivity {
		outBytes = float64(rows) / 8
	}
	demands, lt := env.HW.StreamDemands(src, dst, w.CoreRes, env.Costs.DeltaScanCyclesPerByte)
	if outBytes > 0 {
		demands = append(demands, sim.Demand{Resource: env.HW.MC[src], Weight: outBytes / (bytes + 1)})
	}
	env.Sim.StartFlow(&sim.Flow{
		Remaining: bytes,
		RateCap:   env.Machine.StreamRate(src, dst) * penalty,
		Demands:   demands,
		OnAdvance: func(p float64) {
			env.Counters.AddMemoryTraffic(src, dst, p, p*lt.Data, p*lt.Total)
			env.Counters.AddCompute(src, p*env.Costs.ScanInstrPerByte, 0)
			env.addItem(col.Name, dst, Traffic{Bytes: p, DeltaBytes: p})
		},
		OnDone: onDone,
	})
}

// runIndexLookup executes one (unparallelized) index-lookup task: dependent
// random accesses into the IX.
func (s *ScanOp) runIndexLookup(env *Env, w *sched.Worker, col *colstore.Column, matches int, onDone func()) {
	src := w.Socket()
	accesses := float64(matches)*env.Costs.IndexAccessesPerMatch + 16
	dstWeights := ComponentWeights(env.Machine.Sockets, col.IXPSM)
	if col.Replicated() {
		// Chase the index replica with the most MC headroom.
		dstWeights = make([]float64, env.Machine.Sockets)
		dstWeights[BestReplica(env, col, src)] = 1
	}
	attrSocket := singleSocket(dstWeights)
	demands, rateCap, lt := env.HW.RandomDemands(src, dstWeights, w.CoreRes,
		env.Costs.IdxCyclesPerAccess, 4, env.Costs.IdxMissRate)
	if !w.Bound {
		rateCap *= env.Costs.UnboundStreamPenalty
	}
	miss := env.Costs.IdxMissRate
	env.Sim.StartFlow(&sim.Flow{
		Remaining: accesses,
		RateCap:   rateCap,
		Demands:   demands,
		OnAdvance: func(p float64) {
			bytes := p * topology.CacheLine * miss
			env.addSpreadTraffic(src, dstWeights, bytes, p*lt.Data, p*lt.Total)
			env.Counters.AddCompute(src, p*env.Costs.MatInstrPerAccess/2, 0)
			env.addItem(col.Name, attrSocket, Traffic{Bytes: bytes, DictBytes: bytes})
		},
		OnDone: onDone,
	})
}
