package exec

import (
	"numacs/internal/colstore"
	"numacs/internal/sched"
	"numacs/internal/sim"
	"numacs/internal/topology"
)

// outTask is one planned output task: m qualifying rows of one target column
// whose producing data lives on socket.
type outTask struct {
	col     *colstore.Column
	socket  int
	matches int
}

// planOutput implements the output scheduling of Section 5.2, shared by
// materialization and aggregation: the output vector is divided into one
// fixed region per hardware context; region boundaries are resolved to the
// socket of the pages that produce them (via the PSM); contiguous same-socket
// regions are coalesced; and each coalesced partition receives a
// correspondingly weighted number of tasks, at least one, within the
// concurrency hint.
func planOutput(p *Pipeline, regions []Region, parallel bool, project []string, disableCoalesce bool) []outTask {
	env := p.Env
	total := 0
	for _, reg := range regions {
		total += reg.Matches
	}
	if total == 0 {
		return nil
	}

	// Fixed-size output regions mapped to producing sockets.
	nRegions := env.Machine.TotalThreads()
	if !parallel {
		nRegions = 1
	}
	type coalesced struct {
		col     *colstore.Column
		part    *colstore.Part
		socket  int
		matches int
		weight  int
	}
	var parts []coalesced
	ri := 0 // region cursor
	consumed := 0
	for i := 0; i < nRegions; i++ {
		lo := total * i / nRegions
		hi := total * (i + 1) / nRegions
		m := hi - lo
		if m == 0 {
			continue
		}
		// Advance the producing region cursor.
		for ri < len(regions)-1 && consumed+regions[ri].Matches <= lo {
			consumed += regions[ri].Matches
			ri++
		}
		reg := &regions[ri]
		if n := len(parts); !disableCoalesce && n > 0 &&
			parts[n-1].socket == reg.Socket && parts[n-1].col == reg.Col {
			parts[n-1].matches += m
			parts[n-1].weight++
		} else {
			parts = append(parts, coalesced{col: reg.Col, part: reg.Part, socket: reg.Socket, matches: m, weight: 1})
		}
	}

	// Distribute tasks: proportional to weight, at least one per partition,
	// not surpassing the statement's granularity budget.
	hint := p.Hint()
	if !parallel {
		hint = 1
	}
	if hint < len(parts) {
		hint = len(parts)
	}
	totalWeight := 0
	for _, p := range parts {
		totalWeight += p.weight
	}
	var tasks []outTask
	for _, p := range parts {
		// Targets: the producing column plus every projected column of the
		// same part; the phase is repeated per projected column in parallel
		// (Section 6).
		targets := []*colstore.Column{p.col}
		for _, name := range project {
			if p.part == nil {
				continue
			}
			if pc := p.part.ColumnByName(name); pc != nil {
				targets = append(targets, pc)
			}
		}
		n := hint * p.weight / totalWeight
		if n < 1 {
			n = 1
		}
		if n > p.matches {
			n = p.matches
		}
		for _, target := range targets {
			for t := 0; t < n; t++ {
				f := p.matches * t / n
				tt := p.matches * (t + 1) / n
				if tt == f {
					continue
				}
				tasks = append(tasks, outTask{target, p.socket, tt - f})
			}
		}
	}
	return tasks
}

// MaterializeOp is the output-materialization phase of Section 5.2: dependent
// random accesses into the dictionary of each qualifying row plus output
// writes on the executing worker's socket.
type MaterializeOp struct {
	// Scan produces the qualifying regions to materialize.
	Scan RegionSource
	// ProjectColumns materializes additional columns of the producing part.
	ProjectColumns []string
	// Parallel enables intra-operator parallelism.
	Parallel bool
	// DisableCoalesce turns off the preprocessing optimization that merges
	// contiguous same-socket output regions (ablation only).
	DisableCoalesce bool
}

// Open plans the materialization tasks from the upstream regions.
func (m *MaterializeOp) Open(p *Pipeline) []Task {
	env := p.Env
	tasks := planOutput(p, m.Scan.Regions(), m.Parallel, m.ProjectColumns, m.DisableCoalesce)
	out := make([]Task, 0, len(tasks))
	for _, mt := range tasks {
		mt := mt
		out = append(out, Task{Socket: mt.socket, Run: func(w *sched.Worker, done func()) {
			runMaterialize(env, w, mt.col, mt.matches, done)
		}})
	}
	return out
}

// Close implements Operator.
func (m *MaterializeOp) Close(*Pipeline) {}

// runMaterialize executes one materialization task: m dependent random
// accesses into the dictionary plus output writes on the worker's socket
// (output vectors reuse virtual memory, so writes land wherever the worker
// runs — Section 5.2).
func runMaterialize(env *Env, w *sched.Worker, col *colstore.Column, m int, onDone func()) {
	src := w.Socket()
	var dstWeights []float64
	if col.Replicated() {
		// Probe the dictionary replica with the most MC headroom (the
		// nearest one on an idle machine).
		dstWeights = make([]float64, env.Machine.Sockets)
		dstWeights[BestReplica(env, col, src)] = 1
	} else {
		dstWeights = ComponentWeights(env.Machine.Sockets, col.DictPSM)
	}
	attrSocket := singleSocket(dstWeights)
	demands, rateCap, lt := env.HW.RandomDemands(src, dstWeights, w.CoreRes,
		env.Costs.MatCyclesPerAccess, env.Costs.OutBytesPerMatch, env.Costs.MatMissRate)
	if !w.Bound {
		rateCap *= env.Costs.UnboundStreamPenalty
	}
	miss := env.Costs.MatMissRate
	env.Sim.StartFlow(&sim.Flow{
		Remaining: float64(m),
		RateCap:   rateCap,
		Demands:   demands,
		OnAdvance: func(p float64) {
			bytes := p * topology.CacheLine * miss
			env.addSpreadTraffic(src, dstWeights, bytes, p*lt.Data, p*lt.Total)
			env.Counters.AddCompute(src, p*env.Costs.MatInstrPerAccess, 0)
			env.addItem(col.Name, attrSocket, Traffic{Bytes: bytes + p*env.Costs.OutBytesPerMatch, DictBytes: bytes})
		},
		OnDone: onDone,
	})
}

// AggregateOp aggregates the qualifying rows instead of materializing them
// (Section 6.3: aggregations are parallelized like scans and task affinities
// are defined the same way). Each task streams the qualifying rows' payload
// columns from the socket holding its region's data and burns the per-row
// aggregation compute.
type AggregateOp struct {
	// Source produces the qualifying regions to aggregate (a ScanOp or a
	// JoinOp).
	Source RegionSource
	// BytesPerRow is the payload streamed from the aggregated columns per
	// qualifying row (local to the part under PP).
	BytesPerRow float64
	// CyclesPerRow is the per-row compute — high for TPC-H Q1's
	// multiplications, low for BW-EML's simple expressions.
	CyclesPerRow float64
	// ProjectColumns repeats the aggregation per projected column. It only
	// applies to region sources that carry part information (ScanOp); a
	// JoinOp's probe regions have no part, so projections are not resolved
	// through joins.
	ProjectColumns []string
	// Parallel enables intra-operator parallelism.
	Parallel bool
	// DisableCoalesce turns off output-region coalescing (ablation only).
	DisableCoalesce bool
}

// Open plans the aggregation tasks from the upstream regions.
func (a *AggregateOp) Open(p *Pipeline) []Task {
	env := p.Env
	tasks := planOutput(p, a.Source.Regions(), a.Parallel, a.ProjectColumns, a.DisableCoalesce)
	out := make([]Task, 0, len(tasks))
	for _, at := range tasks {
		at := at
		out = append(out, Task{Socket: at.socket, Run: func(w *sched.Worker, done func()) {
			a.runAggregate(env, w, at.col, at.socket, at.matches, done)
		}})
	}
	return out
}

// Close implements Operator.
func (a *AggregateOp) Close(*Pipeline) {}

// runAggregate executes one aggregation task.
func (a *AggregateOp) runAggregate(env *Env, w *sched.Worker, col *colstore.Column, dataSocket, m int, onDone func()) {
	src := w.Socket()
	dst := dataSocket
	if dst < 0 {
		dst = src
	}
	bytes := float64(m) * a.BytesPerRow
	cpb := 0.0
	if a.BytesPerRow > 0 {
		cpb = a.CyclesPerRow / a.BytesPerRow
	}
	demands, lt := env.HW.StreamDemands(src, dst, w.CoreRes, cpb)
	penalty := 1.0
	if !w.Bound {
		penalty = env.Costs.UnboundStreamPenalty
	}
	env.Sim.StartFlow(&sim.Flow{
		Remaining: bytes,
		RateCap:   env.Machine.StreamRate(src, dst) * penalty,
		Demands:   demands,
		OnAdvance: func(p float64) {
			env.Counters.AddMemoryTraffic(src, dst, p, p*lt.Data, p*lt.Total)
			env.Counters.AddCompute(src, p*cpb*0.8, 0)
			env.addItem(col.Name, dst, Traffic{Bytes: p, IVBytes: p})
		},
		OnDone: onDone,
	})
}
