package exec

import (
	"sort"

	"numacs/internal/colstore"
)

// This file is the bridge between the two halves of the engine: the exec
// operators plan and *cost* scans over a simulated machine (sim.Flow
// traffic, analytic match counts), while the colstore batch kernels touch
// real data. The kernel layer runs the operators' planning functions as pure
// code and executes the resulting task plan with the real word-parallel
// kernels, so the cost model's claims (ScanCyclesPerByte for private finds,
// the SharedPredCyclesPerByte marginal cost of cohort members,
// MatCyclesPerAccess for the output phase) are backed by runnable,
// benchmarked code paths rather than constants alone.

// KernelSpan is one executable slice of a scan plan: rows [From, To) of a
// column, tagged with the socket whose memory backs the majority of those IV
// bytes (-1 when the column has not been placed). It is the hand-off between
// the simulated planner and the colstore batch kernels.
type KernelSpan struct {
	From, To, Socket int
}

// PlanSpans runs the find-phase fan-out of ScanOp.Open as a pure function:
// scheduling partitions from PartitionsWeighted (replica- and IVP-aware,
// weighted away from loaded memory controllers), a per-partition task count
// from the concurrency hint (TasksPerPartition), and an even row split
// within each partition (SplitRows). The returned spans are sorted by row
// and cover the column's row space exactly once.
func PlanSpans(col *colstore.Column, mcLoad []float64, hint int) []KernelSpan {
	parts := PartitionsWeighted(col, mcLoad)
	perPart := TasksPerPartition(hint, len(parts))
	spans := make([]KernelSpan, 0, len(parts)*perPart)
	for _, part := range parts {
		for _, fr := range SplitRows(part.From, part.To, perPart) {
			spans = append(spans, KernelSpan{From: fr[0], To: fr[1], Socket: part.Socket})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].From < spans[j].From })
	return spans
}

// ScanKernel executes a planned range scan with the word-parallel batch
// kernels: the value-domain predicate [loVal, hiVal] is encoded to a vid
// window once and every span is scanned comparing on codes — the dictionary
// is never probed during the find phase. Qualifying absolute positions are
// appended to out; with spans from PlanSpans they come out in ascending
// order. A predicate with no dictionary overlap appends nothing. This is
// the real-data counterpart of the simulated find phase costed at
// Costs.ScanCyclesPerByte.
func ScanKernel(col *colstore.Column, loVal, hiVal int64, spans []KernelSpan, out []uint32) []uint32 {
	loVid, hiVid, ok := col.EncodePredicate(loVal, hiVal)
	if !ok {
		return out
	}
	for _, sp := range spans {
		out = col.ScanPositions(loVid, hiVid, sp.From, sp.To, out)
	}
	return out
}

// SharedScanKernel executes a planned N-predicate shared scan: every span's
// packed words are streamed once and all member predicates (value-domain
// ranges, encoded to vid windows up front; members with no dictionary
// overlap match nothing) are evaluated on each window. This is the
// decode-once/compare-many execution the shared-scan cost model describes —
// the window work is charged once (ScanCyclesPerByte) and each further
// member costs only its marginal compare (SharedPredCyclesPerByte). outs
// must have one slice per predicate; each member's appended positions are
// bit-identical to a private ScanKernel with its predicate. The (possibly
// grown) slices are returned.
func SharedScanKernel(col *colstore.Column, preds [][2]int64, spans []KernelSpan, outs [][]uint32) [][]uint32 {
	ranges := make([]colstore.SharedRange, len(preds))
	for i, pr := range preds {
		lo, hi, ok := col.EncodePredicate(pr[0], pr[1])
		if !ok {
			lo, hi = 1, 0 // empty vid window: matches nothing
		}
		ranges[i] = colstore.SharedRange{Lo: lo, Hi: hi}
	}
	for _, sp := range spans {
		outs = col.ScanSharedPositions(ranges, sp.From, sp.To, outs)
	}
	return outs
}

// MaterializeKernel gathers the values of the qualifying positions with the
// batched materialization path (one batch unpack per dense position run
// instead of a per-row decode) — the real-data counterpart of the simulated
// output phase costed at Costs.MatCyclesPerAccess.
func MaterializeKernel(col *colstore.Column, positions []uint32) []int64 {
	out := make([]int64, len(positions))
	col.Materialize(positions, out)
	return out
}
